// Simulation of the additive-sharing secure sum protocol of Section 4.2
// (instantiating Ben-Or/Goldwasser/Wigderson-style n-party summation):
//
//   1. Each party i chooses n random shares r_i1..r_in with
//      sum_j r_ij = 0 (mod M);
//   2. party i sends r_ij to party j;
//   3. party j broadcasts s_j = sum_i r_ij + c_j (mod M), where c_j is
//      party j's private contribution;
//   4. everyone computes sum_j s_j = sum_j c_j (mod M).
//
// The arithmetic and information flow are implemented literally (each
// party's share vector is generated and delivered); only the network is
// simulated in-process. kFastSimulation skips the share exchange and
// returns the identical result, for use when n or the number of protocol
// runs makes the literal O(n^2) exchange pointless in an experiment.
//
// Randomness addressing: the oracle is stateless per call. Every
// BivariateCounts call derives its share draws purely from
// (seed, pair_stream) -- mt19937 via RngStreamFamily stream-per-pair,
// philox via counter stream `pair_stream` with each protocol cell
// jumped to its own fixed word range -- so concurrent per-pair calls
// share no engine state and the transcript is a pure function of the
// call inputs. (Before the pair-grid sharding landed, one oracle-owned
// engine was consumed across pairs in pair order; that transcript is
// retired -- the protocol output, being exact counts, is unchanged.)

#ifndef MDRR_MPC_SECURE_SUM_H_
#define MDRR_MPC_SECURE_SUM_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr::mpc {

enum class SimulationMode {
  kLiteralShares,   // Full share generation and delivery, O(n^2) messages.
  kFastSimulation,  // Same output, no share traffic.
};

class SecureSumSession {
 public:
  // `modulus` must exceed the largest possible true sum; the paper uses
  // M = n + 1 for 0/1 contributions from n parties.
  SecureSumSession(uint64_t modulus, SimulationMode mode);

  // Runs one aggregation round over the parties' private contributions
  // (contribution i belongs to party i). Returns the sum modulo `modulus`.
  // Fails if any contribution >= modulus. The two overloads draw the
  // same share layout from either engine: n - 1 uniform shares per party
  // in party order (the counter overload consumes exactly one u64 per
  // share -- fixed budget, see WordsPerLiteralRun).
  StatusOr<uint64_t> Run(const std::vector<uint64_t>& contributions,
                         Rng& rng) const;
  StatusOr<uint64_t> Run(const std::vector<uint64_t>& contributions,
                         CounterRng& rng) const;

  // Number of point-to-point messages the last literal run would use:
  // n shares per party plus n broadcasts.
  static uint64_t MessageCount(size_t num_parties) {
    return static_cast<uint64_t>(num_parties) * num_parties + num_parties;
  }

  // 32-bit counter-stream words one literal Run consumes: n parties draw
  // n - 1 shares each, one u64 (two words) per share. Run k of a
  // multi-run protocol on one stream therefore starts at word
  // k * WordsPerLiteralRun(n) -- the element-addressed layout
  // SecureFrequencyOracle::BivariateCounts uses per cell.
  static uint64_t WordsPerLiteralRun(size_t num_parties) {
    if (num_parties == 0) return 0;
    return 2ull * num_parties * (num_parties - 1);
  }

  uint64_t modulus() const { return modulus_; }
  SimulationMode mode() const { return mode_; }

 private:
  uint64_t modulus_;
  SimulationMode mode_;
};

// Bivariate absolute frequencies via repeated secure sums: one protocol
// run per cell (a, b) of the contingency table, with 0/1 contributions and
// modulus n + 1 (exactly the procedure of Section 4.2).
class SecureFrequencyOracle {
 public:
  // `rng` selects the share-draw engine for literal runs. kMt19937 seeds
  // a fresh RngStreamFamily(seed).Stream(pair_stream) sequence per call
  // (cells consume it in row-major cell order); kPhilox addresses cell k
  // at word k * WordsPerLiteralRun(n) of counter stream `pair_stream`.
  // Fast simulation draws nothing under either engine.
  SecureFrequencyOracle(SimulationMode mode, uint64_t seed,
                        RngKind rng = RngKind::kMt19937);

  // Joint counts of (codes_a[i], codes_b[i]) pairs, row-major
  // [cardinality_a x cardinality_b]. Preconditions: equal-length inputs,
  // codes within cardinalities. `pair_stream` keys this call's share
  // randomness; callers aggregating many pairs give each pair its own
  // stream so the pair grid can run in any order or in parallel. Const
  // and stateless: safe to call concurrently on one oracle.
  StatusOr<std::vector<int64_t>> BivariateCounts(
      const std::vector<uint32_t>& codes_a, size_t cardinality_a,
      const std::vector<uint32_t>& codes_b, size_t cardinality_b,
      uint64_t pair_stream = 0) const;

  // Communication cost in messages for computing one bivariate table
  // (cells * per-run messages); the O(|Ai||Aj| n) of Section 4.2.
  static uint64_t BivariateMessageCount(size_t cardinality_a,
                                        size_t cardinality_b,
                                        size_t num_parties);

 private:
  SimulationMode mode_;
  uint64_t seed_;
  RngKind rng_kind_;
};

}  // namespace mdrr::mpc

#endif  // MDRR_MPC_SECURE_SUM_H_
