// Simulation of the additive-sharing secure sum protocol of Section 4.2
// (instantiating Ben-Or/Goldwasser/Wigderson-style n-party summation):
//
//   1. Each party i chooses n random shares r_i1..r_in with
//      sum_j r_ij = 0 (mod M);
//   2. party i sends r_ij to party j;
//   3. party j broadcasts s_j = sum_i r_ij + c_j (mod M), where c_j is
//      party j's private contribution;
//   4. everyone computes sum_j s_j = sum_j c_j (mod M).
//
// The arithmetic and information flow are implemented literally (each
// party's share vector is generated and delivered); only the network is
// simulated in-process. kFastSimulation skips the share exchange and
// returns the identical result, for use when n or the number of protocol
// runs makes the literal O(n^2) exchange pointless in an experiment.

#ifndef MDRR_MPC_SECURE_SUM_H_
#define MDRR_MPC_SECURE_SUM_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/rng/rng.h"

namespace mdrr::mpc {

enum class SimulationMode {
  kLiteralShares,   // Full share generation and delivery, O(n^2) messages.
  kFastSimulation,  // Same output, no share traffic.
};

class SecureSumSession {
 public:
  // `modulus` must exceed the largest possible true sum; the paper uses
  // M = n + 1 for 0/1 contributions from n parties.
  SecureSumSession(uint64_t modulus, SimulationMode mode);

  // Runs one aggregation round over the parties' private contributions
  // (contribution i belongs to party i). Returns the sum modulo `modulus`.
  // Fails if any contribution >= modulus.
  StatusOr<uint64_t> Run(const std::vector<uint64_t>& contributions,
                         Rng& rng) const;

  // Number of point-to-point messages the last literal run would use:
  // n shares per party plus n broadcasts.
  static uint64_t MessageCount(size_t num_parties) {
    return static_cast<uint64_t>(num_parties) * num_parties + num_parties;
  }

  uint64_t modulus() const { return modulus_; }
  SimulationMode mode() const { return mode_; }

 private:
  uint64_t modulus_;
  SimulationMode mode_;
};

// Bivariate absolute frequencies via repeated secure sums: one protocol
// run per cell (a, b) of the contingency table, with 0/1 contributions and
// modulus n + 1 (exactly the procedure of Section 4.2).
class SecureFrequencyOracle {
 public:
  SecureFrequencyOracle(SimulationMode mode, uint64_t seed);

  // Joint counts of (codes_a[i], codes_b[i]) pairs, row-major
  // [cardinality_a x cardinality_b]. Preconditions: equal-length inputs,
  // codes within cardinalities.
  StatusOr<std::vector<int64_t>> BivariateCounts(
      const std::vector<uint32_t>& codes_a, size_t cardinality_a,
      const std::vector<uint32_t>& codes_b, size_t cardinality_b);

  // Communication cost in messages for computing one bivariate table
  // (cells * per-run messages); the O(|Ai||Aj| n) of Section 4.2.
  static uint64_t BivariateMessageCount(size_t cardinality_a,
                                        size_t cardinality_b,
                                        size_t num_parties);

 private:
  SimulationMode mode_;
  Rng rng_;
};

}  // namespace mdrr::mpc

#endif  // MDRR_MPC_SECURE_SUM_H_
