#include "mdrr/mpc/secure_sum.h"

#include "mdrr/common/check.h"

namespace mdrr::mpc {
namespace {

// One uniform share in [0, modulus) from either engine. The counter
// draw is the fixed-budget reduction (exactly one u64 per share), which
// is what makes the per-cell word addressing of WordsPerLiteralRun hold
// regardless of data.
inline uint64_t DrawShare(Rng& rng, uint64_t modulus) {
  return rng.UniformInt(modulus);
}
inline uint64_t DrawShare(CounterRng& rng, uint64_t modulus) {
  return rng.BoundedU64(modulus);
}

template <typename Engine>
StatusOr<uint64_t> RunLiteral(uint64_t modulus,
                              const std::vector<uint64_t>& contributions,
                              Engine& rng) {
  const size_t n = contributions.size();
  // Literal protocol. inbox[j] accumulates the shares received by party j.
  std::vector<uint64_t> inbox(n, 0);
  for (size_t i = 0; i < n; ++i) {
    // Party i picks shares r_i1..r_i,n-1 uniformly and sets the last share
    // so the row sums to 0 (mod M), then "sends" share j to party j.
    uint64_t row_sum = 0;
    for (size_t j = 0; j + 1 < n; ++j) {
      uint64_t share = DrawShare(rng, modulus);
      row_sum = (row_sum + share) % modulus;
      inbox[j] = (inbox[j] + share) % modulus;
    }
    uint64_t last_share = (modulus - row_sum) % modulus;
    inbox[n - 1] = (inbox[n - 1] + last_share) % modulus;
  }

  // Broadcast phase: party j announces its share-sum plus its contribution;
  // the final result is the sum of broadcasts.
  uint64_t result = 0;
  for (size_t j = 0; j < n; ++j) {
    uint64_t broadcast = (inbox[j] + contributions[j]) % modulus;
    result = (result + broadcast) % modulus;
  }
  return result;
}

template <typename Engine>
StatusOr<uint64_t> RunImpl(uint64_t modulus, SimulationMode mode,
                           const std::vector<uint64_t>& contributions,
                           Engine& rng) {
  if (contributions.empty()) {
    return Status::InvalidArgument("secure sum needs at least one party");
  }
  for (uint64_t c : contributions) {
    if (c >= modulus) {
      return Status::InvalidArgument("contribution exceeds modulus");
    }
  }
  if (mode == SimulationMode::kFastSimulation) {
    uint64_t sum = 0;
    for (uint64_t c : contributions) sum = (sum + c) % modulus;
    return sum;
  }
  return RunLiteral(modulus, contributions, rng);
}

}  // namespace

SecureSumSession::SecureSumSession(uint64_t modulus, SimulationMode mode)
    : modulus_(modulus), mode_(mode) {
  MDRR_CHECK_GE(modulus_, 2u);
}

StatusOr<uint64_t> SecureSumSession::Run(
    const std::vector<uint64_t>& contributions, Rng& rng) const {
  return RunImpl(modulus_, mode_, contributions, rng);
}

StatusOr<uint64_t> SecureSumSession::Run(
    const std::vector<uint64_t>& contributions, CounterRng& rng) const {
  return RunImpl(modulus_, mode_, contributions, rng);
}

SecureFrequencyOracle::SecureFrequencyOracle(SimulationMode mode,
                                             uint64_t seed, RngKind rng)
    : mode_(mode), seed_(seed), rng_kind_(rng) {}

StatusOr<std::vector<int64_t>> SecureFrequencyOracle::BivariateCounts(
    const std::vector<uint32_t>& codes_a, size_t cardinality_a,
    const std::vector<uint32_t>& codes_b, size_t cardinality_b,
    uint64_t pair_stream) const {
  if (codes_a.size() != codes_b.size()) {
    return Status::InvalidArgument("code vectors must have equal length");
  }
  if (codes_a.empty()) {
    return Status::InvalidArgument("no parties");
  }
  const size_t n = codes_a.size();
  for (size_t i = 0; i < n; ++i) {
    MDRR_CHECK_LT(codes_a[i], cardinality_a);
    MDRR_CHECK_LT(codes_b[i], cardinality_b);
  }
  std::vector<int64_t> counts(cardinality_a * cardinality_b, 0);

  if (mode_ == SimulationMode::kFastSimulation) {
    // One pass instead of |A_i| * |A_j| protocol sweeps: every secure sum
    // is exact (counts <= n < modulus = n + 1, so the modulus never
    // wraps), so the histogram IS the protocol output.
    for (size_t i = 0; i < n; ++i) {
      ++counts[static_cast<size_t>(codes_a[i]) * cardinality_b + codes_b[i]];
    }
    return counts;
  }

  SecureSumSession session(static_cast<uint64_t>(n) + 1, mode_);
  std::vector<uint64_t> contributions(n);
  auto fill_cell = [&](size_t a, size_t b) {
    for (size_t i = 0; i < n; ++i) {
      contributions[i] = (codes_a[i] == a && codes_b[i] == b) ? 1u : 0u;
    }
  };

  if (rng_kind_ == RngKind::kMt19937) {
    Rng rng = RngStreamFamily(seed_).Stream(pair_stream);
    for (size_t a = 0; a < cardinality_a; ++a) {
      for (size_t b = 0; b < cardinality_b; ++b) {
        fill_cell(a, b);
        MDRR_ASSIGN_OR_RETURN(uint64_t cell, session.Run(contributions, rng));
        counts[a * cardinality_b + b] = static_cast<int64_t>(cell);
      }
    }
    return counts;
  }

  // Philox: cell k owns words [k * words_per_cell, (k + 1) * words_per_cell)
  // of counter stream pair_stream -- addressed, never consumed in order,
  // so a future per-cell fan-out needs no transcript change.
  const uint64_t words_per_cell = SecureSumSession::WordsPerLiteralRun(n);
  uint64_t cell_index = 0;
  for (size_t a = 0; a < cardinality_a; ++a) {
    for (size_t b = 0; b < cardinality_b; ++b, ++cell_index) {
      fill_cell(a, b);
      CounterRng rng(seed_, pair_stream);
      rng.Jump(cell_index * words_per_cell);
      MDRR_ASSIGN_OR_RETURN(uint64_t cell, session.Run(contributions, rng));
      counts[a * cardinality_b + b] = static_cast<int64_t>(cell);
    }
  }
  return counts;
}

uint64_t SecureFrequencyOracle::BivariateMessageCount(size_t cardinality_a,
                                                      size_t cardinality_b,
                                                      size_t num_parties) {
  return static_cast<uint64_t>(cardinality_a) * cardinality_b *
         SecureSumSession::MessageCount(num_parties);
}

}  // namespace mdrr::mpc
