#include "mdrr/mpc/secure_sum.h"

#include "mdrr/common/check.h"

namespace mdrr::mpc {

SecureSumSession::SecureSumSession(uint64_t modulus, SimulationMode mode)
    : modulus_(modulus), mode_(mode) {
  MDRR_CHECK_GE(modulus_, 2u);
}

StatusOr<uint64_t> SecureSumSession::Run(
    const std::vector<uint64_t>& contributions, Rng& rng) const {
  if (contributions.empty()) {
    return Status::InvalidArgument("secure sum needs at least one party");
  }
  for (uint64_t c : contributions) {
    if (c >= modulus_) {
      return Status::InvalidArgument("contribution exceeds modulus");
    }
  }
  const size_t n = contributions.size();

  if (mode_ == SimulationMode::kFastSimulation) {
    uint64_t sum = 0;
    for (uint64_t c : contributions) sum = (sum + c) % modulus_;
    return sum;
  }

  // Literal protocol. inbox[j] accumulates the shares received by party j.
  std::vector<uint64_t> inbox(n, 0);
  for (size_t i = 0; i < n; ++i) {
    // Party i picks shares r_i1..r_i,n-1 uniformly and sets the last share
    // so the row sums to 0 (mod M), then "sends" share j to party j.
    uint64_t row_sum = 0;
    for (size_t j = 0; j + 1 < n; ++j) {
      uint64_t share = rng.UniformInt(modulus_);
      row_sum = (row_sum + share) % modulus_;
      inbox[j] = (inbox[j] + share) % modulus_;
    }
    uint64_t last_share = (modulus_ - row_sum) % modulus_;
    inbox[n - 1] = (inbox[n - 1] + last_share) % modulus_;
  }

  // Broadcast phase: party j announces its share-sum plus its contribution;
  // the final result is the sum of broadcasts.
  uint64_t result = 0;
  for (size_t j = 0; j < n; ++j) {
    uint64_t broadcast = (inbox[j] + contributions[j]) % modulus_;
    result = (result + broadcast) % modulus_;
  }
  return result;
}

SecureFrequencyOracle::SecureFrequencyOracle(SimulationMode mode,
                                             uint64_t seed)
    : mode_(mode), rng_(seed) {}

StatusOr<std::vector<int64_t>> SecureFrequencyOracle::BivariateCounts(
    const std::vector<uint32_t>& codes_a, size_t cardinality_a,
    const std::vector<uint32_t>& codes_b, size_t cardinality_b) {
  if (codes_a.size() != codes_b.size()) {
    return Status::InvalidArgument("code vectors must have equal length");
  }
  if (codes_a.empty()) {
    return Status::InvalidArgument("no parties");
  }
  const size_t n = codes_a.size();
  SecureSumSession session(static_cast<uint64_t>(n) + 1, mode_);

  std::vector<int64_t> counts(cardinality_a * cardinality_b, 0);
  std::vector<uint64_t> contributions(n);
  for (size_t a = 0; a < cardinality_a; ++a) {
    for (size_t b = 0; b < cardinality_b; ++b) {
      for (size_t i = 0; i < n; ++i) {
        MDRR_CHECK_LT(codes_a[i], cardinality_a);
        MDRR_CHECK_LT(codes_b[i], cardinality_b);
        contributions[i] =
            (codes_a[i] == a && codes_b[i] == b) ? 1u : 0u;
      }
      MDRR_ASSIGN_OR_RETURN(uint64_t cell, session.Run(contributions, rng_));
      counts[a * cardinality_b + b] = static_cast<int64_t>(cell);
    }
  }
  return counts;
}

uint64_t SecureFrequencyOracle::BivariateMessageCount(size_t cardinality_a,
                                                      size_t cardinality_b,
                                                      size_t num_parties) {
  return static_cast<uint64_t>(cardinality_a) * cardinality_b *
         SecureSumSession::MessageCount(num_parties);
}

}  // namespace mdrr::mpc
