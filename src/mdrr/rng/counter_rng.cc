#include "mdrr/rng/counter_rng.h"

namespace mdrr {

void PhiloxFillElementDraws(uint64_t seed, uint64_t stream, uint64_t first,
                            size_t count, double* units, uint64_t* raws) {
  for (size_t k = 0; k < count; ++k) {
    const PhiloxBlock block = PhiloxElementBlock(seed, stream, first + k);
    units[k] = PhiloxUnitFromU64(
        (static_cast<uint64_t>(block.w[1]) << 32) | block.w[0]);
    raws[k] = (static_cast<uint64_t>(block.w[3]) << 32) | block.w[2];
  }
}

}  // namespace mdrr
