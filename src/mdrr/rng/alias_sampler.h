// Walker/Vose alias method: O(n) construction, O(1) sampling from a fixed
// discrete distribution. Used for repeated draws from rows of large
// randomization matrices (RR-Joint on clusters with hundreds of categories).

#ifndef MDRR_RNG_ALIAS_SAMPLER_H_
#define MDRR_RNG_ALIAS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

class AliasSampler {
 public:
  // Builds the alias table for the given non-negative weights (need not be
  // normalized; must have positive total mass, and at most UINT32_MAX
  // entries -- alias indices are stored as uint32_t).
  explicit AliasSampler(const std::vector<double>& weights);

  // Draws an index in [0, size()) with probability proportional to its
  // weight. O(1): one uniform integer plus one Bernoulli. Emptiness is
  // guaranteed at construction, so the per-draw size check is debug-only.
  size_t Sample(Rng& rng) const {
    MDRR_DCHECK(!probability_.empty());
    size_t bucket = rng.UniformInt(probability_.size());
    if (rng.UniformDouble() < probability_[bucket]) return bucket;
    return alias_[bucket];
  }

  // Counter-policy draw from one pre-drawn uniform pair (the element
  // block of counter_rng.h). Draw plan, part of the philox transcript
  // contract: bucket = PhiloxBoundedFromRaw(raw, size()); accept iff
  // unit < probability_[bucket], else the bucket's alias. Note the pair
  // is consumed in the opposite order to Sample (bucket from the raw
  // word, acceptance from the unit double) so one element block serves
  // both the structured and the alias kernels of RrMatrix.
  uint32_t SampleFrom(double unit, uint64_t raw) const {
    MDRR_DCHECK(!probability_.empty());
    const uint32_t bucket = static_cast<uint32_t>(
        PhiloxBoundedFromRaw(raw, probability_.size()));
    return unit < probability_[bucket] ? bucket : alias_[bucket];
  }

  // Block draw: out[k] = SampleFrom(units[k], raws[k]) for k in
  // [0, count). Pure table lookups over pre-drawn uniform pairs -- no
  // engine calls, no loop-carried state -- so the loop vectorizes.
  void SampleBlock(const double* units, const uint64_t* raws, size_t count,
                   uint32_t* out) const;

  size_t size() const { return probability_.size(); }

  // Reconstructed sampling probability of index i (for testing).
  double ProbabilityOf(size_t i) const;

 private:
  std::vector<double> probability_;  // Acceptance threshold per bucket.
  std::vector<uint32_t> alias_;      // Fallback index per bucket.
};

}  // namespace mdrr

#endif  // MDRR_RNG_ALIAS_SAMPLER_H_
