// Walker/Vose alias method: O(n) construction, O(1) sampling from a fixed
// discrete distribution. Used for repeated draws from rows of large
// randomization matrices (RR-Joint on clusters with hundreds of categories).

#ifndef MDRR_RNG_ALIAS_SAMPLER_H_
#define MDRR_RNG_ALIAS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

class AliasSampler {
 public:
  // Builds the alias table for the given non-negative weights (need not be
  // normalized; must have positive total mass, and at most UINT32_MAX
  // entries -- alias indices are stored as uint32_t).
  explicit AliasSampler(const std::vector<double>& weights);

  // Draws an index in [0, size()) with probability proportional to its
  // weight. O(1): one uniform integer plus one Bernoulli. Emptiness is
  // guaranteed at construction, so the per-draw size check is debug-only.
  size_t Sample(Rng& rng) const {
    MDRR_DCHECK(!probability_.empty());
    size_t bucket = rng.UniformInt(probability_.size());
    if (rng.UniformDouble() < probability_[bucket]) return bucket;
    return alias_[bucket];
  }

  // Counter-policy draw from one pre-drawn uniform pair (the element
  // block of counter_rng.h). Draw plan, part of the philox transcript
  // contract: bucket = PhiloxBoundedFromRaw(raw, size()); accept iff
  // unit < probability_[bucket], else the bucket's alias. Note the pair
  // is consumed in the opposite order to Sample (bucket from the raw
  // word, acceptance from the unit double) so one element block serves
  // both the structured and the alias kernels of RrMatrix.
  uint32_t SampleFrom(double unit, uint64_t raw) const {
    MDRR_DCHECK(!probability_.empty());
    const uint32_t bucket = static_cast<uint32_t>(
        PhiloxBoundedFromRaw(raw, probability_.size()));
    return unit < probability_[bucket] ? bucket : alias_[bucket];
  }

  // Block draw: out[k] = SampleFrom(units[k], raws[k]) for k in
  // [0, count). Pure table lookups over pre-drawn uniform pairs -- no
  // engine calls, no loop-carried state -- routed through the SIMD-lane
  // AliasLookupBlock kernel below (bitwise identical to the scalar
  // SampleFrom loop on every platform).
  void SampleBlock(const double* units, const uint64_t* raws, size_t count,
                   uint32_t* out) const;

  // Appends this table's acceptance thresholds and alias indices to flat
  // SoA arrays -- the gather-friendly row-major layout AliasLookupBlock
  // consumes when many tables (e.g. one per RrMatrix row) are fused into
  // one strided lookup.
  void AppendTables(std::vector<double>& thresholds,
                    std::vector<uint32_t>& aliases) const;

  size_t size() const { return probability_.size(); }

  // Reconstructed sampling probability of index i (for testing).
  double ProbabilityOf(size_t i) const;

 private:
  std::vector<double> probability_;  // Acceptance threshold per bucket.
  std::vector<uint32_t> alias_;      // Fallback index per bucket.
};

// Flat-table alias lookup over pre-drawn uniform pairs, shared by
// AliasSampler::SampleBlock (one table) and RrMatrix's dense tiles (one
// table per input code). `thresholds`/`aliases` are SoA and row-major
// with stride `bound` (the per-row bucket count) over `table_entries`
// total entries; `rows` selects the table per element (nullptr = row 0
// for every element). For each k in [0, count):
//   bucket = PhiloxBoundedFromRaw(raws[k], bound)
//   idx    = (rows ? rows[k] : 0) * bound + bucket
//   out[k] = units[k] < thresholds[idx] ? bucket : aliases[idx]
// On x86-64 hosts with AVX2 the threshold/alias gathers and the
// branch-free select run four lanes at a time (runtime-dispatched);
// the scalar path is the same arithmetic, so output is bitwise
// identical regardless of ISA -- the philox transcript contract never
// depends on the host.
void AliasLookupBlock(const double* thresholds, const uint32_t* aliases,
                      uint64_t bound, size_t table_entries,
                      const uint32_t* rows, const double* units,
                      const uint64_t* raws, size_t count, uint32_t* out);

}  // namespace mdrr

#endif  // MDRR_RNG_ALIAS_SAMPLER_H_
