// Walker/Vose alias method: O(n) construction, O(1) sampling from a fixed
// discrete distribution. Used for repeated draws from rows of large
// randomization matrices (RR-Joint on clusters with hundreds of categories).

#ifndef MDRR_RNG_ALIAS_SAMPLER_H_
#define MDRR_RNG_ALIAS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "mdrr/rng/rng.h"

namespace mdrr {

class AliasSampler {
 public:
  // Builds the alias table for the given non-negative weights (need not be
  // normalized; must have positive total mass).
  explicit AliasSampler(const std::vector<double>& weights);

  // Draws an index in [0, size()) with probability proportional to its
  // weight. O(1): one uniform integer plus one Bernoulli.
  size_t Sample(Rng& rng) const;

  size_t size() const { return probability_.size(); }

  // Reconstructed sampling probability of index i (for testing).
  double ProbabilityOf(size_t i) const;

 private:
  std::vector<double> probability_;  // Acceptance threshold per bucket.
  std::vector<uint32_t> alias_;      // Fallback index per bucket.
};

}  // namespace mdrr

#endif  // MDRR_RNG_ALIAS_SAMPLER_H_
