// Block-fill facade over a counter stream: inner loops consume uniforms
// from caller-owned buffers instead of calling the engine per draw.
//
// Every Fill* produces EXACTLY the word sequence the scalar CounterRng
// calls would (FillU32 == repeated NextU32, FillU64 == repeated NextU64,
// FillDouble == repeated NextDouble, FillBoundedU64 == repeated
// BoundedU64) -- asserted by counter_rng_test.cc -- so a kernel can mix
// block fills and scalar draws on one stream without changing any
// transcript. The fills generate whole 128-bit blocks directly into the
// output (one Philox evaluation per four words, no per-word call
// overhead, no loop-carried state in the hot loop), which is what makes
// the inner loops vectorizable.

#ifndef MDRR_RNG_BLOCK_RNG_H_
#define MDRR_RNG_BLOCK_RNG_H_

#include <cstddef>
#include <cstdint>

#include "mdrr/rng/counter_rng.h"

namespace mdrr {

class BlockRng {
 public:
  explicit BlockRng(uint64_t seed, uint64_t stream = 0)
      : source_(seed, stream) {}
  explicit BlockRng(const CounterRng& source) : source_(source) {}

  // The underlying sequential stream; scalar draws interleave freely
  // with block fills.
  CounterRng& source() { return source_; }
  const CounterRng& source() const { return source_; }

  // out[0, count): the next count 32-bit words of the stream.
  void FillU32(uint32_t* out, size_t count);

  // out[0, count): the next count u64s (two words each, low word first).
  void FillU64(uint64_t* out, size_t count);

  // out[0, count): the next count canonical doubles in [0, 1).
  void FillDouble(double* out, size_t count);

  // out[0, count): the next count integers uniform on [0, bound), one
  // u64 each (the fixed-budget Lemire reduction of counter_rng.h).
  // Precondition: bound > 0.
  void FillBoundedU64(uint64_t bound, uint64_t* out, size_t count);

 private:
  CounterRng source_;
};

}  // namespace mdrr

#endif  // MDRR_RNG_BLOCK_RNG_H_
