#include "mdrr/rng/fast_seed.h"

namespace mdrr {

namespace {

// Parameters of [rand.util.seedseq] generate() for an n = 624 request
// with s = 4 entropy words: t = 11, p = 306, q = 317, m = max(s+1, n).
constexpr size_t kN = kEngineSeedWords;
constexpr size_t kP = 306;
constexpr size_t kQ = 317;

inline uint32_t Mix(uint32_t x) { return x ^ (x >> 27); }

}  // namespace

FourWordSeedSeq::FourWordSeedSeq(uint64_t seed) {
  uint64_t state = seed;
  // Braced seed_seq construction evaluates left to right; keep that order.
  for (uint32_t& word : entropy_) {
    word = static_cast<uint32_t>(SplitMix64Next(state));
  }
}

void FourWordSeedSeq::GenerateEngineWords(
    uint32_t out[kEngineSeedWords]) const {
  uint32_t b[kN];
  for (size_t i = 0; i < kN; ++i) b[i] = 0x8b8b8b8bu;

  // First pass: b[k+p] += r1, b[k+q] += r2, b[k] = r2. b[(k-1) % n] is
  // always the previous iteration's r2 (no other write can land on it in
  // between: k+p and k+q are never congruent to k-1 mod n), so it rides
  // in `prev` instead of a load.
  uint32_t prev = b[kN - 1];
  for (size_t k = 0; k <= 4; ++k) {  // Entropy-carrying head.
    uint32_t r1 = 1664525u * Mix(b[k] ^ b[k + kP] ^ prev);
    uint32_t r2 =
        r1 + (k == 0 ? 4u : static_cast<uint32_t>(k) + entropy_[k - 1]);
    b[k + kP] += r1;
    b[k + kQ] += r2;
    b[k] = r2;
    prev = r2;
  }
  for (size_t k = 5; k < kN - kQ; ++k) {  // Neither index wrapped.
    uint32_t r1 = 1664525u * Mix(b[k] ^ b[k + kP] ^ prev);
    uint32_t r2 = r1 + static_cast<uint32_t>(k);
    b[k + kP] += r1;
    b[k + kQ] += r2;
    b[k] = r2;
    prev = r2;
  }
  for (size_t k = kN - kQ; k < kN - kP; ++k) {  // k+q wrapped.
    uint32_t r1 = 1664525u * Mix(b[k] ^ b[k + kP] ^ prev);
    uint32_t r2 = r1 + static_cast<uint32_t>(k);
    b[k + kP] += r1;
    b[k + kQ - kN] += r2;
    b[k] = r2;
    prev = r2;
  }
  for (size_t k = kN - kP; k < kN; ++k) {  // Both wrapped.
    uint32_t r1 = 1664525u * Mix(b[k] ^ b[k + kP - kN] ^ prev);
    uint32_t r2 = r1 + static_cast<uint32_t>(k);
    b[k + kP - kN] += r1;
    b[k + kQ - kN] += r2;
    b[k] = r2;
    prev = r2;
  }

  // Second pass: b[k+p] ^= r3, b[k+q] ^= r4, b[k] = r4, with k counting
  // m..m+n-1 in standard terms (k mod n below). `prev` hands over from
  // the first pass: b[n-1] was last assigned at first-pass k = n-1.
  for (size_t k = 0; k < kN - kQ; ++k) {
    uint32_t r3 = 1566083941u * Mix(b[k] + b[k + kP] + prev);
    uint32_t r4 = r3 - static_cast<uint32_t>(k);
    b[k + kP] ^= r3;
    b[k + kQ] ^= r4;
    b[k] = r4;
    prev = r4;
  }
  for (size_t k = kN - kQ; k < kN - kP; ++k) {
    uint32_t r3 = 1566083941u * Mix(b[k] + b[k + kP] + prev);
    uint32_t r4 = r3 - static_cast<uint32_t>(k);
    b[k + kP] ^= r3;
    b[k + kQ - kN] ^= r4;
    b[k] = r4;
    prev = r4;
  }
  for (size_t k = kN - kP; k < kN; ++k) {
    uint32_t r3 = 1566083941u * Mix(b[k] + b[k + kP - kN] + prev);
    uint32_t r4 = r3 - static_cast<uint32_t>(k);
    b[k + kP - kN] ^= r3;
    b[k + kQ - kN] ^= r4;
    b[k] = r4;
    prev = r4;
  }

  for (size_t i = 0; i < kN; ++i) out[i] = b[i];
}

void GenerateSeedBlock(const uint64_t seeds[kSeedLanes], uint32_t* out) {
  constexpr size_t L = kSeedLanes;
  // Lane-major SoA work set: b[i][l] is word i of lane l. Every step
  // below is an elementwise loop over L lanes with no cross-lane data
  // flow, which the compiler turns into vector ops; the recurrence's
  // serial dependency chains (one per lane) run side by side.
  alignas(64) uint32_t b[kN][L];
  alignas(64) uint32_t prev[L];
  alignas(64) uint32_t entropy[4][L];
  for (size_t l = 0; l < L; ++l) {
    uint64_t state = seeds[l];
    for (size_t w = 0; w < 4; ++w) {
      entropy[w][l] = static_cast<uint32_t>(SplitMix64Next(state));
    }
  }
  for (size_t i = 0; i < kN; ++i) {
    for (size_t l = 0; l < L; ++l) b[i][l] = 0x8b8b8b8bu;
  }
  for (size_t l = 0; l < L; ++l) prev[l] = 0x8b8b8b8bu;

  auto pass1 = [&](size_t k, size_t kp, size_t kq, const uint32_t* extra) {
    for (size_t l = 0; l < L; ++l) {
      uint32_t x = b[k][l] ^ b[kp][l] ^ prev[l];
      uint32_t r1 = 1664525u * Mix(x);
      uint32_t r2 = r1 + extra[l];
      b[kp][l] += r1;
      b[kq][l] += r2;
      b[k][l] = r2;
      prev[l] = r2;
    }
  };
  uint32_t extra[L];
  {
    for (size_t l = 0; l < L; ++l) extra[l] = 4u;
    pass1(0, kP, kQ, extra);
  }
  for (size_t k = 1; k <= 4; ++k) {
    for (size_t l = 0; l < L; ++l) {
      extra[l] = static_cast<uint32_t>(k) + entropy[k - 1][l];
    }
    pass1(k, k + kP, k + kQ, extra);
  }
  auto pass1_plain = [&](size_t k, size_t kp, size_t kq) {
    for (size_t l = 0; l < L; ++l) {
      uint32_t x = b[k][l] ^ b[kp][l] ^ prev[l];
      uint32_t r1 = 1664525u * Mix(x);
      uint32_t r2 = r1 + static_cast<uint32_t>(k);
      b[kp][l] += r1;
      b[kq][l] += r2;
      b[k][l] = r2;
      prev[l] = r2;
    }
  };
  for (size_t k = 5; k < kN - kQ; ++k) pass1_plain(k, k + kP, k + kQ);
  for (size_t k = kN - kQ; k < kN - kP; ++k) {
    pass1_plain(k, k + kP, k + kQ - kN);
  }
  for (size_t k = kN - kP; k < kN; ++k) {
    pass1_plain(k, k + kP - kN, k + kQ - kN);
  }

  auto pass2 = [&](size_t k, size_t kp, size_t kq) {
    for (size_t l = 0; l < L; ++l) {
      uint32_t x = b[k][l] + b[kp][l] + prev[l];
      uint32_t r3 = 1566083941u * Mix(x);
      uint32_t r4 = r3 - static_cast<uint32_t>(k);
      b[kp][l] ^= r3;
      b[kq][l] ^= r4;
      b[k][l] = r4;
      prev[l] = r4;
    }
  };
  for (size_t k = 0; k < kN - kQ; ++k) pass2(k, k + kP, k + kQ);
  for (size_t k = kN - kQ; k < kN - kP; ++k) pass2(k, k + kP, k + kQ - kN);
  for (size_t k = kN - kP; k < kN; ++k) {
    pass2(k, k + kP - kN, k + kQ - kN);
  }

  for (size_t i = 0; i < kN; ++i) {
    for (size_t l = 0; l < L; ++l) out[l * kN + i] = b[i][l];
  }
}

void SeedRngRange(const uint64_t* seeds, size_t count, Rng* out) {
  ForEachSeedSequence(seeds, count, [out](size_t i, auto& seq) {
    out[i].engine().seed(seq);
  });
}

}  // namespace mdrr
