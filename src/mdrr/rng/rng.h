// Deterministic pseudo-random number generation for the library.
//
// All randomized components take an Rng& so experiments are reproducible
// from a single seed. Seeding goes through SplitMix64 so that nearby seeds
// produce unrelated streams.

#ifndef MDRR_RNG_RNG_H_
#define MDRR_RNG_RNG_H_

#include <cstdint>
#include <random>
#include <type_traits>
#include <vector>

#include "mdrr/common/check.h"

namespace mdrr {

// SplitMix64 step: returns the next value of the sequence and advances
// `state`. Used for seed expansion and as a tiny standalone generator.
uint64_t SplitMix64Next(uint64_t& state);

// A seeded 64-bit Mersenne Twister with convenience draws.
// Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Seeds from a std-style seed sequence. Rng(seed) is shorthand for Rng
  // over the four-word SplitMix64 expansion of `seed` (FourWordSeedSeq in
  // fast_seed.h); this constructor is the hook the batched party-seeding
  // path uses to install precomputed seed blocks. Excluded for integral
  // arguments (those mean the seed constructor) and for Rng itself (a
  // copy from a non-const Rng must pick the copy constructor, not try to
  // treat the source as a seed sequence).
  template <typename Sseq,
            typename = std::enable_if_t<
                !std::is_convertible_v<Sseq, uint64_t> &&
                !std::is_same_v<std::remove_cv_t<Sseq>, Rng>>>
  explicit Rng(Sseq& seq) : engine_(seq) {}

  // Uniform on {0, ..., bound - 1}. Precondition: bound > 0.
  // Inline: one draw of this sits inside every randomized-response
  // publication, so the call must vanish into the caller's loop.
  uint64_t UniformInt(uint64_t bound) {
    MDRR_DCHECK_GT(bound, 0u);
    std::uniform_int_distribution<uint64_t> dist(0, bound - 1);
    return dist(engine_);
  }

  // Uniform on [0, 1).
  double UniformDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  // True with probability p (clamped to [0, 1]). p <= 0 and p >= 1 decide
  // without consuming a draw -- part of the transcript contract.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  // Draws an index from the (not necessarily normalized) non-negative
  // weight vector by inverse transform. O(n); for repeated draws from the
  // same distribution use AliasSampler.
  size_t Discrete(const std::vector<double>& weights);

  // Multinomial sample: n trials over `probabilities` (must sum to ~1).
  // Returns counts per category.
  std::vector<int64_t> Multinomial(int64_t n,
                                   const std::vector<double>& probabilities);

  // Uniform Fisher-Yates shuffle of data[0, count). Unlike std::shuffle,
  // whose draw sequence is implementation-defined, this consumes exactly
  // count - 1 UniformInt draws in a fixed order, so shuffled output is
  // part of the library's cross-platform determinism contract (per-shard
  // synthetic release).
  void ShuffleU32(uint32_t* data, size_t count);

  // Derives an independent child generator (for per-party streams).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// A deterministic family of independent sub-streams derived from one base
// seed. Stream(i) depends only on (base_seed, i) -- never on how many
// streams exist or the order they are requested -- so sharded workloads
// can hand each shard its own generator and produce bit-identical output
// for any thread count. Unlike Rng::Fork, which advances the parent and
// therefore ties child streams to the sequence of Fork calls, a family is
// immutable and safe to share across threads.
class RngStreamFamily {
 public:
  explicit RngStreamFamily(uint64_t base_seed);

  // The index-th sub-stream, in its initial state. Pure function of
  // (base_seed, index).
  Rng Stream(uint64_t index) const;

  uint64_t base_seed() const { return base_seed_; }

 private:
  uint64_t base_seed_;
};

}  // namespace mdrr

#endif  // MDRR_RNG_RNG_H_
