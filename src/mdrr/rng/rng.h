// Deterministic pseudo-random number generation for the library.
//
// All randomized components take an Rng& so experiments are reproducible
// from a single seed. Seeding goes through SplitMix64 so that nearby seeds
// produce unrelated streams.

#ifndef MDRR_RNG_RNG_H_
#define MDRR_RNG_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace mdrr {

// SplitMix64 step: returns the next value of the sequence and advances
// `state`. Used for seed expansion and as a tiny standalone generator.
uint64_t SplitMix64Next(uint64_t& state);

// A seeded 64-bit Mersenne Twister with convenience draws.
// Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on {0, ..., bound - 1}. Precondition: bound > 0.
  uint64_t UniformInt(uint64_t bound);

  // Uniform on [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Draws an index from the (not necessarily normalized) non-negative
  // weight vector by inverse transform. O(n); for repeated draws from the
  // same distribution use AliasSampler.
  size_t Discrete(const std::vector<double>& weights);

  // Multinomial sample: n trials over `probabilities` (must sum to ~1).
  // Returns counts per category.
  std::vector<int64_t> Multinomial(int64_t n,
                                   const std::vector<double>& probabilities);

  // Uniform Fisher-Yates shuffle of data[0, count). Unlike std::shuffle,
  // whose draw sequence is implementation-defined, this consumes exactly
  // count - 1 UniformInt draws in a fixed order, so shuffled output is
  // part of the library's cross-platform determinism contract (per-shard
  // synthetic release).
  void ShuffleU32(uint32_t* data, size_t count);

  // Derives an independent child generator (for per-party streams).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// A deterministic family of independent sub-streams derived from one base
// seed. Stream(i) depends only on (base_seed, i) -- never on how many
// streams exist or the order they are requested -- so sharded workloads
// can hand each shard its own generator and produce bit-identical output
// for any thread count. Unlike Rng::Fork, which advances the parent and
// therefore ties child streams to the sequence of Fork calls, a family is
// immutable and safe to share across threads.
class RngStreamFamily {
 public:
  explicit RngStreamFamily(uint64_t base_seed);

  // The index-th sub-stream, in its initial state. Pure function of
  // (base_seed, index).
  Rng Stream(uint64_t index) const;

  uint64_t base_seed() const { return base_seed_; }

 private:
  uint64_t base_seed_;
};

}  // namespace mdrr

#endif  // MDRR_RNG_RNG_H_
