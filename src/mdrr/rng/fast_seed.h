// Fast, bit-exact mt19937_64 seeding.
//
// Rng(seed) has always meant "mt19937_64 seeded from
// std::seed_seq{SplitMix64 x 4}", and every transcript the library
// publishes inherits that contract, so seeding cannot change behavior --
// but it can change cost. The [rand.util.seedseq] generate() algorithm is
// specified exactly by the standard, which makes two optimizations legal:
//
//   * FourWordSeedSeq runs the standard recurrence with the previous
//     word carried in a register and each pass split at its two wrap
//     boundaries, so the hot loops are branch-free and allocation-free.
//   * GenerateSeedBlock runs kSeedLanes independent seed expansions at
//     once in lane-major layout; the recurrence has no data-dependent
//     control flow, so every step is an elementwise op over kSeedLanes
//     words that the compiler vectorizes, and the per-seed dependency
//     chains overlap. Per-engine seeding drops several-fold, which is
//     what makes simulating 10^5..10^6 protocol parties (one engine
//     each) affordable -- see protocol/PartyBlock.
//
// Both paths are golden-tested against std::seed_seq in
// tests/session_fast_path_test.cc; any divergence is a test failure, not
// a silent transcript change.

#ifndef MDRR_RNG_FAST_SEED_H_
#define MDRR_RNG_FAST_SEED_H_

#include <cstddef>
#include <cstdint>
#include <random>

#include "mdrr/rng/rng.h"

namespace mdrr {

// The number of 32-bit words an mt19937_64 requests when seeded from a
// seed sequence (312 state words x 2 words each).
inline constexpr size_t kEngineSeedWords = 624;

// Engines seeded per GenerateSeedBlock call.
inline constexpr size_t kSeedLanes = 8;

// Drop-in replacement for the library's historical engine seeding
// sequence std::seed_seq{SplitMix64Next(s) x 4}: generate() output is
// bit-identical for every request length, by the exactness of the
// [rand.util.seedseq] specification.
class FourWordSeedSeq {
 public:
  // Expands `seed` through SplitMix64 into the four entropy words, the
  // same expansion Rng(seed) has always used. (std::seed_seq stores its
  // inputs mod 2^32, hence the uint32_t entropy.)
  explicit FourWordSeedSeq(uint64_t seed);

  using result_type = uint32_t;
  size_t size() const { return 4; }

  template <typename It>
  void generate(It begin, It end) {
    if (end - begin == static_cast<ptrdiff_t>(kEngineSeedWords)) {
      uint32_t buffer[kEngineSeedWords];
      GenerateEngineWords(buffer);
      for (size_t i = 0; i < kEngineSeedWords; ++i, ++begin) {
        *begin = buffer[i];
      }
      return;
    }
    GenerateGeneric(begin, end);
  }

  // The specialized 624-word expansion (the mt19937_64 request).
  void GenerateEngineWords(uint32_t out[kEngineSeedWords]) const;

 private:
  // Any other request length is off the hot path (an mt19937_64 always
  // asks for 624 words), so delegate to std::seed_seq itself -- correct
  // by construction for hypothetical non-mt19937_64 consumers.
  template <typename It>
  void GenerateGeneric(It begin, It end) const {
    std::seed_seq seq(entropy_, entropy_ + 4);
    seq.generate(begin, end);
  }

  uint32_t entropy_[4];
};

// Runs kSeedLanes FourWordSeedSeq 624-word expansions at once.
// out[l * kEngineSeedWords + i] is word i of the expansion of seeds[l]
// (lane-major, so each lane's words are contiguous for replay).
void GenerateSeedBlock(const uint64_t seeds[kSeedLanes], uint32_t* out);

// Seed-sequence adapter replaying one precomputed word block into an
// engine's seed request. Requests beyond `count` words are filled with
// zeros (an mt19937_64 requests exactly kEngineSeedWords).
class ReplaySeedSeq {
 public:
  ReplaySeedSeq(const uint32_t* words, size_t count)
      : words_(words), count_(count) {}

  using result_type = uint32_t;
  size_t size() const { return count_; }

  template <typename It>
  void generate(It begin, It end) {
    size_t i = 0;
    for (; begin != end && i < count_; ++begin, ++i) *begin = words_[i];
    for (; begin != end; ++begin) *begin = 0;
  }

 private:
  const uint32_t* words_;
  size_t count_;
};

// The one lane-batching walk over a seed range: invokes
// fn(index, seed_sequence) for every i in [0, count), handing kSeedLanes
// seeds at a time through GenerateSeedBlock and any tail through
// FourWordSeedSeq. The sequence passed to fn expands seeds[index]
// exactly as std::seed_seq{SplitMix64 x 4} would, whichever branch
// produced it, so each element is a pure function of its own seed and
// disjoint ranges can be walked concurrently with any grouping. `fn`
// must accept (size_t, Sseq&) generically (two sequence types occur).
template <typename Fn>
void ForEachSeedSequence(const uint64_t* seeds, size_t count, Fn&& fn) {
  size_t i = 0;
  uint32_t block[kSeedLanes * kEngineSeedWords];
  for (; i + kSeedLanes <= count; i += kSeedLanes) {
    GenerateSeedBlock(seeds + i, block);
    for (size_t l = 0; l < kSeedLanes; ++l) {
      ReplaySeedSeq replay(block + l * kEngineSeedWords, kEngineSeedWords);
      fn(i + l, replay);
    }
  }
  for (; i < count; ++i) {
    FourWordSeedSeq seq(seeds[i]);
    fn(i, seq);
  }
}

// Seeds out[0, count) from seeds[0, count) in order. Bit-identical to
// `out[i] = Rng(seeds[i])` for every i (golden-tested).
void SeedRngRange(const uint64_t* seeds, size_t count, Rng* out);

}  // namespace mdrr

#endif  // MDRR_RNG_FAST_SEED_H_
