#include "mdrr/rng/rng.h"

#include "mdrr/common/check.h"
#include "mdrr/rng/fast_seed.h"

namespace mdrr {

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

std::mt19937_64 MakeEngine(uint64_t seed) {
  // Expand the seed through SplitMix64 into a full seed sequence so that
  // seeds 1, 2, 3, ... give unrelated streams. FourWordSeedSeq is the
  // historical std::seed_seq expansion, bit for bit, minus its
  // allocations and generic-index arithmetic (fast_seed.h).
  FourWordSeedSeq seq(seed);
  return std::mt19937_64(seq);
}

}  // namespace

Rng::Rng(uint64_t seed) : engine_(MakeEngine(seed)) {}

size_t Rng::Discrete(const std::vector<double>& weights) {
  MDRR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MDRR_CHECK_GE(w, 0.0);
    total += w;
  }
  MDRR_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // Guards against floating-point round-off.
}

std::vector<int64_t> Rng::Multinomial(
    int64_t n, const std::vector<double>& probabilities) {
  MDRR_CHECK(!probabilities.empty());
  std::vector<int64_t> counts(probabilities.size(), 0);
  // Sequential binomial decomposition: conditional on the remaining mass,
  // each category count is Binomial(remaining_n, p_i / remaining_mass).
  double remaining_mass = 0.0;
  for (double p : probabilities) remaining_mass += p;
  int64_t remaining_n = n;
  for (size_t i = 0; i + 1 < probabilities.size() && remaining_n > 0; ++i) {
    double p = remaining_mass > 0.0 ? probabilities[i] / remaining_mass : 0.0;
    if (p > 1.0) p = 1.0;
    std::binomial_distribution<int64_t> dist(remaining_n, p);
    int64_t c = dist(engine_);
    counts[i] = c;
    remaining_n -= c;
    remaining_mass -= probabilities[i];
  }
  counts.back() += remaining_n;
  return counts;
}

void Rng::ShuffleU32(uint32_t* data, size_t count) {
  for (size_t k = count; k > 1; --k) {
    size_t j = static_cast<size_t>(UniformInt(k));
    uint32_t tmp = data[k - 1];
    data[k - 1] = data[j];
    data[j] = tmp;
  }
}

Rng Rng::Fork() {
  uint64_t child_seed = engine_();
  return Rng(child_seed);
}

RngStreamFamily::RngStreamFamily(uint64_t base_seed)
    : base_seed_(base_seed) {}

Rng RngStreamFamily::Stream(uint64_t index) const {
  // Whiten the index before mixing it with the base seed so streams
  // 0, 1, 2, ... are as unrelated as random seeds, then whiten the
  // mixture once more (the Rng constructor expands it further).
  uint64_t index_state = index;
  uint64_t mixed = base_seed_ ^ SplitMix64Next(index_state);
  return Rng(SplitMix64Next(mixed));
}

}  // namespace mdrr
