// Counter-based pseudo-random generation: Philox4x32-10 (Salmon et al.,
// "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11 -- the Random123
// reference design, pinned here against its published test vectors).
//
// Unlike the stateful mt19937 engine of rng.h, a counter-based generator
// is a pure function block = Philox(counter, key): producing output N of
// a stream costs the same whether or not outputs 0..N-1 were ever
// computed. That gives the library two properties mt19937 + seed_seq
// cannot offer:
//
//   * O(1) stream jump -- CounterRng::Jump(n) is an integer add, so shard
//     boundaries cost nothing (no 624-word seed_seq expansion per shard
//     or per party);
//   * element addressing -- a kernel can hand element i of a stream its
//     OWN 128-bit block, making the output a pure function of
//     (seed, stream, i) that cannot depend on shard grain, thread count,
//     or chunking.
//
// Stream/element layout used by every counter-policy kernel in the
// library (RrMatrix::RandomizeRangeCounterInto, AliasSampler::SampleBlock,
// the batch engine, streaming ingest and the protocol session):
//
//   key     = { lo32(seed),    hi32(seed)    }
//   counter = { lo32(element), hi32(element), lo32(stream), hi32(stream) }
//
// and the four output words of element i's block are consumed as
//
//   unit = ((w1 << 32 | w0) >> 11) * 2^-53          -- a double in [0, 1)
//   raw  =  (w3 << 32 | w2)                         -- full-entropy u64
//   bounded(b) = floor(raw * b / 2^64)              -- integer in [0, b)
//
// The bounded draw is the fixed-budget form of Lemire's multiplicative
// range reduction: the rejection step is elided so every element consumes
// exactly one block regardless of data or branches (what makes the draw
// plan grain-proof), at the cost of a selection bias below b * 2^-64 --
// under 2^-33 for every domain the library can publish (codes are capped
// at 2^31 categories), orders of magnitude below the sampling noise of
// any finite release.
//
// The same four-words-per-block sequence read linearly is the sequential
// facade CounterRng (32-bit output words in block order), so an aligned
// scalar NextDouble-then-NextU64 pair replays exactly one element block.

#ifndef MDRR_RNG_COUNTER_RNG_H_
#define MDRR_RNG_COUNTER_RNG_H_

#include <cstddef>
#include <cstdint>

#include "mdrr/common/check.h"

namespace mdrr {

// Which RNG backend a policy draws its per-record randomness from.
// Declared here (the lowest layer that knows both engines exist) so core
// and release can share the token without a dependency cycle.
enum class RngKind : uint8_t {
  // std::mt19937_64 seeded through the bit-exact seed_seq expansion of
  // rng.h / fast_seed.h. The default; every transcript committed before
  // the counter backend existed is an mt19937 transcript.
  kMt19937,
  // Philox4x32-10 counter streams (this header). Per-record output is a
  // pure function of (seed, stream, element) -- bit-identical at any
  // thread count AND any shard grain -- and stream jump is O(1).
  kPhilox,
};

// One 128-bit Philox output block.
struct PhiloxBlock {
  uint32_t w[4];
};

namespace counter_internal {

// Random123 reference constants for philox4x32.
constexpr uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

}  // namespace counter_internal

// The 10-round philox4x32 bijection, exactly as specified by Random123
// (verified against its published kat_vectors in counter_rng_test.cc).
// Inline: the whole function is ~40 multiply/xor ops with no memory
// traffic, and the block kernels call it once per element.
inline PhiloxBlock Philox4x32(uint32_t c0, uint32_t c1, uint32_t c2,
                              uint32_t c3, uint32_t k0, uint32_t k1) {
  using counter_internal::kPhiloxM0;
  using counter_internal::kPhiloxM1;
  using counter_internal::kPhiloxW0;
  using counter_internal::kPhiloxW1;
  for (int round = 0; round < 10; ++round) {
    if (round > 0) {
      k0 += kPhiloxW0;
      k1 += kPhiloxW1;
    }
    const uint64_t product0 = static_cast<uint64_t>(kPhiloxM0) * c0;
    const uint64_t product1 = static_cast<uint64_t>(kPhiloxM1) * c2;
    const uint32_t hi0 = static_cast<uint32_t>(product0 >> 32);
    const uint32_t lo0 = static_cast<uint32_t>(product0);
    const uint32_t hi1 = static_cast<uint32_t>(product1 >> 32);
    const uint32_t lo1 = static_cast<uint32_t>(product1);
    const uint32_t n0 = hi1 ^ c1 ^ k0;
    const uint32_t n2 = hi0 ^ c3 ^ k1;
    c0 = n0;
    c1 = lo1;
    c2 = n2;
    c3 = lo0;
  }
  return PhiloxBlock{{c0, c1, c2, c3}};
}

// The block owned by element `element` of stream (seed, stream) -- the
// layout documented at the top of this header.
inline PhiloxBlock PhiloxElementBlock(uint64_t seed, uint64_t stream,
                                      uint64_t element) {
  return Philox4x32(static_cast<uint32_t>(element),
                    static_cast<uint32_t>(element >> 32),
                    static_cast<uint32_t>(stream),
                    static_cast<uint32_t>(stream >> 32),
                    static_cast<uint32_t>(seed),
                    static_cast<uint32_t>(seed >> 32));
}

// 53-bit canonical double in [0, 1) from a full-entropy u64 -- the same
// mantissa construction for the block kernels and the scalar facade.
inline double PhiloxUnitFromU64(uint64_t raw) {
  return static_cast<double>(raw >> 11) * 0x1.0p-53;
}

// Fixed-budget Lemire range reduction: an integer in [0, bound) from one
// full-entropy u64, branch-free (see the bias note at the top).
// Precondition: bound > 0.
inline uint64_t PhiloxBoundedFromRaw(uint64_t raw, uint64_t bound) {
  MDRR_DCHECK_GT(bound, 0u);
#if defined(__SIZEOF_INT128__)
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(raw) * bound) >> 64);
#else
  // Portable 64x64->high-64 via four 32-bit partial products.
  const uint64_t a_lo = raw & 0xFFFFFFFFu, a_hi = raw >> 32;
  const uint64_t b_lo = bound & 0xFFFFFFFFu, b_hi = bound >> 32;
  const uint64_t mid = a_hi * b_lo + ((a_lo * b_lo) >> 32);
  const uint64_t mid2 = a_lo * b_hi + (mid & 0xFFFFFFFFu);
  return a_hi * b_hi + (mid >> 32) + (mid2 >> 32);
#endif
}

// SoA fill of the per-element draws for elements
// [first, first + count) of stream (seed, stream): units[k] is element
// (first + k)'s unit double, raws[k] its full-entropy u64. Independent
// blocks, no carried state -- the loop body has no loop-carried
// dependence, so the compiler is free to vectorize/pipeline it.
void PhiloxFillElementDraws(uint64_t seed, uint64_t stream, uint64_t first,
                            size_t count, double* units, uint64_t* raws);

// Sequential facade over one philox stream: a stateful generator whose
// output word N is word N & 3 of block N >> 2 -- so it replays exactly
// the element-block sequence when consumed four words at a time, and any
// position is reachable in O(1).
//
// Not thread-safe (like Rng); copy freely -- state is 24 bytes.
class CounterRng {
 public:
  explicit CounterRng(uint64_t seed, uint64_t stream = 0)
      : seed_(seed), stream_(stream) {}

  uint64_t seed() const { return seed_; }
  uint64_t stream() const { return stream_; }

  // Index of the next 32-bit output word.
  uint64_t position() const { return position_; }

  // Skips n 32-bit output words in O(1). (Jump(4 * k) advances exactly k
  // element blocks.)
  void Jump(uint64_t n) { position_ += n; }

  // The next 32-bit word of the stream.
  uint32_t NextU32() {
    const uint64_t block = position_ >> 2;
    if (block != cached_block_ || !cached_valid_) {
      words_ = PhiloxElementBlock(seed_, stream_, block);
      cached_block_ = block;
      cached_valid_ = true;
    }
    return words_.w[position_++ & 3];
  }

  // Two words, low word first (matches the element-block layout).
  uint64_t NextU64() {
    const uint32_t lo = NextU32();
    const uint32_t hi = NextU32();
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  // Canonical double in [0, 1), 53 bits.
  double NextDouble() { return PhiloxUnitFromU64(NextU64()); }

  // Uniform on {0, ..., bound - 1}; consumes one u64 (fixed budget, same
  // reduction as the block kernels). Precondition: bound > 0.
  uint64_t BoundedU64(uint64_t bound) {
    return PhiloxBoundedFromRaw(NextU64(), bound);
  }

 private:
  uint64_t seed_;
  uint64_t stream_;
  uint64_t position_ = 0;
  uint64_t cached_block_ = 0;
  bool cached_valid_ = false;
  PhiloxBlock words_{{0, 0, 0, 0}};
};

}  // namespace mdrr

#endif  // MDRR_RNG_COUNTER_RNG_H_
