#include "mdrr/rng/alias_sampler.h"

#include <limits>

#include "mdrr/common/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MDRR_ALIAS_AVX2 1
#include <immintrin.h>
#endif

namespace mdrr {
namespace {

// Reference lookup; also the tail loop of the vector path. The vector
// kernel reproduces exactly this arithmetic (same bucket derivation,
// same IEEE `<` on the same threshold value), so the two are bitwise
// interchangeable.
void AliasLookupScalar(const double* thresholds, const uint32_t* aliases,
                       uint64_t bound, const uint32_t* rows,
                       const double* units, const uint64_t* raws,
                       size_t count, uint32_t* out) {
  for (size_t k = 0; k < count; ++k) {
    const uint32_t bucket =
        static_cast<uint32_t>(PhiloxBoundedFromRaw(raws[k], bound));
    const size_t idx =
        (rows != nullptr ? static_cast<size_t>(rows[k]) * bound : 0) + bucket;
    out[k] = units[k] < thresholds[idx] ? bucket : aliases[idx];
  }
}

#ifdef MDRR_ALIAS_AVX2
// Four lanes per step: buckets come from the scalar 64x64->128 Lemire
// high-multiply (no AVX2 equivalent, and it is not the bottleneck), the
// threshold/alias loads are gathers, and the accept/alias choice is a
// branch-free blend keyed off the 64-bit compare mask narrowed to 32
// bits. Caller guarantees every index fits in int32 (gather indices are
// signed 32-bit).
__attribute__((target("avx2"))) void AliasLookupAvx2(
    const double* thresholds, const uint32_t* aliases, uint64_t bound,
    const uint32_t* rows, const double* units, const uint64_t* raws,
    size_t count, uint32_t* out) {
  const __m256i even_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    alignas(16) int32_t idx[4];
    alignas(16) int32_t bucket[4];
    for (int j = 0; j < 4; ++j) {
      const uint32_t b =
          static_cast<uint32_t>(PhiloxBoundedFromRaw(raws[k + j], bound));
      bucket[j] = static_cast<int32_t>(b);
      const uint64_t flat =
          (rows != nullptr ? static_cast<uint64_t>(rows[k + j]) * bound : 0) +
          b;
      idx[j] = static_cast<int32_t>(flat);
    }
    const __m128i vidx =
        _mm_load_si128(reinterpret_cast<const __m128i*>(idx));
    const __m256d vthreshold =
        _mm256_i32gather_pd(thresholds, vidx, /*scale=*/8);
    const __m256d vunit = _mm256_loadu_pd(units + k);
    // _CMP_LT_OQ is IEEE operator< (ordered, quiet); units and
    // thresholds are finite by construction, so NaN semantics never
    // enter the transcript.
    const __m256d lt = _mm256_cmp_pd(vunit, vthreshold, _CMP_LT_OQ);
    const __m256i narrowed = _mm256_permutevar8x32_epi32(
        _mm256_castpd_si256(lt), even_dwords);
    const __m128i mask32 = _mm256_castsi256_si128(narrowed);
    const __m128i valias = _mm_i32gather_epi32(
        reinterpret_cast<const int*>(aliases), vidx, /*scale=*/4);
    const __m128i vbucket =
        _mm_load_si128(reinterpret_cast<const __m128i*>(bucket));
    const __m128i result = _mm_blendv_epi8(valias, vbucket, mask32);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), result);
  }
  AliasLookupScalar(thresholds, aliases, bound,
                    rows != nullptr ? rows + k : nullptr, units + k, raws + k,
                    count - k, out + k);
}

bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2");
  return have;
}
#endif  // MDRR_ALIAS_AVX2

}  // namespace

void AliasLookupBlock(const double* thresholds, const uint32_t* aliases,
                      uint64_t bound, size_t table_entries,
                      const uint32_t* rows, const double* units,
                      const uint64_t* raws, size_t count, uint32_t* out) {
#ifdef MDRR_ALIAS_AVX2
  if (table_entries <=
          static_cast<size_t>(std::numeric_limits<int32_t>::max()) &&
      HaveAvx2()) {
    AliasLookupAvx2(thresholds, aliases, bound, rows, units, raws, count,
                    out);
    return;
  }
#else
  (void)table_entries;
#endif
  AliasLookupScalar(thresholds, aliases, bound, rows, units, raws, count,
                    out);
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  MDRR_CHECK(!weights.empty());
  // Alias indices are stored as uint32_t; a longer weight vector would
  // silently truncate them.
  MDRR_CHECK_LE(weights.size(), std::numeric_limits<uint32_t>::max());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    MDRR_CHECK_GE(w, 0.0);
    total += w;
  }
  MDRR_CHECK_GT(total, 0.0);

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale weights so the average bucket is exactly 1.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are exactly 1 up to round-off.
  for (uint32_t i : large) probability_[i] = 1.0;
  for (uint32_t i : small) probability_[i] = 1.0;
}

void AliasSampler::SampleBlock(const double* units, const uint64_t* raws,
                               size_t count, uint32_t* out) const {
  MDRR_CHECK(!probability_.empty());
  AliasLookupBlock(probability_.data(), alias_.data(), probability_.size(),
                   probability_.size(), /*rows=*/nullptr, units, raws, count,
                   out);
}

void AliasSampler::AppendTables(std::vector<double>& thresholds,
                                std::vector<uint32_t>& aliases) const {
  thresholds.insert(thresholds.end(), probability_.begin(),
                    probability_.end());
  aliases.insert(aliases.end(), alias_.begin(), alias_.end());
}

double AliasSampler::ProbabilityOf(size_t i) const {
  MDRR_CHECK_LT(i, probability_.size());
  const size_t n = probability_.size();
  double p = probability_[i];
  for (size_t j = 0; j < n; ++j) {
    if (alias_[j] == i && probability_[j] < 1.0) p += 1.0 - probability_[j];
  }
  return p / n;
}

}  // namespace mdrr
