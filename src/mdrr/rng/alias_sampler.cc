#include "mdrr/rng/alias_sampler.h"

#include "mdrr/common/check.h"

namespace mdrr {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  MDRR_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    MDRR_CHECK_GE(w, 0.0);
    total += w;
  }
  MDRR_CHECK_GT(total, 0.0);

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale weights so the average bucket is exactly 1.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are exactly 1 up to round-off.
  for (uint32_t i : large) probability_[i] = 1.0;
  for (uint32_t i : small) probability_[i] = 1.0;
}

size_t AliasSampler::Sample(Rng& rng) const {
  size_t bucket = rng.UniformInt(probability_.size());
  if (rng.UniformDouble() < probability_[bucket]) return bucket;
  return alias_[bucket];
}

double AliasSampler::ProbabilityOf(size_t i) const {
  MDRR_CHECK_LT(i, probability_.size());
  const size_t n = probability_.size();
  double p = probability_[i];
  for (size_t j = 0; j < n; ++j) {
    if (alias_[j] == i && probability_[j] < 1.0) p += 1.0 - probability_[j];
  }
  return p / n;
}

}  // namespace mdrr
