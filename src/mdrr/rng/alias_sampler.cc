#include "mdrr/rng/alias_sampler.h"

#include <limits>

#include "mdrr/common/check.h"

namespace mdrr {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  MDRR_CHECK(!weights.empty());
  // Alias indices are stored as uint32_t; a longer weight vector would
  // silently truncate them.
  MDRR_CHECK_LE(weights.size(), std::numeric_limits<uint32_t>::max());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    MDRR_CHECK_GE(w, 0.0);
    total += w;
  }
  MDRR_CHECK_GT(total, 0.0);

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale weights so the average bucket is exactly 1.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are exactly 1 up to round-off.
  for (uint32_t i : large) probability_[i] = 1.0;
  for (uint32_t i : small) probability_[i] = 1.0;
}

void AliasSampler::SampleBlock(const double* units, const uint64_t* raws,
                               size_t count, uint32_t* out) const {
  MDRR_CHECK(!probability_.empty());
  const uint64_t n = probability_.size();
  const double* probability = probability_.data();
  const uint32_t* alias = alias_.data();
  for (size_t k = 0; k < count; ++k) {
    const uint32_t bucket =
        static_cast<uint32_t>(PhiloxBoundedFromRaw(raws[k], n));
    out[k] = units[k] < probability[bucket] ? bucket : alias[bucket];
  }
}

double AliasSampler::ProbabilityOf(size_t i) const {
  MDRR_CHECK_LT(i, probability_.size());
  const size_t n = probability_.size();
  double p = probability_[i];
  for (size_t j = 0; j < n; ++j) {
    if (alias_[j] == i && probability_[j] < 1.0) p += 1.0 - probability_[j];
  }
  return p / n;
}

}  // namespace mdrr
