#include "mdrr/rng/block_rng.h"

namespace mdrr {

namespace {

// Words per stack chunk in the u64/double/bounded fills (must be even so
// u64 pairs never straddle a chunk boundary).
constexpr size_t kChunkWords = 512;

}  // namespace

void BlockRng::FillU32(uint32_t* out, size_t count) {
  size_t i = 0;
  // Head: finish the partially consumed block so the middle is aligned.
  while (i < count && (source_.position() & 3) != 0) {
    out[i++] = source_.NextU32();
  }
  // Middle: whole blocks written straight to the output, four words per
  // Philox evaluation; the facade position advances in one O(1) jump.
  uint64_t block = source_.position() >> 2;
  const uint64_t seed = source_.seed();
  const uint64_t stream = source_.stream();
  size_t whole = (count - i) >> 2;
  source_.Jump(whole * 4);
  for (; whole > 0; --whole, ++block, i += 4) {
    const PhiloxBlock b = PhiloxElementBlock(seed, stream, block);
    out[i] = b.w[0];
    out[i + 1] = b.w[1];
    out[i + 2] = b.w[2];
    out[i + 3] = b.w[3];
  }
  // Tail: the last count & 3 words.
  while (i < count) {
    out[i++] = source_.NextU32();
  }
}

void BlockRng::FillU64(uint64_t* out, size_t count) {
  uint32_t words[kChunkWords];
  size_t done = 0;
  while (done < count) {
    const size_t chunk = count - done < kChunkWords / 2 ? count - done
                                                        : kChunkWords / 2;
    FillU32(words, chunk * 2);
    for (size_t k = 0; k < chunk; ++k) {
      out[done + k] =
          (static_cast<uint64_t>(words[2 * k + 1]) << 32) | words[2 * k];
    }
    done += chunk;
  }
}

void BlockRng::FillDouble(double* out, size_t count) {
  uint64_t raws[kChunkWords / 2];
  size_t done = 0;
  while (done < count) {
    const size_t chunk = count - done < kChunkWords / 2 ? count - done
                                                        : kChunkWords / 2;
    FillU64(raws, chunk);
    for (size_t k = 0; k < chunk; ++k) {
      out[done + k] = PhiloxUnitFromU64(raws[k]);
    }
    done += chunk;
  }
}

void BlockRng::FillBoundedU64(uint64_t bound, uint64_t* out, size_t count) {
  MDRR_CHECK_GT(bound, 0u);
  FillU64(out, count);
  for (size_t k = 0; k < count; ++k) {
    out[k] = PhiloxBoundedFromRaw(out[k], bound);
  }
}

}  // namespace mdrr
