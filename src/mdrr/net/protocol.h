// Message schemas for the coordinator/worker and streaming-ingest
// protocols, plus the version handshake.
//
// Release protocol (one column perturbation = one task):
//
//   worker                         coordinator
//     | --- Hello(magic,ver,role) --> |
//     | <-- HelloAck ---------------- |        (or Abort on mismatch)
//     | <-- AssignShards ------------ |  matrix + RNG addressing + slices
//     | --- PartialResult ----------> |  perturbed slices + merged counts
//     |        ... more AssignShards/PartialResult rounds ...
//     | <-- Commit ------------------ |  release published, disconnect
//     | <-- Abort(reason) ----------- |  fail-closed at any point
//
// Every AssignShards carries the complete randomness address (seed,
// stream_base, counter_stream) and shard indices, so a worker
// reconstructs exactly the generator the in-process engine would use for
// each shard: mt19937 shard s draws from Stream(stream_base + s); philox
// elements are addressed by (counter_stream, global index). The
// coordinator merges worker counts with FrequencyTable::Absorb (integer
// sums commute) and writes code slices at their global offsets, so the
// assembled transcript is bit-identical to BatchPerturbationEngine's.
//
// All Parse* functions accept untrusted bytes and return Status on any
// malformed input (fuzzed in net_fuzz_test.cc).

#ifndef MDRR_NET_PROTOCOL_H_
#define MDRR_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mdrr/common/status.h"
#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/net/frame.h"
#include "mdrr/net/socket.h"

namespace mdrr {
namespace net {

enum class PeerRole : uint8_t {
  kWorker = 1,  // computes shard perturbations for a coordinator
  kIngest = 2,  // streams reports into mdrr_collectd
};

// --- Handshake ---

struct HelloMsg {
  uint32_t magic = kProtocolMagic;
  uint32_t version = kProtocolVersion;
  PeerRole role = PeerRole::kWorker;
};

std::vector<uint8_t> EncodeHello(const HelloMsg& msg);
StatusOr<HelloMsg> ParseHello(const std::vector<uint8_t>& payload);

// Client side: sends Hello, waits for HelloAck. Version/magic mismatch or
// a server Abort fails with the server's reason.
Status ClientHandshake(TcpConnection& conn, PeerRole role,
                       int64_t deadline_ms);

// Server side: expects Hello, validates magic + version, replies HelloAck.
// On mismatch sends Abort with the reason and returns the error.
StatusOr<PeerRole> ServerHandshake(TcpConnection& conn, int64_t deadline_ms);

// --- Release protocol ---

struct ShardAssignment {
  uint64_t shard_index = 0;   // chunk index within the column
  uint64_t global_begin = 0;  // offset of the slice in the full column
  std::vector<uint32_t> codes;
};

struct AssignShardsMsg {
  uint64_t task_id = 0;  // echoes back in PartialResult
  uint8_t rng_kind = 0;  // RngPolicy cast to its underlying value
  uint64_t seed = 0;
  uint64_t stream_base = 0;     // mt19937: shard s uses stream_base + s
  uint64_t counter_stream = 0;  // philox: all elements on this stream
  std::optional<RrMatrix> matrix;
  std::vector<ShardAssignment> shards;
};

std::vector<uint8_t> EncodeAssignShards(const AssignShardsMsg& msg);
StatusOr<AssignShardsMsg> ParseAssignShards(
    const std::vector<uint8_t>& payload);

struct ShardResult {
  uint64_t shard_index = 0;
  std::vector<uint32_t> codes;
};

struct PartialResultMsg {
  uint64_t task_id = 0;
  std::vector<ShardResult> shards;
  // Output-category counts over all assigned shards, merged worker-side
  // (integer sums commute, so pre-merging loses nothing).
  std::vector<int64_t> counts;
};

std::vector<uint8_t> EncodePartialResult(const PartialResultMsg& msg);
StatusOr<PartialResultMsg> ParsePartialResult(
    const std::vector<uint8_t>& payload);

struct AbortMsg {
  std::string reason;
};

std::vector<uint8_t> EncodeAbort(const AbortMsg& msg);
StatusOr<AbortMsg> ParseAbort(const std::vector<uint8_t>& payload);

// --- Streaming ingest protocol (single connection) ---

struct StreamOpenMsg {
  std::vector<uint64_t> cardinalities;  // one per attribute
  uint64_t total_reports = 0;
};

std::vector<uint8_t> EncodeStreamOpen(const StreamOpenMsg& msg);
StatusOr<StreamOpenMsg> ParseStreamOpen(const std::vector<uint8_t>& payload);

// A batch of already-perturbed reports with contiguous absolute
// sequence numbers [first_sequence, first_sequence + num_reports).
// `codes` is row-major: report k's attribute j at k * num_attributes + j.
struct StreamReportMsg {
  uint64_t first_sequence = 0;
  uint32_t num_reports = 0;
  uint32_t num_attributes = 0;
  std::vector<uint32_t> codes;
};

std::vector<uint8_t> EncodeStreamReport(const StreamReportMsg& msg);
StatusOr<StreamReportMsg> ParseStreamReport(
    const std::vector<uint8_t>& payload);

struct StreamSealMsg {
  uint64_t total_reports = 0;
};

std::vector<uint8_t> EncodeStreamSeal(const StreamSealMsg& msg);
StatusOr<StreamSealMsg> ParseStreamSeal(const std::vector<uint8_t>& payload);

struct StreamResultMsg {
  uint64_t reports_ingested = 0;
  double epsilon_spent = 0.0;
  uint8_t finished = 0;
};

std::vector<uint8_t> EncodeStreamResult(const StreamResultMsg& msg);
StatusOr<StreamResultMsg> ParseStreamResult(
    const std::vector<uint8_t>& payload);

}  // namespace net
}  // namespace mdrr

#endif  // MDRR_NET_PROTOCOL_H_
