// Worker side of the distributed release protocol.
//
// RunWorker connects to a coordinator, handshakes as PeerRole::kWorker,
// then serves AssignShards requests until the coordinator commits
// (Status::OK), aborts (Status::Unavailable with the reason), or the
// connection fails. One call serves exactly one release session.
//
// Shard computation reproduces the in-process engine draw-for-draw:
//   kMt19937: shard s draws from RngStreamFamily(seed).Stream(
//             stream_base + s) via RandomizeRangeInto over the slice --
//             a fresh generator per shard consumed in record order,
//             exactly the engine's kernel.
//   kPhilox:  element k of the slice is element (global_begin + k) of
//             counter stream (seed, counter_stream) via RandomizeCounter,
//             which is documented bit-equal to what the engine's
//             RandomizeRangeCounterInto computes for that global index.

#ifndef MDRR_NET_WORKER_H_
#define MDRR_NET_WORKER_H_

#include <cstdint>
#include <string>

#include "mdrr/common/status.h"

namespace mdrr {
namespace net {

struct WorkerOptions {
  // Deadline for connect, handshake, and result sends; <= 0 uses
  // kDefaultDeadlineMs.
  int64_t deadline_ms = 0;
  // How long to sit idle waiting for the next assignment before giving
  // up on the coordinator. Longer than deadline_ms because the
  // coordinator legitimately goes quiet while it runs the serial stages
  // (adjustment, synthesis, estimation) between column perturbations.
  int64_t idle_deadline_ms = 120000;
};

// Serves one coordinator session. Returns OK on Commit, an error on
// Abort, malformed traffic, or connection failure.
Status RunWorker(const std::string& host, uint16_t port,
                 const WorkerOptions& options = {});

}  // namespace net
}  // namespace mdrr

#endif  // MDRR_NET_WORKER_H_
