#include "mdrr/net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace mdrr {
namespace net {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ResolveDeadline(int64_t deadline_ms) {
  return deadline_ms <= 0 ? kDefaultDeadlineMs : deadline_ms;
}

Status Errno(const char* op) {
  return Status::IoError(std::string(op) + ": " + std::strerror(errno));
}

// Waits until `fd` is ready for `events` (POLLIN/POLLOUT) or the absolute
// deadline passes. Retries EINTR against the remaining budget.
Status WaitReady(int fd, short events, int64_t deadline_at_ms,
                 const char* op) {
  for (;;) {
    int64_t budget = deadline_at_ms - NowMs();
    if (budget <= 0) {
      return Status::DeadlineExceeded(std::string(op) + " timed out");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    int rc = poll(&pfd, 1, static_cast<int>(budget));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(op) + " timed out");
    }
    // POLLERR/POLLHUP surface through the subsequent read/write, which
    // reports the precise condition (EOF vs. reset).
    return Status::OK();
  }
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

}  // namespace

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<TcpConnection> TcpConnection::Connect(const std::string& host,
                                               uint16_t port,
                                               int64_t deadline_ms) {
  int64_t deadline_at = NowMs() + ResolveDeadline(deadline_ms);

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    if (result != nullptr) freeaddrinfo(result);
    return Status::Unavailable("cannot resolve host '" + host +
                               "': " + gai_strerror(rc));
  }

  int fd = socket(result->ai_family, result->ai_socktype,
                  result->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(result);
    return Errno("socket");
  }

  // Non-blocking connect so the deadline bounds connection establishment
  // too (a dead coordinator host must not hang the worker for the kernel
  // default of minutes).
  Status s = SetNonBlocking(fd, true);
  if (!s.ok()) {
    ::close(fd);
    freeaddrinfo(result);
    return s;
  }
  rc = connect(fd, result->ai_addr, result->ai_addrlen);
  freeaddrinfo(result);
  if (rc < 0 && errno != EINPROGRESS) {
    Status err = Status::Unavailable(std::string("connect: ") +
                                     std::strerror(errno));
    ::close(fd);
    return err;
  }
  if (rc < 0) {
    s = WaitReady(fd, POLLOUT, deadline_at, "connect");
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      Status err = Status::Unavailable(
          std::string("connect: ") +
          std::strerror(so_error != 0 ? so_error : errno));
      ::close(fd);
      return err;
    }
  }
  s = SetNonBlocking(fd, false);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }

  // Frames are small and latency-sensitive; don't let Nagle batch them.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConnection(fd);
}

Status TcpConnection::SendBytes(const void* data, size_t len,
                                int64_t deadline_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("send on closed connection");
  int64_t deadline_at = NowMs() + ResolveDeadline(deadline_ms);
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < len) {
    MDRR_RETURN_IF_ERROR(WaitReady(fd_, POLLOUT, deadline_at, "send"));
    // MSG_NOSIGNAL: a peer that vanished mid-send must produce a Status,
    // not a SIGPIPE.
    ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed connection during send");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConnection::SendFrame(FrameType type,
                                const std::vector<uint8_t>& payload,
                                int64_t deadline_ms) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds kMaxFramePayload");
  }
  WireWriter header;
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U8(static_cast<uint8_t>(type));
  MDRR_RETURN_IF_ERROR(SendBytes(header.buffer().data(),
                                 header.buffer().size(), deadline_ms));
  if (!payload.empty()) {
    MDRR_RETURN_IF_ERROR(
        SendBytes(payload.data(), payload.size(), deadline_ms));
  }
  return Status::OK();
}

Status TcpConnection::RecvExact(void* out, size_t len, int64_t deadline_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("recv on closed connection");
  int64_t deadline_at = NowMs() + ResolveDeadline(deadline_ms);
  uint8_t* p = static_cast<uint8_t*>(out);
  size_t got = 0;
  while (got < len) {
    MDRR_RETURN_IF_ERROR(WaitReady(fd_, POLLIN, deadline_at, "recv"));
    ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      if (errno == ECONNRESET) {
        return Status::Unavailable("peer reset connection during recv");
      }
      return Errno("recv");
    }
    if (n == 0) {
      return Status::Unavailable("peer closed connection mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> TcpConnection::RecvFrame(int64_t deadline_ms) {
  uint8_t header[5];
  MDRR_RETURN_IF_ERROR(RecvExact(header, sizeof(header), deadline_ms));
  WireReader reader(header, sizeof(header));
  uint32_t payload_len = reader.U32().value();
  uint8_t type = reader.U8().value();
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload length " + std::to_string(payload_len) +
        " exceeds protocol maximum");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    MDRR_RETURN_IF_ERROR(
        RecvExact(frame.payload.data(), payload_len, deadline_ms));
  }
  return frame;
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

Status TcpListener::Listen(uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("listener already bound");
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status err = Errno("bind");
    ::close(fd);
    return err;
  }
  if (listen(fd, SOMAXCONN) < 0) {
    Status err = Errno("listen");
    ::close(fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    Status err = Errno("getsockname");
    ::close(fd);
    return err;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

StatusOr<TcpConnection> TcpListener::Accept(int64_t deadline_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("accept on closed listener");
  int64_t deadline_at = NowMs() + ResolveDeadline(deadline_ms);
  for (;;) {
    MDRR_RETURN_IF_ERROR(WaitReady(fd_, POLLIN, deadline_at, "accept"));
    int fd = accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      return Errno("accept");
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpConnection(fd);
  }
}

}  // namespace net
}  // namespace mdrr
