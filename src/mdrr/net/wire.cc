#include "mdrr/net/wire.h"

#include <cmath>
#include <string>

#include "mdrr/linalg/matrix.h"
#include "mdrr/linalg/structured.h"

namespace mdrr {
namespace net {
namespace {

constexpr uint8_t kMatrixStructured = 1;
constexpr uint8_t kMatrixDense = 2;

// Bounds a claimed element count against the bytes actually present.
Status CheckClaimedLength(uint64_t claimed, size_t element_bytes,
                          const WireReader& reader, const char* what) {
  if (claimed > reader.remaining() / element_bytes) {
    return Status::OutOfRange(std::string("claimed ") + what +
                              " length exceeds buffer");
  }
  return Status::OK();
}

}  // namespace

void EncodeMatrix(const RrMatrix& matrix, WireWriter& writer) {
  if (matrix.is_structured()) {
    const linalg::UniformMixture& m = *matrix.structured();
    writer.U8(kMatrixStructured);
    writer.U64(m.size);
    writer.F64(m.diagonal);
    writer.F64(m.off_diagonal);
    return;
  }
  linalg::Matrix dense = matrix.ToDense();
  writer.U8(kMatrixDense);
  writer.U64(dense.rows());
  for (size_t u = 0; u < dense.rows(); ++u) {
    for (size_t v = 0; v < dense.cols(); ++v) {
      writer.F64(dense(u, v));
    }
  }
}

StatusOr<RrMatrix> DecodeMatrix(WireReader& reader) {
  MDRR_ASSIGN_OR_RETURN(uint8_t tag, reader.U8());
  if (tag == kMatrixStructured) {
    MDRR_ASSIGN_OR_RETURN(uint64_t size, reader.U64());
    MDRR_ASSIGN_OR_RETURN(double diagonal, reader.F64());
    MDRR_ASSIGN_OR_RETURN(double off_diagonal, reader.F64());
    if (size == 0 || size > kMaxFramePayload) {
      return Status::InvalidArgument("structured matrix size out of range");
    }
    return RrMatrix::FromStructured(linalg::UniformMixture{
        static_cast<size_t>(size), diagonal, off_diagonal});
  }
  if (tag == kMatrixDense) {
    MDRR_ASSIGN_OR_RETURN(uint64_t r, reader.U64());
    if (r == 0) {
      return Status::InvalidArgument("dense matrix must be nonempty");
    }
    // r * r doubles must fit in what's actually on the wire.
    if (r > reader.remaining() / 8 || r * r > reader.remaining() / 8) {
      return Status::OutOfRange("claimed dense matrix exceeds buffer");
    }
    size_t n = static_cast<size_t>(r);
    linalg::Matrix dense(n, n, 0.0);
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = 0; v < n; ++v) {
        MDRR_ASSIGN_OR_RETURN(dense(u, v), reader.F64());
      }
    }
    return RrMatrix::FromDense(std::move(dense));
  }
  return Status::InvalidArgument("unknown matrix representation tag");
}

void EncodeCounts(const std::vector<int64_t>& counts, WireWriter& writer) {
  writer.U64(counts.size());
  for (int64_t c : counts) writer.I64(c);
}

StatusOr<std::vector<int64_t>> DecodeCounts(WireReader& reader) {
  MDRR_ASSIGN_OR_RETURN(uint64_t len, reader.U64());
  MDRR_RETURN_IF_ERROR(CheckClaimedLength(len, 8, reader, "count buffer"));
  std::vector<int64_t> counts(static_cast<size_t>(len));
  for (size_t i = 0; i < counts.size(); ++i) {
    MDRR_ASSIGN_OR_RETURN(counts[i], reader.I64());
  }
  return counts;
}

void EncodeCodes(const uint32_t* codes, size_t len, WireWriter& writer) {
  writer.U64(len);
  for (size_t i = 0; i < len; ++i) writer.U32(codes[i]);
}

StatusOr<std::vector<uint32_t>> DecodeCodes(WireReader& reader) {
  MDRR_ASSIGN_OR_RETURN(uint64_t len, reader.U64());
  MDRR_RETURN_IF_ERROR(CheckClaimedLength(len, 4, reader, "code column"));
  std::vector<uint32_t> codes(static_cast<size_t>(len));
  for (size_t i = 0; i < codes.size(); ++i) {
    MDRR_ASSIGN_OR_RETURN(codes[i], reader.U32());
  }
  return codes;
}

void EncodeFrequencyTable(const stats::FrequencyTable& table,
                          WireWriter& writer) {
  EncodeCounts(table.counts(), writer);
}

StatusOr<stats::FrequencyTable> DecodeFrequencyTable(WireReader& reader) {
  MDRR_ASSIGN_OR_RETURN(std::vector<int64_t> counts, DecodeCounts(reader));
  // FrequencyTable CHECKs non-negativity; on wire input that must be a
  // Status, not a crash.
  for (int64_t c : counts) {
    if (c < 0) {
      return Status::InvalidArgument("frequency table count is negative");
    }
  }
  return stats::FrequencyTable(std::move(counts));
}

void EncodeChunkRows(const ChunkedDoubleAccumulator& acc, size_t first_chunk,
                     size_t num_chunks, WireWriter& writer) {
  writer.U64(num_chunks);
  writer.U64(acc.width());
  for (size_t c = first_chunk; c < first_chunk + num_chunks; ++c) {
    writer.U64(c);
    const double* row = acc.Row(c);
    for (size_t j = 0; j < acc.width(); ++j) writer.F64(row[j]);
  }
}

Status MergeChunkRowsInto(WireReader& reader, ChunkedDoubleAccumulator& acc) {
  MDRR_ASSIGN_OR_RETURN(uint64_t num_rows, reader.U64());
  MDRR_ASSIGN_OR_RETURN(uint64_t width, reader.U64());
  if (width != acc.width()) {
    return Status::InvalidArgument("chunk row width mismatch");
  }
  // Each row carries a u64 index plus `width` doubles.
  if (width > 0 &&
      num_rows > reader.remaining() / (8 + width * 8)) {
    return Status::OutOfRange("claimed chunk row count exceeds buffer");
  }
  for (uint64_t i = 0; i < num_rows; ++i) {
    MDRR_ASSIGN_OR_RETURN(uint64_t chunk, reader.U64());
    if (chunk >= acc.num_chunks()) {
      return Status::OutOfRange("chunk index out of range");
    }
    double* row = acc.Row(static_cast<size_t>(chunk));
    for (uint64_t j = 0; j < width; ++j) {
      MDRR_ASSIGN_OR_RETURN(double v, reader.F64());
      row[j] += v;
    }
  }
  return Status::OK();
}

}  // namespace net
}  // namespace mdrr
