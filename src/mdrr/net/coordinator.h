// Release coordinator: distributes column perturbation over connected
// worker processes and reassembles the exact in-process transcript.
//
// The coordinator owns the listen socket and one connection per worker.
// PerturbColumn cuts the column into the SAME shard grid the threaded
// BatchPerturbationEngine would use (NumChunks of the configured
// shard_size), deals shard s to worker s mod W, sends every assignment,
// then collects one PartialResult per participating worker. Slices land
// at their global offsets and counts merge through FrequencyTable::Absorb
// (integer sums commute), so for a fixed (seed, shard_size, rng) the
// assembled column is bit-identical to the in-process sharded engine for
// ANY worker count -- the contract distributed_release_test.cc and the
// release-distributed bench stage assert.
//
// Failure is fail-closed: any send/recv error, malformed reply, deadline,
// or worker disconnect poisons the coordinator -- the current and all
// later PerturbColumn calls fail, Commit refuses, and the caller aborts
// the release without publishing anything. There are no retries: a
// re-sent shard could double-count if the first reply was in flight.

#ifndef MDRR_NET_COORDINATOR_H_
#define MDRR_NET_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdrr/common/status.h"
#include "mdrr/common/status_or.h"
#include "mdrr/core/perturber.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/net/socket.h"
#include "mdrr/rng/counter_rng.h"

namespace mdrr {
namespace net {

struct CoordinatorOptions {
  uint64_t seed = 1;
  RngKind rng = RngKind::kMt19937;
  // Shard grain -- must equal the ExecutionPolicy's shard_size for the
  // bit-equality contract to hold. 0 is clamped to 1.
  size_t shard_size = 1 << 16;
  // Per-operation network deadline; <= 0 uses kDefaultDeadlineMs.
  int64_t deadline_ms = 0;
};

class Coordinator {
 public:
  explicit Coordinator(const CoordinatorOptions& options);

  // Binds the listen socket (port 0 = ephemeral, see port()).
  Status Listen(uint16_t port);
  uint16_t port() const { return listener_.port(); }

  // Accepts and handshakes `count` workers. Fails (and poisons the
  // coordinator) if any worker misses the deadline or fails the
  // handshake.
  Status AcceptWorkers(size_t count);

  size_t num_workers() const { return workers_.size(); }

  // Perturbs one column across the workers. `stream_base` and
  // `counter_stream` carry the engine's randomness addressing for this
  // column (see batch_engine.h stream layout).
  StatusOr<PerturbedColumn> PerturbColumn(const RrMatrix& matrix,
                                          const std::vector<uint32_t>& codes,
                                          uint64_t stream_base,
                                          uint64_t counter_stream);

  // Tells every worker the release committed and disconnects them.
  // Refuses if the coordinator is poisoned.
  Status Commit();

  // Best-effort Abort(reason) to every worker, then disconnect. Safe to
  // call at any point, including after a failure.
  void Abort(const std::string& reason);

 private:
  Status Poison(Status status);

  CoordinatorOptions options_;
  TcpListener listener_;
  std::vector<TcpConnection> workers_;
  uint64_t next_task_id_ = 1;
  Status failure_;  // first failure; non-OK means poisoned
};

}  // namespace net
}  // namespace mdrr

#endif  // MDRR_NET_COORDINATOR_H_
