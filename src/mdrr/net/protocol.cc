#include "mdrr/net/protocol.h"

#include <utility>

#include "mdrr/net/wire.h"

namespace mdrr {
namespace net {
namespace {

// Guard for claimed collection sizes whose elements occupy at least
// `element_bytes` on the wire each.
Status CheckClaimed(uint64_t claimed, size_t element_bytes,
                    const WireReader& reader, const char* what) {
  if (claimed > reader.remaining() / element_bytes) {
    return Status::OutOfRange(std::string("claimed ") + what +
                              " count exceeds buffer");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeHello(const HelloMsg& msg) {
  WireWriter w;
  w.U32(msg.magic);
  w.U32(msg.version);
  w.U8(static_cast<uint8_t>(msg.role));
  return w.Release();
}

StatusOr<HelloMsg> ParseHello(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  HelloMsg msg;
  MDRR_ASSIGN_OR_RETURN(msg.magic, r.U32());
  MDRR_ASSIGN_OR_RETURN(msg.version, r.U32());
  MDRR_ASSIGN_OR_RETURN(uint8_t role, r.U8());
  if (role != static_cast<uint8_t>(PeerRole::kWorker) &&
      role != static_cast<uint8_t>(PeerRole::kIngest)) {
    return Status::InvalidArgument("unknown peer role");
  }
  msg.role = static_cast<PeerRole>(role);
  return msg;
}

Status ClientHandshake(TcpConnection& conn, PeerRole role,
                       int64_t deadline_ms) {
  HelloMsg hello;
  hello.role = role;
  MDRR_RETURN_IF_ERROR(
      conn.SendFrame(FrameType::kHello, EncodeHello(hello), deadline_ms));
  MDRR_ASSIGN_OR_RETURN(Frame frame, conn.RecvFrame(deadline_ms));
  if (frame.type == FrameType::kAbort) {
    auto abort = ParseAbort(frame.payload);
    return Status::Unavailable("server rejected handshake: " +
                               (abort.ok() ? abort->reason
                                           : std::string("(unparseable)")));
  }
  if (frame.type != FrameType::kHelloAck) {
    return Status::InvalidArgument("expected HelloAck in handshake");
  }
  WireReader r(frame.payload);
  MDRR_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  MDRR_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (magic != kProtocolMagic) {
    return Status::InvalidArgument("server spoke a different protocol");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: server v" + std::to_string(version) +
        ", client v" + std::to_string(kProtocolVersion));
  }
  return Status::OK();
}

StatusOr<PeerRole> ServerHandshake(TcpConnection& conn, int64_t deadline_ms) {
  MDRR_ASSIGN_OR_RETURN(Frame frame, conn.RecvFrame(deadline_ms));
  if (frame.type != FrameType::kHello) {
    AbortMsg abort{"expected Hello"};
    conn.SendFrame(FrameType::kAbort, EncodeAbort(abort), deadline_ms);
    return Status::InvalidArgument("peer did not open with Hello");
  }
  auto hello = ParseHello(frame.payload);
  if (!hello.ok()) {
    AbortMsg abort{"malformed Hello"};
    conn.SendFrame(FrameType::kAbort, EncodeAbort(abort), deadline_ms);
    return hello.status();
  }
  if (hello->magic != kProtocolMagic) {
    AbortMsg abort{"bad protocol magic"};
    conn.SendFrame(FrameType::kAbort, EncodeAbort(abort), deadline_ms);
    return Status::InvalidArgument("peer spoke a different protocol");
  }
  if (hello->version != kProtocolVersion) {
    AbortMsg abort{"unsupported protocol version v" +
                   std::to_string(hello->version) + " (server speaks v" +
                   std::to_string(kProtocolVersion) + ")"};
    conn.SendFrame(FrameType::kAbort, EncodeAbort(abort), deadline_ms);
    return Status::InvalidArgument(
        "protocol version mismatch: peer v" + std::to_string(hello->version) +
        ", server v" + std::to_string(kProtocolVersion));
  }
  WireWriter ack;
  ack.U32(kProtocolMagic);
  ack.U32(kProtocolVersion);
  MDRR_RETURN_IF_ERROR(
      conn.SendFrame(FrameType::kHelloAck, ack.Release(), deadline_ms));
  return hello->role;
}

std::vector<uint8_t> EncodeAssignShards(const AssignShardsMsg& msg) {
  WireWriter w;
  w.U64(msg.task_id);
  w.U8(msg.rng_kind);
  w.U64(msg.seed);
  w.U64(msg.stream_base);
  w.U64(msg.counter_stream);
  EncodeMatrix(*msg.matrix, w);
  w.U64(msg.shards.size());
  for (const ShardAssignment& shard : msg.shards) {
    w.U64(shard.shard_index);
    w.U64(shard.global_begin);
    EncodeCodes(shard.codes.data(), shard.codes.size(), w);
  }
  return w.Release();
}

StatusOr<AssignShardsMsg> ParseAssignShards(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  AssignShardsMsg msg;
  MDRR_ASSIGN_OR_RETURN(msg.task_id, r.U64());
  MDRR_ASSIGN_OR_RETURN(msg.rng_kind, r.U8());
  MDRR_ASSIGN_OR_RETURN(msg.seed, r.U64());
  MDRR_ASSIGN_OR_RETURN(msg.stream_base, r.U64());
  MDRR_ASSIGN_OR_RETURN(msg.counter_stream, r.U64());
  MDRR_ASSIGN_OR_RETURN(RrMatrix matrix, DecodeMatrix(r));
  msg.matrix.emplace(std::move(matrix));
  MDRR_ASSIGN_OR_RETURN(uint64_t num_shards, r.U64());
  // Each shard is at least shard_index + global_begin + a code length.
  MDRR_RETURN_IF_ERROR(CheckClaimed(num_shards, 24, r, "shard"));
  msg.shards.reserve(static_cast<size_t>(num_shards));
  for (uint64_t i = 0; i < num_shards; ++i) {
    ShardAssignment shard;
    MDRR_ASSIGN_OR_RETURN(shard.shard_index, r.U64());
    MDRR_ASSIGN_OR_RETURN(shard.global_begin, r.U64());
    MDRR_ASSIGN_OR_RETURN(shard.codes, DecodeCodes(r));
    for (uint32_t code : shard.codes) {
      if (code >= msg.matrix->size()) {
        return Status::InvalidArgument(
            "shard code out of matrix range");
      }
    }
    msg.shards.push_back(std::move(shard));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after AssignShards");
  }
  return msg;
}

std::vector<uint8_t> EncodePartialResult(const PartialResultMsg& msg) {
  WireWriter w;
  w.U64(msg.task_id);
  w.U64(msg.shards.size());
  for (const ShardResult& shard : msg.shards) {
    w.U64(shard.shard_index);
    EncodeCodes(shard.codes.data(), shard.codes.size(), w);
  }
  EncodeCounts(msg.counts, w);
  return w.Release();
}

StatusOr<PartialResultMsg> ParsePartialResult(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  PartialResultMsg msg;
  MDRR_ASSIGN_OR_RETURN(msg.task_id, r.U64());
  MDRR_ASSIGN_OR_RETURN(uint64_t num_shards, r.U64());
  MDRR_RETURN_IF_ERROR(CheckClaimed(num_shards, 16, r, "shard result"));
  msg.shards.reserve(static_cast<size_t>(num_shards));
  for (uint64_t i = 0; i < num_shards; ++i) {
    ShardResult shard;
    MDRR_ASSIGN_OR_RETURN(shard.shard_index, r.U64());
    MDRR_ASSIGN_OR_RETURN(shard.codes, DecodeCodes(r));
    msg.shards.push_back(std::move(shard));
  }
  MDRR_ASSIGN_OR_RETURN(msg.counts, DecodeCounts(r));
  // Perturbation counts are category tallies: a negative value can only
  // come from a broken or hostile worker, and downstream
  // FrequencyTable::Absorb must never see it (it would CHECK).
  for (int64_t count : msg.counts) {
    if (count < 0) {
      return Status::InvalidArgument("PartialResult count is negative");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after PartialResult");
  }
  return msg;
}

std::vector<uint8_t> EncodeAbort(const AbortMsg& msg) {
  WireWriter w;
  w.String(msg.reason);
  return w.Release();
}

StatusOr<AbortMsg> ParseAbort(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  AbortMsg msg;
  MDRR_ASSIGN_OR_RETURN(msg.reason, r.String());
  return msg;
}

std::vector<uint8_t> EncodeStreamOpen(const StreamOpenMsg& msg) {
  WireWriter w;
  w.U64(msg.cardinalities.size());
  for (uint64_t c : msg.cardinalities) w.U64(c);
  w.U64(msg.total_reports);
  return w.Release();
}

StatusOr<StreamOpenMsg> ParseStreamOpen(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  StreamOpenMsg msg;
  MDRR_ASSIGN_OR_RETURN(uint64_t num_attrs, r.U64());
  MDRR_RETURN_IF_ERROR(CheckClaimed(num_attrs, 8, r, "cardinality"));
  msg.cardinalities.resize(static_cast<size_t>(num_attrs));
  for (size_t j = 0; j < msg.cardinalities.size(); ++j) {
    MDRR_ASSIGN_OR_RETURN(msg.cardinalities[j], r.U64());
    if (msg.cardinalities[j] == 0) {
      return Status::InvalidArgument("attribute cardinality must be >= 1");
    }
  }
  MDRR_ASSIGN_OR_RETURN(msg.total_reports, r.U64());
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after StreamOpen");
  }
  return msg;
}

std::vector<uint8_t> EncodeStreamReport(const StreamReportMsg& msg) {
  WireWriter w;
  w.U64(msg.first_sequence);
  w.U32(msg.num_reports);
  w.U32(msg.num_attributes);
  for (uint32_t code : msg.codes) w.U32(code);
  return w.Release();
}

StatusOr<StreamReportMsg> ParseStreamReport(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  StreamReportMsg msg;
  MDRR_ASSIGN_OR_RETURN(msg.first_sequence, r.U64());
  MDRR_ASSIGN_OR_RETURN(msg.num_reports, r.U32());
  MDRR_ASSIGN_OR_RETURN(msg.num_attributes, r.U32());
  if (msg.num_reports == 0 || msg.num_attributes == 0) {
    return Status::InvalidArgument("empty stream report batch");
  }
  uint64_t total = static_cast<uint64_t>(msg.num_reports) *
                   static_cast<uint64_t>(msg.num_attributes);
  MDRR_RETURN_IF_ERROR(CheckClaimed(total, 4, r, "report code"));
  msg.codes.resize(static_cast<size_t>(total));
  for (size_t i = 0; i < msg.codes.size(); ++i) {
    MDRR_ASSIGN_OR_RETURN(msg.codes[i], r.U32());
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after StreamReport");
  }
  return msg;
}

std::vector<uint8_t> EncodeStreamSeal(const StreamSealMsg& msg) {
  WireWriter w;
  w.U64(msg.total_reports);
  return w.Release();
}

StatusOr<StreamSealMsg> ParseStreamSeal(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  StreamSealMsg msg;
  MDRR_ASSIGN_OR_RETURN(msg.total_reports, r.U64());
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after StreamSeal");
  }
  return msg;
}

std::vector<uint8_t> EncodeStreamResult(const StreamResultMsg& msg) {
  WireWriter w;
  w.U64(msg.reports_ingested);
  w.F64(msg.epsilon_spent);
  w.U8(msg.finished);
  return w.Release();
}

StatusOr<StreamResultMsg> ParseStreamResult(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  StreamResultMsg msg;
  MDRR_ASSIGN_OR_RETURN(msg.reports_ingested, r.U64());
  MDRR_ASSIGN_OR_RETURN(msg.epsilon_spent, r.F64());
  MDRR_ASSIGN_OR_RETURN(msg.finished, r.U8());
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after StreamResult");
  }
  return msg;
}

}  // namespace net
}  // namespace mdrr
