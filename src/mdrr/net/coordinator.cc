#include "mdrr/net/coordinator.h"

#include <algorithm>
#include <utility>

#include "mdrr/common/parallel.h"
#include "mdrr/net/protocol.h"
#include "mdrr/net/wire.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {
namespace net {

Coordinator::Coordinator(const CoordinatorOptions& options)
    : options_(options) {
  if (options_.shard_size == 0) options_.shard_size = 1;
}

Status Coordinator::Listen(uint16_t port) {
  return listener_.Listen(port);
}

Status Coordinator::AcceptWorkers(size_t count) {
  MDRR_RETURN_IF_ERROR(failure_);
  for (size_t i = 0; i < count; ++i) {
    auto conn = listener_.Accept(options_.deadline_ms);
    if (!conn.ok()) {
      return Poison(Status(conn.status().code(),
                           "accepting worker " + std::to_string(i) + " of " +
                               std::to_string(count) + ": " +
                               conn.status().message()));
    }
    auto role = ServerHandshake(conn.value(), options_.deadline_ms);
    if (!role.ok()) return Poison(role.status());
    if (role.value() != PeerRole::kWorker) {
      return Poison(Status::InvalidArgument(
          "peer connected with a non-worker role"));
    }
    workers_.push_back(std::move(conn).value());
  }
  return Status::OK();
}

StatusOr<PerturbedColumn> Coordinator::PerturbColumn(
    const RrMatrix& matrix, const std::vector<uint32_t>& codes,
    uint64_t stream_base, uint64_t counter_stream) {
  MDRR_RETURN_IF_ERROR(failure_);
  if (workers_.empty()) {
    return Poison(Status::FailedPrecondition("no workers connected"));
  }

  const size_t n = codes.size();
  const size_t num_shards = n == 0 ? 0 : NumChunks(n, options_.shard_size);
  const size_t num_workers = workers_.size();
  const uint64_t task_id = next_task_id_++;

  // Deal shard s to worker s mod W. The map from shard to worker is pure
  // bookkeeping -- randomness is addressed per shard, so ANY assignment
  // reassembles identically; round-robin just balances the load.
  std::vector<AssignShardsMsg> assignments(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    AssignShardsMsg& msg = assignments[w];
    msg.task_id = task_id;
    msg.rng_kind = static_cast<uint8_t>(options_.rng);
    msg.seed = options_.seed;
    msg.stream_base = stream_base;
    msg.counter_stream = counter_stream;
    msg.matrix.emplace(matrix);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t begin = s * options_.shard_size;
    const size_t end = std::min(n, begin + options_.shard_size);
    ShardAssignment shard;
    shard.shard_index = s;
    shard.global_begin = begin;
    shard.codes.assign(codes.begin() + static_cast<ptrdiff_t>(begin),
                       codes.begin() + static_cast<ptrdiff_t>(end));
    assignments[s % num_workers].shards.push_back(std::move(shard));
  }

  // Send every assignment before reading any reply: workers always read
  // their full assignment before writing results, so the two sides never
  // deadlock on full socket buffers.
  for (size_t w = 0; w < num_workers; ++w) {
    if (assignments[w].shards.empty()) continue;
    Status s = workers_[w].SendFrame(FrameType::kAssignShards,
                                     EncodeAssignShards(assignments[w]),
                                     options_.deadline_ms);
    if (!s.ok()) {
      return Poison(Status(s.code(), "assigning shards to worker " +
                                         std::to_string(w) + ": " +
                                         s.message()));
    }
  }

  PerturbedColumn result;
  result.codes.assign(n, 0);
  stats::FrequencyTable total(std::vector<int64_t>(matrix.size(), 0));

  for (size_t w = 0; w < num_workers; ++w) {
    const AssignShardsMsg& sent = assignments[w];
    if (sent.shards.empty()) continue;
    auto frame = workers_[w].RecvFrame(options_.deadline_ms);
    if (!frame.ok()) {
      return Poison(Status(frame.status().code(),
                           "waiting for worker " + std::to_string(w) + ": " +
                               frame.status().message()));
    }
    if (frame->type == FrameType::kAbort) {
      auto abort = ParseAbort(frame->payload);
      return Poison(Status::Unavailable(
          "worker " + std::to_string(w) + " aborted: " +
          (abort.ok() ? abort->reason : std::string("(unparseable)"))));
    }
    if (frame->type != FrameType::kPartialResult) {
      return Poison(Status::InvalidArgument(
          "worker " + std::to_string(w) + " sent an unexpected frame"));
    }
    auto partial = ParsePartialResult(frame->payload);
    if (!partial.ok()) return Poison(partial.status());
    if (partial->task_id != task_id) {
      return Poison(Status::InvalidArgument(
          "worker " + std::to_string(w) + " answered the wrong task"));
    }
    if (partial->shards.size() != sent.shards.size() ||
        partial->counts.size() != matrix.size()) {
      return Poison(Status::InvalidArgument(
          "worker " + std::to_string(w) + " returned a malformed partial"));
    }
    for (size_t i = 0; i < partial->shards.size(); ++i) {
      const ShardResult& got = partial->shards[i];
      const ShardAssignment& want = sent.shards[i];
      if (got.shard_index != want.shard_index ||
          got.codes.size() != want.codes.size()) {
        return Poison(Status::InvalidArgument(
            "worker " + std::to_string(w) + " returned mismatched shards"));
      }
      for (uint32_t code : got.codes) {
        if (code >= matrix.size()) {
          return Poison(Status::InvalidArgument(
              "worker " + std::to_string(w) +
              " returned codes outside the matrix range"));
        }
      }
      std::copy(got.codes.begin(), got.codes.end(),
                result.codes.begin() +
                    static_cast<ptrdiff_t>(want.global_begin));
    }
    total.Absorb(stats::FrequencyTable(partial->counts));
  }

  result.lambda = total.Proportions();
  return result;
}

Status Coordinator::Commit() {
  MDRR_RETURN_IF_ERROR(failure_);
  for (size_t w = 0; w < workers_.size(); ++w) {
    Status s =
        workers_[w].SendFrame(FrameType::kCommit, {}, options_.deadline_ms);
    if (!s.ok()) {
      // The transcript is already assembled; a worker that vanished
      // between its last result and the commit notification cannot
      // corrupt it. Report but do not poison.
      workers_[w].Close();
    }
  }
  workers_.clear();
  return Status::OK();
}

void Coordinator::Abort(const std::string& reason) {
  AbortMsg msg{reason};
  std::vector<uint8_t> payload = EncodeAbort(msg);
  for (TcpConnection& worker : workers_) {
    if (worker.valid()) {
      // Short best-effort deadline: an abort must never hang the
      // coordinator on a dead peer.
      worker.SendFrame(FrameType::kAbort, payload, 1000);
      worker.Close();
    }
  }
  workers_.clear();
  if (failure_.ok()) {
    failure_ = Status::Unavailable("release aborted: " + reason);
  }
}

Status Coordinator::Poison(Status status) {
  if (failure_.ok()) failure_ = status;
  // Drop every connection: after one failed exchange the shard/reply
  // pairing is unknown, and reusing a connection risks double-counting.
  for (TcpConnection& worker : workers_) worker.Close();
  workers_.clear();
  return failure_;
}

}  // namespace net
}  // namespace mdrr
