// Blocking TCP transport with poll()-based deadlines.
//
// TcpConnection sends and receives the frames of frame.h over a connected
// socket. All I/O is blocking but bounded: every operation takes a
// deadline in milliseconds (<= 0 means kDefaultDeadlineMs) enforced with
// poll(), so a stalled peer yields Status::DeadlineExceeded instead of a
// hung process -- the fail-closed behavior the coordinator relies on to
// abort a release rather than publish a partial transcript.
//
// RecvFrame validates the length prefix against kMaxFramePayload BEFORE
// allocating, so a hostile 4-byte header cannot drive an unbounded
// allocation. A peer that closes mid-frame yields Status::Unavailable.

#ifndef MDRR_NET_SOCKET_H_
#define MDRR_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "mdrr/common/status.h"
#include "mdrr/common/status_or.h"
#include "mdrr/net/frame.h"

namespace mdrr {
namespace net {

// Default per-operation deadline when the caller passes <= 0.
inline constexpr int64_t kDefaultDeadlineMs = 30000;

// A connected TCP socket. Move-only; the destructor closes the fd.
class TcpConnection {
 public:
  TcpConnection() : fd_(-1) {}
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Connects to host:port (numeric IPv4 dotted quad or a resolvable
  // name), bounding the connect itself by `deadline_ms`.
  static StatusOr<TcpConnection> Connect(const std::string& host,
                                         uint16_t port, int64_t deadline_ms);

  bool valid() const { return fd_ >= 0; }
  void Close();

  // Writes one frame (header + payload), retrying partial writes until
  // everything is out or the deadline lapses.
  Status SendFrame(FrameType type, const std::vector<uint8_t>& payload,
                   int64_t deadline_ms);

  // Reads one full frame. Rejects payload lengths above kMaxFramePayload
  // without allocating. EOF before a full frame -> Unavailable.
  StatusOr<Frame> RecvFrame(int64_t deadline_ms);

  // Raw byte send, bypassing framing. Exposed so tests can put malformed
  // bytes on the wire (oversized length prefixes, truncated frames) and
  // assert the receive side fails closed.
  Status SendBytes(const void* data, size_t len, int64_t deadline_ms);

 private:
  // Reads exactly `len` bytes into `out`. EOF -> Unavailable, stall ->
  // DeadlineExceeded.
  Status RecvExact(void* out, size_t len, int64_t deadline_ms);

  int fd_;
};

// A listening TCP socket bound to INADDR_ANY. Move-only.
class TcpListener {
 public:
  TcpListener() : fd_(-1), port_(0) {}
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens. Port 0 picks an ephemeral port; read it back with
  // port(). SO_REUSEADDR is set so restarted coordinators do not trip
  // over TIME_WAIT.
  Status Listen(uint16_t port);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  void Close();

  // Accepts one connection, waiting at most `deadline_ms` (<= 0 uses the
  // default). No client in time -> DeadlineExceeded.
  StatusOr<TcpConnection> Accept(int64_t deadline_ms);

 private:
  int fd_;
  uint16_t port_;
};

}  // namespace net
}  // namespace mdrr

#endif  // MDRR_NET_SOCKET_H_
