// Wire codecs for the mergeable partial state that crosses the
// coordinator/worker boundary.
//
// Everything here is a pure buffer transform (no sockets), so the fuzz
// suite can drive the decoders with arbitrary bytes. Decoders validate
// every embedded length against WireReader::remaining() BEFORE
// allocating -- a hostile peer claiming 2^60 elements gets an error, not
// an out-of-memory kill -- and return Status on any malformed input.
//
// Matrix transport is representation-tagged so a decoded matrix draws
// bit-identically to the source:
//   - structured (uniform mixture): the three defining parameters
//     {size, diagonal, off_diagonal} travel verbatim and are rebuilt via
//     RrMatrix::FromStructured, skipping any dense round trip.
//   - dense: raw row-major doubles, rebuilt via RrMatrix::FromDense.
//     FromDense re-runs uniform-mixture detection, but detection is a
//     deterministic function of the exact doubles -- a matrix that was
//     dense at the source decodes dense again.

#ifndef MDRR_NET_WIRE_H_
#define MDRR_NET_WIRE_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/parallel.h"
#include "mdrr/common/status.h"
#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/net/frame.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {
namespace net {

// --- RrMatrix ---

void EncodeMatrix(const RrMatrix& matrix, WireWriter& writer);
StatusOr<RrMatrix> DecodeMatrix(WireReader& reader);

// --- Count buffers (i64) and code columns (u32) ---

void EncodeCounts(const std::vector<int64_t>& counts, WireWriter& writer);
StatusOr<std::vector<int64_t>> DecodeCounts(WireReader& reader);

void EncodeCodes(const uint32_t* codes, size_t len, WireWriter& writer);
StatusOr<std::vector<uint32_t>> DecodeCodes(WireReader& reader);

// --- FrequencyTable (sharded-histogram partials travel as their merged
//     count vectors; integer merges commute, so this loses nothing) ---

void EncodeFrequencyTable(const stats::FrequencyTable& table,
                          WireWriter& writer);
StatusOr<stats::FrequencyTable> DecodeFrequencyTable(WireReader& reader);

// --- Chunk-ordered double partials ---
//
// ChunkedDoubleAccumulator rows must merge in ascending chunk order to
// stay bit-identical (doubles don't commute). The codec ships rows
// [first_chunk, first_chunk + num_chunks) tagged with their indices, and
// the merge side adds each row into the matching row of a local
// accumulator -- so the final ReduceInto still walks ascending chunk
// order regardless of which peer computed which rows.

void EncodeChunkRows(const ChunkedDoubleAccumulator& acc, size_t first_chunk,
                     size_t num_chunks, WireWriter& writer);

// Adds the encoded rows into `acc` (dimensions must match what was
// encoded; out-of-range chunk indices or width mismatches fail).
Status MergeChunkRowsInto(WireReader& reader, ChunkedDoubleAccumulator& acc);

}  // namespace net
}  // namespace mdrr

#endif  // MDRR_NET_WIRE_H_
