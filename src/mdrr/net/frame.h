// Wire framing for the distributed release protocol.
//
// Every message on an mdrr connection is one frame:
//
//   [u32 payload_length][u8 frame_type][payload bytes]
//
// with all multi-byte integers little-endian, packed byte-by-byte (no
// struct punning), so the format is identical across hosts regardless of
// native endianness. Payload length covers the payload only (not the type
// byte) and is capped at kMaxFramePayload; a peer claiming more is a
// protocol error, rejected before any allocation.
//
// WireWriter/WireReader are the primitive serializers every payload codec
// builds on. The reader is fully bounds-checked and returns Status on
// truncation -- frames can come from untrusted peers, so decoders must
// never index past the buffer or trust embedded lengths (see
// net_fuzz_test.cc).

#ifndef MDRR_NET_FRAME_H_
#define MDRR_NET_FRAME_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "mdrr/common/status.h"
#include "mdrr/common/status_or.h"

namespace mdrr {
namespace net {

// "MDRR" in ASCII; first field of the Hello frame so a stray client
// speaking a different protocol is rejected immediately.
inline constexpr uint32_t kProtocolMagic = 0x4d445252;

// Bumped on any incompatible wire change. Handshakes reject mismatches.
inline constexpr uint32_t kProtocolVersion = 1;

// Hard upper bound on a frame payload (1 GiB). Large enough for any shard
// assignment at realistic grains, small enough that a hostile length
// prefix cannot drive an unbounded allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

enum class FrameType : uint8_t {
  // Handshake.
  kHello = 1,     // client -> server: magic, version, role
  kHelloAck = 2,  // server -> client: magic, version

  // Coordinator/worker release protocol.
  kAssignShards = 3,   // coordinator -> worker: matrix + shard slices
  kPartialResult = 4,  // worker -> coordinator: codes + merged counts
  kCommit = 5,         // coordinator -> worker: release done, disconnect
  kAbort = 6,          // either direction: fail-closed with a reason

  // Streaming ingest (mdrr_collectd --listen).
  kStreamOpen = 7,    // client -> server: cardinalities, total reports
  kStreamReport = 8,  // client -> server: batch of perturbed reports
  kStreamSeal = 9,    // client -> server: no more reports
  kStreamResult = 10  // server -> client: ingest summary
};

struct Frame {
  FrameType type;
  std::vector<uint8_t> payload;
};

// Appends little-endian primitives to a byte buffer.
class WireWriter {
 public:
  void U8(uint8_t v) { buffer_.push_back(v); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

  // IEEE-754 bit pattern, so doubles round-trip exactly (the determinism
  // contract is bitwise; "close" is a failure).
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void Bytes(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + len);
  }

  // u32 length prefix + raw bytes.
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> Release() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

// Bounds-checked little-endian reads over a borrowed byte span. Every
// getter fails with OutOfRange on truncation instead of reading past the
// end; `remaining()` lets codecs sanity-check claimed element counts
// before allocating.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit WireReader(const std::vector<uint8_t>& buffer)
      : WireReader(buffer.data(), buffer.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  StatusOr<uint8_t> U8() {
    if (remaining() < 1) return Truncated("u8");
    return data_[pos_++];
  }

  StatusOr<uint32_t> U32() {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  StatusOr<uint64_t> U64() {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  StatusOr<int64_t> I64() {
    auto v = U64();
    if (!v.ok()) return v.status();
    return static_cast<int64_t>(v.value());
  }

  StatusOr<double> F64() {
    auto bits = U64();
    if (!bits.ok()) return bits.status();
    double v;
    uint64_t b = bits.value();
    std::memcpy(&v, &b, sizeof(v));
    return v;
  }

  StatusOr<std::string> String() {
    auto len = U32();
    if (!len.ok()) return len.status();
    if (remaining() < len.value()) return Truncated("string body");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len.value());
    pos_ += len.value();
    return s;
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Truncated("skip");
    pos_ += n;
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::OutOfRange(std::string("wire buffer truncated reading ") +
                              what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace net
}  // namespace mdrr

#endif  // MDRR_NET_FRAME_H_
