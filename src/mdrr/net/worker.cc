#include "mdrr/net/worker.h"

#include <utility>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/net/protocol.h"
#include "mdrr/net/socket.h"
#include "mdrr/net/wire.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace net {
namespace {

// Computes one assignment's shards and the worker-merged counts.
StatusOr<PartialResultMsg> ComputeAssignment(const AssignShardsMsg& msg) {
  if (!msg.matrix.has_value()) {
    return Status::InvalidArgument("assignment carries no matrix");
  }
  const RrMatrix& matrix = *msg.matrix;
  if (msg.rng_kind != static_cast<uint8_t>(RngKind::kMt19937) &&
      msg.rng_kind != static_cast<uint8_t>(RngKind::kPhilox)) {
    return Status::InvalidArgument("unknown rng policy in assignment");
  }
  const RngKind rng_kind = static_cast<RngKind>(msg.rng_kind);

  PartialResultMsg result;
  result.task_id = msg.task_id;
  result.counts.assign(matrix.size(), 0);
  result.shards.reserve(msg.shards.size());

  RngStreamFamily family(msg.seed);
  for (const ShardAssignment& shard : msg.shards) {
    ShardResult out;
    out.shard_index = shard.shard_index;
    out.codes.resize(shard.codes.size());
    if (rng_kind == RngKind::kMt19937) {
      // Fresh per-shard generator, consumed in record order: the same
      // draws the engine's RandomizeRangeInto makes for this shard.
      Rng rng = family.Stream(msg.stream_base + shard.shard_index);
      matrix.RandomizeRangeInto(shard.codes, 0, shard.codes.size(), rng,
                                out.codes.data(), result.counts.data());
    } else {
      // Element-addressed draws: global index, not slice-local.
      for (size_t k = 0; k < shard.codes.size(); ++k) {
        uint32_t y =
            matrix.RandomizeCounter(shard.codes[k], msg.seed,
                                    msg.counter_stream,
                                    shard.global_begin + k);
        out.codes[k] = y;
        ++result.counts[y];
      }
    }
    result.shards.push_back(std::move(out));
  }
  return result;
}

}  // namespace

Status RunWorker(const std::string& host, uint16_t port,
                 const WorkerOptions& options) {
  MDRR_ASSIGN_OR_RETURN(
      TcpConnection conn,
      TcpConnection::Connect(host, port, options.deadline_ms));
  MDRR_RETURN_IF_ERROR(
      ClientHandshake(conn, PeerRole::kWorker, options.deadline_ms));

  for (;;) {
    MDRR_ASSIGN_OR_RETURN(Frame frame,
                          conn.RecvFrame(options.idle_deadline_ms));
    switch (frame.type) {
      case FrameType::kAssignShards: {
        auto msg = ParseAssignShards(frame.payload);
        if (!msg.ok()) {
          AbortMsg abort{"malformed AssignShards: " + msg.status().message()};
          conn.SendFrame(FrameType::kAbort, EncodeAbort(abort),
                         options.deadline_ms);
          return msg.status();
        }
        auto partial = ComputeAssignment(msg.value());
        if (!partial.ok()) {
          AbortMsg abort{partial.status().message()};
          conn.SendFrame(FrameType::kAbort, EncodeAbort(abort),
                         options.deadline_ms);
          return partial.status();
        }
        MDRR_RETURN_IF_ERROR(conn.SendFrame(
            FrameType::kPartialResult, EncodePartialResult(partial.value()),
            options.deadline_ms));
        break;
      }
      case FrameType::kCommit:
        return Status::OK();
      case FrameType::kAbort: {
        auto abort = ParseAbort(frame.payload);
        return Status::Unavailable(
            "coordinator aborted: " +
            (abort.ok() ? abort->reason : std::string("(unparseable)")));
      }
      default:
        return Status::InvalidArgument(
            "unexpected frame type from coordinator");
    }
  }
}

}  // namespace net
}  // namespace mdrr
