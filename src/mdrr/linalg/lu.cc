#include "mdrr/linalg/lu.h"

#include <cmath>

namespace mdrr::linalg {

StatusOr<LuDecomposition> LuDecomposition::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> pivots(n);
  int pivot_sign = 1;
  for (size_t i = 0; i < n; ++i) pivots[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    size_t pivot_row = col;
    double pivot_value = std::fabs(lu(col, col));
    for (size_t row = col + 1; row < n; ++row) {
      double candidate = std::fabs(lu(row, col));
      if (candidate > pivot_value) {
        pivot_value = candidate;
        pivot_row = row;
      }
    }
    if (pivot_value < 1e-300) {
      return Status::FailedPrecondition("matrix is numerically singular");
    }
    if (pivot_row != col) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(lu(pivot_row, j), lu(col, j));
      }
      std::swap(pivots[pivot_row], pivots[col]);
      pivot_sign = -pivot_sign;
    }
    double diag = lu(col, col);
    for (size_t row = col + 1; row < n; ++row) {
      double factor = lu(row, col) / diag;
      lu(row, col) = factor;
      if (factor == 0.0) continue;
      for (size_t j = col + 1; j < n; ++j) {
        lu(row, j) -= factor * lu(col, j);
      }
    }
  }
  return LuDecomposition(std::move(lu), std::move(pivots), pivot_sign);
}

std::vector<double> LuDecomposition::Solve(const std::vector<double>& b) const {
  const size_t n = dimension();
  MDRR_CHECK_EQ(b.size(), n);
  std::vector<double> x(n);
  // Apply the row permutation, then forward-substitute through L.
  for (size_t i = 0; i < n; ++i) x[i] = b[pivots_[i]];
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // Back-substitute through U.
  for (size_t i = n; i-- > 0;) {
    for (size_t j = i + 1; j < n; ++j) x[i] -= lu_(i, j) * x[j];
    x[i] /= lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::Inverse() const {
  const size_t n = dimension();
  Matrix inverse(n, n);
  std::vector<double> unit(n, 0.0);
  for (size_t col = 0; col < n; ++col) {
    unit[col] = 1.0;
    std::vector<double> x = Solve(unit);
    for (size_t row = 0; row < n; ++row) inverse(row, col) = x[row];
    unit[col] = 0.0;
  }
  return inverse;
}

double LuDecomposition::Determinant() const {
  double det = pivot_sign_;
  for (size_t i = 0; i < dimension(); ++i) det *= lu_(i, i);
  return det;
}

StatusOr<Matrix> Invert(const Matrix& a) {
  MDRR_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Factor(a));
  return lu.Inverse();
}

StatusOr<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                                const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("dimension mismatch in SolveLinearSystem");
  }
  MDRR_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Factor(a));
  return lu.Solve(b);
}

}  // namespace mdrr::linalg
