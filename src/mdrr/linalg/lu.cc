#include "mdrr/linalg/lu.h"

#include <atomic>
#include <cmath>

#include "mdrr/common/parallel.h"

namespace mdrr::linalg {

namespace {

// Instrumentation (see LuFactorizationCount): benches assert the
// structured estimation pipeline never lands here.
std::atomic<uint64_t> g_factorization_count{0};

// Columns per U12 work unit / rows per trailing-update work unit. Pure
// load-balancing grain: each output element is an independent function of
// the panel, so the partition never changes the bits.
constexpr size_t kUpdateChunk = 16;

// Pivots smaller than this are treated as numerically singular, matching
// the historical unblocked behavior.
constexpr double kSingularPivot = 1e-300;

// Factors columns [k, kend) of `lu` (rows k..n-1) with partial pivoting,
// applying updates only within the panel. Row swaps span the full matrix
// immediately (exact, so the deferred outside-panel updates are
// unaffected). Returns false on a singular pivot.
bool FactorPanel(Matrix& lu, std::vector<size_t>& pivots, int& pivot_sign,
                 size_t k, size_t kend) {
  const size_t n = lu.rows();
  for (size_t col = k; col < kend; ++col) {
    size_t pivot_row = col;
    double pivot_value = std::fabs(lu(col, col));
    for (size_t row = col + 1; row < n; ++row) {
      double candidate = std::fabs(lu(row, col));
      if (candidate > pivot_value) {
        pivot_value = candidate;
        pivot_row = row;
      }
    }
    if (pivot_value < kSingularPivot) return false;
    if (pivot_row != col) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(lu(pivot_row, j), lu(col, j));
      }
      std::swap(pivots[pivot_row], pivots[col]);
      pivot_sign = -pivot_sign;
    }
    double diag = lu(col, col);
    for (size_t row = col + 1; row < n; ++row) {
      double factor = lu(row, col) / diag;
      lu(row, col) = factor;
      if (factor == 0.0) continue;
      for (size_t j = col + 1; j < kend; ++j) {
        lu(row, j) -= factor * lu(col, j);
      }
    }
  }
  return true;
}

}  // namespace

uint64_t LuFactorizationCount() {
  return g_factorization_count.load(std::memory_order_relaxed);
}

StatusOr<LuDecomposition> LuDecomposition::Factor(const Matrix& a) {
  return Factor(a, LuOptions{});
}

StatusOr<LuDecomposition> LuDecomposition::Factor(const Matrix& a,
                                                  const LuOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  g_factorization_count.fetch_add(1, std::memory_order_relaxed);
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> pivots(n);
  int pivot_sign = 1;
  for (size_t i = 0; i < n; ++i) pivots[i] = i;

  const size_t nb = options.block_size == 0 ? n : options.block_size;
  for (size_t k = 0; k < n; k += nb) {
    const size_t kend = std::min(n, k + nb);
    if (!FactorPanel(lu, pivots, pivot_sign, k, kend)) {
      return Status::FailedPrecondition("matrix is numerically singular");
    }
    if (kend == n) break;

    // U12 = L11^{-1} A12: forward substitution through the panel's unit
    // lower triangle, sharded over column ranges. Element (p, j) receives
    // its updates in ascending q exactly as the unblocked loop applies
    // them at steps q < p.
    ParallelChunks(n - kend, kUpdateChunk, options.num_threads,
                   [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                       size_t end) {
                     for (size_t p = k + 1; p < kend; ++p) {
                       for (size_t q = k; q < p; ++q) {
                         double factor = lu(p, q);
                         if (factor == 0.0) continue;
                         for (size_t j = kend + begin; j < kend + end; ++j) {
                           lu(p, j) -= factor * lu(q, j);
                         }
                       }
                     }
                   });

    // Trailing update A22 -= L21 U12, sharded over row ranges. Each row
    // subtracts the panel's contributions in ascending pivot order, so
    // its final content matches the unblocked loop bit for bit.
    ParallelChunks(n - kend, kUpdateChunk, options.num_threads,
                   [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                       size_t end) {
                     for (size_t i = kend + begin; i < kend + end; ++i) {
                       for (size_t p = k; p < kend; ++p) {
                         double factor = lu(i, p);
                         if (factor == 0.0) continue;
                         for (size_t j = kend; j < n; ++j) {
                           lu(i, j) -= factor * lu(p, j);
                         }
                       }
                     }
                   });
  }
  return LuDecomposition(std::move(lu), std::move(pivots), pivot_sign);
}

std::vector<double> LuDecomposition::Solve(const std::vector<double>& b) const {
  const size_t n = dimension();
  MDRR_CHECK_EQ(b.size(), n);
  std::vector<double> x(n);
  // Apply the row permutation, then forward-substitute through L.
  for (size_t i = 0; i < n; ++i) x[i] = b[pivots_[i]];
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // Back-substitute through U.
  for (size_t i = n; i-- > 0;) {
    for (size_t j = i + 1; j < n; ++j) x[i] -= lu_(i, j) * x[j];
    x[i] /= lu_(i, i);
  }
  return x;
}

std::vector<std::vector<double>> LuDecomposition::SolveMany(
    const std::vector<std::vector<double>>& bs, size_t num_threads) const {
  std::vector<std::vector<double>> solutions(bs.size());
  ParallelChunks(bs.size(), /*chunk_size=*/1, num_threads,
                 [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                     size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     solutions[i] = Solve(bs[i]);
                   }
                 });
  return solutions;
}

Matrix LuDecomposition::Inverse() const {
  const size_t n = dimension();
  Matrix inverse(n, n);
  std::vector<double> unit(n, 0.0);
  for (size_t col = 0; col < n; ++col) {
    unit[col] = 1.0;
    std::vector<double> x = Solve(unit);
    for (size_t row = 0; row < n; ++row) inverse(row, col) = x[row];
    unit[col] = 0.0;
  }
  return inverse;
}

double LuDecomposition::Determinant() const {
  double det = pivot_sign_;
  for (size_t i = 0; i < dimension(); ++i) det *= lu_(i, i);
  return det;
}

StatusOr<Matrix> Invert(const Matrix& a) {
  MDRR_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Factor(a));
  return lu.Inverse();
}

StatusOr<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                                const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("dimension mismatch in SolveLinearSystem");
  }
  MDRR_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Factor(a));
  return lu.Solve(b);
}

}  // namespace mdrr::linalg
