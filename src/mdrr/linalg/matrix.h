// Dense row-major matrix of doubles, sized for randomization matrices
// (tens to a few thousand rows). Not a general BLAS; just what Eq. (2)
// and the RR matrix algebra need.

#ifndef MDRR_LINALG_MATRIX_H_
#define MDRR_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "mdrr/common/check.h"

namespace mdrr::linalg {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) {
    MDRR_CHECK_LT(i, rows_);
    MDRR_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    MDRR_CHECK_LT(i, rows_);
    MDRR_CHECK_LT(j, cols_);
    return data_[i * cols_ + j];
  }

  // Contiguous view of row i (length cols()).
  const double* RowData(size_t i) const {
    MDRR_CHECK_LT(i, rows_);
    return data_.data() + i * cols_;
  }
  std::vector<double> Row(size_t i) const;
  std::vector<double> Column(size_t j) const;

  Matrix Transpose() const;

  // this * other. Preconditions: cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;

  // this * v. Precondition: v.size() == cols().
  std::vector<double> MatVec(const std::vector<double>& v) const;

  // thisᵀ * v without materializing the transpose.
  std::vector<double> TransposeMatVec(const std::vector<double>& v) const;

  // max_ij |this - other|. Preconditions: same shape.
  double MaxAbsDiff(const Matrix& other) const;

  // True if every row sums to 1 within `tolerance` and entries are >= 0.
  bool IsRowStochastic(double tolerance = 1e-9) const;

  std::string ToString(int precision = 4) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace mdrr::linalg

#endif  // MDRR_LINALG_MATRIX_H_
