#include "mdrr/linalg/structured.h"

#include <algorithm>
#include <cmath>

namespace mdrr::linalg {

Matrix UniformMixture::ToDense() const {
  Matrix m(size, size, off_diagonal);
  for (size_t i = 0; i < size; ++i) m(i, i) = diagonal;
  return m;
}

double UniformMixture::MaxEigenvalue() const {
  double a = diagonal - off_diagonal;
  double bulk = std::fabs(a);
  double principal = std::fabs(a + static_cast<double>(size) * off_diagonal);
  return std::max(bulk, principal);
}

double UniformMixture::MinEigenvalue() const {
  double a = diagonal - off_diagonal;
  double bulk = std::fabs(a);
  double principal = std::fabs(a + static_cast<double>(size) * off_diagonal);
  return std::min(bulk, principal);
}

bool UniformMixture::IsSingular(double tolerance) const {
  // Magnitude-relative: |min eigenvalue| <= tol * |max eigenvalue|. An
  // absolute cutoff would pass a badly conditioned matrix at scale 1e8
  // (min eigenvalue 1, max 1e16) and reject a perfectly conditioned one
  // at scale 1e-14.
  double max_eig = MaxEigenvalue();
  if (max_eig == 0.0) return true;
  return MinEigenvalue() <= tolerance * max_eig;
}

StatusOr<UniformMixtureInverse> UniformMixture::ClosedFormInverse() const {
  if (IsSingular()) {
    return Status::FailedPrecondition("uniform-mixture matrix is singular");
  }
  double a = diagonal - off_diagonal;
  double principal = a + static_cast<double>(size) * off_diagonal;
  // The relative test above is scale-invariant, but near the denormal
  // range a well-conditioned matrix still cannot be inverted in double
  // precision (v/a overflows, a * principal underflows); keep an
  // absolute floor for that regime.
  if (std::fabs(a) < 1e-300 || std::fabs(principal) < 1e-300) {
    return Status::FailedPrecondition(
        "uniform-mixture matrix is too small in magnitude to invert");
  }
  return UniformMixtureInverse{a, a * principal};
}

StatusOr<std::vector<double>> UniformMixture::ApplyInverse(
    const std::vector<double>& v) const {
  if (v.size() != size) {
    return Status::InvalidArgument("vector size does not match matrix size");
  }
  MDRR_ASSIGN_OR_RETURN(UniformMixtureInverse inverse, ClosedFormInverse());
  double v_sum = 0.0;
  for (double x : v) v_sum += x;
  // (aI + bJ)^{-1} v = v/a - (b * sum(v) / (a * (a + r b))) 1.
  double correction = off_diagonal * v_sum / inverse.denominator;
  std::vector<double> result(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    result[i] = v[i] / inverse.bulk - correction;
  }
  return result;
}

StatusOr<UniformMixture> DetectUniformMixture(const Matrix& m,
                                              double tolerance) {
  if (m.rows() != m.cols() || m.rows() == 0) {
    return Status::InvalidArgument("expected a nonempty square matrix");
  }
  const size_t n = m.rows();
  if (n == 1) {
    return UniformMixture{1, m(0, 0), 0.0};
  }
  double diagonal = m(0, 0);
  double off_diagonal = m(0, 1);
  // Scale the tolerance to the matrix's magnitude, so a matrix at scale
  // 1e8 is not rejected for 1e-8-relative noise and a matrix at scale
  // 1e-10 is not "detected" through entry differences as large as the
  // entries themselves.
  double max_abs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      max_abs = std::max(max_abs, std::fabs(m(i, j)));
    }
  }
  double threshold = tolerance * max_abs;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double expected = (i == j) ? diagonal : off_diagonal;
      if (std::fabs(m(i, j) - expected) > threshold) {
        return Status::NotFound("matrix does not have uniform-mixture shape");
      }
    }
  }
  return UniformMixture{n, diagonal, off_diagonal};
}

}  // namespace mdrr::linalg
