#include "mdrr/linalg/structured.h"

#include <cmath>

namespace mdrr::linalg {

Matrix UniformMixture::ToDense() const {
  Matrix m(size, size, off_diagonal);
  for (size_t i = 0; i < size; ++i) m(i, i) = diagonal;
  return m;
}

double UniformMixture::MaxEigenvalue() const {
  double a = diagonal - off_diagonal;
  double bulk = std::fabs(a);
  double principal = std::fabs(a + static_cast<double>(size) * off_diagonal);
  return std::max(bulk, principal);
}

double UniformMixture::MinEigenvalue() const {
  double a = diagonal - off_diagonal;
  double bulk = std::fabs(a);
  double principal = std::fabs(a + static_cast<double>(size) * off_diagonal);
  return std::min(bulk, principal);
}

bool UniformMixture::IsSingular(double tolerance) const {
  return MinEigenvalue() < tolerance;
}

StatusOr<std::vector<double>> UniformMixture::ApplyInverse(
    const std::vector<double>& v) const {
  if (v.size() != size) {
    return Status::InvalidArgument("vector size does not match matrix size");
  }
  double a = diagonal - off_diagonal;
  double principal = a + static_cast<double>(size) * off_diagonal;
  if (std::fabs(a) < 1e-300 || std::fabs(principal) < 1e-300) {
    return Status::FailedPrecondition("uniform-mixture matrix is singular");
  }
  double v_sum = 0.0;
  for (double x : v) v_sum += x;
  // (aI + bJ)^{-1} v = v/a - (b * sum(v) / (a * (a + r b))) 1.
  double correction = off_diagonal * v_sum / (a * principal);
  std::vector<double> result(v.size());
  for (size_t i = 0; i < v.size(); ++i) result[i] = v[i] / a - correction;
  return result;
}

StatusOr<UniformMixture> DetectUniformMixture(const Matrix& m,
                                              double tolerance) {
  if (m.rows() != m.cols() || m.rows() == 0) {
    return Status::InvalidArgument("expected a nonempty square matrix");
  }
  const size_t n = m.rows();
  if (n == 1) {
    return UniformMixture{1, m(0, 0), 0.0};
  }
  double diagonal = m(0, 0);
  double off_diagonal = m(0, 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double expected = (i == j) ? diagonal : off_diagonal;
      if (std::fabs(m(i, j) - expected) > tolerance) {
        return Status::NotFound("matrix does not have uniform-mixture shape");
      }
    }
  }
  return UniformMixture{n, diagonal, off_diagonal};
}

}  // namespace mdrr::linalg
