// Closed forms for "uniform mixture" matrices M = a I + b J (J = all ones):
// every randomization matrix in the paper has this shape (p_u on the
// diagonal, p_d elsewhere, i.e. a = p_u - p_d, b = p_d).
//
// For such M:
//   eigenvalues:  a + r b  (eigenvector 1) and  a  (multiplicity r-1)
//   inverse:      M^{-1} = (1/a) I - (b / (a (a + r b))) J
// so M^{-1} x costs O(r) instead of O(r^2) and no O(r^3) factorization is
// needed. This realizes (and improves on) the O(|A|^2) structured-inverse
// claim of Section 3.1 of the paper.

#ifndef MDRR_LINALG_STRUCTURED_H_
#define MDRR_LINALG_STRUCTURED_H_

#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr::linalg {

// Parameters of the closed-form inverse of M = aI + bJ:
// M^{-1} = (1/bulk) I - (b/denominator) J with bulk = a = diagonal -
// off_diagonal and denominator = a (a + r b). The denominator is stored
// unreduced so consumers keep their historical floating-point evaluation
// order (e.g. ApplyInverse's correction term is b * sum(v) / denominator,
// bit-identical to the pre-split expression). Produced (with all
// singularity guards applied) by UniformMixture::ClosedFormInverse --
// the one place the inverse algebra lives.
struct UniformMixtureInverse {
  double bulk = 0.0;
  double denominator = 0.0;
};

// A symmetric r x r matrix with `diagonal` on the main diagonal and
// `off_diagonal` everywhere else.
struct UniformMixture {
  size_t size = 0;
  double diagonal = 0.0;
  double off_diagonal = 0.0;

  // Materializes the dense matrix (for tests and for generic fallbacks).
  Matrix ToDense() const;

  // Largest / smallest eigenvalue moduli. The condition-number bound
  // Pmax/Pmin of Section 2.3 is MaxEigenvalue()/MinEigenvalue().
  double MaxEigenvalue() const;
  double MinEigenvalue() const;

  // True when the smallest eigenvalue modulus is below `tolerance`
  // *relative to the largest* (a zero matrix is always singular). The
  // magnitude-relative test keeps the verdict invariant under scaling:
  // 1e8 * M and 1e-8 * M are singular exactly when M is.
  bool IsSingular(double tolerance = 1e-12) const;

  // The closed-form inverse constants, guarded: fails if the matrix is
  // singular (magnitude-relative IsSingular, so near-parallel rows are
  // rejected instead of dividing by a vanishing bulk eigenvalue) or so
  // small in magnitude that inversion would overflow/underflow (absolute
  // 1e-300 floor for the denormal regime).
  StatusOr<UniformMixtureInverse> ClosedFormInverse() const;

  // Solves M x = v in O(r). Fails exactly when ClosedFormInverse does.
  StatusOr<std::vector<double>> ApplyInverse(
      const std::vector<double>& v) const;
};

// Detects whether `m` has the uniform-mixture shape and returns the
// closed-form description if so. `tolerance` is relative to the largest
// entry magnitude, so detection is invariant under scaling the matrix:
// entries must agree to within tolerance * max_ij |m_ij| (exact agreement
// is required for an all-zero matrix).
StatusOr<UniformMixture> DetectUniformMixture(const Matrix& m,
                                              double tolerance = 1e-12);

}  // namespace mdrr::linalg

#endif  // MDRR_LINALG_STRUCTURED_H_
