// Closed forms for "uniform mixture" matrices M = a I + b J (J = all ones):
// every randomization matrix in the paper has this shape (p_u on the
// diagonal, p_d elsewhere, i.e. a = p_u - p_d, b = p_d).
//
// For such M:
//   eigenvalues:  a + r b  (eigenvector 1) and  a  (multiplicity r-1)
//   inverse:      M^{-1} = (1/a) I - (b / (a (a + r b))) J
// so M^{-1} x costs O(r) instead of O(r^2) and no O(r^3) factorization is
// needed. This realizes (and improves on) the O(|A|^2) structured-inverse
// claim of Section 3.1 of the paper.

#ifndef MDRR_LINALG_STRUCTURED_H_
#define MDRR_LINALG_STRUCTURED_H_

#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr::linalg {

// A symmetric r x r matrix with `diagonal` on the main diagonal and
// `off_diagonal` everywhere else.
struct UniformMixture {
  size_t size = 0;
  double diagonal = 0.0;
  double off_diagonal = 0.0;

  // Materializes the dense matrix (for tests and for generic fallbacks).
  Matrix ToDense() const;

  // Largest / smallest eigenvalue moduli. The condition-number bound
  // Pmax/Pmin of Section 2.3 is MaxEigenvalue()/MinEigenvalue().
  double MaxEigenvalue() const;
  double MinEigenvalue() const;

  bool IsSingular(double tolerance = 1e-12) const;

  // Solves M x = v in O(r). Fails if the matrix is singular.
  StatusOr<std::vector<double>> ApplyInverse(
      const std::vector<double>& v) const;
};

// Detects whether `m` has the uniform-mixture shape (within `tolerance`)
// and returns the closed-form description if so.
StatusOr<UniformMixture> DetectUniformMixture(const Matrix& m,
                                              double tolerance = 1e-12);

}  // namespace mdrr::linalg

#endif  // MDRR_LINALG_STRUCTURED_H_
