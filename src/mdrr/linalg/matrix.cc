#include "mdrr/linalg/matrix.h"

#include <cmath>
#include <cstdio>

namespace mdrr::linalg {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(size_t i) const {
  MDRR_CHECK_LT(i, rows_);
  return std::vector<double>(data_.begin() + i * cols_,
                             data_.begin() + (i + 1) * cols_);
}

std::vector<double> Matrix::Column(size_t j) const {
  MDRR_CHECK_LT(j, cols_);
  std::vector<double> col(rows_);
  for (size_t i = 0; i < rows_; ++i) col[i] = data_[i * cols_ + j];
  return col;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  MDRR_CHECK_EQ(cols_, other.rows_);
  Matrix result(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        result(i, j) += a * other(k, j);
      }
    }
  }
  return result;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  MDRR_CHECK_EQ(v.size(), cols_);
  std::vector<double> result(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    const double* row = data_.data() + i * cols_;
    for (size_t j = 0; j < cols_; ++j) sum += row[j] * v[j];
    result[i] = sum;
  }
  return result;
}

std::vector<double> Matrix::TransposeMatVec(
    const std::vector<double>& v) const {
  MDRR_CHECK_EQ(v.size(), rows_);
  std::vector<double> result(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double vi = v[i];
    if (vi == 0.0) continue;
    const double* row = data_.data() + i * cols_;
    for (size_t j = 0; j < cols_; ++j) result[j] += row[j] * vi;
  }
  return result;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  MDRR_CHECK_EQ(rows_, other.rows_);
  MDRR_CHECK_EQ(cols_, other.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

bool Matrix::IsRowStochastic(double tolerance) const {
  for (size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < cols_; ++j) {
      double v = (*this)(i, j);
      if (v < -tolerance) return false;
      sum += v;
    }
    if (std::fabs(sum - 1.0) > tolerance) return false;
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof(buf), "%.*f", precision, (*this)(i, j));
      out += buf;
      if (j + 1 < cols_) out += ", ";
    }
    out += "]\n";
  }
  return out;
}

}  // namespace mdrr::linalg
