// LU decomposition with partial pivoting: solve, inverse, determinant.
// Used when a randomization matrix has no exploitable structure; the
// structured fast path lives in structured.h.
//
// The factorization is a blocked right-looking LU whose panel is factored
// sequentially while the U12 triangular solve and the trailing-submatrix
// update shard over ParallelChunks. Every element's update sequence is
// applied in ascending pivot order regardless of the blocking or the
// worker partition, so the factors -- and everything derived from them --
// are bit-identical for ANY (block_size, num_threads) combination,
// including the unblocked reference (block_size == 0). This is a stronger
// contract than the PR 2 sharding stages (which fix results per
// chunk_size): here even the grain does not change the bits.

#ifndef MDRR_LINALG_LU_H_
#define MDRR_LINALG_LU_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr::linalg {

struct LuOptions {
  // Panel width of the blocked factorization. 0 selects the unblocked
  // reference loop (kept as the agreement baseline for tests). The value
  // never changes the computed factors, only the cache behavior.
  size_t block_size = 64;
  // Workers for the U12 solve and trailing update (0 = one per hardware
  // core). Never changes the computed factors.
  size_t num_threads = 1;
};

class LuDecomposition {
 public:
  // Factors the square matrix `a`. Returns InvalidArgument if `a` is not
  // square and FailedPrecondition if it is numerically singular.
  static StatusOr<LuDecomposition> Factor(const Matrix& a);

  // Factoring with explicit blocking/threading. Bit-identical to
  // Factor(a) for every options combination.
  static StatusOr<LuDecomposition> Factor(const Matrix& a,
                                          const LuOptions& options);

  // Solves A x = b. Precondition: b.size() == dimension.
  std::vector<double> Solve(const std::vector<double>& b) const;

  // Solves A x = b for every right-hand side of `bs`, factoring once and
  // running the O(n^2) substitutions in parallel. Each solve is an
  // independent pure function of the shared factors, so the result is
  // bit-identical to calling Solve in a loop, for any thread count.
  // Precondition: every b.size() == dimension.
  std::vector<std::vector<double>> SolveMany(
      const std::vector<std::vector<double>>& bs, size_t num_threads) const;

  // Full inverse; O(n^3).
  Matrix Inverse() const;

  double Determinant() const;

  size_t dimension() const { return lu_.rows(); }

 private:
  LuDecomposition(Matrix lu, std::vector<size_t> pivots, int pivot_sign)
      : lu_(std::move(lu)), pivots_(std::move(pivots)),
        pivot_sign_(pivot_sign) {}

  Matrix lu_;                    // Combined L (unit diag) and U factors.
  std::vector<size_t> pivots_;   // Row permutation applied during factoring.
  int pivot_sign_;               // +1/-1: parity of the permutation.
};

// Number of LU factorizations executed since process start (successful or
// not, across all threads). Instrumentation for the structured-path
// guarantee: benches and tests assert the O(r) closed-form pipeline never
// triggers a factorization.
uint64_t LuFactorizationCount();

// Convenience: inverse of `a` via LU. Fails on singular input.
StatusOr<Matrix> Invert(const Matrix& a);

// Convenience: solves a x = b via LU.
StatusOr<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                                const std::vector<double>& b);

}  // namespace mdrr::linalg

#endif  // MDRR_LINALG_LU_H_
