// LU decomposition with partial pivoting: solve, inverse, determinant.
// Used when a randomization matrix has no exploitable structure; the
// structured fast path lives in structured.h.

#ifndef MDRR_LINALG_LU_H_
#define MDRR_LINALG_LU_H_

#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr::linalg {

class LuDecomposition {
 public:
  // Factors the square matrix `a`. Returns InvalidArgument if `a` is not
  // square and FailedPrecondition if it is numerically singular.
  static StatusOr<LuDecomposition> Factor(const Matrix& a);

  // Solves A x = b. Precondition: b.size() == dimension.
  std::vector<double> Solve(const std::vector<double>& b) const;

  // Full inverse; O(n^3).
  Matrix Inverse() const;

  double Determinant() const;

  size_t dimension() const { return lu_.rows(); }

 private:
  LuDecomposition(Matrix lu, std::vector<size_t> pivots, int pivot_sign)
      : lu_(std::move(lu)), pivots_(std::move(pivots)),
        pivot_sign_(pivot_sign) {}

  Matrix lu_;                    // Combined L (unit diag) and U factors.
  std::vector<size_t> pivots_;   // Row permutation applied during factoring.
  int pivot_sign_;               // +1/-1: parity of the permutation.
};

// Convenience: inverse of `a` via LU. Fails on singular input.
StatusOr<Matrix> Invert(const Matrix& a);

// Convenience: solves a x = b via LU.
StatusOr<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                                const std::vector<double>& b);

}  // namespace mdrr::linalg

#endif  // MDRR_LINALG_LU_H_
