// Party-level simulation of the distributed protocol.
//
// The core library operates on columns for speed; this layer restates the
// same protocols through the actual message flow of the paper: n parties,
// each holding exactly one private record, talking to an untrusted
// controller. RR-Clusters is the two-round interaction of Section 4.1:
//
//   round 1: every party publishes a per-attribute randomized record;
//   the controller computes dependences on the randomized data (Cor. 1),
//   runs Algorithm 1, and broadcasts the clustering;
//   round 2: every party re-randomizes her true record cluster-wise
//   (RR-Joint per cluster at the Section 6.3.2 calibration) and
//   publishes; the controller estimates cluster joints with Eq. (2).
//
// Parties never reveal true values; the controller sees only randomized
// publications. Message counts are accounted per phase.

#ifndef MDRR_PROTOCOL_SESSION_H_
#define MDRR_PROTOCOL_SESSION_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/clustering.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr::protocol {

// One respondent: owns her true record and a private RNG. The true record
// is intentionally inaccessible; parties only emit randomized data.
class Party {
 public:
  Party(uint64_t id, std::vector<uint32_t> true_record, uint64_t seed);

  uint64_t id() const { return id_; }
  size_t num_attributes() const { return true_record_.size(); }

  // Round 1: per-attribute randomized publication. `matrices[j]` is the
  // public randomization matrix of attribute j.
  std::vector<uint32_t> PublishIndependent(
      const std::vector<RrMatrix>& matrices);

  // Round 2: cluster-wise publication. For each cluster (a sorted list of
  // attribute indices with its public domain and matrix), the party
  // composes her true values and randomizes the composite code.
  std::vector<uint32_t> PublishClusters(
      const AttributeClustering& clusters, const std::vector<Domain>& domains,
      const std::vector<RrMatrix>& matrices);

 private:
  uint64_t id_;
  std::vector<uint32_t> true_record_;
  Rng rng_;
};

// How the party side of the session is executed. Both produce the same
// transcript, bit for bit; pick by cost.
enum class SessionExecution {
  // The fast path (default): parties stored columnar in a PartyBlock,
  // engines lane-seeded in sharded batches, rounds executed as
  // zero-allocation sweeps with counting and composite-code decode fused
  // into the round-2 pass. Several times faster per party; identical
  // output.
  kBatched,
  // The reference semantics: one Party object per respondent, rounds as
  // per-party calls. The batched path is golden-tested against this.
  kPartyLoop,
};

struct SessionOptions {
  double keep_probability = 0.7;
  ClusteringOptions clustering;
  // Keep probability of the round-1 (dependence assessment) publication.
  double round1_keep_probability = 0.7;
  uint64_t seed = 1;
  // Worker threads for the sharded phases (party publications in both
  // rounds, the controller's pairwise statistics, per-cluster counting
  // and decode); 0 means one per hardware core. Party seeds are drawn
  // serially and each party's randomness is self-contained, so the
  // session transcript is bit-identical for any thread count.
  size_t num_threads = 1;
  // Parties per publication batch (the work-distribution grain; never
  // changes results).
  size_t shard_size = 1 << 16;
  // Execution strategy for the party side; never changes results.
  SessionExecution execution = SessionExecution::kBatched;
  // Party randomness policy. kMt19937 (default) is the committed
  // transcript: party seeds drawn serially from one seeder, each party a
  // self-contained engine. kPhilox replaces the per-party engines with
  // element-addressed counter draws -- round-1 attribute j is one philox
  // stream with party i as element i, round-2 cluster c another -- so no
  // per-party seeding pass runs at all and the transcript is additionally
  // invariant under shard grain by construction. A different (still
  // deterministic) transcript from kMt19937; requires kBatched (the
  // per-party reference loop IS the mt19937 seeding semantics, so
  // kPartyLoop + kPhilox is rejected).
  RngKind rng = RngKind::kMt19937;
};

struct SessionResult {
  AttributeClustering clusters;
  // Per-cluster domains and Eq. (2) estimated (projected) joints.
  std::vector<Domain> cluster_domains;
  std::vector<std::vector<double>> cluster_joints;
  // The round-2 randomized data decoded to per-attribute columns.
  Dataset randomized;
  // Epsilon of round 1 (dependence assessment) and round 2 (release);
  // the session total is their sequential composition.
  double round1_epsilon = 0.0;
  double round2_epsilon = 0.0;
  // Party -> controller messages per round (one record each) plus the
  // controller's clustering broadcast.
  uint64_t messages_round1 = 0;
  uint64_t messages_broadcast = 0;
  uint64_t messages_round2 = 0;
};

// Runs the full two-round session over the parties implied by `dataset`
// (row i becomes party i). The dataset is used only to seed the parties'
// private records; the controller path never touches it. The transcript
// (publications, clustering, estimates, decoded release, epsilons,
// message counts) is a pure function of (dataset, options.seed,
// options.rng): execution mode, thread count, and shard grain never
// change it.
StatusOr<SessionResult> RunDistributedSession(const Dataset& dataset,
                                              const SessionOptions& options);

}  // namespace mdrr::protocol

#endif  // MDRR_PROTOCOL_SESSION_H_
