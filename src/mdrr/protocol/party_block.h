// Columnar party storage for the batched session fast path.
//
// A PartyBlock holds the same n respondents a vector<Party> would -- the
// same private records, the same per-party RNG streams seeded in id order
// -- but stores them flat (row-major records, one contiguous engine
// array) and executes protocol rounds as sweeps over reused buffers
// instead of per-object calls that return freshly allocated vectors. The
// technique follows high-throughput agent-simulation runtimes: batch the
// per-agent work into cache-friendly passes, keep the semantic model
// (Party) for the spec and as the golden reference.
//
// Determinism contract: every publication is bit-identical to driving
// Party objects through the same rounds, for any shard size and thread
// count. Party i's engine is a pure function of its seed (drawn serially
// from the session seeder, in id order), each party's draws happen in the
// same per-party order as Party::PublishIndependent /
// Party::PublishClusters, and parties' streams are mutually independent,
// so sweeps shard freely. Golden-tested against the Party loop in
// tests/session_fast_path_test.cc.

#ifndef MDRR_PROTOCOL_PARTY_BLOCK_H_
#define MDRR_PROTOCOL_PARTY_BLOCK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "mdrr/core/clustering.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/rng/rng.h"

namespace mdrr::protocol {

// Round-2 output bundle: the two controller by-products that fuse into
// the publication sweep -- per-category counts (integer merges commute,
// so they equal a post-hoc histogram) and the per-position decode of
// every published code -- plus, on request, the raw composite codes.
struct ClusterSweepResult {
  // codes[c][i]: party i's publication for cluster c. Filled only when
  // the sweep is asked to collect codes (golden tests, transcript
  // comparisons); the session consumes counts + decoded, so it skips the
  // n x clusters staging columns.
  std::vector<std::vector<uint32_t>> codes;
  // counts[c][y]: how many parties published code y for cluster c.
  std::vector<std::vector<int64_t>> counts;
  // decoded[c][k][i]: position k of party i's cluster-c publication.
  std::vector<std::vector<std::vector<uint32_t>>> decoded;
};

class PartyBlock {
 public:
  // Materializes parties 0..n-1 of `dataset` (row i becomes party i),
  // drawing each party's seed serially from `seeder` -- the identical
  // seed sequence as constructing Party(i, record_i, seeder.engine()())
  // in a loop. Engine seeding itself is deferred to the first sweep so it
  // can run sharded and fused with the round-1 publications.
  PartyBlock(const Dataset& dataset, Rng& seeder);

  size_t num_parties() const { return num_parties_; }
  size_t num_attributes() const { return num_attributes_; }

  // Round 1: writes party i's per-attribute publication into
  // columns[j][i] for every attribute j, sharded over `num_threads`
  // workers in chunks of `shard_size` parties. Each columns[j] must
  // already have size num_parties(). On the first sweep, party engines
  // are seeded lane-batched (fast_seed.h) immediately before their first
  // draws, while their state is cache-hot.
  void PublishIndependent(const std::vector<RrMatrix>& matrices,
                          size_t shard_size, size_t num_threads,
                          std::vector<std::vector<uint32_t>>* columns);

  // Round 2: composite-encodes each party's true values per cluster
  // (mixed-radix, identical arithmetic to Domain::Encode), randomizes the
  // code, and fuses output-category counting and per-position decode into
  // the same pass. Sharded like PublishIndependent; parties continue
  // their round-1 streams. `collect_codes` additionally materializes the
  // raw composite-code columns (result.codes) for transcript comparisons.
  ClusterSweepResult PublishClusters(const AttributeClustering& clusters,
                                     const std::vector<Domain>& domains,
                                     const std::vector<RrMatrix>& matrices,
                                     size_t shard_size, size_t num_threads,
                                     bool collect_codes = false);

  PartyBlock(const PartyBlock&) = delete;
  PartyBlock& operator=(const PartyBlock&) = delete;

 private:
  // Seeds engines [begin, end) in place (kSeedLanes at a time); bit-wise
  // equivalent to Rng(seeds_[i]) per party regardless of grouping.
  void SeedEngineRange(size_t begin, size_t end);

  // Seeds every engine if no sweep has done so yet (sharded).
  void EnsureEnginesSeeded(size_t shard_size, size_t num_threads);

  size_t num_parties_ = 0;
  size_t num_attributes_ = 0;
  // Row-major private records: records_[i * num_attributes_ + j].
  std::vector<uint32_t> records_;
  // Per-party seeds, drawn serially in id order at construction.
  std::vector<uint64_t> seeds_;
  // Per-party engines, placement-constructed on first use so the ~2.5 KB
  // mt19937_64 states are written exactly once (no default-seeding pass
  // over hundreds of megabytes).
  std::unique_ptr<unsigned char[]> rng_storage_;
  Rng* rngs_ = nullptr;
  bool engines_seeded_ = false;
};

}  // namespace mdrr::protocol

#endif  // MDRR_PROTOCOL_PARTY_BLOCK_H_
