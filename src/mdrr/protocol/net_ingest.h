// Streaming ingest over real sockets: the network front end of the
// always-on collector (the PR 6 "ingest over real sockets" leftover,
// single-connection replay case).
//
// ServeStreamIngest is the collectd side: it accepts ONE ingest client
// on an already-bound listener, handshakes with the net/ protocol,
// creates a StreamingCollector from the client's StreamOpen schema, and
// feeds every StreamReport batch through the normal
// TrySubmit/DrainShard/PollWindows path until the client seals. The
// transcript is bit-identical to the in-process RunStreamingReplay at
// the same spec: report randomness is keyed off absolute sequence
// numbers by the CLIENT (the controller never sees true values), and
// the collector never learns how reports traveled.
//
// StreamReportsOverSocket is the client side: it perturbs dataset rows
// exactly like RunStreamingReplay's producers (mt19937: report s draws
// from RngStreamFamily(seed).Stream(s); philox: stream s, element j)
// and ships them in contiguous batches.
//
// Multi-connection ingest (several parties submitting concurrently)
// remains future work -- see ROADMAP.

#ifndef MDRR_PROTOCOL_NET_INGEST_H_
#define MDRR_PROTOCOL_NET_INGEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/net/socket.h"
#include "mdrr/release/spec.h"
#include "mdrr/release/streaming.h"

namespace mdrr::protocol {

struct StreamIngestServeOptions {
  release::StreamingCollectorOptions collector;
  // Per-operation network deadline; <= 0 uses the transport default.
  int64_t deadline_ms = 0;
};

struct StreamServeResult {
  std::vector<release::StreamWindow> windows;
  uint64_t reports_ingested = 0;
  double epsilon_spent = 0.0;
  bool finished = false;
};

// Serves one ingest session on `listener` (already Listen()ed). Blocks
// until the client seals or errors; fail-closed on malformed traffic.
StatusOr<StreamServeResult> ServeStreamIngest(
    const release::ReleaseSpec& spec, net::TcpListener& listener,
    const StreamIngestServeOptions& options = {});

struct StreamIngestClientOptions {
  // Reports to stream; 0 = one per dataset row. Beyond num_rows the
  // replay wraps around the dataset, like RunStreamingReplay.
  uint64_t total_reports = 0;
  // Reports per StreamReport frame.
  uint32_t batch_size = 512;
  int64_t deadline_ms = 0;
};

struct StreamIngestClientResult {
  uint64_t reports_sent = 0;
  // Echoed from the server's StreamResult.
  uint64_t reports_ingested = 0;
  double epsilon_spent = 0.0;
  bool finished = false;
};

// Replays `dataset` into a ServeStreamIngest endpoint at host:port.
StatusOr<StreamIngestClientResult> StreamReportsOverSocket(
    const release::ReleaseSpec& spec, const Dataset& dataset,
    const std::string& host, uint16_t port,
    const StreamIngestClientOptions& options = {});

}  // namespace mdrr::protocol

#endif  // MDRR_PROTOCOL_NET_INGEST_H_
