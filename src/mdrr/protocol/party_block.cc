#include "mdrr/protocol/party_block.h"

#include <algorithm>
#include <cstdint>
#include <new>
#include <type_traits>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"
#include "mdrr/rng/fast_seed.h"

namespace mdrr::protocol {

// Engines live in raw storage and are placement-constructed exactly once
// (seeded state, no throwaway default seeding); freeing the storage
// without destructor calls requires triviality.
static_assert(std::is_trivially_destructible_v<Rng>,
              "PartyBlock skips Rng destructor calls");

PartyBlock::PartyBlock(const Dataset& dataset, Rng& seeder)
    : num_parties_(dataset.num_rows()),
      num_attributes_(dataset.num_attributes()) {
  // Row-major record copy: round sweeps read all attributes of a party
  // consecutively, the opposite access pattern of the dataset's columns.
  records_.resize(num_parties_ * num_attributes_);
  for (size_t j = 0; j < num_attributes_; ++j) {
    const std::vector<uint32_t>& column = dataset.column(j);
    uint32_t* out = records_.data() + j;
    for (size_t i = 0; i < num_parties_; ++i) {
      out[i * num_attributes_] = column[i];
    }
  }
  // The serial per-party seed draw -- the part of the transcript that
  // pins party order -- stays exactly as the Party loop performs it.
  seeds_.resize(num_parties_);
  for (size_t i = 0; i < num_parties_; ++i) {
    seeds_[i] = seeder.engine()();
  }
  // The engine array spans ~2.5 KB per party -- hundreds of megabytes at
  // protocol scale -- and is written exactly once, in the first sweep.
  // Demand-faulting it 4 KB at a time can dominate that sweep once the
  // process carries real RSS, so on Linux the block is aligned to the
  // transparent-huge-page boundary and advised MADV_HUGEPAGE, cutting
  // the fault count by the 2 MB / 4 KB ratio. Purely advisory: any
  // kernel refusal leaves plain pages and identical results.
  constexpr size_t kHugePage = size_t{1} << 21;
  const size_t bytes = num_parties_ * sizeof(Rng);
  rng_storage_.reset(new unsigned char[bytes + kHugePage]);
  uintptr_t raw = reinterpret_cast<uintptr_t>(rng_storage_.get());
  uintptr_t aligned = (raw + kHugePage - 1) & ~(kHugePage - 1);
  rngs_ = reinterpret_cast<Rng*>(aligned);
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  madvise(reinterpret_cast<void*>(aligned), bytes, MADV_HUGEPAGE);
#endif
}

void PartyBlock::SeedEngineRange(size_t begin, size_t end) {
  ForEachSeedSequence(seeds_.data() + begin, end - begin,
                      [this, begin](size_t offset, auto& seq) {
                        new (static_cast<void*>(rngs_ + begin + offset))
                            Rng(seq);
                      });
}

void PartyBlock::EnsureEnginesSeeded(size_t shard_size, size_t num_threads) {
  if (engines_seeded_) return;
  ParallelChunks(num_parties_, shard_size, num_threads,
                 [this](size_t /*worker*/, size_t /*shard*/, size_t begin,
                        size_t end) { SeedEngineRange(begin, end); });
  engines_seeded_ = true;
}

void PartyBlock::PublishIndependent(
    const std::vector<RrMatrix>& matrices, size_t shard_size,
    size_t num_threads, std::vector<std::vector<uint32_t>>* columns) {
  const size_t m = num_attributes_;
  MDRR_CHECK_EQ(matrices.size(), m);
  MDRR_CHECK_EQ(columns->size(), m);
  std::vector<uint32_t*> column_ptrs(m);
  for (size_t j = 0; j < m; ++j) {
    MDRR_CHECK_EQ((*columns)[j].size(), num_parties_);
    column_ptrs[j] = (*columns)[j].data();
  }
  const RrMatrix* mats = matrices.data();
  const bool seed_now = !engines_seeded_;
  ParallelChunks(
      num_parties_, shard_size, num_threads,
      [&](size_t /*worker*/, size_t /*shard*/, size_t begin, size_t end) {
        // Seed a lane batch of engines, then publish those parties while
        // their states are cache-hot; the lane grouping never changes any
        // party's engine, so the grain stays load-balancing only.
        size_t group = begin;
        while (group < end) {
          size_t group_end = std::min(group + kSeedLanes, end);
          if (seed_now) SeedEngineRange(group, group_end);
          for (size_t i = group; i < group_end; ++i) {
            Rng& rng = rngs_[i];
            const uint32_t* record = records_.data() + i * m;
            for (size_t j = 0; j < m; ++j) {
              column_ptrs[j][i] = mats[j].Randomize(record[j], rng);
            }
          }
          group = group_end;
        }
      });
  engines_seeded_ = true;
}

ClusterSweepResult PartyBlock::PublishClusters(
    const AttributeClustering& clusters, const std::vector<Domain>& domains,
    const std::vector<RrMatrix>& matrices, size_t shard_size,
    size_t num_threads, bool collect_codes) {
  const size_t num_clusters = clusters.size();
  MDRR_CHECK_EQ(domains.size(), num_clusters);
  MDRR_CHECK_EQ(matrices.size(), num_clusters);
  EnsureEnginesSeeded(shard_size, num_threads);

  // Flatten the cluster structure so the per-party loop runs over plain
  // arrays: member attributes with their mixed-radix strides (the encode
  // weight is also the decode divisor) and per-position cardinalities --
  // identical arithmetic to Domain::Encode / Domain::DecodeAt.
  std::vector<size_t> offset(num_clusters);
  std::vector<size_t> cluster_size(num_clusters);
  std::vector<uint32_t> member_attr;
  std::vector<uint64_t> member_stride;  // Encode weight == decode divisor.
  std::vector<uint64_t> decode_card;
  for (size_t c = 0; c < num_clusters; ++c) {
    MDRR_CHECK_EQ(clusters[c].size(), domains[c].num_positions());
    offset[c] = member_attr.size();
    cluster_size[c] = clusters[c].size();
    for (size_t k = 0; k < clusters[c].size(); ++k) {
      MDRR_CHECK_LT(clusters[c][k], num_attributes_);
      member_attr.push_back(static_cast<uint32_t>(clusters[c][k]));
      member_stride.push_back(domains[c].strides()[k]);
      decode_card.push_back(domains[c].cardinalities()[k]);
    }
  }

  ClusterSweepResult result;
  result.codes.resize(collect_codes ? num_clusters : 0);
  result.decoded.resize(num_clusters);
  std::vector<uint32_t*> code_ptr(num_clusters, nullptr);
  std::vector<uint32_t*> decoded_ptr(member_attr.size());
  for (size_t c = 0; c < num_clusters; ++c) {
    if (collect_codes) {
      result.codes[c].resize(num_parties_);
      code_ptr[c] = result.codes[c].data();
    }
    result.decoded[c].resize(cluster_size[c]);
    for (size_t k = 0; k < cluster_size[c]; ++k) {
      result.decoded[c][k].resize(num_parties_);
      decoded_ptr[offset[c] + k] = result.decoded[c][k].data();
    }
  }

  // Per-worker count buffers (integer merges commute, so worker totals
  // reduce to the same histogram any sharded count produces).
  const size_t workers =
      ResolveWorkerCount(num_threads, num_parties_, shard_size);
  std::vector<std::vector<std::vector<int64_t>>> worker_counts(workers);
  for (size_t w = 0; w < workers; ++w) {
    worker_counts[w].resize(num_clusters);
    for (size_t c = 0; c < num_clusters; ++c) {
      worker_counts[w][c].assign(matrices[c].size(), 0);
    }
  }

  const RrMatrix* mats = matrices.data();
  const size_t m = num_attributes_;
  ParallelChunks(
      num_parties_, shard_size, num_threads,
      [&](size_t worker, size_t /*shard*/, size_t begin, size_t end) {
        std::vector<std::vector<int64_t>>& counts = worker_counts[worker];
        for (size_t i = begin; i < end; ++i) {
          Rng& rng = rngs_[i];
          const uint32_t* record = records_.data() + i * m;
          for (size_t c = 0; c < num_clusters; ++c) {
            const size_t off = offset[c];
            const size_t width = cluster_size[c];
            uint64_t code = 0;
            for (size_t k = 0; k < width; ++k) {
              code += member_stride[off + k] * record[member_attr[off + k]];
            }
            uint32_t published =
                mats[c].Randomize(static_cast<uint32_t>(code), rng);
            if (code_ptr[c] != nullptr) code_ptr[c][i] = published;
            ++counts[c][published];
            for (size_t k = 0; k < width; ++k) {
              decoded_ptr[off + k][i] = static_cast<uint32_t>(
                  (static_cast<uint64_t>(published) / member_stride[off + k]) %
                  decode_card[off + k]);
            }
          }
        }
      });

  result.counts.resize(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    result.counts[c].assign(matrices[c].size(), 0);
    for (size_t w = 0; w < workers; ++w) {
      const std::vector<int64_t>& partial = worker_counts[w][c];
      for (size_t y = 0; y < partial.size(); ++y) {
        result.counts[c][y] += partial[y];
      }
    }
  }
  return result;
}

}  // namespace mdrr::protocol
