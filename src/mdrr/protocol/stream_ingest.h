// Session-sourced ingest adapter for the streaming collector.
//
// RunStreamingReplay plays a dataset through a StreamingCollector as if
// its rows were parties arriving over time: report s carries row
// s % num_rows, perturbed party-side (the controller never sees true
// values) with randomness drawn from RngStreamFamily(execution.seed)
// stream s. Keying the randomness off the absolute sequence number --
// not the producing thread -- is what makes the replay a fixed arrival
// schedule: the per-window transcript is bit-identical for any
// num_ingest_threads and any shard count, and a paused run resumes from
// a snapshot knowing nothing but the sequence cursor.
//
// Threading: `num_ingest_threads` producers claim sequence numbers from
// one shared atomic counter (so the submitted range stays contiguous --
// a snapshot never has holes to re-ingest), perturb, and spin-submit
// under backpressure; one drain thread per shard moves reports into the
// count ring; the calling thread polls windows. The call blocks until
// the replay completes (or reaches `pause_at` and snapshots).

#ifndef MDRR_PROTOCOL_STREAM_INGEST_H_
#define MDRR_PROTOCOL_STREAM_INGEST_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/release/spec.h"
#include "mdrr/release/streaming.h"

namespace mdrr::protocol {

struct StreamingReplayOptions {
  // Producer threads submitting reports. Purely a throughput knob: the
  // window transcript is identical for any value.
  size_t num_ingest_threads = 1;
  release::StreamingCollectorOptions collector;
  // Reports to stream in total; 0 = one per dataset row. Beyond
  // num_rows the replay wraps around the dataset.
  uint64_t total_reports = 0;
  // Stop ingesting before this sequence number and return a snapshot
  // instead of sealing (0 = run to completion). Pausing mid-bucket is
  // fine; the partial counts travel in the snapshot.
  uint64_t pause_at = 0;
  // Resume state from a previous pause (null = fresh run). The replay
  // continues at resume->next_sequence.
  const release::StreamingSnapshot* resume = nullptr;
};

struct StreamingReplayResult {
  // Windows emitted by THIS call, in window order (a resumed run starts
  // at the snapshot's window cursor).
  std::vector<release::StreamWindow> windows;
  // Present iff the run paused at `pause_at`; feed it back through
  // StreamingReplayOptions::resume to continue.
  std::optional<release::StreamingSnapshot> snapshot;
  uint64_t first_sequence = 0;
  uint64_t reports_ingested = 0;
  // Ledger total across the whole stream (including pre-resume spend).
  double epsilon_spent = 0.0;
  // True when the stream sealed and every releasable window is out.
  bool finished = false;
};

StatusOr<StreamingReplayResult> RunStreamingReplay(
    const release::ReleaseSpec& spec, const Dataset& dataset,
    const StreamingReplayOptions& options);

}  // namespace mdrr::protocol

#endif  // MDRR_PROTOCOL_STREAM_INGEST_H_
