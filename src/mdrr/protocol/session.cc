#include "mdrr/protocol/session.h"

#include <algorithm>
#include <utility>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"
#include "mdrr/protocol/party_block.h"
#include "mdrr/release/planner.h"
#include "mdrr/stats/frequency.h"

namespace mdrr::protocol {

Party::Party(uint64_t id, std::vector<uint32_t> true_record, uint64_t seed)
    : id_(id), true_record_(std::move(true_record)), rng_(seed) {}

std::vector<uint32_t> Party::PublishIndependent(
    const std::vector<RrMatrix>& matrices) {
  MDRR_CHECK_EQ(matrices.size(), true_record_.size());
  std::vector<uint32_t> published(true_record_.size());
  for (size_t j = 0; j < true_record_.size(); ++j) {
    published[j] = matrices[j].Randomize(true_record_[j], rng_);
  }
  return published;
}

std::vector<uint32_t> Party::PublishClusters(
    const AttributeClustering& clusters, const std::vector<Domain>& domains,
    const std::vector<RrMatrix>& matrices) {
  MDRR_CHECK_EQ(clusters.size(), domains.size());
  MDRR_CHECK_EQ(clusters.size(), matrices.size());
  std::vector<uint32_t> published(clusters.size());
  std::vector<uint32_t> tuple;
  for (size_t c = 0; c < clusters.size(); ++c) {
    tuple.clear();
    for (size_t j : clusters[c]) {
      MDRR_CHECK_LT(j, true_record_.size());
      tuple.push_back(true_record_[j]);
    }
    uint32_t true_code = static_cast<uint32_t>(domains[c].Encode(tuple));
    published[c] = matrices[c].Randomize(true_code, rng_);
  }
  return published;
}

namespace {

// --- Stage helpers shared by both execution paths, so the published
// matrices, domains and epsilon accounting are identical by construction.
// ---

// The round-1 per-attribute designs of Section 4.1, accumulating the
// round's epsilon into `result`.
std::vector<RrMatrix> DesignRound1Matrices(const Dataset& dataset,
                                           const SessionOptions& options,
                                           SessionResult* result) {
  const size_t m = dataset.num_attributes();
  std::vector<RrMatrix> matrices;
  matrices.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    matrices.push_back(RrMatrix::KeepUniform(
        dataset.attribute(j).cardinality(), options.round1_keep_probability));
    result->round1_epsilon += matrices.back().Epsilon();
  }
  return matrices;
}

// The round-2 cluster domains and Section 6.3.2-calibrated designs,
// populating result->cluster_domains and round2_epsilon. Guards the
// product domain before constructing it: uint64 overflow must surface as
// a Status (not a CHECK-abort), and published codes are uint32, so
// oversized clusters get the same cap as RR-Joint.
StatusOr<std::vector<RrMatrix>> DesignClusterMatrices(
    const Dataset& dataset, const SessionOptions& options,
    SessionResult* result) {
  std::vector<RrMatrix> matrices;
  for (const std::vector<size_t>& cluster : result->clusters) {
    MDRR_ASSIGN_OR_RETURN(
        uint64_t cluster_domain_size,
        Domain::CheckedSizeForAttributes(dataset, cluster));
    if (cluster_domain_size > (1ull << 31)) {
      return Status::OutOfRange(
          "cluster joint domain has " +
          std::to_string(cluster_domain_size) +
          " categories; too large to publish as composite codes");
    }
    result->cluster_domains.push_back(
        Domain::ForAttributes(dataset, cluster));
    double budget =
        ClusterEpsilonBudget(dataset, cluster, options.keep_probability);
    matrices.push_back(RrMatrix::OptimalForEpsilon(
        static_cast<size_t>(result->cluster_domains.back().size()), budget));
    result->round2_epsilon += matrices.back().Epsilon();
  }
  return matrices;
}

// --- Reference semantics: one Party object per respondent. The batched
// fast path below is golden-tested against this loop
// (tests/session_fast_path_test.cc), so its structure deliberately stays
// the straightforward reading of the paper's message flow. ---
StatusOr<SessionResult> RunPartyLoopSession(
    const Dataset& dataset, const SessionOptions& options,
    const release::ControllerPlan& controller) {
  const size_t n = dataset.num_rows();
  const size_t m = dataset.num_attributes();
  const size_t shard_size = std::max<size_t>(1, options.shard_size);
  const size_t threads = options.num_threads;

  // Instantiate the parties. Seeds are drawn serially (the seed sequence
  // is part of the session transcript); after that each party's
  // randomness is self-contained, so publications shard freely with
  // bit-identical output at any thread count.
  Rng seeder(options.seed);
  std::vector<Party> parties;
  parties.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> record(m);
    for (size_t j = 0; j < m; ++j) record[j] = dataset.at(i, j);
    parties.emplace_back(i, std::move(record), seeder.engine()());
  }

  SessionResult result;

  // --- Round 1: per-attribute randomized publication (Section 4.1),
  // parties publishing in sharded batches. ---
  std::vector<RrMatrix> round1_matrices =
      DesignRound1Matrices(dataset, options, &result);
  std::vector<std::vector<uint32_t>> round1_columns(
      m, std::vector<uint32_t>(n));
  ParallelChunks(n, shard_size, threads,
                 [&](size_t /*worker*/, size_t /*shard*/, size_t begin,
                     size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     std::vector<uint32_t> published =
                         parties[i].PublishIndependent(round1_matrices);
                     for (size_t j = 0; j < m; ++j) {
                       round1_columns[j][i] = published[j];
                     }
                   }
                 });
  Dataset round1_data(dataset.schema(), std::move(round1_columns));
  result.messages_round1 = n;

  // Controller: dependences on the randomized data (pair grid and
  // contingency accumulation sharded), then Algorithm 1, then one
  // clustering broadcast to every party.
  MDRR_ASSIGN_OR_RETURN(result.clusters,
                        controller.AssessAndCluster(round1_data));
  result.messages_broadcast = n;

  // --- Round 2: cluster-wise publication (Section 6.3.2 calibration),
  // again in sharded batches. ---
  MDRR_ASSIGN_OR_RETURN(
      std::vector<RrMatrix> cluster_matrices,
      DesignClusterMatrices(dataset, options, &result));
  const size_t num_clusters = result.clusters.size();
  std::vector<std::vector<uint32_t>> cluster_codes(
      num_clusters, std::vector<uint32_t>(n));
  ParallelChunks(n, shard_size, threads,
                 [&](size_t /*worker*/, size_t /*shard*/, size_t begin,
                     size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     std::vector<uint32_t> published =
                         parties[i].PublishClusters(result.clusters,
                                                    result.cluster_domains,
                                                    cluster_matrices);
                     for (size_t c = 0; c < num_clusters; ++c) {
                       cluster_codes[c][i] = published[c];
                     }
                   }
                 });
  result.messages_round2 = n;

  // Controller: Eq. (2) estimation per cluster, decode Y. Counting is
  // sharded with per-worker integer buffers (merge order immaterial).
  result.randomized = dataset;
  for (size_t c = 0; c < num_clusters; ++c) {
    const Domain& domain = result.cluster_domains[c];
    MDRR_ASSIGN_OR_RETURN(
        std::vector<double> estimated,
        controller.EstimateDistribution(cluster_matrices[c],
                                        cluster_codes[c],
                                        static_cast<size_t>(domain.size())));
    result.cluster_joints.push_back(std::move(estimated));

    for (size_t position = 0; position < result.clusters[c].size();
         ++position) {
      result.randomized.SetColumn(
          result.clusters[c][position],
          controller.DecodeColumn(domain, cluster_codes[c], position));
    }
  }
  return result;
}

// --- Batched fast path: the same protocol as columnar sweeps over a
// PartyBlock. Publications, clustering input, counts, decode, epsilons
// and message accounting are all bit-identical to the Party loop. ---
StatusOr<SessionResult> RunBatchedSession(
    const Dataset& dataset, const SessionOptions& options,
    const release::ControllerPlan& controller) {
  const size_t n = dataset.num_rows();
  const size_t m = dataset.num_attributes();
  const size_t shard_size = std::max<size_t>(1, options.shard_size);
  const size_t threads = options.num_threads;

  Rng seeder(options.seed);
  PartyBlock parties(dataset, seeder);

  SessionResult result;

  // Round 1: engines are lane-seeded and publish in one fused sweep.
  std::vector<RrMatrix> round1_matrices =
      DesignRound1Matrices(dataset, options, &result);
  std::vector<std::vector<uint32_t>> round1_columns(
      m, std::vector<uint32_t>(n));
  parties.PublishIndependent(round1_matrices, shard_size, threads,
                             &round1_columns);
  Dataset round1_data(dataset.schema(), std::move(round1_columns));
  result.messages_round1 = n;

  MDRR_ASSIGN_OR_RETURN(result.clusters,
                        controller.AssessAndCluster(round1_data));
  result.messages_broadcast = n;

  // Round 2: one sweep publishes the composite codes and fuses the
  // controller's counting and per-position decode into the same pass.
  MDRR_ASSIGN_OR_RETURN(
      std::vector<RrMatrix> cluster_matrices,
      DesignClusterMatrices(dataset, options, &result));
  ClusterSweepResult sweep = parties.PublishClusters(
      result.clusters, result.cluster_domains, cluster_matrices, shard_size,
      threads);
  result.messages_round2 = n;

  // Controller: Eq. (2) estimation straight from the fused counts (equal
  // to a post-hoc sharded histogram of the codes), decoded columns moved
  // into the release.
  result.randomized = dataset;
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    MDRR_ASSIGN_OR_RETURN(
        std::vector<double> estimated,
        controller.EstimateFromCounts(
            cluster_matrices[c],
            stats::FrequencyTable(std::move(sweep.counts[c]))));
    result.cluster_joints.push_back(std::move(estimated));
    for (size_t position = 0; position < result.clusters[c].size();
         ++position) {
      result.randomized.SetColumn(result.clusters[c][position],
                                  std::move(sweep.decoded[c][position]));
    }
  }
  return result;
}

// --- Counter (philox) path: the same message flow with element-addressed
// party randomness. Round-1 attribute j draws from philox stream
// kRound1StreamBase + j with party i as element i; round-2 cluster c from
// kRound2StreamBase + c. No per-party seeding pass exists, so the
// transcript is a pure function of (dataset, seed) invariant under thread
// count AND shard grain by construction. The stream bases keep the
// session's philox streams disjoint from the batch engine's column
// streams (small integers) at the same seed. ---
constexpr uint64_t kRound1StreamBase = 1ull << 33;
constexpr uint64_t kRound2StreamBase = 1ull << 34;

StatusOr<SessionResult> RunCounterSession(
    const Dataset& dataset, const SessionOptions& options,
    const release::ControllerPlan& controller) {
  const size_t n = dataset.num_rows();
  const size_t m = dataset.num_attributes();
  const size_t shard_size = std::max<size_t>(1, options.shard_size);
  const size_t threads = options.num_threads;
  const uint64_t seed = options.seed;

  SessionResult result;

  // Round 1: per-attribute publication, one counter stream per attribute.
  std::vector<RrMatrix> round1_matrices =
      DesignRound1Matrices(dataset, options, &result);
  std::vector<std::vector<uint32_t>> round1_columns(
      m, std::vector<uint32_t>(n));
  for (size_t j = 0; j < m; ++j) {
    const std::vector<uint32_t>& column = dataset.column(j);
    ParallelChunks(n, shard_size, threads,
                   [&](size_t /*worker*/, size_t /*shard*/, size_t begin,
                       size_t end) {
                     round1_matrices[j].RandomizeRangeCounterInto(
                         column, begin, end, seed, kRound1StreamBase + j,
                         round1_columns[j].data(), /*counts=*/nullptr);
                   });
  }
  Dataset round1_data(dataset.schema(), std::move(round1_columns));
  result.messages_round1 = n;

  MDRR_ASSIGN_OR_RETURN(result.clusters,
                        controller.AssessAndCluster(round1_data));
  result.messages_broadcast = n;

  // Round 2: composite codes per cluster, one counter stream per cluster,
  // with the controller's counting fused into the randomization pass
  // (per-worker integer buffers; sums commute, so totals are independent
  // of the shard-to-worker assignment).
  MDRR_ASSIGN_OR_RETURN(
      std::vector<RrMatrix> cluster_matrices,
      DesignClusterMatrices(dataset, options, &result));
  result.messages_round2 = n;
  result.randomized = dataset;
  std::vector<uint32_t> true_codes(n);
  std::vector<uint32_t> codes(n);
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    const Domain& domain = result.cluster_domains[c];
    const std::vector<size_t>& cluster = result.clusters[c];
    const size_t r = cluster_matrices[c].size();

    ParallelChunks(n, shard_size, threads,
                   [&](size_t /*worker*/, size_t /*shard*/, size_t begin,
                       size_t end) {
                     std::vector<uint32_t> tuple(cluster.size());
                     for (size_t i = begin; i < end; ++i) {
                       for (size_t k = 0; k < cluster.size(); ++k) {
                         tuple[k] = dataset.at(i, cluster[k]);
                       }
                       true_codes[i] =
                           static_cast<uint32_t>(domain.Encode(tuple));
                     }
                   });

    const size_t workers = ResolveWorkerCount(threads, n, shard_size);
    std::vector<std::vector<int64_t>> worker_counts(
        workers, std::vector<int64_t>(r, 0));
    ParallelChunks(n, shard_size, threads,
                   [&](size_t worker, size_t /*shard*/, size_t begin,
                       size_t end) {
                     cluster_matrices[c].RandomizeRangeCounterInto(
                         true_codes, begin, end, seed, kRound2StreamBase + c,
                         codes.data(), worker_counts[worker].data());
                   });
    stats::FrequencyTable total(std::vector<int64_t>(r, 0));
    for (std::vector<int64_t>& partial : worker_counts) {
      total.Absorb(stats::FrequencyTable(std::move(partial)));
    }

    MDRR_ASSIGN_OR_RETURN(
        std::vector<double> estimated,
        controller.EstimateFromCounts(cluster_matrices[c], total));
    result.cluster_joints.push_back(std::move(estimated));
    for (size_t position = 0; position < cluster.size(); ++position) {
      result.randomized.SetColumn(
          cluster[position], controller.DecodeColumn(domain, codes, position));
    }
  }
  return result;
}

}  // namespace

StatusOr<SessionResult> RunDistributedSession(const Dataset& dataset,
                                              const SessionOptions& options) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("a session needs at least one party");
  }
  if (options.rng == RngKind::kPhilox &&
      options.execution == SessionExecution::kPartyLoop) {
    return Status::InvalidArgument(
        "the party-loop reference semantics are the mt19937 per-party "
        "seeding transcript; run the philox policy with the batched "
        "execution");
  }
  // The controller's stage work (dependence assessment, Algorithm 1,
  // Eq. (2) estimation, decode) goes through the release layer's
  // controller plan under one execution policy; the sharded primitives
  // it routes to are bit-identical for any thread count.
  MDRR_ASSIGN_OR_RETURN(
      release::ControllerPlan controller,
      release::ReleasePlanner::PlanController(
          options.clustering,
          release::ExecutionPolicy{release::PolicyKind::kSharded,
                                   options.seed, options.num_threads,
                                   std::max<size_t>(1, options.shard_size),
                                   options.rng}));
  if (options.rng == RngKind::kPhilox) {
    return RunCounterSession(dataset, options, controller);
  }
  if (options.execution == SessionExecution::kPartyLoop) {
    return RunPartyLoopSession(dataset, options, controller);
  }
  return RunBatchedSession(dataset, options, controller);
}

}  // namespace mdrr::protocol
