#include "mdrr/protocol/net_ingest.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "mdrr/net/protocol.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr::protocol {
namespace {

// Sends a best-effort Abort and returns `status` (server-side fail path).
Status AbortAndReturn(net::TcpConnection& conn, Status status) {
  net::AbortMsg abort{status.ToString()};
  conn.SendFrame(net::FrameType::kAbort, net::EncodeAbort(abort), 1000);
  return status;
}

}  // namespace

StatusOr<StreamServeResult> ServeStreamIngest(
    const release::ReleaseSpec& spec, net::TcpListener& listener,
    const StreamIngestServeOptions& options) {
  MDRR_ASSIGN_OR_RETURN(net::TcpConnection conn,
                        listener.Accept(options.deadline_ms));
  MDRR_ASSIGN_OR_RETURN(net::PeerRole role,
                        net::ServerHandshake(conn, options.deadline_ms));
  if (role != net::PeerRole::kIngest) {
    return AbortAndReturn(
        conn, Status::InvalidArgument(
                  "peer connected with a non-ingest role"));
  }

  MDRR_ASSIGN_OR_RETURN(net::Frame open_frame,
                        conn.RecvFrame(options.deadline_ms));
  if (open_frame.type != net::FrameType::kStreamOpen) {
    return AbortAndReturn(
        conn, Status::InvalidArgument("expected StreamOpen after handshake"));
  }
  auto open = net::ParseStreamOpen(open_frame.payload);
  if (!open.ok()) return AbortAndReturn(conn, open.status());

  std::vector<size_t> cardinalities;
  cardinalities.reserve(open->cardinalities.size());
  for (uint64_t c : open->cardinalities) {
    cardinalities.push_back(static_cast<size_t>(c));
  }
  auto collector_or = release::StreamingCollector::Create(
      spec, cardinalities, options.collector);
  if (!collector_or.ok()) return AbortAndReturn(conn, collector_or.status());
  release::StreamingCollector& collector = *collector_or.value();
  const size_t num_shards = collector.num_shards();

  StreamServeResult result;
  // Single-connection replay: reports must arrive in contiguous sequence
  // order, so backpressure resolves inline (this thread is producer,
  // drain, and release thread at once).
  uint64_t cursor = 0;
  bool sealed = false;
  while (!sealed) {
    MDRR_ASSIGN_OR_RETURN(net::Frame frame,
                          conn.RecvFrame(options.deadline_ms));
    switch (frame.type) {
      case net::FrameType::kStreamReport: {
        auto report = net::ParseStreamReport(frame.payload);
        if (!report.ok()) return AbortAndReturn(conn, report.status());
        if (report->num_attributes != cardinalities.size()) {
          return AbortAndReturn(conn, Status::InvalidArgument(
                                          "report attribute count does not "
                                          "match the opened schema"));
        }
        if (report->first_sequence != cursor) {
          return AbortAndReturn(
              conn, Status::InvalidArgument(
                        "reports must arrive in contiguous sequence order"));
        }
        std::vector<uint32_t> codes(cardinalities.size());
        for (uint32_t k = 0; k < report->num_reports; ++k) {
          const uint64_t s = report->first_sequence + k;
          for (size_t j = 0; j < codes.size(); ++j) {
            uint32_t code = report->codes[static_cast<size_t>(k) *
                                              cardinalities.size() + j];
            if (code >= cardinalities[j]) {
              return AbortAndReturn(
                  conn, Status::InvalidArgument(
                            "report code exceeds attribute cardinality"));
            }
            codes[j] = code;
          }
          const size_t shard = static_cast<size_t>(s % num_shards);
          while (!collector.TrySubmit(shard, s, codes)) {
            // Admission frontier is behind: drain and release to advance.
            for (size_t d = 0; d < num_shards; ++d) collector.DrainShard(d);
            MDRR_ASSIGN_OR_RETURN(size_t emitted,
                                  collector.PollWindows(result.windows));
            (void)emitted;
          }
        }
        cursor += report->num_reports;
        for (size_t d = 0; d < num_shards; ++d) collector.DrainShard(d);
        MDRR_ASSIGN_OR_RETURN(size_t emitted,
                              collector.PollWindows(result.windows));
        (void)emitted;
        break;
      }
      case net::FrameType::kStreamSeal: {
        auto seal = net::ParseStreamSeal(frame.payload);
        if (!seal.ok()) return AbortAndReturn(conn, seal.status());
        if (seal->total_reports != cursor) {
          return AbortAndReturn(
              conn, Status::InvalidArgument(
                        "seal total does not match the ingested count"));
        }
        for (size_t d = 0; d < num_shards; ++d) collector.DrainShard(d);
        collector.Seal(cursor);
        MDRR_ASSIGN_OR_RETURN(size_t emitted,
                              collector.PollWindows(result.windows));
        (void)emitted;
        sealed = true;
        break;
      }
      case net::FrameType::kAbort: {
        auto abort = net::ParseAbort(frame.payload);
        return Status::Unavailable(
            "ingest client aborted: " +
            (abort.ok() ? abort->reason : std::string("(unparseable)")));
      }
      default:
        return AbortAndReturn(
            conn, Status::InvalidArgument("unexpected frame during ingest"));
    }
  }

  result.reports_ingested = cursor;
  result.epsilon_spent = collector.epsilon_spent();
  result.finished = collector.Finished();

  net::StreamResultMsg summary;
  summary.reports_ingested = result.reports_ingested;
  summary.epsilon_spent = result.epsilon_spent;
  summary.finished = result.finished ? 1 : 0;
  MDRR_RETURN_IF_ERROR(conn.SendFrame(net::FrameType::kStreamResult,
                                      net::EncodeStreamResult(summary),
                                      options.deadline_ms));
  return result;
}

StatusOr<StreamIngestClientResult> StreamReportsOverSocket(
    const release::ReleaseSpec& spec, const Dataset& dataset,
    const std::string& host, uint16_t port,
    const StreamIngestClientOptions& options) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("the replay dataset has no records");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  std::vector<size_t> cardinalities;
  cardinalities.reserve(dataset.num_attributes());
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    cardinalities.push_back(dataset.attribute(j).cardinality());
  }

  // A local collector is the canonical way to resolve the spec's design
  // into matrices -- guaranteed identical to the server's, since both
  // run StreamingCollector::Create on the same (spec, cardinalities).
  MDRR_ASSIGN_OR_RETURN(
      std::unique_ptr<release::StreamingCollector> design,
      release::StreamingCollector::Create(spec, cardinalities, {}));
  const std::vector<RrMatrix>& matrices = design->matrices();

  MDRR_ASSIGN_OR_RETURN(
      net::TcpConnection conn,
      net::TcpConnection::Connect(host, port, options.deadline_ms));
  MDRR_RETURN_IF_ERROR(net::ClientHandshake(conn, net::PeerRole::kIngest,
                                            options.deadline_ms));

  const uint64_t total = options.total_reports > 0
                             ? options.total_reports
                             : static_cast<uint64_t>(dataset.num_rows());
  net::StreamOpenMsg open;
  open.cardinalities.assign(cardinalities.begin(), cardinalities.end());
  open.total_reports = total;
  MDRR_RETURN_IF_ERROR(conn.SendFrame(net::FrameType::kStreamOpen,
                                      net::EncodeStreamOpen(open),
                                      options.deadline_ms));

  const RngStreamFamily family(spec.execution.seed);
  const bool philox = spec.execution.rng == RngKind::kPhilox;
  const size_t num_attrs = dataset.num_attributes();

  for (uint64_t begin = 0; begin < total;
       begin += options.batch_size) {
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(options.batch_size, total - begin));
    net::StreamReportMsg batch;
    batch.first_sequence = begin;
    batch.num_reports = count;
    batch.num_attributes = static_cast<uint32_t>(num_attrs);
    batch.codes.resize(static_cast<size_t>(count) * num_attrs);
    for (uint32_t k = 0; k < count; ++k) {
      const uint64_t s = begin + k;
      const size_t row = static_cast<size_t>(s % dataset.num_rows());
      uint32_t* out = batch.codes.data() + static_cast<size_t>(k) * num_attrs;
      // Party-side perturbation keyed off the absolute sequence number:
      // draw-for-draw what RunStreamingReplay's producers compute.
      if (philox) {
        for (size_t j = 0; j < num_attrs; ++j) {
          out[j] = matrices[j].RandomizeCounter(dataset.at(row, j),
                                                spec.execution.seed,
                                                /*stream=*/s, /*element=*/j);
        }
      } else {
        Rng rng = family.Stream(s);
        for (size_t j = 0; j < num_attrs; ++j) {
          out[j] = matrices[j].Randomize(dataset.at(row, j), rng);
        }
      }
    }
    MDRR_RETURN_IF_ERROR(conn.SendFrame(net::FrameType::kStreamReport,
                                        net::EncodeStreamReport(batch),
                                        options.deadline_ms));
  }

  net::StreamSealMsg seal;
  seal.total_reports = total;
  MDRR_RETURN_IF_ERROR(conn.SendFrame(net::FrameType::kStreamSeal,
                                      net::EncodeStreamSeal(seal),
                                      options.deadline_ms));

  MDRR_ASSIGN_OR_RETURN(net::Frame frame, conn.RecvFrame(options.deadline_ms));
  if (frame.type == net::FrameType::kAbort) {
    auto abort = net::ParseAbort(frame.payload);
    return Status::Unavailable(
        "ingest server aborted: " +
        (abort.ok() ? abort->reason : std::string("(unparseable)")));
  }
  if (frame.type != net::FrameType::kStreamResult) {
    return Status::InvalidArgument("expected StreamResult after seal");
  }
  MDRR_ASSIGN_OR_RETURN(net::StreamResultMsg summary,
                        net::ParseStreamResult(frame.payload));

  StreamIngestClientResult result;
  result.reports_sent = total;
  result.reports_ingested = summary.reports_ingested;
  result.epsilon_spent = summary.epsilon_spent;
  result.finished = summary.finished != 0;
  return result;
}

}  // namespace mdrr::protocol
