#include "mdrr/protocol/stream_ingest.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr::protocol {

StatusOr<StreamingReplayResult> RunStreamingReplay(
    const release::ReleaseSpec& spec, const Dataset& dataset,
    const StreamingReplayOptions& options) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("the replay dataset has no records");
  }
  std::vector<size_t> cardinalities;
  cardinalities.reserve(dataset.num_attributes());
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    cardinalities.push_back(dataset.attribute(j).cardinality());
  }

  MDRR_ASSIGN_OR_RETURN(
      std::unique_ptr<release::StreamingCollector> collector,
      options.resume != nullptr
          ? release::StreamingCollector::Resume(spec, cardinalities,
                                                options.collector,
                                                *options.resume)
          : release::StreamingCollector::Create(spec, cardinalities,
                                                options.collector));

  const uint64_t total = options.total_reports > 0
                             ? options.total_reports
                             : static_cast<uint64_t>(dataset.num_rows());
  const uint64_t start =
      options.resume != nullptr ? options.resume->next_sequence : 0;
  const bool pausing = options.pause_at > 0 && options.pause_at < total;
  const uint64_t limit = pausing ? options.pause_at : total;
  if (start > limit) {
    return Status::InvalidArgument(
        "the resume cursor is already past the replay range");
  }

  const RngStreamFamily family(spec.execution.seed);
  const std::vector<RrMatrix>& matrices = collector->matrices();
  const size_t num_shards = collector->num_shards();
  const size_t num_producers = std::max<size_t>(1, options.num_ingest_threads);

  // Producers claim sequences from one shared counter: every claim below
  // `limit` is always submitted, and claims at or beyond it are abandoned
  // by everyone, so the submitted range stays contiguous for Snapshot.
  std::atomic<uint64_t> next_sequence{start};
  std::atomic<bool> abort{false};
  std::atomic<bool> stop_drains{false};
  std::atomic<size_t> live_producers{num_producers};

  // Per-report randomness. mt19937 (default): report s seeds a full
  // sub-stream of the family -- a seed_seq expansion plus 312 words of
  // twister state per report. philox: report s is philox stream s of the
  // execution seed and attribute j its element j -- one 10-round counter
  // evaluation per attribute, no state to initialize, and the transcript
  // is identical for any num_ingest_threads either way.
  const bool philox = spec.execution.rng == RngKind::kPhilox;
  auto produce = [&]() {
    std::vector<uint32_t> codes(dataset.num_attributes());
    while (!abort.load(std::memory_order_acquire)) {
      const uint64_t s = next_sequence.fetch_add(1, std::memory_order_relaxed);
      if (s >= limit) break;
      const size_t row = static_cast<size_t>(s % dataset.num_rows());
      if (philox) {
        for (size_t j = 0; j < codes.size(); ++j) {
          codes[j] = matrices[j].RandomizeCounter(
              dataset.at(row, j), spec.execution.seed, /*stream=*/s,
              /*element=*/j);
        }
      } else {
        Rng rng = family.Stream(s);
        for (size_t j = 0; j < codes.size(); ++j) {
          codes[j] = matrices[j].Randomize(dataset.at(row, j), rng);
        }
      }
      const size_t shard = static_cast<size_t>(s % num_shards);
      while (!collector->TrySubmit(shard, s, codes)) {
        if (abort.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> drains;
  drains.reserve(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    drains.emplace_back([&, shard]() {
      while (!stop_drains.load(std::memory_order_acquire)) {
        if (collector->DrainShard(shard) == 0) std::this_thread::yield();
      }
      collector->DrainShard(shard);
    });
  }
  std::vector<std::thread> producers;
  producers.reserve(num_producers);
  for (size_t i = 0; i < num_producers; ++i) {
    producers.emplace_back([&]() {
      produce();
      live_producers.fetch_sub(1, std::memory_order_release);
    });
  }

  StreamingReplayResult result;
  result.first_sequence = start;

  // The calling thread is the release thread: keep draining windows (which
  // also advances the admission frontier producers wait on) until the
  // stream quiesces. On a poll error the producers must be unblocked
  // before joining -- their backpressure spins wait on this very loop.
  Status poll_status = Status::OK();
  for (;;) {
    StatusOr<size_t> polled = collector->PollWindows(result.windows);
    if (!polled.ok()) {
      poll_status = polled.status();
      abort.store(true, std::memory_order_release);
      break;
    }
    if (live_producers.load(std::memory_order_acquire) == 0 &&
        collector->Quiescent()) {
      break;
    }
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  stop_drains.store(true, std::memory_order_release);
  for (std::thread& t : drains) t.join();
  MDRR_RETURN_IF_ERROR(poll_status);

  result.reports_ingested = limit - start;
  if (pausing) {
    MDRR_ASSIGN_OR_RETURN(size_t emitted,
                          collector->PollWindows(result.windows));
    (void)emitted;
    MDRR_ASSIGN_OR_RETURN(release::StreamingSnapshot snapshot,
                          collector->Snapshot(limit));
    result.snapshot = std::move(snapshot);
  } else {
    collector->Seal(total);
    MDRR_ASSIGN_OR_RETURN(size_t emitted,
                          collector->PollWindows(result.windows));
    (void)emitted;
    result.finished = collector->Finished();
  }
  result.epsilon_spent = collector->epsilon_spent();
  return result;
}

}  // namespace mdrr::protocol
