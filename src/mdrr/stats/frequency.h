// Frequency machinery: univariate frequency tables over category codes and
// bivariate contingency tables with the chi-squared independence statistic
// and Cramér's V (Section 4, Expression (9)).

#ifndef MDRR_STATS_FREQUENCY_H_
#define MDRR_STATS_FREQUENCY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "mdrr/common/parallel.h"
#include "mdrr/common/status_or.h"

namespace mdrr::stats {

// Counts and proportions of a single categorical variable.
class FrequencyTable {
 public:
  // From raw category codes; every code must be < num_categories.
  FrequencyTable(const std::vector<uint32_t>& codes, size_t num_categories);

  // From precomputed counts.
  explicit FrequencyTable(std::vector<int64_t> counts);

  size_t num_categories() const { return counts_.size(); }
  int64_t total() const { return total_; }
  const std::vector<int64_t>& counts() const { return counts_; }

  // Empirical distribution λ̂ (all zeros if total() == 0).
  std::vector<double> Proportions() const;

  // Adds another table's counts into this one (shard-wise counting:
  // count shards independently, then Absorb the partial tables).
  // Precondition: same num_categories().
  void Absorb(const FrequencyTable& other);

 private:
  std::vector<int64_t> counts_;
  int64_t total_;
};

// Sharded histogram: counts code_of(i) for i in [0, n) across worker
// threads, each worker accumulating into its own buffer, with the
// partial tables merged by Absorb. Integer sums commute, so the result
// is a pure function of (n, code_of) -- independent of thread count,
// chunk size, and which worker claimed which chunk. `code_of` must be
// safe to call concurrently and return values < num_categories.
template <typename CodeFn>
FrequencyTable ShardedHistogram(size_t n, size_t num_categories,
                                size_t chunk_size, size_t num_threads,
                                const CodeFn& code_of) {
  const size_t workers = ResolveWorkerCount(num_threads, n, chunk_size);
  std::vector<std::vector<int64_t>> worker_counts(
      workers, std::vector<int64_t>(num_categories, 0));
  ParallelChunks(n, chunk_size, num_threads,
                 [&](size_t worker, size_t /*chunk*/, size_t begin,
                     size_t end) {
                   int64_t* buf = worker_counts[worker].data();
                   for (size_t i = begin; i < end; ++i) ++buf[code_of(i)];
                 });
  FrequencyTable total(std::move(worker_counts[0]));
  for (size_t w = 1; w < workers; ++w) {
    total.Absorb(FrequencyTable(std::move(worker_counts[w])));
  }
  return total;
}

// Joint counts of two categorical variables.
class ContingencyTable {
 public:
  // From paired code vectors (equal length).
  ContingencyTable(const std::vector<uint32_t>& codes_a, size_t cardinality_a,
                   const std::vector<uint32_t>& codes_b, size_t cardinality_b);

  // From a precomputed joint distribution (probabilities or counts) laid
  // out row-major: cell(a, b) = joint[a * cardinality_b + b], with a given
  // effective sample size n used for the chi-squared statistic.
  ContingencyTable(std::vector<double> joint_weights, size_t cardinality_a,
                   size_t cardinality_b, double n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double n() const { return n_; }
  double Cell(size_t a, size_t b) const;
  double RowMarginal(size_t a) const;
  double ColMarginal(size_t b) const;

  // Pearson's chi-squared independence statistic
  // χ² = Σ (o_ab - e_ab)² / e_ab with e_ab = row_a * col_b / n.
  // Cells with e_ab = 0 contribute 0.
  double ChiSquaredStatistic() const;

  // Cramér's V = sqrt( (χ²/n) / min(rows-1, cols-1) ) in [0, 1];
  // returns 0 if either variable has a single category.
  double CramersV() const;

 private:
  size_t rows_;
  size_t cols_;
  double n_;
  std::vector<double> cells_;  // Row-major weights (counts or mass * n).
};

}  // namespace mdrr::stats

#endif  // MDRR_STATS_FREQUENCY_H_
