// Special functions needed by the statistical error theory of the paper:
// regularized incomplete gamma (chi-squared CDF) and the inverse standard
// normal CDF (chi-squared quantiles). Implemented from scratch (series /
// continued fraction; Acklam rational approximation plus Halley polish).

#ifndef MDRR_STATS_SPECIAL_FUNCTIONS_H_
#define MDRR_STATS_SPECIAL_FUNCTIONS_H_

namespace mdrr::stats {

// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a).
// Preconditions: a > 0, x >= 0. Accuracy ~1e-14.
double RegularizedGammaP(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

// Standard normal CDF Φ(x).
double StandardNormalCdf(double x);

// Inverse standard normal CDF Φ⁻¹(p) for p in (0, 1).
// Accuracy near machine precision after one Halley refinement.
double StandardNormalQuantile(double p);

}  // namespace mdrr::stats

#endif  // MDRR_STATS_SPECIAL_FUNCTIONS_H_
