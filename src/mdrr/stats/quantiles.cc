#include "mdrr/stats/quantiles.h"

#include <cmath>

#include "mdrr/common/check.h"
#include "mdrr/stats/special_functions.h"

namespace mdrr::stats {

double ChiSquaredCdf(double dof, double x) {
  MDRR_CHECK_GT(dof, 0.0);
  MDRR_CHECK_GE(x, 0.0);
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

double ChiSquaredQuantile(double dof, double p) {
  MDRR_CHECK_GT(dof, 0.0);
  MDRR_CHECK_GT(p, 0.0);
  MDRR_CHECK_LT(p, 1.0);

  // For one degree of freedom the quantile has a closed form through the
  // normal quantile: X = Z^2 with CDF(x) = 2 Phi(sqrt(x)) - 1.
  if (dof == 1.0) {
    double z = StandardNormalQuantile((1.0 + p) / 2.0);
    return z * z;
  }

  // Wilson-Hilferty approximation as the Newton starting point.
  double z = StandardNormalQuantile(p);
  double t = 1.0 - 2.0 / (9.0 * dof) + z * std::sqrt(2.0 / (9.0 * dof));
  double x = dof * t * t * t;
  if (x <= 0.0) x = 0.5;

  for (int iter = 0; iter < 100; ++iter) {
    double cdf = ChiSquaredCdf(dof, x);
    // Chi-squared pdf at x.
    double log_pdf = (dof / 2.0 - 1.0) * std::log(x) - x / 2.0 -
                     (dof / 2.0) * std::log(2.0) - std::lgamma(dof / 2.0);
    double pdf = std::exp(log_pdf);
    if (pdf <= 0.0) break;
    double step = (cdf - p) / pdf;
    double next = x - step;
    if (next <= 0.0) next = x / 2.0;
    if (std::fabs(next - x) < 1e-12 * (1.0 + std::fabs(x))) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double ChiSquaredUpperPercentile(double dof, double upper_tail_prob) {
  MDRR_CHECK_GT(upper_tail_prob, 0.0);
  MDRR_CHECK_LT(upper_tail_prob, 1.0);
  return ChiSquaredQuantile(dof, 1.0 - upper_tail_prob);
}

}  // namespace mdrr::stats
