#include "mdrr/stats/special_functions.h"

#include <cmath>
#include <limits>

#include "mdrr/common/check.h"

namespace mdrr::stats {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-16;

// Series expansion of P(a, x); converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x); converges fast for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  MDRR_CHECK_GT(a, 0.0);
  MDRR_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  MDRR_CHECK_GT(a, 0.0);
  MDRR_CHECK_GE(x, 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double StandardNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double StandardNormalQuantile(double p) {
  MDRR_CHECK_GT(p, 0.0);
  MDRR_CHECK_LT(p, 1.0);

  // Acklam's rational approximation (relative error < 1.15e-9).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};

  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step pushes accuracy to ~machine precision.
  double e = StandardNormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace mdrr::stats
