// The multinomial estimation-error theory of Section 2.3 and Section 3.3:
// simultaneous confidence half-widths for the randomized-response
// distribution estimate λ̂ (Definitions 1-2, Expressions (5) and (6)),
// built on B = the (alpha / r) upper percentile of chi-squared with 1 dof
// (Thompson 1987). Figure 1 plots SqrtB; Section 3.3 compares the
// even-frequency analytic bounds of RR-Independent and RR-Joint.

#ifndef MDRR_STATS_ERROR_BOUNDS_H_
#define MDRR_STATS_ERROR_BOUNDS_H_

#include <cstdint>
#include <vector>

namespace mdrr::stats {

// B: the (alpha / num_categories) upper percentile of chi-squared with one
// degree of freedom. `num_categories` may be fractional only in tests; the
// paper always uses an integer r >= 2.
double ThompsonB(double alpha, double num_categories);

// sqrt(B) -- the y-axis of Figure 1.
double SqrtB(double alpha, double num_categories);

// Expression (5): e_abs = max_u sqrt(B * λ_u (1 - λ_u) / n).
double AbsoluteErrorBound(const std::vector<double>& lambda, int64_t n,
                          double alpha);

// Expression (6): e_rel = max_u sqrt(B * (1 - λ_u) / λ_u / n).
// Categories with λ_u = 0 are skipped (their relative error is undefined);
// returns +inf if every category has λ_u = 0.
double RelativeErrorBound(const std::vector<double>& lambda, int64_t n,
                          double alpha);

// Section 3.3 analytic best case (even frequencies λ_u = 1/r):
// e_rel = sqrt(B * (r - 1) / n) with B at upper tail alpha / r.
double EvenFrequencyRelativeError(double num_categories, int64_t n,
                                  double alpha);

// Section 3.3 applied to RR-Independent: max over attributes of the
// even-frequency bound of each attribute alone.
double RrIndependentEvenRelativeError(const std::vector<int64_t>& cardinalities,
                                      int64_t n, double alpha);

// Section 3.3 applied to RR-Joint: even-frequency bound on the Cartesian
// product of all attributes.
double RrJointEvenRelativeError(const std::vector<int64_t>& cardinalities,
                                int64_t n, double alpha);

}  // namespace mdrr::stats

#endif  // MDRR_STATS_ERROR_BOUNDS_H_
