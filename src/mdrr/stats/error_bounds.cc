#include "mdrr/stats/error_bounds.h"

#include <cmath>
#include <limits>

#include "mdrr/common/check.h"
#include "mdrr/stats/quantiles.h"

namespace mdrr::stats {

double ThompsonB(double alpha, double num_categories) {
  MDRR_CHECK_GT(alpha, 0.0);
  MDRR_CHECK_LT(alpha, 1.0);
  MDRR_CHECK_GE(num_categories, 1.0);
  return ChiSquaredUpperPercentile(1.0, alpha / num_categories);
}

double SqrtB(double alpha, double num_categories) {
  return std::sqrt(ThompsonB(alpha, num_categories));
}

double AbsoluteErrorBound(const std::vector<double>& lambda, int64_t n,
                          double alpha) {
  MDRR_CHECK(!lambda.empty());
  MDRR_CHECK_GT(n, 0);
  double b = ThompsonB(alpha, static_cast<double>(lambda.size()));
  double worst = 0.0;
  for (double l : lambda) {
    MDRR_CHECK_GE(l, 0.0);
    MDRR_CHECK_LE(l, 1.0);
    worst = std::max(worst, std::sqrt(b * l * (1.0 - l) /
                                      static_cast<double>(n)));
  }
  return worst;
}

double RelativeErrorBound(const std::vector<double>& lambda, int64_t n,
                          double alpha) {
  MDRR_CHECK(!lambda.empty());
  MDRR_CHECK_GT(n, 0);
  double b = ThompsonB(alpha, static_cast<double>(lambda.size()));
  double worst = -1.0;
  for (double l : lambda) {
    if (l <= 0.0) continue;
    worst = std::max(worst,
                     std::sqrt(b * (1.0 - l) / l / static_cast<double>(n)));
  }
  if (worst < 0.0) return std::numeric_limits<double>::infinity();
  return worst;
}

double EvenFrequencyRelativeError(double num_categories, int64_t n,
                                  double alpha) {
  MDRR_CHECK_GE(num_categories, 1.0);
  MDRR_CHECK_GT(n, 0);
  double b = ThompsonB(alpha, num_categories);
  return std::sqrt(b * (num_categories - 1.0) / static_cast<double>(n));
}

double RrIndependentEvenRelativeError(const std::vector<int64_t>& cardinalities,
                                      int64_t n, double alpha) {
  MDRR_CHECK(!cardinalities.empty());
  double worst = 0.0;
  for (int64_t r : cardinalities) {
    MDRR_CHECK_GE(r, 1);
    worst = std::max(
        worst, EvenFrequencyRelativeError(static_cast<double>(r), n, alpha));
  }
  return worst;
}

double RrJointEvenRelativeError(const std::vector<int64_t>& cardinalities,
                                int64_t n, double alpha) {
  MDRR_CHECK(!cardinalities.empty());
  double product = 1.0;
  for (int64_t r : cardinalities) {
    MDRR_CHECK_GE(r, 1);
    product *= static_cast<double>(r);
  }
  return EvenFrequencyRelativeError(product, n, alpha);
}

}  // namespace mdrr::stats
