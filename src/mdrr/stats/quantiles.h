// Chi-squared CDF and quantiles. The paper's error bounds (Defs. 1-2) need
// the "alpha/r upper percentile of the chi-squared distribution with 1
// degree of freedom" -- ChiSquaredUpperPercentile with dof = 1.

#ifndef MDRR_STATS_QUANTILES_H_
#define MDRR_STATS_QUANTILES_H_

namespace mdrr::stats {

// P[X <= x] for X ~ chi-squared with `dof` degrees of freedom.
// Preconditions: dof > 0, x >= 0.
double ChiSquaredCdf(double dof, double x);

// x such that P[X <= x] = p (p in (0,1)). Newton iteration with a
// Wilson-Hilferty starting point; accuracy ~1e-12.
double ChiSquaredQuantile(double dof, double p);

// x such that P[X > x] = upper_tail_prob. This is the paper's "upper
// percentile" B for upper_tail_prob = alpha / r.
double ChiSquaredUpperPercentile(double dof, double upper_tail_prob);

}  // namespace mdrr::stats

#endif  // MDRR_STATS_QUANTILES_H_
