#include "mdrr/stats/frequency.h"

#include <algorithm>
#include <cmath>

#include "mdrr/common/check.h"

namespace mdrr::stats {

FrequencyTable::FrequencyTable(const std::vector<uint32_t>& codes,
                               size_t num_categories)
    : counts_(num_categories, 0), total_(0) {
  for (uint32_t code : codes) {
    MDRR_CHECK_LT(code, num_categories);
    ++counts_[code];
    ++total_;
  }
}

FrequencyTable::FrequencyTable(std::vector<int64_t> counts)
    : counts_(std::move(counts)), total_(0) {
  for (int64_t c : counts_) {
    MDRR_CHECK_GE(c, 0);
    total_ += c;
  }
}

void FrequencyTable::Absorb(const FrequencyTable& other) {
  MDRR_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::vector<double> FrequencyTable::Proportions() const {
  std::vector<double> proportions(counts_.size(), 0.0);
  if (total_ == 0) return proportions;
  for (size_t i = 0; i < counts_.size(); ++i) {
    proportions[i] =
        static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return proportions;
}

ContingencyTable::ContingencyTable(const std::vector<uint32_t>& codes_a,
                                   size_t cardinality_a,
                                   const std::vector<uint32_t>& codes_b,
                                   size_t cardinality_b)
    : rows_(cardinality_a),
      cols_(cardinality_b),
      n_(static_cast<double>(codes_a.size())),
      cells_(cardinality_a * cardinality_b, 0.0) {
  MDRR_CHECK_EQ(codes_a.size(), codes_b.size());
  for (size_t i = 0; i < codes_a.size(); ++i) {
    MDRR_CHECK_LT(codes_a[i], rows_);
    MDRR_CHECK_LT(codes_b[i], cols_);
    cells_[codes_a[i] * cols_ + codes_b[i]] += 1.0;
  }
}

ContingencyTable::ContingencyTable(std::vector<double> joint_weights,
                                   size_t cardinality_a, size_t cardinality_b,
                                   double n)
    : rows_(cardinality_a),
      cols_(cardinality_b),
      n_(n),
      cells_(std::move(joint_weights)) {
  MDRR_CHECK_EQ(cells_.size(), rows_ * cols_);
  MDRR_CHECK_GT(n_, 0.0);
  // Normalize weights so that cell mass sums to n (accepts either
  // probabilities or counts as input).
  double total = 0.0;
  for (double w : cells_) {
    MDRR_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total > 0.0) {
    double scale = n_ / total;
    for (double& w : cells_) w *= scale;
  }
}

double ContingencyTable::Cell(size_t a, size_t b) const {
  MDRR_CHECK_LT(a, rows_);
  MDRR_CHECK_LT(b, cols_);
  return cells_[a * cols_ + b];
}

double ContingencyTable::RowMarginal(size_t a) const {
  MDRR_CHECK_LT(a, rows_);
  double sum = 0.0;
  for (size_t b = 0; b < cols_; ++b) sum += cells_[a * cols_ + b];
  return sum;
}

double ContingencyTable::ColMarginal(size_t b) const {
  MDRR_CHECK_LT(b, cols_);
  double sum = 0.0;
  for (size_t a = 0; a < rows_; ++a) sum += cells_[a * cols_ + b];
  return sum;
}

double ContingencyTable::ChiSquaredStatistic() const {
  std::vector<double> row_marginals(rows_);
  std::vector<double> col_marginals(cols_);
  for (size_t a = 0; a < rows_; ++a) row_marginals[a] = RowMarginal(a);
  for (size_t b = 0; b < cols_; ++b) col_marginals[b] = ColMarginal(b);

  double chi2 = 0.0;
  for (size_t a = 0; a < rows_; ++a) {
    for (size_t b = 0; b < cols_; ++b) {
      double expected = row_marginals[a] * col_marginals[b] / n_;
      if (expected <= 0.0) continue;
      double observed = cells_[a * cols_ + b];
      double diff = observed - expected;
      chi2 += diff * diff / expected;
    }
  }
  return chi2;
}

double ContingencyTable::CramersV() const {
  size_t min_dim = std::min(rows_, cols_);
  if (min_dim < 2) return 0.0;
  double chi2 = ChiSquaredStatistic();
  double v2 = (chi2 / n_) / static_cast<double>(min_dim - 1);
  // Guard against floating-point drift slightly above 1.
  return std::sqrt(std::min(1.0, std::max(0.0, v2)));
}

}  // namespace mdrr::stats
