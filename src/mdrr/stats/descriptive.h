// Descriptive statistics over double sequences: mean, variance, median,
// covariance and Pearson correlation (the paper's ordinal dependence
// measure, Expression (8)).

#ifndef MDRR_STATS_DESCRIPTIVE_H_
#define MDRR_STATS_DESCRIPTIVE_H_

#include <vector>

namespace mdrr::stats {

// Preconditions for all functions: nonempty input; paired inputs must have
// equal lengths.

double Mean(const std::vector<double>& values);

// Population variance (divides by n); matches the empirical-distribution
// view the paper takes in Section 4.1.
double Variance(const std::vector<double>& values);

// Population covariance (divides by n).
double Covariance(const std::vector<double>& x, const std::vector<double>& y);

// Pearson correlation coefficient; returns 0 when either input is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// Median (averages the two central order statistics for even n).
double Median(std::vector<double> values);

// q-quantile for q in [0, 1] by linear interpolation of order statistics.
double Quantile(std::vector<double> values, double q);

}  // namespace mdrr::stats

#endif  // MDRR_STATS_DESCRIPTIVE_H_
