#include "mdrr/stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "mdrr/common/check.h"

namespace mdrr::stats {

double Mean(const std::vector<double>& values) {
  MDRR_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  MDRR_CHECK(!values.empty());
  double mean = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(values.size());
}

double Covariance(const std::vector<double>& x, const std::vector<double>& y) {
  MDRR_CHECK(!x.empty());
  MDRR_CHECK_EQ(x.size(), y.size());
  double mean_x = Mean(x);
  double mean_y = Mean(y);
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum += (x[i] - mean_x) * (y[i] - mean_y);
  }
  return sum / static_cast<double>(x.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  double var_x = Variance(x);
  double var_y = Variance(y);
  if (var_x <= 0.0 || var_y <= 0.0) return 0.0;
  return Covariance(x, y) / std::sqrt(var_x * var_y);
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

double Quantile(std::vector<double> values, double q) {
  MDRR_CHECK(!values.empty());
  MDRR_CHECK_GE(q, 0.0);
  MDRR_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double position = q * static_cast<double>(values.size() - 1);
  size_t lower = static_cast<size_t>(position);
  size_t upper = std::min(lower + 1, values.size() - 1);
  double fraction = position - static_cast<double>(lower);
  return values[lower] * (1.0 - fraction) + values[upper] * fraction;
}

}  // namespace mdrr::stats
