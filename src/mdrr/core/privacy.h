// Differential-privacy accounting for randomized response (Sections 2.2,
// 4 and 6.3): per-matrix epsilon (Expression (4)), the paper's calibration
// formulas, and a sequential-composition accountant.

#ifndef MDRR_CORE_PRIVACY_H_
#define MDRR_CORE_PRIVACY_H_

#include <string>
#include <vector>

#include "mdrr/core/rr_matrix.h"

namespace mdrr {

// Exact epsilon of the KeepUniform(r, p) mechanism via Expression (4):
// ln(1 + p r / (1 - p)). +inf when p = 1.
double KeepUniformEpsilon(size_t r, double keep_probability);

// The paper's Section 6.3.1 expression eps_A = |ln(p |A| / (1 - p))|,
// which approximates the diagonal p + (1-p)/|A| by p. Kept for exact
// reproduction of the paper's calibration; see DESIGN.md.
double PaperKeepUniformEpsilon(size_t r, double keep_probability);

// Sequential composition (Section 4): total epsilon of a sequence of
// releases is the sum of their epsilons.
double SequentialComposition(const std::vector<double>& epsilons);

// Records named epsilon expenditures and reports the sequential-
// composition total. Releases marked `parallel` share the maximum rather
// than adding (the paper's Section 4.3 argument: unlinkable releases of
// the same attribute compose in parallel).
class PrivacyAccountant {
 public:
  struct Release {
    std::string label;
    double epsilon;
    bool parallel;  // Member of the parallel-composition pool.
  };

  // Sequentially-composed release.
  void Spend(const std::string& label, double epsilon);

  // Release in the parallel pool (counted once at the pool maximum).
  void SpendParallel(const std::string& label, double epsilon);

  // Sum of sequential releases + max of the parallel pool.
  double TotalEpsilon() const;

  const std::vector<Release>& releases() const { return releases_; }

  // Multi-line human-readable ledger.
  std::string Report() const;

 private:
  std::vector<Release> releases_;
};

}  // namespace mdrr

#endif  // MDRR_CORE_PRIVACY_H_
