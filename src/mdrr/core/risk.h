// Record-level disclosure-risk metrics for randomized response.
//
// Section 2.2's "intrinsic guarantee" is that an intruder seeing a
// randomized response is uncertain about the true one. These helpers
// quantify that uncertainty through the Bayes posterior
//   Pr(X = u | Y = v) = p_uv pi_u / sum_w p_wv pi_w,
// the attacker's best-guess confidence per observed value, and the
// expected confidence over the randomized data distribution. They
// complement the worst-case Expression (4) epsilon with average-case
// numbers a data protection officer can read.

#ifndef MDRR_CORE_RISK_H_
#define MDRR_CORE_RISK_H_

#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr {

// Posterior matrix: entry (u, v) = Pr(X = u | Y = v) under `prior` on X.
// Columns over v with zero marginal probability are left all-zero.
// Fails on size mismatch or if the prior is not a distribution.
StatusOr<linalg::Matrix> PosteriorMatrix(const RrMatrix& p,
                                         const std::vector<double>& prior);

// Attacker's best-guess confidence for each observed value:
// risk[v] = max_u Pr(X = u | Y = v).
StatusOr<std::vector<double>> BestGuessConfidence(
    const RrMatrix& p, const std::vector<double>& prior);

// Expected best-guess confidence under the randomized-data distribution
// lambda = P^T prior: the probability that a Bayes-optimal attacker who
// always guesses the posterior mode is right about a random respondent.
StatusOr<double> ExpectedDisclosureRisk(const RrMatrix& p,
                                        const std::vector<double>& prior);

// Baseline an attacker achieves without seeing any response: max_u pi_u.
double PriorBaselineRisk(const std::vector<double>& prior);

}  // namespace mdrr

#endif  // MDRR_CORE_RISK_H_
