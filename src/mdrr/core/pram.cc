#include "mdrr/core/pram.h"

#include "mdrr/core/estimator.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr {

StatusOr<PramResult> ApplyPram(const Dataset& collected,
                               double keep_probability, Rng& rng) {
  if (collected.num_rows() == 0) {
    return Status::InvalidArgument("cannot apply PRAM to empty data");
  }
  PramResult result;
  result.randomized = collected;
  const size_t m = collected.num_attributes();
  result.estimated.resize(m);
  result.epsilons.resize(m);
  for (size_t j = 0; j < m; ++j) {
    const size_t r = collected.attribute(j).cardinality();
    RrMatrix matrix = RrMatrix::KeepUniform(r, keep_probability);
    // Randomize straight into the copied column: the output codes are
    // < r by construction, so the column invariant holds and the
    // per-attribute pass allocates nothing.
    matrix.RandomizeColumnInto(collected.column(j), rng,
                               result.randomized.MutableColumn(j));
    std::vector<double> lambda =
        EmpiricalDistribution(result.randomized.column(j), r);
    MDRR_ASSIGN_OR_RETURN(result.estimated[j],
                          EstimateProjectedDistribution(matrix, lambda));
    result.epsilons[j] = matrix.Epsilon();
  }
  return result;
}

StatusOr<RrMatrix> InvariantPramMatrix(const RrMatrix& base,
                                       const std::vector<double>& observed) {
  const size_t r = base.size();
  if (observed.size() != r) {
    return Status::InvalidArgument("distribution size mismatch");
  }
  // Invariant PRAM (van den Hout / the two-stage construction): let Q be
  // the Bayes reverse channel of `base` under prior pi = observed,
  //   Q_uv = pi_v P_vu / (P^T pi)_u,
  // which satisfies Q^T (P^T pi) = pi. The invariant matrix is R = P Q:
  //   R^T pi = Q^T P^T pi = pi,
  // so publishing data randomized by R preserves the collected marginal
  // in expectation. Reverse rows with zero implied mass fall back to the
  // identity row (those categories are never observed after P).
  std::vector<double> implied(r, 0.0);
  for (size_t u = 0; u < r; ++u) {
    for (size_t v = 0; v < r; ++v) {
      implied[u] += base.Prob(v, u) * observed[v];
    }
  }
  linalg::Matrix reverse(r, r, 0.0);
  for (size_t u = 0; u < r; ++u) {
    if (implied[u] <= 0.0) {
      reverse(u, u) = 1.0;
      continue;
    }
    for (size_t v = 0; v < r; ++v) {
      reverse(u, v) = observed[v] * base.Prob(v, u) / implied[u];
    }
  }
  return RrMatrix::FromDense(base.ToDense().MatMul(reverse));
}

}  // namespace mdrr
