#include "mdrr/core/joint_estimate.h"

#include <algorithm>
#include <unordered_map>

#include "mdrr/common/check.h"

namespace mdrr {

namespace {

// Sums, per composite code of the queried attributes, the given per-record
// mass (1.0 for counting, w_i for weighted estimates), then adds up the
// mass of the query's tuples.
double AccumulateByComposite(const Dataset& dataset, const CountQuery& query,
                             const std::vector<double>* weights,
                             double scale) {
  Domain domain = Domain::ForAttributes(dataset, query.attributes);
  std::vector<uint32_t> composite =
      domain.ComposeColumns(dataset, query.attributes);
  std::vector<double> mass(domain.size(), 0.0);
  if (weights == nullptr) {
    for (uint32_t code : composite) mass[code] += 1.0;
  } else {
    MDRR_CHECK_EQ(weights->size(), composite.size());
    for (size_t i = 0; i < composite.size(); ++i) {
      mass[composite[i]] += (*weights)[i];
    }
  }
  double total = 0.0;
  for (const std::vector<uint32_t>& tuple : query.tuples) {
    total += mass[domain.Encode(tuple)];
  }
  return total * scale;
}

}  // namespace

EmpiricalCounts::EmpiricalCounts(Dataset dataset)
    : dataset_(std::move(dataset)) {}

double EmpiricalCounts::EstimateCount(const CountQuery& query) const {
  return AccumulateByComposite(dataset_, query, /*weights=*/nullptr,
                               /*scale=*/1.0);
}

IndependentMarginalsEstimate::IndependentMarginalsEstimate(
    std::vector<std::vector<double>> marginals, double n)
    : marginals_(std::move(marginals)), n_(n) {
  MDRR_CHECK_GT(n_, 0.0);
}

double IndependentMarginalsEstimate::EstimateCount(
    const CountQuery& query) const {
  double frequency = 0.0;
  for (const std::vector<uint32_t>& tuple : query.tuples) {
    MDRR_CHECK_EQ(tuple.size(), query.attributes.size());
    double product = 1.0;
    for (size_t k = 0; k < tuple.size(); ++k) {
      size_t attr = query.attributes[k];
      MDRR_CHECK_LT(attr, marginals_.size());
      MDRR_CHECK_LT(tuple[k], marginals_[attr].size());
      product *= marginals_[attr][tuple[k]];
    }
    frequency += product;
  }
  return frequency * n_;
}

ClusterFactorizationEstimate::ClusterFactorizationEstimate(
    AttributeClustering clusters, std::vector<Domain> cluster_domains,
    std::vector<std::vector<double>> cluster_joints, double n)
    : clusters_(std::move(clusters)),
      cluster_domains_(std::move(cluster_domains)),
      cluster_joints_(std::move(cluster_joints)),
      n_(n) {
  MDRR_CHECK_EQ(clusters_.size(), cluster_domains_.size());
  MDRR_CHECK_EQ(clusters_.size(), cluster_joints_.size());
  MDRR_CHECK_GT(n_, 0.0);
}

double ClusterFactorizationEstimate::EstimateCount(
    const CountQuery& query) const {
  // Locate each queried attribute: (cluster index, position in cluster).
  struct Location {
    size_t cluster;
    size_t position;
  };
  std::vector<Location> locations(query.attributes.size());
  for (size_t k = 0; k < query.attributes.size(); ++k) {
    size_t attr = query.attributes[k];
    bool found = false;
    for (size_t c = 0; c < clusters_.size() && !found; ++c) {
      for (size_t p = 0; p < clusters_[c].size(); ++p) {
        if (clusters_[c][p] == attr) {
          locations[k] = Location{c, p};
          found = true;
          break;
        }
      }
    }
    MDRR_CHECK(found);
  }

  // Group queried positions per involved cluster, in query order.
  std::vector<size_t> involved;  // Cluster indices, deduplicated.
  std::vector<std::vector<size_t>> positions_per_cluster;   // In the cluster.
  std::vector<std::vector<size_t>> query_slots_per_cluster; // In the tuple.
  for (size_t k = 0; k < locations.size(); ++k) {
    size_t c = locations[k].cluster;
    auto it = std::find(involved.begin(), involved.end(), c);
    size_t slot;
    if (it == involved.end()) {
      involved.push_back(c);
      positions_per_cluster.emplace_back();
      query_slots_per_cluster.emplace_back();
      slot = involved.size() - 1;
    } else {
      slot = static_cast<size_t>(it - involved.begin());
    }
    positions_per_cluster[slot].push_back(locations[k].position);
    query_slots_per_cluster[slot].push_back(k);
  }

  // Marginalize each involved cluster joint onto its queried positions
  // once; per-tuple evaluation is then a product of table lookups.
  std::vector<std::vector<double>> sub_joints(involved.size());
  std::vector<Domain> sub_domains;
  sub_domains.reserve(involved.size());
  for (size_t s = 0; s < involved.size(); ++s) {
    size_t c = involved[s];
    sub_joints[s] = cluster_domains_[c].MarginalizeToSubset(
        cluster_joints_[c], positions_per_cluster[s]);
    std::vector<size_t> sub_cards;
    for (size_t p : positions_per_cluster[s]) {
      sub_cards.push_back(cluster_domains_[c].cardinalities()[p]);
    }
    sub_domains.push_back(Domain(sub_cards));
  }

  double frequency = 0.0;
  std::vector<uint32_t> sub_tuple;
  for (const std::vector<uint32_t>& tuple : query.tuples) {
    MDRR_CHECK_EQ(tuple.size(), query.attributes.size());
    double product = 1.0;
    for (size_t s = 0; s < involved.size(); ++s) {
      sub_tuple.clear();
      for (size_t slot : query_slots_per_cluster[s]) {
        sub_tuple.push_back(tuple[slot]);
      }
      product *= sub_joints[s][sub_domains[s].Encode(sub_tuple)];
    }
    frequency += product;
  }
  return frequency * n_;
}

WeightedRecordsEstimate::WeightedRecordsEstimate(Dataset randomized,
                                                 std::vector<double> weights)
    : randomized_(std::move(randomized)), weights_(std::move(weights)) {
  MDRR_CHECK_EQ(weights_.size(), randomized_.num_rows());
}

double WeightedRecordsEstimate::EstimateCount(const CountQuery& query) const {
  return AccumulateByComposite(randomized_, query, &weights_,
                               static_cast<double>(randomized_.num_rows()));
}

}  // namespace mdrr
