// Randomization matrices for randomized response (Section 2.1).
//
// An RrMatrix is an r x r row-stochastic matrix P with
// p_uv = Pr(Y = v | X = u). Every matrix used in the paper has the
// "uniform mixture" shape p_u I + p_d (J - I) (Section 2.3), for which
// randomization, inversion and eigenvalues all have O(1)/O(r) closed
// forms; a dense fallback supports arbitrary designs.

#ifndef MDRR_CORE_RR_MATRIX_H_
#define MDRR_CORE_RR_MATRIX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mdrr/common/check.h"
#include "mdrr/common/status_or.h"
#include "mdrr/linalg/lu.h"
#include "mdrr/linalg/matrix.h"
#include "mdrr/linalg/structured.h"
#include "mdrr/rng/alias_sampler.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

class RrMatrix {
 public:
  // --- Structured constructors (uniform-mixture shape) ---

  // "Keep with probability p, otherwise report a uniform draw from the
  // whole domain": diagonal p + (1-p)/r, off-diagonal (1-p)/r. This is the
  // randomization of Proposition 1 / Corollary 1 and the per-attribute
  // design of Section 6.3.1.
  static RrMatrix KeepUniform(size_t r, double keep_probability);

  // Classic generalized-Warner design: `diagonal_p` on the diagonal and
  // (1 - diagonal_p)/(r - 1) off it.
  static RrMatrix FlatOffDiagonal(size_t r, double diagonal_p);

  // The differential-privacy-optimal design at level `epsilon` (Sections
  // 2.2/6.3.2; k-ary randomized response): diagonal
  // p = 1 / (1 + (r - 1) e^{-eps}), off-diagonal p e^{-eps}.
  static RrMatrix OptimalForEpsilon(size_t r, double epsilon);

  // Degenerate designs, useful as baselines and in tests.
  static RrMatrix Identity(size_t r);            // No randomization.
  static RrMatrix UniformReplacement(size_t r);  // Output independent of X.

  // Distance-sensitive design for ordinal attributes (the paper's
  // Section 8 future-work direction): a geometric/staircase mechanism
  // with p_uv proportional to exp(-epsilon |u - v| / (r - 1)), rows
  // normalized. Its Expression (4) epsilon is exactly `epsilon`, but the
  // protection is *graded by distance* (metric-privacy style): adjacent
  // categories are indistinguishable up to e^{epsilon/(r-1)} while only
  // the extreme pair reaches e^{epsilon}. At equal adjacent-category
  // protection this design reports values much closer to the truth than
  // KeepUniform; at equal worst-case epsilon, KeepUniform keeps the exact
  // value more often. Pick by the privacy contract you need.
  static RrMatrix GeometricOrdinal(size_t r, double epsilon);

  // --- Dense constructor ---

  // Arbitrary design. Fails unless `p` is square, row-stochastic and
  // nonnegative (tolerance 1e-9).
  static StatusOr<RrMatrix> FromDense(linalg::Matrix p);

  // Rebuilds a structured matrix from its three parameters verbatim --
  // the wire codec (net/wire.h) ships {size, diagonal, off_diagonal}
  // instead of a densified copy so a decoded matrix draws bit-identically
  // to the original (ToDense + FromDense would re-detect, but this skips
  // the float round trip entirely). Fails unless the mixture is a valid
  // row-stochastic design: size >= 1, entries finite, in [0, 1], and
  // diagonal + (size - 1) * off_diagonal within 1e-9 of 1.
  static StatusOr<RrMatrix> FromStructured(linalg::UniformMixture mixture);

  size_t size() const { return size_; }
  bool is_structured() const { return structured_.has_value(); }

  // The structured parameters when is_structured(), nullopt otherwise.
  // Paired with FromStructured for exact matrix transport.
  const std::optional<linalg::UniformMixture>& structured() const {
    return structured_;
  }

  // p_uv = Pr(Y = v | X = u).
  double Prob(size_t u, size_t v) const;

  // Dense materialization (tests, generic code paths).
  linalg::Matrix ToDense() const;

  // Draws Y given X = u. O(1) for structured matrices (one Bernoulli plus
  // at most one uniform draw, against the mixing weight precomputed at
  // construction), O(1) via alias tables for dense ones. Inline: this is
  // the innermost operation of every publication sweep. Precondition
  // u < size() is checked in debug builds only -- callers own the code
  // range (protocol code ranges come from Domain/Dataset invariants).
  uint32_t Randomize(uint32_t u, Rng& rng) const {
    MDRR_DCHECK_LT(u, size_);
    if (structured_) {
      // Row = (1 - alpha) delta_u + alpha Uniform(r).
      if (rng.Bernoulli(structured_alpha_)) {
        return static_cast<uint32_t>(rng.UniformInt(size_));
      }
      return u;
    }
    return static_cast<uint32_t>(row_samplers_[u].Sample(rng));
  }

  // Vectorized Randomize over a whole column of codes.
  std::vector<uint32_t> RandomizeColumn(const std::vector<uint32_t>& codes,
                                        Rng& rng) const;

  // RandomizeColumn into a caller-owned buffer (resized to codes.size()),
  // so repeated per-round publications reuse one allocation instead of
  // minting a fresh column each pass. Draw-for-draw identical to
  // RandomizeColumn.
  void RandomizeColumnInto(const std::vector<uint32_t>& codes, Rng& rng,
                           std::vector<uint32_t>& out) const;

  // Randomizes codes[begin, end) into out[begin, end) and, if `counts` is
  // non-null, accumulates the frequency of each output category into
  // counts[0, size()). The range form lets shard workers fill disjoint
  // slices of one shared output column without synchronization
  // (BatchPerturbationEngine, protocol/PartyBlock). Preconditions:
  // end <= codes.size(), `out` has room for index end - 1.
  //
  // Inline, with the structured design split into three branch-predictable
  // loops keyed off the mixing weight alpha = r * off_diagonal: alpha <= 0
  // copies (an identity design draws nothing), alpha >= 1 replaces every
  // code with a uniform draw, and the mixed case decides per element with
  // one canonical double against the precomputed alpha. The draw sequence
  // is exactly the per-element Randomize loop's. The range bound is
  // checked per call; the per-element precondition codes[i] < size() is
  // debug-only, like Randomize's.
  void RandomizeRangeInto(const std::vector<uint32_t>& codes, size_t begin,
                          size_t end, Rng& rng, uint32_t* out,
                          int64_t* counts) const {
    MDRR_CHECK_LE(end, codes.size());
    if (!structured_) {
      for (size_t i = begin; i < end; ++i) {
        uint32_t y =
            static_cast<uint32_t>(row_samplers_[codes[i]].Sample(rng));
        out[i] = y;
        if (counts != nullptr) ++counts[y];
      }
      return;
    }
    const double alpha = structured_alpha_;
    if (alpha <= 0.0) {  // Identity design: Bernoulli(0) consumes no draw.
      for (size_t i = begin; i < end; ++i) {
        uint32_t y = codes[i];
        MDRR_DCHECK_LT(y, size_);
        out[i] = y;
        if (counts != nullptr) ++counts[y];
      }
      return;
    }
    if (alpha >= 1.0) {  // Uniform replacement: Bernoulli(1), no draw.
      for (size_t i = begin; i < end; ++i) {
        uint32_t y = static_cast<uint32_t>(rng.UniformInt(size_));
        out[i] = y;
        if (counts != nullptr) ++counts[y];
      }
      return;
    }
    for (size_t i = begin; i < end; ++i) {
      MDRR_DCHECK_LT(codes[i], size_);
      uint32_t y = rng.UniformDouble() < alpha
                       ? static_cast<uint32_t>(rng.UniformInt(size_))
                       : codes[i];
      out[i] = y;
      if (counts != nullptr) ++counts[y];
    }
  }

  // Counter-policy (philox) analogue of RandomizeRangeInto: randomizes
  // codes[begin, end) into out[begin, end) drawing element i's randomness
  // from ITS OWN 128-bit block of stream (seed, stream) -- the element
  // layout of counter_rng.h. Because the draw plan is addressed by
  // element index, never by consumption order, the output is a pure
  // function of (matrix, codes, seed, stream): any [begin, end) tiling of
  // a column -- any shard grain, thread count, or internal chunking --
  // produces bit-identical columns. Draw plan per element (fixed budget,
  // one block each, branches never shift later elements):
  //   structured, alpha in (0, 1):  y = unit < alpha ? bounded(r) : code
  //   structured, alpha >= 1:       y = bounded(r)
  //   structured, alpha <= 0:       y = code   (block never generated)
  //   dense:                        y = row_samplers_[code].SampleFrom
  // This is a DIFFERENT documented transcript from the mt19937 kernels
  // above; the two policies never share streams.
  void RandomizeRangeCounterInto(const std::vector<uint32_t>& codes,
                                 size_t begin, size_t end, uint64_t seed,
                                 uint64_t stream, uint32_t* out,
                                 int64_t* counts) const;

  // Single-element counter draw: exactly what RandomizeRangeCounterInto
  // computes for `element`, exposed for per-report paths (streaming
  // ingest randomizes one record's attributes without buffering a
  // column). Precondition u < size() is debug-only, like Randomize's.
  uint32_t RandomizeCounter(uint32_t u, uint64_t seed, uint64_t stream,
                            uint64_t element) const {
    MDRR_DCHECK_LT(u, size_);
    if (structured_) {
      const double alpha = structured_alpha_;
      if (alpha <= 0.0) return u;
      const PhiloxBlock block = PhiloxElementBlock(seed, stream, element);
      const uint64_t raw =
          (static_cast<uint64_t>(block.w[3]) << 32) | block.w[2];
      const uint32_t replacement =
          static_cast<uint32_t>(PhiloxBoundedFromRaw(raw, size_));
      if (alpha >= 1.0) return replacement;
      const double unit = PhiloxUnitFromU64(
          (static_cast<uint64_t>(block.w[1]) << 32) | block.w[0]);
      return unit < alpha ? replacement : u;
    }
    const PhiloxBlock block = PhiloxElementBlock(seed, stream, element);
    return row_samplers_[u].SampleFrom(
        PhiloxUnitFromU64((static_cast<uint64_t>(block.w[1]) << 32) |
                          block.w[0]),
        (static_cast<uint64_t>(block.w[3]) << 32) | block.w[2]);
  }

  // The differential privacy level of Expression (4):
  // eps = ln max_v (max_u p_uv / min_u p_uv). +inf if any column contains
  // a zero below a positive entry.
  double Epsilon() const;

  // Pmax / Pmin: the eigenvalue-ratio error-propagation bound of
  // Section 2.3. Closed form for structured matrices; dense matrices
  // fall back to the ratio of extreme singular-value estimates obtained
  // by power iteration with a relative-change early exit (capped at 200
  // iterations).
  double ConditionNumber() const;

  // Solves Pᵀ x = b -- the core of the Eq. (2) estimator. O(r) for
  // structured matrices (no factorization, ever); for dense ones the Pᵀ
  // LU factorization is computed lazily on the first solve (blocked,
  // `factor_threads` workers, O(r³); randomize-only matrices never pay
  // it) and every solve afterwards is an O(r²) substitution against the
  // cached factors. The blocked factorization is bit-identical for any
  // thread count, so the shared cache never depends on which caller won
  // the race. Thread-safe; copies share the cache. Fails on singular P.
  StatusOr<std::vector<double>> SolveTranspose(const std::vector<double>& b,
                                               size_t factor_threads = 1) const;

  // Batched Pᵀ x_i = b_i: factors once (dense) or checks singularity once
  // (structured), then runs the independent per-RHS solves in parallel.
  // Bit-identical to looping SolveTranspose, for any `num_threads`
  // (0 = one worker per core). Fails on any size mismatch or singular P.
  StatusOr<std::vector<std::vector<double>>> SolveTransposeMany(
      const std::vector<std::vector<double>>& bs, size_t num_threads) const;

 private:
  RrMatrix(size_t size, linalg::UniformMixture structured);
  RrMatrix(size_t size, linalg::Matrix dense);

  size_t size_;
  // Exactly one of the two representations is active.
  std::optional<linalg::UniformMixture> structured_;
  // Structured representation only: the uniform-mixture weight
  // alpha = size * off_diagonal, hoisted out of the per-element Randomize
  // so hot loops never recompute it.
  double structured_alpha_ = 0.0;
  std::optional<linalg::Matrix> dense_;
  // Alias samplers per row (dense representation only).
  std::vector<AliasSampler> row_samplers_;
  // The same per-row alias tables flattened into one r x r row-major SoA
  // pair (row = input code, stride = size_), built once at construction
  // so the counter-policy dense tiles can gather per-element rows through
  // AliasLookupBlock instead of chasing row_samplers_[code] indirections.
  // Values are byte-for-byte the per-row tables', so routing through the
  // flat lookup is bitwise identical to per-row SampleFrom.
  std::vector<double> dense_thresholds_;
  std::vector<uint32_t> dense_aliases_;
  // Lazily cached LU factors of Pᵀ (dense representation only), built
  // under the cell's once-flag on the first SolveTranspose. The cell is
  // held through a shared_ptr so RrMatrix stays copyable and every copy
  // shares one flag AND one cache; the dense matrix is immutable, so
  // sharing is safe.
  struct TransposeLuCell {
    std::once_flag once;
    StatusOr<linalg::LuDecomposition> factors =
        Status::FailedPrecondition("unfactored");
  };
  // Builds (or reuses) the cached Pᵀ factors. Dense representation only.
  const StatusOr<linalg::LuDecomposition>& TransposeFactors(
      size_t factor_threads) const;

  std::shared_ptr<TransposeLuCell> transpose_lu_;
};

}  // namespace mdrr

#endif  // MDRR_CORE_RR_MATRIX_H_
