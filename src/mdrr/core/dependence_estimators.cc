#include "mdrr/core/dependence_estimators.h"

#include <limits>

#include "mdrr/common/check.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

DependenceEstimate OracleDependences(const Dataset& dataset) {
  DependenceEstimate result;
  result.dependences = DependenceMatrix(dataset);
  result.epsilon = 0.0;
  result.messages = 0;
  return result;
}

DependenceEstimate OracleDependencesSharded(
    const Dataset& dataset, const DependenceShardingOptions& sharding) {
  DependenceEstimate result;
  result.dependences = DependenceMatrixSharded(
      dataset, DependenceMeasure::kPaperAuto, sharding);
  result.epsilon = 0.0;
  result.messages = 0;
  return result;
}

namespace {

// The shared round-1 publication of the Section 4.1 assessment: every
// attribute randomized through KeepUniform(|A|, p) on one sequential
// stream. Returns the randomized data and accumulates epsilon.
Dataset PublishRandomizedRound(const Dataset& dataset,
                               double keep_probability, Rng& rng,
                               double* epsilon) {
  Dataset randomized = dataset;
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    size_t r = dataset.attribute(j).cardinality();
    RrMatrix matrix = RrMatrix::KeepUniform(r, keep_probability);
    // In-place rewrite of the copied column: randomized codes are < r by
    // construction, and no per-attribute column is allocated.
    matrix.RandomizeColumnInto(dataset.column(j), rng,
                               randomized.MutableColumn(j));
    *epsilon += matrix.Epsilon();
  }
  return randomized;
}

}  // namespace

DependenceEstimate RandomizedResponseDependences(const Dataset& dataset,
                                                 double keep_probability,
                                                 uint64_t seed) {
  Rng rng(seed);
  DependenceEstimate result;
  result.epsilon = 0.0;
  Dataset randomized =
      PublishRandomizedRound(dataset, keep_probability, rng, &result.epsilon);
  result.dependences = DependenceMatrix(randomized);
  // Every party ships one randomized record to the aggregating party:
  // n messages of m values each.
  result.messages = static_cast<uint64_t>(dataset.num_rows());
  return result;
}

DependenceEstimate RandomizedResponseDependencesSharded(
    const Dataset& dataset, double keep_probability, uint64_t seed,
    const DependenceShardingOptions& sharding) {
  Rng rng(seed);
  DependenceEstimate result;
  result.epsilon = 0.0;
  Dataset randomized =
      PublishRandomizedRound(dataset, keep_probability, rng, &result.epsilon);
  result.dependences = DependenceMatrixSharded(
      randomized, DependenceMeasure::kPaperAuto, sharding);
  result.messages = static_cast<uint64_t>(dataset.num_rows());
  return result;
}

StatusOr<DependenceEstimate> SecureSumDependences(const Dataset& dataset,
                                                  mpc::SimulationMode mode,
                                                  uint64_t seed) {
  const size_t m = dataset.num_attributes();
  const size_t n = dataset.num_rows();
  if (n == 0) return Status::InvalidArgument("empty dataset");

  mpc::SecureFrequencyOracle oracle(mode, seed);
  linalg::Matrix deps(m, m, 0.0);
  uint64_t messages = 0;
  for (size_t i = 0; i < m; ++i) {
    deps(i, i) = 1.0;
    const Attribute& a = dataset.attribute(i);
    for (size_t j = i + 1; j < m; ++j) {
      const Attribute& b = dataset.attribute(j);
      MDRR_ASSIGN_OR_RETURN(
          std::vector<int64_t> counts,
          oracle.BivariateCounts(dataset.column(i), a.cardinality(),
                                 dataset.column(j), b.cardinality()));
      std::vector<double> joint(counts.begin(), counts.end());
      double d = DependenceFromJoint(joint, a.cardinality(), a.type,
                                     b.cardinality(), b.type,
                                     static_cast<double>(n));
      deps(i, j) = d;
      deps(j, i) = d;
      messages += mpc::SecureFrequencyOracle::BivariateMessageCount(
          a.cardinality(), b.cardinality(), n);
    }
  }
  DependenceEstimate result;
  result.dependences = std::move(deps);
  // Exact values are released: not differentially private.
  result.epsilon = std::numeric_limits<double>::infinity();
  result.messages = messages;
  return result;
}

StatusOr<DependenceEstimate> PairwiseRrDependences(const Dataset& dataset,
                                                   double keep_probability,
                                                   mpc::SimulationMode mode,
                                                   uint64_t seed) {
  const size_t m = dataset.num_attributes();
  const size_t n = dataset.num_rows();
  if (n == 0) return Status::InvalidArgument("empty dataset");

  Rng rng(seed);
  mpc::SecureFrequencyOracle oracle(mode, seed ^ 0x9e3779b97f4a7c15ULL);
  linalg::Matrix deps(m, m, 0.0);
  uint64_t messages = 0;
  double max_pair_epsilon = 0.0;

  std::vector<uint32_t> trivial(n, 0);  // Single-category helper column.
  std::vector<uint32_t> masked;  // Reused across the pair grid.
  for (size_t i = 0; i < m; ++i) {
    deps(i, i) = 1.0;
    const Attribute& a = dataset.attribute(i);
    for (size_t j = i + 1; j < m; ++j) {
      const Attribute& b = dataset.attribute(j);
      // Mask the pair (A_i, A_j) jointly over its product domain.
      Domain pair_domain({a.cardinality(), b.cardinality()});
      std::vector<uint32_t> pair_codes =
          pair_domain.ComposeColumns(dataset, {i, j});
      RrMatrix matrix = RrMatrix::KeepUniform(
          static_cast<size_t>(pair_domain.size()), keep_probability);
      matrix.RandomizeColumnInto(pair_codes, rng, masked);
      max_pair_epsilon = std::max(max_pair_epsilon, matrix.Epsilon());

      // Aggregate the masked pair distribution with the secure sum (one
      // run per composite cell; cardinality_b = 1 reuses the bivariate
      // oracle as a univariate one).
      MDRR_ASSIGN_OR_RETURN(
          std::vector<int64_t> masked_counts,
          oracle.BivariateCounts(masked,
                                 static_cast<size_t>(pair_domain.size()),
                                 trivial, 1));
      messages += mpc::SecureFrequencyOracle::BivariateMessageCount(
          static_cast<size_t>(pair_domain.size()), 1, n);

      // Recover the true bivariate distribution with Eq. (2) + projection.
      std::vector<double> lambda(masked_counts.size());
      for (size_t k = 0; k < masked_counts.size(); ++k) {
        lambda[k] =
            static_cast<double>(masked_counts[k]) / static_cast<double>(n);
      }
      MDRR_ASSIGN_OR_RETURN(std::vector<double> joint,
                            EstimateProjectedDistribution(matrix, lambda));

      double d = DependenceFromJoint(joint, a.cardinality(), a.type,
                                     b.cardinality(), b.type,
                                     static_cast<double>(n));
      deps(i, j) = d;
      deps(j, i) = d;
    }
  }
  DependenceEstimate result;
  result.dependences = std::move(deps);
  // Parallel composition across unlinkable pair releases (Section 4.3).
  result.epsilon = max_pair_epsilon;
  result.messages = messages;
  return result;
}

}  // namespace mdrr
