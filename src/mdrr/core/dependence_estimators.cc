#include "mdrr/core/dependence_estimators.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/rng/rng.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {

DependenceEstimate OracleDependences(const Dataset& dataset) {
  DependenceEstimate result;
  result.dependences = DependenceMatrix(dataset);
  result.epsilon = 0.0;
  result.messages = 0;
  return result;
}

DependenceEstimate OracleDependencesSharded(
    const Dataset& dataset, const DependenceShardingOptions& sharding) {
  DependenceEstimate result;
  result.dependences = DependenceMatrixSharded(
      dataset, DependenceMeasure::kPaperAuto, sharding);
  result.epsilon = 0.0;
  result.messages = 0;
  return result;
}

namespace {

// Separates the secure-sum oracle's share streams from the masking
// streams that reuse the same pair indices (golden-ratio odd constant).
constexpr uint64_t kOracleSeedSalt = 0x9e3779b97f4a7c15ULL;

// Message bookkeeping on wide product domains can exceed 64 bits;
// saturate instead of wrapping (DependenceEstimate::messages contract).
uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return b > std::numeric_limits<uint64_t>::max() - a
             ? std::numeric_limits<uint64_t>::max()
             : a + b;
}

// The row-major upper-triangle pair grid; index p of this list is the
// pair's stream key 1 + p (dependence_estimators.h addressing contract).
std::vector<std::pair<size_t, size_t>> UpperTrianglePairs(size_t m) {
  std::vector<std::pair<size_t, size_t>> pairs;
  if (m >= 2) pairs.reserve(m * (m - 1) / 2);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) pairs.emplace_back(i, j);
  }
  return pairs;
}

// The shared round-1 publication of the Section 4.1 assessment: every
// attribute randomized through KeepUniform(|A|, p) on one sequential
// stream -- the historical mt19937 transcript, byte-identical since the
// estimator landed. Returns the randomized data and accumulates epsilon.
Dataset PublishRandomizedRound(const Dataset& dataset,
                               double keep_probability, Rng& rng,
                               double* epsilon) {
  Dataset randomized = dataset;
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    size_t r = dataset.attribute(j).cardinality();
    RrMatrix matrix = RrMatrix::KeepUniform(r, keep_probability);
    // In-place rewrite of the copied column: randomized codes are < r by
    // construction, and no per-attribute column is allocated.
    matrix.RandomizeColumnInto(dataset.column(j), rng,
                               randomized.MutableColumn(j));
    *epsilon += matrix.Epsilon();
  }
  return randomized;
}

// Counter-policy round-1 publication: attribute j's column is drawn from
// counter stream 1 + j with element = record index, so the publication
// shards over record ranges and the transcript is a pure function of
// (dataset, keep_probability, seed) -- invariant to thread count and
// chunk grain by construction.
Dataset PublishRandomizedRoundCounter(const Dataset& dataset,
                                      double keep_probability, uint64_t seed,
                                      const DependenceShardingOptions& sharding,
                                      double* epsilon) {
  Dataset randomized = dataset;
  const size_t n = dataset.num_rows();
  const size_t chunk_size = std::max<size_t>(1, sharding.record_chunk_size);
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    size_t r = dataset.attribute(j).cardinality();
    RrMatrix matrix = RrMatrix::KeepUniform(r, keep_probability);
    const std::vector<uint32_t>& codes = dataset.column(j);
    std::vector<uint32_t>& out = randomized.MutableColumn(j);
    const uint64_t stream = 1 + static_cast<uint64_t>(j);
    ParallelChunks(n, chunk_size, sharding.num_threads,
                   [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                       size_t end) {
                     matrix.RandomizeRangeCounterInto(codes, begin, end, seed,
                                                      stream, out.data(),
                                                      /*counts=*/nullptr);
                   });
    *epsilon += matrix.Epsilon();
  }
  return randomized;
}

}  // namespace

DependenceEstimate RandomizedResponseDependences(const Dataset& dataset,
                                                 double keep_probability,
                                                 uint64_t seed) {
  Rng rng(seed);
  DependenceEstimate result;
  result.epsilon = 0.0;
  Dataset randomized =
      PublishRandomizedRound(dataset, keep_probability, rng, &result.epsilon);
  result.dependences = DependenceMatrix(randomized);
  // Every party ships one randomized record to the aggregating party:
  // n messages of m values each.
  result.messages = static_cast<uint64_t>(dataset.num_rows());
  return result;
}

DependenceEstimate RandomizedResponseDependencesSharded(
    const Dataset& dataset, double keep_probability, uint64_t seed,
    const DependenceEstimatorOptions& options) {
  DependenceEstimate result;
  result.epsilon = 0.0;
  Rng rng(seed);  // Consumed on the mt19937 path only.
  Dataset randomized =
      options.rng == RngKind::kPhilox
          ? PublishRandomizedRoundCounter(dataset, keep_probability, seed,
                                          options.sharding, &result.epsilon)
          : PublishRandomizedRound(dataset, keep_probability, rng,
                                   &result.epsilon);
  result.dependences = DependenceMatrixSharded(
      randomized, DependenceMeasure::kPaperAuto, options.sharding);
  result.messages = static_cast<uint64_t>(dataset.num_rows());
  return result;
}

DependenceEstimate RandomizedResponseDependencesSharded(
    const Dataset& dataset, double keep_probability, uint64_t seed,
    const DependenceShardingOptions& sharding) {
  DependenceEstimatorOptions options;
  options.sharding = sharding;
  return RandomizedResponseDependencesSharded(dataset, keep_probability, seed,
                                              options);
}

StatusOr<DependenceEstimate> SecureSumDependences(
    const Dataset& dataset, mpc::SimulationMode mode, uint64_t seed,
    const DependenceEstimatorOptions& options) {
  const size_t m = dataset.num_attributes();
  const size_t n = dataset.num_rows();
  if (n == 0) return Status::InvalidArgument("empty dataset");

  const mpc::SecureFrequencyOracle oracle(mode, seed, options.rng);
  linalg::Matrix deps(m, m, 0.0);
  for (size_t i = 0; i < m; ++i) deps(i, i) = 1.0;
  const std::vector<std::pair<size_t, size_t>> pairs = UpperTrianglePairs(m);
  const size_t chunk_size =
      std::max<size_t>(1, options.sharding.record_chunk_size);

  // One pair, serially, on its own oracle stream 1 + p.
  auto pair_dependence = [&](size_t p) -> StatusOr<double> {
    auto [i, j] = pairs[p];
    const Attribute& a = dataset.attribute(i);
    const Attribute& b = dataset.attribute(j);
    std::vector<int64_t> counts;
    MDRR_ASSIGN_OR_RETURN(
        counts, oracle.BivariateCounts(
                    dataset.column(i), a.cardinality(), dataset.column(j),
                    b.cardinality(),
                    /*pair_stream=*/1 + static_cast<uint64_t>(p)));
    std::vector<double> joint(counts.begin(), counts.end());
    return DependenceFromJoint(joint, a.cardinality(), a.type,
                               b.cardinality(), b.type,
                               static_cast<double>(n));
  };

  // The adaptive pair-grid/record-range split of DependenceMatrixSharded:
  // when the grid can feed every worker, shard pairs (each serial on its
  // own stream); otherwise shard each fast-simulation pair's record scan
  // -- the secure sums are exact, so the sharded joint histogram is
  // bitwise the protocol output -- while literal pairs run serially (the
  // share-exchange transcript is per pair). Both schemes produce the
  // same counts, so the choice never changes the output.
  const size_t workers =
      ResolveWorkerCount(options.sharding.num_threads, n, chunk_size);
  if (pairs.size() >= 2 * workers) {
    // Statuses are collected per pair and checked after the join (an
    // error cannot early-return across workers); distinct pairs write
    // distinct (i, j)/(j, i) cells.
    std::vector<Status> failures(pairs.size(), Status::OK());
    ParallelChunks(pairs.size(), /*chunk_size=*/1,
                   options.sharding.num_threads,
                   [&](size_t /*worker*/, size_t p, size_t /*begin*/,
                       size_t /*end*/) {
                     StatusOr<double> d = pair_dependence(p);
                     if (!d.ok()) {
                       failures[p] = d.status();
                       return;
                     }
                     auto [i, j] = pairs[p];
                     deps(i, j) = d.value();
                     deps(j, i) = d.value();
                   });
    for (const Status& s : failures) {
      if (!s.ok()) return s;
    }
  } else {
    for (size_t p = 0; p < pairs.size(); ++p) {
      auto [i, j] = pairs[p];
      double d = 0.0;
      if (mode == mpc::SimulationMode::kFastSimulation) {
        const Attribute& a = dataset.attribute(i);
        const Attribute& b = dataset.attribute(j);
        const std::vector<uint32_t>& col_a = dataset.column(i);
        const std::vector<uint32_t>& col_b = dataset.column(j);
        const size_t card_b = b.cardinality();
        std::vector<int64_t> counts =
            stats::ShardedHistogram(n, a.cardinality() * card_b, chunk_size,
                                    options.sharding.num_threads,
                                    [&](size_t row) {
                                      return col_a[row] * card_b + col_b[row];
                                    })
                .counts();
        std::vector<double> joint(counts.begin(), counts.end());
        d = DependenceFromJoint(joint, a.cardinality(), a.type, card_b,
                                b.type, static_cast<double>(n));
      } else {
        MDRR_ASSIGN_OR_RETURN(d, pair_dependence(p));
      }
      deps(i, j) = d;
      deps(j, i) = d;
    }
  }

  uint64_t messages = 0;
  for (auto [i, j] : pairs) {
    messages = SaturatingAdd(
        messages, mpc::SecureFrequencyOracle::BivariateMessageCount(
                      dataset.attribute(i).cardinality(),
                      dataset.attribute(j).cardinality(), n));
  }
  DependenceEstimate result;
  result.dependences = std::move(deps);
  // Exact values are released: not differentially private.
  result.epsilon = std::numeric_limits<double>::infinity();
  result.messages = messages;
  return result;
}

StatusOr<DependenceEstimate> SecureSumDependences(const Dataset& dataset,
                                                  mpc::SimulationMode mode,
                                                  uint64_t seed) {
  return SecureSumDependences(dataset, mode, seed,
                              DependenceEstimatorOptions{});
}

StatusOr<DependenceEstimate> PairwiseRrDependences(
    const Dataset& dataset, double keep_probability, mpc::SimulationMode mode,
    uint64_t seed, const DependenceEstimatorOptions& options) {
  const size_t m = dataset.num_attributes();
  const size_t n = dataset.num_rows();
  if (n == 0) return Status::InvalidArgument("empty dataset");

  const mpc::SecureFrequencyOracle oracle(mode, seed ^ kOracleSeedSalt,
                                          options.rng);
  const RngStreamFamily mask_family(seed);
  linalg::Matrix deps(m, m, 0.0);
  for (size_t i = 0; i < m; ++i) deps(i, i) = 1.0;
  const std::vector<std::pair<size_t, size_t>> pairs = UpperTrianglePairs(m);
  const size_t chunk_size =
      std::max<size_t>(1, options.sharding.record_chunk_size);
  const bool fast = mode == mpc::SimulationMode::kFastSimulation;

  // Reused per-worker scratch: composing, masking and the lambda
  // recovery all write into these instead of allocating per pair.
  struct PairScratch {
    std::vector<uint32_t> pair_codes;
    std::vector<uint32_t> masked;
    std::vector<uint32_t> trivial;  // Single-category helper column.
    std::vector<int64_t> masked_counts;
    std::vector<double> lambda;
  };

  // Epsilon per pair, filled by whichever regime ran the pair; reduced
  // in pair order after the join.
  std::vector<double> pair_epsilon(pairs.size(), 0.0);

  // One pair: mask the composed product-domain column on stream 1 + p,
  // aggregate the masked distribution, recover the joint with Eq. (2).
  // `shard_records` shards the compose/mask/count scan over record
  // ranges where the draw plan permits (philox masking is
  // element-addressed; mt19937 masking stays a sequential stream).
  auto run_pair = [&](size_t p, PairScratch& scratch,
                      bool shard_records) -> StatusOr<double> {
    auto [i, j] = pairs[p];
    const Attribute& a = dataset.attribute(i);
    const Attribute& b = dataset.attribute(j);
    // Domain CHECKs the product against the uint32 composite-code cap,
    // like Domain::ComposeColumns (the compose loop below is its
    // two-column special case: code = a * |B| + b).
    Domain pair_domain({a.cardinality(), b.cardinality()});
    MDRR_CHECK_LE(pair_domain.size(),
                  static_cast<uint64_t>(
                      std::numeric_limits<uint32_t>::max()));
    const size_t r = static_cast<size_t>(pair_domain.size());
    const uint32_t card_b = static_cast<uint32_t>(b.cardinality());
    RrMatrix matrix = RrMatrix::KeepUniform(r, keep_probability);
    pair_epsilon[p] = matrix.Epsilon();

    const std::vector<uint32_t>& col_a = dataset.column(i);
    const std::vector<uint32_t>& col_b = dataset.column(j);
    scratch.pair_codes.resize(n);
    scratch.masked.resize(n);
    scratch.masked_counts.assign(r, 0);
    const uint64_t pair_stream = 1 + static_cast<uint64_t>(p);
    auto compose_range = [&](size_t begin, size_t end) {
      for (size_t k = begin; k < end; ++k) {
        scratch.pair_codes[k] = col_a[k] * card_b + col_b[k];
      }
    };

    if (shard_records && options.rng == RngKind::kPhilox) {
      // Record-range regime: compose and mask [begin, end) per chunk
      // (element-addressed draws make any grain bit-identical); fused
      // per-worker count buffers merge after the join -- integer adds
      // commute, so the merge order is free.
      const size_t record_workers = ResolveWorkerCount(
          options.sharding.num_threads, n, chunk_size);
      std::vector<std::vector<int64_t>> worker_counts(
          fast ? record_workers : 0, std::vector<int64_t>(r, 0));
      ParallelChunks(n, chunk_size, options.sharding.num_threads,
                     [&](size_t worker, size_t /*chunk*/, size_t begin,
                         size_t end) {
                       compose_range(begin, end);
                       matrix.RandomizeRangeCounterInto(
                           scratch.pair_codes, begin, end, seed, pair_stream,
                           scratch.masked.data(),
                           fast ? worker_counts[worker].data() : nullptr);
                     });
      for (const std::vector<int64_t>& wc : worker_counts) {
        for (size_t c = 0; c < r; ++c) scratch.masked_counts[c] += wc[c];
      }
    } else {
      compose_range(0, n);
      if (options.rng == RngKind::kPhilox) {
        matrix.RandomizeRangeCounterInto(
            scratch.pair_codes, 0, n, seed, pair_stream,
            scratch.masked.data(),
            fast ? scratch.masked_counts.data() : nullptr);
      } else {
        Rng rng = mask_family.Stream(pair_stream);
        matrix.RandomizeRangeInto(
            scratch.pair_codes, 0, n, rng, scratch.masked.data(),
            fast ? scratch.masked_counts.data() : nullptr);
      }
    }

    if (!fast) {
      // Literal aggregation: one secure-sum run per composite cell on
      // oracle stream 1 + p (cardinality_b = 1 reuses the bivariate
      // oracle as a univariate one). The fused fast-sim counts above are
      // bitwise this output -- exact sums either way.
      scratch.trivial.assign(n, 0);
      StatusOr<std::vector<int64_t>> counted =
          oracle.BivariateCounts(scratch.masked, r, scratch.trivial, 1,
                                 pair_stream);
      if (!counted.ok()) return counted.status();
      scratch.masked_counts = std::move(counted).value();
    }

    // Recover the true bivariate distribution with Eq. (2) + projection.
    scratch.lambda.resize(r);
    for (size_t c = 0; c < r; ++c) {
      scratch.lambda[c] = static_cast<double>(scratch.masked_counts[c]) /
                          static_cast<double>(n);
    }
    std::vector<double> joint;
    MDRR_ASSIGN_OR_RETURN(
        joint, EstimateProjectedDistribution(matrix, scratch.lambda));
    return DependenceFromJoint(joint, a.cardinality(), a.type,
                               b.cardinality(), b.type,
                               static_cast<double>(n));
  };

  // Same adaptive split as SecureSumDependences; both regimes produce
  // identical masked columns and counts per pair, so the choice never
  // changes the output.
  const size_t workers =
      ResolveWorkerCount(options.sharding.num_threads, n, chunk_size);
  if (pairs.size() >= 2 * workers) {
    const size_t grid_workers = ResolveWorkerCount(
        options.sharding.num_threads, pairs.size(), /*chunk_size=*/1);
    std::vector<PairScratch> scratch(grid_workers);
    std::vector<Status> failures(pairs.size(), Status::OK());
    ParallelChunks(pairs.size(), /*chunk_size=*/1,
                   options.sharding.num_threads,
                   [&](size_t worker, size_t p, size_t /*begin*/,
                       size_t /*end*/) {
                     StatusOr<double> d =
                         run_pair(p, scratch[worker], /*shard_records=*/false);
                     if (!d.ok()) {
                       failures[p] = d.status();
                       return;
                     }
                     auto [i, j] = pairs[p];
                     deps(i, j) = d.value();
                     deps(j, i) = d.value();
                   });
    for (const Status& s : failures) {
      if (!s.ok()) return s;
    }
  } else {
    PairScratch scratch;
    for (size_t p = 0; p < pairs.size(); ++p) {
      StatusOr<double> d = run_pair(p, scratch, /*shard_records=*/true);
      if (!d.ok()) return d.status();
      auto [i, j] = pairs[p];
      deps(i, j) = d.value();
      deps(j, i) = d.value();
    }
  }

  uint64_t messages = 0;
  double max_pair_epsilon = 0.0;
  for (size_t p = 0; p < pairs.size(); ++p) {
    auto [i, j] = pairs[p];
    const uint64_t cells =
        static_cast<uint64_t>(dataset.attribute(i).cardinality()) *
        dataset.attribute(j).cardinality();
    messages = SaturatingAdd(
        messages, mpc::SecureFrequencyOracle::BivariateMessageCount(
                      static_cast<size_t>(cells), 1, n));
    max_pair_epsilon = std::max(max_pair_epsilon, pair_epsilon[p]);
  }
  DependenceEstimate result;
  result.dependences = std::move(deps);
  // Parallel composition across unlinkable pair releases (Section 4.3).
  result.epsilon = max_pair_epsilon;
  result.messages = messages;
  return result;
}

StatusOr<DependenceEstimate> PairwiseRrDependences(const Dataset& dataset,
                                                   double keep_probability,
                                                   mpc::SimulationMode mode,
                                                   uint64_t seed) {
  return PairwiseRrDependences(dataset, keep_probability, mode, seed,
                               DependenceEstimatorOptions{});
}

}  // namespace mdrr
