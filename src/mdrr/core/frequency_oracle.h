// Local-differential-privacy frequency oracles: the protocol family of
// Wang et al. (USENIX Security 2017), cited by the paper as [29], plus
// the RAPPOR-style unary encodings of its related work (Section 7).
//
// These are *frequency-only* baselines: unlike randomized response they
// release no microdata, but they make the comparison the paper's related
// work discusses concrete -- at equal epsilon, how much frequency accuracy
// does the microdata-capable mechanism give up?
//
//   * DirectEncodingOracle  -- k-ary randomized response (the paper's
//     optimal matrix); estimation variance grows with the domain size r.
//   * UnaryEncodingOracle   -- one-hot encoding with per-bit flips.
//     Symmetric parameters (SUE, basic RAPPOR) or the optimized ones
//     (OUE), whose variance is independent of r.

#ifndef MDRR_CORE_FREQUENCY_ORACLE_H_
#define MDRR_CORE_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

// k-ary randomized response as a frequency oracle.
class DirectEncodingOracle {
 public:
  // Preconditions: r >= 2, epsilon > 0.
  DirectEncodingOracle(size_t r, double epsilon);

  size_t domain_size() const { return r_; }
  double epsilon() const { return epsilon_; }

  // One respondent's randomized report.
  uint32_t Randomize(uint32_t value, Rng& rng) const;

  // Unbiased frequency estimates from the reported codes:
  // pi_v = (lambda_v - q) / (p - q). Entries may leave [0, 1]; callers
  // wanting a proper distribution apply ProjectToSimplex.
  StatusOr<std::vector<double>> EstimateFrequencies(
      const std::vector<uint32_t>& reports) const;

  // Estimator variance for a category with true frequency pi_v at sample
  // size n (Wang et al., Eq. for DE):
  //   Var = q(1-q)/(n (p-q)^2) + pi_v (1 - p - q)/(n (p - q)).
  double TheoreticalVariance(double pi_v, int64_t n) const;

 private:
  size_t r_;
  double epsilon_;
  RrMatrix matrix_;
  double p_;  // Diagonal probability.
  double q_;  // Off-diagonal probability.
};

// One-hot (unary) encoding with independent per-bit randomization.
class UnaryEncodingOracle {
 public:
  enum class Variant {
    kSymmetric,  // SUE / basic RAPPOR: p = e^{eps/2}/(e^{eps/2}+1), q = 1-p.
    kOptimized,  // OUE: p = 1/2, q = 1/(e^{eps}+1).
  };

  // Preconditions: r >= 2, epsilon > 0.
  UnaryEncodingOracle(size_t r, double epsilon, Variant variant);

  size_t domain_size() const { return r_; }
  double epsilon() const { return epsilon_; }
  Variant variant() const { return variant_; }
  double p() const { return p_; }
  double q() const { return q_; }

  // One respondent's randomized bit vector (length r): bit v keeps its
  // one-hot value with probability p (if 1) / flips to 1 with
  // probability q (if 0).
  std::vector<uint8_t> Randomize(uint32_t value, Rng& rng) const;

  // Unbiased estimates from summed bit reports:
  // pi_v = (count_v / n - q) / (p - q).
  StatusOr<std::vector<double>> EstimateFrequencies(
      const std::vector<int64_t>& bit_counts, int64_t n) const;

  // Convenience: accumulates bit vectors and estimates.
  StatusOr<std::vector<double>> EstimateFromReports(
      const std::vector<std::vector<uint8_t>>& reports) const;

  // Var = q(1-q)/(n (p-q)^2) + pi_v (1 - p - q)/(n (p - q)).
  double TheoreticalVariance(double pi_v, int64_t n) const;

 private:
  size_t r_;
  double epsilon_;
  Variant variant_;
  double p_;  // P[report 1 | true bit 1].
  double q_;  // P[report 1 | true bit 0].
};

}  // namespace mdrr

#endif  // MDRR_CORE_FREQUENCY_ORACLE_H_
