// Local-differential-privacy frequency oracles: the protocol family of
// Wang et al. (USENIX Security 2017), cited by the paper as [29], plus
// the RAPPOR-style unary encodings of its related work (Section 7).
//
// FrequencyOracle is the pluggable per-attribute backend seam: one
// interface covering encode/randomize-range-into-counts/estimate, with a
// batched counter-RNG entry point mirroring
// RrMatrix::RandomizeRangeCounterInto so every backend works under both
// RNG policies and all execution policies. The k-ary randomized-response
// path (DirectEncodingOracle) is the reference instance: its batched
// entry points delegate 1:1 to the RrMatrix kernels, so routing the
// existing release paths through the oracle leaves every committed
// transcript bit-identical.
//
//   * DirectEncodingOracle  -- k-ary randomized response (the paper's
//     optimal matrix); the only backend whose reports are themselves
//     microdata codes. Estimation variance grows with the domain size r.
//   * UnaryEncodingOracle   -- one-hot encoding with per-bit flips.
//     Symmetric parameters (SUE, basic RAPPOR) or the optimized ones
//     (OUE), whose variance is independent of r.
//   * LocalHashingOracle    -- OLH: each respondent hashes into
//     g = floor(e^eps) + 1 buckets with a private per-report hash seed,
//     then runs GRR over the buckets. OUE-grade variance at O(1) report
//     size instead of O(r) bits.
//
// All frequency-only backends (everything but direct encoding) release
// no microdata: they make the comparison the paper's related work
// discusses concrete -- at equal epsilon, how much frequency accuracy
// does the microdata-capable mechanism give up?

#ifndef MDRR_CORE_FREQUENCY_ORACLE_H_
#define MDRR_CORE_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

// The selectable per-attribute backend. Tokens (spec files, CLI --oracle)
// follow the Wang et al. abbreviations: de | sue | oue | olh.
enum class OracleBackend : uint8_t {
  kDirect,          // k-ary randomized response (the default RR path).
  kSymmetricUnary,  // SUE / basic RAPPOR.
  kOptimizedUnary,  // OUE.
  kLocalHashing,    // OLH.
};

const char* ToString(OracleBackend backend);
StatusOr<OracleBackend> OracleBackendFromString(const std::string& token);

// One per-attribute frequency-oracle backend over a domain of r
// categories at privacy level epsilon.
//
// The batched entry points fuse randomize+count over a record range, in
// the two draw disciplines the engine layers use:
//
//   * AccumulateRange draws sequentially from one Rng in record order
//     (the mt19937 policy; shard workers each own a stream);
//   * AccumulateRangeCounter draws element-addressed philox blocks of
//     stream (seed, stream), so output is a pure function of the
//     randomness address -- any shard grain or thread count produces
//     identical counts (the contract of RandomizeRangeCounterInto).
//
// `out`, when non-null, receives the randomized microdata codes for
// records [begin, end) (absolute indexing: out must have room for index
// end - 1). Only produces_microdata() backends write it; frequency-only
// backends contribute counts alone and callers pass nullptr.
//
// Implementations are immutable after construction and safe to share
// across threads (each call site owns its Rng or randomness address).
class FrequencyOracle {
 public:
  virtual ~FrequencyOracle() = default;

  virtual OracleBackend backend() const = 0;
  size_t domain_size() const { return r_; }
  double epsilon() const { return epsilon_; }
  // The two response probabilities of the unified Wang et al. analysis:
  // p = Pr[report supports the true value], q = Pr[report supports a
  // given false value].
  double p() const { return p_; }
  double q() const { return q_; }

  // Whether randomized reports are themselves codes in [0, r) -- true
  // only for direct encoding, the microdata-capable backend.
  virtual bool produces_microdata() const { return false; }

  // Fused randomize+count over codes[begin, end), drawing sequentially
  // from `rng`. `counts` (size r, may be null) accumulates per-category
  // support counts; `out` is written only when produces_microdata().
  virtual void AccumulateRange(const std::vector<uint32_t>& codes,
                               size_t begin, size_t end, Rng& rng,
                               uint32_t* out, int64_t* counts) const = 0;

  // Counter-policy analogue: record i draws from its own element
  // block(s) of philox stream (seed, stream), mirroring
  // RrMatrix::RandomizeRangeCounterInto. Each backend documents its
  // per-record element budget; budgets are fixed (branch-independent) so
  // the draw plan never depends on data, shard grain, or thread count.
  virtual void AccumulateRangeCounter(const std::vector<uint32_t>& codes,
                                      size_t begin, size_t end, uint64_t seed,
                                      uint64_t stream, uint32_t* out,
                                      int64_t* counts) const = 0;

  // Unbiased closed-form inversion of the observed support distribution
  // lambda (size r): pi_v = (lambda_v - q) / (p - q). Entries may leave
  // [0, 1]; callers wanting a proper distribution apply ProjectToSimplex.
  // DirectEncodingOracle overrides this to route through the structured
  // Eq. (2) estimator (core/estimator), the single implementation of the
  // inversion for RR matrices.
  virtual StatusOr<std::vector<double>> EstimateFromLambda(
      const std::vector<double>& lambda) const;

  // Convenience: support counts over n reports -> lambda -> estimate.
  // The per-entry division is the streaming window arithmetic.
  StatusOr<std::vector<double>> EstimateFrequencies(
      const std::vector<int64_t>& counts, int64_t n) const;

  // Estimator variance for a category with true frequency pi_v at sample
  // size n (Wang et al.'s unified form across all their oracles):
  //   Var = q(1-q)/(n (p-q)^2) + pi_v (1 - p - q)/(n (p - q)).
  double TheoreticalVariance(double pi_v, int64_t n) const;

 protected:
  FrequencyOracle(size_t r, double epsilon) : r_(r), epsilon_(epsilon) {}

  size_t r_;
  double epsilon_;
  double p_ = 0.0;  // Set by each backend's constructor.
  double q_ = 0.0;
};

// k-ary randomized response as a frequency oracle: the reference
// instance. Both batched entry points delegate to the RrMatrix kernels,
// draw for draw, so a release routed through this oracle is bit-identical
// to one calling the matrix directly.
class DirectEncodingOracle : public FrequencyOracle {
 public:
  // The differential-privacy-optimal design at `epsilon`.
  // Preconditions: r >= 2, epsilon > 0.
  DirectEncodingOracle(size_t r, double epsilon);

  // Wraps an arbitrary randomization design (KeepUniform, geometric
  // ordinal, ...) as an oracle; epsilon is the matrix's Expression (4)
  // level. This is how the existing release paths route their designed
  // matrices through the seam.
  explicit DirectEncodingOracle(RrMatrix matrix);

  OracleBackend backend() const override { return OracleBackend::kDirect; }
  bool produces_microdata() const override { return true; }
  const RrMatrix& matrix() const { return matrix_; }

  // One respondent's randomized report.
  uint32_t Randomize(uint32_t value, Rng& rng) const;

  using FrequencyOracle::EstimateFrequencies;
  // Unbiased frequency estimates from the reported codes. Routed through
  // the structured Eq. (2) estimator -- the closed form it evaluates for
  // uniform-mixture matrices is the (lambda - q)/(p - q) inversion.
  StatusOr<std::vector<double>> EstimateFrequencies(
      const std::vector<uint32_t>& reports) const;

  void AccumulateRange(const std::vector<uint32_t>& codes, size_t begin,
                       size_t end, Rng& rng, uint32_t* out,
                       int64_t* counts) const override;
  void AccumulateRangeCounter(const std::vector<uint32_t>& codes,
                              size_t begin, size_t end, uint64_t seed,
                              uint64_t stream, uint32_t* out,
                              int64_t* counts) const override;
  StatusOr<std::vector<double>> EstimateFromLambda(
      const std::vector<double>& lambda) const override;

 private:
  RrMatrix matrix_;
};

// One-hot (unary) encoding with independent per-bit randomization.
// Draw discipline: record i flips bit v with the v-th draw of its
// per-record sweep (sequential Rng) / element i * r + v (counter policy;
// r elements per record).
class UnaryEncodingOracle : public FrequencyOracle {
 public:
  enum class Variant {
    kSymmetric,  // SUE / basic RAPPOR: p = e^{eps/2}/(e^{eps/2}+1), q = 1-p.
    kOptimized,  // OUE: p = 1/2, q = 1/(e^{eps}+1).
  };

  // Preconditions: r >= 2, epsilon > 0.
  UnaryEncodingOracle(size_t r, double epsilon, Variant variant);

  OracleBackend backend() const override {
    return variant_ == Variant::kSymmetric ? OracleBackend::kSymmetricUnary
                                           : OracleBackend::kOptimizedUnary;
  }
  Variant variant() const { return variant_; }

  // One respondent's randomized bit vector (length r): bit v keeps its
  // one-hot value with probability p (if 1) / flips to 1 with
  // probability q (if 0).
  std::vector<uint8_t> Randomize(uint32_t value, Rng& rng) const;

  // Convenience: accumulates bit vectors and estimates.
  StatusOr<std::vector<double>> EstimateFromReports(
      const std::vector<std::vector<uint8_t>>& reports) const;

  void AccumulateRange(const std::vector<uint32_t>& codes, size_t begin,
                       size_t end, Rng& rng, uint32_t* out,
                       int64_t* counts) const override;
  void AccumulateRangeCounter(const std::vector<uint32_t>& codes,
                              size_t begin, size_t end, uint64_t seed,
                              uint64_t stream, uint32_t* out,
                              int64_t* counts) const override;

 private:
  Variant variant_;
};

// Optimized local hashing (OLH, Wang et al. Section 5): each respondent
// draws a private hash seed, hashes the true value into
// g = floor(e^eps) + 1 buckets, and reports GRR over the buckets. The
// aggregator counts, for each candidate value v, the reports whose hash
// of v equals the reported bucket (support counts); the inversion uses
// p* = the bucket-GRR diagonal and q* = 1/g.
//
// Draw discipline: record i consumes one full-entropy u64 for its hash
// seed, then one GRR draw over the buckets -- sequentially two mt19937
// positions, or counter elements 2i (raw channel = seed) and 2i + 1 (the
// bucket GRR's own element block). Two elements per record, fixed budget.
class LocalHashingOracle : public FrequencyOracle {
 public:
  // Preconditions: r >= 2, epsilon > 0.
  LocalHashingOracle(size_t r, double epsilon);

  OracleBackend backend() const override {
    return OracleBackend::kLocalHashing;
  }
  size_t num_buckets() const { return g_; }

  // The per-report hash family: a SplitMix64-finalizer mix of
  // (hash_seed, value), reduced to [0, num_buckets) with the same
  // fixed-budget multiplicative reduction the counter kernels use.
  // Deterministic and platform-independent -- part of the transcript
  // contract.
  static uint32_t HashBucket(uint64_t hash_seed, uint32_t value,
                             size_t num_buckets);

  void AccumulateRange(const std::vector<uint32_t>& codes, size_t begin,
                       size_t end, Rng& rng, uint32_t* out,
                       int64_t* counts) const override;
  void AccumulateRangeCounter(const std::vector<uint32_t>& codes,
                              size_t begin, size_t end, uint64_t seed,
                              uint64_t stream, uint32_t* out,
                              int64_t* counts) const override;

 private:
  size_t g_;       // Hash range: max(2, floor(e^eps) + 1), capped.
  RrMatrix grr_;   // GRR over the g buckets at the same epsilon.
};

// Constructs the backend at (r, epsilon). Fails on r < 2 or a
// non-finite / non-positive epsilon.
StatusOr<std::unique_ptr<FrequencyOracle>> MakeFrequencyOracle(
    OracleBackend backend, size_t r, double epsilon);

}  // namespace mdrr

#endif  // MDRR_CORE_FREQUENCY_ORACLE_H_
