#include "mdrr/core/dependence.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"
#include "mdrr/stats/descriptive.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {

double DependenceBetweenColumns(const std::vector<uint32_t>& codes_a,
                                size_t cardinality_a, AttributeType type_a,
                                const std::vector<uint32_t>& codes_b,
                                size_t cardinality_b, AttributeType type_b) {
  MDRR_CHECK_EQ(codes_a.size(), codes_b.size());
  MDRR_CHECK(!codes_a.empty());
  if (type_a == AttributeType::kOrdinal && type_b == AttributeType::kOrdinal) {
    std::vector<double> x(codes_a.begin(), codes_a.end());
    std::vector<double> y(codes_b.begin(), codes_b.end());
    return std::fabs(stats::PearsonCorrelation(x, y));
  }
  stats::ContingencyTable table(codes_a, cardinality_a, codes_b,
                                cardinality_b);
  return table.CramersV();
}

double DependenceBetween(const Dataset& dataset, size_t i, size_t j) {
  const Attribute& a = dataset.attribute(i);
  const Attribute& b = dataset.attribute(j);
  return DependenceBetweenColumns(dataset.column(i), a.cardinality(), a.type,
                                  dataset.column(j), b.cardinality(), b.type);
}

linalg::Matrix DependenceMatrix(const Dataset& dataset) {
  const size_t m = dataset.num_attributes();
  linalg::Matrix deps(m, m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    deps(i, i) = 1.0;
    for (size_t j = i + 1; j < m; ++j) {
      double d = DependenceBetween(dataset, i, j);
      deps(i, j) = d;
      deps(j, i) = d;
    }
  }
  return deps;
}

double NormalizedMutualInformationFromJoint(const std::vector<double>& joint,
                                            size_t cardinality_a,
                                            size_t cardinality_b) {
  MDRR_CHECK_EQ(joint.size(), cardinality_a * cardinality_b);
  double total = 0.0;
  for (double w : joint) total += std::max(0.0, w);
  if (total <= 0.0) return 0.0;

  std::vector<double> marginal_a(cardinality_a, 0.0);
  std::vector<double> marginal_b(cardinality_b, 0.0);
  for (size_t a = 0; a < cardinality_a; ++a) {
    for (size_t b = 0; b < cardinality_b; ++b) {
      double w = std::max(0.0, joint[a * cardinality_b + b]) / total;
      marginal_a[a] += w;
      marginal_b[b] += w;
    }
  }
  auto entropy = [](const std::vector<double>& dist) {
    double h = 0.0;
    for (double x : dist) {
      if (x > 0.0) h -= x * std::log(x);
    }
    return h;
  };
  double h_a = entropy(marginal_a);
  double h_b = entropy(marginal_b);
  if (h_a <= 0.0 || h_b <= 0.0) return 0.0;

  double mutual = 0.0;
  for (size_t a = 0; a < cardinality_a; ++a) {
    for (size_t b = 0; b < cardinality_b; ++b) {
      double w = std::max(0.0, joint[a * cardinality_b + b]) / total;
      if (w <= 0.0) continue;
      mutual += w * std::log(w / (marginal_a[a] * marginal_b[b]));
    }
  }
  double nmi = mutual / std::min(h_a, h_b);
  return std::min(1.0, std::max(0.0, nmi));
}

double NormalizedMutualInformation(const std::vector<uint32_t>& codes_a,
                                   size_t cardinality_a,
                                   const std::vector<uint32_t>& codes_b,
                                   size_t cardinality_b) {
  MDRR_CHECK_EQ(codes_a.size(), codes_b.size());
  MDRR_CHECK(!codes_a.empty());
  std::vector<double> joint(cardinality_a * cardinality_b, 0.0);
  for (size_t i = 0; i < codes_a.size(); ++i) {
    MDRR_CHECK_LT(codes_a[i], cardinality_a);
    MDRR_CHECK_LT(codes_b[i], cardinality_b);
    joint[codes_a[i] * cardinality_b + codes_b[i]] += 1.0;
  }
  return NormalizedMutualInformationFromJoint(joint, cardinality_a,
                                              cardinality_b);
}

linalg::Matrix DependenceMatrixWithMeasure(const Dataset& dataset,
                                           DependenceMeasure measure) {
  const size_t m = dataset.num_attributes();
  linalg::Matrix deps(m, m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    deps(i, i) = 1.0;
    const Attribute& a = dataset.attribute(i);
    for (size_t j = i + 1; j < m; ++j) {
      const Attribute& b = dataset.attribute(j);
      double d = 0.0;
      switch (measure) {
        case DependenceMeasure::kPaperAuto:
          d = DependenceBetween(dataset, i, j);
          break;
        case DependenceMeasure::kCramersV: {
          stats::ContingencyTable table(dataset.column(i), a.cardinality(),
                                        dataset.column(j), b.cardinality());
          d = table.CramersV();
          break;
        }
        case DependenceMeasure::kAbsPearson: {
          std::vector<double> x(dataset.column(i).begin(),
                                dataset.column(i).end());
          std::vector<double> y(dataset.column(j).begin(),
                                dataset.column(j).end());
          d = std::fabs(stats::PearsonCorrelation(x, y));
          break;
        }
        case DependenceMeasure::kNormalizedMutualInformation:
          d = NormalizedMutualInformation(dataset.column(i), a.cardinality(),
                                          dataset.column(j),
                                          b.cardinality());
          break;
      }
      deps(i, j) = d;
      deps(j, i) = d;
    }
  }
  return deps;
}

double AbsPearsonFromJoint(const std::vector<double>& joint,
                           size_t cardinality_a, size_t cardinality_b) {
  MDRR_CHECK_EQ(joint.size(), cardinality_a * cardinality_b);
  double total = 0.0;
  for (double w : joint) total += std::max(0.0, w);
  if (total <= 0.0) return 0.0;

  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t a = 0; a < cardinality_a; ++a) {
    for (size_t b = 0; b < cardinality_b; ++b) {
      double w = std::max(0.0, joint[a * cardinality_b + b]) / total;
      mean_a += w * static_cast<double>(a);
      mean_b += w * static_cast<double>(b);
    }
  }
  double var_a = 0.0;
  double var_b = 0.0;
  double cov = 0.0;
  for (size_t a = 0; a < cardinality_a; ++a) {
    for (size_t b = 0; b < cardinality_b; ++b) {
      double w = std::max(0.0, joint[a * cardinality_b + b]) / total;
      double da = static_cast<double>(a) - mean_a;
      double db = static_cast<double>(b) - mean_b;
      var_a += w * da * da;
      var_b += w * db * db;
      cov += w * da * db;
    }
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return std::fabs(cov / std::sqrt(var_a * var_b));
}

namespace {

// Dependence statistic from a pair's exact joint counts. A pure function
// of (counts, measure, types), so any accumulation scheme that produces
// the same integer counts produces bitwise-identical dependences.
double DependenceFromJointCounts(const std::vector<int64_t>& counts,
                                 size_t cardinality_a, AttributeType type_a,
                                 size_t cardinality_b, AttributeType type_b,
                                 double n, DependenceMeasure measure) {
  std::vector<double> joint(counts.begin(), counts.end());
  switch (measure) {
    case DependenceMeasure::kPaperAuto:
      return DependenceFromJoint(joint, cardinality_a, type_a, cardinality_b,
                                 type_b, n);
    case DependenceMeasure::kCramersV: {
      stats::ContingencyTable table(std::move(joint), cardinality_a,
                                    cardinality_b, n);
      return table.CramersV();
    }
    case DependenceMeasure::kAbsPearson:
      return AbsPearsonFromJoint(joint, cardinality_a, cardinality_b);
    case DependenceMeasure::kNormalizedMutualInformation:
      return NormalizedMutualInformationFromJoint(joint, cardinality_a,
                                                  cardinality_b);
  }
  return 0.0;
}

// Joint counts of one pair accumulated serially over all records.
std::vector<int64_t> PairCountsSerial(const std::vector<uint32_t>& codes_a,
                                      const std::vector<uint32_t>& codes_b,
                                      size_t cardinality_a,
                                      size_t cardinality_b) {
  std::vector<int64_t> counts(cardinality_a * cardinality_b, 0);
  for (size_t i = 0; i < codes_a.size(); ++i) {
    ++counts[codes_a[i] * cardinality_b + codes_b[i]];
  }
  return counts;
}

// Joint counts of one pair sharded over record ranges (per-worker
// buffers merged by FrequencyTable::Absorb inside ShardedHistogram).
std::vector<int64_t> PairCountsSharded(const std::vector<uint32_t>& codes_a,
                                       const std::vector<uint32_t>& codes_b,
                                       size_t cardinality_a,
                                       size_t cardinality_b,
                                       const DependenceShardingOptions& options,
                                       size_t chunk_size) {
  return stats::ShardedHistogram(
             codes_a.size(), cardinality_a * cardinality_b, chunk_size,
             options.num_threads,
             [&](size_t i) {
               return codes_a[i] * cardinality_b + codes_b[i];
             })
      .counts();
}

}  // namespace

linalg::Matrix DependenceMatrixSharded(
    const Dataset& dataset, DependenceMeasure measure,
    const DependenceShardingOptions& options) {
  const size_t m = dataset.num_attributes();
  const size_t n = dataset.num_rows();
  const size_t chunk_size = std::max<size_t>(1, options.record_chunk_size);
  linalg::Matrix deps(m, m, 0.0);
  for (size_t i = 0; i < m; ++i) deps(i, i) = 1.0;
  if (m < 2 || n == 0) return deps;

  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(m * (m - 1) / 2);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) pairs.emplace_back(i, j);
  }

  auto stat_for = [&](size_t i, size_t j,
                      const std::vector<int64_t>& counts) {
    const Attribute& a = dataset.attribute(i);
    const Attribute& b = dataset.attribute(j);
    return DependenceFromJointCounts(counts, a.cardinality(), a.type,
                                     b.cardinality(), b.type,
                                     static_cast<double>(n), measure);
  };

  // When the pair grid alone can feed every worker, shard pairs (each
  // pair accumulated serially); otherwise shard each pair's record
  // range. Both schemes produce the same integer counts, so the choice
  // never changes the output.
  const size_t workers = ResolveWorkerCount(options.num_threads, n, chunk_size);
  if (pairs.size() >= 2 * workers) {
    ParallelChunks(pairs.size(), 1, options.num_threads,
                   [&](size_t /*worker*/, size_t pair_index, size_t /*begin*/,
                       size_t /*end*/) {
                     auto [i, j] = pairs[pair_index];
                     std::vector<int64_t> counts = PairCountsSerial(
                         dataset.column(i), dataset.column(j),
                         dataset.attribute(i).cardinality(),
                         dataset.attribute(j).cardinality());
                     double d = stat_for(i, j, counts);
                     // Distinct pairs write distinct (i, j)/(j, i) cells.
                     deps(i, j) = d;
                     deps(j, i) = d;
                   });
  } else {
    for (auto [i, j] : pairs) {
      std::vector<int64_t> counts = PairCountsSharded(
          dataset.column(i), dataset.column(j),
          dataset.attribute(i).cardinality(),
          dataset.attribute(j).cardinality(), options, chunk_size);
      double d = stat_for(i, j, counts);
      deps(i, j) = d;
      deps(j, i) = d;
    }
  }
  return deps;
}

double DependenceFromJoint(const std::vector<double>& joint,
                           size_t cardinality_a, AttributeType type_a,
                           size_t cardinality_b, AttributeType type_b,
                           double n) {
  if (type_a == AttributeType::kOrdinal && type_b == AttributeType::kOrdinal) {
    return AbsPearsonFromJoint(joint, cardinality_a, cardinality_b);
  }
  // Clamp negative cells (estimated joints may leave the simplex).
  std::vector<double> clamped(joint.size());
  for (size_t i = 0; i < joint.size(); ++i) {
    clamped[i] = std::max(0.0, joint[i]);
  }
  stats::ContingencyTable table(std::move(clamped), cardinality_a,
                                cardinality_b, n);
  return table.CramersV();
}

}  // namespace mdrr
