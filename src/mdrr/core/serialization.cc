#include "mdrr/core/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "mdrr/common/string_util.h"
#include "mdrr/dataset/domain.h"

namespace mdrr {

ClusterEstimates EstimatesFromResult(const RrClustersResult& result) {
  ClusterEstimates estimates;
  estimates.num_attributes = result.randomized.num_attributes();
  estimates.num_records = static_cast<double>(result.randomized.num_rows());
  estimates.clusters = result.clusters;
  for (const RrJointResult& joint : result.cluster_results) {
    estimates.joints.push_back(joint.estimated);
  }
  return estimates;
}

Status WriteClusterEstimates(const ClusterEstimates& estimates,
                             const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  file << "mdrr-estimates v1\n";
  file << "attributes " << estimates.num_attributes << "\n";
  file << "n " << estimates.num_records << "\n";
  file << "clusters " << estimates.clusters.size() << "\n";
  for (const std::vector<size_t>& cluster : estimates.clusters) {
    file << "cluster";
    for (size_t j : cluster) file << ' ' << j;
    file << "\n";
  }
  char buf[32];
  for (const std::vector<double>& joint : estimates.joints) {
    file << "joint";
    for (double p : joint) {
      std::snprintf(buf, sizeof(buf), " %.17g", p);
      file << buf;
    }
    file << "\n";
  }
  if (!file.good()) {
    return Status::IoError("write failure on '" + path + "'");
  }
  return Status::OK();
}

StatusOr<ClusterEstimates> ReadClusterEstimates(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::string line;
  if (!std::getline(file, line) ||
      StripWhitespace(line) != "mdrr-estimates v1") {
    return Status::InvalidArgument("bad header in '" + path + "'");
  }

  ClusterEstimates estimates;
  size_t num_clusters = 0;
  // attributes / n / clusters header lines.
  for (int header = 0; header < 3; ++header) {
    if (!std::getline(file, line)) {
      return Status::InvalidArgument("truncated estimates file");
    }
    std::istringstream stream{std::string(StripWhitespace(line))};
    std::string key;
    stream >> key;
    if (key == "attributes") {
      stream >> estimates.num_attributes;
    } else if (key == "n") {
      stream >> estimates.num_records;
    } else if (key == "clusters") {
      stream >> num_clusters;
    } else {
      return Status::InvalidArgument("unexpected line: " + line);
    }
    if (stream.fail()) {
      return Status::InvalidArgument("malformed line: " + line);
    }
  }

  for (size_t c = 0; c < num_clusters; ++c) {
    if (!std::getline(file, line)) {
      return Status::InvalidArgument("missing cluster line");
    }
    std::istringstream stream{std::string(StripWhitespace(line))};
    std::string key;
    stream >> key;
    if (key != "cluster") {
      return Status::InvalidArgument("expected cluster line, got: " + line);
    }
    std::vector<size_t> cluster;
    size_t index;
    while (stream >> index) {
      if (index >= estimates.num_attributes) {
        return Status::InvalidArgument("cluster index out of range");
      }
      cluster.push_back(index);
    }
    if (cluster.empty()) {
      return Status::InvalidArgument("empty cluster");
    }
    estimates.clusters.push_back(std::move(cluster));
  }

  for (size_t c = 0; c < num_clusters; ++c) {
    if (!std::getline(file, line)) {
      return Status::InvalidArgument("missing joint line");
    }
    std::istringstream stream{std::string(StripWhitespace(line))};
    std::string key;
    stream >> key;
    if (key != "joint") {
      return Status::InvalidArgument("expected joint line, got: " + line);
    }
    std::vector<double> joint;
    double p;
    while (stream >> p) joint.push_back(p);
    if (joint.empty()) {
      return Status::InvalidArgument("empty joint distribution");
    }
    estimates.joints.push_back(std::move(joint));
  }
  return estimates;
}

StatusOr<ClusterFactorizationEstimate> MakeEstimateFromSerialized(
    const ClusterEstimates& estimates, const Dataset& schema_source) {
  if (estimates.num_attributes != schema_source.num_attributes()) {
    return Status::InvalidArgument(
        "estimates were computed for a different attribute count");
  }
  if (estimates.clusters.size() != estimates.joints.size()) {
    return Status::InvalidArgument("cluster/joint count mismatch");
  }
  if (estimates.num_records <= 0) {
    return Status::InvalidArgument("non-positive record count");
  }
  std::vector<Domain> domains;
  for (size_t c = 0; c < estimates.clusters.size(); ++c) {
    // The cluster list is parsed input: reject a product domain that
    // overflows 64 bits before the Domain constructor CHECK-aborts.
    MDRR_ASSIGN_OR_RETURN(
        uint64_t domain_size,
        Domain::CheckedSizeForAttributes(schema_source,
                                         estimates.clusters[c]));
    if (domain_size != estimates.joints[c].size()) {
      return Status::InvalidArgument(
          "joint size does not match cluster domain (cluster " +
          std::to_string(c) + ")");
    }
    domains.push_back(
        Domain::ForAttributes(schema_source, estimates.clusters[c]));
  }
  return ClusterFactorizationEstimate(estimates.clusters, std::move(domains),
                                      estimates.joints,
                                      estimates.num_records);
}

}  // namespace mdrr
