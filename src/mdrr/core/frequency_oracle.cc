#include "mdrr/core/frequency_oracle.h"

#include <cmath>

#include "mdrr/common/check.h"
#include "mdrr/core/estimator.h"

namespace mdrr {

DirectEncodingOracle::DirectEncodingOracle(size_t r, double epsilon)
    : r_(r),
      epsilon_(epsilon),
      matrix_(RrMatrix::OptimalForEpsilon(r, epsilon)),
      p_(matrix_.Prob(0, 0)),
      q_(r > 1 ? matrix_.Prob(0, 1) : 0.0) {
  MDRR_CHECK_GE(r, 2u);
  MDRR_CHECK_GT(epsilon, 0.0);
}

uint32_t DirectEncodingOracle::Randomize(uint32_t value, Rng& rng) const {
  return matrix_.Randomize(value, rng);
}

StatusOr<std::vector<double>> DirectEncodingOracle::EstimateFrequencies(
    const std::vector<uint32_t>& reports) const {
  if (reports.empty()) {
    return Status::InvalidArgument("no reports to estimate from");
  }
  std::vector<double> lambda = EmpiricalDistribution(reports, r_);
  // For the uniform-mixture matrix, (P^T)^{-1} lambda has the closed form
  // (lambda_v - q) / (p - q) because the row/column sums are 1.
  std::vector<double> estimates(r_);
  double denom = p_ - q_;
  for (size_t v = 0; v < r_; ++v) {
    estimates[v] = (lambda[v] - q_) / denom;
  }
  return estimates;
}

double DirectEncodingOracle::TheoreticalVariance(double pi_v,
                                                 int64_t n) const {
  MDRR_CHECK_GT(n, 0);
  double nd = static_cast<double>(n);
  double denom = p_ - q_;
  return q_ * (1.0 - q_) / (nd * denom * denom) +
         pi_v * (1.0 - p_ - q_) / (nd * denom);
}

UnaryEncodingOracle::UnaryEncodingOracle(size_t r, double epsilon,
                                         Variant variant)
    : r_(r), epsilon_(epsilon), variant_(variant) {
  MDRR_CHECK_GE(r, 2u);
  MDRR_CHECK_GT(epsilon, 0.0);
  if (variant == Variant::kSymmetric) {
    // Each report perturbs two bits "against" the truth in the worst
    // case, so each bit gets eps/2: p/(1-p) = e^{eps/2}.
    double half = std::exp(epsilon / 2.0);
    p_ = half / (half + 1.0);
    q_ = 1.0 - p_;
  } else {
    // OUE: p fixed at 1/2; q tuned so the full-report ratio is e^{eps}.
    p_ = 0.5;
    q_ = 1.0 / (std::exp(epsilon) + 1.0);
  }
}

std::vector<uint8_t> UnaryEncodingOracle::Randomize(uint32_t value,
                                                    Rng& rng) const {
  MDRR_CHECK_LT(value, r_);
  std::vector<uint8_t> bits(r_);
  for (size_t v = 0; v < r_; ++v) {
    double keep_one = (v == value) ? p_ : q_;
    bits[v] = rng.Bernoulli(keep_one) ? 1 : 0;
  }
  return bits;
}

StatusOr<std::vector<double>> UnaryEncodingOracle::EstimateFrequencies(
    const std::vector<int64_t>& bit_counts, int64_t n) const {
  if (bit_counts.size() != r_) {
    return Status::InvalidArgument("bit count vector size mismatch");
  }
  if (n <= 0) {
    return Status::InvalidArgument("sample size must be positive");
  }
  std::vector<double> estimates(r_);
  double denom = p_ - q_;
  for (size_t v = 0; v < r_; ++v) {
    double observed = static_cast<double>(bit_counts[v]) /
                      static_cast<double>(n);
    estimates[v] = (observed - q_) / denom;
  }
  return estimates;
}

StatusOr<std::vector<double>> UnaryEncodingOracle::EstimateFromReports(
    const std::vector<std::vector<uint8_t>>& reports) const {
  if (reports.empty()) {
    return Status::InvalidArgument("no reports to estimate from");
  }
  std::vector<int64_t> bit_counts(r_, 0);
  for (const std::vector<uint8_t>& report : reports) {
    if (report.size() != r_) {
      return Status::InvalidArgument("report length mismatch");
    }
    for (size_t v = 0; v < r_; ++v) bit_counts[v] += report[v];
  }
  return EstimateFrequencies(bit_counts,
                             static_cast<int64_t>(reports.size()));
}

double UnaryEncodingOracle::TheoreticalVariance(double pi_v,
                                                int64_t n) const {
  MDRR_CHECK_GT(n, 0);
  double nd = static_cast<double>(n);
  double denom = p_ - q_;
  return q_ * (1.0 - q_) / (nd * denom * denom) +
         pi_v * (1.0 - p_ - q_) / (nd * denom);
}

}  // namespace mdrr
