#include "mdrr/core/frequency_oracle.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mdrr/common/check.h"
#include "mdrr/core/estimator.h"

namespace mdrr {

namespace {

// OLH hash range: g = floor(e^eps) + 1 (Wang et al., Section 5.2), at
// least 2, capped so an extreme epsilon cannot blow up the bucket GRR
// domain (beyond the cap the mechanism is effectively noiseless anyway).
size_t OlhNumBuckets(double epsilon) {
  constexpr double kMaxBuckets = 1 << 20;
  const double raw = std::floor(std::exp(std::min(epsilon, 30.0))) + 1.0;
  return static_cast<size_t>(std::max(2.0, std::min(raw, kMaxBuckets)));
}

}  // namespace

const char* ToString(OracleBackend backend) {
  switch (backend) {
    case OracleBackend::kDirect:
      return "de";
    case OracleBackend::kSymmetricUnary:
      return "sue";
    case OracleBackend::kOptimizedUnary:
      return "oue";
    case OracleBackend::kLocalHashing:
      return "olh";
  }
  return "unknown";
}

StatusOr<OracleBackend> OracleBackendFromString(const std::string& token) {
  if (token == "de") return OracleBackend::kDirect;
  if (token == "sue") return OracleBackend::kSymmetricUnary;
  if (token == "oue") return OracleBackend::kOptimizedUnary;
  if (token == "olh") return OracleBackend::kLocalHashing;
  return Status::InvalidArgument("unknown oracle backend '" + token +
                                 "' (expected de|sue|oue|olh)");
}

StatusOr<std::vector<double>> FrequencyOracle::EstimateFromLambda(
    const std::vector<double>& lambda) const {
  if (lambda.size() != r_) {
    return Status::InvalidArgument("lambda size does not match domain size");
  }
  std::vector<double> estimates(r_);
  double denom = p_ - q_;
  for (size_t v = 0; v < r_; ++v) {
    estimates[v] = (lambda[v] - q_) / denom;
  }
  return estimates;
}

StatusOr<std::vector<double>> FrequencyOracle::EstimateFrequencies(
    const std::vector<int64_t>& counts, int64_t n) const {
  if (counts.size() != r_) {
    return Status::InvalidArgument("support count vector size mismatch");
  }
  if (n <= 0) {
    return Status::InvalidArgument("sample size must be positive");
  }
  std::vector<double> lambda(r_);
  for (size_t v = 0; v < r_; ++v) {
    lambda[v] = static_cast<double>(counts[v]) / static_cast<double>(n);
  }
  return EstimateFromLambda(lambda);
}

double FrequencyOracle::TheoreticalVariance(double pi_v, int64_t n) const {
  MDRR_CHECK_GT(n, 0);
  double nd = static_cast<double>(n);
  double denom = p_ - q_;
  return q_ * (1.0 - q_) / (nd * denom * denom) +
         pi_v * (1.0 - p_ - q_) / (nd * denom);
}

DirectEncodingOracle::DirectEncodingOracle(size_t r, double epsilon)
    : FrequencyOracle(r, epsilon),
      matrix_(RrMatrix::OptimalForEpsilon(r, epsilon)) {
  MDRR_CHECK_GE(r, 2u);
  MDRR_CHECK_GT(epsilon, 0.0);
  p_ = matrix_.Prob(0, 0);
  q_ = matrix_.Prob(0, 1);
}

DirectEncodingOracle::DirectEncodingOracle(RrMatrix matrix)
    : FrequencyOracle(matrix.size(), matrix.Epsilon()),
      matrix_(std::move(matrix)) {
  p_ = matrix_.Prob(0, 0);
  q_ = r_ > 1 ? matrix_.Prob(0, 1) : 0.0;
}

uint32_t DirectEncodingOracle::Randomize(uint32_t value, Rng& rng) const {
  return matrix_.Randomize(value, rng);
}

StatusOr<std::vector<double>> DirectEncodingOracle::EstimateFrequencies(
    const std::vector<uint32_t>& reports) const {
  if (reports.empty()) {
    return Status::InvalidArgument("no reports to estimate from");
  }
  return EstimateFromLambda(EmpiricalDistribution(reports, r_));
}

void DirectEncodingOracle::AccumulateRange(const std::vector<uint32_t>& codes,
                                           size_t begin, size_t end, Rng& rng,
                                           uint32_t* out,
                                           int64_t* counts) const {
  if (out != nullptr) {
    matrix_.RandomizeRangeInto(codes, begin, end, rng, out, counts);
    return;
  }
  // Frequency-only caller: the kernel still needs a code buffer (absolute
  // indexing), but the microdata is dropped.
  std::vector<uint32_t> scratch(end);
  matrix_.RandomizeRangeInto(codes, begin, end, rng, scratch.data(), counts);
}

void DirectEncodingOracle::AccumulateRangeCounter(
    const std::vector<uint32_t>& codes, size_t begin, size_t end,
    uint64_t seed, uint64_t stream, uint32_t* out, int64_t* counts) const {
  if (out != nullptr) {
    matrix_.RandomizeRangeCounterInto(codes, begin, end, seed, stream, out,
                                      counts);
    return;
  }
  std::vector<uint32_t> scratch(end);
  matrix_.RandomizeRangeCounterInto(codes, begin, end, seed, stream,
                                    scratch.data(), counts);
}

StatusOr<std::vector<double>> DirectEncodingOracle::EstimateFromLambda(
    const std::vector<double>& lambda) const {
  // The single implementation of the RR inversion: for uniform-mixture
  // matrices the structured Eq. (2) estimator evaluates the
  // (lambda - q)/(p - q) closed form in O(r) with no factorization.
  return EstimateDistribution(matrix_, lambda);
}

UnaryEncodingOracle::UnaryEncodingOracle(size_t r, double epsilon,
                                         Variant variant)
    : FrequencyOracle(r, epsilon), variant_(variant) {
  MDRR_CHECK_GE(r, 2u);
  MDRR_CHECK_GT(epsilon, 0.0);
  if (variant == Variant::kSymmetric) {
    // Each report perturbs two bits "against" the truth in the worst
    // case, so each bit gets eps/2: p/(1-p) = e^{eps/2}.
    double half = std::exp(epsilon / 2.0);
    p_ = half / (half + 1.0);
    q_ = 1.0 - p_;
  } else {
    // OUE: p fixed at 1/2; q tuned so the full-report ratio is e^{eps}.
    p_ = 0.5;
    q_ = 1.0 / (std::exp(epsilon) + 1.0);
  }
}

std::vector<uint8_t> UnaryEncodingOracle::Randomize(uint32_t value,
                                                    Rng& rng) const {
  MDRR_CHECK_LT(value, r_);
  std::vector<uint8_t> bits(r_);
  for (size_t v = 0; v < r_; ++v) {
    double keep_one = (v == value) ? p_ : q_;
    bits[v] = rng.Bernoulli(keep_one) ? 1 : 0;
  }
  return bits;
}

StatusOr<std::vector<double>> UnaryEncodingOracle::EstimateFromReports(
    const std::vector<std::vector<uint8_t>>& reports) const {
  if (reports.empty()) {
    return Status::InvalidArgument("no reports to estimate from");
  }
  std::vector<int64_t> bit_counts(r_, 0);
  for (const std::vector<uint8_t>& report : reports) {
    if (report.size() != r_) {
      return Status::InvalidArgument("report length mismatch");
    }
    for (size_t v = 0; v < r_; ++v) bit_counts[v] += report[v];
  }
  return EstimateFrequencies(bit_counts,
                             static_cast<int64_t>(reports.size()));
}

void UnaryEncodingOracle::AccumulateRange(const std::vector<uint32_t>& codes,
                                          size_t begin, size_t end, Rng& rng,
                                          uint32_t* /*out*/,
                                          int64_t* counts) const {
  MDRR_CHECK_LE(end, codes.size());
  // Per record, bits flip in value order -- the exact draw sequence of
  // Randomize, so batched and per-record paths share one transcript.
  for (size_t i = begin; i < end; ++i) {
    const uint32_t code = codes[i];
    MDRR_DCHECK_LT(code, r_);
    for (size_t v = 0; v < r_; ++v) {
      const bool bit = rng.Bernoulli(v == code ? p_ : q_);
      if (counts != nullptr && bit) ++counts[v];
    }
  }
}

void UnaryEncodingOracle::AccumulateRangeCounter(
    const std::vector<uint32_t>& codes, size_t begin, size_t end,
    uint64_t seed, uint64_t stream, uint32_t* /*out*/,
    int64_t* counts) const {
  MDRR_CHECK_LE(end, codes.size());
  // Record i's bit v owns element i * r + v: r elements per record, fixed
  // budget, so the draw plan is invariant under shard grain and threads.
  for (size_t i = begin; i < end; ++i) {
    const uint32_t code = codes[i];
    MDRR_DCHECK_LT(code, r_);
    const uint64_t base = static_cast<uint64_t>(i) * r_;
    for (size_t v = 0; v < r_; ++v) {
      const PhiloxBlock block = PhiloxElementBlock(seed, stream, base + v);
      const double unit = PhiloxUnitFromU64(
          (static_cast<uint64_t>(block.w[1]) << 32) | block.w[0]);
      const bool bit = unit < (v == code ? p_ : q_);
      if (counts != nullptr && bit) ++counts[v];
    }
  }
}

LocalHashingOracle::LocalHashingOracle(size_t r, double epsilon)
    : FrequencyOracle(r, epsilon),
      g_(OlhNumBuckets(epsilon)),
      grr_(RrMatrix::OptimalForEpsilon(g_, epsilon)) {
  MDRR_CHECK_GE(r, 2u);
  MDRR_CHECK_GT(epsilon, 0.0);
  p_ = grr_.Prob(0, 0);
  q_ = 1.0 / static_cast<double>(g_);
}

uint32_t LocalHashingOracle::HashBucket(uint64_t hash_seed, uint32_t value,
                                        size_t num_buckets) {
  // SplitMix64 finalizer over the (seed, value) pair: full avalanche,
  // then the fixed-budget multiplicative range reduction.
  uint64_t z = hash_seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<uint64_t>(value) + 1ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<uint32_t>(PhiloxBoundedFromRaw(z, num_buckets));
}

void LocalHashingOracle::AccumulateRange(const std::vector<uint32_t>& codes,
                                         size_t begin, size_t end, Rng& rng,
                                         uint32_t* /*out*/,
                                         int64_t* counts) const {
  MDRR_CHECK_LE(end, codes.size());
  for (size_t i = begin; i < end; ++i) {
    MDRR_DCHECK_LT(codes[i], r_);
    const uint64_t hash_seed = rng.engine()();
    const uint32_t bucket = HashBucket(hash_seed, codes[i], g_);
    const uint32_t y = grr_.Randomize(bucket, rng);
    if (counts == nullptr) continue;
    for (size_t v = 0; v < r_; ++v) {
      if (HashBucket(hash_seed, static_cast<uint32_t>(v), g_) == y) {
        ++counts[v];
      }
    }
  }
}

void LocalHashingOracle::AccumulateRangeCounter(
    const std::vector<uint32_t>& codes, size_t begin, size_t end,
    uint64_t seed, uint64_t stream, uint32_t* /*out*/,
    int64_t* counts) const {
  MDRR_CHECK_LE(end, codes.size());
  // Record i owns elements 2i (raw channel = its hash seed) and 2i + 1
  // (the bucket GRR's element block): two elements per record, fixed.
  for (size_t i = begin; i < end; ++i) {
    MDRR_DCHECK_LT(codes[i], r_);
    const uint64_t element = 2 * static_cast<uint64_t>(i);
    const PhiloxBlock block = PhiloxElementBlock(seed, stream, element);
    const uint64_t hash_seed =
        (static_cast<uint64_t>(block.w[3]) << 32) | block.w[2];
    const uint32_t bucket = HashBucket(hash_seed, codes[i], g_);
    const uint32_t y = grr_.RandomizeCounter(bucket, seed, stream,
                                             element + 1);
    if (counts == nullptr) continue;
    for (size_t v = 0; v < r_; ++v) {
      if (HashBucket(hash_seed, static_cast<uint32_t>(v), g_) == y) {
        ++counts[v];
      }
    }
  }
}

StatusOr<std::unique_ptr<FrequencyOracle>> MakeFrequencyOracle(
    OracleBackend backend, size_t r, double epsilon) {
  if (r < 2) {
    return Status::InvalidArgument(
        "frequency oracles need a domain of at least 2 categories");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "frequency oracles need a finite epsilon > 0");
  }
  switch (backend) {
    case OracleBackend::kDirect:
      return std::unique_ptr<FrequencyOracle>(
          new DirectEncodingOracle(r, epsilon));
    case OracleBackend::kSymmetricUnary:
      return std::unique_ptr<FrequencyOracle>(new UnaryEncodingOracle(
          r, epsilon, UnaryEncodingOracle::Variant::kSymmetric));
    case OracleBackend::kOptimizedUnary:
      return std::unique_ptr<FrequencyOracle>(new UnaryEncodingOracle(
          r, epsilon, UnaryEncodingOracle::Variant::kOptimized));
    case OracleBackend::kLocalHashing:
      return std::unique_ptr<FrequencyOracle>(
          new LocalHashingOracle(r, epsilon));
  }
  return Status::InvalidArgument("unknown oracle backend");
}

}  // namespace mdrr
