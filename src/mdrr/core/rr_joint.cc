#include "mdrr/core/rr_joint.h"

#include "mdrr/core/estimator.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_matrix.h"

namespace mdrr {

double ClusterEpsilonBudget(const Dataset& dataset,
                            const std::vector<size_t>& attributes,
                            double keep_probability, bool use_paper_formula) {
  double total = 0.0;
  for (size_t j : attributes) {
    size_t r = dataset.attribute(j).cardinality();
    total += use_paper_formula ? PaperKeepUniformEpsilon(r, keep_probability)
                               : KeepUniformEpsilon(r, keep_probability);
  }
  return total;
}

StatusOr<RrJointResult> RunRrJoint(const Dataset& dataset,
                                   const std::vector<size_t>& attributes,
                                   double epsilon, Rng& rng) {
  return RunRrJointWith(dataset, attributes, epsilon,
                        SequentialPerturber(rng));
}

StatusOr<RrJointResult> RunRrJointWith(const Dataset& dataset,
                                       const std::vector<size_t>& attributes,
                                       double epsilon,
                                       const ColumnPerturber& perturber) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot run RR-Joint on empty data");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("RR-Joint needs at least one attribute");
  }
  Domain domain = Domain::ForAttributes(dataset, attributes);
  if (domain.size() > (1ull << 31)) {
    return Status::OutOfRange(
        "joint domain has " + std::to_string(domain.size()) +
        " categories; too large to materialize (the curse of "
        "dimensionality of Section 3.2)");
  }
  const size_t r = static_cast<size_t>(domain.size());
  RrMatrix matrix = RrMatrix::OptimalForEpsilon(r, epsilon);

  std::vector<uint32_t> true_codes = domain.ComposeColumns(dataset, attributes);

  RrJointResult result{attributes, domain, {}, {}, {}, {}, 0.0};
  PerturbedColumn column = perturber(matrix, true_codes, 0);
  result.randomized_codes = std::move(column.codes);
  result.lambda = std::move(column.lambda);
  MDRR_ASSIGN_OR_RETURN(result.raw_estimated,
                        EstimateDistribution(matrix, result.lambda));
  result.estimated = ProjectToSimplex(result.raw_estimated);
  result.epsilon = matrix.Epsilon();
  return result;
}

}  // namespace mdrr
