#include "mdrr/core/rr_joint.h"

#include "mdrr/core/estimator.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_matrix.h"

namespace mdrr {

double ClusterEpsilonBudget(const Dataset& dataset,
                            const std::vector<size_t>& attributes,
                            double keep_probability, bool use_paper_formula) {
  double total = 0.0;
  for (size_t j : attributes) {
    size_t r = dataset.attribute(j).cardinality();
    total += use_paper_formula ? PaperKeepUniformEpsilon(r, keep_probability)
                               : KeepUniformEpsilon(r, keep_probability);
  }
  return total;
}

StatusOr<RrJointResult> RunRrJoint(const Dataset& dataset,
                                   const std::vector<size_t>& attributes,
                                   double epsilon, Rng& rng) {
  return RunRrJointWith(dataset, attributes, epsilon,
                        SequentialPerturber(rng));
}

StatusOr<RrJointResult> RunRrJointWith(const Dataset& dataset,
                                       const std::vector<size_t>& attributes,
                                       double epsilon,
                                       const ColumnPerturber& perturber) {
  MDRR_ASSIGN_OR_RETURN(RrJointPerturbation perturbation,
                        PerturbRrJoint(dataset, attributes, epsilon,
                                       perturber));
  return EstimateRrJoint(std::move(perturbation));
}

StatusOr<RrJointPerturbation> PerturbRrJoint(
    const Dataset& dataset, const std::vector<size_t>& attributes,
    double epsilon, const ColumnPerturber& perturber) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot run RR-Joint on empty data");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("RR-Joint needs at least one attribute");
  }
  // Size the product domain with per-multiply overflow detection BEFORE
  // constructing the Domain: with enough moderate-cardinality attributes
  // the mixed-radix product wraps 64 bits long before any "> 2^31" test
  // could fire, and the Domain constructor treats that as a programmer
  // error (CHECK-abort) rather than bad input.
  MDRR_ASSIGN_OR_RETURN(uint64_t domain_size,
                        Domain::CheckedSizeForAttributes(dataset, attributes));
  if (domain_size > (1ull << 31)) {
    return Status::OutOfRange(
        "joint domain has " + std::to_string(domain_size) +
        " categories; too large to materialize (the curse of "
        "dimensionality of Section 3.2)");
  }
  Domain domain = Domain::ForAttributes(dataset, attributes);
  const size_t r = static_cast<size_t>(domain.size());
  RrMatrix matrix = RrMatrix::OptimalForEpsilon(r, epsilon);

  std::vector<uint32_t> true_codes = domain.ComposeColumns(dataset, attributes);

  PerturbedColumn column = perturber(matrix, true_codes, 0);
  return RrJointPerturbation{attributes, std::move(domain), std::move(matrix),
                             std::move(column.codes),
                             std::move(column.lambda)};
}

StatusOr<RrJointResult> EstimateRrJoint(RrJointPerturbation perturbation,
                                        const EstimationOptions& options) {
  RrJointResult result{std::move(perturbation.attributes),
                       std::move(perturbation.domain),
                       std::move(perturbation.randomized_codes),
                       std::move(perturbation.lambda),
                       {},
                       {},
                       0.0};
  MDRR_ASSIGN_OR_RETURN(
      result.raw_estimated,
      EstimateDistribution(perturbation.matrix, result.lambda, options));
  result.estimated = ProjectToSimplex(result.raw_estimated);
  result.epsilon = perturbation.matrix.Epsilon();
  return result;
}

}  // namespace mdrr
