// Frequency estimation from randomized responses.
//
// The unbiased estimator of Eq. (2): π̂ = (Pᵀ)⁻¹ λ̂, where λ̂ is the
// empirical distribution of the randomized data. Because π̂ may leave the
// probability simplex, two repair strategies are provided:
//   * ProjectToSimplex -- the paper's Section 6.4 procedure (clamp
//     negatives to zero, rescale to sum 1);
//   * IterativeBayesianUpdate -- the EM-style update the paper cites from
//     Alvim et al. [2], which converges to a proper distribution.

#ifndef MDRR_CORE_ESTIMATOR_H_
#define MDRR_CORE_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_matrix.h"

namespace mdrr {

// Threading for the estimation backend. Every estimator below is
// bit-identical for any num_threads at fixed inputs (parallel work is
// partitioned into per-output slots with no cross-thread reductions), so
// the thread count is purely a speed knob -- same contract as the PR 2
// sharded stages.
struct EstimationOptions {
  // Workers for batched solves and per-category variance loops
  // (0 = one per hardware core).
  size_t num_threads = 1;
};

// Empirical distribution λ̂ of a column of category codes.
// Precondition: every code < num_categories.
std::vector<double> EmpiricalDistribution(const std::vector<uint32_t>& codes,
                                          size_t num_categories);

// Eq. (2): the raw unbiased estimate (entries may be < 0 or > 1).
// O(r) for structured P; dense P pays one blocked parallel LU
// factorization (cached on the matrix) plus an O(r²) substitution.
// Fails if sizes mismatch or P is singular.
StatusOr<std::vector<double>> EstimateDistribution(
    const RrMatrix& p, const std::vector<double>& lambda_hat,
    const EstimationOptions& options = {});

// Section 6.4: the proper distribution closest to `v` under the paper's
// clamp-and-rescale rule. If no entry is positive, returns uniform.
std::vector<double> ProjectToSimplex(const std::vector<double>& v);

// Eq. (2) followed by ProjectToSimplex.
StatusOr<std::vector<double>> EstimateProjectedDistribution(
    const RrMatrix& p, const std::vector<double>& lambda_hat,
    const EstimationOptions& options = {});

// Variance of the Eq. (2) estimator (the "unbiased estimator of the
// dispersion matrix" of Chaudhuri-Mukerjee cited in Section 2.1):
// Var(π̂) = diag of (Pᵀ)⁻¹ Σ P⁻¹ with Σ = (diag(λ) - λ λᵀ)/n, the
// multinomial covariance of λ̂. Returns per-category variances.
//
// Structured P uses the O(r) closed form: the u-th column of P⁻¹ is
// e_u/a - c·1 with c = b/(a(a+rb)), so each variance is O(1) given
// Σ_v λ_v. Dense P solves the r unit-vector systems through
// SolveTransposeMany (one factorization, parallel substitutions) and
// evaluates the per-category moments in parallel. Fails on size
// mismatch, singular P, or n <= 0.
StatusOr<std::vector<double>> EstimateVariances(
    const RrMatrix& p, const std::vector<double>& lambda_hat, int64_t n,
    const EstimationOptions& options = {});

// Symmetric two-sided confidence half-widths for each entry of π̂ at
// simultaneous level 1 - alpha (Bonferroni over categories, normal
// approximation): half_width[u] = z_{1 - alpha/(2r)} * sqrt(Var(π̂_u)).
StatusOr<std::vector<double>> EstimateConfidenceHalfWidths(
    const RrMatrix& p, const std::vector<double>& lambda_hat, int64_t n,
    double alpha, const EstimationOptions& options = {});

struct IterativeBayesianOptions {
  int max_iterations = 200;
  // Stop when max_u |π_{t+1}(u) - π_t(u)| < tolerance.
  double tolerance = 1e-10;
};

// Iterative Bayesian update (Agrawal-Aggarwal / Alvim et al. style EM):
//   π_{t+1}(u) = Σ_v λ̂(v) · π_t(u) p_uv / Σ_w π_t(w) p_wv.
// Always yields a proper distribution; it is the maximum-likelihood
// estimate of π in the limit. Starts from the uniform distribution.
StatusOr<std::vector<double>> IterativeBayesianUpdate(
    const RrMatrix& p, const std::vector<double>& lambda_hat,
    const IterativeBayesianOptions& options = {});

}  // namespace mdrr

#endif  // MDRR_CORE_ESTIMATOR_H_
