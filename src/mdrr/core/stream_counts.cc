#include "mdrr/core/stream_counts.h"

namespace mdrr {

WindowedCounts::WindowedCounts(std::vector<size_t> cardinalities,
                               uint64_t stride, size_t ring_buckets,
                               size_t num_shards)
    : cardinalities_(std::move(cardinalities)),
      stride_(stride),
      ring_(ring_buckets),
      num_shards_(num_shards) {
  MDRR_CHECK_GT(stride_, 0u);
  MDRR_CHECK_GE(ring_, 1u);
  MDRR_CHECK_GE(num_shards_, 1u);
  MDRR_CHECK(!cardinalities_.empty());
  offsets_.resize(cardinalities_.size());
  width_ = 0;
  for (size_t j = 0; j < cardinalities_.size(); ++j) {
    MDRR_CHECK_GT(cardinalities_[j], 0u);
    offsets_[j] = width_;
    width_ += cardinalities_[j];
  }
  counts_.assign(ring_ * num_shards_ * width_, 0);
  drained_ = std::vector<std::atomic<uint64_t>>(ring_);
  for (auto& d : drained_) d.store(0, std::memory_order_relaxed);
  frontier_.store(0, std::memory_order_relaxed);
}

std::vector<int64_t> WindowedCounts::MergedCounts(uint64_t bucket) const {
  const size_t slot = static_cast<size_t>(bucket % ring_);
  std::vector<int64_t> merged(width_, 0);
  for (size_t shard = 0; shard < num_shards_; ++shard) {
    const int64_t* row = RowFor(slot, shard);
    for (size_t i = 0; i < width_; ++i) merged[i] += row[i];
  }
  return merged;
}

void WindowedCounts::RestoreBucket(uint64_t bucket,
                                   const std::vector<int64_t>& counts,
                                   uint64_t num_reports) {
  MDRR_CHECK_EQ(counts.size(), width_);
  const size_t slot = static_cast<size_t>(bucket % ring_);
  MDRR_CHECK_EQ(drained_[slot].load(std::memory_order_relaxed), 0u);
  int64_t* row = RowFor(slot, /*shard=*/0);
  for (size_t i = 0; i < width_; ++i) row[i] = counts[i];
  drained_[slot].store(num_reports, std::memory_order_release);
}

void WindowedCounts::RetireThrough(uint64_t through) {
  uint64_t front = frontier_.load(std::memory_order_relaxed);
  if (through + 1 <= front) return;
  // Each slot needs zeroing at most once, so a frontier jump far beyond
  // the ring (a snapshot resume deep into a stream) costs O(ring), not
  // O(distance).
  if (through - front + 1 > ring_) front = through + 1 - ring_;
  for (uint64_t bucket = front; bucket <= through; ++bucket) {
    const size_t slot = static_cast<size_t>(bucket % ring_);
    int64_t* base = RowFor(slot, /*shard=*/0);
    for (size_t i = 0; i < num_shards_ * width_; ++i) base[i] = 0;
    drained_[slot].store(0, std::memory_order_relaxed);
  }
  // Release-publishes the zeroed slots: producers acquire the frontier
  // before submitting into the re-opened sequence range, and their
  // submissions reach the drain threads through the channel's own
  // release/acquire edges.
  frontier_.store(through + 1, std::memory_order_release);
}

}  // namespace mdrr
