#include "mdrr/core/adjustment.h"

#include <algorithm>
#include <cmath>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"

namespace mdrr {

namespace {

// The normalized reweighting table of one Adjust_weights step (Algorithm
// 2 lines 6-7). ratio[v] = target[v] / implied[v] rescales the group's
// implied marginal onto its target; dividing the whole table by the
// post-rescale total mass (which is just the target mass of the
// reachable categories -- no record scan needed) folds the
// renormalization of the sequential algorithm into the same multiply.
std::vector<double> NormalizedRatio(const std::vector<double>& implied,
                                    const std::vector<double>& target) {
  std::vector<double> ratio(target.size(), 1.0);
  double total_after = 0.0;
  for (size_t v = 0; v < target.size(); ++v) {
    if (implied[v] > 0.0) {
      ratio[v] = target[v] / implied[v];
      total_after += target[v];
    }
    // Categories with zero implied mass cannot be repaired by
    // reweighting (no record carries them); their target mass is
    // unreachable and shows up in max_marginal_gap.
  }
  MDRR_CHECK_GT(total_after, 0.0);
  for (double& r : ratio) r /= total_after;
  return ratio;
}

}  // namespace

StatusOr<AdjustmentResult> RunRrAdjustment(
    const std::vector<AdjustmentGroup>& groups, size_t num_records,
    const AdjustmentOptions& options) {
  if (groups.empty()) {
    return Status::InvalidArgument("adjustment needs at least one group");
  }
  if (num_records == 0) {
    return Status::InvalidArgument("adjustment needs at least one record");
  }
  for (const AdjustmentGroup& group : groups) {
    if (group.codes.size() != num_records) {
      return Status::InvalidArgument("group code vector size mismatch");
    }
    double total = 0.0;
    for (double t : group.target) {
      if (t < 0.0) {
        return Status::InvalidArgument("target distribution has negatives");
      }
      total += t;
    }
    if (std::fabs(total - 1.0) > 1e-6) {
      return Status::InvalidArgument("target distribution does not sum to 1");
    }
    for (uint32_t code : group.codes) {
      if (code >= group.target.size()) {
        return Status::InvalidArgument("group code out of target range");
      }
    }
  }

  const size_t n = num_records;
  const size_t num_groups = groups.size();
  const size_t chunk_size = std::max<size_t>(1, options.chunk_size);
  const size_t num_chunks = NumChunks(n, chunk_size);

  // Flattened layout of all groups' marginals for the combined last pass:
  // group g occupies [group_offset[g], group_offset[g] + |target_g|).
  std::vector<size_t> group_offset(num_groups);
  size_t total_width = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    group_offset[g] = total_width;
    total_width += groups[g].target.size();
  }

  AdjustmentResult result;
  result.weights.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double>& weights = result.weights;

  // Reused per-chunk partial buffers: one group's marginal for the
  // middle passes, all groups' marginals for the last pass.
  std::vector<ChunkedDoubleAccumulator> one_group_pool;
  one_group_pool.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    one_group_pool.emplace_back(num_chunks, groups[g].target.size());
  }
  ChunkedDoubleAccumulator all_groups(num_chunks, total_width);
  std::vector<double> all_implied(total_width, 0.0);

  // implied marginal of group 0 under the current weights; maintained
  // across iterations by the combined last pass.
  std::vector<double> implied(groups[0].target.size(), 0.0);
  ParallelChunks(n, chunk_size, options.num_threads,
                 [&](size_t /*worker*/, size_t chunk, size_t begin,
                     size_t end) {
                   double* row = one_group_pool[0].Row(chunk);
                   const uint32_t* codes = groups[0].codes.data();
                   for (size_t i = begin; i < end; ++i) {
                     row[codes[i]] += weights[i];
                   }
                 });
  one_group_pool[0].ReduceInto(implied.data());
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (size_t g = 0; g < num_groups; ++g) {
      // `implied` holds group g's marginal under the weights after
      // groups 0..g-1 were updated this iteration.
      std::vector<double> ratio = NormalizedRatio(implied, groups[g].target);
      const uint32_t* codes_g = groups[g].codes.data();

      if (g + 1 < num_groups) {
        // Middle pass: apply group g's ratio and accumulate group g+1's
        // implied marginal in the same scan.
        ChunkedDoubleAccumulator& acc = one_group_pool[g + 1];
        acc.Reset();
        const uint32_t* codes_next = groups[g + 1].codes.data();
        ParallelChunks(n, chunk_size, options.num_threads,
                       [&](size_t /*worker*/, size_t chunk, size_t begin,
                           size_t end) {
                         double* row = acc.Row(chunk);
                         for (size_t i = begin; i < end; ++i) {
                           double w = weights[i] * ratio[codes_g[i]];
                           weights[i] = w;
                           row[codes_next[i]] += w;
                         }
                       });
        implied.assign(groups[g + 1].target.size(), 0.0);
        acc.ReduceInto(implied.data());
      } else {
        // Last pass of the iteration: apply the final ratio and
        // accumulate every group's implied marginal at once -- the
        // convergence test and next iteration's first group both read
        // from this single scan.
        all_groups.Reset();
        if (num_groups == 1) {
          // One group means offset 0 and codes_g is the only code vector:
          // the h-loop collapses to a single flat accumulate (same
          // additions in the same order, just without the indirection).
          ParallelChunks(n, chunk_size, options.num_threads,
                         [&](size_t /*worker*/, size_t chunk, size_t begin,
                             size_t end) {
                           double* row = all_groups.Row(chunk);
                           for (size_t i = begin; i < end; ++i) {
                             double w = weights[i] * ratio[codes_g[i]];
                             weights[i] = w;
                             row[codes_g[i]] += w;
                           }
                         });
        } else {
          // Hoist each group's code pointer + flattened base offset out
          // of the record loop; the inner loop then runs on two flat
          // arrays instead of chasing groups[h] members per record.
          std::vector<const uint32_t*> scan_codes(num_groups);
          for (size_t h = 0; h < num_groups; ++h) {
            scan_codes[h] = groups[h].codes.data();
          }
          const size_t* offsets = group_offset.data();
          ParallelChunks(n, chunk_size, options.num_threads,
                         [&](size_t /*worker*/, size_t chunk, size_t begin,
                             size_t end) {
                           double* row = all_groups.Row(chunk);
                           for (size_t i = begin; i < end; ++i) {
                             double w = weights[i] * ratio[codes_g[i]];
                             weights[i] = w;
                             for (size_t h = 0; h < num_groups; ++h) {
                               row[offsets[h] + scan_codes[h][i]] += w;
                             }
                           }
                         });
        }
        all_groups.ReduceInto(all_implied.data());
      }
    }
    result.iterations = iter + 1;

    // Convergence test: largest marginal gap across all groups, measured
    // on the end-of-iteration weights (same semantics as the sequential
    // three-scan algorithm).
    double max_gap = 0.0;
    for (size_t g = 0; g < num_groups; ++g) {
      const double* implied_g = all_implied.data() + group_offset[g];
      for (size_t v = 0; v < groups[g].target.size(); ++v) {
        max_gap = std::max(max_gap,
                           std::fabs(implied_g[v] - groups[g].target[v]));
      }
    }
    result.max_marginal_gap = max_gap;
    if (max_gap < options.tolerance) {
      result.converged = true;
      break;
    }
    implied.assign(all_implied.data(),
                   all_implied.data() + groups[0].target.size());
  }

  // The folded renormalization keeps the total at 1 only up to one
  // rounding per iteration; settle the invariant exactly with one final
  // chunk-ordered reduction.
  ChunkedDoubleAccumulator totals(num_chunks, 1);
  ParallelChunks(n, chunk_size, options.num_threads,
                 [&](size_t /*worker*/, size_t chunk, size_t begin,
                     size_t end) {
                   double sum = 0.0;
                   for (size_t i = begin; i < end; ++i) sum += weights[i];
                   *totals.Row(chunk) = sum;
                 });
  double total = 0.0;
  totals.ReduceInto(&total);
  MDRR_CHECK_GT(total, 0.0);
  ParallelChunks(n, chunk_size, options.num_threads,
                 [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                     size_t end) {
                   for (size_t i = begin; i < end; ++i) weights[i] /= total;
                 });
  return result;
}

std::vector<AdjustmentGroup> GroupsFromIndependent(
    const RrIndependentResult& result) {
  std::vector<AdjustmentGroup> groups;
  groups.reserve(result.randomized.num_attributes());
  for (size_t j = 0; j < result.randomized.num_attributes(); ++j) {
    groups.push_back(
        AdjustmentGroup{result.randomized.column(j), result.estimated[j]});
  }
  return groups;
}

std::vector<AdjustmentGroup> GroupsFromClusters(
    const RrClustersResult& result) {
  std::vector<AdjustmentGroup> groups;
  groups.reserve(result.cluster_results.size());
  for (const RrJointResult& joint : result.cluster_results) {
    groups.push_back(
        AdjustmentGroup{joint.randomized_codes, joint.estimated});
  }
  return groups;
}

StatusOr<WeightedRecordsEstimate> MakeAdjustedEstimate(
    const RrIndependentResult& result, const AdjustmentOptions& options) {
  MDRR_ASSIGN_OR_RETURN(
      AdjustmentResult adjustment,
      RunRrAdjustment(GroupsFromIndependent(result),
                      result.randomized.num_rows(), options));
  return WeightedRecordsEstimate(result.randomized,
                                 std::move(adjustment.weights));
}

StatusOr<WeightedRecordsEstimate> MakeAdjustedEstimate(
    const RrClustersResult& result, const AdjustmentOptions& options) {
  MDRR_ASSIGN_OR_RETURN(
      AdjustmentResult adjustment,
      RunRrAdjustment(GroupsFromClusters(result),
                      result.randomized.num_rows(), options));
  return WeightedRecordsEstimate(result.randomized,
                                 std::move(adjustment.weights));
}

}  // namespace mdrr
