#include "mdrr/core/adjustment.h"

#include <cmath>

#include "mdrr/common/check.h"

namespace mdrr {

StatusOr<AdjustmentResult> RunRrAdjustment(
    const std::vector<AdjustmentGroup>& groups, size_t num_records,
    const AdjustmentOptions& options) {
  if (groups.empty()) {
    return Status::InvalidArgument("adjustment needs at least one group");
  }
  if (num_records == 0) {
    return Status::InvalidArgument("adjustment needs at least one record");
  }
  for (const AdjustmentGroup& group : groups) {
    if (group.codes.size() != num_records) {
      return Status::InvalidArgument("group code vector size mismatch");
    }
    double total = 0.0;
    for (double t : group.target) {
      if (t < 0.0) {
        return Status::InvalidArgument("target distribution has negatives");
      }
      total += t;
    }
    if (std::fabs(total - 1.0) > 1e-6) {
      return Status::InvalidArgument("target distribution does not sum to 1");
    }
    for (uint32_t code : group.codes) {
      if (code >= group.target.size()) {
        return Status::InvalidArgument("group code out of target range");
      }
    }
  }

  AdjustmentResult result;
  result.weights.assign(num_records, 1.0 / static_cast<double>(num_records));

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // One sweep of Adjust_weights over every group (Algorithm 2 lines
    // 6-7): rescale weights so the group's implied marginal matches its
    // target.
    for (const AdjustmentGroup& group : groups) {
      std::vector<double> implied(group.target.size(), 0.0);
      for (size_t i = 0; i < num_records; ++i) {
        implied[group.codes[i]] += result.weights[i];
      }
      // w_i *= target(v) / s_v for v = the record's category. Categories
      // with zero implied mass cannot be repaired by reweighting; their
      // target mass is unreachable and shows up in max_marginal_gap.
      std::vector<double> ratio(group.target.size(), 1.0);
      for (size_t v = 0; v < ratio.size(); ++v) {
        if (implied[v] > 0.0) ratio[v] = group.target[v] / implied[v];
      }
      for (size_t i = 0; i < num_records; ++i) {
        result.weights[i] *= ratio[group.codes[i]];
      }
      // Renormalize: unreachable target mass would otherwise shrink the
      // total below 1.
      double total = 0.0;
      for (double w : result.weights) total += w;
      MDRR_CHECK_GT(total, 0.0);
      for (double& w : result.weights) w /= total;
    }
    result.iterations = iter + 1;

    // Convergence test: largest marginal gap across all groups.
    double max_gap = 0.0;
    for (const AdjustmentGroup& group : groups) {
      std::vector<double> implied(group.target.size(), 0.0);
      for (size_t i = 0; i < num_records; ++i) {
        implied[group.codes[i]] += result.weights[i];
      }
      for (size_t v = 0; v < implied.size(); ++v) {
        max_gap = std::max(max_gap, std::fabs(implied[v] - group.target[v]));
      }
    }
    result.max_marginal_gap = max_gap;
    if (max_gap < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<AdjustmentGroup> GroupsFromIndependent(
    const RrIndependentResult& result) {
  std::vector<AdjustmentGroup> groups;
  groups.reserve(result.randomized.num_attributes());
  for (size_t j = 0; j < result.randomized.num_attributes(); ++j) {
    groups.push_back(
        AdjustmentGroup{result.randomized.column(j), result.estimated[j]});
  }
  return groups;
}

std::vector<AdjustmentGroup> GroupsFromClusters(
    const RrClustersResult& result) {
  std::vector<AdjustmentGroup> groups;
  groups.reserve(result.cluster_results.size());
  for (const RrJointResult& joint : result.cluster_results) {
    groups.push_back(
        AdjustmentGroup{joint.randomized_codes, joint.estimated});
  }
  return groups;
}

StatusOr<WeightedRecordsEstimate> MakeAdjustedEstimate(
    const RrIndependentResult& result, const AdjustmentOptions& options) {
  MDRR_ASSIGN_OR_RETURN(
      AdjustmentResult adjustment,
      RunRrAdjustment(GroupsFromIndependent(result),
                      result.randomized.num_rows(), options));
  return WeightedRecordsEstimate(result.randomized,
                                 std::move(adjustment.weights));
}

StatusOr<WeightedRecordsEstimate> MakeAdjustedEstimate(
    const RrClustersResult& result, const AdjustmentOptions& options) {
  MDRR_ASSIGN_OR_RETURN(
      AdjustmentResult adjustment,
      RunRrAdjustment(GroupsFromClusters(result),
                      result.randomized.num_rows(), options));
  return WeightedRecordsEstimate(result.randomized,
                                 std::move(adjustment.weights));
}

}  // namespace mdrr
