// Synthetic microdata release (Introduction / Section 3.2): re-create a
// data set by "repeating each combination of attribute values as many
// times as dictated by its frequency in the estimated joint distribution".
// Counts are apportioned deterministically by largest remainder; record
// order is shuffled so that cross-group independence is not distorted by
// sorting artifacts.

#ifndef MDRR_CORE_SYNTHETIC_H_
#define MDRR_CORE_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

// Largest-remainder apportionment of `n` records over `distribution`
// (entries clamped at 0 and renormalized if needed). The result sums to n.
std::vector<int64_t> ApportionCounts(const std::vector<double>& distribution,
                                     int64_t n);

// Splits apportioned category counts across record shards of
// `shard_size` (the last shard may be short). Shard s receives a
// largest-remainder-proportional slice of every category's remaining
// count, so each shard's composition tracks the global distribution
// while the per-shard row counts and the per-category totals are both
// met exactly. Deterministic (integer arithmetic, ties by category
// index). Preconditions: counts sum to n, n > 0, shard_size > 0.
std::vector<std::vector<int64_t>> ApportionCountsAcrossShards(
    const std::vector<int64_t>& counts, int64_t n, size_t shard_size);

// Synthetic data from RR-Independent estimates: each attribute column is
// apportioned from its estimated marginal and shuffled independently.
StatusOr<Dataset> SynthesizeFromIndependent(const RrIndependentResult& result,
                                            int64_t n, Rng& rng);

// Synthetic data from RR-Clusters estimates: each cluster's composite
// column is apportioned from the estimated cluster joint, shuffled, and
// decoded into the cluster's attributes; clusters are independent.
StatusOr<Dataset> SynthesizeFromClusters(const RrClustersResult& result,
                                         int64_t n, Rng& rng);

// --- Sharded synthesis (the batch-engine path) ---
//
// The sequential functions above expand each column once and run one
// global O(n) shuffle on a single stream. The sharded forms instead
// apportion each column's counts across record shards
// (ApportionCountsAcrossShards) and shuffle every shard with its own
// deterministic sub-stream: column (or cluster) c's shard s draws from
// family.Stream(1 + c * num_shards + s), mirroring the
// BatchPerturbationEngine stream layout. Output is a pure function of
// (estimates, n, family, shard_size) -- bit-identical for any thread
// count -- but draws different bits than the sequential functions.

StatusOr<Dataset> SynthesizeFromIndependentSharded(
    const RrIndependentResult& result, int64_t n,
    const RngStreamFamily& family, size_t shard_size, size_t num_threads);

StatusOr<Dataset> SynthesizeFromClustersSharded(
    const RrClustersResult& result, int64_t n, const RngStreamFamily& family,
    size_t shard_size, size_t num_threads);

}  // namespace mdrr

#endif  // MDRR_CORE_SYNTHETIC_H_
