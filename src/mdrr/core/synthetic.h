// Synthetic microdata release (Introduction / Section 3.2): re-create a
// data set by "repeating each combination of attribute values as many
// times as dictated by its frequency in the estimated joint distribution".
// Counts are apportioned deterministically by largest remainder; record
// order is shuffled so that cross-group independence is not distorted by
// sorting artifacts.

#ifndef MDRR_CORE_SYNTHETIC_H_
#define MDRR_CORE_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

// Largest-remainder apportionment of `n` records over `distribution`
// (entries clamped at 0 and renormalized if needed). The result sums to n.
std::vector<int64_t> ApportionCounts(const std::vector<double>& distribution,
                                     int64_t n);

// Synthetic data from RR-Independent estimates: each attribute column is
// apportioned from its estimated marginal and shuffled independently.
StatusOr<Dataset> SynthesizeFromIndependent(const RrIndependentResult& result,
                                            int64_t n, Rng& rng);

// Synthetic data from RR-Clusters estimates: each cluster's composite
// column is apportioned from the estimated cluster joint, shuffled, and
// decoded into the cluster's attributes; clusters are independent.
StatusOr<Dataset> SynthesizeFromClusters(const RrClustersResult& result,
                                         int64_t n, Rng& rng);

}  // namespace mdrr

#endif  // MDRR_CORE_SYNTHETIC_H_
