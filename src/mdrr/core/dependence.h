// Attribute dependence measures (Section 4, Expressions (8) and (9)):
// |Pearson r| for ordinal-ordinal pairs, Cramér's V when any attribute is
// nominal. Both lie in [0, 1], so mixed comparisons are meaningful.

#ifndef MDRR_CORE_DEPENDENCE_H_
#define MDRR_CORE_DEPENDENCE_H_

#include <cstdint>
#include <vector>

#include "mdrr/dataset/dataset.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr {

// Selectable dependence statistic. kPaperAuto is the paper's rule
// (|Pearson| for ordinal pairs, Cramér's V otherwise); the others force
// one statistic regardless of attribute types. All are bounded in [0, 1],
// so any of them can drive Algorithm 1.
enum class DependenceMeasure {
  kPaperAuto,
  kCramersV,
  kAbsPearson,
  kNormalizedMutualInformation,
};

// Dependence in [0, 1] between two code columns given their measurement
// types and cardinalities. Ordinal codes are treated as ranks.
double DependenceBetweenColumns(const std::vector<uint32_t>& codes_a,
                                size_t cardinality_a, AttributeType type_a,
                                const std::vector<uint32_t>& codes_b,
                                size_t cardinality_b, AttributeType type_b);

// Normalized mutual information I(A;B) / min(H(A), H(B)) in [0, 1];
// 0 when either variable is constant. Natural-log entropies.
double NormalizedMutualInformation(const std::vector<uint32_t>& codes_a,
                                   size_t cardinality_a,
                                   const std::vector<uint32_t>& codes_b,
                                   size_t cardinality_b);

// NMI from a joint weight table (probabilities or counts; negatives are
// clamped to 0), row-major [cardinality_a x cardinality_b].
double NormalizedMutualInformationFromJoint(const std::vector<double>& joint,
                                            size_t cardinality_a,
                                            size_t cardinality_b);

// Pairwise dependence matrix under an explicit measure choice.
linalg::Matrix DependenceMatrixWithMeasure(const Dataset& dataset,
                                           DependenceMeasure measure);

// Threading knobs for the sharded dependence assessment. The record
// chunk size is purely a load-balancing grain here: per-pair joint
// counts are integers, and integer sums commute exactly, so the sharded
// matrix is bit-identical for ANY thread count and ANY chunk size.
struct DependenceShardingOptions {
  // Worker threads; 0 means one per hardware core.
  size_t num_threads = 1;
  // Records per work unit when a pair's contingency accumulation is
  // sharded over record ranges. 0 is clamped to 1.
  size_t record_chunk_size = 1 << 16;
};

// Sharded pairwise dependence matrix: the O(d^2) pair grid is split
// across workers, and when the grid alone cannot feed every worker the
// per-pair contingency accumulation is sharded over record ranges
// instead, with per-worker count buffers merged by
// stats::FrequencyTable::Absorb. Every statistic is computed from the
// pair's exact joint counts, so the output is a pure function of the
// data and the measure -- independent of thread count and chunk size.
// Cramér's V and NMI values are bitwise equal to the sequential
// functions above; |Pearson| is computed from the joint table rather
// than the raw columns and may differ from them in the last few ulps.
linalg::Matrix DependenceMatrixSharded(
    const Dataset& dataset, DependenceMeasure measure,
    const DependenceShardingOptions& options);

// Dependence between attributes i and j of `dataset`.
double DependenceBetween(const Dataset& dataset, size_t i, size_t j);

// Symmetric m x m matrix of pairwise dependences (diagonal = 1).
linalg::Matrix DependenceMatrix(const Dataset& dataset);

// Dependence computed from a bivariate distribution rather than raw codes
// (used by the Section 4.2/4.3 estimators, which only see joint tables).
// `joint` is row-major [cardinality_a x cardinality_b] and may hold
// probabilities or counts; `n` is the effective sample size for chi².
double DependenceFromJoint(const std::vector<double>& joint,
                           size_t cardinality_a, AttributeType type_a,
                           size_t cardinality_b, AttributeType type_b,
                           double n);

// |Pearson correlation| computed from a joint table over code values.
double AbsPearsonFromJoint(const std::vector<double>& joint,
                           size_t cardinality_a, size_t cardinality_b);

}  // namespace mdrr

#endif  // MDRR_CORE_DEPENDENCE_H_
