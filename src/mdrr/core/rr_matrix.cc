#include "mdrr/core/rr_matrix.h"

#include <cmath>
#include <limits>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"
#include "mdrr/linalg/lu.h"

namespace mdrr {

RrMatrix::RrMatrix(size_t size, linalg::UniformMixture structured)
    : size_(size),
      structured_(structured),
      // The same product the per-draw path historically evaluated, so the
      // Bernoulli threshold is bit-identical to recomputing it per call.
      structured_alpha_(static_cast<double>(size) *
                        structured.off_diagonal) {}

RrMatrix::RrMatrix(size_t size, linalg::Matrix dense)
    : size_(size), dense_(std::move(dense)),
      transpose_lu_(std::make_shared<TransposeLuCell>()) {
  row_samplers_.reserve(size_);
  dense_thresholds_.reserve(size_ * size_);
  dense_aliases_.reserve(size_ * size_);
  for (size_t u = 0; u < size_; ++u) {
    row_samplers_.emplace_back(dense_->Row(u));
    row_samplers_.back().AppendTables(dense_thresholds_, dense_aliases_);
  }
}

RrMatrix RrMatrix::KeepUniform(size_t r, double keep_probability) {
  MDRR_CHECK_GE(r, 1u);
  MDRR_CHECK_GE(keep_probability, 0.0);
  MDRR_CHECK_LE(keep_probability, 1.0);
  double rd = static_cast<double>(r);
  double off = (1.0 - keep_probability) / rd;
  return RrMatrix(
      r, linalg::UniformMixture{r, keep_probability + off, off});
}

RrMatrix RrMatrix::FlatOffDiagonal(size_t r, double diagonal_p) {
  MDRR_CHECK_GE(r, 2u);
  MDRR_CHECK_GE(diagonal_p, 0.0);
  MDRR_CHECK_LE(diagonal_p, 1.0);
  double off = (1.0 - diagonal_p) / static_cast<double>(r - 1);
  return RrMatrix(r, linalg::UniformMixture{r, diagonal_p, off});
}

RrMatrix RrMatrix::OptimalForEpsilon(size_t r, double epsilon) {
  MDRR_CHECK_GE(r, 1u);
  MDRR_CHECK_GE(epsilon, 0.0);
  double rd = static_cast<double>(r);
  double decay = std::exp(-epsilon);
  double diagonal = 1.0 / (1.0 + (rd - 1.0) * decay);
  return RrMatrix(r, linalg::UniformMixture{r, diagonal, diagonal * decay});
}

RrMatrix RrMatrix::Identity(size_t r) {
  MDRR_CHECK_GE(r, 1u);
  return RrMatrix(r, linalg::UniformMixture{r, 1.0, 0.0});
}

RrMatrix RrMatrix::UniformReplacement(size_t r) {
  MDRR_CHECK_GE(r, 1u);
  double uniform = 1.0 / static_cast<double>(r);
  return RrMatrix(r, linalg::UniformMixture{r, uniform, uniform});
}

RrMatrix RrMatrix::GeometricOrdinal(size_t r, double epsilon) {
  MDRR_CHECK_GE(r, 2u);
  MDRR_CHECK_GT(epsilon, 0.0);
  // Unnormalized weights decay geometrically in the ordinal distance,
  // scaled so the full-range ratio is exactly e^{epsilon}; row
  // normalization preserves every within-column ratio bound because all
  // rows share the same decay profile up to shift.
  double decay = std::exp(-epsilon / static_cast<double>(r - 1));
  linalg::Matrix dense(r, r, 0.0);
  for (size_t u = 0; u < r; ++u) {
    double row_sum = 0.0;
    for (size_t v = 0; v < r; ++v) {
      size_t distance = u > v ? u - v : v - u;
      dense(u, v) = std::pow(decay, static_cast<double>(distance));
      row_sum += dense(u, v);
    }
    for (size_t v = 0; v < r; ++v) dense(u, v) /= row_sum;
  }
  auto result = FromDense(std::move(dense));
  MDRR_CHECK(result.ok());
  return std::move(result).value();
}

StatusOr<RrMatrix> RrMatrix::FromDense(linalg::Matrix p) {
  if (p.rows() != p.cols() || p.rows() == 0) {
    return Status::InvalidArgument("RR matrix must be square and nonempty");
  }
  if (!p.IsRowStochastic(1e-9)) {
    return Status::InvalidArgument(
        "RR matrix rows must be nonnegative and sum to 1");
  }
  // Prefer the structured representation when the shape allows it.
  auto structured = linalg::DetectUniformMixture(p, 1e-12);
  if (structured.ok()) {
    return RrMatrix(p.rows(), structured.value());
  }
  size_t n = p.rows();
  return RrMatrix(n, std::move(p));
}

StatusOr<RrMatrix> RrMatrix::FromStructured(linalg::UniformMixture mixture) {
  if (mixture.size == 0) {
    return Status::InvalidArgument("structured RR matrix must be nonempty");
  }
  if (!std::isfinite(mixture.diagonal) || !std::isfinite(mixture.off_diagonal) ||
      mixture.diagonal < 0.0 || mixture.diagonal > 1.0 ||
      mixture.off_diagonal < 0.0 || mixture.off_diagonal > 1.0) {
    return Status::InvalidArgument(
        "structured RR matrix entries must be probabilities");
  }
  double row_sum = mixture.diagonal +
                   static_cast<double>(mixture.size - 1) * mixture.off_diagonal;
  if (std::abs(row_sum - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        "structured RR matrix rows must sum to 1");
  }
  return RrMatrix(mixture.size, mixture);
}

double RrMatrix::Prob(size_t u, size_t v) const {
  MDRR_CHECK_LT(u, size_);
  MDRR_CHECK_LT(v, size_);
  if (structured_) {
    return u == v ? structured_->diagonal : structured_->off_diagonal;
  }
  return (*dense_)(u, v);
}

linalg::Matrix RrMatrix::ToDense() const {
  if (structured_) return structured_->ToDense();
  return *dense_;
}

std::vector<uint32_t> RrMatrix::RandomizeColumn(
    const std::vector<uint32_t>& codes, Rng& rng) const {
  std::vector<uint32_t> result;
  RandomizeColumnInto(codes, rng, result);
  return result;
}

void RrMatrix::RandomizeColumnInto(const std::vector<uint32_t>& codes,
                                   Rng& rng,
                                   std::vector<uint32_t>& out) const {
  out.resize(codes.size());
  RandomizeRangeInto(codes, 0, codes.size(), rng, out.data(),
                     /*counts=*/nullptr);
}

void RrMatrix::RandomizeRangeCounterInto(const std::vector<uint32_t>& codes,
                                         size_t begin, size_t end,
                                         uint64_t seed, uint64_t stream,
                                         uint32_t* out,
                                         int64_t* counts) const {
  MDRR_CHECK_LE(end, codes.size());
  // Fixed-size SoA staging: uniforms for a tile of elements are drawn in
  // one pass (PhiloxFillElementDraws -- no loop-carried state, free to
  // vectorize), then consumed by branch-predictable loops. The tile size
  // is invisible in the output: draws are addressed by element index.
  constexpr size_t kTile = 512;
  double units[kTile];
  uint64_t raws[kTile];

  if (structured_) {
    const double alpha = structured_alpha_;
    if (alpha <= 0.0) {  // Identity design: no blocks are ever generated.
      for (size_t i = begin; i < end; ++i) {
        const uint32_t y = codes[i];
        MDRR_DCHECK_LT(y, size_);
        out[i] = y;
        if (counts != nullptr) ++counts[y];
      }
      return;
    }
    for (size_t tile = begin; tile < end; tile += kTile) {
      const size_t len = end - tile < kTile ? end - tile : kTile;
      PhiloxFillElementDraws(seed, stream, tile, len, units, raws);
      if (alpha >= 1.0) {  // Uniform replacement: only the raw word used.
        for (size_t k = 0; k < len; ++k) {
          const uint32_t y =
              static_cast<uint32_t>(PhiloxBoundedFromRaw(raws[k], size_));
          out[tile + k] = y;
          if (counts != nullptr) ++counts[y];
        }
        continue;
      }
      for (size_t k = 0; k < len; ++k) {
        MDRR_DCHECK_LT(codes[tile + k], size_);
        const uint32_t y =
            units[k] < alpha
                ? static_cast<uint32_t>(PhiloxBoundedFromRaw(raws[k], size_))
                : codes[tile + k];
        out[tile + k] = y;
        if (counts != nullptr) ++counts[y];
      }
    }
    return;
  }

  // Dense tiles run the gather/select kernel over the flattened per-row
  // tables: same bucket derivation and the same threshold values as the
  // per-row SampleFrom loop, so the transcript is bit-unchanged.
  for (size_t tile = begin; tile < end; tile += kTile) {
    const size_t len = end - tile < kTile ? end - tile : kTile;
#ifndef NDEBUG
    for (size_t k = 0; k < len; ++k) MDRR_DCHECK_LT(codes[tile + k], size_);
#endif
    PhiloxFillElementDraws(seed, stream, tile, len, units, raws);
    AliasLookupBlock(dense_thresholds_.data(), dense_aliases_.data(), size_,
                     dense_thresholds_.size(), codes.data() + tile, units,
                     raws, len, out + tile);
    if (counts != nullptr) {
      for (size_t k = 0; k < len; ++k) ++counts[out[tile + k]];
    }
  }
}

double RrMatrix::Epsilon() const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (structured_) {
    if (size_ == 1) return 0.0;
    double hi = std::max(structured_->diagonal, structured_->off_diagonal);
    double lo = std::min(structured_->diagonal, structured_->off_diagonal);
    if (hi == lo) return 0.0;
    if (lo <= 0.0) return kInf;
    return std::log(hi / lo);
  }
  double worst_ratio = 1.0;
  for (size_t v = 0; v < size_; ++v) {
    double hi = 0.0;
    double lo = kInf;
    for (size_t u = 0; u < size_; ++u) {
      double p = (*dense_)(u, v);
      hi = std::max(hi, p);
      lo = std::min(lo, p);
    }
    if (hi == 0.0) continue;  // All-zero column constrains nothing.
    if (lo <= 0.0) return kInf;
    worst_ratio = std::max(worst_ratio, hi / lo);
  }
  return std::log(worst_ratio);
}

double RrMatrix::ConditionNumber() const {
  if (structured_) {
    double min_eig = structured_->MinEigenvalue();
    if (min_eig <= 0.0) return std::numeric_limits<double>::infinity();
    return structured_->MaxEigenvalue() / min_eig;
  }
  // Power iteration on PᵀP for the largest singular value; inverse power
  // iteration (via LU solves on PᵀP) for the smallest. Both loops stop
  // early once the norm estimate stops moving in relative terms -- the
  // common case converges in a handful of iterations, and 200 is only
  // the pathological-spectrum cap.
  constexpr int kMaxIterations = 200;
  constexpr double kRelativeTolerance = 1e-13;
  const linalg::Matrix& p = *dense_;
  linalg::Matrix pt = p.Transpose();
  linalg::Matrix gram = pt.MatMul(p);
  std::vector<double> v(size_, 1.0 / std::sqrt(static_cast<double>(size_)));
  double sigma_max_sq = 0.0;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    std::vector<double> w = gram.MatVec(v);
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) break;
    for (size_t i = 0; i < size_; ++i) v[i] = w[i] / norm;
    double previous = sigma_max_sq;
    sigma_max_sq = norm;
    if (iter > 0 && std::fabs(norm - previous) <= kRelativeTolerance * norm) {
      break;
    }
  }
  auto lu = linalg::LuDecomposition::Factor(gram);
  if (!lu.ok()) return std::numeric_limits<double>::infinity();
  std::vector<double> u(size_, 1.0 / std::sqrt(static_cast<double>(size_)));
  double inv_sigma_min_sq = 0.0;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    std::vector<double> w = lu.value().Solve(u);
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) break;
    for (size_t i = 0; i < size_; ++i) u[i] = w[i] / norm;
    double previous = inv_sigma_min_sq;
    inv_sigma_min_sq = norm;
    if (iter > 0 && std::fabs(norm - previous) <= kRelativeTolerance * norm) {
      break;
    }
  }
  if (inv_sigma_min_sq == 0.0) return std::numeric_limits<double>::infinity();
  return std::sqrt(sigma_max_sq * inv_sigma_min_sq);
}

const StatusOr<linalg::LuDecomposition>& RrMatrix::TransposeFactors(
    size_t factor_threads) const {
  // Factor Pᵀ once, on first use; afterwards every solve is an O(r²)
  // substitution and never re-materializes the transpose. The blocked
  // factorization is bit-identical for any thread count, so whichever
  // caller runs the once-block produces the same cached factors.
  TransposeLuCell& cell = *transpose_lu_;
  std::call_once(cell.once, [this, &cell, factor_threads] {
    linalg::LuOptions options;
    options.num_threads = factor_threads;
    cell.factors =
        linalg::LuDecomposition::Factor(dense_->Transpose(), options);
  });
  return cell.factors;
}

StatusOr<std::vector<double>> RrMatrix::SolveTranspose(
    const std::vector<double>& b, size_t factor_threads) const {
  if (b.size() != size_) {
    return Status::InvalidArgument("vector size does not match matrix size");
  }
  if (structured_) {
    // Structured matrices are symmetric, so Pᵀ = P.
    return structured_->ApplyInverse(b);
  }
  const StatusOr<linalg::LuDecomposition>& factors =
      TransposeFactors(factor_threads);
  if (!factors.ok()) return factors.status();
  return factors.value().Solve(b);
}

StatusOr<std::vector<std::vector<double>>> RrMatrix::SolveTransposeMany(
    const std::vector<std::vector<double>>& bs, size_t num_threads) const {
  for (const std::vector<double>& b : bs) {
    if (b.size() != size_) {
      return Status::InvalidArgument("vector size does not match matrix size");
    }
  }
  if (bs.empty()) return std::vector<std::vector<double>>{};
  if (structured_) {
    // Surface singularity (and the denormal floor) once, up front; the
    // per-RHS ApplyInverse calls below then cannot fail.
    if (auto inverse = structured_->ClosedFormInverse(); !inverse.ok()) {
      return inverse.status();
    }
    std::vector<std::vector<double>> solutions(bs.size());
    ParallelChunks(bs.size(), /*chunk_size=*/1, num_threads,
                   [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                       size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       // Cannot fail: sizes and singularity were checked.
                       auto solved = structured_->ApplyInverse(bs[i]);
                       MDRR_CHECK(solved.ok());
                       solutions[i] = std::move(solved).value();
                     }
                   });
    return solutions;
  }
  const StatusOr<linalg::LuDecomposition>& factors =
      TransposeFactors(num_threads);
  if (!factors.ok()) return factors.status();
  return factors.value().SolveMany(bs, num_threads);
}

}  // namespace mdrr
