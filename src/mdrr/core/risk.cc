#include "mdrr/core/risk.h"

#include <algorithm>
#include <cmath>

#include "mdrr/common/check.h"

namespace mdrr {

namespace {

Status ValidatePrior(const RrMatrix& p, const std::vector<double>& prior) {
  if (prior.size() != p.size()) {
    return Status::InvalidArgument("prior size does not match matrix size");
  }
  double total = 0.0;
  for (double x : prior) {
    if (x < 0.0) {
      return Status::InvalidArgument("prior has negative entries");
    }
    total += x;
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("prior does not sum to 1");
  }
  return Status::OK();
}

}  // namespace

StatusOr<linalg::Matrix> PosteriorMatrix(const RrMatrix& p,
                                         const std::vector<double>& prior) {
  MDRR_RETURN_IF_ERROR(ValidatePrior(p, prior));
  const size_t r = p.size();
  linalg::Matrix posterior(r, r, 0.0);
  for (size_t v = 0; v < r; ++v) {
    double marginal = 0.0;
    for (size_t w = 0; w < r; ++w) marginal += p.Prob(w, v) * prior[w];
    if (marginal <= 0.0) continue;
    for (size_t u = 0; u < r; ++u) {
      posterior(u, v) = p.Prob(u, v) * prior[u] / marginal;
    }
  }
  return posterior;
}

StatusOr<std::vector<double>> BestGuessConfidence(
    const RrMatrix& p, const std::vector<double>& prior) {
  MDRR_ASSIGN_OR_RETURN(linalg::Matrix posterior, PosteriorMatrix(p, prior));
  const size_t r = p.size();
  std::vector<double> risk(r, 0.0);
  for (size_t v = 0; v < r; ++v) {
    for (size_t u = 0; u < r; ++u) {
      risk[v] = std::max(risk[v], posterior(u, v));
    }
  }
  return risk;
}

StatusOr<double> ExpectedDisclosureRisk(const RrMatrix& p,
                                        const std::vector<double>& prior) {
  MDRR_RETURN_IF_ERROR(ValidatePrior(p, prior));
  MDRR_ASSIGN_OR_RETURN(std::vector<double> confidence,
                        BestGuessConfidence(p, prior));
  const size_t r = p.size();
  double expected = 0.0;
  for (size_t v = 0; v < r; ++v) {
    double lambda_v = 0.0;
    for (size_t w = 0; w < r; ++w) lambda_v += p.Prob(w, v) * prior[w];
    expected += lambda_v * confidence[v];
  }
  return expected;
}

double PriorBaselineRisk(const std::vector<double>& prior) {
  MDRR_CHECK(!prior.empty());
  return *std::max_element(prior.begin(), prior.end());
}

}  // namespace mdrr
