#include "mdrr/core/collector.h"

#include "mdrr/core/estimator.h"

namespace mdrr {

ReportCollector::ReportCollector(RrMatrix matrix)
    : matrix_(std::move(matrix)), counts_(matrix_.size(), 0) {}

Status ReportCollector::AddReport(uint32_t code) {
  if (code >= counts_.size()) {
    return Status::InvalidArgument("report code out of range");
  }
  ++counts_[code];
  ++num_reports_;
  return Status::OK();
}

Status ReportCollector::AddReports(const std::vector<uint32_t>& codes) {
  for (uint32_t code : codes) {
    MDRR_RETURN_IF_ERROR(AddReport(code));
  }
  return Status::OK();
}

std::vector<double> ReportCollector::Lambda() const {
  std::vector<double> lambda(counts_.size(), 0.0);
  if (num_reports_ == 0) return lambda;
  for (size_t v = 0; v < counts_.size(); ++v) {
    lambda[v] =
        static_cast<double>(counts_[v]) / static_cast<double>(num_reports_);
  }
  return lambda;
}

StatusOr<std::vector<double>> ReportCollector::Estimate() const {
  if (num_reports_ == 0) {
    return Status::FailedPrecondition("no reports collected yet");
  }
  return EstimateProjectedDistribution(matrix_, Lambda());
}

StatusOr<std::vector<double>> ReportCollector::ConfidenceHalfWidths(
    double alpha) const {
  if (num_reports_ == 0) {
    return Status::FailedPrecondition("no reports collected yet");
  }
  return EstimateConfidenceHalfWidths(matrix_, Lambda(), num_reports_,
                                      alpha);
}

}  // namespace mdrr
