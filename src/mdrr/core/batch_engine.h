// Multi-threaded batch driver for the three release protocols.
//
// The column protocols (RunRrIndependent, RunRrJoint, RunRrClusters) pull
// every random bit from one sequential Rng, so they cannot be parallelized
// without changing their output. The engine instead shards the records
// into fixed-size batches and gives shard s its own deterministic
// sub-stream (RngStreamFamily) for both perturbation and the shard's
// frequency counts. Shard boundaries and stream indices depend only on
// the record count and options.shard_size -- never on options.num_threads
// -- so a run's output is bit-identical for any thread count, including
// one. Against the sequential protocols the estimates agree statistically
// (same matrices, same estimator) but not bit-for-bit: the random bits
// come from different streams.
//
// Stream layout for seed s (mt19937 policy): stream 0 is reserved for
// serial randomness (the dependence-assessment round of RunClusters);
// perturbed column c (attribute for Independent, cluster for Clusters,
// the composite column for Joint) uses streams
// [1 + c * num_shards, 1 + (c + 1) * num_shards).
//
// Under the philox policy (BatchPerturbationOptions::rng) perturbation
// instead draws element-addressed counter blocks: column c is philox
// stream 1 + c (1 for Joint) of the engine seed and record i is element i
// of that stream, so the randomized columns are additionally invariant
// under shard_size. Serial randomness and synthesis keep the mt19937
// family either way.

#ifndef MDRR_CORE_BATCH_ENGINE_H_
#define MDRR_CORE_BATCH_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/adjustment.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/core/perturber.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

// Override for the engine's sharded column kernel. Receives the full
// randomness address of the column -- `stream_base` (mt19937: shard s of
// the column draws from family.Stream(stream_base + s)) and
// `counter_stream` (philox: every element draws from this stream at its
// global index) -- and must honor the engine's determinism contract:
// return exactly what the in-process kernel would for those addresses.
// The distributed coordinator (net/coordinator.h) uses this to farm the
// shards out to worker processes while every serial stage stays local.
using ColumnShardPerturber = std::function<PerturbedColumn(
    const RrMatrix& matrix, const std::vector<uint32_t>& codes,
    uint64_t stream_base, uint64_t counter_stream)>;

struct BatchPerturbationOptions {
  uint64_t seed = 1;
  // Worker threads; 0 means one per hardware core. Never changes results.
  size_t num_threads = 0;
  // Records per shard: the unit of work distribution and of RNG
  // sub-stream assignment. Under kMt19937 this is part of the randomness
  // contract -- changing it reassigns records to streams, like changing
  // the seed. Under kPhilox it is pure work-distribution tuning: counter
  // draws are addressed by record index, so output never depends on it.
  // 0 is clamped to 1.
  size_t shard_size = 1 << 16;
  // Perturbation stream engine. kMt19937 (default) keeps every committed
  // transcript bit-identical; kPhilox switches perturbation to the
  // counter-based element-addressed draws of counter_rng.h, whose output
  // is invariant under thread count AND shard grain. The two policies
  // produce different (each individually deterministic) transcripts.
  // Serial randomness (RunClusters' dependence-assessment round on
  // stream 0) and synthetic release stay on the mt19937 family under
  // either policy: both are already grain/thread-invariant, and synthesis
  // consumes shuffle draws the counter layout does not model.
  RngKind rng = RngKind::kMt19937;
  // When set, replaces the in-process sharded kernel for every column
  // perturbation (see ColumnShardPerturber above). Serial randomness,
  // adjustment, synthesis, and estimation still run locally.
  ColumnShardPerturber shard_perturber;
};

// One column's worth of oracle reports: support counts (exact integer
// sums over all shards), their proportions, and -- for microdata-capable
// backends only -- the randomized codes.
struct OracleColumnResult {
  std::vector<uint32_t> codes;  // Empty unless produces_microdata().
  std::vector<int64_t> counts;
  std::vector<double> lambda;  // counts / n (per-entry division).
};

class BatchPerturbationEngine {
 public:
  explicit BatchPerturbationEngine(const BatchPerturbationOptions& options);

  // Parallel Protocol 1: same result contract as RunRrIndependent.
  StatusOr<RrIndependentResult> RunIndependent(
      const Dataset& dataset, const RrIndependentOptions& options) const;

  // Fans a generic frequency-oracle backend over one column with the
  // engine's sharding and RNG policy, using the SAME randomness
  // addressing as column `column_index` of RunIndependent (mt19937:
  // shard s of the column draws family.Stream(1 + column_index *
  // NumShards(n) + s); philox: record i draws element blocks of counter
  // stream 1 + column_index). Support counts merge as exact integer
  // sums, so the result is bit-identical for any thread count -- and
  // for the direct-encoding backend, bit-identical to RunIndependent's
  // perturbed column at the same address.
  OracleColumnResult RunOracle(const FrequencyOracle& oracle,
                               const std::vector<uint32_t>& codes,
                               size_t column_index) const;

  // Parallel Protocol 2: same result contract as RunRrJoint.
  StatusOr<RrJointResult> RunJoint(const Dataset& dataset,
                                   const std::vector<size_t>& attributes,
                                   double epsilon) const;

  // Parallel RR-Clusters: same result *shape* as RunRrClusters, agreeing
  // statistically but not bit-for-bit (different RNG streams, and the
  // Corollary 1 ordinal-ordinal |Pearson| is evaluated from joint counts
  // rather than raw columns -- see DependenceMatrixSharded). The
  // dependence-assessment round is seeded from stream 0 (one engine word
  // per source) and runs through AssessDependencesSharded with the
  // engine's RNG policy: every estimator shards its pair grid on
  // stream-per-pair draws, and under kPhilox record ranges shard too --
  // bit-identical at any thread count and shard grain either way. The
  // per-cluster joint randomization is sharded as before.
  StatusOr<RrClustersResult> RunClusters(
      const Dataset& dataset, const RrClustersOptions& options) const;

  // Parallel Algorithm 2: RunRrAdjustment with the engine's threading
  // (num_threads workers, shard_size reduction chunks). `options`'
  // num_threads/chunk_size are overridden by the engine's.
  StatusOr<AdjustmentResult> RunAdjustment(
      const std::vector<AdjustmentGroup>& groups, size_t num_records,
      AdjustmentOptions options = {}) const;

  // Parallel synthetic release: SynthesizeFrom{Independent,Clusters}
  // with per-shard apportionment and per-shard shuffle streams. Stream
  // layout mirrors perturbation but on a salted family, so synthesis
  // never replays perturbation randomness at the same seed.
  StatusOr<Dataset> SynthesizeIndependent(const RrIndependentResult& result,
                                          int64_t n) const;
  StatusOr<Dataset> SynthesizeClusters(const RrClustersResult& result,
                                       int64_t n) const;

  // Shards used for a column of `num_rows` records (>= 1; the last shard
  // may be short). Exposed for tests and capacity planning.
  size_t NumShards(size_t num_rows) const;

  const BatchPerturbationOptions& options() const { return options_; }

 private:
  BatchPerturbationOptions options_;
};

}  // namespace mdrr

#endif  // MDRR_CORE_BATCH_ENGINE_H_
