// RR-Clusters (Section 4): assess attribute dependences with one of the
// privacy-preserving estimators, partition the attributes with Algorithm
// 1, then run RR-Joint within each cluster at the Section 6.3.2
// equivalent-risk calibration.

#ifndef MDRR_CORE_RR_CLUSTERS_H_
#define MDRR_CORE_RR_CLUSTERS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/clustering.h"
#include "mdrr/core/dependence_estimators.h"
#include "mdrr/core/joint_estimate.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

enum class DependenceSource {
  kOracle,              // Trusted-party dependences (baseline).
  kRandomizedResponse,  // Section 4.1.
  kSecureSum,           // Section 4.2.
  kPairwiseRr,          // Section 4.3.
  kProvided,            // Caller-supplied matrix (hoisted computation).
};

struct RrClustersOptions {
  // Per-attribute keep probability p; the cluster budget is the sum of
  // the per-attribute epsilons (Section 6.3.2).
  double keep_probability = 0.7;
  ClusteringOptions clustering;
  DependenceSource dependence_source = DependenceSource::kOracle;
  // Required iff dependence_source == kProvided; not owned.
  const linalg::Matrix* provided_dependences = nullptr;
  // Keep probability of the dependence-assessment round (Sections 4.1 and
  // 4.3).
  double dependence_keep_probability = 0.7;
  // Use the paper's printed epsilon formula for calibration instead of
  // the exact Expression (4) value (see DESIGN.md).
  bool use_paper_epsilon_formula = false;
};

struct RrClustersResult {
  AttributeClustering clusters;
  std::vector<RrJointResult> cluster_results;
  // Y: the randomized data decoded back to per-attribute columns.
  Dataset randomized;
  // Epsilon of the data release (sequential composition over clusters).
  double release_epsilon = 0.0;
  // Epsilon spent assessing dependences (0 for oracle/provided).
  double dependence_epsilon = 0.0;
  // The dependence matrix actually used for clustering.
  linalg::Matrix dependences;
};

// Runs the configured dependence-assessment round (the building block
// RunRrClusters and BatchPerturbationEngine share). Fails if
// dependence_source is kProvided with no matrix supplied.
StatusOr<DependenceEstimate> AssessDependences(const Dataset& dataset,
                                               const RrClustersOptions& options,
                                               Rng& rng);

// Sharded dependence assessment. Every estimator shards now: kOracle
// and kRandomizedResponse through the DependenceMatrixSharded pair grid,
// kSecureSum and kPairwiseRr through the stream-per-pair estimators of
// dependence_estimators.h (pair p draws on stream 1 + p, so the pair
// grid parallelizes with output bit-identical at any thread count and
// shard grain under both RNG policies). Only kProvided falls back to
// the sequential assessment -- it computes nothing. `estimator.rng`
// selects the draw addressing (kPhilox additionally shards record
// ranges); the estimator seed is still drawn from `rng`, exactly one
// engine word per source, like the sequential path.
StatusOr<DependenceEstimate> AssessDependencesSharded(
    const Dataset& dataset, const RrClustersOptions& options, Rng& rng,
    const DependenceEstimatorOptions& estimator);

// Runs the full RR-Clusters protocol. Fails on empty data or if a
// dependence estimator fails.
StatusOr<RrClustersResult> RunRrClusters(const Dataset& dataset,
                                         const RrClustersOptions& options,
                                         Rng& rng);

// Runs the randomization half of RR-Joint for one cluster at its epsilon
// budget (PerturbRrJoint or a sharded equivalent). `cluster_index` is the
// cluster's position in the clustering, so implementations can key
// disjoint RNG sub-stream ranges off it. Estimation is NOT part of the
// hook: it draws no randomness, so the frame runs it for all clusters in
// parallel after the perturbation pass.
using ClusterPerturbRunner = std::function<StatusOr<RrJointPerturbation>(
    const std::vector<size_t>& cluster, double epsilon_budget,
    size_t cluster_index)>;

// The protocol frame behind RunRrClusters, with the per-cluster joint
// randomization pluggable (BatchPerturbationEngine substitutes a sharded
// runner). `rng` drives the dependence-assessment round. The
// perturbation pass visits clusters in order (its RNG transcript is
// sequential); the deterministic post-passes -- Eq. (2) estimation
// through the fast backend across clusters, then the decode of composite
// codes back to per-attribute columns -- shard over `postprocess_threads`
// workers (0 = one per core) with bit-identical output at any thread
// count. When `assessment_estimator` is non-null the dependence round
// runs through AssessDependencesSharded instead of AssessDependences
// (its sharding + RNG-kind options route into the estimators); not
// owned.
StatusOr<RrClustersResult> RunRrClustersWith(
    const Dataset& dataset, const RrClustersOptions& options, Rng& rng,
    const ClusterPerturbRunner& perturb_runner, size_t postprocess_threads,
    const DependenceEstimatorOptions* assessment_estimator = nullptr);

// The RR-Clusters joint-query estimator (independent clusters, estimated
// joint within each cluster).
ClusterFactorizationEstimate MakeClusterEstimate(
    const RrClustersResult& result);

}  // namespace mdrr

#endif  // MDRR_CORE_RR_CLUSTERS_H_
