// Incremental count accumulation for windowed streaming releases.
//
// A WindowedCounts partitions the report sequence space into fixed-size
// buckets (bucket b covers sequences [b*stride, (b+1)*stride)) and keeps
// a bounded ring of live bucket slots. Each slot holds one row of
// concatenated per-attribute category counts PER INGEST SHARD, so the
// drain thread of every shard counts into its own row without any
// synchronization on the cells; a per-slot atomic drained counter is the
// only cross-thread signal. Integer counts commute, so the merged bucket
// totals -- and everything estimated from them -- are a pure function of
// WHICH reports landed in the bucket, independent of ingest thread count
// and arrival interleaving. This is what makes streaming window
// transcripts bit-identical across ingest configurations.
//
// The ring doubles as the backpressure boundary: a slot is recycled only
// after the release driver retires its bucket, and producers may not
// submit sequences at or beyond AdmissionLimit(). Memory therefore stays
// O(ring_buckets * num_shards * total cardinality) no matter how long
// the stream runs.
//
// Thread roles (the StreamingCollector enforces them):
//   * one drain thread per shard calls Count for that shard;
//   * one release thread calls DrainedCount / MergedCounts /
//     RetireThrough;
//   * producers only read AdmissionLimit.

#ifndef MDRR_CORE_STREAM_COUNTS_H_
#define MDRR_CORE_STREAM_COUNTS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "mdrr/common/check.h"

namespace mdrr {

class WindowedCounts {
 public:
  // `cardinalities[j]` is the category count of attribute j; `stride` the
  // reports per bucket; `ring_buckets` the live-slot count (>= 1);
  // `num_shards` the ingest shard count (>= 1).
  WindowedCounts(std::vector<size_t> cardinalities, uint64_t stride,
                 size_t ring_buckets, size_t num_shards);

  WindowedCounts(const WindowedCounts&) = delete;
  WindowedCounts& operator=(const WindowedCounts&) = delete;

  uint64_t stride() const { return stride_; }
  size_t ring_buckets() const { return ring_; }
  size_t num_shards() const { return num_shards_; }
  // Length of a concatenated count row (sum of cardinalities).
  size_t width() const { return width_; }
  const std::vector<size_t>& cardinalities() const { return cardinalities_; }

  // Counts one report: codes[j] < cardinalities[j] for every attribute.
  // Must be called by the single drain thread of `shard`, and only for
  // sequences below AdmissionLimit() at submission time.
  void Count(size_t shard, uint64_t sequence, const uint32_t* codes) {
    const uint64_t bucket = sequence / stride_;
    MDRR_DCHECK_GE(bucket, frontier_.load(std::memory_order_relaxed));
    const size_t slot = static_cast<size_t>(bucket % ring_);
    int64_t* row = RowFor(slot, shard);
    for (size_t j = 0; j < cardinalities_.size(); ++j) {
      MDRR_DCHECK_LT(codes[j], cardinalities_[j]);
      ++row[offsets_[j] + codes[j]];
    }
    // Release-publishes the row increments to the release thread, which
    // acquires through DrainedCount before touching the rows.
    drained_[slot].fetch_add(1, std::memory_order_release);
  }

  // Reports counted into `bucket` so far. Release thread only; `bucket`
  // must be live (>= frontier(), < frontier() + ring_buckets()).
  uint64_t DrainedCount(uint64_t bucket) const {
    return drained_[bucket % ring_].load(std::memory_order_acquire);
  }

  // Shard rows of `bucket` summed in shard order (exact int64 adds, so
  // the result does not depend on drain interleaving). The caller must
  // have observed the bucket's full population through DrainedCount.
  std::vector<int64_t> MergedCounts(uint64_t bucket) const;

  // Writes externally restored counts into the bucket's shard-0 row and
  // sets its drained counter (snapshot resume). The bucket must be live
  // and its slot untouched since construction or retirement.
  void RestoreBucket(uint64_t bucket, const std::vector<int64_t>& counts,
                     uint64_t num_reports);

  // Recycles every slot of buckets [frontier(), through], zeroing counts
  // and drained counters, then advances the frontier -- which extends
  // AdmissionLimit() and thereby re-opens producer admission. Release
  // thread only; every retired bucket must already be merged.
  void RetireThrough(uint64_t through);

  // First live (not yet retired) bucket.
  uint64_t frontier() const {
    return frontier_.load(std::memory_order_acquire);
  }

  // First sequence number producers may NOT submit yet: sequences map to
  // a live slot iff they are below this. Safe to read from any thread.
  uint64_t AdmissionLimit() const {
    return (frontier() + ring_) * stride_;
  }

 private:
  int64_t* RowFor(size_t slot, size_t shard) {
    return counts_.data() + (slot * num_shards_ + shard) * width_;
  }
  const int64_t* RowFor(size_t slot, size_t shard) const {
    return counts_.data() + (slot * num_shards_ + shard) * width_;
  }

  std::vector<size_t> cardinalities_;
  std::vector<size_t> offsets_;
  size_t width_;
  uint64_t stride_;
  size_t ring_;
  size_t num_shards_;
  std::vector<int64_t> counts_;  // ring * shards * width.
  std::vector<std::atomic<uint64_t>> drained_;
  std::atomic<uint64_t> frontier_;
};

}  // namespace mdrr

#endif  // MDRR_CORE_STREAM_COUNTS_H_
