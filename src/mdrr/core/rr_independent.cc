#include "mdrr/core/rr_independent.h"

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_matrix.h"

namespace mdrr {

RrMatrix MakeIndependentMatrix(size_t r, const RrIndependentOptions& options) {
  switch (options.design) {
    case IndependentDesign::kGeometricOrdinal:
      // A single-category attribute has nothing to protect; the ordinal
      // design needs r >= 2, so publish the only value (epsilon 0).
      if (r < 2) return RrMatrix::KeepUniform(r, 1.0);
      return RrMatrix::GeometricOrdinal(r, options.geometric_epsilon);
    case IndependentDesign::kKeepUniform:
      break;
  }
  return RrMatrix::KeepUniform(r, options.keep_probability);
}

StatusOr<RrIndependentResult> RunRrIndependent(
    const Dataset& dataset, const RrIndependentOptions& options, Rng& rng) {
  return RunRrIndependentWith(dataset, options, SequentialPerturber(rng));
}

StatusOr<RrIndependentResult> RunRrIndependentWith(
    const Dataset& dataset, const RrIndependentOptions& options,
    const ColumnPerturber& perturber) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot run RR-Independent on empty data");
  }
  const size_t m = dataset.num_attributes();
  RrIndependentResult result;
  result.randomized = dataset;
  result.lambda.resize(m);
  result.raw_estimated.resize(m);
  result.estimated.resize(m);
  result.epsilons.resize(m);

  for (size_t j = 0; j < m; ++j) {
    const size_t r = dataset.attribute(j).cardinality();
    RrMatrix matrix = MakeIndependentMatrix(r, options);
    PerturbedColumn column = perturber(matrix, dataset.column(j), j);
    result.randomized.SetColumn(j, std::move(column.codes));
    result.lambda[j] = std::move(column.lambda);
    MDRR_ASSIGN_OR_RETURN(result.raw_estimated[j],
                          EstimateDistribution(matrix, result.lambda[j]));
    result.estimated[j] = ProjectToSimplex(result.raw_estimated[j]);
    result.epsilons[j] = matrix.Epsilon();
    result.total_epsilon += result.epsilons[j];
  }
  return result;
}

IndependentMarginalsEstimate MakeIndependentEstimate(
    const RrIndependentResult& result) {
  return IndependentMarginalsEstimate(
      result.estimated, static_cast<double>(result.randomized.num_rows()));
}

}  // namespace mdrr
