#include "mdrr/core/rr_independent.h"

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_matrix.h"

namespace mdrr {

StatusOr<RrIndependentResult> RunRrIndependent(
    const Dataset& dataset, const RrIndependentOptions& options, Rng& rng) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot run RR-Independent on empty data");
  }
  const size_t m = dataset.num_attributes();
  RrIndependentResult result;
  result.randomized = dataset;
  result.lambda.resize(m);
  result.raw_estimated.resize(m);
  result.estimated.resize(m);
  result.epsilons.resize(m);

  for (size_t j = 0; j < m; ++j) {
    const size_t r = dataset.attribute(j).cardinality();
    RrMatrix matrix = RrMatrix::KeepUniform(r, options.keep_probability);
    result.randomized.SetColumn(
        j, matrix.RandomizeColumn(dataset.column(j), rng));
    result.lambda[j] =
        EmpiricalDistribution(result.randomized.column(j), r);
    MDRR_ASSIGN_OR_RETURN(result.raw_estimated[j],
                          EstimateDistribution(matrix, result.lambda[j]));
    result.estimated[j] = ProjectToSimplex(result.raw_estimated[j]);
    result.epsilons[j] = matrix.Epsilon();
    result.total_epsilon += result.epsilons[j];
  }
  return result;
}

IndependentMarginalsEstimate MakeIndependentEstimate(
    const RrIndependentResult& result) {
  return IndependentMarginalsEstimate(
      result.estimated, static_cast<double>(result.randomized.num_rows()));
}

}  // namespace mdrr
