#include "mdrr/core/rr_clusters.h"

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"

namespace mdrr {

namespace {

// Rows per decode work unit; purely a load-balancing grain (the decode
// draws no randomness, so it is deterministic at any granularity).
constexpr size_t kDecodeChunkSize = 1 << 16;

}  // namespace

StatusOr<DependenceEstimate> AssessDependences(
    const Dataset& dataset, const RrClustersOptions& options, Rng& rng) {
  switch (options.dependence_source) {
    case DependenceSource::kOracle:
      return OracleDependences(dataset);
    case DependenceSource::kRandomizedResponse:
      return RandomizedResponseDependences(
          dataset, options.dependence_keep_probability, rng.engine()());
    case DependenceSource::kSecureSum:
      return SecureSumDependences(
          dataset, mpc::SimulationMode::kFastSimulation, rng.engine()());
    case DependenceSource::kPairwiseRr:
      return PairwiseRrDependences(dataset,
                                   options.dependence_keep_probability,
                                   mpc::SimulationMode::kFastSimulation,
                                   rng.engine()());
    case DependenceSource::kProvided: {
      if (options.provided_dependences == nullptr) {
        return Status::InvalidArgument(
            "dependence_source is kProvided but no matrix was supplied");
      }
      DependenceEstimate estimate;
      estimate.dependences = *options.provided_dependences;
      estimate.epsilon = 0.0;
      estimate.messages = 0;
      return estimate;
    }
  }
  return Status::Internal("unknown dependence source");
}

StatusOr<DependenceEstimate> AssessDependencesSharded(
    const Dataset& dataset, const RrClustersOptions& options, Rng& rng,
    const DependenceShardingOptions& sharding) {
  switch (options.dependence_source) {
    case DependenceSource::kOracle:
      return OracleDependencesSharded(dataset, sharding);
    case DependenceSource::kRandomizedResponse:
      return RandomizedResponseDependencesSharded(
          dataset, options.dependence_keep_probability, rng.engine()(),
          sharding);
    default:
      return AssessDependences(dataset, options, rng);
  }
}

StatusOr<RrClustersResult> RunRrClusters(const Dataset& dataset,
                                         const RrClustersOptions& options,
                                         Rng& rng) {
  return RunRrClustersWith(
      dataset, options, rng,
      [&dataset, &rng](const std::vector<size_t>& cluster, double budget,
                       size_t /*cluster_index*/) {
        return RunRrJoint(dataset, cluster, budget, rng);
      },
      /*decode_threads=*/1);
}

StatusOr<RrClustersResult> RunRrClustersWith(
    const Dataset& dataset, const RrClustersOptions& options, Rng& rng,
    const ClusterJointRunner& joint_runner, size_t decode_threads,
    const DependenceShardingOptions* assessment_sharding) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot run RR-Clusters on empty data");
  }

  MDRR_ASSIGN_OR_RETURN(
      DependenceEstimate dependences,
      assessment_sharding != nullptr
          ? AssessDependencesSharded(dataset, options, rng,
                                     *assessment_sharding)
          : AssessDependences(dataset, options, rng));
  MDRR_ASSIGN_OR_RETURN(
      AttributeClustering clusters,
      ClusterAttributes(dataset, dependences.dependences,
                        options.clustering));

  RrClustersResult result;
  result.clusters = clusters;
  result.dependences = dependences.dependences;
  result.dependence_epsilon = dependences.epsilon;
  result.randomized = dataset;

  for (size_t c = 0; c < clusters.size(); ++c) {
    const std::vector<size_t>& cluster = clusters[c];
    double budget =
        ClusterEpsilonBudget(dataset, cluster, options.keep_probability,
                             options.use_paper_epsilon_formula);
    MDRR_ASSIGN_OR_RETURN(RrJointResult joint,
                          joint_runner(cluster, budget, c));
    result.release_epsilon += joint.epsilon;

    // Decode the composite randomized codes back into per-attribute
    // columns of Y. Rows are independent, so the decode shards freely.
    for (size_t position = 0; position < cluster.size(); ++position) {
      std::vector<uint32_t> column(dataset.num_rows());
      ParallelChunks(
          dataset.num_rows(), kDecodeChunkSize, decode_threads,
          [&joint, &column, position](size_t /*worker*/, size_t /*chunk*/,
                                      size_t begin, size_t end) {
            for (size_t row = begin; row < end; ++row) {
              column[row] = joint.domain.DecodeAt(
                  joint.randomized_codes[row], position);
            }
          });
      result.randomized.SetColumn(cluster[position], std::move(column));
    }
    result.cluster_results.push_back(std::move(joint));
  }
  return result;
}

ClusterFactorizationEstimate MakeClusterEstimate(
    const RrClustersResult& result) {
  std::vector<Domain> domains;
  std::vector<std::vector<double>> joints;
  domains.reserve(result.cluster_results.size());
  joints.reserve(result.cluster_results.size());
  for (const RrJointResult& r : result.cluster_results) {
    domains.push_back(r.domain);
    joints.push_back(r.estimated);
  }
  return ClusterFactorizationEstimate(
      result.clusters, std::move(domains), std::move(joints),
      static_cast<double>(result.randomized.num_rows()));
}

}  // namespace mdrr
