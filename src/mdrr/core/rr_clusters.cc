#include "mdrr/core/rr_clusters.h"

#include <algorithm>
#include <limits>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"

namespace mdrr {

namespace {

// Rows per decode work unit; purely a load-balancing grain (the decode
// draws no randomness, so it is deterministic at any granularity).
constexpr size_t kDecodeChunkSize = 1 << 16;

}  // namespace

StatusOr<DependenceEstimate> AssessDependences(
    const Dataset& dataset, const RrClustersOptions& options, Rng& rng) {
  switch (options.dependence_source) {
    case DependenceSource::kOracle:
      return OracleDependences(dataset);
    case DependenceSource::kRandomizedResponse:
      return RandomizedResponseDependences(
          dataset, options.dependence_keep_probability, rng.engine()());
    case DependenceSource::kSecureSum:
      return SecureSumDependences(
          dataset, mpc::SimulationMode::kFastSimulation, rng.engine()());
    case DependenceSource::kPairwiseRr:
      return PairwiseRrDependences(dataset,
                                   options.dependence_keep_probability,
                                   mpc::SimulationMode::kFastSimulation,
                                   rng.engine()());
    case DependenceSource::kProvided: {
      if (options.provided_dependences == nullptr) {
        return Status::InvalidArgument(
            "dependence_source is kProvided but no matrix was supplied");
      }
      DependenceEstimate estimate;
      estimate.dependences = *options.provided_dependences;
      estimate.epsilon = 0.0;
      estimate.messages = 0;
      return estimate;
    }
  }
  return Status::Internal("unknown dependence source");
}

StatusOr<DependenceEstimate> AssessDependencesSharded(
    const Dataset& dataset, const RrClustersOptions& options, Rng& rng,
    const DependenceEstimatorOptions& estimator) {
  switch (options.dependence_source) {
    case DependenceSource::kOracle:
      return OracleDependencesSharded(dataset, estimator.sharding);
    case DependenceSource::kRandomizedResponse:
      return RandomizedResponseDependencesSharded(
          dataset, options.dependence_keep_probability, rng.engine()(),
          estimator);
    case DependenceSource::kSecureSum:
      return SecureSumDependences(dataset,
                                  mpc::SimulationMode::kFastSimulation,
                                  rng.engine()(), estimator);
    case DependenceSource::kPairwiseRr:
      return PairwiseRrDependences(
          dataset, options.dependence_keep_probability,
          mpc::SimulationMode::kFastSimulation, rng.engine()(), estimator);
    default:
      // kProvided computes nothing; the sequential path just copies.
      return AssessDependences(dataset, options, rng);
  }
}

StatusOr<RrClustersResult> RunRrClusters(const Dataset& dataset,
                                         const RrClustersOptions& options,
                                         Rng& rng) {
  return RunRrClustersWith(
      dataset, options, rng,
      [&dataset, &rng](const std::vector<size_t>& cluster, double budget,
                       size_t /*cluster_index*/) {
        return PerturbRrJoint(dataset, cluster, budget,
                              SequentialPerturber(rng));
      },
      /*postprocess_threads=*/1);
}

StatusOr<RrClustersResult> RunRrClustersWith(
    const Dataset& dataset, const RrClustersOptions& options, Rng& rng,
    const ClusterPerturbRunner& perturb_runner, size_t postprocess_threads,
    const DependenceEstimatorOptions* assessment_estimator) {
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("cannot run RR-Clusters on empty data");
  }

  MDRR_ASSIGN_OR_RETURN(
      DependenceEstimate dependences,
      assessment_estimator != nullptr
          ? AssessDependencesSharded(dataset, options, rng,
                                     *assessment_estimator)
          : AssessDependences(dataset, options, rng));
  MDRR_ASSIGN_OR_RETURN(
      AttributeClustering clusters,
      ClusterAttributes(dataset, dependences.dependences,
                        options.clustering));

  RrClustersResult result;
  result.clusters = clusters;
  result.dependences = dependences.dependences;
  result.dependence_epsilon = dependences.epsilon;
  result.randomized = dataset;

  // Pass 1 -- randomization, cluster by cluster in order: the hook may
  // draw from a shared sequential Rng, so this pass cannot reorder.
  std::vector<RrJointPerturbation> perturbations;
  perturbations.reserve(clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    double budget =
        ClusterEpsilonBudget(dataset, clusters[c], options.keep_probability,
                             options.use_paper_epsilon_formula);
    MDRR_ASSIGN_OR_RETURN(RrJointPerturbation perturbation,
                          perturb_runner(clusters[c], budget, c));
    perturbations.push_back(std::move(perturbation));
  }

  // Pass 2 -- Eq. (2) estimation, in parallel across clusters: a pure
  // function of (matrix, λ̂) per cluster, so the schedule cannot change
  // the bits. One lone cluster instead gets the backend's within-cluster
  // parallelism (the blocked LU / batched solves).
  const size_t num_clusters = clusters.size();
  std::vector<StatusOr<RrJointResult>> estimated(
      num_clusters, Status::Internal("cluster estimation did not run"));
  if (num_clusters == 1) {
    estimated[0] = EstimateRrJoint(std::move(perturbations[0]),
                                   EstimationOptions{postprocess_threads});
  } else {
    // Split the worker budget: one worker per cluster first, and when
    // clusters are fewer than workers the remainder goes into each
    // cluster's backend (blocked LU / batched solves). The split never
    // changes bits -- the backend is thread-count invariant.
    const size_t outer_workers =
        ResolveWorkerCount(postprocess_threads, num_clusters, 1);
    const size_t total_workers = ResolveWorkerCount(
        postprocess_threads, std::numeric_limits<size_t>::max(), 1);
    const size_t inner_threads =
        std::max<size_t>(1, total_workers / outer_workers);
    ParallelChunks(num_clusters, /*chunk_size=*/1, postprocess_threads,
                   [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                       size_t end) {
                     for (size_t c = begin; c < end; ++c) {
                       estimated[c] =
                           EstimateRrJoint(std::move(perturbations[c]),
                                           EstimationOptions{inner_threads});
                     }
                   });
  }

  // Pass 3 -- accounting and decode, again cluster by cluster (the
  // epsilon sum is ordered; the row decode shards freely).
  for (size_t c = 0; c < num_clusters; ++c) {
    MDRR_ASSIGN_OR_RETURN(RrJointResult joint, std::move(estimated[c]));
    const std::vector<size_t>& cluster = clusters[c];
    result.release_epsilon += joint.epsilon;

    for (size_t position = 0; position < cluster.size(); ++position) {
      result.randomized.SetColumn(
          cluster[position],
          DecodeColumnSharded(joint.domain, joint.randomized_codes, position,
                              kDecodeChunkSize, postprocess_threads));
    }
    result.cluster_results.push_back(std::move(joint));
  }
  return result;
}

ClusterFactorizationEstimate MakeClusterEstimate(
    const RrClustersResult& result) {
  std::vector<Domain> domains;
  std::vector<std::vector<double>> joints;
  domains.reserve(result.cluster_results.size());
  joints.reserve(result.cluster_results.size());
  for (const RrJointResult& r : result.cluster_results) {
    domains.push_back(r.domain);
    joints.push_back(r.estimated);
  }
  return ClusterFactorizationEstimate(
      result.clusters, std::move(domains), std::move(joints),
      static_cast<double>(result.randomized.num_rows()));
}

}  // namespace mdrr
