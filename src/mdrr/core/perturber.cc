#include "mdrr/core/perturber.h"

#include "mdrr/core/frequency_oracle.h"

namespace mdrr {

ColumnPerturber SequentialPerturber(Rng& rng) {
  return [&rng](const RrMatrix& matrix, const std::vector<uint32_t>& codes,
                size_t /*column_index*/) {
    PerturbedColumn result;
    result.codes.resize(codes.size());
    // Fused perturb+count through the frequency-oracle seam: the direct-
    // encoding oracle delegates draw-for-draw to RandomizeRangeInto, so
    // the frequency of each output category is accumulated inside the
    // randomization sweep and the column is traversed once. λ̂ is then
    // counts * (1/n) -- the exact arithmetic EmpiricalDistribution
    // performs (reciprocal multiply, not per-entry division), so
    // estimates are bit-identical to the unfused path.
    DirectEncodingOracle oracle(matrix);
    std::vector<int64_t> counts(matrix.size(), 0);
    oracle.AccumulateRange(codes, 0, codes.size(), rng, result.codes.data(),
                           counts.data());
    result.lambda.assign(matrix.size(), 0.0);
    if (!codes.empty()) {
      const double inv_n = 1.0 / static_cast<double>(codes.size());
      for (size_t v = 0; v < counts.size(); ++v) {
        result.lambda[v] = static_cast<double>(counts[v]) * inv_n;
      }
    }
    return result;
  };
}

}  // namespace mdrr
