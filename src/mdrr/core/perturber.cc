#include "mdrr/core/perturber.h"

#include "mdrr/core/estimator.h"

namespace mdrr {

ColumnPerturber SequentialPerturber(Rng& rng) {
  return [&rng](const RrMatrix& matrix, const std::vector<uint32_t>& codes,
                size_t /*column_index*/) {
    PerturbedColumn result;
    matrix.RandomizeColumnInto(codes, rng, result.codes);
    result.lambda = EmpiricalDistribution(result.codes, matrix.size());
    return result;
  };
}

}  // namespace mdrr
