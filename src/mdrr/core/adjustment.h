// Algorithm 2 (RR-Adjustment, Section 5): iterative proportional fitting
// of record weights on the randomized data set Y so that its implied
// marginals match the Eq. (2) estimates. Works identically for single
// attributes (after RR-Independent) and attribute clusters (after
// RR-Clusters): a group is "one attribute" in the algorithm's sense.

#ifndef MDRR_CORE_ADJUSTMENT_H_
#define MDRR_CORE_ADJUSTMENT_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"

namespace mdrr {

// One marginal constraint: per-record codes over the group's domain and
// the target distribution those codes' weighted marginal must match.
struct AdjustmentGroup {
  std::vector<uint32_t> codes;
  std::vector<double> target;
};

struct AdjustmentOptions {
  int max_iterations = 100;
  // Converged when the largest absolute gap between an implied marginal
  // entry and its target falls below this.
  double tolerance = 1e-9;
  // Worker threads for the per-iteration record sweeps; 0 means one per
  // hardware core. Never changes results: partial marginal sums are
  // merged in chunk order, which depends only on (num_records,
  // chunk_size).
  size_t num_threads = 1;
  // Records per reduction chunk. Part of the numeric contract (it fixes
  // the floating-point summation tree), like shard_size in
  // BatchPerturbationOptions. 0 is clamped to 1.
  size_t chunk_size = 1 << 16;
};

struct AdjustmentResult {
  // Per-record weights, summing to 1 (the probabilities of Algorithm 2).
  std::vector<double> weights;
  int iterations = 0;
  bool converged = false;
  // Largest |implied - target| marginal entry at termination.
  double max_marginal_gap = 0.0;
};

// Runs Algorithm 2 over the given groups. Fails if groups are empty,
// sizes are inconsistent, a target is not a distribution, or a code is
// out of range of its target.
//
// Each iteration performs exactly one parallel pass over the records per
// group: pass g applies group g-1's reweighting ratio (with the
// renormalization folded into the ratio table, so no separate
// normalization scan exists) while accumulating group g's implied
// marginal; the last pass additionally accumulates every group's implied
// marginal for the convergence test and seeds the next iteration's first
// group. Output is bit-identical for any num_threads at a fixed
// chunk_size.
StatusOr<AdjustmentResult> RunRrAdjustment(
    const std::vector<AdjustmentGroup>& groups, size_t num_records,
    const AdjustmentOptions& options = {});

// Group builders for the two protocols. Each group's target is the
// protocol's projected Eq. (2) estimate.
std::vector<AdjustmentGroup> GroupsFromIndependent(
    const RrIndependentResult& result);
std::vector<AdjustmentGroup> GroupsFromClusters(
    const RrClustersResult& result);

// Convenience: adjusted-weights estimator over the protocol's randomized
// data (the WeightedRecordsEstimate of joint_estimate.h).
StatusOr<WeightedRecordsEstimate> MakeAdjustedEstimate(
    const RrIndependentResult& result, const AdjustmentOptions& options = {});
StatusOr<WeightedRecordsEstimate> MakeAdjustedEstimate(
    const RrClustersResult& result, const AdjustmentOptions& options = {});

}  // namespace mdrr

#endif  // MDRR_CORE_ADJUSTMENT_H_
