// Protocol 1 (RR-Independent, Section 3.1): each party randomizes every
// attribute independently with a KeepUniform matrix; the controller
// estimates each marginal with Eq. (2) and treats attributes as
// independent when answering joint queries.

#ifndef MDRR_CORE_RR_INDEPENDENT_H_
#define MDRR_CORE_RR_INDEPENDENT_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/joint_estimate.h"
#include "mdrr/core/perturber.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

struct RrIndependentOptions {
  // The keep probability p of each per-attribute KeepUniform matrix
  // (Section 6.3.1 design).
  double keep_probability = 0.7;
};

struct RrIndependentResult {
  // Y: the published randomized data set.
  Dataset randomized;
  // λ̂_j: empirical distribution of each randomized attribute.
  std::vector<std::vector<double>> lambda;
  // Raw Eq. (2) estimates (may leave the simplex).
  std::vector<std::vector<double>> raw_estimated;
  // Section 6.4 projected estimates π̂_j (proper distributions).
  std::vector<std::vector<double>> estimated;
  // Exact Expression (4) epsilon of each attribute's matrix.
  std::vector<double> epsilons;
  // Sequential composition over attributes.
  double total_epsilon = 0.0;
};

// Runs Protocol 1. Fails on an empty dataset.
StatusOr<RrIndependentResult> RunRrIndependent(
    const Dataset& dataset, const RrIndependentOptions& options, Rng& rng);

// The protocol frame behind RunRrIndependent, with the randomization step
// pluggable (BatchPerturbationEngine substitutes a sharded perturber that
// keys RNG sub-streams off the attribute index).
StatusOr<RrIndependentResult> RunRrIndependentWith(
    const Dataset& dataset, const RrIndependentOptions& options,
    const ColumnPerturber& perturber);

// The Protocol 1 joint-query estimator (product of estimated marginals).
IndependentMarginalsEstimate MakeIndependentEstimate(
    const RrIndependentResult& result);

}  // namespace mdrr

#endif  // MDRR_CORE_RR_INDEPENDENT_H_
