// Protocol 1 (RR-Independent, Section 3.1): each party randomizes every
// attribute independently with a KeepUniform matrix; the controller
// estimates each marginal with Eq. (2) and treats attributes as
// independent when answering joint queries.

#ifndef MDRR_CORE_RR_INDEPENDENT_H_
#define MDRR_CORE_RR_INDEPENDENT_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/joint_estimate.h"
#include "mdrr/core/perturber.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

// Which per-attribute design Protocol 1 randomizes with.
enum class IndependentDesign {
  // KeepUniform(p) per attribute (the Section 6.3.1 design).
  kKeepUniform,
  // GeometricOrdinal(epsilon) per attribute: the distance-sensitive
  // ordinal design (rr_matrix.h), with the same Expression (4) epsilon
  // for every attribute.
  kGeometricOrdinal,
};

struct RrIndependentOptions {
  // The keep probability p of each per-attribute KeepUniform matrix
  // (Section 6.3.1 design). kKeepUniform only.
  double keep_probability = 0.7;
  IndependentDesign design = IndependentDesign::kKeepUniform;
  // Per-attribute Expression (4) epsilon. kGeometricOrdinal only.
  double geometric_epsilon = 1.0;
};

// The per-attribute randomization matrix the options describe, for an
// attribute of cardinality r. Shared by the sequential and sharded
// Protocol 1 paths and by the streaming release driver, so every
// consumer of one option set randomizes and estimates through the same
// design.
RrMatrix MakeIndependentMatrix(size_t r, const RrIndependentOptions& options);

struct RrIndependentResult {
  // Y: the published randomized data set.
  Dataset randomized;
  // λ̂_j: empirical distribution of each randomized attribute.
  std::vector<std::vector<double>> lambda;
  // Raw Eq. (2) estimates (may leave the simplex).
  std::vector<std::vector<double>> raw_estimated;
  // Section 6.4 projected estimates π̂_j (proper distributions).
  std::vector<std::vector<double>> estimated;
  // Exact Expression (4) epsilon of each attribute's matrix.
  std::vector<double> epsilons;
  // Sequential composition over attributes.
  double total_epsilon = 0.0;
};

// Runs Protocol 1. Fails on an empty dataset.
StatusOr<RrIndependentResult> RunRrIndependent(
    const Dataset& dataset, const RrIndependentOptions& options, Rng& rng);

// The protocol frame behind RunRrIndependent, with the randomization step
// pluggable (BatchPerturbationEngine substitutes a sharded perturber that
// keys RNG sub-streams off the attribute index).
StatusOr<RrIndependentResult> RunRrIndependentWith(
    const Dataset& dataset, const RrIndependentOptions& options,
    const ColumnPerturber& perturber);

// The Protocol 1 joint-query estimator (product of estimated marginals).
IndependentMarginalsEstimate MakeIndependentEstimate(
    const RrIndependentResult& result);

}  // namespace mdrr

#endif  // MDRR_CORE_RR_INDEPENDENT_H_
