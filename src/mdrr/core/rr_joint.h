// Protocol 2 (RR-Joint, Section 3.2): randomized response over the
// Cartesian product of a set of attributes. Also the per-cluster engine of
// RR-Clusters, using the Section 6.3.2 matrix calibrated to the summed
// per-attribute epsilons.

#ifndef MDRR_CORE_RR_JOINT_H_
#define MDRR_CORE_RR_JOINT_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/perturber.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

struct RrJointResult {
  // The attribute subset, in the order used by `domain`.
  std::vector<size_t> attributes;
  // Mixed-radix domain over those attributes.
  Domain domain;
  // Published composite randomized codes, one per record.
  std::vector<uint32_t> randomized_codes;
  // Empirical distribution of the randomized codes.
  std::vector<double> lambda;
  // Raw Eq. (2) estimate and its Section 6.4 projection.
  std::vector<double> raw_estimated;
  std::vector<double> estimated;
  // Expression (4) epsilon of the joint matrix.
  double epsilon = 0.0;
};

// The total epsilon budget the Section 6.3.2 calibration assigns to a
// cluster: sum over the cluster's attributes of the per-attribute
// KeepUniform(|A|, p) epsilon. `use_paper_formula` switches between the
// exact Expression (4) epsilon and the paper's printed approximation.
double ClusterEpsilonBudget(const Dataset& dataset,
                            const std::vector<size_t>& attributes,
                            double keep_probability,
                            bool use_paper_formula = false);

// Runs RR-Joint over `attributes` with the optimal matrix at `epsilon`
// (Section 6.3.2). Fails on empty data, empty attribute set, a product
// domain whose size overflows 64 bits (InvalidArgument, detected
// per-multiply before any allocation), or one too large to materialize
// (> 2^31 categories; OutOfRange).
StatusOr<RrJointResult> RunRrJoint(const Dataset& dataset,
                                   const std::vector<size_t>& attributes,
                                   double epsilon, Rng& rng);

// The protocol frame behind RunRrJoint, with the randomization step
// pluggable (BatchPerturbationEngine substitutes a sharded perturber).
// RunRrJoint(..., rng) == RunRrJointWith(..., SequentialPerturber(rng)).
StatusOr<RrJointResult> RunRrJointWith(const Dataset& dataset,
                                       const std::vector<size_t>& attributes,
                                       double epsilon,
                                       const ColumnPerturber& perturber);

// The randomization half of RR-Joint: validation, matrix design, and the
// perturbation pass -- everything that consumes randomness -- without the
// Eq. (2) estimation. RR-Clusters uses this to keep the per-cluster RNG
// transcript sequential while estimation (a pure function of matrix and
// λ̂) runs in parallel across clusters afterwards.
struct RrJointPerturbation {
  std::vector<size_t> attributes;
  Domain domain;
  RrMatrix matrix;
  std::vector<uint32_t> randomized_codes;
  std::vector<double> lambda;
};

StatusOr<RrJointPerturbation> PerturbRrJoint(
    const Dataset& dataset, const std::vector<size_t>& attributes,
    double epsilon, const ColumnPerturber& perturber);

// The estimation half: Eq. (2) through the fast backend (structured O(r)
// closed form or blocked parallel LU) plus the Section 6.4 projection and
// the Expression (4) epsilon. Deterministic: draws no randomness and is
// bit-identical for any options.num_threads.
// EstimateRrJoint(PerturbRrJoint(...)) == RunRrJointWith(...).
StatusOr<RrJointResult> EstimateRrJoint(RrJointPerturbation perturbation,
                                        const EstimationOptions& options = {});

}  // namespace mdrr

#endif  // MDRR_CORE_RR_JOINT_H_
