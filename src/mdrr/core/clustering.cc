#include "mdrr/core/clustering.h"

#include <algorithm>

#include "mdrr/common/check.h"

namespace mdrr {

namespace {

// Dependence between two clusters: the maximum pairwise dependence across
// them (Section 4).
double ClusterDependence(const linalg::Matrix& dependences,
                         const std::vector<size_t>& c1,
                         const std::vector<size_t>& c2) {
  double best = 0.0;
  for (size_t i : c1) {
    for (size_t j : c2) {
      best = std::max(best, dependences(i, j));
    }
  }
  return best;
}

struct ClusterPair {
  double dependence;
  size_t first;   // Index into the cluster list.
  size_t second;  // Index into the cluster list; first < second.
};

// Descending dependence; deterministic tie-break on indices.
std::vector<ClusterPair> BuildDependenceList(
    const linalg::Matrix& dependences, const AttributeClustering& clusters) {
  std::vector<ClusterPair> list;
  for (size_t a = 0; a < clusters.size(); ++a) {
    for (size_t b = a + 1; b < clusters.size(); ++b) {
      list.push_back(ClusterPair{
          ClusterDependence(dependences, clusters[a], clusters[b]), a, b});
    }
  }
  std::sort(list.begin(), list.end(),
            [](const ClusterPair& x, const ClusterPair& y) {
              if (x.dependence != y.dependence) {
                return x.dependence > y.dependence;
              }
              if (x.first != y.first) return x.first < y.first;
              return x.second < y.second;
            });
  return list;
}

}  // namespace

double ClusterCombinations(const std::vector<int64_t>& cardinalities,
                           const std::vector<size_t>& cluster) {
  double product = 1.0;
  for (size_t j : cluster) {
    MDRR_CHECK_LT(j, cardinalities.size());
    product *= static_cast<double>(cardinalities[j]);
  }
  return product;
}

StatusOr<AttributeClustering> ClusterAttributes(
    const std::vector<int64_t>& cardinalities,
    const linalg::Matrix& dependences, const ClusteringOptions& options) {
  const size_t m = cardinalities.size();
  if (m == 0) return Status::InvalidArgument("no attributes to cluster");
  if (dependences.rows() != m || dependences.cols() != m) {
    return Status::InvalidArgument(
        "dependence matrix shape does not match attribute count");
  }
  if (options.max_combinations < 1.0) {
    return Status::InvalidArgument("Tv must be >= 1");
  }

  // Start from singleton clusters (Algorithm 1, step 3).
  AttributeClustering clusters;
  clusters.reserve(m);
  for (size_t j = 0; j < m; ++j) clusters.push_back({j});

  // Walk the dependence list in descending order; merge when the combined
  // cluster stays within Tv; recompute the list after every merge
  // (Algorithm 1, steps 5-18).
  std::vector<ClusterPair> list = BuildDependenceList(dependences, clusters);
  size_t cursor = 0;
  while (cursor < list.size() &&
         list[cursor].dependence >= options.min_dependence) {
    const ClusterPair& pair = list[cursor];
    std::vector<size_t> merged = clusters[pair.first];
    merged.insert(merged.end(), clusters[pair.second].begin(),
                  clusters[pair.second].end());
    if (ClusterCombinations(cardinalities, merged) <=
        options.max_combinations) {
      std::sort(merged.begin(), merged.end());
      // Remove the higher index first so the lower one stays valid.
      clusters.erase(clusters.begin() + static_cast<ptrdiff_t>(pair.second));
      clusters.erase(clusters.begin() + static_cast<ptrdiff_t>(pair.first));
      clusters.push_back(std::move(merged));
      list = BuildDependenceList(dependences, clusters);
      cursor = 0;
    } else {
      ++cursor;
    }
  }

  // Canonical order: sort clusters by their smallest member.
  std::sort(clusters.begin(), clusters.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              return a.front() < b.front();
            });
  return clusters;
}

StatusOr<AttributeClustering> ClusterAttributes(
    const Dataset& dataset, const linalg::Matrix& dependences,
    const ClusteringOptions& options) {
  return ClusterAttributes(dataset.Cardinalities(), dependences, options);
}

std::string ClusteringToString(const Dataset& dataset,
                               const AttributeClustering& clustering) {
  std::string out;
  for (const std::vector<size_t>& cluster : clustering) {
    out += "{";
    for (size_t k = 0; k < cluster.size(); ++k) {
      if (k > 0) out += ",";
      out += dataset.attribute(cluster[k]).name;
    }
    out += "}";
  }
  return out;
}

}  // namespace mdrr
