#include "mdrr/core/synthetic.h"

#include <algorithm>
#include <numeric>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"

namespace mdrr {

namespace {

// Expands apportioned counts into a shuffled column of codes.
std::vector<uint32_t> ExpandAndShuffle(const std::vector<int64_t>& counts,
                                       int64_t n, Rng& rng) {
  std::vector<uint32_t> column;
  column.reserve(static_cast<size_t>(n));
  for (size_t code = 0; code < counts.size(); ++code) {
    for (int64_t k = 0; k < counts[code]; ++k) {
      column.push_back(static_cast<uint32_t>(code));
    }
  }
  std::shuffle(column.begin(), column.end(), rng.engine());
  return column;
}

// Fills out[begin, end) with one shard's apportioned codes and shuffles
// the range in place on the shard's own stream.
void FillShard(const std::vector<int64_t>& shard_counts, uint32_t* out,
               size_t begin, size_t end, Rng& rng) {
  size_t pos = begin;
  for (size_t code = 0; code < shard_counts.size(); ++code) {
    for (int64_t k = 0; k < shard_counts[code]; ++k) {
      out[pos++] = static_cast<uint32_t>(code);
    }
  }
  MDRR_CHECK_EQ(pos, end);
  rng.ShuffleU32(out + begin, end - begin);
}

// Sharded expansion of one column: apportion `distribution` over n
// records, split the counts across shards, and let every shard expand
// and shuffle its own row range on stream (stream_base + shard).
std::vector<uint32_t> ExpandAndShuffleSharded(
    const std::vector<double>& distribution, int64_t n,
    const RngStreamFamily& family, uint64_t stream_base, size_t shard_size,
    size_t num_threads) {
  std::vector<int64_t> counts = ApportionCounts(distribution, n);
  std::vector<std::vector<int64_t>> per_shard =
      ApportionCountsAcrossShards(counts, n, shard_size);
  std::vector<uint32_t> column(static_cast<size_t>(n));
  ParallelChunks(static_cast<size_t>(n), shard_size, num_threads,
                 [&](size_t /*worker*/, size_t shard, size_t begin,
                     size_t end) {
                   Rng rng = family.Stream(stream_base + shard);
                   FillShard(per_shard[shard], column.data(), begin, end,
                             rng);
                 });
  return column;
}

}  // namespace

std::vector<int64_t> ApportionCounts(const std::vector<double>& distribution,
                                     int64_t n) {
  MDRR_CHECK(!distribution.empty());
  MDRR_CHECK_GE(n, 0);
  std::vector<double> mass(distribution.size());
  double total = 0.0;
  for (size_t i = 0; i < distribution.size(); ++i) {
    mass[i] = std::max(0.0, distribution[i]);
    total += mass[i];
  }
  std::vector<int64_t> counts(distribution.size(), 0);
  if (total <= 0.0 || n == 0) {
    // Nothing to apportion; spread evenly for total <= 0 with n > 0.
    if (n > 0) {
      for (int64_t k = 0; k < n; ++k) {
        ++counts[static_cast<size_t>(k) % counts.size()];
      }
    }
    return counts;
  }

  // Floor of the exact quota, then distribute the leftover records to the
  // largest fractional remainders (deterministic ties by index).
  std::vector<double> remainders(distribution.size());
  int64_t assigned = 0;
  for (size_t i = 0; i < mass.size(); ++i) {
    double quota = mass[i] / total * static_cast<double>(n);
    counts[i] = static_cast<int64_t>(quota);
    remainders[i] = quota - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  std::vector<size_t> order(mass.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (remainders[a] != remainders[b]) return remainders[a] > remainders[b];
    return a < b;
  });
  for (int64_t k = 0; k < n - assigned; ++k) {
    ++counts[order[static_cast<size_t>(k) % order.size()]];
  }
  return counts;
}

std::vector<std::vector<int64_t>> ApportionCountsAcrossShards(
    const std::vector<int64_t>& counts, int64_t n, size_t shard_size) {
  MDRR_CHECK_GT(n, 0);
  MDRR_CHECK_GT(shard_size, 0u);
  const size_t num_shards = NumChunks(static_cast<size_t>(n), shard_size);
  std::vector<std::vector<int64_t>> per_shard(num_shards);

  std::vector<int64_t> remaining = counts;
  int64_t remaining_n = n;
  for (size_t s = 0; s < num_shards; ++s) {
    if (s + 1 == num_shards) {
      per_shard[s] = std::move(remaining);
      break;
    }
    const int64_t rows = static_cast<int64_t>(
        std::min<size_t>(shard_size, static_cast<size_t>(n) - s * shard_size));
    // Exact rational quota remaining[c] * rows / remaining_n: floor via
    // integer division, then the leftover rows go to the largest
    // fractional remainders (ties by category index). A category with a
    // positive remainder has floor < quota <= remaining[c], so the +1
    // never overdraws it.
    std::vector<int64_t> share(remaining.size(), 0);
    std::vector<int64_t> frac(remaining.size(), 0);
    int64_t assigned = 0;
    for (size_t c = 0; c < remaining.size(); ++c) {
      share[c] = remaining[c] * rows / remaining_n;
      frac[c] = remaining[c] * rows % remaining_n;
      assigned += share[c];
    }
    std::vector<size_t> order(remaining.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (frac[a] != frac[b]) return frac[a] > frac[b];
      return a < b;
    });
    for (int64_t k = 0; k < rows - assigned; ++k) {
      ++share[order[static_cast<size_t>(k)]];
    }
    for (size_t c = 0; c < remaining.size(); ++c) {
      remaining[c] -= share[c];
    }
    remaining_n -= rows;
    per_shard[s] = std::move(share);
  }
  return per_shard;
}

StatusOr<Dataset> SynthesizeFromIndependent(const RrIndependentResult& result,
                                            int64_t n, Rng& rng) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  const Dataset& source = result.randomized;
  std::vector<std::vector<uint32_t>> columns(source.num_attributes());
  for (size_t j = 0; j < source.num_attributes(); ++j) {
    std::vector<int64_t> counts = ApportionCounts(result.estimated[j], n);
    columns[j] = ExpandAndShuffle(counts, n, rng);
  }
  return Dataset(source.schema(), std::move(columns));
}

StatusOr<Dataset> SynthesizeFromClusters(const RrClustersResult& result,
                                         int64_t n, Rng& rng) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  const Dataset& source = result.randomized;
  std::vector<std::vector<uint32_t>> columns(source.num_attributes());

  for (size_t c = 0; c < result.clusters.size(); ++c) {
    const RrJointResult& joint = result.cluster_results[c];
    std::vector<int64_t> counts = ApportionCounts(joint.estimated, n);
    std::vector<uint32_t> composite = ExpandAndShuffle(counts, n, rng);
    for (size_t position = 0; position < result.clusters[c].size();
         ++position) {
      std::vector<uint32_t> column(composite.size());
      for (size_t row = 0; row < composite.size(); ++row) {
        column[row] = joint.domain.DecodeAt(composite[row], position);
      }
      columns[result.clusters[c][position]] = std::move(column);
    }
  }
  return Dataset(source.schema(), std::move(columns));
}

StatusOr<Dataset> SynthesizeFromIndependentSharded(
    const RrIndependentResult& result, int64_t n,
    const RngStreamFamily& family, size_t shard_size, size_t num_threads) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  if (shard_size == 0) shard_size = 1;
  const Dataset& source = result.randomized;
  const uint64_t num_shards =
      NumChunks(static_cast<size_t>(n), shard_size);
  std::vector<std::vector<uint32_t>> columns(source.num_attributes());
  for (size_t j = 0; j < source.num_attributes(); ++j) {
    columns[j] = ExpandAndShuffleSharded(result.estimated[j], n, family,
                                         1 + j * num_shards, shard_size,
                                         num_threads);
  }
  return Dataset(source.schema(), std::move(columns));
}

StatusOr<Dataset> SynthesizeFromClustersSharded(
    const RrClustersResult& result, int64_t n, const RngStreamFamily& family,
    size_t shard_size, size_t num_threads) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  if (shard_size == 0) shard_size = 1;
  const Dataset& source = result.randomized;
  const uint64_t num_shards =
      NumChunks(static_cast<size_t>(n), shard_size);
  std::vector<std::vector<uint32_t>> columns(source.num_attributes());

  for (size_t c = 0; c < result.clusters.size(); ++c) {
    const RrJointResult& joint = result.cluster_results[c];
    std::vector<uint32_t> composite = ExpandAndShuffleSharded(
        joint.estimated, n, family, 1 + c * num_shards, shard_size,
        num_threads);
    // Decode the composite codes into the cluster's attribute columns;
    // rows are independent, so the decode shards freely too.
    for (size_t position = 0; position < result.clusters[c].size();
         ++position) {
      std::vector<uint32_t> column(composite.size());
      ParallelChunks(composite.size(), shard_size, num_threads,
                     [&](size_t /*worker*/, size_t /*shard*/, size_t begin,
                         size_t end) {
                       for (size_t row = begin; row < end; ++row) {
                         column[row] =
                             joint.domain.DecodeAt(composite[row], position);
                       }
                     });
      columns[result.clusters[c][position]] = std::move(column);
    }
  }
  return Dataset(source.schema(), std::move(columns));
}

}  // namespace mdrr
