#include "mdrr/core/synthetic.h"

#include <algorithm>
#include <numeric>

#include "mdrr/common/check.h"

namespace mdrr {

namespace {

// Expands apportioned counts into a shuffled column of codes.
std::vector<uint32_t> ExpandAndShuffle(const std::vector<int64_t>& counts,
                                       int64_t n, Rng& rng) {
  std::vector<uint32_t> column;
  column.reserve(static_cast<size_t>(n));
  for (size_t code = 0; code < counts.size(); ++code) {
    for (int64_t k = 0; k < counts[code]; ++k) {
      column.push_back(static_cast<uint32_t>(code));
    }
  }
  std::shuffle(column.begin(), column.end(), rng.engine());
  return column;
}

}  // namespace

std::vector<int64_t> ApportionCounts(const std::vector<double>& distribution,
                                     int64_t n) {
  MDRR_CHECK(!distribution.empty());
  MDRR_CHECK_GE(n, 0);
  std::vector<double> mass(distribution.size());
  double total = 0.0;
  for (size_t i = 0; i < distribution.size(); ++i) {
    mass[i] = std::max(0.0, distribution[i]);
    total += mass[i];
  }
  std::vector<int64_t> counts(distribution.size(), 0);
  if (total <= 0.0 || n == 0) {
    // Nothing to apportion; spread evenly for total <= 0 with n > 0.
    if (n > 0) {
      for (int64_t k = 0; k < n; ++k) {
        ++counts[static_cast<size_t>(k) % counts.size()];
      }
    }
    return counts;
  }

  // Floor of the exact quota, then distribute the leftover records to the
  // largest fractional remainders (deterministic ties by index).
  std::vector<double> remainders(distribution.size());
  int64_t assigned = 0;
  for (size_t i = 0; i < mass.size(); ++i) {
    double quota = mass[i] / total * static_cast<double>(n);
    counts[i] = static_cast<int64_t>(quota);
    remainders[i] = quota - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  std::vector<size_t> order(mass.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (remainders[a] != remainders[b]) return remainders[a] > remainders[b];
    return a < b;
  });
  for (int64_t k = 0; k < n - assigned; ++k) {
    ++counts[order[static_cast<size_t>(k) % order.size()]];
  }
  return counts;
}

StatusOr<Dataset> SynthesizeFromIndependent(const RrIndependentResult& result,
                                            int64_t n, Rng& rng) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  const Dataset& source = result.randomized;
  std::vector<std::vector<uint32_t>> columns(source.num_attributes());
  for (size_t j = 0; j < source.num_attributes(); ++j) {
    std::vector<int64_t> counts = ApportionCounts(result.estimated[j], n);
    columns[j] = ExpandAndShuffle(counts, n, rng);
  }
  return Dataset(source.schema(), std::move(columns));
}

StatusOr<Dataset> SynthesizeFromClusters(const RrClustersResult& result,
                                         int64_t n, Rng& rng) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  const Dataset& source = result.randomized;
  std::vector<std::vector<uint32_t>> columns(source.num_attributes());

  for (size_t c = 0; c < result.clusters.size(); ++c) {
    const RrJointResult& joint = result.cluster_results[c];
    std::vector<int64_t> counts = ApportionCounts(joint.estimated, n);
    std::vector<uint32_t> composite = ExpandAndShuffle(counts, n, rng);
    for (size_t position = 0; position < result.clusters[c].size();
         ++position) {
      std::vector<uint32_t> column(composite.size());
      for (size_t row = 0; row < composite.size(); ++row) {
        column[row] = joint.domain.DecodeAt(composite[row], position);
      }
      columns[result.clusters[c][position]] = std::move(column);
    }
  }
  return Dataset(source.schema(), std::move(columns));
}

}  // namespace mdrr
