// The three privacy-preserving dependence-assessment methods of Sections
// 4.1-4.3, plus the trusted-party oracle baseline. All return the m x m
// dependence matrix consumed by Algorithm 1 (clustering.h), together with
// the privacy cost of the assessment.

#ifndef MDRR_CORE_DEPENDENCE_ESTIMATORS_H_
#define MDRR_CORE_DEPENDENCE_ESTIMATORS_H_

#include <cstdint>

#include "mdrr/common/status_or.h"
#include "mdrr/core/dependence.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/linalg/matrix.h"
#include "mdrr/mpc/secure_sum.h"
#include "mdrr/rng/counter_rng.h"

namespace mdrr {

struct DependenceEstimate {
  linalg::Matrix dependences;  // m x m, symmetric, diagonal 1.
  // Epsilon spent by the assessment (0 for the oracle; the Section 4.2
  // method releases exact values, so its epsilon is infinity).
  double epsilon = 0.0;
  // Point-to-point messages exchanged (communication-cost bookkeeping of
  // Sections 4.1-4.3). Saturates at UINT64_MAX on wide product domains
  // instead of wrapping.
  uint64_t messages = 0;
};

// Sharding + randomness addressing for the assessment estimators.
//
// Every estimator draw is keyed by (stream, element), never by
// consumption order:
//   * pair p of the row-major upper-triangle grid (i < j) owns stream
//     1 + p -- masking draws on RngStreamFamily(seed) / counter stream
//     1 + p of `seed`, secure-sum share draws on the same stream index
//     of the oracle's salted seed;
//   * the Section 4.1 round-1 publication gives attribute j stream 1 + j
//     (stream 0 stays reserved, mirroring the batch engine's layout).
// Under kMt19937 a stream is sequential (drawn start to finish by one
// worker), so only the pair/attribute grid shards and the transcript is
// thread-count invariant. Under kPhilox the element is the record index
// (RandomizeRangeCounterInto) or the protocol word offset
// (SecureSumSession::WordsPerLiteralRun), so record ranges shard too and
// the transcript is invariant to thread count AND chunk grain by
// construction.
struct DependenceEstimatorOptions {
  RngKind rng = RngKind::kMt19937;
  DependenceShardingOptions sharding;
};

// Baseline: a trusted party computes dependences on the true data.
DependenceEstimate OracleDependences(const Dataset& dataset);

// Sharded oracle assessment: the Corollary 1 pairwise statistics are
// computed by DependenceMatrixSharded, so the O(d^2 n) scan parallelizes
// with output independent of thread count. Values are bitwise equal to
// OracleDependences except for ordinal-ordinal pairs, whose |Pearson| is
// evaluated from the pair's joint counts instead of the raw columns.
DependenceEstimate OracleDependencesSharded(
    const Dataset& dataset, const DependenceShardingOptions& sharding);

// Section 4.1: every party publishes each attribute through
// KeepUniform(|A|, p) RR; dependences are computed on the randomized data.
// By Corollary 1 the ranking of dependences is (approximately) preserved
// while each value is attenuated.
DependenceEstimate RandomizedResponseDependences(const Dataset& dataset,
                                                 double keep_probability,
                                                 uint64_t seed);

// Sharded Section 4.1 assessment. Under kMt19937 the publication replays
// the sequential single-stream transcript of
// RandomizedResponseDependences (it is one privacy-budgeted publication
// whose draws must not depend on the worker count) and only the pairwise
// statistics shard. Under kPhilox attribute j's column is drawn from
// counter stream 1 + j with element = record index, so the publication
// itself shards over record ranges and stays bit-identical at every
// thread count and shard grain by construction.
DependenceEstimate RandomizedResponseDependencesSharded(
    const Dataset& dataset, double keep_probability, uint64_t seed,
    const DependenceEstimatorOptions& options);

// Back-compat form: mt19937 publication + sharded statistics (exactly
// the historical transcript).
DependenceEstimate RandomizedResponseDependencesSharded(
    const Dataset& dataset, double keep_probability, uint64_t seed,
    const DependenceShardingOptions& sharding);

// Section 4.2: exact bivariate distributions through the secure-sum
// protocol; no masking, so no differential privacy (epsilon = +inf) but
// unlinkability of pairs. `mode` selects literal vs fast simulation.
//
// Pair p's share draws live on stream 1 + p of the oracle (see
// DependenceEstimatorOptions), so the pair grid shards: when the grid
// can feed every worker each pair runs serially on its own stream, and
// otherwise (few pairs, many records) fast-simulation pairs shard their
// record scan -- the secure sums are exact, so the sharded histogram IS
// the protocol output -- while literal pairs stay serial (the share
// exchange transcript is per pair). Output is bit-identical at every
// thread count and shard grain under both RNG policies.
StatusOr<DependenceEstimate> SecureSumDependences(
    const Dataset& dataset, mpc::SimulationMode mode, uint64_t seed,
    const DependenceEstimatorOptions& options);

// Sequential back-compat form (options = one worker, mt19937 shares).
StatusOr<DependenceEstimate> SecureSumDependences(const Dataset& dataset,
                                                  mpc::SimulationMode mode,
                                                  uint64_t seed);

// Section 4.3: every attribute *pair* is masked with KeepUniform RR over
// the pair domain, aggregated by secure sum, and the true bivariate
// distribution is recovered with Eq. (2). Differentially private; under
// the paper's unlinkability argument the releases of one attribute
// compose in parallel, so the reported epsilon is the maximum pair
// epsilon rather than the sum (Section 4.3).
//
// Pair p masks on stream 1 + p of `seed` and draws shares on stream
// 1 + p of the salted oracle seed. The adaptive split mirrors
// SecureSumDependences; in the record-range regime kPhilox masking
// shards too (element-addressed draws), while kMt19937 masking is
// drawn sequentially per pair and only the counting shards. Output is
// bit-identical at every thread count and shard grain under both RNG
// policies.
StatusOr<DependenceEstimate> PairwiseRrDependences(
    const Dataset& dataset, double keep_probability, mpc::SimulationMode mode,
    uint64_t seed, const DependenceEstimatorOptions& options);

// Sequential back-compat form (options = one worker, mt19937 draws).
StatusOr<DependenceEstimate> PairwiseRrDependences(const Dataset& dataset,
                                                   double keep_probability,
                                                   mpc::SimulationMode mode,
                                                   uint64_t seed);

}  // namespace mdrr

#endif  // MDRR_CORE_DEPENDENCE_ESTIMATORS_H_
