// The three privacy-preserving dependence-assessment methods of Sections
// 4.1-4.3, plus the trusted-party oracle baseline. All return the m x m
// dependence matrix consumed by Algorithm 1 (clustering.h), together with
// the privacy cost of the assessment.

#ifndef MDRR_CORE_DEPENDENCE_ESTIMATORS_H_
#define MDRR_CORE_DEPENDENCE_ESTIMATORS_H_

#include <cstdint>

#include "mdrr/common/status_or.h"
#include "mdrr/core/dependence.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/linalg/matrix.h"
#include "mdrr/mpc/secure_sum.h"

namespace mdrr {

struct DependenceEstimate {
  linalg::Matrix dependences;  // m x m, symmetric, diagonal 1.
  // Epsilon spent by the assessment (0 for the oracle; the Section 4.2
  // method releases exact values, so its epsilon is infinity).
  double epsilon = 0.0;
  // Point-to-point messages exchanged (communication-cost bookkeeping of
  // Sections 4.1-4.3).
  uint64_t messages = 0;
};

// Baseline: a trusted party computes dependences on the true data.
DependenceEstimate OracleDependences(const Dataset& dataset);

// Sharded oracle assessment: the Corollary 1 pairwise statistics are
// computed by DependenceMatrixSharded, so the O(d^2 n) scan parallelizes
// with output independent of thread count. Values are bitwise equal to
// OracleDependences except for ordinal-ordinal pairs, whose |Pearson| is
// evaluated from the pair's joint counts instead of the raw columns.
DependenceEstimate OracleDependencesSharded(
    const Dataset& dataset, const DependenceShardingOptions& sharding);

// Section 4.1: every party publishes each attribute through
// KeepUniform(|A|, p) RR; dependences are computed on the randomized data.
// By Corollary 1 the ranking of dependences is (approximately) preserved
// while each value is attenuated.
DependenceEstimate RandomizedResponseDependences(const Dataset& dataset,
                                                 double keep_probability,
                                                 uint64_t seed);

// Sharded Section 4.1 assessment. The per-attribute randomization stays
// on one sequential stream (it is one privacy-budgeted publication whose
// transcript must not depend on the worker count); the pairwise
// statistics over the randomized data are sharded. Bit-identical for any
// thread count at a fixed seed.
//
// The Section 4.2/4.3 estimators (SecureSumDependences,
// PairwiseRrDependences) have no sharded form: their per-pair protocol
// runs draw from one shared RNG in pair order, so the message transcript
// itself is sequential.
DependenceEstimate RandomizedResponseDependencesSharded(
    const Dataset& dataset, double keep_probability, uint64_t seed,
    const DependenceShardingOptions& sharding);

// Section 4.2: exact bivariate distributions through the secure-sum
// protocol; no masking, so no differential privacy (epsilon = +inf) but
// unlinkability of pairs. `mode` selects literal vs fast simulation.
StatusOr<DependenceEstimate> SecureSumDependences(const Dataset& dataset,
                                                  mpc::SimulationMode mode,
                                                  uint64_t seed);

// Section 4.3: every attribute *pair* is masked with KeepUniform RR over
// the pair domain, aggregated by secure sum, and the true bivariate
// distribution is recovered with Eq. (2). Differentially private; under
// the paper's unlinkability argument the releases of one attribute
// compose in parallel, so the reported epsilon is the maximum pair
// epsilon rather than the sum (Section 4.3).
StatusOr<DependenceEstimate> PairwiseRrDependences(const Dataset& dataset,
                                                   double keep_probability,
                                                   mpc::SimulationMode mode,
                                                   uint64_t seed);

}  // namespace mdrr

#endif  // MDRR_CORE_DEPENDENCE_ESTIMATORS_H_
