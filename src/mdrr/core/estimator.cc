#include "mdrr/core/estimator.h"

#include <algorithm>
#include <cmath>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"
#include "mdrr/linalg/structured.h"
#include "mdrr/stats/special_functions.h"

namespace mdrr {

std::vector<double> EmpiricalDistribution(const std::vector<uint32_t>& codes,
                                          size_t num_categories) {
  std::vector<double> distribution(num_categories, 0.0);
  if (codes.empty()) return distribution;
  for (uint32_t code : codes) {
    MDRR_CHECK_LT(code, num_categories);
    distribution[code] += 1.0;
  }
  double inv_n = 1.0 / static_cast<double>(codes.size());
  for (double& d : distribution) d *= inv_n;
  return distribution;
}

StatusOr<std::vector<double>> EstimateDistribution(
    const RrMatrix& p, const std::vector<double>& lambda_hat,
    const EstimationOptions& options) {
  return p.SolveTranspose(lambda_hat, options.num_threads);
}

std::vector<double> ProjectToSimplex(const std::vector<double>& v) {
  std::vector<double> result(v.size(), 0.0);
  double positive_mass = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] > 0.0) {
      result[i] = v[i];
      positive_mass += v[i];
    }
  }
  if (positive_mass <= 0.0) {
    double uniform = 1.0 / static_cast<double>(v.size());
    for (double& r : result) r = uniform;
    return result;
  }
  for (double& r : result) r /= positive_mass;
  return result;
}

StatusOr<std::vector<double>> EstimateProjectedDistribution(
    const RrMatrix& p, const std::vector<double>& lambda_hat,
    const EstimationOptions& options) {
  MDRR_ASSIGN_OR_RETURN(std::vector<double> raw,
                        EstimateDistribution(p, lambda_hat, options));
  return ProjectToSimplex(raw);
}

StatusOr<std::vector<double>> EstimateVariances(
    const RrMatrix& p, const std::vector<double>& lambda_hat, int64_t n,
    const EstimationOptions& options) {
  const size_t r = p.size();
  if (lambda_hat.size() != r) {
    return Status::InvalidArgument("lambda size does not match matrix size");
  }
  if (n <= 0) {
    return Status::InvalidArgument("sample size must be positive");
  }
  // Var(π̂_u) = e_uᵀ (Pᵀ)⁻¹ Σ P⁻¹ e_u = q_uᵀ Σ q_u, where q_u is the u-th
  // column of P⁻¹ (equivalently the solution of Pᵀ q = e_u). With
  // Σ = (diag(λ) - λλᵀ)/n this is
  //   (Σ_v λ_v q_u[v]² - (Σ_v λ_v q_u[v])²) / n.
  if (p.is_structured()) {
    // For P = aI + bJ, q_u[v] = δ_uv/a - c with c = b/(a(a + rb)), so the
    // two moments collapse to closed forms in λ_u and S = Σ_v λ_v:
    //   first  = λ_u d - c S            (d = 1/a)
    //   second = λ_u ((d - c)² - c²) + c² S
    // O(1) per category, O(r) total, no linear system at all.
    linalg::UniformMixture shape{r, p.Prob(0, 0),
                                 r > 1 ? p.Prob(0, 1) : 0.0};
    MDRR_ASSIGN_OR_RETURN(linalg::UniformMixtureInverse inverse,
                          shape.ClosedFormInverse());
    double d = 1.0 / inverse.bulk;
    double c = shape.off_diagonal / inverse.denominator;
    double lambda_sum = 0.0;
    for (double v : lambda_hat) lambda_sum += v;
    std::vector<double> variances(r);
    double diag_weight = (d - c) * (d - c) - c * c;
    double c_sq_sum = c * c * lambda_sum;
    for (size_t u = 0; u < r; ++u) {
      double second_moment = lambda_hat[u] * diag_weight + c_sq_sum;
      double first_moment = lambda_hat[u] * d - c * lambda_sum;
      double variance = (second_moment - first_moment * first_moment) /
                        static_cast<double>(n);
      variances[u] = variance < 0.0 ? 0.0 : variance;  // Round-off guard.
    }
    return variances;
  }
  // Dense: solve the r unit-vector systems against one factorization,
  // in bounded batches so the right-hand sides never double the r x r
  // footprint, then evaluate the moments per category. All writes land
  // in disjoint per-u slots, so any thread count produces the same bits.
  constexpr size_t kUnitBatch = 128;
  std::vector<double> variances(r);
  for (size_t base = 0; base < r; base += kUnitBatch) {
    const size_t count = std::min(kUnitBatch, r - base);
    std::vector<std::vector<double>> units(count,
                                           std::vector<double>(r, 0.0));
    for (size_t i = 0; i < count; ++i) units[i][base + i] = 1.0;
    MDRR_ASSIGN_OR_RETURN(std::vector<std::vector<double>> columns,
                          p.SolveTransposeMany(units, options.num_threads));
    ParallelChunks(count, /*chunk_size=*/16, options.num_threads,
                   [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                       size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       const std::vector<double>& q = columns[i];
                       double second_moment = 0.0;
                       double first_moment = 0.0;
                       for (size_t v = 0; v < r; ++v) {
                         second_moment += lambda_hat[v] * q[v] * q[v];
                         first_moment += lambda_hat[v] * q[v];
                       }
                       double variance =
                           (second_moment - first_moment * first_moment) /
                           static_cast<double>(n);
                       variances[base + i] = variance < 0.0 ? 0.0 : variance;
                     }
                   });
  }
  return variances;
}

StatusOr<std::vector<double>> EstimateConfidenceHalfWidths(
    const RrMatrix& p, const std::vector<double>& lambda_hat, int64_t n,
    double alpha, const EstimationOptions& options) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  MDRR_ASSIGN_OR_RETURN(std::vector<double> variances,
                        EstimateVariances(p, lambda_hat, n, options));
  double z = stats::StandardNormalQuantile(
      1.0 - alpha / (2.0 * static_cast<double>(p.size())));
  std::vector<double> half_widths(variances.size());
  for (size_t u = 0; u < variances.size(); ++u) {
    half_widths[u] = z * std::sqrt(variances[u]);
  }
  return half_widths;
}

StatusOr<std::vector<double>> IterativeBayesianUpdate(
    const RrMatrix& p, const std::vector<double>& lambda_hat,
    const IterativeBayesianOptions& options) {
  const size_t r = p.size();
  if (lambda_hat.size() != r) {
    return Status::InvalidArgument("lambda size does not match matrix size");
  }
  std::vector<double> pi(r, 1.0 / static_cast<double>(r));
  std::vector<double> next(r);
  std::vector<double> predicted(r);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // predicted[v] = Σ_w π(w) p_wv: the randomized distribution implied by
    // the current estimate.
    for (size_t v = 0; v < r; ++v) {
      double sum = 0.0;
      for (size_t w = 0; w < r; ++w) sum += pi[w] * p.Prob(w, v);
      predicted[v] = sum;
    }
    for (size_t u = 0; u < r; ++u) {
      double sum = 0.0;
      for (size_t v = 0; v < r; ++v) {
        if (predicted[v] <= 0.0) continue;
        sum += lambda_hat[v] * p.Prob(u, v) / predicted[v];
      }
      next[u] = pi[u] * sum;
    }
    // Normalize (guards round-off; the update preserves total mass when
    // lambda_hat sums to 1).
    double total = 0.0;
    for (double x : next) total += x;
    if (total <= 0.0) {
      return Status::Internal("iterative Bayesian update lost all mass");
    }
    double max_delta = 0.0;
    for (size_t u = 0; u < r; ++u) {
      next[u] /= total;
      max_delta = std::max(max_delta, std::fabs(next[u] - pi[u]));
    }
    pi.swap(next);
    if (max_delta < options.tolerance) break;
  }
  return pi;
}

}  // namespace mdrr
