// Count-query evaluation interface over estimated joint distributions.
//
// The paper's evaluation (Section 6.5) asks every method the same
// question: "how many records fall in a subset S of the data domain?".
// JointEstimate abstracts over the four ways the protocols answer it:
//   * empirical counts on a concrete data set (truth / Randomized);
//   * product of per-attribute marginals (RR-Independent, Protocol 1);
//   * product over cluster joints (RR-Clusters, Section 4);
//   * weighted randomized records (RR-Adjustment, Section 5).

#ifndef MDRR_CORE_JOINT_ESTIMATE_H_
#define MDRR_CORE_JOINT_ESTIMATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "mdrr/core/clustering.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/dataset/domain.h"

namespace mdrr {

// A subset S of the data domain restricted to `attributes`: the union of
// the listed value tuples (each tuple gives one value per attribute, in
// the same order).
struct CountQuery {
  std::vector<size_t> attributes;
  std::vector<std::vector<uint32_t>> tuples;
};

class JointEstimate {
 public:
  virtual ~JointEstimate() = default;

  // Estimated number of records in S.
  virtual double EstimateCount(const CountQuery& query) const = 0;
};

// Exact counts on a concrete dataset; used both for ground truth X_S and
// for the "Randomized" baseline of Figure 2 (raw counts on Y).
class EmpiricalCounts : public JointEstimate {
 public:
  explicit EmpiricalCounts(Dataset dataset);
  double EstimateCount(const CountQuery& query) const override;

 private:
  Dataset dataset_;
};

// Protocol 1 estimator: P(tuple) = Π_k π̂_k(tuple_k).
class IndependentMarginalsEstimate : public JointEstimate {
 public:
  // `marginals[j]` is the estimated distribution of attribute j; `n` is
  // the number of records the counts refer to.
  IndependentMarginalsEstimate(std::vector<std::vector<double>> marginals,
                               double n);
  double EstimateCount(const CountQuery& query) const override;

 private:
  std::vector<std::vector<double>> marginals_;
  double n_;
};

// RR-Clusters estimator: clusters are independent; within a cluster the
// estimated joint is used (marginalized onto the queried attributes).
class ClusterFactorizationEstimate : public JointEstimate {
 public:
  // `cluster_domains[k]` indexes the attributes of `clusters[k]` (in the
  // cluster's sorted order) and `cluster_joints[k]` is the estimated
  // distribution over that domain.
  ClusterFactorizationEstimate(AttributeClustering clusters,
                               std::vector<Domain> cluster_domains,
                               std::vector<std::vector<double>> cluster_joints,
                               double n);
  double EstimateCount(const CountQuery& query) const override;

 private:
  AttributeClustering clusters_;
  std::vector<Domain> cluster_domains_;
  std::vector<std::vector<double>> cluster_joints_;
  double n_;
};

// RR-Adjustment estimator: count = n * Σ_{records in S} w_i over the
// *randomized* dataset Y (Algorithm 2 reweights Y, never X).
class WeightedRecordsEstimate : public JointEstimate {
 public:
  // `weights` must have one entry per record of `randomized` and sum to 1.
  WeightedRecordsEstimate(Dataset randomized, std::vector<double> weights);
  double EstimateCount(const CountQuery& query) const override;

 private:
  Dataset randomized_;
  std::vector<double> weights_;
};

}  // namespace mdrr

#endif  // MDRR_CORE_JOINT_ESTIMATE_H_
