#include "mdrr/core/batch_engine.h"

#include <utility>

#include "mdrr/common/parallel.h"
#include "mdrr/core/perturber.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {

namespace {

// Salt separating the synthetic-release stream family from the
// perturbation family at the same engine seed.
constexpr uint64_t kSyntheticStreamSalt = 0x53594e5448455349ULL;  // "SYNTHESI"

// Randomizes `input` through `matrix`, shard by shard. Under kMt19937,
// shard s covers rows [s * shard_size, min(n, (s + 1) * shard_size)) and
// draws exclusively from family.Stream(stream_base + s), so the output is
// a pure function of (matrix, input, family, stream_base, shard_size).
// Under kPhilox the shards are mere work slices: every element draws its
// own counter block of philox stream `counter_stream` at the engine seed
// (RandomizeRangeCounterInto), so the output is a pure function of
// (matrix, input, seed, counter_stream) -- shard_size drops out entirely.
// Counts are accumulated per *worker* (O(threads x r) memory, not
// O(shards x r) -- joint domains can be huge) and merged after the join;
// integer sums commute, so the totals are deterministic even though the
// shard-to-worker assignment is not. The inner kernels are the
// branch-predictable structured sweeps of rr_matrix.h, with the mixing
// weight precomputed at matrix construction.
PerturbedColumn PerturbColumnSharded(const RrMatrix& matrix,
                                     const std::vector<uint32_t>& input,
                                     const RngStreamFamily& family,
                                     uint64_t stream_base, size_t shard_size,
                                     size_t num_threads, RngKind kind,
                                     uint64_t counter_stream,
                                     const ColumnShardPerturber& hook) {
  if (hook) {
    // Externalized kernel (distributed coordinator): it receives the
    // column's full randomness address and owns the determinism contract.
    return hook(matrix, input, stream_base, counter_stream);
  }
  const size_t n = input.size();
  PerturbedColumn result;
  result.codes.resize(n);

  // The frequency-oracle seam: the direct-encoding oracle's batched entry
  // points delegate draw-for-draw to the RrMatrix kernels, so the sharded
  // transcript is bit-identical to calling the matrix directly.
  const DirectEncodingOracle oracle(matrix);
  const size_t workers = ResolveWorkerCount(num_threads, n, shard_size);
  std::vector<std::vector<int64_t>> worker_counts(
      workers, std::vector<int64_t>(matrix.size(), 0));

  ParallelChunks(n, shard_size, num_threads,
                 [&](size_t worker, size_t shard, size_t begin, size_t end) {
                   if (kind == RngKind::kPhilox) {
                     oracle.AccumulateRangeCounter(
                         input, begin, end, family.base_seed(), counter_stream,
                         result.codes.data(), worker_counts[worker].data());
                     return;
                   }
                   Rng rng = family.Stream(stream_base + shard);
                   oracle.AccumulateRange(input, begin, end, rng,
                                          result.codes.data(),
                                          worker_counts[worker].data());
                 });

  stats::FrequencyTable total(std::vector<int64_t>(matrix.size(), 0));
  for (std::vector<int64_t>& partial : worker_counts) {
    total.Absorb(stats::FrequencyTable(std::move(partial)));
  }
  result.lambda = total.Proportions();
  return result;
}

// Fans a generic oracle backend over the shard grid with the SAME
// randomness addressing as PerturbColumnSharded: mt19937 shard s draws
// family.Stream(stream_base + s); philox records draw element blocks of
// stream `counter_stream`. Frequency-only backends contribute support
// counts without a microdata column.
OracleColumnResult AccumulateOracleColumnSharded(
    const FrequencyOracle& oracle, const std::vector<uint32_t>& input,
    const RngStreamFamily& family, uint64_t stream_base, size_t shard_size,
    size_t num_threads, RngKind kind, uint64_t counter_stream) {
  const size_t n = input.size();
  OracleColumnResult result;
  const bool microdata = oracle.produces_microdata();
  if (microdata) result.codes.resize(n);

  const size_t workers = ResolveWorkerCount(num_threads, n, shard_size);
  std::vector<std::vector<int64_t>> worker_counts(
      workers, std::vector<int64_t>(oracle.domain_size(), 0));

  ParallelChunks(n, shard_size, num_threads,
                 [&](size_t worker, size_t shard, size_t begin, size_t end) {
                   uint32_t* out =
                       microdata ? result.codes.data() : nullptr;
                   if (kind == RngKind::kPhilox) {
                     oracle.AccumulateRangeCounter(
                         input, begin, end, family.base_seed(), counter_stream,
                         out, worker_counts[worker].data());
                     return;
                   }
                   Rng rng = family.Stream(stream_base + shard);
                   oracle.AccumulateRange(input, begin, end, rng, out,
                                          worker_counts[worker].data());
                 });

  result.counts.assign(oracle.domain_size(), 0);
  for (const std::vector<int64_t>& partial : worker_counts) {
    for (size_t v = 0; v < partial.size(); ++v) {
      result.counts[v] += partial[v];
    }
  }
  result.lambda.assign(oracle.domain_size(), 0.0);
  if (n > 0) {
    for (size_t v = 0; v < result.counts.size(); ++v) {
      result.lambda[v] = static_cast<double>(result.counts[v]) /
                         static_cast<double>(n);
    }
  }
  return result;
}

}  // namespace

BatchPerturbationEngine::BatchPerturbationEngine(
    const BatchPerturbationOptions& options)
    : options_(options) {
  if (options_.shard_size == 0) options_.shard_size = 1;
}

size_t BatchPerturbationEngine::NumShards(size_t num_rows) const {
  return NumChunks(num_rows, options_.shard_size);
}

OracleColumnResult BatchPerturbationEngine::RunOracle(
    const FrequencyOracle& oracle, const std::vector<uint32_t>& codes,
    size_t column_index) const {
  const size_t num_shards = NumShards(codes.size());
  RngStreamFamily family(options_.seed);
  return AccumulateOracleColumnSharded(
      oracle, codes, family, 1 + column_index * num_shards,
      options_.shard_size, options_.num_threads, options_.rng,
      /*counter_stream=*/1 + column_index);
}

StatusOr<RrIndependentResult> BatchPerturbationEngine::RunIndependent(
    const Dataset& dataset, const RrIndependentOptions& options) const {
  const size_t num_shards = NumShards(dataset.num_rows());
  RngStreamFamily family(options_.seed);
  return RunRrIndependentWith(
      dataset, options,
      [this, &family, num_shards](const RrMatrix& matrix,
                                  const std::vector<uint32_t>& codes,
                                  size_t column_index) {
        return PerturbColumnSharded(matrix, codes, family,
                                    1 + column_index * num_shards,
                                    options_.shard_size, options_.num_threads,
                                    options_.rng,
                                    /*counter_stream=*/1 + column_index,
                                    options_.shard_perturber);
      });
}

StatusOr<RrJointResult> BatchPerturbationEngine::RunJoint(
    const Dataset& dataset, const std::vector<size_t>& attributes,
    double epsilon) const {
  RngStreamFamily family(options_.seed);
  MDRR_ASSIGN_OR_RETURN(
      RrJointPerturbation perturbation,
      PerturbRrJoint(
          dataset, attributes, epsilon,
          [this, &family](const RrMatrix& matrix,
                          const std::vector<uint32_t>& codes,
                          size_t /*column_index*/) {
            return PerturbColumnSharded(matrix, codes, family,
                                        /*stream_base=*/1,
                                        options_.shard_size,
                                        options_.num_threads, options_.rng,
                                        /*counter_stream=*/1,
                                        options_.shard_perturber);
          }));
  // Estimation never draws randomness, so routing it through the engine's
  // workers keeps the output bit-identical to the sequential path.
  return EstimateRrJoint(std::move(perturbation),
                         EstimationOptions{options_.num_threads});
}

StatusOr<RrClustersResult> BatchPerturbationEngine::RunClusters(
    const Dataset& dataset, const RrClustersOptions& options) const {
  const size_t num_shards = NumShards(dataset.num_rows());
  RngStreamFamily family(options_.seed);
  Rng serial_rng = family.Stream(0);
  DependenceEstimatorOptions assessment;
  assessment.rng = options_.rng;
  assessment.sharding.num_threads = options_.num_threads;
  assessment.sharding.record_chunk_size = options_.shard_size;
  return RunRrClustersWith(
      dataset, options, serial_rng,
      [this, &dataset, &family, num_shards](
          const std::vector<size_t>& cluster, double budget,
          size_t cluster_index) {
        return PerturbRrJoint(
            dataset, cluster, budget,
            [this, &family, num_shards, cluster_index](
                const RrMatrix& matrix, const std::vector<uint32_t>& codes,
                size_t /*column_index*/) {
              return PerturbColumnSharded(
                  matrix, codes, family, 1 + cluster_index * num_shards,
                  options_.shard_size, options_.num_threads, options_.rng,
                  /*counter_stream=*/1 + cluster_index,
                  options_.shard_perturber);
            });
      },
      options_.num_threads, &assessment);
}

StatusOr<AdjustmentResult> BatchPerturbationEngine::RunAdjustment(
    const std::vector<AdjustmentGroup>& groups, size_t num_records,
    AdjustmentOptions options) const {
  options.num_threads = options_.num_threads;
  options.chunk_size = options_.shard_size;
  return RunRrAdjustment(groups, num_records, options);
}

StatusOr<Dataset> BatchPerturbationEngine::SynthesizeIndependent(
    const RrIndependentResult& result, int64_t n) const {
  RngStreamFamily family(options_.seed ^ kSyntheticStreamSalt);
  return SynthesizeFromIndependentSharded(result, n, family,
                                          options_.shard_size,
                                          options_.num_threads);
}

StatusOr<Dataset> BatchPerturbationEngine::SynthesizeClusters(
    const RrClustersResult& result, int64_t n) const {
  RngStreamFamily family(options_.seed ^ kSyntheticStreamSalt);
  return SynthesizeFromClustersSharded(result, n, family,
                                       options_.shard_size,
                                       options_.num_threads);
}

}  // namespace mdrr
