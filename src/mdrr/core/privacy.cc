#include "mdrr/core/privacy.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "mdrr/common/check.h"

namespace mdrr {

double KeepUniformEpsilon(size_t r, double keep_probability) {
  MDRR_CHECK_GE(r, 1u);
  MDRR_CHECK_GE(keep_probability, 0.0);
  MDRR_CHECK_LE(keep_probability, 1.0);
  if (keep_probability >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::log(1.0 + keep_probability * static_cast<double>(r) /
                            (1.0 - keep_probability));
}

double PaperKeepUniformEpsilon(size_t r, double keep_probability) {
  MDRR_CHECK_GE(r, 1u);
  MDRR_CHECK_GT(keep_probability, 0.0);
  if (keep_probability >= 1.0) {
    return std::numeric_limits<double>::infinity();
  }
  return std::fabs(std::log(keep_probability * static_cast<double>(r) /
                            (1.0 - keep_probability)));
}

double SequentialComposition(const std::vector<double>& epsilons) {
  double total = 0.0;
  for (double e : epsilons) {
    MDRR_CHECK_GE(e, 0.0);
    total += e;
  }
  return total;
}

void PrivacyAccountant::Spend(const std::string& label, double epsilon) {
  MDRR_CHECK_GE(epsilon, 0.0);
  releases_.push_back(Release{label, epsilon, /*parallel=*/false});
}

void PrivacyAccountant::SpendParallel(const std::string& label,
                                      double epsilon) {
  MDRR_CHECK_GE(epsilon, 0.0);
  releases_.push_back(Release{label, epsilon, /*parallel=*/true});
}

double PrivacyAccountant::TotalEpsilon() const {
  double sequential = 0.0;
  double parallel_max = 0.0;
  bool has_parallel = false;
  for (const Release& r : releases_) {
    if (r.parallel) {
      parallel_max = std::max(parallel_max, r.epsilon);
      has_parallel = true;
    } else {
      sequential += r.epsilon;
    }
  }
  return sequential + (has_parallel ? parallel_max : 0.0);
}

std::string PrivacyAccountant::Report() const {
  std::string out;
  char buf[160];
  for (const Release& r : releases_) {
    std::snprintf(buf, sizeof(buf), "  %-40s eps=%.6f%s\n", r.label.c_str(),
                  r.epsilon, r.parallel ? " (parallel pool)" : "");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  total (sequential composition): %.6f\n",
                TotalEpsilon());
  out += buf;
  return out;
}

}  // namespace mdrr
