// Streaming report collection: the data-controller side of a live survey.
// Reports arrive one at a time; the collector maintains running counts
// and can produce the Eq. (2) estimate, its confidence half-widths, and
// the current privacy posture at any moment -- no need to batch.

#ifndef MDRR_CORE_COLLECTOR_H_
#define MDRR_CORE_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_matrix.h"

namespace mdrr {

class ReportCollector {
 public:
  // The collector owns a copy of the public randomization matrix the
  // respondents use.
  explicit ReportCollector(RrMatrix matrix);

  // Ingests one randomized report. Fails if the code is out of range.
  Status AddReport(uint32_t code);

  // Ingests a batch.
  Status AddReports(const std::vector<uint32_t>& codes);

  int64_t num_reports() const { return num_reports_; }
  const std::vector<int64_t>& counts() const { return counts_; }

  // Empirical distribution of the reports so far (all zeros when empty).
  std::vector<double> Lambda() const;

  // Current Eq. (2) estimate, projected onto the simplex (Section 6.4).
  // Fails when no reports have arrived or the matrix is singular.
  StatusOr<std::vector<double>> Estimate() const;

  // Simultaneous (1 - alpha) confidence half-widths of the raw estimate
  // at the current sample size (estimator.h machinery).
  StatusOr<std::vector<double>> ConfidenceHalfWidths(double alpha) const;

  // Per-respondent epsilon of the design in use.
  double Epsilon() const { return matrix_.Epsilon(); }

 private:
  RrMatrix matrix_;
  std::vector<int64_t> counts_;
  int64_t num_reports_ = 0;
};

}  // namespace mdrr

#endif  // MDRR_CORE_COLLECTOR_H_
