// The perturbation hook the protocol frames are parameterized on.
//
// RunRrIndependentWith / RunRrJointWith perform validation, matrix
// design, estimation, and privacy accounting; the ColumnPerturber decides
// *how* a column of codes is pushed through the randomization matrix.
// SequentialPerturber draws from one Rng in record order (the classic
// protocols); BatchPerturbationEngine substitutes a sharded
// multi-threaded perturber without duplicating the protocol frames.

#ifndef MDRR_CORE_PERTURBER_H_
#define MDRR_CORE_PERTURBER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "mdrr/core/rr_matrix.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

// A randomized column and its empirical distribution λ̂.
struct PerturbedColumn {
  std::vector<uint32_t> codes;
  std::vector<double> lambda;
};

// Perturbs `codes` through `matrix`. `column_index` is the 0-based
// position of the column within the protocol run (attribute index for
// RR-Independent, always 0 for RR-Joint) so implementations can key
// per-column RNG sub-streams off it.
using ColumnPerturber = std::function<PerturbedColumn(
    const RrMatrix& matrix, const std::vector<uint32_t>& codes,
    size_t column_index)>;

// Perturber drawing sequentially from `rng`, which must outlive the
// returned callable.
ColumnPerturber SequentialPerturber(Rng& rng);

}  // namespace mdrr

#endif  // MDRR_CORE_PERTURBER_H_
