// PRAM (post-randomization method, Kooiman-Willenborg-Gouweleeuw 1998):
// the controller-side sibling of randomized response the paper discusses
// in Section 2.1 -- identical matrix mechanics, but the randomization is
// applied by the data controller *after* collecting the true data instead
// of by each respondent before submission. Estimation via Eq. (2) is
// shared with RR; only the trust model differs (PRAM protects the
// published file, not the collection channel).

#ifndef MDRR_CORE_PRAM_H_
#define MDRR_CORE_PRAM_H_

#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

struct PramResult {
  // The post-randomized data set the controller may publish.
  Dataset randomized;
  // Per-attribute Section 6.4 projected estimates of the true marginals,
  // recoverable by any consumer of the published file.
  std::vector<std::vector<double>> estimated;
  // Expression (4) epsilon of each attribute's matrix (protection of the
  // published file, not of the collection).
  std::vector<double> epsilons;
};

// Applies per-attribute PRAM with KeepUniform(|A_j|, keep_probability)
// matrices to the collected data set. Fails on empty data.
StatusOr<PramResult> ApplyPram(const Dataset& collected,
                               double keep_probability, Rng& rng);

// Invariant PRAM: rescales a KeepUniform matrix so that the *expected*
// marginal of the published file equals the observed marginal of the
// collected file (the classic invariant-PRAM construction R = P' with
// P'_uv chosen so that lambda = pi). Returns the invariant matrix for the
// observed distribution; rows with zero mass fall back to the identity.
// Fails if the base matrix is singular or the invariant system has no
// row-stochastic solution for this distribution.
StatusOr<RrMatrix> InvariantPramMatrix(const RrMatrix& base,
                                       const std::vector<double>& observed);

}  // namespace mdrr

#endif  // MDRR_CORE_PRAM_H_
