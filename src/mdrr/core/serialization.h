// Plain-text serialization of estimation artifacts, so the controller
// can persist what a protocol run produced (clusters + estimated joint
// distributions) and analysts can answer count queries later without
// re-running anything. Format (line-oriented, versioned):
//
//   mdrr-estimates v1
//   attributes <m>
//   n <records>
//   clusters <k>
//   cluster <j1> <j2> ...          (k lines, sorted attribute indices)
//   joint <p1> <p2> ...            (k lines, cluster-domain order)

#ifndef MDRR_CORE_SERIALIZATION_H_
#define MDRR_CORE_SERIALIZATION_H_

#include <string>

#include "mdrr/common/status_or.h"
#include "mdrr/core/joint_estimate.h"
#include "mdrr/core/rr_clusters.h"

namespace mdrr {

// The persisted form of an RR-Clusters estimation result.
struct ClusterEstimates {
  size_t num_attributes = 0;
  double num_records = 0;
  AttributeClustering clusters;
  std::vector<std::vector<double>> joints;  // One per cluster.
};

// Extracts the persistable part of a protocol result.
ClusterEstimates EstimatesFromResult(const RrClustersResult& result);

// Writes to `path`. Fails on I/O errors.
Status WriteClusterEstimates(const ClusterEstimates& estimates,
                             const std::string& path);

// Reads back; validates the header, counts and distribution lengths
// against each other (cardinalities are recovered from the dataset schema
// at query time, see MakeEstimateFromSerialized).
StatusOr<ClusterEstimates> ReadClusterEstimates(const std::string& path);

// Rebuilds a count-query estimator from persisted estimates plus the
// schema they were computed against. Fails if the clustering or joint
// sizes are inconsistent with the schema.
StatusOr<ClusterFactorizationEstimate> MakeEstimateFromSerialized(
    const ClusterEstimates& estimates, const Dataset& schema_source);

}  // namespace mdrr

#endif  // MDRR_CORE_SERIALIZATION_H_
