// Algorithm 1: clustering of attributes by dependence, subject to a cap
// Tv on the number of category combinations per cluster and a floor Td on
// the dependence required to merge.

#ifndef MDRR_CORE_CLUSTERING_H_
#define MDRR_CORE_CLUSTERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr {

struct ClusteringOptions {
  // Tv: maximum number of attribute-value combinations in a cluster.
  double max_combinations = 50;
  // Td: minimum inter-cluster dependence for a merge.
  double min_dependence = 0.1;
};

// A clustering is a partition of attribute indices; clusters and their
// members are kept sorted for determinism.
using AttributeClustering = std::vector<std::vector<size_t>>;

// Runs Algorithm 1. `cardinalities[j]` is |A_j|; `dependences` is the
// symmetric m x m matrix from dependence_estimators.h. The dependence
// between two clusters is the maximum dependence over cross pairs.
//
// Fails if sizes are inconsistent. Single-attribute clusters whose own
// cardinality exceeds Tv are allowed (they simply never merge), matching
// the algorithm's initialization.
StatusOr<AttributeClustering> ClusterAttributes(
    const std::vector<int64_t>& cardinalities,
    const linalg::Matrix& dependences, const ClusteringOptions& options);

// Convenience: cardinalities from `dataset`.
StatusOr<AttributeClustering> ClusterAttributes(
    const Dataset& dataset, const linalg::Matrix& dependences,
    const ClusteringOptions& options);

// Number of category combinations in `cluster` (product of cardinalities).
double ClusterCombinations(const std::vector<int64_t>& cardinalities,
                           const std::vector<size_t>& cluster);

// "{A,B}{C}{D}" using attribute names; for logs and reports.
std::string ClusteringToString(const Dataset& dataset,
                               const AttributeClustering& clustering);

}  // namespace mdrr

#endif  // MDRR_CORE_CLUSTERING_H_
