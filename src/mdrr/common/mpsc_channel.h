// Lock-free bounded MPSC channel for continuous report ingestion.
//
// A StreamChannel moves fixed-capacity report nodes from many producer
// threads to one consumer without a lock anywhere on the hot path. It is
// two classic lock-free structures glued by an invariant:
//
//   * a Treiber stack of free nodes (the pool), with the head packed as
//     {32-bit node index, 32-bit tag} in one atomic 64-bit word so the
//     ABA problem is handled portably (no double-width CAS needed);
//   * a Vyukov bounded ring of node indices with per-cell sequence
//     counters, restricted to a single consumer.
//
// The ring capacity equals the pool capacity, and only nodes acquired
// from the pool are ever pushed, so `Push` can never find the ring full:
// backpressure surfaces exactly once, as `TryAcquire` returning nullptr
// when the pool is exhausted. Producers that respect that signal never
// spin inside the channel.
//
// Lifecycle per report: TryAcquire -> fill node -> Push; the consumer
// TryPop -> read node -> Recycle. A node is owned by exactly one thread
// between those transitions, so its payload fields need no atomics.

#ifndef MDRR_COMMON_MPSC_CHANNEL_H_
#define MDRR_COMMON_MPSC_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace mdrr {

// One in-flight report: the global arrival sequence number and the
// party's perturbed per-attribute codes. `codes` keeps its heap buffer
// across recycles, so steady-state ingestion allocates nothing.
struct StreamReportNode {
  uint64_t sequence = 0;
  std::vector<uint32_t> codes;
};

class StreamChannel {
 public:
  // A channel able to hold `capacity` in-flight reports (clamped up to a
  // minimum of 2; ring storage rounds up to the next power of two).
  // Capacity must fit a 32-bit index; this is checked.
  explicit StreamChannel(size_t capacity);

  StreamChannel(const StreamChannel&) = delete;
  StreamChannel& operator=(const StreamChannel&) = delete;

  size_t capacity() const { return capacity_; }

  // Pops a free node off the pool, or nullptr when every node is in
  // flight (backpressure: the consumer has not kept up). Thread-safe.
  StreamReportNode* TryAcquire();

  // Publishes a node previously returned by TryAcquire. Thread-safe;
  // never blocks and never fails (see the capacity invariant above).
  void Push(StreamReportNode* node);

  // Dequeues the oldest published node, or nullptr when the ring is
  // empty. Single consumer only. With one producer, nodes come out in
  // exactly the order they were pushed (FIFO) -- the replay-mode
  // determinism contract.
  StreamReportNode* TryPop();

  // Returns a consumed node to the free pool. Thread-safe.
  void Recycle(StreamReportNode* node);

 private:
  static constexpr uint64_t kIndexMask = 0xffffffffull;

  // Treiber stack head: {tag << 32 | top index}; kIndexMask as the index
  // means empty. The tag increments on every pop, so a stalled
  // compare-exchange cannot mistake a recycled head for the one it read.
  std::atomic<uint64_t> free_head_;

  // One ring cell: `seq` is the Vyukov availability counter, `node` the
  // published index. Padded to a cache line so neighboring cells never
  // false-share under producer contention.
  struct alignas(64) Cell {
    std::atomic<uint64_t> seq;
    uint32_t node = 0;
  };

  size_t capacity_;
  uint64_t ring_mask_;
  std::vector<StreamReportNode> nodes_;
  // Per-node next pointer of the free stack (index, kIndexMask = none).
  std::vector<std::atomic<uint32_t>> next_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<uint64_t> enqueue_pos_;
  alignas(64) std::atomic<uint64_t> dequeue_pos_;
};

}  // namespace mdrr

#endif  // MDRR_COMMON_MPSC_CHANNEL_H_
