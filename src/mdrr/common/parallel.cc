#include "mdrr/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "mdrr/common/check.h"

namespace mdrr {

size_t NumChunks(size_t n, size_t chunk_size) {
  MDRR_CHECK_GT(chunk_size, 0u);
  return std::max<size_t>(1, (n + chunk_size - 1) / chunk_size);
}

size_t ResolveWorkerCount(size_t num_threads, size_t n, size_t chunk_size) {
  size_t workers = num_threads;
  if (workers == 0) {
    workers = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  return std::min(workers, NumChunks(n, chunk_size));
}

void ParallelChunks(size_t n, size_t chunk_size, size_t num_threads,
                    const std::function<void(size_t, size_t, size_t,
                                             size_t)>& fn) {
  const size_t num_chunks = NumChunks(n, chunk_size);
  const size_t workers = ResolveWorkerCount(num_threads, n, chunk_size);

  std::atomic<size_t> next_chunk{0};
  auto run_worker = [&](size_t worker_id) {
    for (size_t c = next_chunk.fetch_add(1); c < num_chunks;
         c = next_chunk.fetch_add(1)) {
      size_t begin = c * chunk_size;
      size_t end = std::min(n, begin + chunk_size);
      fn(worker_id, c, begin, end);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    pool.emplace_back(run_worker, w);
  }
  run_worker(0);  // The calling thread is worker 0.
  for (std::thread& t : pool) t.join();
}

void ChunkedDoubleAccumulator::ReduceInto(double* out) const {
  for (size_t v = 0; v < width_; ++v) out[v] = 0.0;
  const size_t num_chunks = stride_ == 0 ? 0 : slots_.size() / stride_;
  for (size_t c = 0; c < num_chunks; ++c) {
    const double* row = slots_.data() + c * stride_;
    for (size_t v = 0; v < width_; ++v) out[v] += row[v];
  }
}

}  // namespace mdrr
