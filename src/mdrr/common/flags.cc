#include "mdrr/common/flags.h"

#include <string_view>

#include "mdrr/common/string_util.h"

namespace mdrr {

void FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) continue;
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool FlagSet::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string FlagSet::GetString(const std::string& key,
                               const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagSet::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  auto parsed = ParseInt64(it->second);
  return parsed.ok() ? parsed.value() : default_value;
}

double FlagSet::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  auto parsed = ParseDouble(it->second);
  return parsed.ok() ? parsed.value() : default_value;
}

bool FlagSet::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

}  // namespace mdrr
