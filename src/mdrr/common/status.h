// Exception-free error handling for the mdrr library.
//
// Library functions that can fail return a Status (or a StatusOr<T>, see
// status_or.h). Programmer errors (violated preconditions that indicate a
// bug rather than bad input) use the MDRR_CHECK macros from check.h instead.
//
// Example:
//   Status s = dataset.Validate();
//   if (!s.ok()) return s;

#ifndef MDRR_COMMON_STATUS_H_
#define MDRR_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mdrr {

// Broad error categories, modeled on the usual database-library taxonomy.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// Value type carrying a StatusCode plus a context message. Ok statuses are
// cheap (no allocation). Copyable and movable.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace mdrr

// Propagates a non-OK status to the caller.
#define MDRR_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::mdrr::Status _mdrr_status = (expr);           \
    if (!_mdrr_status.ok()) return _mdrr_status;    \
  } while (false)

#endif  // MDRR_COMMON_STATUS_H_
