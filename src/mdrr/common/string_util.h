// Small string helpers used across the library (no external dependencies).

#ifndef MDRR_COMMON_STRING_UTIL_H_
#define MDRR_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "mdrr/common/status_or.h"

namespace mdrr {

// Splits `input` on `delimiter`; empty fields are preserved.
std::vector<std::string> Split(std::string_view input, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

// Joins `parts` with `separator` in between.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

// Strict numeric parsing: the whole (stripped) string must be consumed.
StatusOr<int64_t> ParseInt64(std::string_view input);
StatusOr<double> ParseDouble(std::string_view input);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace mdrr

#endif  // MDRR_COMMON_STRING_UTIL_H_
