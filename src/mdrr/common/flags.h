// Minimal --key=value command-line flag parsing for benches and examples.
//
// Example:
//   FlagSet flags;
//   flags.Parse(argc, argv);
//   int runs = flags.GetInt("runs", 25);
//   double sigma = flags.GetDouble("sigma", 0.1);

#ifndef MDRR_COMMON_FLAGS_H_
#define MDRR_COMMON_FLAGS_H_

#include <map>
#include <string>

namespace mdrr {

class FlagSet {
 public:
  // Consumes arguments of the form --key=value or --key (value "true").
  // Non-flag arguments are ignored (so google-benchmark flags pass through).
  void Parse(int argc, char** argv);

  bool Has(const std::string& key) const;

  // Typed getters with defaults; a malformed value falls back to the
  // default (benches should not crash on a typo'd flag).
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mdrr

#endif  // MDRR_COMMON_FLAGS_H_
