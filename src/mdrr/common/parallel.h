// Chunked parallel-for over an index range.
//
// The range [0, n) is split into fixed-size chunks that workers claim
// atomically, so the chunk decomposition -- and therefore anything keyed
// on chunk_index, like an RNG sub-stream -- is independent of the worker
// count. Callers that write output do so into disjoint [begin, end)
// slices and need no synchronization.

#ifndef MDRR_COMMON_PARALLEL_H_
#define MDRR_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace mdrr {

// Invokes fn(worker_id, chunk_index, begin, end) for every chunk
// [c * chunk_size, min(n, (c + 1) * chunk_size)) of [0, n).
// `num_threads` 0 means one worker per hardware core; the worker count is
// clamped to the chunk count and worker 0 is the calling thread.
// Precondition: chunk_size > 0. `fn` must be safe to call concurrently.
void ParallelChunks(size_t n, size_t chunk_size, size_t num_threads,
                    const std::function<void(size_t worker_id,
                                             size_t chunk_index, size_t begin,
                                             size_t end)>& fn);

// Number of chunks ParallelChunks uses for a range of `n` (>= 1; the last
// chunk may be short). Precondition: chunk_size > 0.
size_t NumChunks(size_t n, size_t chunk_size);

// The worker count ParallelChunks resolves `num_threads` to for `n`
// elements in chunks of `chunk_size` (0 -> hardware concurrency, then
// clamped to the chunk count).
size_t ResolveWorkerCount(size_t num_threads, size_t n, size_t chunk_size);

// Deterministic parallel reduction of floating-point partial sums.
//
// Integer counts can be merged per *worker* because integer addition
// commutes exactly, but double sums do not: merging in whatever order
// workers happened to claim chunks would make the totals depend on the
// thread count. A ChunkedDoubleAccumulator instead gives every chunk its
// own slot row and merges rows in ascending chunk order, which depends
// only on (n, chunk_size) -- so reductions are bit-identical for any
// worker count.
class ChunkedDoubleAccumulator {
 public:
  // `width` slots per chunk, all zero-initialized. Rows are padded to a
  // 64-byte stride so neighboring chunks' hot `+=` targets never share a
  // cache line across workers (padding never enters the reduction).
  ChunkedDoubleAccumulator(size_t num_chunks, size_t width)
      : width_(width),
        stride_((width + kDoublesPerCacheLine - 1) / kDoublesPerCacheLine *
                kDoublesPerCacheLine),
        slots_(num_chunks * stride_, 0.0) {}

  // The slot row of `chunk_index` (length width()). Rows of distinct
  // chunks never alias, so workers write without synchronization.
  double* Row(size_t chunk_index) {
    return slots_.data() + chunk_index * stride_;
  }
  const double* Row(size_t chunk_index) const {
    return slots_.data() + chunk_index * stride_;
  }

  // Re-zeroes every slot (buffer reuse across passes).
  void Reset() { slots_.assign(slots_.size(), 0.0); }

  // Column-wise totals merged in ascending chunk order, written into
  // `out[0, width())`.
  void ReduceInto(double* out) const;

  size_t width() const { return width_; }

  // Chunk rows this accumulator holds (the num_chunks it was built
  // with). Wire codecs (net/wire.h) ship partial rows chunk-by-chunk
  // and need the row count to bound what a peer may claim.
  size_t num_chunks() const {
    return stride_ == 0 ? 0 : slots_.size() / stride_;
  }

 private:
  static constexpr size_t kDoublesPerCacheLine = 8;

  size_t width_;
  size_t stride_;
  std::vector<double> slots_;
};

}  // namespace mdrr

#endif  // MDRR_COMMON_PARALLEL_H_
