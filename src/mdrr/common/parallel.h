// Chunked parallel-for over an index range.
//
// The range [0, n) is split into fixed-size chunks that workers claim
// atomically, so the chunk decomposition -- and therefore anything keyed
// on chunk_index, like an RNG sub-stream -- is independent of the worker
// count. Callers that write output do so into disjoint [begin, end)
// slices and need no synchronization.

#ifndef MDRR_COMMON_PARALLEL_H_
#define MDRR_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace mdrr {

// Invokes fn(worker_id, chunk_index, begin, end) for every chunk
// [c * chunk_size, min(n, (c + 1) * chunk_size)) of [0, n).
// `num_threads` 0 means one worker per hardware core; the worker count is
// clamped to the chunk count and worker 0 is the calling thread.
// Precondition: chunk_size > 0. `fn` must be safe to call concurrently.
void ParallelChunks(size_t n, size_t chunk_size, size_t num_threads,
                    const std::function<void(size_t worker_id,
                                             size_t chunk_index, size_t begin,
                                             size_t end)>& fn);

// Number of chunks ParallelChunks uses for a range of `n` (>= 1; the last
// chunk may be short). Precondition: chunk_size > 0.
size_t NumChunks(size_t n, size_t chunk_size);

// The worker count ParallelChunks resolves `num_threads` to for `n`
// elements in chunks of `chunk_size` (0 -> hardware concurrency, then
// clamped to the chunk count).
size_t ResolveWorkerCount(size_t num_threads, size_t n, size_t chunk_size);

}  // namespace mdrr

#endif  // MDRR_COMMON_PARALLEL_H_
