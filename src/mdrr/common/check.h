// Invariant-checking macros for programmer errors.
//
// MDRR_CHECK fires in all build types; failures print the condition and
// location to stderr and abort. Use Status (status.h) for errors caused by
// user input; use these macros for conditions that can only be false when
// the library itself has a bug.
//
// MDRR_DCHECK is the same contract compiled only into debug (!NDEBUG)
// builds. Use it for per-element checks inside hot loops -- randomization
// kernels, per-draw preconditions -- where the branch is measurable at
// millions of records; the surrounding API keeps full MDRR_CHECK
// validation at batch granularity.

#ifndef MDRR_COMMON_CHECK_H_
#define MDRR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace mdrr::internal {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line) {
  std::fprintf(stderr, "MDRR_CHECK failed: %s at %s:%d\n", condition, file,
               line);
  std::abort();
}

}  // namespace mdrr::internal

#define MDRR_CHECK(condition)                                          \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::mdrr::internal::CheckFailed(#condition, __FILE__, __LINE__);   \
    }                                                                  \
  } while (false)

#define MDRR_CHECK_EQ(a, b) MDRR_CHECK((a) == (b))
#define MDRR_CHECK_NE(a, b) MDRR_CHECK((a) != (b))
#define MDRR_CHECK_LT(a, b) MDRR_CHECK((a) < (b))
#define MDRR_CHECK_LE(a, b) MDRR_CHECK((a) <= (b))
#define MDRR_CHECK_GT(a, b) MDRR_CHECK((a) > (b))
#define MDRR_CHECK_GE(a, b) MDRR_CHECK((a) >= (b))

#ifdef NDEBUG
// Never evaluated, but still type-checked so release builds cannot rot
// the condition or leave its operands unused.
#define MDRR_DCHECK(condition)       \
  do {                               \
    if (false) {                     \
      static_cast<void>(condition);  \
    }                                \
  } while (false)
#else
#define MDRR_DCHECK(condition) MDRR_CHECK(condition)
#endif

#define MDRR_DCHECK_EQ(a, b) MDRR_DCHECK((a) == (b))
#define MDRR_DCHECK_NE(a, b) MDRR_DCHECK((a) != (b))
#define MDRR_DCHECK_LT(a, b) MDRR_DCHECK((a) < (b))
#define MDRR_DCHECK_LE(a, b) MDRR_DCHECK((a) <= (b))
#define MDRR_DCHECK_GT(a, b) MDRR_DCHECK((a) > (b))
#define MDRR_DCHECK_GE(a, b) MDRR_DCHECK((a) >= (b))

#endif  // MDRR_COMMON_CHECK_H_
