// StatusOr<T>: either a value of type T or a non-OK Status.
//
// Example:
//   StatusOr<Dataset> ds = LoadAdultCsv(path);
//   if (!ds.ok()) return ds.status();
//   Use(ds.value());

#ifndef MDRR_COMMON_STATUS_OR_H_
#define MDRR_COMMON_STATUS_OR_H_

#include <optional>
#include <utility>

#include "mdrr/common/check.h"
#include "mdrr/common/status.h"

namespace mdrr {

template <typename T>
class StatusOr {
 public:
  // Implicit construction from a value or a (non-OK) status keeps call
  // sites readable: `return result;` / `return Status::InvalidArgument(..)`.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    MDRR_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& {
    MDRR_CHECK(ok());
    return *value_;
  }
  T& value() & {
    MDRR_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    MDRR_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mdrr

// Evaluates `rexpr` (a StatusOr<T>), propagating a non-OK status to the
// caller; otherwise declares `lhs` bound to the moved-out value.
#define MDRR_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  MDRR_ASSIGN_OR_RETURN_IMPL_(                                     \
      MDRR_STATUS_MACRO_CONCAT_(_mdrr_statusor, __LINE__), lhs, rexpr)

#define MDRR_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define MDRR_STATUS_MACRO_CONCAT_(x, y) MDRR_STATUS_MACRO_CONCAT_INNER_(x, y)

#define MDRR_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                \
  if (!statusor.ok()) return statusor.status();           \
  lhs = std::move(statusor).value()

#endif  // MDRR_COMMON_STATUS_OR_H_
