#include "mdrr/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace mdrr {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> result;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      result.emplace_back(input.substr(start));
      break;
    }
    result.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return result;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

StatusOr<int64_t> ParseInt64(std::string_view input) {
  std::string_view stripped = StripWhitespace(input);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  int64_t value = 0;
  const char* begin = stripped.data();
  const char* end = begin + stripped.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("cannot parse integer: '" +
                                   std::string(input) + "'");
  }
  return value;
}

StatusOr<double> ParseDouble(std::string_view input) {
  std::string_view stripped = StripWhitespace(input);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  // std::from_chars for double is incomplete on some toolchains; use strtod
  // on a NUL-terminated copy for portability.
  std::string buffer(stripped);
  char* parse_end = nullptr;
  double value = std::strtod(buffer.c_str(), &parse_end);
  if (parse_end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("cannot parse double: '" +
                                   std::string(input) + "'");
  }
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace mdrr
