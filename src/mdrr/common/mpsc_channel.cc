#include "mdrr/common/mpsc_channel.h"

#include "mdrr/common/check.h"

namespace mdrr {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr uint64_t PackHead(uint32_t index, uint32_t tag) {
  return (static_cast<uint64_t>(tag) << 32) | index;
}

}  // namespace

StreamChannel::StreamChannel(size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {
  MDRR_CHECK_LT(capacity_, kIndexMask);
  const size_t ring = NextPowerOfTwo(capacity_);
  ring_mask_ = ring - 1;

  nodes_.resize(capacity_);
  next_ = std::vector<std::atomic<uint32_t>>(capacity_);
  // Seed the free stack with every node: i -> i + 1 -> ... -> empty.
  for (size_t i = 0; i + 1 < capacity_; ++i) {
    next_[i].store(static_cast<uint32_t>(i + 1), std::memory_order_relaxed);
  }
  next_[capacity_ - 1].store(static_cast<uint32_t>(kIndexMask),
                             std::memory_order_relaxed);
  free_head_.store(PackHead(0, 0), std::memory_order_relaxed);

  cells_ = std::make_unique<Cell[]>(ring);
  for (size_t i = 0; i < ring; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
  enqueue_pos_.store(0, std::memory_order_relaxed);
  dequeue_pos_.store(0, std::memory_order_relaxed);
}

StreamReportNode* StreamChannel::TryAcquire() {
  uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    const uint32_t top = static_cast<uint32_t>(head & kIndexMask);
    if (top == kIndexMask) return nullptr;  // Pool exhausted: backpressure.
    const uint32_t tag = static_cast<uint32_t>(head >> 32);
    const uint32_t next = next_[top].load(std::memory_order_relaxed);
    // Bump the tag on success so a thread that slept across a whole
    // recycle cycle cannot CAS a stale {top, next} pair into place.
    if (free_head_.compare_exchange_weak(head, PackHead(next, tag + 1),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return &nodes_[top];
    }
  }
}

void StreamChannel::Push(StreamReportNode* node) {
  const uint32_t index = static_cast<uint32_t>(node - nodes_.data());
  MDRR_DCHECK_LT(index, nodes_.size());
  uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & ring_mask_];
    const uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.node = index;
        cell.seq.store(pos + 1, std::memory_order_release);
        return;
      }
    } else if (dif < 0) {
      // Ring full. Unreachable while capacity(ring) >= capacity(pool)
      // and every pushed node came from TryAcquire.
      MDRR_CHECK(false);
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

StreamReportNode* StreamChannel::TryPop() {
  const uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Cell& cell = cells_[pos & ring_mask_];
  const uint64_t seq = cell.seq.load(std::memory_order_acquire);
  const int64_t dif =
      static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1);
  if (dif < 0) return nullptr;  // Producer has not finished this cell.
  // Single consumer: no other thread advances dequeue_pos_, so a plain
  // store is enough once the cell's payload has been read.
  StreamReportNode* node = &nodes_[cell.node];
  dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
  cell.seq.store(pos + ring_mask_ + 1, std::memory_order_release);
  return node;
}

void StreamChannel::Recycle(StreamReportNode* node) {
  const uint32_t index = static_cast<uint32_t>(node - nodes_.data());
  MDRR_DCHECK_LT(index, nodes_.size());
  uint64_t head = free_head_.load(std::memory_order_relaxed);
  for (;;) {
    const uint32_t tag = static_cast<uint32_t>(head >> 32);
    next_[index].store(static_cast<uint32_t>(head & kIndexMask),
                       std::memory_order_relaxed);
    if (free_head_.compare_exchange_weak(head, PackHead(index, tag),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace mdrr
