#include "mdrr/dataset/discretize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mdrr {

namespace {

std::string IntervalLabel(double lo, double hi, bool last) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), last ? "[%.6g, %.6g]" : "[%.6g, %.6g)", lo,
                hi);
  return buf;
}

Discretization BuildFromEdges(const std::vector<double>& values,
                              std::vector<double> edges,
                              const std::string& name) {
  Discretization result;
  result.edges = std::move(edges);
  const size_t bins = result.edges.size() - 1;
  result.attribute.name = name;
  result.attribute.type = AttributeType::kOrdinal;
  for (size_t b = 0; b < bins; ++b) {
    result.attribute.categories.push_back(IntervalLabel(
        result.edges[b], result.edges[b + 1], /*last=*/b + 1 == bins));
  }
  result.codes.reserve(values.size());
  for (double v : values) {
    // upper_bound on interior edges: bin b covers [edge_b, edge_{b+1}).
    auto it = std::upper_bound(result.edges.begin() + 1,
                               result.edges.end() - 1, v);
    size_t bin = static_cast<size_t>(it - (result.edges.begin() + 1));
    result.codes.push_back(static_cast<uint32_t>(bin));
  }
  return result;
}

}  // namespace

StatusOr<Discretization> EqualWidthDiscretize(const std::vector<double>& values,
                                              size_t num_bins,
                                              const std::string& name) {
  if (values.empty()) return Status::InvalidArgument("no values to discretize");
  if (num_bins < 1) return Status::InvalidArgument("num_bins must be >= 1");
  auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  double lo = *min_it;
  double hi = *max_it;
  if (lo == hi) {
    return Status::InvalidArgument("all values identical; nothing to bin");
  }
  std::vector<double> edges(num_bins + 1);
  for (size_t b = 0; b <= num_bins; ++b) {
    edges[b] = lo + (hi - lo) * static_cast<double>(b) /
                        static_cast<double>(num_bins);
  }
  edges.back() = hi;
  return BuildFromEdges(values, std::move(edges), name);
}

StatusOr<Discretization> QuantileDiscretize(const std::vector<double>& values,
                                            size_t num_bins,
                                            const std::string& name) {
  if (values.empty()) return Status::InvalidArgument("no values to discretize");
  if (num_bins < 1) return Status::InvalidArgument("num_bins must be >= 1");
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() == sorted.back()) {
    return Status::InvalidArgument("all values identical; nothing to bin");
  }
  std::vector<double> edges;
  edges.push_back(sorted.front());
  for (size_t b = 1; b < num_bins; ++b) {
    double position = static_cast<double>(b) * (sorted.size() - 1) /
                      static_cast<double>(num_bins);
    double edge = sorted[static_cast<size_t>(std::llround(position))];
    if (edge > edges.back()) edges.push_back(edge);
  }
  if (sorted.back() > edges.back()) {
    edges.push_back(sorted.back());
  } else {
    // Degenerate tail: widen the last edge marginally so the maximum value
    // falls inside the final closed interval.
    edges.push_back(edges.back() + 1.0);
  }
  return BuildFromEdges(values, std::move(edges), name);
}

}  // namespace mdrr
