#include "mdrr/dataset/domain.h"

#include <limits>
#include <string>

#include "mdrr/common/check.h"
#include "mdrr/common/parallel.h"

namespace mdrr {

Domain::Domain(std::vector<size_t> cardinalities)
    : cardinalities_(std::move(cardinalities)) {
  MDRR_CHECK(!cardinalities_.empty());
  strides_.resize(cardinalities_.size());
  uint64_t product = 1;
  // Last position varies fastest (row-major tuple order).
  for (size_t i = cardinalities_.size(); i-- > 0;) {
    MDRR_CHECK_GE(cardinalities_[i], 1u);
    strides_[i] = product;
    uint64_t card = cardinalities_[i];
    MDRR_CHECK_LE(product, std::numeric_limits<uint64_t>::max() / card);
    product *= card;
  }
  size_ = product;
}

Domain Domain::ForAttributes(const Dataset& dataset,
                             const std::vector<size_t>& attribute_indices) {
  std::vector<size_t> cardinalities;
  cardinalities.reserve(attribute_indices.size());
  for (size_t j : attribute_indices) {
    cardinalities.push_back(dataset.attribute(j).cardinality());
  }
  return Domain(std::move(cardinalities));
}

StatusOr<uint64_t> Domain::CheckedSizeForAttributes(
    const Dataset& dataset, const std::vector<size_t>& attribute_indices) {
  uint64_t product = 1;
  for (size_t i = attribute_indices.size(); i-- > 0;) {
    uint64_t card = dataset.attribute(attribute_indices[i]).cardinality();
    if (card == 0) {
      return Status::InvalidArgument(
          "attribute " + std::to_string(attribute_indices[i]) +
          " has no categories");
    }
    if (product > std::numeric_limits<uint64_t>::max() / card) {
      return Status::InvalidArgument(
          "product domain over " + std::to_string(attribute_indices.size()) +
          " attributes overflows 64 bits");
    }
    product *= card;
  }
  return product;
}

uint64_t Domain::Encode(const std::vector<uint32_t>& tuple) const {
  MDRR_CHECK_EQ(tuple.size(), cardinalities_.size());
  uint64_t code = 0;
  for (size_t i = 0; i < tuple.size(); ++i) {
    MDRR_CHECK_LT(tuple[i], cardinalities_[i]);
    code += strides_[i] * tuple[i];
  }
  return code;
}

std::vector<uint32_t> Domain::Decode(uint64_t code) const {
  MDRR_CHECK_LT(code, size_);
  std::vector<uint32_t> tuple(cardinalities_.size());
  for (size_t i = 0; i < cardinalities_.size(); ++i) {
    tuple[i] = static_cast<uint32_t>((code / strides_[i]) % cardinalities_[i]);
  }
  return tuple;
}

uint32_t Domain::DecodeAt(uint64_t code, size_t position) const {
  MDRR_CHECK_LT(code, size_);
  MDRR_CHECK_LT(position, cardinalities_.size());
  return static_cast<uint32_t>((code / strides_[position]) %
                               cardinalities_[position]);
}

std::vector<uint32_t> Domain::ComposeColumns(
    const Dataset& dataset,
    const std::vector<size_t>& attribute_indices) const {
  MDRR_CHECK_EQ(attribute_indices.size(), cardinalities_.size());
  // Composite codes are stored as uint32_t records: clusters are bounded by
  // Tv in practice, far below 2^32.
  MDRR_CHECK_LE(size_, static_cast<uint64_t>(
                           std::numeric_limits<uint32_t>::max()));
  std::vector<uint32_t> composite(dataset.num_rows(), 0);
  for (size_t i = 0; i < attribute_indices.size(); ++i) {
    const std::vector<uint32_t>& col = dataset.column(attribute_indices[i]);
    uint64_t stride = strides_[i];
    for (size_t row = 0; row < col.size(); ++row) {
      composite[row] += static_cast<uint32_t>(stride * col[row]);
    }
  }
  return composite;
}

std::vector<uint32_t> DecodeColumnSharded(const Domain& domain,
                                          const std::vector<uint32_t>& codes,
                                          size_t position, size_t chunk_size,
                                          size_t num_threads) {
  std::vector<uint32_t> column(codes.size());
  ParallelChunks(codes.size(), chunk_size, num_threads,
                 [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                     size_t end) {
                   for (size_t row = begin; row < end; ++row) {
                     column[row] = domain.DecodeAt(codes[row], position);
                   }
                 });
  return column;
}

std::vector<double> Domain::MarginalizeTo(
    const std::vector<double>& distribution, size_t position) const {
  MDRR_CHECK_EQ(distribution.size(), size_);
  MDRR_CHECK_LT(position, cardinalities_.size());
  std::vector<double> marginal(cardinalities_[position], 0.0);
  for (uint64_t code = 0; code < size_; ++code) {
    marginal[DecodeAt(code, position)] += distribution[code];
  }
  return marginal;
}

std::vector<double> Domain::MarginalizeToSubset(
    const std::vector<double>& distribution,
    const std::vector<size_t>& positions) const {
  MDRR_CHECK_EQ(distribution.size(), size_);
  std::vector<size_t> sub_cards;
  sub_cards.reserve(positions.size());
  for (size_t p : positions) {
    MDRR_CHECK_LT(p, cardinalities_.size());
    sub_cards.push_back(cardinalities_[p]);
  }
  Domain sub_domain(sub_cards);
  std::vector<double> result(sub_domain.size(), 0.0);
  std::vector<uint32_t> sub_tuple(positions.size());
  for (uint64_t code = 0; code < size_; ++code) {
    for (size_t i = 0; i < positions.size(); ++i) {
      sub_tuple[i] = DecodeAt(code, positions[i]);
    }
    result[sub_domain.Encode(sub_tuple)] += distribution[code];
  }
  return result;
}

}  // namespace mdrr
