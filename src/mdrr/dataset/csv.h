// CSV import/export for categorical microdata. Category vocabularies are
// either supplied (fixed schema, e.g. Adult) or inferred from the data in
// order of first appearance.

#ifndef MDRR_DATASET_CSV_H_
#define MDRR_DATASET_CSV_H_

#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/dataset.h"

namespace mdrr {

// Raw CSV parsing: one vector<string> per row, fields trimmed of
// surrounding whitespace. No quoting support (the data this library
// handles -- Adult-style categorical files -- does not use quotes).
StatusOr<std::vector<std::vector<std::string>>> ReadCsvRows(
    const std::string& path, char delimiter = ',');

// Builds a Dataset from string rows by inferring a nominal attribute per
// column; categories are assigned codes in order of first appearance.
// `column_names` sizes must match the row width.
StatusOr<Dataset> DatasetFromRows(
    const std::vector<std::vector<std::string>>& rows,
    const std::vector<std::string>& column_names);

// Builds a Dataset against a fixed schema; rows with unknown labels yield
// InvalidArgument. `column_indices` selects and orders the CSV columns to
// read (so callers can skip non-categorical columns).
StatusOr<Dataset> DatasetFromRowsWithSchema(
    const std::vector<std::vector<std::string>>& rows,
    const std::vector<Attribute>& schema,
    const std::vector<size_t>& column_indices);

// One-call CSV -> Dataset binding: reads `path`, takes attribute names
// from the header line when `has_header` (otherwise synthesizes
// "column0", "column1", ...), and infers one nominal attribute per
// column. Fails on I/O errors and on an empty file. The shared front
// door of the CLI and the release planner's csv dataset source.
StatusOr<Dataset> ReadCsvDataset(const std::string& path, bool has_header,
                                 char delimiter = ',');

// Writes `dataset` as CSV with a header line of attribute names.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                char delimiter = ',');

}  // namespace mdrr

#endif  // MDRR_DATASET_CSV_H_
