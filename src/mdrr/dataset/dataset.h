// Column-major categorical microdata. Every protocol in the paper touches
// whole attribute columns (randomize attribute j for all parties, count
// frequencies of attribute j, ...), so columns are stored contiguously.

#ifndef MDRR_DATASET_DATASET_H_
#define MDRR_DATASET_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/attribute.h"

namespace mdrr {

class Dataset {
 public:
  Dataset() = default;

  // An empty dataset with the given schema.
  explicit Dataset(std::vector<Attribute> schema);

  // Takes ownership of pre-built columns. Preconditions: one column per
  // schema attribute, equal column lengths, codes within cardinality
  // (validated; CHECK-fails on violation).
  Dataset(std::vector<Attribute> schema,
          std::vector<std::vector<uint32_t>> columns);

  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return schema_.size(); }

  const std::vector<Attribute>& schema() const { return schema_; }
  const Attribute& attribute(size_t j) const;

  // Index of the attribute called `name`, or NotFound.
  StatusOr<size_t> AttributeIndex(const std::string& name) const;

  const std::vector<uint32_t>& column(size_t j) const;
  uint32_t at(size_t row, size_t j) const;

  // Appends one record given as per-attribute codes.
  void AppendRow(const std::vector<uint32_t>& codes);

  // Replaces column j (same length as num_rows, codes within cardinality).
  void SetColumn(size_t j, std::vector<uint32_t> codes);

  // In-place write access to column j for zero-allocation rewrite passes
  // (per-round randomized publications, sharded decode). The caller takes
  // over SetColumn's invariant: every code written must stay below the
  // attribute's cardinality, and the column length must not change.
  // Randomization kernels satisfy this by construction (outputs are drawn
  // from [0, cardinality)).
  std::vector<uint32_t>& MutableColumn(size_t j);

  // A dataset consisting of this dataset repeated `times` times -- the
  // paper's Adult6 construction (Section 6.5).
  Dataset Tiled(size_t times) const;

  // A dataset with only the selected attributes (columns are copied).
  Dataset Project(const std::vector<size_t>& attribute_indices) const;

  // Cardinalities of all attributes, in schema order.
  std::vector<int64_t> Cardinalities() const;

  // Human-readable record, e.g. "Private, Bachelors, ...".
  std::string RowToString(size_t row) const;

 private:
  std::vector<Attribute> schema_;
  std::vector<std::vector<uint32_t>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace mdrr

#endif  // MDRR_DATASET_DATASET_H_
