#include "mdrr/dataset/csv.h"

#include <fstream>
#include <map>
#include <sstream>

#include "mdrr/common/string_util.h"

namespace mdrr {

StatusOr<std::vector<std::vector<std::string>>> ReadCsvRows(
    const std::string& path, char delimiter) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(file, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> fields = Split(stripped, delimiter);
    for (std::string& field : fields) {
      field = std::string(StripWhitespace(field));
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

StatusOr<Dataset> DatasetFromRows(
    const std::vector<std::vector<std::string>>& rows,
    const std::vector<std::string>& column_names) {
  const size_t num_cols = column_names.size();
  std::vector<Attribute> schema(num_cols);
  std::vector<std::map<std::string, uint32_t>> vocab(num_cols);
  std::vector<std::vector<uint32_t>> columns(num_cols);

  for (size_t j = 0; j < num_cols; ++j) {
    schema[j].name = column_names[j];
    schema[j].type = AttributeType::kNominal;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != num_cols) {
      return Status::InvalidArgument(
          "row " + std::to_string(i) + " has " +
          std::to_string(rows[i].size()) + " fields, expected " +
          std::to_string(num_cols));
    }
    for (size_t j = 0; j < num_cols; ++j) {
      auto [it, inserted] = vocab[j].try_emplace(
          rows[i][j], static_cast<uint32_t>(schema[j].categories.size()));
      if (inserted) schema[j].categories.push_back(rows[i][j]);
      columns[j].push_back(it->second);
    }
  }
  return Dataset(std::move(schema), std::move(columns));
}

StatusOr<Dataset> DatasetFromRowsWithSchema(
    const std::vector<std::vector<std::string>>& rows,
    const std::vector<Attribute>& schema,
    const std::vector<size_t>& column_indices) {
  if (schema.size() != column_indices.size()) {
    return Status::InvalidArgument(
        "schema size does not match column_indices size");
  }
  std::vector<std::vector<uint32_t>> columns(schema.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < schema.size(); ++j) {
      size_t csv_col = column_indices[j];
      if (csv_col >= rows[i].size()) {
        return Status::InvalidArgument("row " + std::to_string(i) +
                                       " is too short");
      }
      int code = schema[j].FindCategory(rows[i][csv_col]);
      if (code < 0) {
        return Status::InvalidArgument(
            "unknown category '" + rows[i][csv_col] + "' for attribute '" +
            schema[j].name + "' at row " + std::to_string(i));
      }
      columns[j].push_back(static_cast<uint32_t>(code));
    }
  }
  return Dataset(schema, std::move(columns));
}

StatusOr<Dataset> ReadCsvDataset(const std::string& path, bool has_header,
                                 char delimiter) {
  MDRR_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                        ReadCsvRows(path, delimiter));
  if (rows.empty()) {
    return Status::InvalidArgument("input file '" + path + "' is empty");
  }
  std::vector<std::string> names;
  if (has_header) {
    names = rows.front();
    rows.erase(rows.begin());
  } else {
    for (size_t j = 0; j < rows[0].size(); ++j) {
      names.push_back("column" + std::to_string(j));
    }
  }
  return DatasetFromRows(rows, names);
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                char delimiter) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    if (j > 0) file << delimiter;
    file << dataset.attribute(j).name;
  }
  file << '\n';
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    for (size_t j = 0; j < dataset.num_attributes(); ++j) {
      if (j > 0) file << delimiter;
      file << dataset.attribute(j).categories[dataset.at(i, j)];
    }
    file << '\n';
  }
  if (!file.good()) {
    return Status::IoError("write failure on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace mdrr
