#include "mdrr/dataset/mushroom.h"

#include <array>

#include "mdrr/common/check.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

namespace {

// Two latent "species groups" drive the correlated blocks: group 0 is
// the edible-leaning morphology, group 1 the poisonous-leaning one.
// Within each block, attributes copy a block-level tendency with high
// probability, giving strong within-block and moderate cross-block
// dependence -- the structure Algorithm 1 is meant to discover.

template <size_t N>
uint32_t Draw(Rng& rng, const std::array<double, N>& weights) {
  return static_cast<uint32_t>(
      rng.Discrete(std::vector<double>(weights.begin(), weights.end())));
}

// Picks `biased` with probability `loyalty`, else uniform over `r`.
uint32_t Biased(Rng& rng, uint32_t biased, size_t r, double loyalty) {
  if (rng.Bernoulli(loyalty)) return biased;
  return static_cast<uint32_t>(rng.UniformInt(r));
}

}  // namespace

std::vector<Attribute> MushroomSchema() {
  auto nominal = [](const char* name,
                    std::vector<std::string> categories) {
    return Attribute{name, AttributeType::kNominal, std::move(categories)};
  };
  return {
      nominal("class", {"edible", "poisonous"}),
      nominal("cap-shape", {"bell", "conical", "convex", "flat", "knobbed",
                            "sunken"}),
      nominal("cap-surface", {"fibrous", "grooves", "scaly", "smooth"}),
      nominal("cap-color", {"brown", "buff", "cinnamon", "gray", "green",
                            "pink", "purple", "red", "white", "yellow"}),
      nominal("bruises", {"bruises", "no"}),
      nominal("odor", {"almond", "anise", "creosote", "fishy", "foul",
                       "musty", "none", "pungent", "spicy"}),
      nominal("gill-attachment", {"attached", "free"}),
      nominal("gill-spacing", {"close", "crowded"}),
      nominal("gill-size", {"broad", "narrow"}),
      nominal("gill-color", {"black", "brown", "buff", "chocolate", "gray",
                             "green", "orange", "pink", "purple", "red",
                             "white", "yellow"}),
      nominal("stalk-shape", {"enlarging", "tapering"}),
      nominal("stalk-root", {"bulbous", "club", "equal", "rooted", "?"}),
      nominal("stalk-surface-above-ring",
              {"fibrous", "scaly", "silky", "smooth"}),
      nominal("stalk-surface-below-ring",
              {"fibrous", "scaly", "silky", "smooth"}),
      nominal("stalk-color-above-ring",
              {"brown", "buff", "cinnamon", "gray", "orange", "pink", "red",
               "white", "yellow"}),
      nominal("stalk-color-below-ring",
              {"brown", "buff", "cinnamon", "gray", "orange", "pink", "red",
               "white", "yellow"}),
      nominal("veil-type", {"partial", "universal"}),
      nominal("veil-color", {"brown", "orange", "white", "yellow"}),
      nominal("ring-number", {"none", "one", "two"}),
      nominal("ring-type", {"evanescent", "flaring", "large", "none",
                            "pendant"}),
      nominal("spore-print-color",
              {"black", "brown", "buff", "chocolate", "green", "orange",
               "purple", "white", "yellow"}),
      nominal("population", {"abundant", "clustered", "numerous",
                             "scattered", "several", "solitary"}),
      nominal("habitat", {"grasses", "leaves", "meadows", "paths", "urban",
                          "waste", "woods"}),
  };
}

Dataset SynthesizeMushroom(size_t n, uint64_t seed) {
  std::vector<Attribute> schema = MushroomSchema();
  const size_t m = schema.size();
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> columns(m);
  for (auto& col : columns) col.reserve(n);

  for (size_t i = 0; i < n; ++i) {
    // Latent species group (roughly balanced, like the real 52/48 split).
    bool poisonous_group = rng.Bernoulli(0.48);

    // Odor nearly determines the class in the real data.
    uint32_t odor;
    if (poisonous_group) {
      // foul, creosote, fishy, musty, pungent, spicy dominate.
      odor = Draw(rng, std::array<double, 9>{0.01, 0.01, 0.05, 0.15, 0.45,
                                             0.02, 0.08, 0.12, 0.11});
    } else {
      // none, almond, anise dominate.
      odor = Draw(rng, std::array<double, 9>{0.10, 0.10, 0.002, 0.003,
                                             0.005, 0.005, 0.76, 0.015,
                                             0.01});
    }
    bool smells_bad = odor == 2 || odor == 3 || odor == 4 || odor == 5 ||
                      odor == 7 || odor == 8;
    uint32_t clazz = rng.Bernoulli(smells_bad ? 0.97 : 0.08) ? 1 : 0;

    // Cap block.
    uint32_t cap_shape = Biased(rng, poisonous_group ? 2u : 3u, 6, 0.45);
    uint32_t cap_surface = Biased(rng, poisonous_group ? 2u : 0u, 4, 0.5);
    uint32_t cap_color = Biased(rng, poisonous_group ? 0u : 3u, 10, 0.35);
    uint32_t bruises = rng.Bernoulli(poisonous_group ? 0.25 : 0.6) ? 0 : 1;

    // Gill block: strongly internally coupled.
    uint32_t gill_attachment = rng.Bernoulli(0.03) ? 0 : 1;
    uint32_t gill_spacing = rng.Bernoulli(poisonous_group ? 0.9 : 0.75)
                                ? 0
                                : 1;
    uint32_t gill_size = rng.Bernoulli(poisonous_group ? 0.45 : 0.8) ? 0 : 1;
    uint32_t gill_color = Biased(rng, gill_size == 1 ? 2u : 10u, 12, 0.4);

    // Stalk block: surfaces/colors above and below the ring copy each
    // other with high probability (the real data's strongest pairs).
    uint32_t stalk_shape = rng.Bernoulli(0.55) ? 1 : 0;
    uint32_t stalk_root = Draw(rng, std::array<double, 5>{0.46, 0.07, 0.14,
                                                          0.02, 0.31});
    uint32_t surface_above =
        Biased(rng, poisonous_group ? 2u : 3u, 4, 0.7);
    uint32_t surface_below =
        rng.Bernoulli(0.85) ? surface_above
                            : static_cast<uint32_t>(rng.UniformInt(4));
    uint32_t color_above = Biased(rng, poisonous_group ? 5u : 7u, 9, 0.6);
    uint32_t color_below =
        rng.Bernoulli(0.85) ? color_above
                            : static_cast<uint32_t>(rng.UniformInt(9));

    // Veil/ring block.
    uint32_t veil_type = rng.Bernoulli(0.999) ? 0 : 1;
    uint32_t veil_color = rng.Bernoulli(0.975) ? 2u : Biased(rng, 0u, 4, 0.5);
    uint32_t ring_number = Draw(rng, std::array<double, 3>{0.005, 0.92,
                                                           0.075});
    uint32_t ring_type =
        poisonous_group ? Biased(rng, 0u, 5, 0.55) : Biased(rng, 4u, 5, 0.6);

    // Spore print correlates with class and gill color.
    uint32_t spore_print;
    if (poisonous_group) {
      spore_print = Draw(rng, std::array<double, 9>{0.05, 0.10, 0.02, 0.45,
                                                    0.02, 0.01, 0.01, 0.32,
                                                    0.02});
    } else {
      spore_print = Draw(rng, std::array<double, 9>{0.35, 0.35, 0.03, 0.08,
                                                    0.002, 0.02, 0.02, 0.10,
                                                    0.048});
    }

    // Ecology block.
    uint32_t population = Biased(rng, poisonous_group ? 4u : 3u, 6, 0.45);
    uint32_t habitat = Biased(rng, poisonous_group ? 3u : 6u, 7, 0.4);

    const uint32_t record[] = {
        clazz,          cap_shape,     cap_surface,  cap_color,
        bruises,        odor,          gill_attachment, gill_spacing,
        gill_size,      gill_color,    stalk_shape,  stalk_root,
        surface_above,  surface_below, color_above,  color_below,
        veil_type,      veil_color,    ring_number,  ring_type,
        spore_print,    population,    habitat};
    for (size_t j = 0; j < m; ++j) columns[j].push_back(record[j]);
  }
  return Dataset(std::move(schema), std::move(columns));
}

}  // namespace mdrr
