// Discretization of numerical values into ordinal categories. The paper
// requires numerical attributes to be discretized before RR (Section 4:
// "to be accommodated by RR these need to be discretized into ordinal
// attributes (for example by rounding or by replacing values with
// intervals)").

#ifndef MDRR_DATASET_DISCRETIZE_H_
#define MDRR_DATASET_DISCRETIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/attribute.h"

namespace mdrr {

struct Discretization {
  Attribute attribute;          // Ordinal attribute with interval labels.
  std::vector<uint32_t> codes;  // One bin code per input value.
  std::vector<double> edges;    // Bin boundaries (size = bins + 1).
};

// Equal-width bins over [min, max]. Fails if values is empty, num_bins < 1,
// or all values are identical (zero-width range).
StatusOr<Discretization> EqualWidthDiscretize(const std::vector<double>& values,
                                              size_t num_bins,
                                              const std::string& name);

// Equal-frequency (quantile) bins; duplicate quantile edges are merged, so
// the result may have fewer than num_bins bins.
StatusOr<Discretization> QuantileDiscretize(const std::vector<double>& values,
                                            size_t num_bins,
                                            const std::string& name);

}  // namespace mdrr

#endif  // MDRR_DATASET_DISCRETIZE_H_
