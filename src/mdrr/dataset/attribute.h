// Categorical attribute metadata: a name, a measurement type, and the
// ordered list of category labels. Category *codes* (uint32_t indices into
// `categories`) are what Dataset stores.

#ifndef MDRR_DATASET_ATTRIBUTE_H_
#define MDRR_DATASET_ATTRIBUTE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mdrr {

// The paper's dependence-measure selection (Section 4) keys off this:
// ordinal pairs use |Pearson r| on the codes, anything involving a nominal
// attribute uses Cramér's V.
enum class AttributeType {
  kNominal,
  kOrdinal,
};

struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kNominal;
  std::vector<std::string> categories;

  size_t cardinality() const { return categories.size(); }

  // Index of `label` in categories, or -1 if absent.
  int FindCategory(const std::string& label) const {
    for (size_t i = 0; i < categories.size(); ++i) {
      if (categories[i] == label) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace mdrr

#endif  // MDRR_DATASET_ATTRIBUTE_H_
