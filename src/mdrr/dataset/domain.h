// Mixed-radix indexing of the Cartesian product of a set of attributes.
// RR-Joint and RR-Clusters treat a tuple of attribute values as a single
// composite category; Domain maps tuples <-> composite codes in O(k).

#ifndef MDRR_DATASET_DOMAIN_H_
#define MDRR_DATASET_DOMAIN_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/dataset.h"

namespace mdrr {

class Domain {
 public:
  // Builds a domain over the given per-position cardinalities.
  // Precondition: every cardinality >= 1 and the product fits in uint64_t
  // (CHECK-fails on overflow; callers bound cluster size with Tv anyway).
  explicit Domain(std::vector<size_t> cardinalities);

  // Domain of the selected attributes of `dataset`, in the given order.
  static Domain ForAttributes(const Dataset& dataset,
                              const std::vector<size_t>& attribute_indices);

  // Product of the selected attributes' cardinalities, computed in
  // unsigned 64-bit with per-multiply overflow detection. Returns
  // InvalidArgument when the product exceeds 2^64 - 1 (or an attribute
  // has no categories) instead of wrapping or CHECK-aborting, so protocol
  // size guards can reject oversized requests gracefully *before*
  // constructing a Domain. Note the accumulation order matches the
  // constructor's (last position first).
  static StatusOr<uint64_t> CheckedSizeForAttributes(
      const Dataset& dataset, const std::vector<size_t>& attribute_indices);

  size_t num_positions() const { return cardinalities_.size(); }
  const std::vector<size_t>& cardinalities() const { return cardinalities_; }

  // Mixed-radix weights: Encode sums strides()[i] * tuple[i], DecodeAt
  // divides by strides()[position]. Exposed so batched kernels can fuse
  // encode/decode into their sweeps with identical arithmetic.
  const std::vector<uint64_t>& strides() const { return strides_; }

  // Total number of composite categories (the product).
  uint64_t size() const { return size_; }

  // tuple -> composite code. Precondition: tuple[i] < cardinalities[i].
  uint64_t Encode(const std::vector<uint32_t>& tuple) const;

  // composite code -> tuple. Precondition: code < size().
  std::vector<uint32_t> Decode(uint64_t code) const;

  // Value at `position` of the tuple encoded by `code`, without
  // materializing the whole tuple.
  uint32_t DecodeAt(uint64_t code, size_t position) const;

  // Composite codes of the selected attributes for every record of
  // `dataset` (attribute order must match this domain's construction).
  std::vector<uint32_t> ComposeColumns(
      const Dataset& dataset,
      const std::vector<size_t>& attribute_indices) const;

  // Marginalizes a distribution over this domain onto one position:
  // out[v] = sum of dist[code] over codes whose position value is v.
  std::vector<double> MarginalizeTo(const std::vector<double>& distribution,
                                    size_t position) const;

  // Marginalizes onto an ordered subset of positions, producing a
  // distribution over the sub-domain formed by those positions.
  std::vector<double> MarginalizeToSubset(
      const std::vector<double>& distribution,
      const std::vector<size_t>& positions) const;

 private:
  std::vector<size_t> cardinalities_;
  std::vector<uint64_t> strides_;  // strides_[i]: weight of position i.
  uint64_t size_;
};

// Decodes one position of a column of composite codes into an attribute
// column, sharded over `num_threads` workers (0 = one per core) in
// chunks of `chunk_size` rows. The decode draws no randomness and each
// row writes its own slot, so the output is bit-identical at any thread
// count; the chunk size is a pure load-balancing grain. The one decode
// loop shared by the clusters frame, the joint mechanism, and the
// session controller. Precondition: every code < domain.size().
std::vector<uint32_t> DecodeColumnSharded(const Domain& domain,
                                          const std::vector<uint32_t>& codes,
                                          size_t position, size_t chunk_size,
                                          size_t num_threads);

}  // namespace mdrr

#endif  // MDRR_DATASET_DOMAIN_H_
