// A second, higher-dimensional evaluation data set: a Mushroom-style
// synthesizer with 22 categorical attributes (the UCI Mushroom layout),
// used to stress RR-Clusters beyond Adult's 8 attributes. Attributes come
// in strongly-coupled blocks (cap, gill, stalk, veil/ring, ecology) with
// an edibility class driven by odor and spore print -- mirroring the real
// data's structure, where odor alone nearly determines the class.
//
// This data set is NOT part of the paper's evaluation; it powers the
// scalability ablation (bench/ablation_scalability) that checks the
// library's behaviour as m grows.

#ifndef MDRR_DATASET_MUSHROOM_H_
#define MDRR_DATASET_MUSHROOM_H_

#include <cstdint>

#include "mdrr/dataset/dataset.h"

namespace mdrr {

// Number of records in the UCI Mushroom file.
inline constexpr size_t kMushroomNumRecords = 8124;

// The 22-attribute categorical schema plus the edibility class (23
// attributes total; class is attribute 0). All nominal.
std::vector<Attribute> MushroomSchema();

// Draws `n` synthetic Mushroom records. Deterministic in `seed`.
Dataset SynthesizeMushroom(size_t n, uint64_t seed);

}  // namespace mdrr

#endif  // MDRR_DATASET_MUSHROOM_H_
