#include "mdrr/dataset/dataset.h"

#include "mdrr/common/check.h"

namespace mdrr {

Dataset::Dataset(std::vector<Attribute> schema)
    : schema_(std::move(schema)), columns_(schema_.size()), num_rows_(0) {}

Dataset::Dataset(std::vector<Attribute> schema,
                 std::vector<std::vector<uint32_t>> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  MDRR_CHECK_EQ(schema_.size(), columns_.size());
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
  for (size_t j = 0; j < columns_.size(); ++j) {
    MDRR_CHECK_EQ(columns_[j].size(), num_rows_);
    for (uint32_t code : columns_[j]) {
      MDRR_CHECK_LT(code, schema_[j].cardinality());
    }
  }
}

const Attribute& Dataset::attribute(size_t j) const {
  MDRR_CHECK_LT(j, schema_.size());
  return schema_[j];
}

StatusOr<size_t> Dataset::AttributeIndex(const std::string& name) const {
  for (size_t j = 0; j < schema_.size(); ++j) {
    if (schema_[j].name == name) return j;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

const std::vector<uint32_t>& Dataset::column(size_t j) const {
  MDRR_CHECK_LT(j, columns_.size());
  return columns_[j];
}

uint32_t Dataset::at(size_t row, size_t j) const {
  MDRR_CHECK_LT(row, num_rows_);
  MDRR_CHECK_LT(j, columns_.size());
  return columns_[j][row];
}

void Dataset::AppendRow(const std::vector<uint32_t>& codes) {
  MDRR_CHECK_EQ(codes.size(), schema_.size());
  for (size_t j = 0; j < codes.size(); ++j) {
    MDRR_CHECK_LT(codes[j], schema_[j].cardinality());
    columns_[j].push_back(codes[j]);
  }
  ++num_rows_;
}

void Dataset::SetColumn(size_t j, std::vector<uint32_t> codes) {
  MDRR_CHECK_LT(j, columns_.size());
  MDRR_CHECK_EQ(codes.size(), num_rows_);
  for (uint32_t code : codes) {
    MDRR_CHECK_LT(code, schema_[j].cardinality());
  }
  columns_[j] = std::move(codes);
}

std::vector<uint32_t>& Dataset::MutableColumn(size_t j) {
  MDRR_CHECK_LT(j, columns_.size());
  return columns_[j];
}

Dataset Dataset::Tiled(size_t times) const {
  MDRR_CHECK_GE(times, 1u);
  std::vector<std::vector<uint32_t>> columns(schema_.size());
  for (size_t j = 0; j < schema_.size(); ++j) {
    columns[j].reserve(num_rows_ * times);
    for (size_t t = 0; t < times; ++t) {
      columns[j].insert(columns[j].end(), columns_[j].begin(),
                        columns_[j].end());
    }
  }
  return Dataset(schema_, std::move(columns));
}

Dataset Dataset::Project(const std::vector<size_t>& attribute_indices) const {
  std::vector<Attribute> schema;
  std::vector<std::vector<uint32_t>> columns;
  schema.reserve(attribute_indices.size());
  columns.reserve(attribute_indices.size());
  for (size_t j : attribute_indices) {
    MDRR_CHECK_LT(j, schema_.size());
    schema.push_back(schema_[j]);
    columns.push_back(columns_[j]);
  }
  return Dataset(std::move(schema), std::move(columns));
}

std::vector<int64_t> Dataset::Cardinalities() const {
  std::vector<int64_t> result(schema_.size());
  for (size_t j = 0; j < schema_.size(); ++j) {
    result[j] = static_cast<int64_t>(schema_[j].cardinality());
  }
  return result;
}

std::string Dataset::RowToString(size_t row) const {
  std::string out;
  for (size_t j = 0; j < schema_.size(); ++j) {
    if (j > 0) out += ", ";
    out += schema_[j].categories[at(row, j)];
  }
  return out;
}

}  // namespace mdrr
