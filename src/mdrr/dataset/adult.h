// The paper's evaluation data: the 8 categorical attributes of the UCI
// Adult data set (Section 6.1) -- Work-class (9), Education (16),
// Marital-status (7), Occupation (15), Relationship (6), Race (5), Sex (2),
// Income (2); product domain 1,814,400 categories.
//
// Substitution (see DESIGN.md): since the original file is not available
// offline, SynthesizeAdult() draws records from a fixed Bayesian network
// whose conditional tables are calibrated to the public Adult marginals
// and to its dominant dependence structure (Marital<->Relationship and
// Sex<->Relationship strong; Education<->Occupation, Occupation/Education/
// Marital<->Income moderate; Race and Work-class weakly coupled). The
// paper's experiments depend only on the cardinalities, on n, and on a
// non-uniform joint with a clear dependence ranking, all of which are
// preserved. LoadAdultCsv() ingests a real adult.data file when present.

#ifndef MDRR_DATASET_ADULT_H_
#define MDRR_DATASET_ADULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/dataset.h"

namespace mdrr {

// Number of records in the UCI Adult training file.
inline constexpr size_t kAdultNumRecords = 32561;

// Attribute indices in the schema returned by AdultSchema().
enum AdultAttribute : size_t {
  kAdultWorkclass = 0,
  kAdultEducation = 1,
  kAdultMaritalStatus = 2,
  kAdultOccupation = 3,
  kAdultRelationship = 4,
  kAdultRace = 5,
  kAdultSex = 6,
  kAdultIncome = 7,
};

// The 8-attribute categorical schema. Education and Income are ordinal
// (Education is ordered by attainment); the rest are nominal. Missing
// values ('?') are ordinary categories, as in the paper's cardinalities.
std::vector<Attribute> AdultSchema();

// Draws `n` synthetic Adult records from the calibrated Bayesian network.
// Deterministic in `seed`.
Dataset SynthesizeAdult(size_t n, uint64_t seed);

// Convenience: the standard evaluation data set (n = 32561).
Dataset SynthesizeAdultDefault(uint64_t seed);

// Loads a real UCI adult.data / adult.test file (15 comma-separated
// columns) and keeps the 8 categorical attributes. Trailing periods on
// income labels (adult.test convention) are stripped; rows containing the
// wrong column count are rejected.
StatusOr<Dataset> LoadAdultCsv(const std::string& path);

}  // namespace mdrr

#endif  // MDRR_DATASET_ADULT_H_
