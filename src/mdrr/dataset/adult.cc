#include "mdrr/dataset/adult.h"

#include <array>

#include "mdrr/common/check.h"
#include "mdrr/dataset/csv.h"
#include "mdrr/rng/rng.h"

namespace mdrr {

namespace {

// Category index constants, matching the label order in AdultSchema().

// Workclass.
constexpr size_t kWcCount = 9;
// Education (ordinal by attainment).
constexpr size_t kEduCount = 16;
// Marital-status.
enum : uint32_t {
  kMarriedCiv = 0,
  kDivorced = 1,
  kNeverMarried = 2,
  kSeparated = 3,
  kWidowed = 4,
  kSpouseAbsent = 5,
  kMarriedAf = 6,
};
constexpr size_t kMaritalCount = 7;
// Occupation.
constexpr size_t kOccCount = 15;
constexpr uint32_t kOccUnknown = 14;  // '?'
constexpr uint32_t kOccExec = 4;
constexpr uint32_t kOccProf = 5;
constexpr uint32_t kOccSales = 3;
constexpr uint32_t kOccFarming = 9;
constexpr uint32_t kOccProtective = 12;
constexpr uint32_t kOccArmedForces = 13;
// Relationship.
constexpr size_t kRelCount = 6;
// Race.
constexpr size_t kRaceCount = 5;
// Sex.
enum : uint32_t { kFemale = 0, kMale = 1 };

// Education buckets used for conditioning: below high school, high school
// to associate, bachelor and above.
enum EduBucket { kEduLow = 0, kEduMid = 1, kEduHigh = 2 };

EduBucket BucketOf(uint32_t education) {
  if (education <= 7) return kEduLow;    // Preschool .. 12th
  if (education <= 11) return kEduMid;   // HS-grad .. Assoc-acdm
  return kEduHigh;                       // Bachelors .. Doctorate
}

// --- Conditional probability tables (weights; normalized at draw time) ---

constexpr std::array<double, 2> kSexDist = {0.331, 0.669};

constexpr std::array<double, kEduCount> kEducationDist = {
    0.0016, 0.0052, 0.0102, 0.0198, 0.0158, 0.0287, 0.0361, 0.0133,
    0.3225, 0.2234, 0.0424, 0.0328, 0.1645, 0.0529, 0.0177, 0.0127};

// Marital-status given sex. Rows: Female, Male.
constexpr std::array<std::array<double, kMaritalCount>, 2> kMaritalGivenSex = {{
    {0.140, 0.239, 0.446, 0.064, 0.089, 0.020, 0.002},   // Female
    {0.600, 0.065, 0.290, 0.015, 0.006, 0.012, 0.001},   // Male
}};

// Relationship given (marital, sex). Entry order:
// Wife, Own-child, Husband, Not-in-family, Other-relative, Unmarried.
constexpr std::array<std::array<std::array<double, kRelCount>, 2>,
                     kMaritalCount>
    kRelationshipGivenMaritalSex = {{
        // Married-civ-spouse.
        {{{0.930, 0.010, 0.000, 0.010, 0.040, 0.010},     // Female
          {0.000, 0.005, 0.965, 0.010, 0.015, 0.005}}},   // Male
        // Divorced.
        {{{0.000, 0.060, 0.000, 0.440, 0.070, 0.430},
          {0.000, 0.050, 0.000, 0.800, 0.050, 0.100}}},
        // Never-married.
        {{{0.000, 0.350, 0.000, 0.350, 0.090, 0.210},
          {0.000, 0.480, 0.000, 0.430, 0.070, 0.020}}},
        // Separated.
        {{{0.000, 0.050, 0.000, 0.250, 0.100, 0.600},
          {0.000, 0.080, 0.000, 0.750, 0.100, 0.070}}},
        // Widowed.
        {{{0.000, 0.020, 0.000, 0.550, 0.080, 0.350},
          {0.000, 0.030, 0.000, 0.850, 0.090, 0.030}}},
        // Married-spouse-absent.
        {{{0.000, 0.050, 0.000, 0.350, 0.150, 0.450},
          {0.000, 0.080, 0.000, 0.750, 0.120, 0.050}}},
        // Married-AF-spouse.
        {{{0.850, 0.020, 0.000, 0.050, 0.030, 0.050},
          {0.000, 0.050, 0.850, 0.070, 0.030, 0.000}}},
    }};

// Occupation given (education bucket, sex). Entry order: Tech-support,
// Craft-repair, Other-service, Sales, Exec-managerial, Prof-specialty,
// Handlers-cleaners, Machine-op-inspct, Adm-clerical, Farming-fishing,
// Transport-moving, Priv-house-serv, Protective-serv, Armed-Forces, ?.
constexpr std::array<std::array<std::array<double, kOccCount>, 2>, 3>
    kOccupationGivenEduSex = {{
        // Low education.
        {{{0.005, 0.020, 0.300, 0.090, 0.010, 0.010, 0.050, 0.140, 0.100,
           0.020, 0.010, 0.050, 0.005, 0.0005, 0.100},   // Female
          {0.005, 0.220, 0.090, 0.050, 0.020, 0.010, 0.130, 0.140, 0.020,
           0.080, 0.130, 0.001, 0.010, 0.001, 0.090}}},  // Male
        // Mid education.
        {{{0.030, 0.020, 0.160, 0.120, 0.080, 0.060, 0.020, 0.050, 0.320,
           0.010, 0.010, 0.010, 0.010, 0.0005, 0.060},
          {0.030, 0.210, 0.060, 0.090, 0.090, 0.050, 0.070, 0.090, 0.050,
           0.040, 0.120, 0.0005, 0.030, 0.001, 0.060}}},
        // High education.
        {{{0.040, 0.010, 0.040, 0.080, 0.200, 0.420, 0.005, 0.010, 0.130,
           0.005, 0.005, 0.002, 0.010, 0.0005, 0.040},
          {0.040, 0.040, 0.020, 0.120, 0.280, 0.350, 0.010, 0.020, 0.030,
           0.010, 0.020, 0.0002, 0.020, 0.002, 0.040}}},
    }};

// Workclass weight rows. Entry order: Private, Self-emp-not-inc,
// Self-emp-inc, Federal-gov, Local-gov, State-gov, Without-pay,
// Never-worked, ?.
constexpr std::array<double, kWcCount> kWorkclassWhiteCollar = {
    0.640, 0.090, 0.070, 0.035, 0.060, 0.060, 0.001, 0.0005, 0.040};
constexpr std::array<double, kWcCount> kWorkclassDefault = {
    0.820, 0.050, 0.010, 0.030, 0.050, 0.030, 0.002, 0.0005, 0.010};
constexpr std::array<double, kWcCount> kWorkclassFarming = {
    0.450, 0.430, 0.040, 0.005, 0.010, 0.010, 0.020, 0.001, 0.030};
constexpr std::array<double, kWcCount> kWorkclassProtective = {
    0.300, 0.020, 0.010, 0.060, 0.450, 0.150, 0.000, 0.000, 0.010};
constexpr std::array<double, kWcCount> kWorkclassArmedForces = {
    0.000, 0.000, 0.000, 1.000, 0.000, 0.000, 0.000, 0.000, 0.000};
constexpr std::array<double, kWcCount> kWorkclassUnknownOcc = {
    0.010, 0.005, 0.002, 0.001, 0.002, 0.002, 0.010, 0.020, 0.950};

constexpr std::array<double, kRaceCount> kRaceDist = {0.854, 0.031, 0.010,
                                                      0.008, 0.097};

// Base P(income > 50K) given (education bucket, is-married, sex); the
// final probability is odds-adjusted by occupation, work-class and the
// fine-grained education level so that Income couples to all of them, as
// in the real Adult data.
constexpr double kIncomeHighProb[3][2][2] = {
    // [bucket][married][sex: F, M]
    {{0.006, 0.014}, {0.060, 0.110}},   // Low education
    {{0.036, 0.070}, {0.200, 0.330}},   // Mid education
    {{0.140, 0.250}, {0.500, 0.640}},   // High education
};

// Income odds multipliers by occupation (order as kOccupationGivenEduSex).
constexpr std::array<double, kOccCount> kIncomeOddsByOccupation = {
    1.50,  // Tech-support
    0.90,  // Craft-repair
    0.40,  // Other-service
    1.20,  // Sales
    2.40,  // Exec-managerial
    2.00,  // Prof-specialty
    0.40,  // Handlers-cleaners
    0.60,  // Machine-op-inspct
    0.70,  // Adm-clerical
    0.50,  // Farming-fishing
    0.80,  // Transport-moving
    0.10,  // Priv-house-serv
    1.40,  // Protective-serv
    1.00,  // Armed-Forces
    0.30,  // ?
};

// Income odds multipliers by work-class (order as kWorkclassDefault).
constexpr std::array<double, kWcCount> kIncomeOddsByWorkclass = {
    1.00,  // Private
    0.90,  // Self-emp-not-inc
    2.80,  // Self-emp-inc
    1.30,  // Federal-gov
    1.00,  // Local-gov
    0.95,  // State-gov
    0.10,  // Without-pay
    0.05,  // Never-worked
    0.30,  // ?
};

// Income odds multipliers by exact education level (within-bucket
// refinement; Preschool..Doctorate order).
constexpr std::array<double, kEduCount> kIncomeOddsByEducation = {
    0.10, 0.20, 0.30, 0.45, 0.55, 0.65, 0.75, 0.85,  // Low bucket
    0.80, 1.00, 1.10, 1.15,                          // Mid bucket
    1.00, 1.60, 2.60, 2.40,                          // High bucket
};

// Applies the odds multipliers to a base probability.
double AdjustedIncomeProbability(double base, uint32_t occupation,
                                 uint32_t workclass, uint32_t education) {
  double odds = base / (1.0 - base);
  odds *= kIncomeOddsByOccupation[occupation];
  odds *= kIncomeOddsByWorkclass[workclass];
  odds *= kIncomeOddsByEducation[education];
  return odds / (1.0 + odds);
}

template <size_t N>
uint32_t Draw(Rng& rng, const std::array<double, N>& weights) {
  return static_cast<uint32_t>(
      rng.Discrete(std::vector<double>(weights.begin(), weights.end())));
}

}  // namespace

std::vector<Attribute> AdultSchema() {
  std::vector<Attribute> schema(8);
  schema[kAdultWorkclass] = Attribute{
      "Work-class",
      AttributeType::kNominal,
      {"Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
       "Local-gov", "State-gov", "Without-pay", "Never-worked", "?"}};
  schema[kAdultEducation] = Attribute{
      "Education",
      AttributeType::kOrdinal,
      {"Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th",
       "12th", "HS-grad", "Some-college", "Assoc-voc", "Assoc-acdm",
       "Bachelors", "Masters", "Prof-school", "Doctorate"}};
  schema[kAdultMaritalStatus] = Attribute{
      "Marital-status",
      AttributeType::kNominal,
      {"Married-civ-spouse", "Divorced", "Never-married", "Separated",
       "Widowed", "Married-spouse-absent", "Married-AF-spouse"}};
  schema[kAdultOccupation] = Attribute{
      "Occupation",
      AttributeType::kNominal,
      {"Tech-support", "Craft-repair", "Other-service", "Sales",
       "Exec-managerial", "Prof-specialty", "Handlers-cleaners",
       "Machine-op-inspct", "Adm-clerical", "Farming-fishing",
       "Transport-moving", "Priv-house-serv", "Protective-serv",
       "Armed-Forces", "?"}};
  schema[kAdultRelationship] = Attribute{
      "Relationship",
      AttributeType::kNominal,
      {"Wife", "Own-child", "Husband", "Not-in-family", "Other-relative",
       "Unmarried"}};
  schema[kAdultRace] = Attribute{
      "Race",
      AttributeType::kNominal,
      {"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other",
       "Black"}};
  schema[kAdultSex] = Attribute{
      "Sex", AttributeType::kNominal, {"Female", "Male"}};
  schema[kAdultIncome] = Attribute{
      "Income", AttributeType::kOrdinal, {"<=50K", ">50K"}};
  return schema;
}

Dataset SynthesizeAdult(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> columns(8);
  for (auto& col : columns) col.reserve(n);

  for (size_t i = 0; i < n; ++i) {
    uint32_t sex = Draw(rng, kSexDist);
    uint32_t education = Draw(rng, kEducationDist);
    EduBucket bucket = BucketOf(education);
    uint32_t marital = Draw(rng, kMaritalGivenSex[sex]);
    uint32_t relationship =
        Draw(rng, kRelationshipGivenMaritalSex[marital][sex]);
    uint32_t occupation = Draw(rng, kOccupationGivenEduSex[bucket][sex]);

    const std::array<double, kWcCount>* workclass_row = &kWorkclassDefault;
    if (occupation == kOccUnknown) {
      workclass_row = &kWorkclassUnknownOcc;
    } else if (occupation == kOccExec || occupation == kOccProf ||
               occupation == kOccSales) {
      workclass_row = &kWorkclassWhiteCollar;
    } else if (occupation == kOccFarming) {
      workclass_row = &kWorkclassFarming;
    } else if (occupation == kOccProtective) {
      workclass_row = &kWorkclassProtective;
    } else if (occupation == kOccArmedForces) {
      workclass_row = &kWorkclassArmedForces;
    }
    uint32_t workclass = Draw(rng, *workclass_row);

    uint32_t race = Draw(rng, kRaceDist);
    bool married = (marital == kMarriedCiv || marital == kMarriedAf);
    double income_prob = AdjustedIncomeProbability(
        kIncomeHighProb[bucket][married ? 1 : 0][sex], occupation, workclass,
        education);
    uint32_t income = rng.Bernoulli(income_prob) ? 1 : 0;

    columns[kAdultWorkclass].push_back(workclass);
    columns[kAdultEducation].push_back(education);
    columns[kAdultMaritalStatus].push_back(marital);
    columns[kAdultOccupation].push_back(occupation);
    columns[kAdultRelationship].push_back(relationship);
    columns[kAdultRace].push_back(race);
    columns[kAdultSex].push_back(sex);
    columns[kAdultIncome].push_back(income);
  }
  return Dataset(AdultSchema(), std::move(columns));
}

Dataset SynthesizeAdultDefault(uint64_t seed) {
  return SynthesizeAdult(kAdultNumRecords, seed);
}

StatusOr<Dataset> LoadAdultCsv(const std::string& path) {
  MDRR_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                        ReadCsvRows(path));
  // Column layout of adult.data: age, workclass, fnlwgt, education,
  // education-num, marital-status, occupation, relationship, race, sex,
  // capital-gain, capital-loss, hours-per-week, native-country, income.
  constexpr size_t kExpectedColumns = 15;
  for (auto& row : rows) {
    if (row.size() != kExpectedColumns) {
      return Status::InvalidArgument(
          "adult CSV row has " + std::to_string(row.size()) +
          " columns, expected 15");
    }
    // adult.test writes income labels with a trailing period.
    std::string& income = row[14];
    if (!income.empty() && income.back() == '.') income.pop_back();
  }
  const std::vector<size_t> column_indices = {1, 3, 5, 6, 7, 8, 9, 14};
  return DatasetFromRowsWithSchema(rows, AdultSchema(), column_indices);
}

}  // namespace mdrr
