#include "mdrr/eval/oracle_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "mdrr/core/estimator.h"
#include "mdrr/rng/rng.h"

namespace mdrr::eval {

namespace {

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return std::string(buffer);
}

}  // namespace

std::string OracleComparisonReport::ToString(const Dataset& dataset) const {
  std::string out = "oracle comparison at epsilon " + FormatDouble(epsilon) +
                    " (" + std::to_string(dataset.num_rows()) + " records)\n";
  for (const OracleBackendReport& row : backends) {
    out += "  ";
    out += mdrr::ToString(row.backend);
    out += ": mean_tv " + FormatDouble(row.mean_tv);
    for (size_t j = 0; j < row.marginal_tv.size(); ++j) {
      out += " | " + dataset.attribute(j).name +
             " tv " + FormatDouble(row.marginal_tv[j]) +
             " max_err " + FormatDouble(row.max_abs_error[j]) +
             " var " + FormatDouble(row.mean_theoretical_variance[j]);
    }
    out += '\n';
  }
  return out;
}

StatusOr<OracleComparisonReport> BuildOracleComparisonReport(
    const Dataset& dataset, const OracleComparisonOptions& options) {
  const size_t n = dataset.num_rows();
  const size_t m = dataset.num_attributes();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument(
        "oracle comparison needs a nonempty dataset");
  }
  if (!(options.epsilon > 0.0) || !std::isfinite(options.epsilon)) {
    return Status::InvalidArgument(
        "oracle comparison needs a finite epsilon > 0");
  }
  if (options.backends.empty()) {
    return Status::InvalidArgument("no backends to compare");
  }

  RngStreamFamily family(options.seed);
  OracleComparisonReport report;
  report.epsilon = options.epsilon;
  report.backends.reserve(options.backends.size());

  for (size_t b = 0; b < options.backends.size(); ++b) {
    OracleBackendReport row;
    row.backend = options.backends[b];
    row.marginal_tv.reserve(m);
    row.max_abs_error.reserve(m);
    row.mean_theoretical_variance.reserve(m);

    for (size_t j = 0; j < m; ++j) {
      const std::vector<uint32_t>& column = dataset.column(j);
      const size_t r = dataset.attribute(j).cardinality();
      MDRR_ASSIGN_OR_RETURN(
          std::unique_ptr<FrequencyOracle> oracle,
          MakeFrequencyOracle(row.backend, r, options.epsilon));

      Rng rng = family.Stream(b * m + j);
      std::vector<int64_t> counts(oracle->domain_size(), 0);
      oracle->AccumulateRange(column, 0, n, rng, /*out=*/nullptr,
                              counts.data());
      MDRR_ASSIGN_OR_RETURN(
          std::vector<double> raw,
          oracle->EstimateFrequencies(counts, static_cast<int64_t>(n)));
      std::vector<double> estimated = ProjectToSimplex(raw);

      const std::vector<double> truth = EmpiricalDistribution(column, r);
      double tv = 0.0;
      double max_err = 0.0;
      double variance = 0.0;
      for (size_t v = 0; v < r; ++v) {
        const double err = std::abs(estimated[v] - truth[v]);
        tv += err;
        max_err = std::max(max_err, err);
        variance += oracle->TheoreticalVariance(truth[v],
                                                static_cast<int64_t>(n));
      }
      row.marginal_tv.push_back(0.5 * tv);
      row.max_abs_error.push_back(max_err);
      row.mean_theoretical_variance.push_back(variance /
                                              static_cast<double>(r));
    }

    for (double tv : row.marginal_tv) row.mean_tv += tv;
    row.mean_tv /= static_cast<double>(m);
    report.backends.push_back(std::move(row));
  }
  return report;
}

}  // namespace mdrr::eval
