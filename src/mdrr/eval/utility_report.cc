#include "mdrr/eval/utility_report.h"

#include <cmath>
#include <cstdio>

#include "mdrr/core/dependence.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/joint_estimate.h"
#include "mdrr/eval/metrics.h"
#include "mdrr/eval/subset_query.h"
#include "mdrr/rng/rng.h"
#include "mdrr/stats/descriptive.h"

namespace mdrr::eval {

namespace {

Status ValidateSchemas(const Dataset& original, const Dataset& released) {
  if (original.num_rows() == 0 || released.num_rows() == 0) {
    return Status::InvalidArgument("datasets must be nonempty");
  }
  if (original.num_attributes() != released.num_attributes()) {
    return Status::InvalidArgument("attribute counts differ");
  }
  for (size_t j = 0; j < original.num_attributes(); ++j) {
    if (original.attribute(j).name != released.attribute(j).name ||
        original.attribute(j).cardinality() !=
            released.attribute(j).cardinality()) {
      return Status::InvalidArgument("schema mismatch at attribute " +
                                     std::to_string(j));
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<UtilityReport> BuildUtilityReport(
    const Dataset& original, const Dataset& released,
    const UtilityReportOptions& options) {
  MDRR_RETURN_IF_ERROR(ValidateSchemas(original, released));
  if (options.queries_per_sigma <= 0) {
    return Status::InvalidArgument("queries_per_sigma must be positive");
  }

  UtilityReport report;

  // Marginal total-variation distances.
  report.marginal_tv.resize(original.num_attributes());
  for (size_t j = 0; j < original.num_attributes(); ++j) {
    size_t r = original.attribute(j).cardinality();
    std::vector<double> a = EmpiricalDistribution(original.column(j), r);
    std::vector<double> b = EmpiricalDistribution(released.column(j), r);
    double tv = 0.0;
    for (size_t v = 0; v < r; ++v) tv += std::fabs(a[v] - b[v]);
    report.marginal_tv[j] = tv / 2.0;
  }

  // Dependence preservation.
  report.original_dependences = DependenceMatrix(original);
  report.released_dependences = DependenceMatrix(released);
  for (size_t i = 0; i < original.num_attributes(); ++i) {
    for (size_t j = i + 1; j < original.num_attributes(); ++j) {
      report.max_dependence_shift = std::max(
          report.max_dependence_shift,
          std::fabs(report.original_dependences(i, j) -
                    report.released_dependences(i, j)));
    }
  }

  // Count-query error curve. Released counts are scaled to the original
  // record count so differently-sized releases compare fairly.
  EmpiricalCounts truth(original);
  EmpiricalCounts released_counts(released);
  double scale = static_cast<double>(original.num_rows()) /
                 static_cast<double>(released.num_rows());
  Rng rng(options.seed);
  report.median_relative_error.reserve(options.sigmas.size());
  for (double sigma : options.sigmas) {
    std::vector<double> errors;
    errors.reserve(static_cast<size_t>(options.queries_per_sigma));
    for (int q = 0; q < options.queries_per_sigma; ++q) {
      CountQuery query = GenerateCoverageQuery(original, sigma, 2, rng);
      double t = truth.EstimateCount(query);
      if (t == 0.0) continue;
      double e = released_counts.EstimateCount(query) * scale;
      errors.push_back(RelativeError(e, t));
    }
    report.median_relative_error.push_back(
        errors.empty() ? 0.0 : stats::Median(errors));
  }
  return report;
}

std::string UtilityReport::ToString(const Dataset& original) const {
  std::string out;
  char buf[160];
  out += "marginal total-variation distance per attribute:\n";
  for (size_t j = 0; j < marginal_tv.size(); ++j) {
    std::snprintf(buf, sizeof(buf), "  %-24s %.4f\n",
                  original.attribute(j).name.c_str(), marginal_tv[j]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "largest pairwise dependence shift: %.4f\n",
                max_dependence_shift);
  out += buf;
  out += "median relative count-query error:\n";
  for (double e : median_relative_error) {
    std::snprintf(buf, sizeof(buf), "  %.4f", e);
    out += buf;
  }
  out += "\n";
  return out;
}

}  // namespace mdrr::eval
