// Equal-epsilon comparison of frequency-oracle backends (DE/SUE/OUE/OLH)
// over one dataset: every backend randomizes every attribute at the SAME
// per-attribute epsilon, and the report records how far each backend's
// projected estimate lands from the empirical truth, next to its
// theoretical variance. This is the utility side of the backend choice
// the paper's Section 2.1 estimator fixes to direct encoding: at small
// domains DE wins, at large domains and moderate epsilon OUE/OLH win
// (their variance does not grow with the domain size).

#ifndef MDRR_EVAL_ORACLE_COMPARE_H_
#define MDRR_EVAL_ORACLE_COMPARE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/dataset/dataset.h"

namespace mdrr::eval {

struct OracleComparisonOptions {
  // Per-attribute epsilon every backend spends (equal-budget comparison).
  double epsilon = 1.0;
  uint64_t seed = 1;
  // Backends compared, in report order.
  std::vector<OracleBackend> backends = {
      OracleBackend::kDirect, OracleBackend::kOptimizedUnary,
      OracleBackend::kLocalHashing};
};

// One backend's row: per-attribute error of the projected estimate
// against the empirical distribution of the original column.
struct OracleBackendReport {
  OracleBackend backend = OracleBackend::kDirect;
  // Per-attribute total variation distance, max absolute per-category
  // error, and mean theoretical variance (averaged over categories at
  // the empirical truth), all in schema order.
  std::vector<double> marginal_tv;
  std::vector<double> max_abs_error;
  std::vector<double> mean_theoretical_variance;
  // marginal_tv averaged over attributes (the headline number).
  double mean_tv = 0.0;
};

struct OracleComparisonReport {
  double epsilon = 0.0;
  std::vector<OracleBackendReport> backends;

  // Human-readable table, one row per backend.
  std::string ToString(const Dataset& dataset) const;
};

// Builds the report. Randomness is deterministic in (seed, backend
// order, schema): backend b's attribute j draws from stream
// b * num_attributes + j of an RngStreamFamily at `seed`, so rows are
// independent of each other and reproducible one at a time. Fails on an
// empty dataset, a non-positive epsilon, or an attribute of cardinality
// < 2.
StatusOr<OracleComparisonReport> BuildOracleComparisonReport(
    const Dataset& dataset, const OracleComparisonOptions& options);

}  // namespace mdrr::eval

#endif  // MDRR_EVAL_ORACLE_COMPARE_H_
