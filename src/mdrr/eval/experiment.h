// The shared experiment driver behind the Figure 2 / Table 1 / Figure 3 /
// Table 2 benches: for a given method and parameterization, run the
// protocol `runs` times, issue one coverage-sigma count query per run, and
// report median absolute and relative errors (Section 6.5: "the values
// reported are median values over 1000 runs").

#ifndef MDRR_EVAL_EXPERIMENT_H_
#define MDRR_EVAL_EXPERIMENT_H_

#include <cstdint>

#include "mdrr/common/status_or.h"
#include "mdrr/core/adjustment.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/dataset/dataset.h"

namespace mdrr::eval {

enum class Method {
  kRandomized,              // Raw counts on Y, no Eq. (2) (Figure 2).
  kRrIndependent,           // Protocol 1.
  kRrIndependentAdjusted,   // Protocol 1 + Algorithm 2.
  kRrClusters,              // Section 4.
  kRrClustersAdjusted,      // Section 4 + Algorithm 2.
};

const char* MethodName(Method method);

struct ExperimentConfig {
  Method method = Method::kRrIndependent;
  double keep_probability = 0.7;

  // Cluster methods only.
  ClusteringOptions clustering;
  // If set, used directly (hoists the dependence assessment out of the
  // runs); if null, `dependence_source` decides: kOracle is computed once
  // up front, in-protocol sources run inside every repetition.
  const linalg::Matrix* dependences = nullptr;
  DependenceSource dependence_source = DependenceSource::kOracle;
  double dependence_keep_probability = 0.7;

  AdjustmentOptions adjustment;

  // Query generation (Section 6.5).
  double sigma = 0.1;
  size_t query_attributes = 2;
  // If nonempty, every run queries this fixed attribute set instead of a
  // random draw (targeted evaluations and variance reduction in tests).
  std::vector<size_t> fixed_query_attributes;

  int runs = 25;
  uint64_t seed = 1;
  // 0 = one thread per hardware core.
  int threads = 0;
};

struct ExperimentResult {
  double median_absolute_error = 0.0;
  double median_relative_error = 0.0;
  int runs = 0;
  // Runs whose query had zero true count (excluded from the relative
  // median).
  int degenerate_runs = 0;
};

// Runs the experiment on `dataset` (the true data X). Deterministic in
// config.seed regardless of thread count.
StatusOr<ExperimentResult> RunCountQueryExperiment(
    const Dataset& dataset, const ExperimentConfig& config);

}  // namespace mdrr::eval

#endif  // MDRR_EVAL_EXPERIMENT_H_
