#include "mdrr/eval/subset_query.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mdrr/common/check.h"
#include "mdrr/dataset/domain.h"

namespace mdrr::eval {

CountQuery GenerateCoverageQuery(const Dataset& dataset, double sigma,
                                 size_t num_query_attributes, Rng& rng) {
  MDRR_CHECK_GE(dataset.num_attributes(), num_query_attributes);
  MDRR_CHECK_GE(num_query_attributes, 1u);
  // Sample distinct attribute indices by partial shuffle.
  std::vector<size_t> all(dataset.num_attributes());
  std::iota(all.begin(), all.end(), 0);
  for (size_t k = 0; k < num_query_attributes; ++k) {
    size_t pick = k + static_cast<size_t>(rng.UniformInt(all.size() - k));
    std::swap(all[k], all[pick]);
  }
  std::vector<size_t> attributes(all.begin(),
                                 all.begin() + num_query_attributes);
  std::sort(attributes.begin(), attributes.end());
  return GenerateCoverageQueryForAttributes(dataset, attributes, sigma, rng);
}

CountQuery GenerateCoverageQueryForAttributes(
    const Dataset& dataset, const std::vector<size_t>& attributes,
    double sigma, Rng& rng) {
  MDRR_CHECK_GT(sigma, 0.0);
  MDRR_CHECK_LE(sigma, 1.0);
  Domain domain = Domain::ForAttributes(dataset, attributes);
  const uint64_t total = domain.size();
  uint64_t take = static_cast<uint64_t>(
      std::llround(sigma * static_cast<double>(total)));
  take = std::max<uint64_t>(1, std::min(take, total));

  // Partial Fisher-Yates over all combination codes.
  std::vector<uint64_t> codes(total);
  std::iota(codes.begin(), codes.end(), 0);
  for (uint64_t k = 0; k < take; ++k) {
    uint64_t pick = k + rng.UniformInt(total - k);
    std::swap(codes[k], codes[pick]);
  }

  CountQuery query;
  query.attributes = attributes;
  query.tuples.reserve(take);
  for (uint64_t k = 0; k < take; ++k) {
    query.tuples.push_back(domain.Decode(codes[k]));
  }
  return query;
}

CountQuery MakeRangeQuery(const Dataset& dataset, size_t attribute,
                          uint32_t lo, uint32_t hi) {
  MDRR_CHECK_LT(attribute, dataset.num_attributes());
  MDRR_CHECK_LE(lo, hi);
  MDRR_CHECK_LT(hi, dataset.attribute(attribute).cardinality());
  CountQuery query;
  query.attributes = {attribute};
  for (uint32_t v = lo; v <= hi; ++v) {
    query.tuples.push_back({v});
  }
  return query;
}

}  // namespace mdrr::eval
