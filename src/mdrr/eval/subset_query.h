// Generation of the evaluation queries of Section 6.5: a subset S of the
// data domain defined over two (by default) randomly chosen attributes,
// covering a sigma proportion of their value combinations.

#ifndef MDRR_EVAL_SUBSET_QUERY_H_
#define MDRR_EVAL_SUBSET_QUERY_H_

#include <cstddef>

#include "mdrr/core/joint_estimate.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"

namespace mdrr::eval {

// Draws `num_query_attributes` distinct attributes uniformly at random,
// then selects round(sigma * prod of their cardinalities) distinct value
// combinations uniformly at random (at least 1). Preconditions:
// 0 < sigma <= 1; num_query_attributes <= num_attributes.
CountQuery GenerateCoverageQuery(const Dataset& dataset, double sigma,
                                 size_t num_query_attributes, Rng& rng);

// As above with the attribute set fixed by the caller.
CountQuery GenerateCoverageQueryForAttributes(
    const Dataset& dataset, const std::vector<size_t>& attributes,
    double sigma, Rng& rng);

// Range query on an ordinal attribute: all categories with
// lo <= code <= hi. The natural workload for the GeometricOrdinal design.
// Preconditions: lo <= hi < cardinality of `attribute`.
CountQuery MakeRangeQuery(const Dataset& dataset, size_t attribute,
                          uint32_t lo, uint32_t hi);

}  // namespace mdrr::eval

#endif  // MDRR_EVAL_SUBSET_QUERY_H_
