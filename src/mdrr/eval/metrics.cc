#include "mdrr/eval/metrics.h"

#include <cmath>
#include <limits>

namespace mdrr::eval {

double AbsoluteError(double estimated, double truth) {
  return std::fabs(estimated - truth);
}

double RelativeError(double estimated, double truth) {
  if (truth == 0.0) {
    return estimated == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::fabs(estimated - truth) / truth;
}

}  // namespace mdrr::eval
