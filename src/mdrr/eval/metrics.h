// Count-query error metrics of Section 6.5: e_S = |Y_S - X_S| and the
// relative error r_S = |Y_S - X_S| / X_S (Expression (16)).

#ifndef MDRR_EVAL_METRICS_H_
#define MDRR_EVAL_METRICS_H_

namespace mdrr::eval {

// |estimated - truth|.
double AbsoluteError(double estimated, double truth);

// |estimated - truth| / truth. Returns 0 when both are 0 and +inf when
// only the truth is 0 (the experiment driver aggregates medians over
// finite values and reports how many runs were degenerate).
double RelativeError(double estimated, double truth);

}  // namespace mdrr::eval

#endif  // MDRR_EVAL_METRICS_H_
