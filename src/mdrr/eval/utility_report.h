// Multi-metric utility report comparing a released data set (synthetic or
// randomized) against the original microdata: per-attribute marginal
// total-variation distances, pairwise dependence preservation, and a
// count-query error curve over coverages. This is the acceptance check a
// data controller runs before publishing.

#ifndef MDRR_EVAL_UTILITY_REPORT_H_
#define MDRR_EVAL_UTILITY_REPORT_H_

#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/linalg/matrix.h"

namespace mdrr::eval {

struct UtilityReportOptions {
  // Coverages evaluated in the count-query error curve.
  std::vector<double> sigmas = {0.1, 0.3, 0.5, 0.7, 0.9};
  // Queries per coverage point (median is reported).
  int queries_per_sigma = 25;
  uint64_t seed = 1;
};

struct UtilityReport {
  // Per-attribute total variation distance between marginals, in schema
  // order.
  std::vector<double> marginal_tv;
  // Pairwise dependence (paper measure) on original and released data.
  linalg::Matrix original_dependences;
  linalg::Matrix released_dependences;
  // Largest absolute pairwise dependence change.
  double max_dependence_shift = 0.0;
  // Median relative count-query error per sigma (aligned with
  // options.sigmas), queries evaluated on the released data against
  // original-data truth.
  std::vector<double> median_relative_error;

  // Human-readable multi-line rendering.
  std::string ToString(const Dataset& original) const;
};

// Builds the report. Fails unless both datasets share the schema
// (attribute names and cardinalities) and are nonempty. Released record
// counts may differ from the original; counts are compared after scaling
// to the original size.
StatusOr<UtilityReport> BuildUtilityReport(const Dataset& original,
                                           const Dataset& released,
                                           const UtilityReportOptions& options);

}  // namespace mdrr::eval

#endif  // MDRR_EVAL_UTILITY_REPORT_H_
