#include "mdrr/eval/experiment.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>

#include "mdrr/core/dependence_estimators.h"
#include "mdrr/core/joint_estimate.h"
#include "mdrr/eval/metrics.h"
#include "mdrr/eval/subset_query.h"
#include "mdrr/stats/descriptive.h"

namespace mdrr::eval {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kRandomized:
      return "Randomized";
    case Method::kRrIndependent:
      return "RR-Ind";
    case Method::kRrIndependentAdjusted:
      return "RR-Ind+Adj";
    case Method::kRrClusters:
      return "RR-Cluster";
    case Method::kRrClustersAdjusted:
      return "RR-Cluster+Adj";
  }
  return "Unknown";
}

namespace {

// Builds the method's JointEstimate for one protocol execution.
StatusOr<std::unique_ptr<JointEstimate>> BuildEstimate(
    const Dataset& dataset, const ExperimentConfig& config,
    const linalg::Matrix* hoisted_dependences, Rng& rng) {
  switch (config.method) {
    case Method::kRandomized: {
      RrIndependentOptions options{config.keep_probability};
      MDRR_ASSIGN_OR_RETURN(RrIndependentResult result,
                            RunRrIndependent(dataset, options, rng));
      return std::unique_ptr<JointEstimate>(
          new EmpiricalCounts(std::move(result.randomized)));
    }
    case Method::kRrIndependent: {
      RrIndependentOptions options{config.keep_probability};
      MDRR_ASSIGN_OR_RETURN(RrIndependentResult result,
                            RunRrIndependent(dataset, options, rng));
      return std::unique_ptr<JointEstimate>(
          new IndependentMarginalsEstimate(MakeIndependentEstimate(result)));
    }
    case Method::kRrIndependentAdjusted: {
      RrIndependentOptions options{config.keep_probability};
      MDRR_ASSIGN_OR_RETURN(RrIndependentResult result,
                            RunRrIndependent(dataset, options, rng));
      MDRR_ASSIGN_OR_RETURN(WeightedRecordsEstimate estimate,
                            MakeAdjustedEstimate(result, config.adjustment));
      return std::unique_ptr<JointEstimate>(
          new WeightedRecordsEstimate(std::move(estimate)));
    }
    case Method::kRrClusters:
    case Method::kRrClustersAdjusted: {
      RrClustersOptions options;
      options.keep_probability = config.keep_probability;
      options.clustering = config.clustering;
      options.dependence_keep_probability =
          config.dependence_keep_probability;
      if (hoisted_dependences != nullptr) {
        options.dependence_source = DependenceSource::kProvided;
        options.provided_dependences = hoisted_dependences;
      } else {
        options.dependence_source = config.dependence_source;
      }
      MDRR_ASSIGN_OR_RETURN(RrClustersResult result,
                            RunRrClusters(dataset, options, rng));
      if (config.method == Method::kRrClusters) {
        return std::unique_ptr<JointEstimate>(
            new ClusterFactorizationEstimate(MakeClusterEstimate(result)));
      }
      MDRR_ASSIGN_OR_RETURN(WeightedRecordsEstimate estimate,
                            MakeAdjustedEstimate(result, config.adjustment));
      return std::unique_ptr<JointEstimate>(
          new WeightedRecordsEstimate(std::move(estimate)));
    }
  }
  return Status::Internal("unknown method");
}

}  // namespace

StatusOr<ExperimentResult> RunCountQueryExperiment(
    const Dataset& dataset, const ExperimentConfig& config) {
  if (config.runs <= 0) {
    return Status::InvalidArgument("runs must be positive");
  }

  // Hoist the dependence assessment when it is deterministic: an
  // explicitly provided matrix, or the oracle (true-data) dependences.
  const linalg::Matrix* hoisted = config.dependences;
  linalg::Matrix oracle_dependences;
  bool is_cluster_method = config.method == Method::kRrClusters ||
                           config.method == Method::kRrClustersAdjusted;
  if (is_cluster_method && hoisted == nullptr &&
      config.dependence_source == DependenceSource::kOracle) {
    oracle_dependences = DependenceMatrix(dataset);
    hoisted = &oracle_dependences;
  }

  EmpiricalCounts truth(dataset);

  std::vector<double> absolute_errors(config.runs, 0.0);
  std::vector<double> relative_errors(config.runs, 0.0);
  std::vector<char> degenerate(config.runs, 0);
  std::mutex status_mutex;
  Status first_error = Status::OK();

  auto run_one = [&](int run) {
    Rng rng(config.seed + static_cast<uint64_t>(run) * 0x9e3779b9ULL);
    auto estimate = BuildEstimate(dataset, config, hoisted, rng);
    if (!estimate.ok()) {
      std::lock_guard<std::mutex> lock(status_mutex);
      if (first_error.ok()) first_error = estimate.status();
      return;
    }
    CountQuery query =
        config.fixed_query_attributes.empty()
            ? GenerateCoverageQuery(dataset, config.sigma,
                                    config.query_attributes, rng)
            : GenerateCoverageQueryForAttributes(
                  dataset, config.fixed_query_attributes, config.sigma, rng);
    double true_count = truth.EstimateCount(query);
    double estimated = (*estimate)->EstimateCount(query);
    absolute_errors[run] = AbsoluteError(estimated, true_count);
    if (true_count == 0.0) {
      degenerate[run] = 1;
    } else {
      relative_errors[run] = RelativeError(estimated, true_count);
    }
  };

  int num_threads = config.threads > 0
                        ? config.threads
                        : static_cast<int>(std::thread::hardware_concurrency());
  if (num_threads <= 1 || config.runs == 1) {
    for (int run = 0; run < config.runs; ++run) run_one(run);
  } else {
    std::atomic<int> next_run{0};
    std::vector<std::thread> workers;
    int worker_count = std::min(num_threads, config.runs);
    workers.reserve(static_cast<size_t>(worker_count));
    for (int t = 0; t < worker_count; ++t) {
      workers.emplace_back([&] {
        while (true) {
          int run = next_run.fetch_add(1);
          if (run >= config.runs) break;
          run_one(run);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  if (!first_error.ok()) return first_error;

  ExperimentResult result;
  result.runs = config.runs;
  std::vector<double> valid_relative;
  valid_relative.reserve(static_cast<size_t>(config.runs));
  for (int run = 0; run < config.runs; ++run) {
    if (degenerate[run]) {
      ++result.degenerate_runs;
    } else {
      valid_relative.push_back(relative_errors[run]);
    }
  }
  result.median_absolute_error = stats::Median(absolute_errors);
  result.median_relative_error =
      valid_relative.empty() ? 0.0 : stats::Median(valid_relative);
  return result;
}

}  // namespace mdrr::eval
