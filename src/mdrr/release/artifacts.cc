#include "mdrr/release/artifacts.h"

#include <utility>

#include "mdrr/core/rr_clusters.h"

namespace mdrr::release {

StatusOr<std::unique_ptr<JointEstimate>> MakeJointEstimate(
    const ReleaseArtifacts& artifacts) {
  const double n = artifacts.num_records;
  if (artifacts.adjustment.has_value()) {
    return std::unique_ptr<JointEstimate>(std::make_unique<
                                          WeightedRecordsEstimate>(
        artifacts.randomized, artifacts.adjustment->weights));
  }
  if (artifacts.clusters.has_value()) {
    // Not MakeClusterEstimate: the payload's dataset was moved into
    // artifacts.randomized, so the record count comes from num_records.
    std::vector<Domain> domains;
    std::vector<std::vector<double>> joints;
    domains.reserve(artifacts.clusters->cluster_results.size());
    joints.reserve(artifacts.clusters->cluster_results.size());
    for (const RrJointResult& joint : artifacts.clusters->cluster_results) {
      domains.push_back(joint.domain);
      joints.push_back(joint.estimated);
    }
    return std::unique_ptr<JointEstimate>(
        std::make_unique<ClusterFactorizationEstimate>(
            artifacts.clusters->clusters, std::move(domains),
            std::move(joints), n));
  }
  if (artifacts.joint.has_value()) {
    // One cluster holding the whole joint; queries keep using original
    // schema indices, matching RrJointResult::attributes.
    return std::unique_ptr<JointEstimate>(
        std::make_unique<ClusterFactorizationEstimate>(
            AttributeClustering{artifacts.joint->attributes},
            std::vector<Domain>{artifacts.joint->domain},
            std::vector<std::vector<double>>{artifacts.joint->estimated}, n));
  }
  if (artifacts.independent.has_value() || artifacts.pram.has_value()) {
    return std::unique_ptr<JointEstimate>(
        std::make_unique<IndependentMarginalsEstimate>(
            artifacts.marginal_estimates, n));
  }
  return Status::FailedPrecondition(
      "these artifacts carry no mechanism payload (parsed summary?)");
}

}  // namespace mdrr::release
