#include "mdrr/release/streaming.h"

#include <algorithm>
#include <string>
#include <utility>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_independent.h"

namespace mdrr::release {

bool operator==(const StreamingSnapshot& a, const StreamingSnapshot& b) {
  if (a.next_sequence != b.next_sequence || a.next_window != b.next_window ||
      a.epsilon_spent != b.epsilon_spent ||
      a.window_epsilons != b.window_epsilons ||
      a.cardinalities != b.cardinalities ||
      a.buckets.size() != b.buckets.size()) {
    return false;
  }
  for (size_t i = 0; i < a.buckets.size(); ++i) {
    if (a.buckets[i].bucket != b.buckets[i].bucket ||
        a.buckets[i].num_reports != b.buckets[i].num_reports ||
        a.buckets[i].counts != b.buckets[i].counts) {
      return false;
    }
  }
  return true;
}

namespace {

RrIndependentOptions DesignOptions(const ReleaseSpec& spec) {
  RrIndependentOptions options;
  if (spec.mechanism.kind == MechanismKind::kGeometricOrdinal) {
    options.design = IndependentDesign::kGeometricOrdinal;
    options.geometric_epsilon = spec.mechanism.geometric_epsilon;
  } else {
    options.keep_probability = spec.budget.keep_probability;
  }
  return options;
}

}  // namespace

StreamingCollector::StreamingCollector(
    const ReleaseSpec& spec, std::vector<size_t> cardinalities,
    const StreamingCollectorOptions& options, std::vector<RrMatrix> matrices,
    double window_epsilon)
    : spec_(spec),
      matrices_(std::move(matrices)),
      window_epsilon_(window_epsilon),
      buckets_per_window_(
          spec.streaming.window_kind == WindowKind::kSliding
              ? spec.streaming.window_size / spec.streaming.window_stride
              : 1),
      counts_(std::move(cardinalities),
              spec.streaming.window_kind == WindowKind::kSliding
                  ? spec.streaming.window_stride
                  : spec.streaming.window_size,
              std::max<size_t>(options.ring_buckets, 2),
              std::max<size_t>(options.num_shards, 1)) {
  oracles_.reserve(matrices_.size());
  for (const RrMatrix& matrix : matrices_) {
    oracles_.emplace_back(matrix);
  }
  const size_t shards = std::max<size_t>(options.num_shards, 1);
  channels_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    channels_.push_back(
        std::make_unique<StreamChannel>(options.channel_capacity));
  }
}

StatusOr<std::unique_ptr<StreamingCollector>> StreamingCollector::Create(
    const ReleaseSpec& spec, std::vector<size_t> cardinalities,
    const StreamingCollectorOptions& options) {
  MDRR_RETURN_IF_ERROR(ValidateReleaseSpec(spec, cardinalities.size()));
  if (!spec.streaming.enabled) {
    return Status::InvalidArgument(
        "StreamingCollector needs a spec with streaming.enabled");
  }
  if (cardinalities.empty()) {
    return Status::InvalidArgument(
        "streaming collection needs at least one attribute");
  }

  const RrIndependentOptions design = DesignOptions(spec);
  std::vector<RrMatrix> matrices;
  matrices.reserve(cardinalities.size());
  double derived_epsilon = 0.0;
  for (size_t r : cardinalities) {
    matrices.push_back(MakeIndependentMatrix(r, design));
    derived_epsilon += matrices.back().Epsilon();
  }
  double window_epsilon = spec.streaming.window_epsilon;
  if (window_epsilon == 0.0) {
    window_epsilon = derived_epsilon;
  } else if (window_epsilon < derived_epsilon) {
    return Status::FailedPrecondition(
        "streaming.window_epsilon (" + std::to_string(window_epsilon) +
        ") understates the design: the per-attribute Expression (4) "
        "epsilons sum to " +
        std::to_string(derived_epsilon));
  }

  return std::unique_ptr<StreamingCollector>(new StreamingCollector(
      spec, std::move(cardinalities), options, std::move(matrices),
      window_epsilon));
}

StatusOr<std::unique_ptr<StreamingCollector>> StreamingCollector::Resume(
    const ReleaseSpec& spec, std::vector<size_t> cardinalities,
    const StreamingCollectorOptions& options,
    const StreamingSnapshot& snapshot) {
  MDRR_ASSIGN_OR_RETURN(std::unique_ptr<StreamingCollector> collector,
                        Create(spec, cardinalities, options));
  if (snapshot.cardinalities != collector->counts_.cardinalities()) {
    return Status::InvalidArgument(
        "snapshot cardinalities do not match the spec's schema");
  }
  if (snapshot.window_epsilons.size() != snapshot.next_window) {
    return Status::InvalidArgument(
        "snapshot epsilon ledger does not cover its windows");
  }

  collector->next_window_ = snapshot.next_window;
  collector->epsilon_spent_ = snapshot.epsilon_spent;
  collector->window_epsilons_ = snapshot.window_epsilons;
  collector->merged_begin_ = snapshot.next_window;
  collector->next_merge_bucket_ = snapshot.next_window;

  const uint64_t stride = collector->counts_.stride();
  for (const StreamingSnapshot::BucketCounts& bucket : snapshot.buckets) {
    if (bucket.counts.size() != collector->counts_.width()) {
      return Status::InvalidArgument("snapshot bucket has a malformed row");
    }
    if (bucket.num_reports > stride) {
      return Status::InvalidArgument(
          "snapshot bucket overfills its stride");
    }
    if (bucket.num_reports == stride) {
      // A complete bucket goes straight back into the merge queue; it
      // must extend the contiguous run.
      if (bucket.bucket != collector->next_merge_bucket_) {
        return Status::InvalidArgument(
            "snapshot buckets are not contiguous");
      }
      collector->merged_.push_back(
          MergedBucket{bucket.num_reports, bucket.counts});
      ++collector->next_merge_bucket_;
    } else {
      // The partial tail bucket resumes inside the count ring.
      if (bucket.bucket != collector->next_merge_bucket_ ||
          &bucket != &snapshot.buckets.back()) {
        return Status::InvalidArgument(
            "snapshot has a partial bucket before the tail");
      }
    }
  }
  // Advance the ring frontier to the first un-merged bucket (slots are
  // still pristine, so this only moves the admission window), then drop
  // the partial tail counts back into its slot.
  if (collector->next_merge_bucket_ > 0) {
    collector->counts_.RetireThrough(collector->next_merge_bucket_ - 1);
  }
  if (!snapshot.buckets.empty() &&
      snapshot.buckets.back().num_reports < stride &&
      snapshot.buckets.back().num_reports > 0) {
    const StreamingSnapshot::BucketCounts& tail = snapshot.buckets.back();
    collector->counts_.RestoreBucket(tail.bucket, tail.counts,
                                     tail.num_reports);
  }
  return std::move(collector);
}

bool StreamingCollector::TrySubmit(size_t shard, uint64_t sequence,
                                   const std::vector<uint32_t>& codes) {
  MDRR_DCHECK_LT(shard, channels_.size());
  // The admission limit only grows, so checking before acquiring cannot
  // admit a sequence whose slot is still occupied.
  if (sequence >= counts_.AdmissionLimit()) return false;
  StreamReportNode* node = channels_[shard]->TryAcquire();
  if (node == nullptr) return false;
  node->sequence = sequence;
  node->codes.assign(codes.begin(), codes.end());
  channels_[shard]->Push(node);
  submitted_.fetch_add(1, std::memory_order_release);
  return true;
}

size_t StreamingCollector::DrainShard(size_t shard) {
  MDRR_DCHECK_LT(shard, channels_.size());
  StreamChannel& channel = *channels_[shard];
  size_t n = 0;
  while (StreamReportNode* node = channel.TryPop()) {
    counts_.Count(shard, node->sequence, node->codes.data());
    channel.Recycle(node);
    ++n;
  }
  if (n > 0) drained_total_.fetch_add(n, std::memory_order_release);
  return n;
}

uint64_t StreamingCollector::BucketPopulation(uint64_t bucket) const {
  const uint64_t stride = counts_.stride();
  if (!sealed_) return stride;
  const uint64_t begin = bucket * stride;
  if (begin >= total_reports_) return 0;
  return std::min<uint64_t>(stride, total_reports_ - begin);
}

StatusOr<StreamWindow> StreamingCollector::EmitWindow() {
  const uint64_t w = next_window_;
  const uint64_t stride = counts_.stride();
  StreamWindow window;
  window.index = w;
  window.begin_sequence = w * stride;
  window.end_sequence = w * stride + spec_.streaming.window_size;

  // Window sums: merge the k buckets in ascending order (exact integer
  // adds; the order is fixed, so this is deterministic by construction).
  std::vector<int64_t> sums(counts_.width(), 0);
  uint64_t reports = 0;
  for (uint64_t b = w; b < w + buckets_per_window_; ++b) {
    const MergedBucket& bucket = merged_[static_cast<size_t>(
        b - merged_begin_)];
    reports += bucket.num_reports;
    for (size_t i = 0; i < sums.size(); ++i) sums[i] += bucket.counts[i];
  }
  window.num_reports = reports;

  // Fail-closed budget cap: a window that cannot pay is emitted
  // suppressed -- counting continues, publication stops.
  if (epsilon_spent_ + window_epsilon_ > spec_.budget.max_total_epsilon) {
    window.released = false;
    window.epsilon = 0.0;
    window_epsilons_.push_back(0.0);
    ++next_window_;
    return window;
  }

  const std::vector<size_t>& cardinalities = counts_.cardinalities();
  window.artifacts.num_records = static_cast<double>(reports);
  window.artifacts.release_epsilon = window_epsilon_;
  window.artifacts.marginal_estimates.reserve(cardinalities.size());
  size_t offset = 0;
  std::vector<double> lambda;
  for (size_t j = 0; j < cardinalities.size(); ++j) {
    const size_t r = cardinalities[j];
    lambda.assign(r, 0.0);
    for (size_t v = 0; v < r; ++v) {
      lambda[v] = static_cast<double>(sums[offset + v]) /
                  static_cast<double>(reports);
    }
    offset += r;
    // The oracle's closed-form inversion IS the structured Eq. (2)
    // estimator for RR designs, so this is bit-identical to calling
    // EstimateProjectedDistribution on matrices_[j].
    MDRR_ASSIGN_OR_RETURN(std::vector<double> raw,
                          oracles_[j].EstimateFromLambda(lambda));
    window.artifacts.marginal_estimates.push_back(ProjectToSimplex(raw));
  }

  window.released = true;
  window.epsilon = window_epsilon_;
  epsilon_spent_ += window_epsilon_;
  window_epsilons_.push_back(window_epsilon_);
  ++next_window_;
  return window;
}

StatusOr<size_t> StreamingCollector::PollWindows(
    std::vector<StreamWindow>& out) {
  // 1. Merge every bucket the drains have completed, retiring its slot
  // (which re-opens producer admission).
  for (;;) {
    const uint64_t population = BucketPopulation(next_merge_bucket_);
    if (population == 0) break;  // Beyond the sealed stream.
    if (counts_.DrainedCount(next_merge_bucket_) < population) break;
    merged_.push_back(MergedBucket{
        population, counts_.MergedCounts(next_merge_bucket_)});
    counts_.RetireThrough(next_merge_bucket_);
    ++next_merge_bucket_;
  }

  // 2. Emit every fully counted window, oldest first.
  size_t emitted = 0;
  const uint64_t max_windows = spec_.streaming.max_windows;
  while (max_windows == 0 || next_window_ < max_windows) {
    const uint64_t last_bucket = next_window_ + buckets_per_window_ - 1;
    if (last_bucket >= next_merge_bucket_) break;
    MDRR_ASSIGN_OR_RETURN(StreamWindow window, EmitWindow());
    // A sealed tail window that fell short of window_size never
    // releases; nothing after it can fill up either.
    if (window.num_reports < spec_.streaming.window_size) {
      --next_window_;
      window_epsilons_.pop_back();
      if (window.released) epsilon_spent_ -= window.epsilon;
      break;
    }
    out.push_back(std::move(window));
    ++emitted;
    // 3. Drop buckets no future window starts at or before.
    while (merged_begin_ < next_window_) {
      merged_.pop_front();
      ++merged_begin_;
    }
  }
  if (max_windows != 0 && next_window_ >= max_windows) {
    // Past the emission cap no window will ever read the queue again;
    // keep memory flat on streams that continue counting.
    merged_.clear();
    merged_begin_ = next_merge_bucket_;
  }
  return emitted;
}

void StreamingCollector::Seal(uint64_t total_reports) {
  sealed_ = true;
  total_reports_ = total_reports;
}

uint64_t StreamingCollector::SealedWindowCount() const {
  MDRR_CHECK(sealed_);
  const uint64_t size = spec_.streaming.window_size;
  const uint64_t stride = counts_.stride();
  uint64_t possible =
      total_reports_ >= size ? (total_reports_ - size) / stride + 1 : 0;
  if (spec_.streaming.max_windows != 0) {
    possible = std::min<uint64_t>(possible, spec_.streaming.max_windows);
  }
  return possible;
}

bool StreamingCollector::Finished() const {
  return sealed_ && next_window_ >= SealedWindowCount();
}

bool StreamingCollector::Quiescent() const {
  return drained_total_.load(std::memory_order_acquire) ==
         submitted_.load(std::memory_order_acquire);
}

StatusOr<StreamingSnapshot> StreamingCollector::Snapshot(
    uint64_t next_sequence) const {
  if (!Quiescent()) {
    return Status::FailedPrecondition(
        "collector is not quiescent: stop producers and drain every shard "
        "before snapshotting");
  }
  StreamingSnapshot snapshot;
  snapshot.next_sequence = next_sequence;
  snapshot.next_window = next_window_;
  snapshot.epsilon_spent = epsilon_spent_;
  snapshot.window_epsilons = window_epsilons_;
  snapshot.cardinalities = counts_.cardinalities();

  // Merged-but-unreleased buckets (complete), then the live partial
  // bucket if any -- ascending, contiguous from merged_begin_.
  for (size_t i = 0; i < merged_.size(); ++i) {
    StreamingSnapshot::BucketCounts bucket;
    bucket.bucket = merged_begin_ + i;
    bucket.num_reports = merged_[i].num_reports;
    bucket.counts = merged_[i].counts;
    snapshot.buckets.push_back(std::move(bucket));
  }
  const uint64_t live_end = counts_.frontier() + counts_.ring_buckets();
  for (uint64_t b = next_merge_bucket_; b < live_end; ++b) {
    const uint64_t drained = counts_.DrainedCount(b);
    if (drained == 0) continue;
    StreamingSnapshot::BucketCounts bucket;
    bucket.bucket = b;
    bucket.num_reports = drained;
    bucket.counts = counts_.MergedCounts(b);
    snapshot.buckets.push_back(std::move(bucket));
  }
  return snapshot;
}

}  // namespace mdrr::release
