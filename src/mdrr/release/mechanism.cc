#include "mdrr/release/mechanism.h"

#include <algorithm>
#include <string>
#include <utility>

#include "mdrr/core/estimator.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/core/synthetic.h"

namespace mdrr::release {

namespace {

std::string GroupToString(const std::vector<size_t>& group) {
  std::string out = "{";
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(group[i]);
  }
  return out + "}";
}

// Selects `requested` groups out of the mechanism's per-unit group list,
// where unit u constrains the attribute set `units[u]` (sorted). An
// empty request keeps every unit.
StatusOr<std::vector<AdjustmentGroup>> SelectGroups(
    std::vector<AdjustmentGroup> all,
    const std::vector<std::vector<size_t>>& units,
    const std::vector<std::vector<size_t>>& requested) {
  if (requested.empty()) return all;
  std::vector<AdjustmentGroup> selected;
  selected.reserve(requested.size());
  for (const std::vector<size_t>& group : requested) {
    std::vector<size_t> sorted = group;
    std::sort(sorted.begin(), sorted.end());
    auto it = std::find(units.begin(), units.end(), sorted);
    if (it == units.end()) {
      return Status::InvalidArgument(
          "adjustment group " + GroupToString(group) +
          " does not match a unit of this release (the mechanism "
          "constrains " +
          std::to_string(units.size()) + " units)");
    }
    selected.push_back(all[static_cast<size_t>(it - units.begin())]);
  }
  return selected;
}

std::vector<std::vector<size_t>> SingletonUnits(size_t m) {
  std::vector<std::vector<size_t>> units(m);
  for (size_t j = 0; j < m; ++j) units[j] = {j};
  return units;
}

// ---------------------------------------------------------------------------
// Protocol 1.
// ---------------------------------------------------------------------------

class IndependentMechanism : public Mechanism {
 public:
  // Serves both per-attribute spec mechanisms: `name` is the spec token
  // ("independent" or "geometric-ordinal"); the design difference lives
  // entirely in the options.
  IndependentMechanism(const RrIndependentOptions& options, const char* name)
      : options_(options), name_(name) {}

  const char* name() const override { return name_; }

  StatusOr<MechanismOutput> RunSequential(const Dataset& dataset,
                                          Rng& rng) const override {
    MDRR_ASSIGN_OR_RETURN(RrIndependentResult result,
                          RunRrIndependent(dataset, options_, rng));
    return FromResult(std::move(result));
  }

  StatusOr<MechanismOutput> RunSharded(
      const Dataset& dataset,
      const BatchPerturbationEngine& engine) const override {
    MDRR_ASSIGN_OR_RETURN(RrIndependentResult result,
                          engine.RunIndependent(dataset, options_));
    return FromResult(std::move(result));
  }

  bool SupportsSynthesis() const override { return true; }

  StatusOr<Dataset> SynthesizeSequential(const MechanismOutput& output,
                                         int64_t n, Rng& rng) const override {
    return SynthesizeFromIndependent(*output.independent, n, rng);
  }

  StatusOr<Dataset> SynthesizeSharded(
      const MechanismOutput& output, int64_t n,
      const BatchPerturbationEngine& engine) const override {
    return engine.SynthesizeIndependent(*output.independent, n);
  }

  bool SupportsAdjustment() const override { return true; }

  StatusOr<std::vector<AdjustmentGroup>> AdjustmentGroupsFor(
      const MechanismOutput& output,
      const std::vector<std::vector<size_t>>& requested) const override {
    return SelectGroups(
        GroupsFromIndependent(*output.independent),
        SingletonUnits(output.independent->randomized.num_attributes()),
        requested);
  }

 private:
  static MechanismOutput FromResult(RrIndependentResult result) {
    MechanismOutput output;
    output.marginal_estimates = result.estimated;
    output.release_epsilon = result.total_epsilon;
    output.independent = std::move(result);
    return output;
  }

  RrIndependentOptions options_;
  const char* name_;
};

// ---------------------------------------------------------------------------
// Frequency-oracle backends (spec.frequency_oracle, non-default).
// ---------------------------------------------------------------------------

// Per-attribute release through a pluggable frequency oracle (DE with an
// explicit epsilon, SUE, OUE, or OLH). Shares Protocol 1's column loop
// and randomness addressing: the sharded run goes through the engine's
// RunOracle (same stream/counter layout as RunIndependent), and the
// sequential run threads the policy Rng through the attributes in
// order. Frequency-only backends (sue|oue|olh) publish closed-form
// marginals with no microdata column; the direct backend also releases
// the randomized dataset.
class OracleMechanism : public Mechanism {
 public:
  OracleMechanism(const FrequencyOracleSpec& oracle_spec,
                  const RrIndependentOptions& design)
      : oracle_spec_(oracle_spec), design_(design) {}

  const char* name() const override { return "frequency-oracle"; }

  StatusOr<MechanismOutput> RunSequential(const Dataset& dataset,
                                          Rng& rng) const override {
    return RunWith(dataset, [&rng](const FrequencyOracle& oracle,
                                   const std::vector<uint32_t>& codes,
                                   size_t /*column_index*/) {
      const size_t n = codes.size();
      OracleColumnResult column;
      if (oracle.produces_microdata()) column.codes.resize(n);
      column.counts.assign(oracle.domain_size(), 0);
      oracle.AccumulateRange(
          codes, 0, n, rng,
          oracle.produces_microdata() ? column.codes.data() : nullptr,
          column.counts.data());
      column.lambda.assign(oracle.domain_size(), 0.0);
      if (n > 0) {
        for (size_t v = 0; v < column.counts.size(); ++v) {
          column.lambda[v] = static_cast<double>(column.counts[v]) /
                             static_cast<double>(n);
        }
      }
      return column;
    });
  }

  StatusOr<MechanismOutput> RunSharded(
      const Dataset& dataset,
      const BatchPerturbationEngine& engine) const override {
    return RunWith(dataset, [&engine](const FrequencyOracle& oracle,
                                      const std::vector<uint32_t>& codes,
                                      size_t column_index) {
      return engine.RunOracle(oracle, codes, column_index);
    });
  }

 private:
  // The oracle for one attribute of cardinality r. An explicit
  // frequency_oracle.epsilon applies uniformly to every attribute;
  // epsilon 0 inherits the per-attribute budget the spec's RR design
  // would spend at this cardinality (Expression (4) epsilon), so backend
  // swaps compare at equal epsilon by construction.
  StatusOr<std::unique_ptr<FrequencyOracle>> MakeOracle(size_t r) const {
    double epsilon = oracle_spec_.epsilon;
    if (epsilon == 0.0) {
      epsilon = MakeIndependentMatrix(r, design_).Epsilon();
    }
    return MakeFrequencyOracle(oracle_spec_.backend, r, epsilon);
  }

  template <typename ColumnRunner>
  StatusOr<MechanismOutput> RunWith(const Dataset& dataset,
                                    const ColumnRunner& run_column) const {
    const size_t m = dataset.num_attributes();
    const bool microdata = oracle_spec_.backend == OracleBackend::kDirect;
    MechanismOutput output;
    output.marginal_estimates.reserve(m);
    std::vector<std::vector<uint32_t>> columns(microdata ? m : 0);
    for (size_t j = 0; j < m; ++j) {
      const size_t r = dataset.attribute(j).cardinality();
      MDRR_ASSIGN_OR_RETURN(std::unique_ptr<FrequencyOracle> oracle,
                            MakeOracle(r));
      OracleColumnResult column = run_column(*oracle, dataset.column(j), j);
      MDRR_ASSIGN_OR_RETURN(std::vector<double> raw,
                            oracle->EstimateFromLambda(column.lambda));
      output.marginal_estimates.push_back(ProjectToSimplex(raw));
      output.release_epsilon += oracle->epsilon();
      if (microdata) columns[j] = std::move(column.codes);
    }
    if (microdata) {
      output.randomized = Dataset(dataset.schema(), std::move(columns));
    }
    return output;
  }

  FrequencyOracleSpec oracle_spec_;
  RrIndependentOptions design_;
};

// ---------------------------------------------------------------------------
// Protocol 2.
// ---------------------------------------------------------------------------

class JointMechanism : public Mechanism {
 public:
  JointMechanism(std::vector<size_t> attributes, double keep_probability,
                 bool use_paper_epsilon_formula)
      : attributes_(std::move(attributes)),
        keep_probability_(keep_probability),
        use_paper_epsilon_formula_(use_paper_epsilon_formula) {}

  const char* name() const override { return "joint"; }

  StatusOr<MechanismOutput> RunSequential(const Dataset& dataset,
                                          Rng& rng) const override {
    MDRR_ASSIGN_OR_RETURN(
        RrJointResult result,
        RunRrJoint(dataset, attributes_, Budget(dataset), rng));
    return FromResult(dataset, std::move(result), /*decode_threads=*/1);
  }

  StatusOr<MechanismOutput> RunSharded(
      const Dataset& dataset,
      const BatchPerturbationEngine& engine) const override {
    MDRR_ASSIGN_OR_RETURN(RrJointResult result,
                          engine.RunJoint(dataset, attributes_,
                                          Budget(dataset)));
    // The composite-code decode is deterministic at any thread count, so
    // it rides the engine's workers.
    return FromResult(dataset, std::move(result),
                      engine.options().num_threads);
  }

 private:
  double Budget(const Dataset& dataset) const {
    // The Section 6.3.2 calibration: the joint matrix gets the summed
    // per-attribute KeepUniform epsilons.
    return ClusterEpsilonBudget(dataset, attributes_, keep_probability_,
                                use_paper_epsilon_formula_);
  }

  static MechanismOutput FromResult(const Dataset& dataset,
                                    RrJointResult result,
                                    size_t decode_threads) {
    // The joint release publishes composite codes over the selected
    // attributes only; decode them into a dataset over that sub-schema.
    // Rows are independent, so the decode shards freely (bit-identical
    // at any thread count).
    std::vector<Attribute> schema;
    schema.reserve(result.attributes.size());
    for (size_t j : result.attributes) schema.push_back(dataset.attribute(j));
    std::vector<std::vector<uint32_t>> columns(result.attributes.size());
    for (size_t position = 0; position < result.attributes.size();
         ++position) {
      columns[position] =
          DecodeColumnSharded(result.domain, result.randomized_codes,
                              position, /*chunk_size=*/1 << 16,
                              decode_threads);
    }

    MechanismOutput output;
    output.randomized = Dataset(std::move(schema), std::move(columns));
    output.marginal_estimates.reserve(result.attributes.size());
    for (size_t position = 0; position < result.attributes.size();
         ++position) {
      output.marginal_estimates.push_back(
          result.domain.MarginalizeTo(result.estimated, position));
    }
    output.release_epsilon = result.epsilon;
    output.joint = std::move(result);
    return output;
  }

  std::vector<size_t> attributes_;
  double keep_probability_;
  bool use_paper_epsilon_formula_;
};

// ---------------------------------------------------------------------------
// RR-Clusters.
// ---------------------------------------------------------------------------

class ClustersMechanism : public Mechanism {
 public:
  explicit ClustersMechanism(const RrClustersOptions& options)
      : options_(options) {}

  const char* name() const override { return "clusters"; }

  StatusOr<MechanismOutput> RunSequential(const Dataset& dataset,
                                          Rng& rng) const override {
    MDRR_ASSIGN_OR_RETURN(RrClustersResult result,
                          RunRrClusters(dataset, options_, rng));
    return FromResult(std::move(result));
  }

  StatusOr<MechanismOutput> RunSharded(
      const Dataset& dataset,
      const BatchPerturbationEngine& engine) const override {
    MDRR_ASSIGN_OR_RETURN(RrClustersResult result,
                          engine.RunClusters(dataset, options_));
    return FromResult(std::move(result));
  }

  bool SupportsSynthesis() const override { return true; }

  StatusOr<Dataset> SynthesizeSequential(const MechanismOutput& output,
                                         int64_t n, Rng& rng) const override {
    return SynthesizeFromClusters(*output.clusters, n, rng);
  }

  StatusOr<Dataset> SynthesizeSharded(
      const MechanismOutput& output, int64_t n,
      const BatchPerturbationEngine& engine) const override {
    return engine.SynthesizeClusters(*output.clusters, n);
  }

  bool SupportsAdjustment() const override { return true; }

  StatusOr<std::vector<AdjustmentGroup>> AdjustmentGroupsFor(
      const MechanismOutput& output,
      const std::vector<std::vector<size_t>>& requested) const override {
    // Units are the realized clusters (members already sorted).
    return SelectGroups(GroupsFromClusters(*output.clusters),
                        output.clustering, requested);
  }

 private:
  static MechanismOutput FromResult(RrClustersResult result) {
    MechanismOutput output;
    output.dependences = result.dependences;
    output.clustering = result.clusters;
    output.release_epsilon = result.release_epsilon;
    output.dependence_epsilon = result.dependence_epsilon;
    output.marginal_estimates.resize(result.randomized.num_attributes());
    for (size_t c = 0; c < result.clusters.size(); ++c) {
      const std::vector<size_t>& members = result.clusters[c];
      const RrJointResult& joint = result.cluster_results[c];
      for (size_t position = 0; position < members.size(); ++position) {
        output.marginal_estimates[members[position]] =
            joint.domain.MarginalizeTo(joint.estimated, position);
      }
    }
    output.clusters = std::move(result);
    return output;
  }

  RrClustersOptions options_;
};

// ---------------------------------------------------------------------------
// PRAM.
// ---------------------------------------------------------------------------

class PramMechanism : public Mechanism {
 public:
  explicit PramMechanism(double keep_probability)
      : keep_probability_(keep_probability) {}

  const char* name() const override { return "pram"; }

  StatusOr<MechanismOutput> RunSequential(const Dataset& dataset,
                                          Rng& rng) const override {
    MDRR_ASSIGN_OR_RETURN(PramResult result,
                          ApplyPram(dataset, keep_probability_, rng));
    return FromResult(std::move(result));
  }

  StatusOr<MechanismOutput> RunSharded(
      const Dataset& dataset,
      const BatchPerturbationEngine& engine) const override {
    // PRAM is applied by the controller in one pass over the collected
    // file and has no sharded perturbation path yet; both policies
    // produce the sequential transcript at the policy seed.
    Rng rng(engine.options().seed);
    return RunSequential(dataset, rng);
  }

  bool SupportsAdjustment() const override { return true; }

  StatusOr<std::vector<AdjustmentGroup>> AdjustmentGroupsFor(
      const MechanismOutput& output,
      const std::vector<std::vector<size_t>>& requested) const override {
    const PramResult& pram = *output.pram;
    std::vector<AdjustmentGroup> all;
    all.reserve(pram.randomized.num_attributes());
    for (size_t j = 0; j < pram.randomized.num_attributes(); ++j) {
      all.push_back(AdjustmentGroup{pram.randomized.column(j),
                                    pram.estimated[j]});
    }
    return SelectGroups(std::move(all),
                        SingletonUnits(pram.randomized.num_attributes()),
                        requested);
  }

 private:
  static MechanismOutput FromResult(PramResult result) {
    MechanismOutput output;
    output.marginal_estimates = result.estimated;
    // The published file is protected by the sequential composition of
    // the per-attribute matrices.
    for (double epsilon : result.epsilons) {
      output.release_epsilon += epsilon;
    }
    output.pram = std::move(result);
    return output;
  }

  double keep_probability_;
};

}  // namespace

StatusOr<Dataset> Mechanism::SynthesizeSequential(
    const MechanismOutput& /*output*/, int64_t /*n*/, Rng& /*rng*/) const {
  return Status::Unimplemented(std::string(name()) +
                               " does not support synthetic output");
}

StatusOr<Dataset> Mechanism::SynthesizeSharded(
    const MechanismOutput& /*output*/, int64_t /*n*/,
    const BatchPerturbationEngine& /*engine*/) const {
  return Status::Unimplemented(std::string(name()) +
                               " does not support synthetic output");
}

StatusOr<std::vector<AdjustmentGroup>> Mechanism::AdjustmentGroupsFor(
    const MechanismOutput& /*output*/,
    const std::vector<std::vector<size_t>>& /*requested*/) const {
  return Status::Unimplemented(std::string(name()) +
                               " does not support adjustment");
}

std::unique_ptr<Mechanism> MakeMechanism(const ReleaseSpec& spec) {
  if (!spec.frequency_oracle.is_default()) {
    // ValidateReleaseSpec pins non-default oracle sections to the
    // per-attribute mechanisms; the design options only matter for the
    // derived equal-epsilon budget when frequency_oracle.epsilon is 0.
    RrIndependentOptions design;
    design.keep_probability = spec.budget.keep_probability;
    if (spec.mechanism.kind == MechanismKind::kGeometricOrdinal) {
      design.design = IndependentDesign::kGeometricOrdinal;
      design.geometric_epsilon = spec.mechanism.geometric_epsilon;
    }
    return std::make_unique<OracleMechanism>(spec.frequency_oracle, design);
  }
  switch (spec.mechanism.kind) {
    case MechanismKind::kIndependent:
      return std::make_unique<IndependentMechanism>(
          RrIndependentOptions{spec.budget.keep_probability}, "independent");
    case MechanismKind::kGeometricOrdinal: {
      RrIndependentOptions options;
      options.design = IndependentDesign::kGeometricOrdinal;
      options.geometric_epsilon = spec.mechanism.geometric_epsilon;
      return std::make_unique<IndependentMechanism>(options,
                                                    "geometric-ordinal");
    }
    case MechanismKind::kJoint:
      return std::make_unique<JointMechanism>(
          spec.mechanism.joint_attributes, spec.budget.keep_probability,
          spec.mechanism.use_paper_epsilon_formula);
    case MechanismKind::kClusters: {
      RrClustersOptions options;
      options.keep_probability = spec.budget.keep_probability;
      options.clustering = spec.mechanism.clustering;
      options.dependence_source = spec.mechanism.dependence_source;
      options.dependence_keep_probability =
          spec.budget.dependence_keep_probability;
      options.use_paper_epsilon_formula =
          spec.mechanism.use_paper_epsilon_formula;
      return std::make_unique<ClustersMechanism>(options);
    }
    case MechanismKind::kPram:
      return std::make_unique<PramMechanism>(spec.budget.keep_probability);
  }
  return nullptr;
}

}  // namespace mdrr::release
