// Controller-side stage bundle for protocols whose perturbation happens
// remotely (the party-level session of protocol/): the parties randomize
// their own records, so the controller needs exactly the assessment /
// clustering / estimation / decode stages -- under the same
// ExecutionPolicy as a full in-process release. ReleasePlanner lowers a
// policy into a ControllerPlan (planner.h); protocol/session.cc is the
// consumer.
//
// Every operation routes through the sharded stage primitives
// (DependenceMatrixSharded, stats::ShardedHistogram, ParallelChunks), so
// results are bit-identical for any thread count; kSequential simply
// pins one worker.

#ifndef MDRR_RELEASE_CONTROLLER_H_
#define MDRR_RELEASE_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/clustering.h"
#include "mdrr/core/dependence.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/release/spec.h"
#include "mdrr/stats/frequency.h"

namespace mdrr::release {

class ControllerPlan {
 public:
  // Use ReleasePlanner::PlanController to obtain a validated plan.
  ControllerPlan(ClusteringOptions clustering, DependenceMeasure measure,
                 ExecutionPolicy policy);

  // Corollary 1 dependences on the published (randomized) data followed
  // by Algorithm 1. `dependences_out`, when non-null, receives the
  // assessed matrix.
  StatusOr<AttributeClustering> AssessAndCluster(
      const Dataset& published,
      linalg::Matrix* dependences_out = nullptr) const;

  // Eq. (2) projected estimate from published composite codes: sharded
  // counting, then estimation against the public matrix. Every code must
  // be < num_categories == matrix.size().
  StatusOr<std::vector<double>> EstimateDistribution(
      const RrMatrix& matrix, const std::vector<uint32_t>& codes,
      size_t num_categories) const;

  // Eq. (2) projected estimate from an already-counted publication --
  // the entry point for sweeps that fuse counting into the randomization
  // pass (protocol/PartyBlock). EstimateDistribution is exactly
  // ShardedHistogram + this call, so callers arriving with equal counts
  // get bit-identical estimates under the plan's policy.
  StatusOr<std::vector<double>> EstimateFromCounts(
      const RrMatrix& matrix, const stats::FrequencyTable& counts) const;

  // Decodes one position of published composite codes into an attribute
  // column (deterministic at any thread count).
  std::vector<uint32_t> DecodeColumn(const Domain& domain,
                                     const std::vector<uint32_t>& codes,
                                     size_t position) const;

  const ExecutionPolicy& policy() const { return policy_; }

 private:
  size_t Threads() const;

  ClusteringOptions clustering_;
  DependenceMeasure measure_;
  ExecutionPolicy policy_;
};

}  // namespace mdrr::release

#endif  // MDRR_RELEASE_CONTROLLER_H_
