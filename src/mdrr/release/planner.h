// ReleaseSpec -> ReleasePlan -> ReleaseArtifacts.
//
// The planner validates a declarative ReleaseSpec, resolves its dataset
// binding, and lowers it into an executable ReleasePlan whose Run()
// drives every stage -- perturbation/estimation, optional Algorithm 2
// adjustment, optional synthetic release, optional utility evaluation,
// and output writing -- under the spec's single ExecutionPolicy:
//
//   kSequential   one Rng(seed) threaded through the stages in order,
//                 bit-identical to calling the stage functions directly;
//   kSharded      everything through the BatchPerturbationEngine
//                 contracts, bit-identical for any num_threads at fixed
//                 (seed, shard_size) and to the corresponding direct
//                 engine calls;
//   kDistributed  the kSharded pipeline with column perturbation farmed
//                 out to worker processes through a net::Coordinator --
//                 bit-identical to kSharded at the same (seed,
//                 shard_size, rng) for any worker count. Run() self-hosts
//                 the coordinator (listens on execution.listen_port and
//                 waits for execution.num_workers); RunDistributed takes
//                 an already-connected coordinator instead. Failures are
//                 fail-closed: a worker error aborts the release before
//                 any artifact or output file exists.
//
// Run() is const and re-derives all randomness from the spec, so a plan
// can be executed repeatedly (or the spec shipped to another machine)
// with identical artifacts.

#ifndef MDRR_RELEASE_PLANNER_H_
#define MDRR_RELEASE_PLANNER_H_

#include <functional>
#include <memory>

#include "mdrr/common/status_or.h"
#include "mdrr/net/coordinator.h"
#include "mdrr/release/artifacts.h"
#include "mdrr/release/controller.h"
#include "mdrr/release/mechanism.h"
#include "mdrr/release/spec.h"

namespace mdrr::release {

class ReleasePlan {
 public:
  const ReleaseSpec& spec() const { return spec_; }
  const Dataset& dataset() const {
    return provided_ != nullptr ? *provided_ : owned_;
  }

  // Executes every planned stage and returns the artifacts (plus writes
  // the spec's output files, when configured). Under kDistributed this
  // listens, accepts the configured worker count, runs, and commits.
  StatusOr<ReleaseArtifacts> Run() const;

  // kDistributed only: runs the release over a coordinator the caller
  // already set up (listening, workers accepted) -- the entry point for
  // tests and embedders that need the ephemeral port before workers
  // launch. Commits on success; aborts the workers and returns the first
  // failure otherwise, never writing any configured output.
  StatusOr<ReleaseArtifacts> RunDistributed(
      net::Coordinator& coordinator) const;

 private:
  friend class ReleasePlanner;
  ReleasePlan(ReleaseSpec spec, Dataset owned, const Dataset* provided,
              std::unique_ptr<Mechanism> mechanism);

  // The stage pipeline shared by every policy: exactly one of rng/engine
  // is non-null. `mechanism_check` (optional) runs right after the
  // mechanism stage -- the distributed path uses it to surface a worker
  // failure before any downstream stage or output write runs.
  StatusOr<ReleaseArtifacts> ExecuteStages(
      Rng* rng, const BatchPerturbationEngine* engine,
      const std::function<Status()>* mechanism_check) const;

  ReleaseSpec spec_;
  // kProvided binds by reference (no copy); the other sources own their
  // resolved dataset.
  Dataset owned_;
  const Dataset* provided_ = nullptr;
  std::unique_ptr<Mechanism> mechanism_;
};

class ReleasePlanner {
 public:
  // Validates `spec` and resolves its dataset binding. `provided` is
  // required when spec.dataset.source is kProvided; the plan then
  // borrows it, so it must outlive the plan. Returns InvalidArgument on
  // a malformed or contradictory spec.
  static StatusOr<ReleasePlan> Plan(const ReleaseSpec& spec,
                                    const Dataset* provided = nullptr);

  // Lowers an execution policy into the controller-side stage bundle
  // used when parties perturb their own records (protocol/session.cc).
  static StatusOr<ControllerPlan> PlanController(
      const ClusteringOptions& clustering, const ExecutionPolicy& policy,
      DependenceMeasure measure = DependenceMeasure::kPaperAuto);
};

}  // namespace mdrr::release

#endif  // MDRR_RELEASE_PLANNER_H_
