#include "mdrr/release/controller.h"

#include <algorithm>

#include "mdrr/core/estimator.h"
#include "mdrr/stats/frequency.h"

namespace mdrr::release {

ControllerPlan::ControllerPlan(ClusteringOptions clustering,
                               DependenceMeasure measure,
                               ExecutionPolicy policy)
    : clustering_(clustering), measure_(measure), policy_(policy) {
  policy_.shard_size = std::max<size_t>(1, policy_.shard_size);
}

size_t ControllerPlan::Threads() const {
  return policy_.kind == PolicyKind::kSequential ? 1 : policy_.num_threads;
}

StatusOr<AttributeClustering> ControllerPlan::AssessAndCluster(
    const Dataset& published, linalg::Matrix* dependences_out) const {
  if (published.num_rows() == 0) {
    return Status::InvalidArgument("cannot assess dependences on empty data");
  }
  DependenceShardingOptions sharding;
  sharding.num_threads = Threads();
  sharding.record_chunk_size = policy_.shard_size;
  linalg::Matrix dependences =
      DependenceMatrixSharded(published, measure_, sharding);
  if (dependences_out != nullptr) *dependences_out = dependences;
  return ClusterAttributes(published.Cardinalities(), dependences,
                           clustering_);
}

StatusOr<std::vector<double>> ControllerPlan::EstimateDistribution(
    const RrMatrix& matrix, const std::vector<uint32_t>& codes,
    size_t num_categories) const {
  return EstimateFromCounts(
      matrix, stats::ShardedHistogram(
                  codes.size(), num_categories, policy_.shard_size, Threads(),
                  [&codes](size_t i) { return codes[i]; }));
}

StatusOr<std::vector<double>> ControllerPlan::EstimateFromCounts(
    const RrMatrix& matrix, const stats::FrequencyTable& counts) const {
  // The fast estimation backend is bit-identical at any thread count, so
  // the policy's workers are a pure speed knob here too.
  return EstimateProjectedDistribution(matrix, counts.Proportions(),
                                       EstimationOptions{Threads()});
}

std::vector<uint32_t> ControllerPlan::DecodeColumn(
    const Domain& domain, const std::vector<uint32_t>& codes,
    size_t position) const {
  return DecodeColumnSharded(domain, codes, position, policy_.shard_size,
                             Threads());
}

}  // namespace mdrr::release
