#include "mdrr/release/spec.h"

#include <cmath>
#include <set>
#include <string>

namespace mdrr::release {

bool operator==(const DatasetSpec& a, const DatasetSpec& b) {
  return a.source == b.source && a.csv_path == b.csv_path &&
         a.csv_has_header == b.csv_has_header &&
         a.synthetic_records == b.synthetic_records &&
         a.synthetic_seed == b.synthetic_seed;
}

bool operator==(const BudgetSpec& a, const BudgetSpec& b) {
  return a.keep_probability == b.keep_probability &&
         a.dependence_keep_probability == b.dependence_keep_probability &&
         a.max_total_epsilon == b.max_total_epsilon;
}

bool operator==(const MechanismSpec& a, const MechanismSpec& b) {
  return a.kind == b.kind && a.joint_attributes == b.joint_attributes &&
         a.clustering.max_combinations == b.clustering.max_combinations &&
         a.clustering.min_dependence == b.clustering.min_dependence &&
         a.dependence_source == b.dependence_source &&
         a.use_paper_epsilon_formula == b.use_paper_epsilon_formula &&
         a.geometric_epsilon == b.geometric_epsilon;
}

bool operator==(const FrequencyOracleSpec& a, const FrequencyOracleSpec& b) {
  return a.backend == b.backend && a.epsilon == b.epsilon;
}

bool operator==(const AdjustmentSpec& a, const AdjustmentSpec& b) {
  return a.enabled == b.enabled && a.max_iterations == b.max_iterations &&
         a.tolerance == b.tolerance && a.groups == b.groups;
}

bool operator==(const SyntheticSpec& a, const SyntheticSpec& b) {
  return a.enabled == b.enabled && a.records == b.records;
}

bool operator==(const EvaluationSpec& a, const EvaluationSpec& b) {
  return a.utility_report == b.utility_report && a.sigmas == b.sigmas &&
         a.queries_per_sigma == b.queries_per_sigma && a.seed == b.seed;
}

bool operator==(const StreamingSpec& a, const StreamingSpec& b) {
  return a.enabled == b.enabled && a.window_kind == b.window_kind &&
         a.window_size == b.window_size &&
         a.window_stride == b.window_stride &&
         a.window_epsilon == b.window_epsilon &&
         a.max_windows == b.max_windows;
}

bool operator==(const ExecutionPolicy& a, const ExecutionPolicy& b) {
  return a.kind == b.kind && a.seed == b.seed &&
         a.num_threads == b.num_threads && a.shard_size == b.shard_size &&
         a.rng == b.rng && a.num_workers == b.num_workers &&
         a.listen_port == b.listen_port &&
         a.worker_deadline_ms == b.worker_deadline_ms;
}

bool operator==(const OutputSpec& a, const OutputSpec& b) {
  return a.randomized_csv == b.randomized_csv &&
         a.synthetic_csv == b.synthetic_csv &&
         a.artifacts_path == b.artifacts_path;
}

bool operator==(const ReleaseSpec& a, const ReleaseSpec& b) {
  return a.dataset == b.dataset && a.budget == b.budget &&
         a.mechanism == b.mechanism &&
         a.frequency_oracle == b.frequency_oracle &&
         a.adjustment == b.adjustment &&
         a.synthetic == b.synthetic && a.evaluation == b.evaluation &&
         a.streaming == b.streaming && a.execution == b.execution &&
         a.output == b.output;
}

const char* ToString(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kIndependent:
      return "independent";
    case MechanismKind::kJoint:
      return "joint";
    case MechanismKind::kClusters:
      return "clusters";
    case MechanismKind::kPram:
      return "pram";
    case MechanismKind::kGeometricOrdinal:
      return "geometric-ordinal";
  }
  return "unknown";
}

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kSequential:
      return "sequential";
    case PolicyKind::kSharded:
      return "sharded";
    case PolicyKind::kDistributed:
      return "distributed";
  }
  return "unknown";
}

const char* ToString(DatasetSpec::Source source) {
  switch (source) {
    case DatasetSpec::Source::kProvided:
      return "provided";
    case DatasetSpec::Source::kCsvFile:
      return "csv";
    case DatasetSpec::Source::kSyntheticAdult:
      return "synthetic-adult";
  }
  return "unknown";
}

const char* ToString(DependenceSource source) {
  switch (source) {
    case DependenceSource::kOracle:
      return "oracle";
    case DependenceSource::kRandomizedResponse:
      return "rr";
    case DependenceSource::kSecureSum:
      return "securesum";
    case DependenceSource::kPairwiseRr:
      return "pairwise";
    case DependenceSource::kProvided:
      return "provided";
  }
  return "unknown";
}

StatusOr<MechanismKind> MechanismKindFromString(std::string_view token) {
  if (token == "independent") return MechanismKind::kIndependent;
  if (token == "joint") return MechanismKind::kJoint;
  if (token == "clusters") return MechanismKind::kClusters;
  if (token == "pram") return MechanismKind::kPram;
  if (token == "geometric-ordinal") return MechanismKind::kGeometricOrdinal;
  return Status::InvalidArgument("unknown mechanism kind '" +
                                 std::string(token) + "'");
}

StatusOr<PolicyKind> PolicyKindFromString(std::string_view token) {
  if (token == "sequential") return PolicyKind::kSequential;
  if (token == "sharded") return PolicyKind::kSharded;
  if (token == "distributed") return PolicyKind::kDistributed;
  return Status::InvalidArgument("unknown execution policy '" +
                                 std::string(token) + "'");
}

const char* ToString(RngKind kind) {
  switch (kind) {
    case RngKind::kMt19937:
      return "mt19937";
    case RngKind::kPhilox:
      return "philox";
  }
  return "unknown";
}

StatusOr<RngKind> RngKindFromString(std::string_view token) {
  if (token == "mt19937") return RngKind::kMt19937;
  if (token == "philox") return RngKind::kPhilox;
  return Status::InvalidArgument("unknown rng policy '" + std::string(token) +
                                 "'");
}

const char* ToString(WindowKind kind) {
  switch (kind) {
    case WindowKind::kTumbling:
      return "tumbling";
    case WindowKind::kSliding:
      return "sliding";
  }
  return "unknown";
}

StatusOr<WindowKind> WindowKindFromString(std::string_view token) {
  if (token == "tumbling") return WindowKind::kTumbling;
  if (token == "sliding") return WindowKind::kSliding;
  return Status::InvalidArgument("unknown window kind '" +
                                 std::string(token) + "'");
}

StatusOr<DatasetSpec::Source> DatasetSourceFromString(std::string_view token) {
  if (token == "provided") return DatasetSpec::Source::kProvided;
  if (token == "csv") return DatasetSpec::Source::kCsvFile;
  if (token == "synthetic-adult") return DatasetSpec::Source::kSyntheticAdult;
  return Status::InvalidArgument("unknown dataset source '" +
                                 std::string(token) + "'");
}

StatusOr<DependenceSource> DependenceSourceFromString(std::string_view token) {
  if (token == "oracle") return DependenceSource::kOracle;
  if (token == "rr") return DependenceSource::kRandomizedResponse;
  if (token == "securesum") return DependenceSource::kSecureSum;
  if (token == "pairwise") return DependenceSource::kPairwiseRr;
  if (token == "provided") return DependenceSource::kProvided;
  return Status::InvalidArgument("unknown dependence source '" +
                                 std::string(token) + "'");
}

namespace {

bool IsProbability(double p) { return std::isfinite(p) && p > 0.0 && p <= 1.0; }

Status ValidateGroups(const AdjustmentSpec& adjustment, MechanismKind kind,
                      size_t num_attributes) {
  for (const std::vector<size_t>& group : adjustment.groups) {
    if (group.empty()) {
      return Status::InvalidArgument("adjustment group is empty");
    }
    std::set<size_t> seen;
    for (size_t j : group) {
      if (num_attributes > 0 && j >= num_attributes) {
        return Status::InvalidArgument(
            "adjustment group references absent attribute " +
            std::to_string(j) + " (schema has " +
            std::to_string(num_attributes) + ")");
      }
      if (!seen.insert(j).second) {
        return Status::InvalidArgument(
            "adjustment group lists attribute " + std::to_string(j) +
            " twice");
      }
    }
    if ((kind == MechanismKind::kIndependent ||
         kind == MechanismKind::kGeometricOrdinal ||
         kind == MechanismKind::kPram) &&
        group.size() != 1) {
      return Status::InvalidArgument(
          "per-attribute mechanisms only constrain single-attribute "
          "marginals; got a group of " +
          std::to_string(group.size()) + " attributes");
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateReleaseSpec(const ReleaseSpec& spec, size_t num_attributes) {
  // Dataset binding.
  if (spec.dataset.source == DatasetSpec::Source::kCsvFile &&
      spec.dataset.csv_path.empty()) {
    return Status::InvalidArgument(
        "dataset.source is csv but csv_path is empty");
  }
  if (spec.dataset.source == DatasetSpec::Source::kSyntheticAdult &&
      spec.dataset.synthetic_records == 0) {
    return Status::InvalidArgument("dataset.synthetic_records must be > 0");
  }

  // Budget.
  if (!IsProbability(spec.budget.keep_probability)) {
    return Status::InvalidArgument("budget.keep_probability must be in (0, 1]");
  }
  if (!IsProbability(spec.budget.dependence_keep_probability)) {
    return Status::InvalidArgument(
        "budget.dependence_keep_probability must be in (0, 1]");
  }
  if (std::isnan(spec.budget.max_total_epsilon) ||
      spec.budget.max_total_epsilon <= 0.0) {
    return Status::InvalidArgument(
        "budget.max_total_epsilon must be > 0 (omit it to disable the cap)");
  }

  // Mechanism.
  switch (spec.mechanism.kind) {
    case MechanismKind::kJoint: {
      if (spec.mechanism.joint_attributes.empty()) {
        return Status::InvalidArgument(
            "the joint mechanism needs a non-empty attribute set");
      }
      std::set<size_t> seen;
      for (size_t j : spec.mechanism.joint_attributes) {
        if (num_attributes > 0 && j >= num_attributes) {
          return Status::InvalidArgument(
              "joint attribute " + std::to_string(j) +
              " is absent (schema has " + std::to_string(num_attributes) +
              ")");
        }
        if (!seen.insert(j).second) {
          return Status::InvalidArgument("joint attribute " +
                                         std::to_string(j) + " listed twice");
        }
      }
      break;
    }
    case MechanismKind::kClusters:
      if (!(spec.mechanism.clustering.max_combinations >= 1.0)) {
        return Status::InvalidArgument(
            "mechanism.clustering.max_combinations (Tv) must be >= 1");
      }
      if (std::isnan(spec.mechanism.clustering.min_dependence) ||
          spec.mechanism.clustering.min_dependence < 0.0 ||
          spec.mechanism.clustering.min_dependence > 1.0) {
        return Status::InvalidArgument(
            "mechanism.clustering.min_dependence (Td) must be in [0, 1]");
      }
      if (spec.mechanism.dependence_source == DependenceSource::kProvided) {
        return Status::InvalidArgument(
            "dependence source 'provided' cannot appear in a spec (a spec "
            "carries no matrix); use RunRrClustersWith directly");
      }
      break;
    case MechanismKind::kGeometricOrdinal:
      if (std::isnan(spec.mechanism.geometric_epsilon) ||
          !std::isfinite(spec.mechanism.geometric_epsilon) ||
          spec.mechanism.geometric_epsilon <= 0.0) {
        return Status::InvalidArgument(
            "mechanism.geometric_epsilon must be > 0 and finite");
      }
      break;
    case MechanismKind::kIndependent:
    case MechanismKind::kPram:
      break;
  }

  // Frequency oracle.
  if (std::isnan(spec.frequency_oracle.epsilon) ||
      !std::isfinite(spec.frequency_oracle.epsilon) ||
      spec.frequency_oracle.epsilon < 0.0) {
    return Status::InvalidArgument(
        "frequency_oracle.epsilon must be >= 0 and finite (0 derives the "
        "per-attribute epsilons from the design)");
  }
  if (!spec.frequency_oracle.is_default()) {
    if (spec.mechanism.kind != MechanismKind::kIndependent &&
        spec.mechanism.kind != MechanismKind::kGeometricOrdinal) {
      return Status::InvalidArgument(
          "frequency_oracle backends apply per attribute; use the "
          "independent or geometric-ordinal mechanism");
    }
    if (spec.streaming.enabled) {
      return Status::InvalidArgument(
          "streaming ingest carries per-report RR codes; the oracle "
          "backend must stay the default RR path");
    }
    if (spec.execution.kind == PolicyKind::kDistributed) {
      return Status::InvalidArgument(
          "the distributed wire protocol farms out RR shard kernels; "
          "oracle backends run under the sequential or sharded policy");
    }
    if (spec.adjustment.enabled) {
      return Status::InvalidArgument(
          "frequency-oracle releases publish closed-form marginals only; "
          "disable adjustment");
    }
    if (spec.synthetic.enabled) {
      return Status::InvalidArgument(
          "frequency-oracle releases publish closed-form marginals only; "
          "disable synthetic output");
    }
    if (spec.frequency_oracle.backend != OracleBackend::kDirect &&
        !spec.output.randomized_csv.empty()) {
      return Status::InvalidArgument(
          "frequency-only oracle backends (sue|oue|olh) release no "
          "microdata; drop output.randomized_csv");
    }
  }

  // Adjustment.
  if (spec.adjustment.enabled) {
    if (spec.mechanism.kind == MechanismKind::kJoint) {
      return Status::InvalidArgument(
          "adjustment needs at least two marginal constraints; the joint "
          "mechanism releases one joint distribution");
    }
    if (spec.adjustment.max_iterations <= 0) {
      return Status::InvalidArgument("adjustment.max_iterations must be > 0");
    }
    if (!(spec.adjustment.tolerance > 0.0)) {
      return Status::InvalidArgument("adjustment.tolerance must be > 0");
    }
    MDRR_RETURN_IF_ERROR(ValidateGroups(spec.adjustment, spec.mechanism.kind,
                                        num_attributes));
  } else if (!spec.adjustment.groups.empty()) {
    return Status::InvalidArgument(
        "adjustment.groups given but adjustment is disabled");
  }

  // Synthetic output.
  if (spec.synthetic.enabled) {
    if (spec.mechanism.kind == MechanismKind::kJoint ||
        spec.mechanism.kind == MechanismKind::kPram) {
      return Status::InvalidArgument(
          "synthetic output is supported for the independent and clusters "
          "mechanisms only");
    }
    if (spec.synthetic.records < 0) {
      return Status::InvalidArgument("synthetic.records must be >= 0");
    }
  }

  // Evaluation.
  if (spec.evaluation.utility_report) {
    if (!spec.synthetic.enabled) {
      return Status::InvalidArgument(
          "evaluation.utility_report compares the synthetic release against "
          "the input; enable synthetic output first");
    }
    if (spec.evaluation.queries_per_sigma <= 0) {
      return Status::InvalidArgument(
          "evaluation.queries_per_sigma must be > 0");
    }
    for (double sigma : spec.evaluation.sigmas) {
      if (!(sigma > 0.0) || sigma > 1.0) {
        return Status::InvalidArgument(
            "evaluation.sigmas entries must be in (0, 1]");
      }
    }
  }

  // Streaming.
  if (spec.streaming.enabled) {
    if (spec.streaming.window_size == 0) {
      return Status::InvalidArgument("streaming.window_size must be > 0");
    }
    if (spec.mechanism.kind != MechanismKind::kIndependent &&
        spec.mechanism.kind != MechanismKind::kGeometricOrdinal) {
      return Status::InvalidArgument(
          "streaming releases re-estimate per-attribute marginals from "
          "merged counts; use the independent or geometric-ordinal "
          "mechanism");
    }
    switch (spec.streaming.window_kind) {
      case WindowKind::kTumbling:
        if (spec.streaming.window_stride != 0 &&
            spec.streaming.window_stride != spec.streaming.window_size) {
          return Status::InvalidArgument(
              "tumbling windows have stride == size (omit "
              "streaming.window_stride)");
        }
        break;
      case WindowKind::kSliding:
        if (spec.streaming.window_stride == 0 ||
            spec.streaming.window_stride >= spec.streaming.window_size ||
            spec.streaming.window_size % spec.streaming.window_stride != 0) {
          return Status::InvalidArgument(
              "sliding windows need streaming.window_stride in (0, "
              "window_size) dividing window_size");
        }
        break;
    }
    if (std::isnan(spec.streaming.window_epsilon) ||
        !std::isfinite(spec.streaming.window_epsilon) ||
        spec.streaming.window_epsilon < 0.0) {
      return Status::InvalidArgument(
          "streaming.window_epsilon must be >= 0 and finite (0 derives it "
          "from the design)");
    }
    if (spec.adjustment.enabled) {
      return Status::InvalidArgument(
          "streaming releases marginal estimates only; disable adjustment");
    }
    if (spec.synthetic.enabled) {
      return Status::InvalidArgument(
          "streaming releases marginal estimates only; disable synthetic "
          "output");
    }
  } else {
    if (spec.streaming.window_size != 0 || spec.streaming.window_stride != 0 ||
        spec.streaming.window_epsilon != 0.0 ||
        spec.streaming.max_windows != 0) {
      return Status::InvalidArgument(
          "streaming.* given but streaming is disabled");
    }
  }

  // Execution.
  if (spec.execution.shard_size == 0) {
    return Status::InvalidArgument("execution.shard_size must be > 0");
  }
  if (spec.execution.rng == RngKind::kPhilox &&
      spec.execution.kind == PolicyKind::kSequential &&
      !spec.streaming.enabled) {
    return Status::InvalidArgument(
        "execution.rng philox requires the sharded policy (the sequential "
        "reference path is the mt19937 transcript); streaming plans are "
        "exempt -- the collector ignores execution.kind");
  }
  if (spec.execution.kind == PolicyKind::kDistributed) {
    if (spec.execution.num_workers == 0) {
      return Status::InvalidArgument(
          "the distributed policy needs execution.num_workers >= 1");
    }
    if (spec.streaming.enabled) {
      return Status::InvalidArgument(
          "streaming ingest runs over the collectd socket endpoint, not "
          "the distributed release policy");
    }
  } else {
    if (spec.execution.num_workers != 0 || spec.execution.listen_port != 0 ||
        spec.execution.worker_deadline_ms != 0) {
      return Status::InvalidArgument(
          "execution.num_workers/listen_port/worker_deadline_ms given but "
          "the policy is not distributed");
    }
  }

  // Outputs.
  if (!spec.output.synthetic_csv.empty() && !spec.synthetic.enabled) {
    return Status::InvalidArgument(
        "output.synthetic_csv given but synthetic output is disabled");
  }
  return Status::OK();
}

}  // namespace mdrr::release
