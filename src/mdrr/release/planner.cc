#include "mdrr/release/planner.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "mdrr/core/batch_engine.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/csv.h"
#include "mdrr/release/serialization.h"

namespace mdrr::release {

namespace {

class StageClock {
 public:
  explicit StageClock(std::vector<StageTiming>& timings)
      : timings_(timings) {}

  void Start() { begin_ = std::chrono::steady_clock::now(); }

  void Stop(const char* stage) {
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin_;
    timings_.push_back(StageTiming{stage, elapsed.count()});
  }

 private:
  std::vector<StageTiming>& timings_;
  std::chrono::steady_clock::time_point begin_;
};

// Loads the owned dataset sources (kProvided is bound by reference in
// ReleasePlanner::Plan and never reaches here).
StatusOr<Dataset> ResolveDataset(const DatasetSpec& spec) {
  switch (spec.source) {
    case DatasetSpec::Source::kProvided:
      return Status::Internal("provided datasets are bound by reference");
    case DatasetSpec::Source::kCsvFile:
      return ReadCsvDataset(spec.csv_path, spec.csv_has_header);
    case DatasetSpec::Source::kSyntheticAdult:
      return SynthesizeAdult(spec.synthetic_records, spec.synthetic_seed);
  }
  return Status::Internal("unknown dataset source");
}

}  // namespace

ReleasePlan::ReleasePlan(ReleaseSpec spec, Dataset owned,
                         const Dataset* provided,
                         std::unique_ptr<Mechanism> mechanism)
    : spec_(std::move(spec)),
      owned_(std::move(owned)),
      provided_(provided),
      mechanism_(std::move(mechanism)) {}

StatusOr<ReleaseArtifacts> ReleasePlan::Run() const {
  const ExecutionPolicy& policy = spec_.execution;
  if (policy.kind == PolicyKind::kDistributed) {
    // Self-hosted coordinator: bind, wait for the configured worker
    // fleet, then run the shared distributed path.
    net::CoordinatorOptions coordinator_options;
    coordinator_options.seed = policy.seed;
    coordinator_options.rng = policy.rng;
    coordinator_options.shard_size = policy.shard_size;
    coordinator_options.deadline_ms = policy.worker_deadline_ms;
    net::Coordinator coordinator(coordinator_options);
    MDRR_RETURN_IF_ERROR(coordinator.Listen(policy.listen_port));
    MDRR_RETURN_IF_ERROR(coordinator.AcceptWorkers(policy.num_workers));
    return RunDistributed(coordinator);
  }
  // The sequential stream and the engine: exactly one exists, chosen by
  // the policy. The sequential Rng is threaded through the stages in
  // order (mechanism first, synthesis second), which is the same draw
  // order a caller composing the stage functions by hand would use.
  if (policy.kind == PolicyKind::kSequential) {
    Rng rng(policy.seed);
    return ExecuteStages(&rng, nullptr, nullptr);
  }
  BatchPerturbationOptions engine_options;
  engine_options.seed = policy.seed;
  engine_options.num_threads = policy.num_threads;
  engine_options.shard_size = policy.shard_size;
  engine_options.rng = policy.rng;
  BatchPerturbationEngine engine(engine_options);
  return ExecuteStages(nullptr, &engine, nullptr);
}

StatusOr<ReleaseArtifacts> ReleasePlan::RunDistributed(
    net::Coordinator& coordinator) const {
  const ExecutionPolicy& policy = spec_.execution;
  if (policy.kind != PolicyKind::kDistributed) {
    return Status::InvalidArgument(
        "RunDistributed needs execution.policy distributed");
  }
  if (coordinator.num_workers() == 0) {
    return Status::FailedPrecondition(
        "the coordinator has no connected workers");
  }

  // The engine's perturber hook has no Status channel, so network
  // failures latch here: the hook returns a structurally valid zero
  // column (never consumed -- the check below fires first) and the
  // pipeline aborts right after the mechanism stage, before adjustment,
  // synthesis, artifact assembly, or any output write.
  struct ErrorLatch {
    std::mutex mu;
    Status first = Status::OK();
    void Record(const Status& status) {
      std::lock_guard<std::mutex> lock(mu);
      if (first.ok()) first = status;
    }
    Status Get() {
      std::lock_guard<std::mutex> lock(mu);
      return first;
    }
  };
  auto latch = std::make_shared<ErrorLatch>();

  BatchPerturbationOptions engine_options;
  engine_options.seed = policy.seed;
  engine_options.num_threads = policy.num_threads;
  engine_options.shard_size = policy.shard_size;
  engine_options.rng = policy.rng;
  engine_options.shard_perturber =
      [&coordinator, latch](const RrMatrix& matrix,
                            const std::vector<uint32_t>& codes,
                            uint64_t stream_base,
                            uint64_t counter_stream) -> PerturbedColumn {
    StatusOr<PerturbedColumn> column =
        coordinator.PerturbColumn(matrix, codes, stream_base, counter_stream);
    if (column.ok()) return std::move(column).value();
    latch->Record(column.status());
    PerturbedColumn zero;
    zero.codes.assign(codes.size(), 0);
    zero.lambda.assign(matrix.size(), 0.0);
    return zero;
  };
  BatchPerturbationEngine engine(engine_options);

  std::function<Status()> mechanism_check = [latch]() {
    return latch->Get();
  };
  StatusOr<ReleaseArtifacts> artifacts =
      ExecuteStages(nullptr, &engine, &mechanism_check);
  if (!artifacts.ok()) {
    coordinator.Abort(artifacts.status().ToString());
    return artifacts.status();
  }
  MDRR_RETURN_IF_ERROR(coordinator.Commit());
  return artifacts;
}

StatusOr<ReleaseArtifacts> ReleasePlan::ExecuteStages(
    Rng* rng, const BatchPerturbationEngine* engine,
    const std::function<Status()>* mechanism_check) const {
  const Dataset& data = dataset();

  ReleaseArtifacts artifacts;
  StageClock clock(artifacts.timings);

  // --- Perturbation + Eq. (2) estimation. ---
  clock.Start();
  MDRR_ASSIGN_OR_RETURN(MechanismOutput output,
                        rng != nullptr
                            ? mechanism_->RunSequential(data, *rng)
                            : mechanism_->RunSharded(data, *engine));
  clock.Stop("mechanism");
  if (mechanism_check != nullptr) {
    MDRR_RETURN_IF_ERROR((*mechanism_check)());
  }

  const double total_epsilon =
      output.release_epsilon + output.dependence_epsilon;
  if (total_epsilon > spec_.budget.max_total_epsilon) {
    return Status::FailedPrecondition(
        "release would spend epsilon = " + std::to_string(total_epsilon) +
        ", over budget.max_total_epsilon = " +
        std::to_string(spec_.budget.max_total_epsilon));
  }

  // --- Algorithm 2 adjustment. ---
  if (spec_.adjustment.enabled) {
    clock.Start();
    MDRR_ASSIGN_OR_RETURN(
        std::vector<AdjustmentGroup> groups,
        mechanism_->AdjustmentGroupsFor(output, spec_.adjustment.groups));
    AdjustmentOptions adjustment_options;
    adjustment_options.max_iterations = spec_.adjustment.max_iterations;
    adjustment_options.tolerance = spec_.adjustment.tolerance;
    MDRR_ASSIGN_OR_RETURN(
        AdjustmentResult adjusted,
        rng != nullptr
            ? RunRrAdjustment(groups, data.num_rows(), adjustment_options)
            : engine->RunAdjustment(groups, data.num_rows(),
                                    adjustment_options));
    artifacts.adjustment = std::move(adjusted);
    clock.Stop("adjustment");
  }

  // --- Synthetic release. ---
  if (spec_.synthetic.enabled) {
    clock.Start();
    const int64_t n = spec_.synthetic.records > 0
                          ? spec_.synthetic.records
                          : static_cast<int64_t>(data.num_rows());
    MDRR_ASSIGN_OR_RETURN(
        Dataset synthetic,
        rng != nullptr
            ? mechanism_->SynthesizeSequential(output, n, *rng)
            : mechanism_->SynthesizeSharded(output, n, *engine));
    artifacts.synthetic = std::move(synthetic);
    clock.Stop("synthesis");
  }

  // --- Utility evaluation. ---
  if (spec_.evaluation.utility_report) {
    clock.Start();
    eval::UtilityReportOptions report_options;
    report_options.sigmas = spec_.evaluation.sigmas;
    report_options.queries_per_sigma = spec_.evaluation.queries_per_sigma;
    report_options.seed = spec_.evaluation.seed;
    MDRR_ASSIGN_OR_RETURN(
        eval::UtilityReport report,
        eval::BuildUtilityReport(data, *artifacts.synthetic,
                                 report_options));
    artifacts.utility = std::move(report);
    clock.Stop("evaluation");
  }

  // Every stage that reads the payload's own randomized dataset has run,
  // so the released dataset moves (not copies) into the artifacts; the
  // payload keeps everything else verbatim (see MechanismOutput).
  artifacts.num_records = static_cast<double>(data.num_rows());
  if (output.independent.has_value()) {
    artifacts.randomized = std::move(output.independent->randomized);
  } else if (output.clusters.has_value()) {
    artifacts.randomized = std::move(output.clusters->randomized);
  } else if (output.pram.has_value()) {
    artifacts.randomized = std::move(output.pram->randomized);
  } else {
    artifacts.randomized = std::move(output.randomized);  // Joint decode.
  }
  artifacts.marginal_estimates = std::move(output.marginal_estimates);
  artifacts.dependences = std::move(output.dependences);
  artifacts.clustering = std::move(output.clustering);
  artifacts.release_epsilon = output.release_epsilon;
  artifacts.dependence_epsilon = output.dependence_epsilon;
  artifacts.independent = std::move(output.independent);
  artifacts.joint = std::move(output.joint);
  artifacts.clusters = std::move(output.clusters);
  artifacts.pram = std::move(output.pram);

  // --- Configured outputs. ---
  if (!spec_.output.randomized_csv.empty() ||
      !spec_.output.synthetic_csv.empty() ||
      !spec_.output.artifacts_path.empty()) {
    clock.Start();
    if (!spec_.output.randomized_csv.empty()) {
      MDRR_RETURN_IF_ERROR(
          WriteCsv(artifacts.randomized, spec_.output.randomized_csv));
    }
    if (!spec_.output.synthetic_csv.empty()) {
      MDRR_RETURN_IF_ERROR(
          WriteCsv(*artifacts.synthetic, spec_.output.synthetic_csv));
    }
    if (!spec_.output.artifacts_path.empty()) {
      MDRR_RETURN_IF_ERROR(
          WriteReleaseArtifacts(artifacts, spec_.output.artifacts_path));
    }
    clock.Stop("outputs");
  }
  return artifacts;
}

StatusOr<ReleasePlan> ReleasePlanner::Plan(const ReleaseSpec& spec,
                                           const Dataset* provided) {
  // Structural pass first (no dataset needed), then the index checks
  // against the resolved schema.
  MDRR_RETURN_IF_ERROR(ValidateReleaseSpec(spec, /*num_attributes=*/0));
  if (spec.streaming.enabled) {
    return Status::InvalidArgument(
        "streaming specs run through the streaming collector "
        "(release/streaming.h, protocol::RunStreamingReplay), not a batch "
        "ReleasePlan");
  }
  Dataset owned;
  const Dataset* bound = nullptr;
  if (spec.dataset.source == DatasetSpec::Source::kProvided) {
    if (provided == nullptr) {
      return Status::InvalidArgument(
          "dataset.source is 'provided' but no dataset was passed to "
          "ReleasePlanner::Plan");
    }
    bound = provided;
  } else {
    MDRR_ASSIGN_OR_RETURN(owned, ResolveDataset(spec.dataset));
  }
  const Dataset& data = bound != nullptr ? *bound : owned;
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("the bound dataset has no records");
  }
  MDRR_RETURN_IF_ERROR(ValidateReleaseSpec(spec, data.num_attributes()));
  std::unique_ptr<Mechanism> mechanism = MakeMechanism(spec);
  if (mechanism == nullptr) {
    return Status::Internal("unknown mechanism kind");
  }
  return ReleasePlan(spec, std::move(owned), bound, std::move(mechanism));
}

StatusOr<ControllerPlan> ReleasePlanner::PlanController(
    const ClusteringOptions& clustering, const ExecutionPolicy& policy,
    DependenceMeasure measure) {
  if (!(clustering.max_combinations >= 1.0)) {
    return Status::InvalidArgument(
        "clustering.max_combinations (Tv) must be >= 1");
  }
  if (policy.shard_size == 0) {
    return Status::InvalidArgument("execution.shard_size must be > 0");
  }
  if (policy.kind == PolicyKind::kDistributed) {
    return Status::InvalidArgument(
        "party sessions run on the controller; the distributed policy "
        "applies to batch releases only");
  }
  return ControllerPlan(clustering, measure, policy);
}

}  // namespace mdrr::release
