#include "mdrr/release/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mdrr/common/string_util.h"

namespace mdrr::release {

namespace {

constexpr char kSpecHeader[] = "mdrr-release-spec v1";
constexpr char kArtifactsHeader[] = "mdrr-release-artifacts v1";
constexpr char kSnapshotHeader[] = "mdrr-streaming-snapshot v1";

void AppendDouble(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void AppendLine(std::string& out, const std::string& key, double value) {
  out += key;
  out += ' ';
  AppendDouble(out, value);
  out += '\n';
}

void AppendLine(std::string& out, const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += key;
  out += ' ';
  out += buf;
  out += '\n';
}

// Signed fields (a malformed in-memory spec may hold negatives; they
// must still round-trip so validation can reject them after a re-read).
void AppendSigned(std::string& out, const std::string& key, int64_t value) {
  out += key;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void AppendLine(std::string& out, const std::string& key, bool value) {
  out += key;
  out += value ? " 1\n" : " 0\n";
}

void AppendLine(std::string& out, const std::string& key,
                const std::string& value) {
  out += key;
  out += ' ';
  out += value;
  out += '\n';
}

void AppendIndexList(std::string& out, const std::string& key,
                     const std::vector<size_t>& values) {
  out += key;
  for (size_t v : values) {
    out += ' ';
    out += std::to_string(v);
  }
  out += '\n';
}

void AppendDoubleList(std::string& out, const std::string& key,
                      const std::vector<double>& values) {
  out += key;
  for (double v : values) {
    out += ' ';
    AppendDouble(out, v);
  }
  out += '\n';
}

// One stripped, non-comment input line split into a key and value
// tokens.
struct SpecLine {
  std::string key;
  std::vector<std::string> tokens;  // Whitespace-separated values.
  std::string rest;                 // Raw remainder (for paths).
};

std::vector<SpecLine> TokenizeLines(const std::string& text) {
  std::vector<SpecLine> lines;
  for (std::string_view raw : Split(text, '\n')) {
    std::string_view stripped = StripWhitespace(raw);
    if (stripped.empty() || stripped.front() == '#') continue;
    SpecLine line;
    size_t space = stripped.find_first_of(" \t");
    if (space == std::string_view::npos) {
      line.key = std::string(stripped);
    } else {
      line.key = std::string(stripped.substr(0, space));
      line.rest = std::string(StripWhitespace(stripped.substr(space + 1)));
      std::istringstream stream(line.rest);
      std::string token;
      while (stream >> token) line.tokens.push_back(token);
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

StatusOr<bool> ParseBool(const SpecLine& line) {
  if (line.tokens.size() == 1) {
    if (line.tokens[0] == "1" || line.tokens[0] == "true") return true;
    if (line.tokens[0] == "0" || line.tokens[0] == "false") return false;
  }
  return Status::InvalidArgument("expected 0/1 after '" + line.key + "'");
}

StatusOr<double> ParseOneDouble(const SpecLine& line) {
  if (line.tokens.size() != 1) {
    return Status::InvalidArgument("expected one number after '" + line.key +
                                   "'");
  }
  return ParseDouble(line.tokens[0]);
}

StatusOr<uint64_t> ParseOneUint(const SpecLine& line) {
  if (line.tokens.size() != 1) {
    return Status::InvalidArgument("expected one integer after '" + line.key +
                                   "'");
  }
  MDRR_ASSIGN_OR_RETURN(int64_t value, ParseInt64(line.tokens[0]));
  if (value < 0) {
    return Status::InvalidArgument("'" + line.key + "' must be >= 0");
  }
  return static_cast<uint64_t>(value);
}

StatusOr<int64_t> ParseOneInt(const SpecLine& line) {
  if (line.tokens.size() != 1) {
    return Status::InvalidArgument("expected one integer after '" + line.key +
                                   "'");
  }
  return ParseInt64(line.tokens[0]);
}

StatusOr<std::vector<size_t>> ParseIndexList(const SpecLine& line) {
  std::vector<size_t> values;
  values.reserve(line.tokens.size());
  for (const std::string& token : line.tokens) {
    MDRR_ASSIGN_OR_RETURN(int64_t value, ParseInt64(token));
    if (value < 0) {
      return Status::InvalidArgument("negative index after '" + line.key +
                                     "'");
    }
    values.push_back(static_cast<size_t>(value));
  }
  return values;
}

StatusOr<std::vector<double>> ParseDoubleList(const SpecLine& line) {
  std::vector<double> values;
  values.reserve(line.tokens.size());
  for (const std::string& token : line.tokens) {
    MDRR_ASSIGN_OR_RETURN(double value, ParseDouble(token));
    values.push_back(value);
  }
  return values;
}

StatusOr<std::string> ParseOneToken(const SpecLine& line) {
  if (line.tokens.size() != 1) {
    return Status::InvalidArgument("expected one token after '" + line.key +
                                   "'");
  }
  return line.tokens[0];
}

Status WriteText(const std::string& text, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  file << text;
  if (!file.good()) {
    return Status::IoError("write failure on '" + path + "'");
  }
  return Status::OK();
}

StatusOr<std::string> ReadText(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// ReleaseSpec.
// ---------------------------------------------------------------------------

std::string PrintReleaseSpec(const ReleaseSpec& spec) {
  std::string out;
  out += kSpecHeader;
  out += '\n';

  AppendLine(out, "dataset.source", std::string(ToString(spec.dataset.source)));
  if (!spec.dataset.csv_path.empty()) {
    AppendLine(out, "dataset.csv_path", spec.dataset.csv_path);
  }
  AppendLine(out, "dataset.csv_has_header", spec.dataset.csv_has_header);
  AppendLine(out, "dataset.synthetic_records",
             static_cast<uint64_t>(spec.dataset.synthetic_records));
  AppendLine(out, "dataset.synthetic_seed", spec.dataset.synthetic_seed);

  AppendLine(out, "budget.keep_probability", spec.budget.keep_probability);
  AppendLine(out, "budget.dependence_keep_probability",
             spec.budget.dependence_keep_probability);
  AppendLine(out, "budget.max_total_epsilon", spec.budget.max_total_epsilon);

  AppendLine(out, "mechanism.kind", std::string(ToString(spec.mechanism.kind)));
  AppendIndexList(out, "mechanism.joint_attributes",
                  spec.mechanism.joint_attributes);
  AppendLine(out, "mechanism.clustering.max_combinations",
             spec.mechanism.clustering.max_combinations);
  AppendLine(out, "mechanism.clustering.min_dependence",
             spec.mechanism.clustering.min_dependence);
  AppendLine(out, "mechanism.dependence_source",
             std::string(ToString(spec.mechanism.dependence_source)));
  AppendLine(out, "mechanism.use_paper_epsilon_formula",
             spec.mechanism.use_paper_epsilon_formula);
  AppendLine(out, "mechanism.geometric_epsilon",
             spec.mechanism.geometric_epsilon);

  // Printed only when non-default so pre-oracle spec files keep their
  // exact committed text (validation pins the section to its defaults on
  // every path that cannot serve it, so round-trip equality holds).
  if (!spec.frequency_oracle.is_default()) {
    AppendLine(out, "frequency_oracle.backend",
               std::string(ToString(spec.frequency_oracle.backend)));
    if (spec.frequency_oracle.epsilon != 0.0) {
      AppendLine(out, "frequency_oracle.epsilon",
                 spec.frequency_oracle.epsilon);
    }
  }

  AppendLine(out, "adjustment.enabled", spec.adjustment.enabled);
  AppendSigned(out, "adjustment.max_iterations",
               spec.adjustment.max_iterations);
  AppendLine(out, "adjustment.tolerance", spec.adjustment.tolerance);
  for (const std::vector<size_t>& group : spec.adjustment.groups) {
    AppendIndexList(out, "adjustment.group", group);
  }

  AppendLine(out, "synthetic.enabled", spec.synthetic.enabled);
  AppendSigned(out, "synthetic.records", spec.synthetic.records);

  AppendLine(out, "evaluation.utility_report", spec.evaluation.utility_report);
  AppendDoubleList(out, "evaluation.sigmas", spec.evaluation.sigmas);
  AppendSigned(out, "evaluation.queries_per_sigma",
               spec.evaluation.queries_per_sigma);
  AppendLine(out, "evaluation.seed", spec.evaluation.seed);

  AppendLine(out, "streaming.enabled", spec.streaming.enabled);
  AppendLine(out, "streaming.window_kind",
             std::string(ToString(spec.streaming.window_kind)));
  AppendLine(out, "streaming.window_size", spec.streaming.window_size);
  AppendLine(out, "streaming.window_stride", spec.streaming.window_stride);
  AppendLine(out, "streaming.window_epsilon", spec.streaming.window_epsilon);
  AppendLine(out, "streaming.max_windows", spec.streaming.max_windows);

  AppendLine(out, "execution.policy",
             std::string(ToString(spec.execution.kind)));
  AppendLine(out, "execution.seed", spec.execution.seed);
  AppendLine(out, "execution.num_threads",
             static_cast<uint64_t>(spec.execution.num_threads));
  AppendLine(out, "execution.shard_size",
             static_cast<uint64_t>(spec.execution.shard_size));
  AppendLine(out, "execution.rng", std::string(ToString(spec.execution.rng)));
  // Distributed-only fields, printed only under that policy so pre-
  // distributed spec files keep their exact text (validation forces the
  // fields to their defaults under every other policy, so round-trip
  // equality still holds).
  if (spec.execution.kind == PolicyKind::kDistributed) {
    AppendLine(out, "execution.num_workers",
               static_cast<uint64_t>(spec.execution.num_workers));
    AppendLine(out, "execution.listen_port",
               static_cast<uint64_t>(spec.execution.listen_port));
    AppendSigned(out, "execution.worker_deadline_ms",
                 spec.execution.worker_deadline_ms);
  }

  if (!spec.output.randomized_csv.empty()) {
    AppendLine(out, "output.randomized_csv", spec.output.randomized_csv);
  }
  if (!spec.output.synthetic_csv.empty()) {
    AppendLine(out, "output.synthetic_csv", spec.output.synthetic_csv);
  }
  if (!spec.output.artifacts_path.empty()) {
    AppendLine(out, "output.artifacts", spec.output.artifacts_path);
  }
  return out;
}

StatusOr<ReleaseSpec> ParseReleaseSpec(const std::string& text) {
  std::vector<SpecLine> lines = TokenizeLines(text);
  if (lines.empty() || lines.front().key + (lines.front().rest.empty()
                                                ? ""
                                                : " " + lines.front().rest) !=
                           kSpecHeader) {
    return Status::InvalidArgument(std::string("expected header '") +
                                   kSpecHeader + "'");
  }

  ReleaseSpec spec;
  for (size_t i = 1; i < lines.size(); ++i) {
    const SpecLine& line = lines[i];
    const std::string& key = line.key;
    if (key == "dataset.source") {
      MDRR_ASSIGN_OR_RETURN(std::string token, ParseOneToken(line));
      MDRR_ASSIGN_OR_RETURN(spec.dataset.source,
                            DatasetSourceFromString(token));
    } else if (key == "dataset.csv_path") {
      spec.dataset.csv_path = line.rest;
    } else if (key == "dataset.csv_has_header") {
      MDRR_ASSIGN_OR_RETURN(spec.dataset.csv_has_header, ParseBool(line));
    } else if (key == "dataset.synthetic_records") {
      MDRR_ASSIGN_OR_RETURN(uint64_t value, ParseOneUint(line));
      spec.dataset.synthetic_records = static_cast<size_t>(value);
    } else if (key == "dataset.synthetic_seed") {
      MDRR_ASSIGN_OR_RETURN(spec.dataset.synthetic_seed, ParseOneUint(line));
    } else if (key == "budget.keep_probability") {
      MDRR_ASSIGN_OR_RETURN(spec.budget.keep_probability,
                            ParseOneDouble(line));
    } else if (key == "budget.dependence_keep_probability") {
      MDRR_ASSIGN_OR_RETURN(spec.budget.dependence_keep_probability,
                            ParseOneDouble(line));
    } else if (key == "budget.max_total_epsilon") {
      MDRR_ASSIGN_OR_RETURN(spec.budget.max_total_epsilon,
                            ParseOneDouble(line));
    } else if (key == "mechanism.kind") {
      MDRR_ASSIGN_OR_RETURN(std::string token, ParseOneToken(line));
      MDRR_ASSIGN_OR_RETURN(spec.mechanism.kind,
                            MechanismKindFromString(token));
    } else if (key == "mechanism.joint_attributes") {
      MDRR_ASSIGN_OR_RETURN(spec.mechanism.joint_attributes,
                            ParseIndexList(line));
    } else if (key == "mechanism.clustering.max_combinations") {
      MDRR_ASSIGN_OR_RETURN(spec.mechanism.clustering.max_combinations,
                            ParseOneDouble(line));
    } else if (key == "mechanism.clustering.min_dependence") {
      MDRR_ASSIGN_OR_RETURN(spec.mechanism.clustering.min_dependence,
                            ParseOneDouble(line));
    } else if (key == "mechanism.dependence_source") {
      MDRR_ASSIGN_OR_RETURN(std::string token, ParseOneToken(line));
      MDRR_ASSIGN_OR_RETURN(spec.mechanism.dependence_source,
                            DependenceSourceFromString(token));
    } else if (key == "mechanism.use_paper_epsilon_formula") {
      MDRR_ASSIGN_OR_RETURN(spec.mechanism.use_paper_epsilon_formula,
                            ParseBool(line));
    } else if (key == "mechanism.geometric_epsilon") {
      MDRR_ASSIGN_OR_RETURN(spec.mechanism.geometric_epsilon,
                            ParseOneDouble(line));
    } else if (key == "frequency_oracle.backend") {
      MDRR_ASSIGN_OR_RETURN(std::string token, ParseOneToken(line));
      MDRR_ASSIGN_OR_RETURN(spec.frequency_oracle.backend,
                            OracleBackendFromString(token));
    } else if (key == "frequency_oracle.epsilon") {
      MDRR_ASSIGN_OR_RETURN(spec.frequency_oracle.epsilon,
                            ParseOneDouble(line));
    } else if (key == "adjustment.enabled") {
      MDRR_ASSIGN_OR_RETURN(spec.adjustment.enabled, ParseBool(line));
    } else if (key == "adjustment.max_iterations") {
      MDRR_ASSIGN_OR_RETURN(int64_t value, ParseOneInt(line));
      spec.adjustment.max_iterations = static_cast<int>(value);
    } else if (key == "adjustment.tolerance") {
      MDRR_ASSIGN_OR_RETURN(spec.adjustment.tolerance, ParseOneDouble(line));
    } else if (key == "adjustment.group") {
      MDRR_ASSIGN_OR_RETURN(std::vector<size_t> group, ParseIndexList(line));
      spec.adjustment.groups.push_back(std::move(group));
    } else if (key == "synthetic.enabled") {
      MDRR_ASSIGN_OR_RETURN(spec.synthetic.enabled, ParseBool(line));
    } else if (key == "synthetic.records") {
      MDRR_ASSIGN_OR_RETURN(spec.synthetic.records, ParseOneInt(line));
    } else if (key == "evaluation.utility_report") {
      MDRR_ASSIGN_OR_RETURN(spec.evaluation.utility_report, ParseBool(line));
    } else if (key == "evaluation.sigmas") {
      MDRR_ASSIGN_OR_RETURN(spec.evaluation.sigmas, ParseDoubleList(line));
    } else if (key == "evaluation.queries_per_sigma") {
      MDRR_ASSIGN_OR_RETURN(int64_t value, ParseOneInt(line));
      spec.evaluation.queries_per_sigma = static_cast<int>(value);
    } else if (key == "evaluation.seed") {
      MDRR_ASSIGN_OR_RETURN(spec.evaluation.seed, ParseOneUint(line));
    } else if (key == "streaming.enabled") {
      MDRR_ASSIGN_OR_RETURN(spec.streaming.enabled, ParseBool(line));
    } else if (key == "streaming.window_kind") {
      MDRR_ASSIGN_OR_RETURN(std::string token, ParseOneToken(line));
      MDRR_ASSIGN_OR_RETURN(spec.streaming.window_kind,
                            WindowKindFromString(token));
    } else if (key == "streaming.window_size") {
      MDRR_ASSIGN_OR_RETURN(spec.streaming.window_size, ParseOneUint(line));
    } else if (key == "streaming.window_stride") {
      MDRR_ASSIGN_OR_RETURN(spec.streaming.window_stride, ParseOneUint(line));
    } else if (key == "streaming.window_epsilon") {
      MDRR_ASSIGN_OR_RETURN(spec.streaming.window_epsilon,
                            ParseOneDouble(line));
    } else if (key == "streaming.max_windows") {
      MDRR_ASSIGN_OR_RETURN(spec.streaming.max_windows, ParseOneUint(line));
    } else if (key == "execution.policy") {
      MDRR_ASSIGN_OR_RETURN(std::string token, ParseOneToken(line));
      MDRR_ASSIGN_OR_RETURN(spec.execution.kind, PolicyKindFromString(token));
    } else if (key == "execution.seed") {
      MDRR_ASSIGN_OR_RETURN(spec.execution.seed, ParseOneUint(line));
    } else if (key == "execution.num_threads") {
      MDRR_ASSIGN_OR_RETURN(uint64_t value, ParseOneUint(line));
      spec.execution.num_threads = static_cast<size_t>(value);
    } else if (key == "execution.shard_size") {
      MDRR_ASSIGN_OR_RETURN(uint64_t value, ParseOneUint(line));
      spec.execution.shard_size = static_cast<size_t>(value);
    } else if (key == "execution.rng") {
      // Absent in pre-philox spec files; the field default keeps those
      // parsing as mt19937.
      MDRR_ASSIGN_OR_RETURN(std::string token, ParseOneToken(line));
      MDRR_ASSIGN_OR_RETURN(spec.execution.rng, RngKindFromString(token));
    } else if (key == "execution.num_workers") {
      MDRR_ASSIGN_OR_RETURN(uint64_t value, ParseOneUint(line));
      spec.execution.num_workers = static_cast<size_t>(value);
    } else if (key == "execution.listen_port") {
      MDRR_ASSIGN_OR_RETURN(uint64_t value, ParseOneUint(line));
      if (value > 65535) {
        return Status::InvalidArgument(
            "execution.listen_port must be a TCP port (0-65535)");
      }
      spec.execution.listen_port = static_cast<uint16_t>(value);
    } else if (key == "execution.worker_deadline_ms") {
      MDRR_ASSIGN_OR_RETURN(spec.execution.worker_deadline_ms,
                            ParseOneInt(line));
    } else if (key == "output.randomized_csv") {
      spec.output.randomized_csv = line.rest;
    } else if (key == "output.synthetic_csv") {
      spec.output.synthetic_csv = line.rest;
    } else if (key == "output.artifacts") {
      spec.output.artifacts_path = line.rest;
    } else {
      return Status::InvalidArgument("unknown spec key '" + key + "'");
    }
  }
  return spec;
}

Status WriteReleaseSpec(const ReleaseSpec& spec, const std::string& path) {
  return WriteText(PrintReleaseSpec(spec), path);
}

StatusOr<ReleaseSpec> ReadReleaseSpec(const std::string& path) {
  MDRR_ASSIGN_OR_RETURN(std::string text, ReadText(path));
  return ParseReleaseSpec(text);
}

// ---------------------------------------------------------------------------
// ReleaseArtifacts (summary only; datasets go to CSV side files).
// ---------------------------------------------------------------------------

std::string PrintReleaseArtifacts(const ReleaseArtifacts& artifacts) {
  std::string out;
  out += kArtifactsHeader;
  out += '\n';
  AppendLine(out, "records", artifacts.num_records);
  AppendLine(out, "release_epsilon", artifacts.release_epsilon);
  AppendLine(out, "dependence_epsilon", artifacts.dependence_epsilon);

  AppendLine(out, "marginals",
             static_cast<uint64_t>(artifacts.marginal_estimates.size()));
  for (const std::vector<double>& marginal : artifacts.marginal_estimates) {
    out += "marginal ";
    out += std::to_string(marginal.size());
    for (double p : marginal) {
      out += ' ';
      AppendDouble(out, p);
    }
    out += '\n';
  }

  AppendLine(out, "clusters",
             static_cast<uint64_t>(artifacts.clustering.size()));
  for (const std::vector<size_t>& cluster : artifacts.clustering) {
    AppendIndexList(out, "cluster", cluster);
  }

  AppendLine(out, "dependences",
             static_cast<uint64_t>(artifacts.dependences.rows()));
  for (size_t i = 0; i < artifacts.dependences.rows(); ++i) {
    out += "deprow";
    for (size_t j = 0; j < artifacts.dependences.cols(); ++j) {
      out += ' ';
      AppendDouble(out, artifacts.dependences(i, j));
    }
    out += '\n';
  }

  if (artifacts.adjustment.has_value()) {
    out += "adjustment ";
    out += std::to_string(artifacts.adjustment->iterations);
    out += artifacts.adjustment->converged ? " 1 " : " 0 ";
    AppendDouble(out, artifacts.adjustment->max_marginal_gap);
    out += '\n';
    AppendDoubleList(out, "weights", artifacts.adjustment->weights);
  }

  if (artifacts.utility.has_value()) {
    AppendDoubleList(out, "utility.marginal_tv",
                     artifacts.utility->marginal_tv);
    AppendDoubleList(out, "utility.median_relative_error",
                     artifacts.utility->median_relative_error);
    AppendLine(out, "utility.max_dependence_shift",
               artifacts.utility->max_dependence_shift);
  }

  for (const StageTiming& timing : artifacts.timings) {
    out += "timing ";
    out += timing.stage;
    out += ' ';
    AppendDouble(out, timing.seconds);
    out += '\n';
  }
  return out;
}

StatusOr<ReleaseArtifacts> ParseReleaseArtifacts(const std::string& text) {
  std::vector<SpecLine> lines = TokenizeLines(text);
  if (lines.empty() || lines.front().key + (lines.front().rest.empty()
                                                ? ""
                                                : " " + lines.front().rest) !=
                           kArtifactsHeader) {
    return Status::InvalidArgument(std::string("expected header '") +
                                   kArtifactsHeader + "'");
  }

  ReleaseArtifacts artifacts;
  uint64_t declared_marginals = 0;
  uint64_t declared_clusters = 0;
  uint64_t declared_dependence_rows = 0;
  std::vector<std::vector<double>> dependence_rows;
  for (size_t i = 1; i < lines.size(); ++i) {
    const SpecLine& line = lines[i];
    const std::string& key = line.key;
    if (key == "records") {
      MDRR_ASSIGN_OR_RETURN(artifacts.num_records, ParseOneDouble(line));
    } else if (key == "release_epsilon") {
      MDRR_ASSIGN_OR_RETURN(artifacts.release_epsilon, ParseOneDouble(line));
    } else if (key == "dependence_epsilon") {
      MDRR_ASSIGN_OR_RETURN(artifacts.dependence_epsilon,
                            ParseOneDouble(line));
    } else if (key == "marginals") {
      MDRR_ASSIGN_OR_RETURN(declared_marginals, ParseOneUint(line));
    } else if (key == "marginal") {
      // "marginal <len> <p...>": the declared length is an integer, not
      // a double (casting an arbitrary double would be UB for NaN or
      // out-of-range values).
      if (line.tokens.empty()) {
        return Status::InvalidArgument("malformed marginal line");
      }
      MDRR_ASSIGN_OR_RETURN(int64_t declared, ParseInt64(line.tokens[0]));
      if (declared < 0 ||
          static_cast<size_t>(declared) + 1 != line.tokens.size()) {
        return Status::InvalidArgument("malformed marginal line");
      }
      std::vector<double> marginal;
      marginal.reserve(static_cast<size_t>(declared));
      for (size_t t = 1; t < line.tokens.size(); ++t) {
        MDRR_ASSIGN_OR_RETURN(double p, ParseDouble(line.tokens[t]));
        marginal.push_back(p);
      }
      artifacts.marginal_estimates.push_back(std::move(marginal));
    } else if (key == "clusters") {
      MDRR_ASSIGN_OR_RETURN(declared_clusters, ParseOneUint(line));
    } else if (key == "cluster") {
      MDRR_ASSIGN_OR_RETURN(std::vector<size_t> cluster,
                            ParseIndexList(line));
      if (cluster.empty()) {
        return Status::InvalidArgument("empty cluster line");
      }
      artifacts.clustering.push_back(std::move(cluster));
    } else if (key == "dependences") {
      MDRR_ASSIGN_OR_RETURN(declared_dependence_rows, ParseOneUint(line));
    } else if (key == "deprow") {
      MDRR_ASSIGN_OR_RETURN(std::vector<double> row, ParseDoubleList(line));
      dependence_rows.push_back(std::move(row));
    } else if (key == "adjustment") {
      if (line.tokens.size() != 3) {
        return Status::InvalidArgument("malformed adjustment line");
      }
      AdjustmentResult adjustment;
      MDRR_ASSIGN_OR_RETURN(int64_t iterations, ParseInt64(line.tokens[0]));
      adjustment.iterations = static_cast<int>(iterations);
      if (line.tokens[1] != "0" && line.tokens[1] != "1") {
        return Status::InvalidArgument("malformed adjustment line");
      }
      adjustment.converged = line.tokens[1] == "1";
      MDRR_ASSIGN_OR_RETURN(adjustment.max_marginal_gap,
                            ParseDouble(line.tokens[2]));
      if (artifacts.adjustment.has_value()) {
        adjustment.weights = std::move(artifacts.adjustment->weights);
      }
      artifacts.adjustment = std::move(adjustment);
    } else if (key == "weights") {
      if (!artifacts.adjustment.has_value()) {
        artifacts.adjustment.emplace();
      }
      MDRR_ASSIGN_OR_RETURN(artifacts.adjustment->weights,
                            ParseDoubleList(line));
    } else if (key == "utility.marginal_tv") {
      if (!artifacts.utility.has_value()) artifacts.utility.emplace();
      MDRR_ASSIGN_OR_RETURN(artifacts.utility->marginal_tv,
                            ParseDoubleList(line));
    } else if (key == "utility.median_relative_error") {
      if (!artifacts.utility.has_value()) artifacts.utility.emplace();
      MDRR_ASSIGN_OR_RETURN(artifacts.utility->median_relative_error,
                            ParseDoubleList(line));
    } else if (key == "utility.max_dependence_shift") {
      if (!artifacts.utility.has_value()) artifacts.utility.emplace();
      MDRR_ASSIGN_OR_RETURN(artifacts.utility->max_dependence_shift,
                            ParseOneDouble(line));
    } else if (key == "timing") {
      if (line.tokens.size() != 2) {
        return Status::InvalidArgument("malformed timing line");
      }
      StageTiming timing;
      timing.stage = line.tokens[0];
      MDRR_ASSIGN_OR_RETURN(timing.seconds, ParseDouble(line.tokens[1]));
      artifacts.timings.push_back(std::move(timing));
    } else {
      return Status::InvalidArgument("unknown artifacts key '" + key + "'");
    }
  }

  if (artifacts.marginal_estimates.size() != declared_marginals) {
    return Status::InvalidArgument("marginal count mismatch");
  }
  if (artifacts.clustering.size() != declared_clusters) {
    return Status::InvalidArgument("cluster count mismatch");
  }
  if (dependence_rows.size() != declared_dependence_rows) {
    return Status::InvalidArgument("dependence row count mismatch");
  }
  if (!dependence_rows.empty()) {
    artifacts.dependences =
        linalg::Matrix(dependence_rows.size(), dependence_rows.size());
    for (size_t i = 0; i < dependence_rows.size(); ++i) {
      if (dependence_rows[i].size() != dependence_rows.size()) {
        return Status::InvalidArgument("dependence matrix is not square");
      }
      for (size_t j = 0; j < dependence_rows[i].size(); ++j) {
        artifacts.dependences(i, j) = dependence_rows[i][j];
      }
    }
  }
  return artifacts;
}

Status WriteReleaseArtifacts(const ReleaseArtifacts& artifacts,
                             const std::string& path) {
  return WriteText(PrintReleaseArtifacts(artifacts), path);
}

StatusOr<ReleaseArtifacts> ReadReleaseArtifacts(const std::string& path) {
  MDRR_ASSIGN_OR_RETURN(std::string text, ReadText(path));
  return ParseReleaseArtifacts(text);
}


// ---------------------------------------------------------------------------
// StreamingSnapshot.
// ---------------------------------------------------------------------------

std::string PrintStreamingSnapshot(const StreamingSnapshot& snapshot) {
  std::string out;
  out += kSnapshotHeader;
  out += '\n';

  AppendLine(out, "next_sequence", snapshot.next_sequence);
  AppendLine(out, "next_window", snapshot.next_window);
  AppendLine(out, "epsilon_spent", snapshot.epsilon_spent);
  AppendDoubleList(out, "window_epsilons", snapshot.window_epsilons);
  AppendIndexList(out, "cardinalities", snapshot.cardinalities);

  // "bucket <index> <reports> <counts...>": counts stay signed so any
  // in-memory snapshot round-trips and Resume gets to reject it.
  for (const StreamingSnapshot::BucketCounts& bucket : snapshot.buckets) {
    out += "bucket ";
    out += std::to_string(bucket.bucket);
    out += ' ';
    out += std::to_string(bucket.num_reports);
    for (int64_t count : bucket.counts) {
      out += ' ';
      out += std::to_string(count);
    }
    out += '\n';
  }
  return out;
}

StatusOr<StreamingSnapshot> ParseStreamingSnapshot(const std::string& text) {
  std::vector<SpecLine> lines = TokenizeLines(text);
  if (lines.empty() || lines.front().key + (lines.front().rest.empty()
                                                ? ""
                                                : " " + lines.front().rest) !=
                           kSnapshotHeader) {
    return Status::InvalidArgument(std::string("expected header '") +
                                   kSnapshotHeader + "'");
  }

  StreamingSnapshot snapshot;
  for (size_t i = 1; i < lines.size(); ++i) {
    const SpecLine& line = lines[i];
    const std::string& key = line.key;
    if (key == "next_sequence") {
      MDRR_ASSIGN_OR_RETURN(snapshot.next_sequence, ParseOneUint(line));
    } else if (key == "next_window") {
      MDRR_ASSIGN_OR_RETURN(snapshot.next_window, ParseOneUint(line));
    } else if (key == "epsilon_spent") {
      MDRR_ASSIGN_OR_RETURN(snapshot.epsilon_spent, ParseOneDouble(line));
    } else if (key == "window_epsilons") {
      MDRR_ASSIGN_OR_RETURN(snapshot.window_epsilons, ParseDoubleList(line));
    } else if (key == "cardinalities") {
      MDRR_ASSIGN_OR_RETURN(snapshot.cardinalities, ParseIndexList(line));
    } else if (key == "bucket") {
      if (line.tokens.size() < 2) {
        return Status::InvalidArgument("malformed bucket line");
      }
      StreamingSnapshot::BucketCounts bucket;
      MDRR_ASSIGN_OR_RETURN(int64_t index, ParseInt64(line.tokens[0]));
      MDRR_ASSIGN_OR_RETURN(int64_t reports, ParseInt64(line.tokens[1]));
      if (index < 0 || reports < 0) {
        return Status::InvalidArgument("malformed bucket line");
      }
      bucket.bucket = static_cast<uint64_t>(index);
      bucket.num_reports = static_cast<uint64_t>(reports);
      bucket.counts.reserve(line.tokens.size() - 2);
      for (size_t t = 2; t < line.tokens.size(); ++t) {
        MDRR_ASSIGN_OR_RETURN(int64_t count, ParseInt64(line.tokens[t]));
        bucket.counts.push_back(count);
      }
      snapshot.buckets.push_back(std::move(bucket));
    } else {
      return Status::InvalidArgument("unknown snapshot key '" + key + "'");
    }
  }
  return snapshot;
}

Status WriteStreamingSnapshot(const StreamingSnapshot& snapshot,
                              const std::string& path) {
  return WriteText(PrintStreamingSnapshot(snapshot), path);
}

StatusOr<StreamingSnapshot> ReadStreamingSnapshot(const std::string& path) {
  MDRR_ASSIGN_OR_RETURN(std::string text, ReadText(path));
  return ParseStreamingSnapshot(text);
}

// ---------------------------------------------------------------------------
// Window transcripts.
// ---------------------------------------------------------------------------

std::string PrintStreamWindows(const std::vector<StreamWindow>& windows) {
  std::string out;
  for (const StreamWindow& window : windows) {
    out += "window ";
    out += std::to_string(window.index);
    out += ' ';
    out += std::to_string(window.begin_sequence);
    out += ' ';
    out += std::to_string(window.end_sequence);
    out += ' ';
    out += std::to_string(window.num_reports);
    out += window.released ? " released " : " suppressed ";
    AppendDouble(out, window.epsilon);
    out += '\n';
    if (!window.released) continue;
    for (const std::vector<double>& marginal :
         window.artifacts.marginal_estimates) {
      out += "marginal ";
      out += std::to_string(marginal.size());
      for (double p : marginal) {
        out += ' ';
        AppendDouble(out, p);
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace mdrr::release
