// Plain-text serialization of the release API values, so a whole
// release is reproducible from a spec file and its estimation summary
// can be archived next to the published CSVs.
//
// ReleaseSpec (line-oriented `key value...`, versioned header
// `mdrr-release-spec v1`, `#` comments allowed): every field is printed;
// parsing accepts any subset (missing keys keep their defaults) and
// rejects unknown keys and malformed values, so
// ParseReleaseSpec(PrintReleaseSpec(spec)) == spec for every spec.
//
// ReleaseArtifacts (`mdrr-release-artifacts v1`): the estimation summary
// only -- marginals, clustering, dependences, epsilons, adjustment
// weights, utility scalars, timings. The randomized/synthetic datasets
// are NOT embedded; they go to the CSV side files named by the spec's
// OutputSpec. Print/Parse round-trips the summary exactly.

#ifndef MDRR_RELEASE_SERIALIZATION_H_
#define MDRR_RELEASE_SERIALIZATION_H_

#include <string>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/release/artifacts.h"
#include "mdrr/release/spec.h"
#include "mdrr/release/streaming.h"

namespace mdrr::release {

std::string PrintReleaseSpec(const ReleaseSpec& spec);
StatusOr<ReleaseSpec> ParseReleaseSpec(const std::string& text);
Status WriteReleaseSpec(const ReleaseSpec& spec, const std::string& path);
StatusOr<ReleaseSpec> ReadReleaseSpec(const std::string& path);

std::string PrintReleaseArtifacts(const ReleaseArtifacts& artifacts);
StatusOr<ReleaseArtifacts> ParseReleaseArtifacts(const std::string& text);
Status WriteReleaseArtifacts(const ReleaseArtifacts& artifacts,
                             const std::string& path);
StatusOr<ReleaseArtifacts> ReadReleaseArtifacts(const std::string& path);

// StreamingSnapshot (`mdrr-streaming-snapshot v1`): the resumable
// collector state -- sequence and window cursors, the per-window
// epsilon ledger, and the pending bucket counts. Print/Parse round-trips
// it exactly (counts are integers, doubles print at full precision).
std::string PrintStreamingSnapshot(const StreamingSnapshot& snapshot);
StatusOr<StreamingSnapshot> ParseStreamingSnapshot(const std::string& text);
Status WriteStreamingSnapshot(const StreamingSnapshot& snapshot,
                              const std::string& path);
StatusOr<StreamingSnapshot> ReadStreamingSnapshot(const std::string& path);

// Deterministic text transcript of a window sequence: one `window` line
// per emitted window (index, range, reports, released flag, epsilon)
// followed by the released windows' artifact summaries. Two streaming
// runs are bit-identical iff their transcripts match -- the replay
// equality observable used by tests, the bench stage, and mdrr_collectd.
std::string PrintStreamWindows(const std::vector<StreamWindow>& windows);

}  // namespace mdrr::release

#endif  // MDRR_RELEASE_SERIALIZATION_H_
