// Everything a ReleasePlan run produces, in one value.
//
// The artifacts bundle the released randomized data, the estimates, the
// privacy ledger numbers, and the optional post-processing products
// (adjusted weights, synthetic data, utility report), plus per-stage
// wall-clock timings. The protocol-specific payload of the mechanism is
// kept verbatim (see MechanismOutput) so callers can still build the
// protocol estimators or compare against direct stage calls bit for bit.

#ifndef MDRR_RELEASE_ARTIFACTS_H_
#define MDRR_RELEASE_ARTIFACTS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/joint_estimate.h"
#include "mdrr/eval/utility_report.h"
#include "mdrr/release/mechanism.h"

namespace mdrr::release {

struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

struct ReleaseArtifacts {
  // The released randomized columns (full schema for independent,
  // clusters and pram; the joint attribute subset for joint) and the
  // per-attribute Eq. (2) projected estimates aligned with its schema.
  Dataset randomized;
  std::vector<std::vector<double>> marginal_estimates;

  // Records the estimates refer to. Redundant with randomized.num_rows()
  // on a fresh run, but survives serialization, where the datasets live
  // in CSV side files (see OutputSpec) rather than in the summary.
  double num_records = 0.0;

  // Clusters mechanism only; defaulted otherwise.
  linalg::Matrix dependences;
  AttributeClustering clustering;

  // Privacy ledger: epsilon of the release itself and of the
  // dependence-assessment round (sequential composition gives the
  // total).
  double release_epsilon = 0.0;
  double dependence_epsilon = 0.0;
  double total_epsilon() const { return release_epsilon + dependence_epsilon; }

  // The mechanism's protocol payload (exactly one set; see
  // MechanismOutput). The payload's own `randomized` dataset member has
  // been moved into `randomized` above -- everything else is the stage
  // function's output verbatim.
  std::optional<RrIndependentResult> independent;
  std::optional<RrJointResult> joint;
  std::optional<RrClustersResult> clusters;
  std::optional<PramResult> pram;

  // Optional stage products.
  std::optional<AdjustmentResult> adjustment;
  std::optional<Dataset> synthetic;
  std::optional<eval::UtilityReport> utility;

  std::vector<StageTiming> timings;
};

// The count-query estimator this release supports, best first: adjusted
// weights (Algorithm 2) when adjustment ran, the cluster factorization
// for the clusters mechanism, the joint estimate for the joint
// mechanism, and the independent-marginals product otherwise. Fails on
// artifacts with no payload (e.g. parsed summaries).
StatusOr<std::unique_ptr<JointEstimate>> MakeJointEstimate(
    const ReleaseArtifacts& artifacts);

}  // namespace mdrr::release

#endif  // MDRR_RELEASE_ARTIFACTS_H_
