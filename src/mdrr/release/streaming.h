// The streaming release driver: windowed incremental estimation over a
// continuous report stream.
//
// A StreamingCollector is the long-lived controller side of an
// always-on collection service. Parties (or an ingest adapter replaying
// a dataset -- protocol/stream_ingest.h) submit already-perturbed
// reports tagged with a global arrival sequence number through one
// lock-free channel per ingest shard (common/mpsc_channel.h); drain
// threads move them into the bucketed count ring (core/stream_counts.h);
// and a single release thread turns completed windows into one
// estimation summary each by re-running the Eq. (2) structured closed
// forms on the merged integer counts. Records are touched exactly once,
// at ingest -- every window release afterwards is pure count
// arithmetic, so for structured designs a window release performs zero
// LU factorizations (linalg::LuFactorizationCount() is the observable).
//
// Determinism contract: a window's summary is a pure function of the
// spec (seed, design, window geometry) and of WHICH sequence numbers
// fell into the window -- never of the ingest thread count, shard
// count, channel interleaving, or drain order. Integer bucket counts
// commute; window sums merge buckets in ascending order; the epsilon
// ledger advances in window order on one thread.
//
// Budget: every released window charges window_epsilon() against
// spec.budget.max_total_epsilon. When the next release would exceed the
// cap, the collector keeps counting but emits the window SUPPRESSED
// (released = false, no estimates): collection degrades gracefully
// instead of silently over-spending -- the fail-closed mode the batch
// planner implements as a FailedPrecondition.
//
// Snapshot/resume: at quiescence (every submitted report drained) the
// whole collector state -- sequence cursor, window cursor, epsilon
// ledger, pending bucket counts -- fits in a StreamingSnapshot. A
// collector resumed from it emits exactly the windows the uninterrupted
// run would have emitted from that point, bit for bit, because counts
// are integers and the report randomness is keyed off absolute sequence
// numbers.

#ifndef MDRR_RELEASE_STREAMING_H_
#define MDRR_RELEASE_STREAMING_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mdrr/common/mpsc_channel.h"
#include "mdrr/common/status_or.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/core/stream_counts.h"
#include "mdrr/release/artifacts.h"
#include "mdrr/release/spec.h"

namespace mdrr::release {

struct StreamingCollectorOptions {
  // Ingest shards: one channel and one drain row each. Purely a
  // throughput knob; never changes window summaries.
  size_t num_shards = 1;
  // In-flight report capacity per shard channel (backpressure bound).
  size_t channel_capacity = 1 << 10;
  // Live bucket slots in the count ring (>= 2). Bounds ingest memory
  // and how far producers may run ahead of the release thread.
  size_t ring_buckets = 4;
};

// One emitted window. `artifacts` carries the estimation summary
// (marginal_estimates, num_records, release_epsilon) for released
// windows and stays empty for suppressed ones.
struct StreamWindow {
  uint64_t index = 0;
  // The window covers sequences [begin_sequence, end_sequence).
  uint64_t begin_sequence = 0;
  uint64_t end_sequence = 0;
  uint64_t num_reports = 0;
  // False when the budget cap suppressed the release (counting
  // continued; no estimates were published).
  bool released = false;
  // Epsilon charged to the ledger (0 when suppressed).
  double epsilon = 0.0;
  ReleaseArtifacts artifacts;
};

// Resumable collector state, captured at quiescence. Serializes through
// Print/ParseStreamingSnapshot (release/serialization.h, versioned
// header "mdrr-streaming-snapshot v1").
struct StreamingSnapshot {
  // First sequence number not yet ingested (the RNG stream cursor: the
  // replay adapter derives report randomness from absolute sequence
  // numbers, so this is all it needs to resume the stream).
  uint64_t next_sequence = 0;
  // First window not yet emitted.
  uint64_t next_window = 0;
  double epsilon_spent = 0.0;
  // Epsilon charged per emitted window, in window order (0 = that
  // window was suppressed by the budget cap).
  std::vector<double> window_epsilons;
  // Schema guard: per-attribute cardinalities of the counted stream.
  std::vector<size_t> cardinalities;
  struct BucketCounts {
    uint64_t bucket = 0;
    uint64_t num_reports = 0;
    // Concatenated per-attribute category counts (length = sum of
    // cardinalities).
    std::vector<int64_t> counts;
  };
  // Counted-but-unreleased buckets at quiescence, ascending and
  // contiguous from the first bucket the next window needs; all full
  // except possibly the last (a pause mid-bucket).
  std::vector<BucketCounts> buckets;
};

bool operator==(const StreamingSnapshot& a, const StreamingSnapshot& b);
inline bool operator!=(const StreamingSnapshot& a,
                       const StreamingSnapshot& b) {
  return !(a == b);
}

class StreamingCollector {
 public:
  // Builds a collector for a spec with streaming.enabled (must pass
  // ValidateReleaseSpec for the given schema). Resolves the per-window
  // epsilon charge: streaming.window_epsilon == 0 derives it from the
  // design (sum of per-attribute Expression (4) epsilons); a declared
  // value below the derived one fails with FailedPrecondition.
  static StatusOr<std::unique_ptr<StreamingCollector>> Create(
      const ReleaseSpec& spec, std::vector<size_t> cardinalities,
      const StreamingCollectorOptions& options);

  // Create + state restore. The snapshot must match the spec's schema
  // and window geometry.
  static StatusOr<std::unique_ptr<StreamingCollector>> Resume(
      const ReleaseSpec& spec, std::vector<size_t> cardinalities,
      const StreamingCollectorOptions& options,
      const StreamingSnapshot& snapshot);

  // --- Producer side (any thread) ---

  // Admits one perturbed report, or returns false under backpressure
  // (sequence beyond the admission window, or the shard's node pool
  // exhausted). The producer owns the sequence number; the collector
  // requires only that submitted sequences eventually form a contiguous
  // range. Precondition: shard < num_shards, codes has one code per
  // attribute, each below its cardinality.
  bool TrySubmit(size_t shard, uint64_t sequence,
                 const std::vector<uint32_t>& codes);

  // --- Drain side (one thread per shard) ---

  // Moves every currently queued report of `shard` into the count ring.
  // Returns the number drained.
  size_t DrainShard(size_t shard);

  // --- Release side (single thread) ---

  // Merges completed buckets and emits every window that is fully
  // counted (and within streaming.max_windows), appending to `out`.
  // Returns the number emitted.
  StatusOr<size_t> PollWindows(std::vector<StreamWindow>& out);

  // Declares the stream complete at `total_reports`: the final partial
  // bucket may now merge, and Finished() becomes meaningful. Reports at
  // or beyond the seal must never be submitted.
  void Seal(uint64_t total_reports);

  // True once the stream is sealed and every releasable window has been
  // emitted (a trailing partial window never releases).
  bool Finished() const;

  // All reports admitted by TrySubmit have been drained and counted.
  bool Quiescent() const;

  // Captures resumable state. `next_sequence` is the caller's sequence
  // cursor (the collector does not assign sequences). Fails with
  // FailedPrecondition unless Quiescent() -- stop producers and drain
  // every shard first.
  StatusOr<StreamingSnapshot> Snapshot(uint64_t next_sequence) const;

  // --- Introspection ---

  const std::vector<RrMatrix>& matrices() const { return matrices_; }
  // The resolved per-released-window epsilon charge.
  double window_epsilon() const { return window_epsilon_; }
  double epsilon_spent() const { return epsilon_spent_; }
  uint64_t next_window() const { return next_window_; }
  size_t num_shards() const { return channels_.size(); }
  uint64_t stride() const { return counts_.stride(); }
  // Buckets per window (1 for tumbling).
  uint64_t buckets_per_window() const { return buckets_per_window_; }
  // Windows the sealed stream supports in total (after max_windows);
  // precondition: the stream is sealed.
  uint64_t SealedWindowCount() const;

 private:
  StreamingCollector(const ReleaseSpec& spec,
                     std::vector<size_t> cardinalities,
                     const StreamingCollectorOptions& options,
                     std::vector<RrMatrix> matrices, double window_epsilon);

  // Reports bucket `b` must receive before it is complete (stride, or
  // the sealed tail remainder).
  uint64_t BucketPopulation(uint64_t bucket) const;

  StatusOr<StreamWindow> EmitWindow();

  ReleaseSpec spec_;
  std::vector<RrMatrix> matrices_;
  // Per-attribute direct-encoding oracles over matrices_: window
  // estimation runs through the oracle seam's closed form, which for RR
  // designs is exactly the structured Eq. (2) estimator -- same bits,
  // zero LU factorizations.
  std::vector<DirectEncodingOracle> oracles_;
  double window_epsilon_;
  uint64_t buckets_per_window_;

  std::vector<std::unique_ptr<StreamChannel>> channels_;
  WindowedCounts counts_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> drained_total_{0};

  // Release-thread state. Merged bucket totals awaiting window
  // emission: merged_[i] holds bucket merged_begin_ + i, so the deque
  // always covers [merged_begin_, next_merge_bucket_).
  struct MergedBucket {
    uint64_t num_reports = 0;
    std::vector<int64_t> counts;
  };
  std::deque<MergedBucket> merged_;
  uint64_t merged_begin_ = 0;
  uint64_t next_merge_bucket_ = 0;
  uint64_t next_window_ = 0;
  double epsilon_spent_ = 0.0;
  std::vector<double> window_epsilons_;
  bool sealed_ = false;
  uint64_t total_reports_ = 0;
};

}  // namespace mdrr::release

#endif  // MDRR_RELEASE_STREAMING_H_
