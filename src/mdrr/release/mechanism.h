// The pluggable perturbation mechanism behind a ReleasePlan.
//
// Each adapter wraps one existing release protocol -- the stage
// functions stay the implementation layer, so the sequential policy is
// bit-identical to calling them directly with the same Rng, and the
// sharded policy is bit-identical to the corresponding
// BatchPerturbationEngine call. A mechanism normalizes its protocol
// result into a MechanismOutput (released columns + per-attribute
// marginals + epsilons + the protocol-specific payload) and knows how to
// synthesize microdata and build Algorithm 2 constraint groups from it.

#ifndef MDRR_RELEASE_MECHANISM_H_
#define MDRR_RELEASE_MECHANISM_H_

#include <memory>
#include <optional>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/adjustment.h"
#include "mdrr/core/batch_engine.h"
#include "mdrr/core/pram.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/release/spec.h"

namespace mdrr::release {

// Normalized product of a mechanism run. Exactly one protocol payload
// is set, holding the stage function's result verbatim; the released
// columns live inside it (full schema for independent/clusters/pram).
// Only the joint mechanism fills `randomized` itself (the composite
// codes decoded onto the attribute subset's schema) -- for the others
// it stays empty here, and ReleasePlan::Run moves the payload's dataset
// into ReleaseArtifacts::randomized once every stage that reads it has
// run. `marginal_estimates` is aligned with the released schema.
struct MechanismOutput {
  Dataset randomized;
  std::vector<std::vector<double>> marginal_estimates;
  // Clusters mechanism only; defaulted otherwise.
  linalg::Matrix dependences;
  AttributeClustering clustering;
  double release_epsilon = 0.0;
  double dependence_epsilon = 0.0;

  std::optional<RrIndependentResult> independent;
  std::optional<RrJointResult> joint;
  std::optional<RrClustersResult> clusters;
  std::optional<PramResult> pram;
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  virtual const char* name() const = 0;

  // The perturbation + Eq. (2) estimation stage. Sequential runs draw
  // from `rng` exactly as the wrapped stage function would; sharded runs
  // delegate to the engine's contracts.
  virtual StatusOr<MechanismOutput> RunSequential(const Dataset& dataset,
                                                  Rng& rng) const = 0;
  virtual StatusOr<MechanismOutput> RunSharded(
      const Dataset& dataset, const BatchPerturbationEngine& engine) const = 0;

  // Synthetic microdata from the mechanism's estimates. Default:
  // unsupported (ValidateReleaseSpec rejects such specs up front).
  virtual bool SupportsSynthesis() const { return false; }
  virtual StatusOr<Dataset> SynthesizeSequential(const MechanismOutput& output,
                                                 int64_t n, Rng& rng) const;
  virtual StatusOr<Dataset> SynthesizeSharded(
      const MechanismOutput& output, int64_t n,
      const BatchPerturbationEngine& engine) const;

  // Algorithm 2 constraint groups for this output. `requested` is the
  // spec's explicit group list; empty means one group per mechanism
  // unit. Default: unsupported.
  virtual bool SupportsAdjustment() const { return false; }
  virtual StatusOr<std::vector<AdjustmentGroup>> AdjustmentGroupsFor(
      const MechanismOutput& output,
      const std::vector<std::vector<size_t>>& requested) const;
};

// Builds the adapter the spec's mechanism section describes. The spec
// must already have passed ValidateReleaseSpec.
std::unique_ptr<Mechanism> MakeMechanism(const ReleaseSpec& spec);

}  // namespace mdrr::release

#endif  // MDRR_RELEASE_MECHANISM_H_
