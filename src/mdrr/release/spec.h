// Declarative description of a complete data release.
//
// A ReleaseSpec says WHAT to release -- which data set, under which
// privacy budget, through which mechanism, with which post-processing
// and outputs -- and one ExecutionPolicy says HOW to run it (the
// sequential reference path or the sharded batch engine). The spec is a
// plain value: it serializes to text (release/serialization.h), compares
// for equality, and carries no pointers, so a release is reproducible
// from a spec file alone. ReleasePlanner (release/planner.h) validates a
// spec and lowers it into an executable ReleasePlan.

#ifndef MDRR_RELEASE_SPEC_H_
#define MDRR_RELEASE_SPEC_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "mdrr/common/status_or.h"
#include "mdrr/core/clustering.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/rng/counter_rng.h"

namespace mdrr::release {

// Which privacy mechanism perturbs the data. The adapters live in
// release/mechanism.h; the underlying stage functions (RunRrIndependent,
// RunRrJoint, RunRrClusters, ApplyPram, BatchPerturbationEngine) are the
// implementation layer and stay callable directly.
enum class MechanismKind {
  kIndependent,  // Protocol 1: per-attribute RR.
  kJoint,        // Protocol 2: one RR over a product domain.
  kClusters,     // Section 4: assess, cluster, RR-Joint per cluster.
  kPram,         // Controller-side post-randomization (Section 2.1).
  // Protocol 1 over the distance-sensitive ordinal design
  // (RrMatrix::GeometricOrdinal; the paper's Section 8 direction):
  // per-attribute RR where every attribute's matrix has Expression (4)
  // epsilon mechanism.geometric_epsilon exactly.
  kGeometricOrdinal,
};

// How the plan executes. kSequential is the single-stream reference path
// (one Rng drawn in stage order); kSharded routes every stage through
// the BatchPerturbationEngine contracts, bit-identical for any
// num_threads at fixed (seed, shard_size). kDistributed farms the
// sharded column perturbations out to worker processes over the net/
// transport, reproducing the kSharded transcript bit-for-bit at the same
// (seed, shard_size, rng) for any worker count; every serial stage
// (adjustment, synthesis, estimation) still runs on the coordinator.
enum class PolicyKind {
  kSequential,
  kSharded,
  kDistributed,
};

// Where the microdata comes from.
struct DatasetSpec {
  enum class Source {
    kProvided,        // Caller passes a Dataset to ReleasePlanner::Plan.
    kCsvFile,         // Schema inferred from a CSV file.
    kSyntheticAdult,  // The calibrated Adult synthesizer (dataset/adult.h).
  };
  Source source = Source::kProvided;
  std::string csv_path;        // kCsvFile only.
  bool csv_has_header = true;  // kCsvFile only.
  size_t synthetic_records = 32561;  // kSyntheticAdult only.
  uint64_t synthetic_seed = 42;      // kSyntheticAdult only.
};

// Privacy parameters. The paper parameterizes designs by the keep
// probability p of the KeepUniform matrix; epsilons are derived via
// Expression (4). max_total_epsilon is a hard acceptance cap on the
// sequentially-composed total (assessment + release): a plan whose
// realized total exceeds it fails with FailedPrecondition instead of
// publishing. Infinity (the default) disables the cap; a cap <= 0 is
// rejected at validation.
struct BudgetSpec {
  double keep_probability = 0.7;
  // Keep probability of the dependence-assessment round (Sections 4.1,
  // 4.3); only the clusters mechanism spends it.
  double dependence_keep_probability = 0.7;
  double max_total_epsilon = std::numeric_limits<double>::infinity();
};

// Mechanism choice plus its mechanism-specific settings.
struct MechanismSpec {
  MechanismKind kind = MechanismKind::kClusters;
  // kJoint: the attribute subset released jointly. Must be non-empty,
  // within the schema, and duplicate-free.
  std::vector<size_t> joint_attributes;
  // kClusters: Algorithm 1 knobs and the dependence-assessment method.
  // DependenceSource::kProvided cannot appear in a spec (a spec carries
  // no matrix); hoisted matrices stay on the direct RunRrClustersWith
  // path.
  ClusteringOptions clustering;
  DependenceSource dependence_source = DependenceSource::kRandomizedResponse;
  bool use_paper_epsilon_formula = false;
  // kGeometricOrdinal: the per-attribute Expression (4) epsilon of the
  // geometric design. Must be > 0 and finite.
  double geometric_epsilon = 1.0;
};

// Optional per-attribute frequency-oracle backend selection
// (core/frequency_oracle.h). The default -- direct encoding with a
// derived epsilon -- IS the classic RR release path: the section never
// prints, every pre-oracle spec file keeps parsing, and the transcript
// stays bit-identical. Any non-default section routes the per-attribute
// mechanisms (independent, geometric-ordinal) through the oracle seam
// instead: per attribute, reports accumulate into support counts and the
// marginals come from the oracle's closed-form inversion. Frequency-only
// backends (sue, oue, olh) release no microdata, so they exclude
// adjustment, synthesis, streaming, the distributed policy, and
// output.randomized_csv.
struct FrequencyOracleSpec {
  OracleBackend backend = OracleBackend::kDirect;
  // Per-attribute epsilon of the oracle design. 0 (default) derives each
  // attribute's epsilon from the mechanism's own matrix design (the
  // Expression (4) level of the keep-probability or geometric design) --
  // the equal-epsilon backend comparison. A positive value replaces the
  // design with the backend's optimal parameters at exactly this level
  // for every attribute.
  double epsilon = 0.0;

  bool is_default() const {
    return backend == OracleBackend::kDirect && epsilon == 0.0;
  }
};

// Optional Algorithm 2 marginal adjustment over the randomized records.
struct AdjustmentSpec {
  bool enabled = false;
  int max_iterations = 100;
  double tolerance = 1e-9;
  // Explicit constraint groups as attribute-index sets; empty means one
  // group per mechanism unit (per attribute for independent/pram, per
  // cluster for clusters). Groups must reference existing attributes;
  // for independent/pram each group must be a singleton, and for
  // clusters each group must coincide with a realized cluster.
  std::vector<std::vector<size_t>> groups;
};

// Optional synthetic microdata output (Introduction / Section 3.2).
struct SyntheticSpec {
  bool enabled = false;
  // Records to synthesize; 0 means "match the input size".
  int64_t records = 0;
};

// Optional evaluation of the synthetic release against the input.
struct EvaluationSpec {
  bool utility_report = false;  // Requires synthetic.enabled.
  std::vector<double> sigmas = {0.1, 0.3, 0.5, 0.7, 0.9};
  int queries_per_sigma = 25;
  uint64_t seed = 1;
};

// How window boundaries are drawn over the report sequence.
enum class WindowKind {
  kTumbling,  // Disjoint windows of window_size consecutive reports.
  kSliding,   // Overlapping windows advancing by window_stride reports.
};

// Optional always-on collection mode: instead of one batch release, the
// plan runs as a streaming collector (release/streaming.h) that emits
// one estimation summary per window of arrived reports. Estimation is
// incremental -- windows are re-estimated from merged integer counts,
// never from the records -- and each released window charges its epsilon
// against budget.max_total_epsilon; when the cap would be exceeded the
// collector keeps counting but stops releasing (fail-closed, graceful
// degradation). Streaming supports the per-attribute mechanisms
// (independent, geometric-ordinal) and no post-processing sections.
struct StreamingSpec {
  bool enabled = false;
  WindowKind window_kind = WindowKind::kTumbling;
  // Reports per window. Required (> 0) when enabled.
  uint64_t window_size = 0;
  // Reports between consecutive window starts. Sliding only: must
  // divide window_size and be < window_size. 0 means window_size
  // (which is also the only legal tumbling value).
  uint64_t window_stride = 0;
  // Epsilon charged to the ledger per released window. 0 means "derive
  // from the design": the sum of the per-attribute Expression (4)
  // epsilons of the mechanism's matrices. A positive value is a
  // declared conservative accounting level and must be at least the
  // derived epsilon (checked when the plan runs, where the schema is
  // known).
  double window_epsilon = 0.0;
  // Stop emitting after this many windows; 0 means unbounded.
  uint64_t max_windows = 0;
};

// The single execution policy every stage obeys. This subsumes the
// per-stage seed/threads/shard knobs of the implementation layer:
// `seed` and `shard_size` are part of the randomness contract,
// `num_threads` never changes output (0 = one worker per core).
struct ExecutionPolicy {
  PolicyKind kind = PolicyKind::kSequential;
  uint64_t seed = 1;
  size_t num_threads = 0;       // kSharded only.
  size_t shard_size = 1 << 16;  // kSharded only.
  // Perturbation stream engine. kMt19937 (default) is the committed
  // transcript: sequential plans replay the reference Rng, sharded plans
  // the (seed, shard_size)-keyed stream family. kPhilox draws
  // element-addressed counter blocks instead, making sharded output
  // invariant under shard_size as well as num_threads; it requires
  // kind == kSharded (the sequential reference path is mt19937 by
  // definition) unless streaming is enabled -- the streaming collector
  // keys randomness per report and ignores `kind`.
  RngKind rng = RngKind::kMt19937;
  // kDistributed only. Worker processes the coordinator waits for before
  // perturbing; required >= 1 under kDistributed, must stay 0 otherwise.
  size_t num_workers = 0;
  // kDistributed only. Coordinator listen port; 0 picks an ephemeral
  // port (programmatic runs read it back from the coordinator).
  uint16_t listen_port = 0;
  // kDistributed only. Per-operation network deadline in milliseconds;
  // 0 means the transport default (net/socket.h kDefaultDeadlineMs).
  int64_t worker_deadline_ms = 0;
};

// Where to persist the products; empty paths mean "keep in memory only".
struct OutputSpec {
  std::string randomized_csv;
  std::string synthetic_csv;   // Requires synthetic.enabled.
  std::string artifacts_path;  // Serialized ReleaseArtifacts summary.
};

struct ReleaseSpec {
  DatasetSpec dataset;
  BudgetSpec budget;
  MechanismSpec mechanism;
  FrequencyOracleSpec frequency_oracle;
  AdjustmentSpec adjustment;
  SyntheticSpec synthetic;
  EvaluationSpec evaluation;
  StreamingSpec streaming;
  ExecutionPolicy execution;
  OutputSpec output;
};

bool operator==(const DatasetSpec& a, const DatasetSpec& b);
bool operator==(const BudgetSpec& a, const BudgetSpec& b);
bool operator==(const MechanismSpec& a, const MechanismSpec& b);
bool operator==(const FrequencyOracleSpec& a, const FrequencyOracleSpec& b);
bool operator==(const AdjustmentSpec& a, const AdjustmentSpec& b);
bool operator==(const SyntheticSpec& a, const SyntheticSpec& b);
bool operator==(const EvaluationSpec& a, const EvaluationSpec& b);
bool operator==(const StreamingSpec& a, const StreamingSpec& b);
bool operator==(const ExecutionPolicy& a, const ExecutionPolicy& b);
bool operator==(const OutputSpec& a, const OutputSpec& b);
bool operator==(const ReleaseSpec& a, const ReleaseSpec& b);
inline bool operator!=(const ReleaseSpec& a, const ReleaseSpec& b) {
  return !(a == b);
}

// Stable token names used by serialization, the CLI, and error messages.
const char* ToString(MechanismKind kind);
const char* ToString(PolicyKind kind);
const char* ToString(RngKind kind);
const char* ToString(DatasetSpec::Source source);
const char* ToString(DependenceSource source);
const char* ToString(WindowKind kind);
StatusOr<MechanismKind> MechanismKindFromString(std::string_view token);
StatusOr<PolicyKind> PolicyKindFromString(std::string_view token);
StatusOr<RngKind> RngKindFromString(std::string_view token);
StatusOr<WindowKind> WindowKindFromString(std::string_view token);
StatusOr<DatasetSpec::Source> DatasetSourceFromString(std::string_view token);
StatusOr<DependenceSource> DependenceSourceFromString(std::string_view token);

// Structural validation against a known attribute count (everything that
// does not need the realized clustering): parameter ranges, mechanism
// requirements, cross-section contradictions. ReleasePlanner calls this
// after resolving the dataset; exposed so tools can lint a spec without
// loading data (`num_attributes` = 0 skips the index checks).
Status ValidateReleaseSpec(const ReleaseSpec& spec, size_t num_attributes);

}  // namespace mdrr::release

#endif  // MDRR_RELEASE_SPEC_H_
