// mdrr_cli: command-line front end for the library.
//
//   mdrr_cli schema --input=data.csv [--no_header]
//       Infer and print the categorical schema of a CSV file.
//
//   mdrr_cli run ...
//       Run a full local-anonymization release through the declarative
//       release API (ReleaseSpec -> ReleasePlanner -> ReleaseArtifacts).
//       Two ways to say what to run:
//
//       flag mode:
//         --input=data.csv --method=independent|joint|clusters|pram
//         [--no_header] [--p=0.7] [--attrs=0,1,2 (joint)]
//         [--tv=50] [--td=0.1] [--dep=oracle|rr|securesum|pairwise]
//         [--dep_p=0.7 (assessment-round keep probability)]
//         [--budget=EPS] [--adjust] [--adjust_iters=100]
//         [--randomized_out=y.csv] [--synthetic_out=s.csv] [--report]
//         [--artifacts_out=a.txt] [--seed=1] [--threads=N] [--shard=S]
//         [--rng=mt19937|philox] [--oracle=de|sue|oue|olh]
//         [--oracle_epsilon=EPS]
//
//       --oracle selects the per-attribute frequency-oracle backend
//       (independent and geometric-ordinal methods only). The default
//       keeps the paper's direct-encoding RR path byte-for-byte;
//       sue/oue/olh publish closed-form marginals with no microdata.
//       --oracle_epsilon spends that epsilon per attribute (0 inherits
//       the per-attribute budget of the method's RR design, so backend
//       swaps compare at equal epsilon).
//       spec mode:
//         --spec=release.spec     (a serialized ReleaseSpec; all other
//                                  release flags are ignored)
//
//       Passing --threads selects the sharded execution policy: every
//       stage runs through the BatchPerturbationEngine contracts with N
//       workers (0 = one per core), bit-identical for any N at a fixed
//       --seed (--shard is part of the randomness contract). Omitting it
//       selects the sequential policy, which is bit-identical to calling
//       the stage functions directly with one Rng(seed). --rng=philox
//       switches perturbation to the counter-based engine (sharded or
//       streaming runs only): a different deterministic transcript that
//       is additionally invariant under --shard.
//
//       Coordinator mode for a multi-process release:
//         --listen=PORT [--workers=N] [--worker_deadline_ms=MS]
//       forces the distributed execution policy: the CLI binds PORT
//       (0 = ephemeral), waits for N tools/mdrr_worker processes to
//       connect, and runs the release with column perturbation farmed
//       out over TCP -- bit-identical to --threads at the same --seed /
//       --shard / --rng for any worker count. Any worker failure aborts
//       the release before output is written.
//
//       A spec with streaming.enabled runs through the windowed streaming
//       collector instead of a batch plan: the spec's dataset replays as
//       a fixed arrival schedule and stdout is the per-window transcript
//       ([--ingest_threads=T] [--shards=S] [--reports=N] tune throughput
//       and stream length, never the output). The full service -- pause,
//       snapshot, resume, verify -- is tools/mdrr_collectd.cc.
//
//       --dump-spec prints the ReleaseSpec equivalent of the given flags
//       (or normalizes --spec) and exits without running -- the
//       migration aid from flag soup to spec files.
//
//   mdrr_cli sweep --specs=DIR
//       Run every release spec file in DIR (sorted by name) and emit one
//       combined utility/risk table: per spec, the mechanism, the
//       epsilon actually spent, and the mean/max per-attribute total
//       variation distance of the released marginal estimates against
//       the original data. Streaming specs replay through the windowed
//       collector and report their ledger. A spec that fails to parse,
//       validate, or run becomes an error row (exit status 1) without
//       stopping the sweep.
//
//   mdrr_cli risk --r=4 [--p=0.7] [--prior=0.4,0.3,0.2,0.1]
//       Disclosure-risk analysis of a KeepUniform design: epsilon,
//       posterior best-guess confidences, expected attacker success.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "mdrr/common/flags.h"
#include "mdrr/common/string_util.h"
#include "mdrr/core/clustering.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/risk.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/csv.h"
#include "mdrr/protocol/stream_ingest.h"
#include "mdrr/release/planner.h"
#include "mdrr/release/serialization.h"

namespace {

using mdrr::Dataset;
using mdrr::FlagSet;
using mdrr::Status;
using mdrr::StatusOr;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<Dataset> LoadInput(const FlagSet& flags) {
  std::string path = flags.GetString("input", "");
  if (path.empty()) {
    return Status::InvalidArgument("--input=FILE is required");
  }
  return mdrr::ReadCsvDataset(path, !flags.GetBool("no_header", false));
}

int CmdSchema(const FlagSet& flags) {
  auto dataset = LoadInput(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("%zu records, %zu attributes\n", dataset.value().num_rows(),
              dataset.value().num_attributes());
  uint64_t domain = 1;
  for (size_t j = 0; j < dataset.value().num_attributes(); ++j) {
    const mdrr::Attribute& a = dataset.value().attribute(j);
    domain *= a.cardinality();
    std::printf("  %-24s %3zu categories: %s%s\n", a.name.c_str(),
                a.cardinality(),
                mdrr::Join(std::vector<std::string>(
                               a.categories.begin(),
                               a.categories.begin() +
                                   std::min<size_t>(6, a.cardinality())),
                           ", ")
                    .c_str(),
                a.cardinality() > 6 ? ", ..." : "");
  }
  std::printf("joint domain: %llu combinations\n",
              static_cast<unsigned long long>(domain));
  return 0;
}

void PrintMarginals(const Dataset& released,
                    const std::vector<std::vector<double>>& estimates) {
  for (size_t j = 0; j < released.num_attributes(); ++j) {
    const mdrr::Attribute& a = released.attribute(j);
    std::printf("  %s:\n", a.name.c_str());
    for (size_t v = 0; v < a.cardinality(); ++v) {
      std::printf("    %-24s %.4f\n", a.categories[v].c_str(),
                  estimates[j][v]);
    }
  }
}

// The ReleaseSpec equivalent of the `run` flag set.
StatusOr<mdrr::release::ReleaseSpec> SpecFromFlags(const FlagSet& flags) {
  namespace release = mdrr::release;
  release::ReleaseSpec spec;

  spec.dataset.source = release::DatasetSpec::Source::kCsvFile;
  spec.dataset.csv_path = flags.GetString("input", "");
  spec.dataset.csv_has_header = !flags.GetBool("no_header", false);

  spec.budget.keep_probability = flags.GetDouble("p", 0.7);
  // The assessment round's keep probability is its own knob with its own
  // default (matching RrClustersOptions), NOT tied to --p: pre-spec
  // command lines must keep producing the same release.
  spec.budget.dependence_keep_probability = flags.GetDouble("dep_p", 0.7);
  if (flags.Has("budget")) {
    spec.budget.max_total_epsilon = flags.GetDouble("budget", 0.0);
  }

  MDRR_ASSIGN_OR_RETURN(
      spec.mechanism.kind,
      release::MechanismKindFromString(flags.GetString("method", "clusters")));
  if (flags.Has("attrs")) {
    for (const std::string& part :
         mdrr::Split(flags.GetString("attrs", ""), ',')) {
      MDRR_ASSIGN_OR_RETURN(int64_t index, mdrr::ParseInt64(part));
      if (index < 0) {
        return Status::InvalidArgument("--attrs indices must be >= 0");
      }
      spec.mechanism.joint_attributes.push_back(static_cast<size_t>(index));
    }
  }
  spec.mechanism.clustering = mdrr::ClusteringOptions{
      flags.GetDouble("tv", 50.0), flags.GetDouble("td", 0.1)};
  MDRR_ASSIGN_OR_RETURN(
      spec.mechanism.dependence_source,
      release::DependenceSourceFromString(flags.GetString("dep", "rr")));

  spec.adjustment.enabled = flags.GetBool("adjust", false);
  spec.adjustment.max_iterations =
      static_cast<int>(flags.GetInt("adjust_iters", 100));

  spec.synthetic.enabled = flags.Has("synthetic_out");
  spec.evaluation.utility_report = flags.GetBool("report", false);

  // Any explicit --threads (including 1) selects the sharded policy, so
  // the flag's value never changes the output.
  if (flags.Has("threads")) {
    const int64_t threads = flags.GetInt("threads", 0);
    if (threads < 0) {
      return Status::InvalidArgument("--threads must be >= 0");
    }
    spec.execution.kind = release::PolicyKind::kSharded;
    spec.execution.num_threads = static_cast<size_t>(threads);
    spec.execution.shard_size =
        static_cast<size_t>(flags.GetInt("shard", 1 << 16));
  }
  spec.execution.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  MDRR_ASSIGN_OR_RETURN(
      spec.execution.rng,
      release::RngKindFromString(flags.GetString("rng", "mt19937")));

  // The frequency-oracle backend. `--oracle=de` alone is the default
  // section (direct encoding at the design's own budget), so pre-oracle
  // command lines keep their exact transcripts.
  if (flags.Has("oracle")) {
    MDRR_ASSIGN_OR_RETURN(
        spec.frequency_oracle.backend,
        mdrr::OracleBackendFromString(flags.GetString("oracle", "de")));
  }
  if (flags.Has("oracle_epsilon")) {
    spec.frequency_oracle.epsilon = flags.GetDouble("oracle_epsilon", 0.0);
  }

  spec.output.randomized_csv = flags.GetString("randomized_out", "");
  spec.output.synthetic_csv = flags.GetString("synthetic_out", "");
  spec.output.artifacts_path = flags.GetString("artifacts_out", "");
  return spec;
}

// A streaming spec replays its dataset through the windowed collector
// (protocol::RunStreamingReplay) instead of a batch ReleasePlan. Stdout
// is the window transcript -- byte-identical for any --ingest_threads /
// --shards at a fixed spec -- plus the ledger line.
int RunStreamingSpec(const FlagSet& flags,
                     const mdrr::release::ReleaseSpec& spec) {
  namespace release = mdrr::release;
  StatusOr<Dataset> dataset = [&]() -> StatusOr<Dataset> {
    switch (spec.dataset.source) {
      case release::DatasetSpec::Source::kCsvFile:
        return mdrr::ReadCsvDataset(spec.dataset.csv_path,
                                    spec.dataset.csv_has_header);
      case release::DatasetSpec::Source::kSyntheticAdult:
        return mdrr::SynthesizeAdult(spec.dataset.synthetic_records,
                                     spec.dataset.synthetic_seed);
      case release::DatasetSpec::Source::kProvided:
        return Status::InvalidArgument(
            "streaming runs need an owned dataset source (csv or "
            "synthetic-adult)");
    }
    return Status::Internal("unknown dataset source");
  }();
  if (!dataset.ok()) return Fail(dataset.status());

  mdrr::protocol::StreamingReplayOptions options;
  options.num_ingest_threads =
      static_cast<size_t>(flags.GetInt("ingest_threads", 1));
  options.collector.num_shards =
      static_cast<size_t>(flags.GetInt("shards", 1));
  options.total_reports = static_cast<uint64_t>(flags.GetInt("reports", 0));
  auto run = mdrr::protocol::RunStreamingReplay(spec, dataset.value(),
                                                options);
  if (!run.ok()) return Fail(run.status());
  std::fputs(release::PrintStreamWindows(run.value().windows).c_str(),
             stdout);
  std::printf("streamed %llu reports; epsilon spent %.6g\n",
              static_cast<unsigned long long>(run.value().reports_ingested),
              run.value().epsilon_spent);
  return 0;
}

int CmdRun(const FlagSet& flags) {
  namespace release = mdrr::release;

  mdrr::release::ReleaseSpec spec;
  if (flags.Has("spec")) {
    auto parsed = release::ReadReleaseSpec(flags.GetString("spec", ""));
    if (!parsed.ok()) return Fail(parsed.status());
    spec = std::move(parsed).value();
  } else {
    auto built = SpecFromFlags(flags);
    if (!built.ok()) return Fail(built.status());
    spec = std::move(built).value();
  }

  // Coordinator mode: --listen turns the run into a distributed release
  // (the process listens, waits for --workers worker processes, and
  // farms column perturbation out to them). The transcript stays
  // bit-identical to the sharded policy at the same (seed, shard,
  // rng) for any worker count.
  if (flags.Has("listen")) {
    const int64_t port = flags.GetInt("listen", 0);
    if (port < 0 || port > 65535) {
      return Fail(Status::InvalidArgument("--listen must be 0..65535"));
    }
    spec.execution.kind = release::PolicyKind::kDistributed;
    spec.execution.listen_port = static_cast<uint16_t>(port);
  }
  if (flags.Has("workers")) {
    const int64_t workers = flags.GetInt("workers", 0);
    if (workers < 1) {
      return Fail(Status::InvalidArgument("--workers must be >= 1"));
    }
    spec.execution.num_workers = static_cast<size_t>(workers);
  }
  if (flags.Has("worker_deadline_ms")) {
    spec.execution.worker_deadline_ms = flags.GetInt("worker_deadline_ms", 0);
  }

  if (flags.GetBool("dump-spec", flags.GetBool("dump_spec", false))) {
    std::fputs(release::PrintReleaseSpec(spec).c_str(), stdout);
    return 0;
  }

  if (spec.streaming.enabled) return RunStreamingSpec(flags, spec);

  auto plan = release::ReleasePlanner::Plan(spec);
  if (!plan.ok()) return Fail(plan.status());
  auto artifacts = plan.value().Run();
  if (!artifacts.ok()) return Fail(artifacts.status());
  const release::ReleaseArtifacts& a = artifacts.value();

  if (!a.clustering.empty()) {
    std::printf("clusters: %s\n",
                mdrr::ClusteringToString(a.randomized, a.clustering).c_str());
  }
  std::printf("estimated marginal distributions:\n");
  // Frequency-only oracle backends (sue|oue|olh) release no microdata,
  // so the schema for labeling comes from the input dataset instead.
  PrintMarginals(a.randomized.num_attributes() > 0 ? a.randomized
                                                   : plan.value().dataset(),
                 a.marginal_estimates);

  mdrr::PrivacyAccountant accountant;
  if (a.dependence_epsilon > 0) {
    accountant.Spend("dependence assessment", a.dependence_epsilon);
  }
  accountant.Spend(std::string(release::ToString(spec.mechanism.kind)) +
                       " release",
                   a.release_epsilon);
  std::printf("privacy ledger:\n%s", accountant.Report().c_str());

  if (a.adjustment.has_value()) {
    std::printf("adjustment: %d iterations, %s (max marginal gap %.3g)\n",
                a.adjustment->iterations,
                a.adjustment->converged ? "converged" : "NOT converged",
                a.adjustment->max_marginal_gap);
  }
  if (a.utility.has_value()) {
    std::printf("utility report (synthetic vs original):\n%s",
                a.utility->ToString(plan.value().dataset()).c_str());
  }
  // Timings go to stderr: stdout stays byte-identical across runs and
  // thread counts at a fixed seed.
  for (const release::StageTiming& timing : a.timings) {
    std::fprintf(stderr, "stage %-10s %8.3fs\n", timing.stage.c_str(),
                 timing.seconds);
  }
  if (!spec.output.randomized_csv.empty()) {
    std::printf("wrote randomized data to %s\n",
                spec.output.randomized_csv.c_str());
  }
  if (!spec.output.synthetic_csv.empty()) {
    std::printf("wrote synthetic data to %s\n",
                spec.output.synthetic_csv.c_str());
  }
  if (!spec.output.artifacts_path.empty()) {
    std::printf("wrote artifacts summary to %s\n",
                spec.output.artifacts_path.c_str());
  }
  return 0;
}

// Mean and max per-attribute total variation distance between released
// marginal estimates and the empirical marginals of `original`.
void MarginalTvStats(const Dataset& original,
                     const std::vector<std::vector<double>>& estimates,
                     double* mean_tv, double* max_tv) {
  *mean_tv = 0.0;
  *max_tv = 0.0;
  const size_t m = std::min(original.num_attributes(), estimates.size());
  for (size_t j = 0; j < m; ++j) {
    const std::vector<double> truth = mdrr::EmpiricalDistribution(
        original.column(j), original.attribute(j).cardinality());
    double tv = 0.0;
    for (size_t v = 0; v < truth.size() && v < estimates[j].size(); ++v) {
      tv += std::abs(estimates[j][v] - truth[v]);
    }
    tv *= 0.5;
    *mean_tv += tv;
    *max_tv = std::max(*max_tv, tv);
  }
  if (m > 0) *mean_tv /= static_cast<double>(m);
}

// Runs every spec file in --specs=DIR and prints one combined
// utility/risk table. Failures become error rows; the sweep continues.
int CmdSweep(const FlagSet& flags) {
  namespace fs = std::filesystem;
  namespace release = mdrr::release;
  const std::string dir = flags.GetString("specs", "");
  if (dir.empty()) {
    return Fail(Status::InvalidArgument("--specs=DIR is required"));
  }
  std::error_code ec;
  std::vector<fs::path> files;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file()) files.push_back(it->path());
  }
  if (ec) {
    return Fail(Status::InvalidArgument("cannot read --specs directory '" +
                                        dir + "': " + ec.message()));
  }
  if (files.empty()) {
    return Fail(Status::InvalidArgument("no spec files in '" + dir + "'"));
  }
  std::sort(files.begin(), files.end());

  std::printf("%-28s %-24s %10s %10s %10s\n", "spec", "mechanism", "epsilon",
              "mean_tv", "max_tv");
  int failures = 0;
  for (const fs::path& path : files) {
    const std::string name = path.filename().string();
    auto report_error = [&](const Status& status) {
      std::printf("%-28s error: %s\n", name.c_str(),
                  status.ToString().c_str());
      ++failures;
    };

    auto parsed = release::ReadReleaseSpec(path.string());
    if (!parsed.ok()) {
      report_error(parsed.status());
      continue;
    }
    release::ReleaseSpec spec = std::move(parsed).value();

    if (spec.streaming.enabled) {
      auto dataset = [&]() -> StatusOr<Dataset> {
        switch (spec.dataset.source) {
          case release::DatasetSpec::Source::kCsvFile:
            return mdrr::ReadCsvDataset(spec.dataset.csv_path,
                                        spec.dataset.csv_has_header);
          case release::DatasetSpec::Source::kSyntheticAdult:
            return mdrr::SynthesizeAdult(spec.dataset.synthetic_records,
                                         spec.dataset.synthetic_seed);
          case release::DatasetSpec::Source::kProvided:
            return Status::InvalidArgument(
                "streaming sweep entries need an owned dataset source");
        }
        return Status::Internal("unknown dataset source");
      }();
      if (!dataset.ok()) {
        report_error(dataset.status());
        continue;
      }
      auto run = mdrr::protocol::RunStreamingReplay(
          spec, dataset.value(), mdrr::protocol::StreamingReplayOptions{});
      if (!run.ok()) {
        report_error(run.status());
        continue;
      }
      // Coarse utility: each released window estimates its own slice of
      // the stream, compared here against the full-stream marginals.
      double mean_tv = 0.0;
      double max_tv = 0.0;
      size_t released = 0;
      for (const release::StreamWindow& window : run.value().windows) {
        if (!window.released) continue;
        double window_mean = 0.0;
        double window_max = 0.0;
        MarginalTvStats(dataset.value(),
                        window.artifacts.marginal_estimates, &window_mean,
                        &window_max);
        mean_tv += window_mean;
        max_tv = std::max(max_tv, window_max);
        ++released;
      }
      if (released > 0) mean_tv /= static_cast<double>(released);
      std::printf("%-28s %-24s %10.4f %10.4f %10.4f\n", name.c_str(),
                  "streaming", run.value().epsilon_spent, mean_tv, max_tv);
      continue;
    }

    auto plan = release::ReleasePlanner::Plan(spec);
    if (!plan.ok()) {
      report_error(plan.status());
      continue;
    }
    auto artifacts = plan.value().Run();
    if (!artifacts.ok()) {
      report_error(artifacts.status());
      continue;
    }
    const release::ReleaseArtifacts& a = artifacts.value();
    // Joint releases publish a sub-schema; project the truth onto the
    // attributes the mechanism actually released.
    const Dataset original =
        a.joint.has_value()
            ? plan.value().dataset().Project(a.joint->attributes)
            : plan.value().dataset();
    double mean_tv = 0.0;
    double max_tv = 0.0;
    MarginalTvStats(original, a.marginal_estimates, &mean_tv, &max_tv);
    std::string mechanism = release::ToString(spec.mechanism.kind);
    if (!spec.frequency_oracle.is_default()) {
      mechanism += std::string("+") +
                   mdrr::ToString(spec.frequency_oracle.backend);
    }
    std::printf("%-28s %-24s %10.4f %10.4f %10.4f\n", name.c_str(),
                mechanism.c_str(),
                a.release_epsilon + a.dependence_epsilon, mean_tv, max_tv);
  }
  return failures == 0 ? 0 : 1;
}

int CmdRisk(const FlagSet& flags) {
  const size_t r = static_cast<size_t>(flags.GetInt("r", 4));
  const double p = flags.GetDouble("p", 0.7);
  if (r < 2) return Fail(Status::InvalidArgument("--r must be >= 2"));

  std::vector<double> prior(r, 1.0 / static_cast<double>(r));
  std::string prior_flag = flags.GetString("prior", "");
  if (!prior_flag.empty()) {
    std::vector<std::string> parts = mdrr::Split(prior_flag, ',');
    if (parts.size() != r) {
      return Fail(Status::InvalidArgument(
          "--prior must list exactly r probabilities"));
    }
    for (size_t v = 0; v < r; ++v) {
      auto parsed = mdrr::ParseDouble(parts[v]);
      if (!parsed.ok()) return Fail(parsed.status());
      prior[v] = parsed.value();
    }
  }

  mdrr::RrMatrix matrix = mdrr::RrMatrix::KeepUniform(r, p);
  std::printf("design: KeepUniform(r=%zu, p=%.2f)\n", r, p);
  std::printf("  epsilon (Expression 4):        %.4f\n", matrix.Epsilon());
  std::printf("  condition number Pmax/Pmin:    %.4f\n",
              matrix.ConditionNumber());

  auto confidence = mdrr::BestGuessConfidence(matrix, prior);
  if (!confidence.ok()) return Fail(confidence.status());
  auto expected = mdrr::ExpectedDisclosureRisk(matrix, prior);
  if (!expected.ok()) return Fail(expected.status());

  std::printf("  prior baseline attacker success: %.4f\n",
              mdrr::PriorBaselineRisk(prior));
  std::printf("  expected attacker success:       %.4f\n",
              expected.value());
  std::printf("  best-guess confidence per observed value:\n");
  for (size_t v = 0; v < r; ++v) {
    std::printf("    Y=%zu: %.4f\n", v, confidence.value()[v]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mdrr_cli <schema|run|sweep|risk> [--flags]\n"
                 "see the header of tools/mdrr_cli.cc for details\n");
    return 1;
  }
  std::string command = argv[1];
  FlagSet flags;
  flags.Parse(argc, argv);
  if (command == "schema") return CmdSchema(flags);
  if (command == "run") return CmdRun(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "risk") return CmdRisk(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
