// mdrr_cli: command-line front end for the library.
//
//   mdrr_cli schema --input=data.csv [--no_header]
//       Infer and print the categorical schema of a CSV file.
//
//   mdrr_cli run --input=data.csv --method=independent|clusters
//            [--no_header] [--p=0.7] [--tv=50] [--td=0.1]
//            [--dep=oracle|rr|securesum|pairwise]
//            [--randomized_out=y.csv] [--synthetic_out=s.csv] [--seed=1]
//            [--threads=N] [--shard=S]
//       Run a full local-anonymization pipeline: randomize every record,
//       print the estimated marginals and the privacy ledger, optionally
//       write the randomized and/or synthetic data sets. Passing
//       --threads routes the WHOLE release through
//       BatchPerturbationEngine with N workers (0 means one per
//       hardware core): perturbation, the dependence-assessment
//       statistics, and the synthetic release all shard, with output
//       bit-identical for any N at a fixed --seed (--shard picks the
//       records-per-shard grain, which IS part of the randomness
//       contract). Omitting the flag runs the sequential column
//       protocols, which draw from a different stream than the engine.
//
//   mdrr_cli risk --r=4 [--p=0.7] [--prior=0.4,0.3,0.2,0.1]
//       Disclosure-risk analysis of a KeepUniform design: epsilon,
//       posterior best-guess confidences, expected attacker success.

#include <cstdio>
#include <string>
#include <vector>

#include "mdrr/common/flags.h"
#include "mdrr/common/string_util.h"
#include "mdrr/core/batch_engine.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/risk.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/dataset/csv.h"
#include "mdrr/eval/utility_report.h"
#include "mdrr/rng/rng.h"

namespace {

using mdrr::Dataset;
using mdrr::FlagSet;
using mdrr::Status;
using mdrr::StatusOr;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

StatusOr<Dataset> LoadInput(const FlagSet& flags) {
  std::string path = flags.GetString("input", "");
  if (path.empty()) {
    return Status::InvalidArgument("--input=FILE is required");
  }
  MDRR_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                        mdrr::ReadCsvRows(path));
  if (rows.empty()) {
    return Status::InvalidArgument("input file is empty");
  }
  std::vector<std::string> names;
  if (flags.GetBool("no_header", false)) {
    for (size_t j = 0; j < rows[0].size(); ++j) {
      names.push_back("column" + std::to_string(j));
    }
  } else {
    names = rows.front();
    rows.erase(rows.begin());
  }
  return mdrr::DatasetFromRows(rows, names);
}

int CmdSchema(const FlagSet& flags) {
  auto dataset = LoadInput(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  std::printf("%zu records, %zu attributes\n", dataset.value().num_rows(),
              dataset.value().num_attributes());
  uint64_t domain = 1;
  for (size_t j = 0; j < dataset.value().num_attributes(); ++j) {
    const mdrr::Attribute& a = dataset.value().attribute(j);
    domain *= a.cardinality();
    std::printf("  %-24s %3zu categories: %s%s\n", a.name.c_str(),
                a.cardinality(),
                mdrr::Join(std::vector<std::string>(
                               a.categories.begin(),
                               a.categories.begin() +
                                   std::min<size_t>(6, a.cardinality())),
                           ", ")
                    .c_str(),
                a.cardinality() > 6 ? ", ..." : "");
  }
  std::printf("joint domain: %llu combinations\n",
              static_cast<unsigned long long>(domain));
  return 0;
}

void PrintMarginals(const Dataset& dataset,
                    const std::vector<std::vector<double>>& estimates) {
  for (size_t j = 0; j < dataset.num_attributes(); ++j) {
    const mdrr::Attribute& a = dataset.attribute(j);
    std::printf("  %s:\n", a.name.c_str());
    for (size_t v = 0; v < a.cardinality(); ++v) {
      std::printf("    %-24s %.4f\n", a.categories[v].c_str(),
                  estimates[j][v]);
    }
  }
}

int CmdRun(const FlagSet& flags) {
  auto dataset = LoadInput(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  const Dataset& data = dataset.value();

  const std::string method = flags.GetString("method", "clusters");
  const double p = flags.GetDouble("p", 0.7);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  mdrr::Rng rng(seed);

  // Any explicit --threads (including 1) routes perturbation through the
  // sharded batch engine, so the flag's value never changes the output.
  const bool use_engine = flags.Has("threads");
  const int64_t threads = flags.GetInt("threads", 0);
  if (use_engine && threads < 0) {
    return Fail(Status::InvalidArgument("--threads must be >= 0"));
  }
  mdrr::BatchPerturbationOptions engine_options;
  engine_options.seed = seed;
  engine_options.num_threads = static_cast<size_t>(threads);
  engine_options.shard_size =
      static_cast<size_t>(flags.GetInt("shard", 1 << 16));
  mdrr::BatchPerturbationEngine engine(engine_options);

  mdrr::PrivacyAccountant accountant;
  Dataset randomized;
  std::vector<std::vector<double>> marginal_estimates;
  StatusOr<Dataset> synthetic = Status::NotFound("not generated");

  if (method == "independent") {
    auto result =
        use_engine
            ? engine.RunIndependent(data, mdrr::RrIndependentOptions{p})
            : mdrr::RunRrIndependent(data, mdrr::RrIndependentOptions{p},
                                     rng);
    if (!result.ok()) return Fail(result.status());
    accountant.Spend("RR-Independent release",
                     result.value().total_epsilon);
    randomized = result.value().randomized;
    marginal_estimates = result.value().estimated;
    if (flags.Has("synthetic_out")) {
      synthetic =
          use_engine
              ? engine.SynthesizeIndependent(
                    *result, static_cast<int64_t>(data.num_rows()))
              : mdrr::SynthesizeFromIndependent(
                    *result, static_cast<int64_t>(data.num_rows()), rng);
    }
  } else if (method == "clusters") {
    mdrr::RrClustersOptions options;
    options.keep_probability = p;
    options.clustering = mdrr::ClusteringOptions{
        flags.GetDouble("tv", 50.0), flags.GetDouble("td", 0.1)};
    const std::string dep = flags.GetString("dep", "rr");
    if (dep == "oracle") {
      options.dependence_source = mdrr::DependenceSource::kOracle;
    } else if (dep == "rr") {
      options.dependence_source =
          mdrr::DependenceSource::kRandomizedResponse;
    } else if (dep == "securesum") {
      options.dependence_source = mdrr::DependenceSource::kSecureSum;
    } else if (dep == "pairwise") {
      options.dependence_source = mdrr::DependenceSource::kPairwiseRr;
    } else {
      return Fail(Status::InvalidArgument("unknown --dep=" + dep));
    }
    auto result = use_engine ? engine.RunClusters(data, options)
                             : mdrr::RunRrClusters(data, options, rng);
    if (!result.ok()) return Fail(result.status());
    std::printf("clusters: %s\n",
                mdrr::ClusteringToString(data, result.value().clusters)
                    .c_str());
    accountant.Spend("dependence assessment",
                     result.value().dependence_epsilon);
    accountant.Spend("cluster-wise RR release",
                     result.value().release_epsilon);
    randomized = result.value().randomized;
    // Per-attribute marginals from the cluster joints.
    marginal_estimates.resize(data.num_attributes());
    for (size_t c = 0; c < result.value().clusters.size(); ++c) {
      const auto& members = result.value().clusters[c];
      const mdrr::RrJointResult& joint = result.value().cluster_results[c];
      for (size_t position = 0; position < members.size(); ++position) {
        marginal_estimates[members[position]] =
            joint.domain.MarginalizeTo(joint.estimated, position);
      }
    }
    if (flags.Has("synthetic_out")) {
      synthetic = use_engine
                      ? engine.SynthesizeClusters(
                            *result, static_cast<int64_t>(data.num_rows()))
                      : mdrr::SynthesizeFromClusters(
                            *result, static_cast<int64_t>(data.num_rows()),
                            rng);
    }
  } else {
    return Fail(Status::InvalidArgument("unknown --method=" + method));
  }

  std::printf("estimated marginal distributions:\n");
  PrintMarginals(data, marginal_estimates);
  std::printf("privacy ledger:\n%s", accountant.Report().c_str());

  std::string randomized_out = flags.GetString("randomized_out", "");
  if (!randomized_out.empty()) {
    Status s = mdrr::WriteCsv(randomized, randomized_out);
    if (!s.ok()) return Fail(s);
    std::printf("wrote randomized data to %s\n", randomized_out.c_str());
  }
  std::string synthetic_out = flags.GetString("synthetic_out", "");
  if (!synthetic_out.empty()) {
    if (!synthetic.ok()) return Fail(synthetic.status());
    Status s = mdrr::WriteCsv(synthetic.value(), synthetic_out);
    if (!s.ok()) return Fail(s);
    std::printf("wrote synthetic data to %s\n", synthetic_out.c_str());
    if (flags.GetBool("report", false)) {
      mdrr::eval::UtilityReportOptions report_options;
      auto report = mdrr::eval::BuildUtilityReport(data, synthetic.value(),
                                                   report_options);
      if (!report.ok()) return Fail(report.status());
      std::printf("utility report (synthetic vs original):\n%s",
                  report.value().ToString(data).c_str());
    }
  }
  return 0;
}

int CmdRisk(const FlagSet& flags) {
  const size_t r = static_cast<size_t>(flags.GetInt("r", 4));
  const double p = flags.GetDouble("p", 0.7);
  if (r < 2) return Fail(Status::InvalidArgument("--r must be >= 2"));

  std::vector<double> prior(r, 1.0 / static_cast<double>(r));
  std::string prior_flag = flags.GetString("prior", "");
  if (!prior_flag.empty()) {
    std::vector<std::string> parts = mdrr::Split(prior_flag, ',');
    if (parts.size() != r) {
      return Fail(Status::InvalidArgument(
          "--prior must list exactly r probabilities"));
    }
    for (size_t v = 0; v < r; ++v) {
      auto parsed = mdrr::ParseDouble(parts[v]);
      if (!parsed.ok()) return Fail(parsed.status());
      prior[v] = parsed.value();
    }
  }

  mdrr::RrMatrix matrix = mdrr::RrMatrix::KeepUniform(r, p);
  std::printf("design: KeepUniform(r=%zu, p=%.2f)\n", r, p);
  std::printf("  epsilon (Expression 4):        %.4f\n", matrix.Epsilon());
  std::printf("  condition number Pmax/Pmin:    %.4f\n",
              matrix.ConditionNumber());

  auto confidence = mdrr::BestGuessConfidence(matrix, prior);
  if (!confidence.ok()) return Fail(confidence.status());
  auto expected = mdrr::ExpectedDisclosureRisk(matrix, prior);
  if (!expected.ok()) return Fail(expected.status());

  std::printf("  prior baseline attacker success: %.4f\n",
              mdrr::PriorBaselineRisk(prior));
  std::printf("  expected attacker success:       %.4f\n",
              expected.value());
  std::printf("  best-guess confidence per observed value:\n");
  for (size_t v = 0; v < r; ++v) {
    std::printf("    Y=%zu: %.4f\n", v, confidence.value()[v]);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mdrr_cli <schema|run|risk> [--flags]\n"
                 "see the header of tools/mdrr_cli.cc for details\n");
    return 1;
  }
  std::string command = argv[1];
  FlagSet flags;
  flags.Parse(argc, argv);
  if (command == "schema") return CmdSchema(flags);
  if (command == "run") return CmdRun(flags);
  if (command == "risk") return CmdRisk(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
