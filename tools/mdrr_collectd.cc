// mdrr_collectd: the always-on streaming collector service.
//
//   mdrr_collectd --spec=stream.spec --input=reports.csv [--no_header]
//       [--reports=N]          total reports to stream (0 = one per row;
//                              beyond num_rows the replay wraps around)
//       [--ingest_threads=T]   producer threads (never changes output)
//       [--shards=S]           ingest shards / drain threads
//       [--ring_buckets=B]     live buckets in the count ring
//       [--pause_at=N]         stop before sequence N and snapshot
//       [--snapshot_out=FILE]  where the pause snapshot goes
//       [--resume=FILE]        continue from a saved snapshot
//       [--windows_out=FILE]   write the window transcript here too
//       [--verify_replay]      re-run single-threaded, require the
//                              transcripts to match bit for bit
//
// The spec must have streaming.enabled; parties are simulated by
// replaying the CSV rows as a fixed arrival schedule (report s = row
// s % num_rows perturbed with sequence-keyed randomness), so stdout is
// byte-identical for any --ingest_threads / --shards at a fixed spec.
// A --pause_at run plus a --resume run produces exactly the windows of
// the uninterrupted run -- the snapshot carries the counts, the epsilon
// ledger, and the sequence cursor.
//
// Exit status: 0 on success (including budget-suppressed windows --
// that is the fail-closed degraded mode, not an error), 1 otherwise.

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "mdrr/common/flags.h"
#include "mdrr/dataset/csv.h"
#include "mdrr/protocol/stream_ingest.h"
#include "mdrr/release/serialization.h"

namespace {

using mdrr::Dataset;
using mdrr::FlagSet;
using mdrr::Status;
using mdrr::StatusOr;
namespace release = mdrr::release;
namespace protocol = mdrr::protocol;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteFile(const std::string& text, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  file << text;
  if (!file.good()) {
    return Status::IoError("write failure on '" + path + "'");
  }
  return Status::OK();
}

StatusOr<protocol::StreamingReplayResult> Run(
    const release::ReleaseSpec& spec, const Dataset& dataset,
    const FlagSet& flags, size_t ingest_threads,
    const release::StreamingSnapshot* resume) {
  protocol::StreamingReplayOptions options;
  options.num_ingest_threads = ingest_threads;
  options.collector.num_shards =
      static_cast<size_t>(flags.GetInt("shards", 1));
  options.collector.ring_buckets =
      static_cast<size_t>(flags.GetInt("ring_buckets", 4));
  options.total_reports = static_cast<uint64_t>(flags.GetInt("reports", 0));
  options.pause_at = static_cast<uint64_t>(flags.GetInt("pause_at", 0));
  options.resume = resume;
  return protocol::RunStreamingReplay(spec, dataset, options);
}

int Main(const FlagSet& flags) {
  const std::string spec_path = flags.GetString("spec", "");
  const std::string input_path = flags.GetString("input", "");
  if (spec_path.empty() || input_path.empty()) {
    std::fprintf(stderr,
                 "usage: mdrr_collectd --spec=stream.spec --input=data.csv "
                 "[--flags]\nsee the header of tools/mdrr_collectd.cc\n");
    return 1;
  }

  auto spec = release::ReadReleaseSpec(spec_path);
  if (!spec.ok()) return Fail(spec.status());
  if (!spec.value().streaming.enabled) {
    return Fail(Status::InvalidArgument(
        "the spec has streaming disabled; batch specs run through "
        "`mdrr_cli run --spec=...`"));
  }
  auto dataset =
      mdrr::ReadCsvDataset(input_path, !flags.GetBool("no_header", false));
  if (!dataset.ok()) return Fail(dataset.status());

  release::StreamingSnapshot resume_snapshot;
  const release::StreamingSnapshot* resume = nullptr;
  if (flags.Has("resume")) {
    auto loaded =
        release::ReadStreamingSnapshot(flags.GetString("resume", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    resume_snapshot = std::move(loaded).value();
    resume = &resume_snapshot;
  }

  const size_t ingest_threads =
      static_cast<size_t>(flags.GetInt("ingest_threads", 1));
  auto run = Run(spec.value(), dataset.value(), flags, ingest_threads,
                 resume);
  if (!run.ok()) return Fail(run.status());
  const protocol::StreamingReplayResult& result = run.value();

  const std::string transcript = release::PrintStreamWindows(result.windows);
  std::fputs(transcript.c_str(), stdout);
  std::printf("ingested %llu reports (sequences %llu..%llu); "
              "epsilon spent %.6g\n",
              static_cast<unsigned long long>(result.reports_ingested),
              static_cast<unsigned long long>(result.first_sequence),
              static_cast<unsigned long long>(result.first_sequence +
                                              result.reports_ingested),
              result.epsilon_spent);

  if (flags.Has("windows_out")) {
    Status written =
        WriteFile(transcript, flags.GetString("windows_out", ""));
    if (!written.ok()) return Fail(written);
  }
  if (result.snapshot.has_value()) {
    const std::string out = flags.GetString("snapshot_out", "");
    if (out.empty()) {
      return Fail(Status::InvalidArgument(
          "--pause_at requires --snapshot_out=FILE (the paused state "
          "would be lost)"));
    }
    Status written = release::WriteStreamingSnapshot(*result.snapshot, out);
    if (!written.ok()) return Fail(written);
    std::printf("paused before sequence %llu; snapshot written to %s\n",
                static_cast<unsigned long long>(result.snapshot->next_sequence),
                out.c_str());
  }

  // The determinism self-check: the same schedule through one producer
  // thread must give the same transcript, byte for byte.
  if (flags.GetBool("verify_replay", false)) {
    auto rerun = Run(spec.value(), dataset.value(), flags,
                     /*ingest_threads=*/1, resume);
    if (!rerun.ok()) return Fail(rerun.status());
    if (release::PrintStreamWindows(rerun.value().windows) != transcript) {
      return Fail(Status::Internal(
          "replay transcript diverged from the single-threaded run"));
    }
    std::printf("verify_replay: transcripts match\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.Parse(argc, argv);
  return Main(flags);
}
