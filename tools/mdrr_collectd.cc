// mdrr_collectd: the always-on streaming collector service.
//
//   mdrr_collectd --spec=stream.spec --input=reports.csv [--no_header]
//       [--reports=N]          total reports to stream (0 = one per row;
//                              beyond num_rows the replay wraps around)
//       [--ingest_threads=T]   producer threads (never changes output)
//       [--shards=S]           ingest shards / drain threads
//       [--ring_buckets=B]     live buckets in the count ring
//       [--pause_at=N]         stop before sequence N and snapshot
//       [--snapshot_out=FILE]  where the pause snapshot goes
//       [--resume=FILE]        continue from a saved snapshot
//       [--windows_out=FILE]   write the window transcript here too
//       [--verify_replay]      re-run single-threaded, require the
//                              transcripts to match bit for bit
//
// Socket mode (real ingest instead of an in-process replay):
//
//   mdrr_collectd --spec=stream.spec --listen=PORT
//       [--shards=S] [--ring_buckets=B] [--deadline_ms=MS]
//       Bind PORT (0 = ephemeral, printed to stderr), accept ONE ingest
//       client, and feed its reports through the collector; stdout is
//       the same window transcript the in-process replay prints.
//
//   mdrr_collectd --spec=stream.spec --input=reports.csv --connect=HOST:PORT
//       [--reports=N] [--batch=K] [--deadline_ms=MS]
//       Party side: perturb the CSV rows locally (sequence-keyed
//       randomness, so the server never sees true values) and stream
//       them to a --listen instance.
//
// The spec must have streaming.enabled; parties are simulated by
// replaying the CSV rows as a fixed arrival schedule (report s = row
// s % num_rows perturbed with sequence-keyed randomness), so stdout is
// byte-identical for any --ingest_threads / --shards at a fixed spec.
// A --pause_at run plus a --resume run produces exactly the windows of
// the uninterrupted run -- the snapshot carries the counts, the epsilon
// ledger, and the sequence cursor.
//
// Exit status: 0 on success (including budget-suppressed windows --
// that is the fail-closed degraded mode, not an error), 1 otherwise.

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "mdrr/common/flags.h"
#include "mdrr/common/string_util.h"
#include "mdrr/dataset/csv.h"
#include "mdrr/net/socket.h"
#include "mdrr/protocol/net_ingest.h"
#include "mdrr/protocol/stream_ingest.h"
#include "mdrr/release/serialization.h"

namespace {

using mdrr::Dataset;
using mdrr::FlagSet;
using mdrr::Status;
using mdrr::StatusOr;
namespace release = mdrr::release;
namespace protocol = mdrr::protocol;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteFile(const std::string& text, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  file << text;
  if (!file.good()) {
    return Status::IoError("write failure on '" + path + "'");
  }
  return Status::OK();
}

StatusOr<protocol::StreamingReplayResult> Run(
    const release::ReleaseSpec& spec, const Dataset& dataset,
    const FlagSet& flags, size_t ingest_threads,
    const release::StreamingSnapshot* resume) {
  protocol::StreamingReplayOptions options;
  options.num_ingest_threads = ingest_threads;
  options.collector.num_shards =
      static_cast<size_t>(flags.GetInt("shards", 1));
  options.collector.ring_buckets =
      static_cast<size_t>(flags.GetInt("ring_buckets", 4));
  options.total_reports = static_cast<uint64_t>(flags.GetInt("reports", 0));
  options.pause_at = static_cast<uint64_t>(flags.GetInt("pause_at", 0));
  options.resume = resume;
  return protocol::RunStreamingReplay(spec, dataset, options);
}

// Socket server: accept one ingest client, run the collector on its
// reports, print the transcript.
int ServeSocket(const FlagSet& flags, const release::ReleaseSpec& spec) {
  const int64_t port = flags.GetInt("listen", 0);
  if (port < 0 || port > 65535) {
    return Fail(Status::InvalidArgument("--listen must be 0..65535"));
  }
  mdrr::net::TcpListener listener;
  Status bound = listener.Listen(static_cast<uint16_t>(port));
  if (!bound.ok()) return Fail(bound);
  std::fprintf(stderr, "listening on port %u\n", listener.port());

  protocol::StreamIngestServeOptions options;
  options.collector.num_shards =
      static_cast<size_t>(flags.GetInt("shards", 1));
  options.collector.ring_buckets =
      static_cast<size_t>(flags.GetInt("ring_buckets", 4));
  options.deadline_ms = flags.GetInt("deadline_ms", 0);
  auto served = protocol::ServeStreamIngest(spec, listener, options);
  if (!served.ok()) return Fail(served.status());

  std::fputs(release::PrintStreamWindows(served.value().windows).c_str(),
             stdout);
  std::printf("ingested %llu reports over socket; epsilon spent %.6g\n",
              static_cast<unsigned long long>(
                  served.value().reports_ingested),
              served.value().epsilon_spent);
  return 0;
}

// Socket client: replay the input CSV into a --listen instance.
int ConnectSocket(const FlagSet& flags, const release::ReleaseSpec& spec,
                  const Dataset& dataset) {
  const std::string target = flags.GetString("connect", "");
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    return Fail(Status::InvalidArgument("--connect takes HOST:PORT"));
  }
  auto port = mdrr::ParseInt64(target.substr(colon + 1));
  if (!port.ok() || port.value() < 1 || port.value() > 65535) {
    return Fail(Status::InvalidArgument("--connect port must be 1..65535"));
  }

  protocol::StreamIngestClientOptions options;
  options.total_reports = static_cast<uint64_t>(flags.GetInt("reports", 0));
  options.batch_size = static_cast<uint32_t>(flags.GetInt("batch", 512));
  options.deadline_ms = flags.GetInt("deadline_ms", 0);
  auto sent = protocol::StreamReportsOverSocket(
      spec, dataset, target.substr(0, colon),
      static_cast<uint16_t>(port.value()), options);
  if (!sent.ok()) return Fail(sent.status());
  std::printf("streamed %llu reports; server ingested %llu; "
              "epsilon spent %.6g\n",
              static_cast<unsigned long long>(sent.value().reports_sent),
              static_cast<unsigned long long>(sent.value().reports_ingested),
              sent.value().epsilon_spent);
  return 0;
}

int Main(const FlagSet& flags) {
  const std::string spec_path = flags.GetString("spec", "");
  const std::string input_path = flags.GetString("input", "");
  if (flags.Has("listen")) {
    if (spec_path.empty()) {
      std::fprintf(stderr,
                   "usage: mdrr_collectd --spec=stream.spec --listen=PORT\n");
      return 1;
    }
    auto spec = release::ReadReleaseSpec(spec_path);
    if (!spec.ok()) return Fail(spec.status());
    if (!spec.value().streaming.enabled) {
      return Fail(Status::InvalidArgument(
          "socket ingest needs a spec with streaming enabled"));
    }
    return ServeSocket(flags, spec.value());
  }
  if (spec_path.empty() || input_path.empty()) {
    std::fprintf(stderr,
                 "usage: mdrr_collectd --spec=stream.spec --input=data.csv "
                 "[--flags]\nsee the header of tools/mdrr_collectd.cc\n");
    return 1;
  }

  auto spec = release::ReadReleaseSpec(spec_path);
  if (!spec.ok()) return Fail(spec.status());
  if (!spec.value().streaming.enabled) {
    return Fail(Status::InvalidArgument(
        "the spec has streaming disabled; batch specs run through "
        "`mdrr_cli run --spec=...`"));
  }
  auto dataset =
      mdrr::ReadCsvDataset(input_path, !flags.GetBool("no_header", false));
  if (!dataset.ok()) return Fail(dataset.status());

  if (flags.Has("connect")) {
    return ConnectSocket(flags, spec.value(), dataset.value());
  }

  release::StreamingSnapshot resume_snapshot;
  const release::StreamingSnapshot* resume = nullptr;
  if (flags.Has("resume")) {
    auto loaded =
        release::ReadStreamingSnapshot(flags.GetString("resume", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    resume_snapshot = std::move(loaded).value();
    resume = &resume_snapshot;
  }

  const size_t ingest_threads =
      static_cast<size_t>(flags.GetInt("ingest_threads", 1));
  auto run = Run(spec.value(), dataset.value(), flags, ingest_threads,
                 resume);
  if (!run.ok()) return Fail(run.status());
  const protocol::StreamingReplayResult& result = run.value();

  const std::string transcript = release::PrintStreamWindows(result.windows);
  std::fputs(transcript.c_str(), stdout);
  std::printf("ingested %llu reports (sequences %llu..%llu); "
              "epsilon spent %.6g\n",
              static_cast<unsigned long long>(result.reports_ingested),
              static_cast<unsigned long long>(result.first_sequence),
              static_cast<unsigned long long>(result.first_sequence +
                                              result.reports_ingested),
              result.epsilon_spent);

  if (flags.Has("windows_out")) {
    Status written =
        WriteFile(transcript, flags.GetString("windows_out", ""));
    if (!written.ok()) return Fail(written);
  }
  if (result.snapshot.has_value()) {
    const std::string out = flags.GetString("snapshot_out", "");
    if (out.empty()) {
      return Fail(Status::InvalidArgument(
          "--pause_at requires --snapshot_out=FILE (the paused state "
          "would be lost)"));
    }
    Status written = release::WriteStreamingSnapshot(*result.snapshot, out);
    if (!written.ok()) return Fail(written);
    std::printf("paused before sequence %llu; snapshot written to %s\n",
                static_cast<unsigned long long>(result.snapshot->next_sequence),
                out.c_str());
  }

  // The determinism self-check: the same schedule through one producer
  // thread must give the same transcript, byte for byte.
  if (flags.GetBool("verify_replay", false)) {
    auto rerun = Run(spec.value(), dataset.value(), flags,
                     /*ingest_threads=*/1, resume);
    if (!rerun.ok()) return Fail(rerun.status());
    if (release::PrintStreamWindows(rerun.value().windows) != transcript) {
      return Fail(Status::Internal(
          "replay transcript diverged from the single-threaded run"));
    }
    std::printf("verify_replay: transcripts match\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  flags.Parse(argc, argv);
  return Main(flags);
}
