// mdrr_worker: worker process for a distributed release.
//
//   mdrr_worker --connect=HOST:PORT [--deadline_ms=MS] [--idle_deadline_ms=MS]
//
// Connects to a coordinator (a `mdrr_cli run --listen=PORT` process or
// an embedded net::Coordinator), handshakes, and serves shard
// assignments until the coordinator commits. The worker holds no data
// and no spec: everything it needs to reproduce the engine's
// deterministic draws (matrix, seed, stream addresses, shard slices)
// arrives in each AssignShards message.
//
// Exit status: 0 after a clean Commit, 1 on any transport, protocol, or
// compute failure (including a coordinator Abort).

#include <cstdio>
#include <string>

#include "mdrr/common/flags.h"
#include "mdrr/common/string_util.h"
#include "mdrr/net/worker.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);

  const std::string target = flags.GetString("connect", "");
  const size_t colon = target.rfind(':');
  if (target.empty() || colon == std::string::npos) {
    std::fprintf(stderr,
                 "usage: mdrr_worker --connect=HOST:PORT [--deadline_ms=MS] "
                 "[--idle_deadline_ms=MS]\n");
    return 1;
  }
  const std::string host = target.substr(0, colon);
  auto port = mdrr::ParseInt64(target.substr(colon + 1));
  if (!port.ok() || port.value() < 1 || port.value() > 65535) {
    std::fprintf(stderr, "error: --connect port must be 1..65535\n");
    return 1;
  }

  mdrr::net::WorkerOptions options;
  options.deadline_ms = flags.GetInt("deadline_ms", options.deadline_ms);
  options.idle_deadline_ms =
      flags.GetInt("idle_deadline_ms", options.idle_deadline_ms);

  mdrr::Status status = mdrr::net::RunWorker(
      host, static_cast<uint16_t>(port.value()), options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("worker done\n");
  return 0;
}
