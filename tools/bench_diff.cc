// Compares two BENCH_pipeline.json files (the committed baseline vs a
// freshly generated run) and reports per-stage deltas, so the nightly
// soak catches pipeline-stage regressions instead of silently uploading
// slower numbers.
//
// Usage:
//   bench_diff --baseline=BENCH_pipeline.json --current=fresh.json
//              [--warn_pct=20] [--min_delta_s=0.05] [--out=report.txt]
//              [--fail_on_regression]
//
// For every stage present in both files the tool prints baseline/current
// t1 and tN with their percent deltas, and flags WARN when current time
// exceeds baseline by more than --warn_pct percent AND by more than
// --min_delta_s seconds (a millisecond-scale stage jitters by 30%+ run
// to run; relative-only thresholds would cry wolf nightly). Wall-clock
// noise on shared runners is real; the defaults are an alarm threshold,
// not a hard gate. Stages in only one file are listed as added/removed.
// A current stage that is not bit_identical is always an error: that bit
// is the determinism contract, not a performance number.
//
// Column semantics are per-stage: most stages use t1/tN as 1-thread vs
// N-thread wall times, but the rng-policy stage uses them as the two
// RNG policies at the same thread count (t1 = mt19937, tN = philox),
// the oracle-backends stage uses them as two frequency-oracle encodings
// at the same thread count and epsilon (t1 = direct encoding, tN =
// local hashing; its "speedup" is DE's throughput edge over OLH), and
// release-distributed uses t1 = the in-process sharded engine at
// --threads vs tN = the same workload farmed over loopback TCP to 2
// worker endpoints (its "speedup" is the transport overhead ratio).
// The dependence-pairwise stage times the mt19937 pairwise-RR estimator
// at 1 vs N threads like a normal scaling row, but its bit_identical
// also covers the untimed philox and secure-sum runs of the same stage
// (thread/grain invariance plus policy divergence), so a flipped bit
// there may come from a column the timings don't show.
// The delta logic below is agnostic -- a slower current t1 or tN is a
// regression of whatever that column measures either way -- and
// bit_identical remains each stage's own determinism contract.
//
// Exit status: 0 on success (warnings included), 1 if any current stage
// lost bit-identity or --fail_on_regression was set and a WARN fired,
// 2 on unreadable/unparseable input.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mdrr/common/flags.h"

namespace {

struct StageRow {
  std::string name;
  double t1 = 0.0;
  double tn = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

struct BenchFile {
  // Header workload parameters (n, session_n, threads, shard_size,
  // est_r); absent keys are omitted. Regression thresholds only make
  // sense when both files ran the same workload.
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<StageRow> stages;
};

// Extracts the first JSON number/string/bool after `key` within `object`.
// The input format is the fixed single-purpose schema bench_parallel_
// pipeline writes, so a targeted scanner is sufficient and dependency-free.
std::optional<std::string> RawValueAfter(const std::string& object,
                                         const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t at = object.find(needle);
  if (at == std::string::npos) return std::nullopt;
  at += needle.size();
  while (at < object.size() && object[at] == ' ') ++at;
  size_t end = at;
  if (end < object.size() && object[end] == '"') {
    end = object.find('"', end + 1);
    if (end == std::string::npos) return std::nullopt;
    return object.substr(at + 1, end - at - 1);
  }
  while (end < object.size() && object[end] != ',' && object[end] != '}' &&
         object[end] != '\n') {
    ++end;
  }
  return object.substr(at, end - at);
}

std::optional<BenchFile> ParseBenchFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  BenchFile result;
  // Header fields live before the stages array; scanning only that
  // prefix keeps stage keys from shadowing them.
  const std::string header = text.substr(0, text.find("\"stages\""));
  for (const char* key : {"n", "session_n", "threads", "shard_size",
                          "est_r"}) {
    if (auto value = RawValueAfter(header, key)) {
      result.params.emplace_back(key, *value);
    }
  }
  size_t cursor = 0;
  while (true) {
    size_t start = text.find("{\"stage\":", cursor);
    if (start == std::string::npos) break;
    size_t end = text.find('}', start);
    if (end == std::string::npos) break;
    const std::string object = text.substr(start, end - start + 1);
    cursor = end + 1;

    StageRow row;
    auto name = RawValueAfter(object, "stage");
    auto t1 = RawValueAfter(object, "t1_seconds");
    auto tn = RawValueAfter(object, "tN_seconds");
    auto speedup = RawValueAfter(object, "speedup");
    auto identical = RawValueAfter(object, "bit_identical");
    if (!name || !t1 || !tn || !speedup || !identical) {
      std::fprintf(stderr, "bench_diff: malformed stage object in %s: %s\n",
                   path.c_str(), object.c_str());
      return std::nullopt;
    }
    row.name = *name;
    row.t1 = std::atof(t1->c_str());
    row.tn = std::atof(tn->c_str());
    row.speedup = std::atof(speedup->c_str());
    row.bit_identical = *identical == "true";
    result.stages.push_back(row);
  }
  if (result.stages.empty()) {
    std::fprintf(stderr, "bench_diff: no stages found in %s\n", path.c_str());
    return std::nullopt;
  }
  return result;
}

const StageRow* FindStage(const BenchFile& file, const std::string& name) {
  for (const StageRow& row : file.stages) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

double PercentDelta(double baseline, double current) {
  if (baseline <= 0.0) return 0.0;
  return 100.0 * (current - baseline) / baseline;
}

}  // namespace

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string current_path = flags.GetString("current", "");
  const double warn_pct = flags.GetDouble("warn_pct", 20.0);
  const double min_delta_s = flags.GetDouble("min_delta_s", 0.05);
  const std::string out_path = flags.GetString("out", "");
  const bool fail_on_regression = flags.GetBool("fail_on_regression", false);
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff --baseline=FILE --current=FILE "
                 "[--warn_pct=20] [--out=FILE] [--fail_on_regression]\n");
    return 2;
  }

  auto baseline = ParseBenchFile(baseline_path);
  auto current = ParseBenchFile(current_path);
  if (!baseline || !current) return 2;

  // Timings are only comparable when both runs used the same workload
  // parameters; on mismatch, deltas are still reported but regression
  // warnings are suppressed (a 3x est_r is not a regression).
  const bool comparable = baseline->params == current->params;

  std::ostringstream report;
  report << "bench_diff: " << current_path << " vs baseline "
         << baseline_path << " (warn at >" << warn_pct << "% regression)\n";
  if (!comparable) {
    report << "NOTE: workload parameters differ between the files";
    for (const auto& [key, value] : current->params) {
      std::string base_value = "?";
      for (const auto& [base_key, bv] : baseline->params) {
        if (base_key == key) base_value = bv;
      }
      if (base_value != value) {
        report << "  [" << key << ": " << base_value << " -> " << value
               << "]";
      }
    }
    report << "; deltas are informational, regression warnings suppressed\n";
  }
  char line[256];
  std::snprintf(line, sizeof(line), "%-22s %10s %10s %8s %10s %10s %8s\n",
                "stage", "base t1", "cur t1", "d-t1", "base tN", "cur tN",
                "d-tN");
  report << line;

  int warnings = 0;
  int identity_failures = 0;
  for (const StageRow& row : current->stages) {
    const StageRow* base = FindStage(*baseline, row.name);
    if (base == nullptr) {
      std::snprintf(line, sizeof(line),
                    "%-22s %10s %10.3f %8s %10s %10.3f %8s  NEW\n",
                    row.name.c_str(), "-", row.t1, "-", "-", row.tn, "-");
      report << line;
      continue;
    }
    double d1 = PercentDelta(base->t1, row.t1);
    double dn = PercentDelta(base->tn, row.tn);
    bool warn1 = d1 > warn_pct && row.t1 - base->t1 > min_delta_s;
    bool warnn = dn > warn_pct && row.tn - base->tn > min_delta_s;
    bool warn = comparable && (warn1 || warnn);
    if (warn) ++warnings;
    if (!row.bit_identical) ++identity_failures;
    std::snprintf(line, sizeof(line),
                  "%-22s %10.3f %10.3f %+7.1f%% %10.3f %10.3f %+7.1f%%%s%s\n",
                  row.name.c_str(), base->t1, row.t1, d1, base->tn, row.tn,
                  dn, warn ? "  WARN" : "",
                  row.bit_identical ? "" : "  NOT-BIT-IDENTICAL");
    report << line;
  }
  for (const StageRow& row : baseline->stages) {
    if (FindStage(*current, row.name) == nullptr) {
      std::snprintf(line, sizeof(line), "%-22s  removed (was t1 %.3f s)\n",
                    row.name.c_str(), row.t1);
      report << line;
    }
  }
  if (warnings > 0) {
    report << "WARNING: " << warnings << " stage(s) regressed more than "
           << warn_pct << "%\n";
  }
  if (identity_failures > 0) {
    report << "ERROR: " << identity_failures
           << " stage(s) lost bit-identity across thread counts\n";
  }

  std::fputs(report.str().c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "bench_diff: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << report.str();
  }
  if (identity_failures > 0) return 1;
  if (fail_on_regression && warnings > 0) return 1;
  return 0;
}
