#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/rng/alias_sampler.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t state_a = 123;
  uint64_t state_b = 123;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64Next(state_a), SplitMix64Next(state_b));
  }
}

TEST(SplitMix64Test, NearbySeedsDiverge) {
  uint64_t s1 = 1;
  uint64_t s2 = 2;
  EXPECT_NE(SplitMix64Next(s1), SplitMix64Next(s2));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(1000), b.UniformInt(1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(1 << 30) != b.UniformInt(1 << 30)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(1), 0u);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, DiscreteMatchesWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.Discrete(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.6, 0.02);
}

TEST(RngTest, DiscreteHandlesZeroWeightCategories) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Discrete(weights), 1u);
  }
}

TEST(RngTest, MultinomialCountsSumToN) {
  Rng rng(23);
  std::vector<double> p = {0.2, 0.5, 0.3};
  std::vector<int64_t> counts = rng.Multinomial(1000, p);
  int64_t total = 0;
  for (int64_t c : counts) {
    EXPECT_GE(c, 0);
    total += c;
  }
  EXPECT_EQ(total, 1000);
}

TEST(RngTest, MultinomialMatchesProbabilities) {
  Rng rng(29);
  std::vector<double> p = {0.7, 0.2, 0.1};
  std::vector<int64_t> counts = rng.Multinomial(100000, p);
  EXPECT_NEAR(counts[0] / 100000.0, 0.7, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.2, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.1, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.UniformInt(1 << 30) == child.UniformInt(1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

// --- AliasSampler ---

TEST(AliasSamplerTest, UniformWeights) {
  AliasSampler sampler(std::vector<double>(8, 1.0));
  EXPECT_EQ(sampler.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(sampler.ProbabilityOf(i), 0.125, 1e-12);
  }
}

TEST(AliasSamplerTest, ReconstructedProbabilitiesMatchWeights) {
  std::vector<double> weights = {0.5, 2.0, 0.25, 1.25, 4.0};
  double total = 8.0;
  AliasSampler sampler(weights);
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(sampler.ProbabilityOf(i), weights[i] / total, 1e-12);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({1.0, 0.0, 1.0});
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(sampler.Sample(rng), 1u);
  }
}

TEST(AliasSamplerTest, SingleCategory) {
  AliasSampler sampler({5.0});
  Rng rng(41);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sampler.Sample(rng), 0u);
  }
}

class AliasSamplerSweep : public ::testing::TestWithParam<size_t> {};

// Property: for random weight vectors of any size, empirical sampling
// frequencies converge to the normalized weights.
TEST_P(AliasSamplerSweep, EmpiricalFrequenciesMatch) {
  const size_t n = GetParam();
  Rng weight_rng(n);
  std::vector<double> weights(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = weight_rng.UniformDouble() + 0.01;
    total += weights[i];
  }
  AliasSampler sampler(weights);
  Rng rng(n * 1000 + 7);
  std::vector<int> counts(n, 0);
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) ++counts[sampler.Sample(rng)];
  for (size_t i = 0; i < n; ++i) {
    double expected = weights[i] / total;
    double observed = counts[i] / static_cast<double>(trials);
    EXPECT_NEAR(observed, expected, 0.015) << "category " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasSamplerSweep,
                         ::testing::Values(2, 3, 7, 16, 50, 128));

TEST(RngStreamFamilyTest, StreamsAreDeterministic) {
  RngStreamFamily family(99);
  Rng a = family.Stream(5);
  Rng b = family.Stream(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(RngStreamFamilyTest, StreamsAreIndependentOfRequestOrder) {
  RngStreamFamily family(7);
  // Requesting other streams first must not perturb stream 3: the family
  // is a pure function, unlike Rng::Fork.
  Rng direct = family.Stream(3);
  family.Stream(0);
  family.Stream(1);
  family.Stream(100);
  Rng after_others = family.Stream(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(direct.engine()(), after_others.engine()());
  }
}

TEST(RngStreamFamilyTest, DistinctIndicesAndSeedsDiverge) {
  RngStreamFamily family(1);
  EXPECT_NE(family.Stream(0).engine()(), family.Stream(1).engine()());
  EXPECT_NE(family.Stream(41).engine()(), family.Stream(42).engine()());
  RngStreamFamily other(2);
  EXPECT_NE(family.Stream(0).engine()(), other.Stream(0).engine()());
}

}  // namespace
}  // namespace mdrr
