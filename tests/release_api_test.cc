// Golden equivalence and round-trip tests for the declarative release
// API: for every mechanism, the façade's output is bit-identical to the
// corresponding direct stage-function / BatchPerturbationEngine
// composition at the same seed, under both execution policies; specs
// serialize losslessly; the budget cap and estimator builders behave.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/batch_engine.h"
#include "mdrr/core/pram.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/release/planner.h"
#include "mdrr/release/serialization.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

namespace release = ::mdrr::release;

constexpr uint64_t kSeed = 11;
constexpr size_t kRecords = 2500;
constexpr size_t kShard = 512;  // Small enough for real sharding at 2500.

Dataset TestData() { return SynthesizeAdult(kRecords, /*seed=*/9); }

void ExpectSameData(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    EXPECT_EQ(a.column(j), b.column(j)) << "column " << j;
  }
}

void ExpectSameMatrix(const linalg::Matrix& a, const linalg::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "entry (" << i << "," << j << ")";
    }
  }
}

release::ReleaseSpec BaseSpec(release::MechanismKind kind,
                              release::PolicyKind policy) {
  release::ReleaseSpec spec;
  spec.mechanism.kind = kind;
  spec.execution.kind = policy;
  spec.execution.seed = kSeed;
  spec.execution.num_threads = 4;
  spec.execution.shard_size = kShard;
  return spec;
}

release::ReleaseArtifacts MustRun(const release::ReleaseSpec& spec,
                                  const Dataset& data) {
  auto plan = release::ReleasePlanner::Plan(spec, &data);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto artifacts = plan.value().Run();
  EXPECT_TRUE(artifacts.ok()) << artifacts.status().ToString();
  return std::move(artifacts).value();
}

AdjustmentOptions DefaultAdjustment() {
  AdjustmentOptions options;  // max_iterations 100, tolerance 1e-9.
  return options;
}

// --- Independent: façade == RunRrIndependent / engine.RunIndependent. ---

TEST(ReleaseApiGolden, IndependentSequential) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kIndependent,
                                       release::PolicyKind::kSequential);
  spec.budget.keep_probability = 0.6;
  spec.adjustment.enabled = true;
  spec.synthetic.enabled = true;
  release::ReleaseArtifacts facade = MustRun(spec, data);

  // The direct composition: one Rng threaded through the stages in
  // order (mechanism, then synthesis; adjustment draws no randomness).
  Rng rng(kSeed);
  auto direct = RunRrIndependent(data, RrIndependentOptions{0.6}, rng);
  ASSERT_TRUE(direct.ok());
  auto adjusted = RunRrAdjustment(GroupsFromIndependent(*direct),
                                  data.num_rows(), DefaultAdjustment());
  ASSERT_TRUE(adjusted.ok());
  auto synthetic = SynthesizeFromIndependent(
      *direct, static_cast<int64_t>(data.num_rows()), rng);
  ASSERT_TRUE(synthetic.ok());

  ExpectSameData(facade.randomized, direct.value().randomized);
  EXPECT_EQ(facade.marginal_estimates, direct.value().estimated);
  EXPECT_EQ(facade.independent->lambda, direct.value().lambda);
  EXPECT_EQ(facade.independent->raw_estimated, direct.value().raw_estimated);
  EXPECT_EQ(facade.release_epsilon, direct.value().total_epsilon);
  EXPECT_EQ(facade.adjustment->weights, adjusted.value().weights);
  EXPECT_EQ(facade.adjustment->iterations, adjusted.value().iterations);
  ExpectSameData(*facade.synthetic, synthetic.value());
}

TEST(ReleaseApiGolden, IndependentSharded) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kIndependent,
                                       release::PolicyKind::kSharded);
  spec.budget.keep_probability = 0.6;
  spec.adjustment.enabled = true;
  spec.synthetic.enabled = true;
  release::ReleaseArtifacts facade = MustRun(spec, data);

  BatchPerturbationOptions engine_options;
  engine_options.seed = kSeed;
  engine_options.num_threads = 4;
  engine_options.shard_size = kShard;
  BatchPerturbationEngine engine(engine_options);
  auto direct = engine.RunIndependent(data, RrIndependentOptions{0.6});
  ASSERT_TRUE(direct.ok());
  auto adjusted = engine.RunAdjustment(GroupsFromIndependent(*direct),
                                       data.num_rows(), DefaultAdjustment());
  ASSERT_TRUE(adjusted.ok());
  auto synthetic = engine.SynthesizeIndependent(
      *direct, static_cast<int64_t>(data.num_rows()));
  ASSERT_TRUE(synthetic.ok());

  ExpectSameData(facade.randomized, direct.value().randomized);
  EXPECT_EQ(facade.marginal_estimates, direct.value().estimated);
  EXPECT_EQ(facade.adjustment->weights, adjusted.value().weights);
  ExpectSameData(*facade.synthetic, synthetic.value());
}

// --- Joint: façade == RunRrJoint / engine.RunJoint. ---

TEST(ReleaseApiGolden, JointSequential) {
  Dataset data = TestData();
  const std::vector<size_t> attrs = {kAdultMaritalStatus,
                                     kAdultRelationship, kAdultSex};
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kJoint,
                                       release::PolicyKind::kSequential);
  spec.budget.keep_probability = 0.7;
  spec.mechanism.joint_attributes = attrs;
  release::ReleaseArtifacts facade = MustRun(spec, data);

  Rng rng(kSeed);
  double budget = ClusterEpsilonBudget(data, attrs, 0.7);
  auto direct = RunRrJoint(data, attrs, budget, rng);
  ASSERT_TRUE(direct.ok());

  EXPECT_EQ(facade.joint->randomized_codes, direct.value().randomized_codes);
  EXPECT_EQ(facade.joint->estimated, direct.value().estimated);
  EXPECT_EQ(facade.release_epsilon, direct.value().epsilon);
  // The façade's released columns are the decode of the direct codes.
  ASSERT_EQ(facade.randomized.num_attributes(), attrs.size());
  for (size_t position = 0; position < attrs.size(); ++position) {
    for (size_t row = 0; row < data.num_rows(); ++row) {
      ASSERT_EQ(facade.randomized.at(row, position),
                direct.value().domain.DecodeAt(
                    direct.value().randomized_codes[row], position));
    }
  }
}

TEST(ReleaseApiGolden, JointSharded) {
  Dataset data = TestData();
  const std::vector<size_t> attrs = {kAdultEducation, kAdultSex};
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kJoint,
                                       release::PolicyKind::kSharded);
  spec.budget.keep_probability = 0.7;
  spec.mechanism.joint_attributes = attrs;
  release::ReleaseArtifacts facade = MustRun(spec, data);

  BatchPerturbationOptions engine_options;
  engine_options.seed = kSeed;
  engine_options.num_threads = 4;
  engine_options.shard_size = kShard;
  BatchPerturbationEngine engine(engine_options);
  auto direct =
      engine.RunJoint(data, attrs, ClusterEpsilonBudget(data, attrs, 0.7));
  ASSERT_TRUE(direct.ok());

  EXPECT_EQ(facade.joint->randomized_codes, direct.value().randomized_codes);
  EXPECT_EQ(facade.joint->estimated, direct.value().estimated);
  EXPECT_EQ(facade.release_epsilon, direct.value().epsilon);
}

// --- Clusters: façade == RunRrClusters / engine.RunClusters. ---

RrClustersOptions ClustersOptions() {
  RrClustersOptions options;
  options.keep_probability = 0.7;
  options.clustering = ClusteringOptions{50.0, 0.1};
  options.dependence_source = DependenceSource::kRandomizedResponse;
  options.dependence_keep_probability = 0.7;
  return options;
}

void ExpectSameClustersResult(const release::ReleaseArtifacts& facade,
                              const RrClustersResult& direct) {
  EXPECT_EQ(facade.clustering, direct.clusters);
  ExpectSameData(facade.randomized, direct.randomized);
  ExpectSameMatrix(facade.dependences, direct.dependences);
  EXPECT_EQ(facade.release_epsilon, direct.release_epsilon);
  EXPECT_EQ(facade.dependence_epsilon, direct.dependence_epsilon);
  ASSERT_EQ(facade.clusters->cluster_results.size(),
            direct.cluster_results.size());
  for (size_t c = 0; c < direct.cluster_results.size(); ++c) {
    EXPECT_EQ(facade.clusters->cluster_results[c].randomized_codes,
              direct.cluster_results[c].randomized_codes);
    EXPECT_EQ(facade.clusters->cluster_results[c].estimated,
              direct.cluster_results[c].estimated);
  }
}

TEST(ReleaseApiGolden, ClustersSequential) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kClusters,
                                       release::PolicyKind::kSequential);
  spec.budget.keep_probability = 0.7;
  spec.adjustment.enabled = true;
  spec.synthetic.enabled = true;
  release::ReleaseArtifacts facade = MustRun(spec, data);

  Rng rng(kSeed);
  auto direct = RunRrClusters(data, ClustersOptions(), rng);
  ASSERT_TRUE(direct.ok());
  auto adjusted = RunRrAdjustment(GroupsFromClusters(*direct),
                                  data.num_rows(), DefaultAdjustment());
  ASSERT_TRUE(adjusted.ok());
  auto synthetic = SynthesizeFromClusters(
      *direct, static_cast<int64_t>(data.num_rows()), rng);
  ASSERT_TRUE(synthetic.ok());

  ExpectSameClustersResult(facade, direct.value());
  EXPECT_EQ(facade.adjustment->weights, adjusted.value().weights);
  ExpectSameData(*facade.synthetic, synthetic.value());
}

TEST(ReleaseApiGolden, ClustersSharded) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kClusters,
                                       release::PolicyKind::kSharded);
  spec.budget.keep_probability = 0.7;
  spec.adjustment.enabled = true;
  spec.synthetic.enabled = true;
  release::ReleaseArtifacts facade = MustRun(spec, data);

  BatchPerturbationOptions engine_options;
  engine_options.seed = kSeed;
  engine_options.num_threads = 4;
  engine_options.shard_size = kShard;
  BatchPerturbationEngine engine(engine_options);
  auto direct = engine.RunClusters(data, ClustersOptions());
  ASSERT_TRUE(direct.ok());
  auto adjusted = engine.RunAdjustment(GroupsFromClusters(*direct),
                                       data.num_rows(), DefaultAdjustment());
  ASSERT_TRUE(adjusted.ok());
  auto synthetic = engine.SynthesizeClusters(
      *direct, static_cast<int64_t>(data.num_rows()));
  ASSERT_TRUE(synthetic.ok());

  ExpectSameClustersResult(facade, direct.value());
  EXPECT_EQ(facade.adjustment->weights, adjusted.value().weights);
  ExpectSameData(*facade.synthetic, synthetic.value());
}

// --- PRAM: façade == ApplyPram under either policy. ---

TEST(ReleaseApiGolden, PramBothPolicies) {
  Dataset data = TestData();
  Rng rng(kSeed);
  auto direct = ApplyPram(data, 0.8, rng);
  ASSERT_TRUE(direct.ok());

  for (release::PolicyKind policy :
       {release::PolicyKind::kSequential, release::PolicyKind::kSharded}) {
    release::ReleaseSpec spec =
        BaseSpec(release::MechanismKind::kPram, policy);
    spec.budget.keep_probability = 0.8;
    release::ReleaseArtifacts facade = MustRun(spec, data);
    ExpectSameData(facade.randomized, direct.value().randomized);
    EXPECT_EQ(facade.marginal_estimates, direct.value().estimated);
  }
}

// --- One policy, many thread counts: artifacts are invariant. ---

TEST(ReleaseApiGolden, ShardedThreadSweep) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kClusters,
                                       release::PolicyKind::kSharded);
  spec.adjustment.enabled = true;
  spec.synthetic.enabled = true;

  spec.execution.num_threads = 1;
  release::ReleaseArtifacts reference = MustRun(spec, data);
  for (size_t threads : {2u, 4u, 8u}) {
    spec.execution.num_threads = threads;
    release::ReleaseArtifacts artifacts = MustRun(spec, data);
    ExpectSameData(artifacts.randomized, reference.randomized);
    EXPECT_EQ(artifacts.marginal_estimates, reference.marginal_estimates);
    EXPECT_EQ(artifacts.adjustment->weights, reference.adjustment->weights);
    ExpectSameData(*artifacts.synthetic, *reference.synthetic);
  }
}

// --- Spec serialization round-trips. ---

TEST(ReleaseSpecSerialization, DefaultSpecRoundTrips) {
  release::ReleaseSpec spec;
  auto parsed =
      release::ParseReleaseSpec(release::PrintReleaseSpec(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spec);
}

TEST(ReleaseSpecSerialization, FullyPopulatedSpecRoundTrips) {
  release::ReleaseSpec spec;
  spec.dataset.source = release::DatasetSpec::Source::kCsvFile;
  spec.dataset.csv_path = "/tmp/data.csv";
  spec.dataset.csv_has_header = false;
  spec.dataset.synthetic_records = 777;
  spec.dataset.synthetic_seed = 123456789;
  spec.budget.keep_probability = 0.55;
  spec.budget.dependence_keep_probability = 0.91;
  spec.budget.max_total_epsilon = 12.75;
  spec.mechanism.kind = release::MechanismKind::kJoint;
  spec.mechanism.joint_attributes = {4, 6, 7};
  spec.mechanism.clustering = ClusteringOptions{123.0, 0.25};
  spec.mechanism.dependence_source = DependenceSource::kPairwiseRr;
  spec.mechanism.use_paper_epsilon_formula = true;
  spec.adjustment.enabled = true;
  spec.adjustment.max_iterations = 17;
  spec.adjustment.tolerance = 1e-7;
  spec.adjustment.groups = {{0}, {3}};
  spec.synthetic.enabled = true;
  spec.synthetic.records = 4096;
  spec.evaluation.utility_report = true;
  spec.evaluation.sigmas = {0.2, 0.4};
  spec.evaluation.queries_per_sigma = 9;
  spec.evaluation.seed = 99;
  spec.execution.kind = release::PolicyKind::kSharded;
  spec.execution.seed = 31337;
  spec.execution.num_threads = 6;
  spec.execution.shard_size = 4096;
  spec.execution.rng = RngKind::kPhilox;
  spec.output.randomized_csv = "/tmp/y.csv";
  spec.output.synthetic_csv = "/tmp/s.csv";
  spec.output.artifacts_path = "/tmp/a.txt";

  std::string text = release::PrintReleaseSpec(spec);
  auto parsed = release::ParseReleaseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spec);
  // Printing the parse reproduces the text exactly.
  EXPECT_EQ(release::PrintReleaseSpec(parsed.value()), text);
}

TEST(ReleaseSpecSerialization, SignedFieldsRoundTripEvenWhenInvalid) {
  // A spec that validation would reject must still round-trip, so the
  // rejection can happen after a re-read too.
  release::ReleaseSpec spec;
  spec.synthetic.records = -5;
  spec.adjustment.max_iterations = -1;
  auto parsed = release::ParseReleaseSpec(release::PrintReleaseSpec(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spec);
}

TEST(ReleaseSpecSerialization, CommentsAndUnknownKeys) {
  release::ReleaseSpec spec;
  std::string text = release::PrintReleaseSpec(spec);
  auto with_comment =
      release::ParseReleaseSpec(text + "\n# trailing comment\n\n");
  ASSERT_TRUE(with_comment.ok());
  EXPECT_TRUE(with_comment.value() == spec);
  EXPECT_FALSE(release::ParseReleaseSpec(text + "no.such.key 1\n").ok());
  EXPECT_FALSE(release::ParseReleaseSpec("not a spec at all").ok());
}

// --- Artifacts serialization round-trips the summary. ---

TEST(ReleaseArtifactsSerialization, SummaryRoundTrips) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kClusters,
                                       release::PolicyKind::kSequential);
  spec.adjustment.enabled = true;
  spec.synthetic.enabled = true;
  spec.evaluation.utility_report = true;
  spec.evaluation.queries_per_sigma = 4;
  spec.evaluation.sigmas = {0.3};
  release::ReleaseArtifacts artifacts = MustRun(spec, data);

  std::string text = release::PrintReleaseArtifacts(artifacts);
  auto parsed = release::ParseReleaseArtifacts(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(release::PrintReleaseArtifacts(parsed.value()), text);
  EXPECT_EQ(parsed.value().num_records, artifacts.num_records);
  EXPECT_EQ(parsed.value().marginal_estimates, artifacts.marginal_estimates);
  EXPECT_EQ(parsed.value().clustering, artifacts.clustering);
  EXPECT_EQ(parsed.value().adjustment->weights,
            artifacts.adjustment->weights);
  EXPECT_EQ(parsed.value().utility->marginal_tv,
            artifacts.utility->marginal_tv);
}

// --- Budget cap and estimator builder. ---

TEST(ReleaseApi, BudgetCapFailsClosed) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kIndependent,
                                       release::PolicyKind::kSequential);
  spec.budget.max_total_epsilon = 0.5;  // Far below the realized cost.
  auto plan = release::ReleasePlanner::Plan(spec, &data);
  ASSERT_TRUE(plan.ok());
  auto artifacts = plan.value().Run();
  ASSERT_FALSE(artifacts.ok());
  EXPECT_EQ(artifacts.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReleaseApi, MakeJointEstimateAnswersQueries) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kClusters,
                                       release::PolicyKind::kSequential);
  spec.adjustment.enabled = true;
  release::ReleaseArtifacts artifacts = MustRun(spec, data);
  auto estimate = release::MakeJointEstimate(artifacts);
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  CountQuery everything{{kAdultSex}, {{0}, {1}}};
  EXPECT_NEAR(estimate.value()->EstimateCount(everything),
              static_cast<double>(data.num_rows()),
              0.02 * static_cast<double>(data.num_rows()));
}

TEST(ReleaseApi, RepeatedRunsAreIdentical) {
  Dataset data = TestData();
  release::ReleaseSpec spec = BaseSpec(release::MechanismKind::kIndependent,
                                       release::PolicyKind::kSequential);
  auto plan = release::ReleasePlanner::Plan(spec, &data);
  ASSERT_TRUE(plan.ok());
  auto first = plan.value().Run();
  auto second = plan.value().Run();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameData(first.value().randomized, second.value().randomized);
  EXPECT_EQ(first.value().marginal_estimates,
            second.value().marginal_estimates);
}

}  // namespace
}  // namespace mdrr
