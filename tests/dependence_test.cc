#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/dependence.h"
#include "mdrr/dataset/dataset.h"

namespace mdrr {
namespace {

Dataset MakePerfectlyDependentDataset() {
  // B = A and C independent of both.
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"a0", "a1", "a2"}},
      Attribute{"B", AttributeType::kNominal, {"b0", "b1", "b2"}},
      Attribute{"C", AttributeType::kNominal, {"c0", "c1"}},
  };
  std::vector<uint32_t> a = {0, 0, 1, 1, 2, 2, 0, 1, 2, 0, 1, 2};
  std::vector<uint32_t> c = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  return Dataset(schema, {a, a, c});
}

TEST(DependenceTest, PerfectNominalDependenceIsOne) {
  Dataset ds = MakePerfectlyDependentDataset();
  EXPECT_NEAR(DependenceBetween(ds, 0, 1), 1.0, 1e-12);
}

TEST(DependenceTest, IndependentAttributesNearZero) {
  Dataset ds = MakePerfectlyDependentDataset();
  // A and C are constructed balanced-independent.
  EXPECT_NEAR(DependenceBetween(ds, 0, 2), 0.0, 1e-9);
}

TEST(DependenceTest, OrdinalPairUsesPearson) {
  std::vector<Attribute> schema = {
      Attribute{"X", AttributeType::kOrdinal, {"0", "1", "2", "3"}},
      Attribute{"Y", AttributeType::kOrdinal, {"0", "1", "2", "3"}},
  };
  std::vector<uint32_t> x = {0, 1, 2, 3, 0, 1, 2, 3};
  // Y decreasing in X: Pearson = -1, dependence = |r| = 1.
  std::vector<uint32_t> y = {3, 2, 1, 0, 3, 2, 1, 0};
  Dataset ds(schema, {x, y});
  EXPECT_NEAR(DependenceBetween(ds, 0, 1), 1.0, 1e-12);
}

TEST(DependenceTest, MixedPairFallsBackToCramersV) {
  std::vector<Attribute> schema = {
      Attribute{"X", AttributeType::kOrdinal, {"0", "1"}},
      Attribute{"Y", AttributeType::kNominal, {"u", "v"}},
  };
  std::vector<uint32_t> x = {0, 0, 1, 1};
  std::vector<uint32_t> y = {0, 0, 1, 1};
  Dataset ds(schema, {x, y});
  EXPECT_NEAR(DependenceBetween(ds, 0, 1), 1.0, 1e-12);
}

TEST(DependenceMatrixTest, SymmetricWithUnitDiagonal) {
  Dataset ds = MakePerfectlyDependentDataset();
  linalg::Matrix deps = DependenceMatrix(ds);
  ASSERT_EQ(deps.rows(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(deps(i, i), 1.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(deps(i, j), deps(j, i));
      EXPECT_GE(deps(i, j), 0.0);
      EXPECT_LE(deps(i, j), 1.0);
    }
  }
}

TEST(DependenceFromJointTest, MatchesRawCodesForNominal) {
  Dataset ds = MakePerfectlyDependentDataset();
  // Build the joint of (A, B) by hand.
  std::vector<double> joint(9, 0.0);
  for (size_t i = 0; i < ds.num_rows(); ++i) {
    joint[ds.at(i, 0) * 3 + ds.at(i, 1)] += 1.0;
  }
  double from_joint =
      DependenceFromJoint(joint, 3, AttributeType::kNominal, 3,
                          AttributeType::kNominal,
                          static_cast<double>(ds.num_rows()));
  EXPECT_NEAR(from_joint, DependenceBetween(ds, 0, 1), 1e-12);
}

TEST(DependenceFromJointTest, MatchesRawCodesForOrdinal) {
  std::vector<uint32_t> x = {0, 1, 2, 3, 0, 1, 2, 3};
  std::vector<uint32_t> y = {0, 1, 1, 3, 0, 2, 2, 3};
  std::vector<Attribute> schema = {
      Attribute{"X", AttributeType::kOrdinal, {"0", "1", "2", "3"}},
      Attribute{"Y", AttributeType::kOrdinal, {"0", "1", "2", "3"}},
  };
  Dataset ds(schema, {x, y});
  std::vector<double> joint(16, 0.0);
  for (size_t i = 0; i < x.size(); ++i) joint[x[i] * 4 + y[i]] += 1.0;
  double from_joint = DependenceFromJoint(joint, 4, AttributeType::kOrdinal,
                                          4, AttributeType::kOrdinal, 8.0);
  EXPECT_NEAR(from_joint, DependenceBetween(ds, 0, 1), 1e-12);
}

TEST(DependenceFromJointTest, ClampsNegativeCells) {
  // Estimated joints can carry small negative cells; they must not crash
  // or produce out-of-range dependences.
  std::vector<double> joint = {0.6, -0.05, -0.05, 0.5};
  double d = DependenceFromJoint(joint, 2, AttributeType::kNominal, 2,
                                 AttributeType::kNominal, 100.0);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(AbsPearsonFromJointTest, PerfectDiagonal) {
  std::vector<double> joint = {0.5, 0.0, 0.0, 0.5};
  EXPECT_NEAR(AbsPearsonFromJoint(joint, 2, 2), 1.0, 1e-12);
}

TEST(AbsPearsonFromJointTest, IndependentJointIsZero) {
  // Outer product of (0.5, 0.5) and (0.3, 0.7).
  std::vector<double> joint = {0.15, 0.35, 0.15, 0.35};
  EXPECT_NEAR(AbsPearsonFromJoint(joint, 2, 2), 0.0, 1e-12);
}

TEST(AbsPearsonFromJointTest, DegenerateMarginalIsZero) {
  std::vector<double> joint = {1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(AbsPearsonFromJoint(joint, 2, 2), 0.0);
}

}  // namespace
}  // namespace mdrr
