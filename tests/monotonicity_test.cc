// Monotonicity and ordering invariants of the statistical theory --
// properties the paper's analysis relies on implicitly, checked across
// parameter sweeps.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/stats/error_bounds.h"
#include "mdrr/stats/quantiles.h"

namespace mdrr {
namespace {

class ChiSquaredMonotonicity
    : public ::testing::TestWithParam<double> {};  // dof

TEST_P(ChiSquaredMonotonicity, QuantileIncreasesInProbability) {
  const double dof = GetParam();
  double previous = 0.0;
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.9999}) {
    double q = stats::ChiSquaredQuantile(dof, p);
    EXPECT_GT(q, previous) << "dof=" << dof << " p=" << p;
    previous = q;
  }
}

TEST_P(ChiSquaredMonotonicity, CdfIncreasesInX) {
  const double dof = GetParam();
  double previous = -1.0;
  for (double x : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0}) {
    double c = stats::ChiSquaredCdf(dof, x);
    EXPECT_GT(c, previous) << "dof=" << dof << " x=" << x;
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    previous = c;
  }
}

INSTANTIATE_TEST_SUITE_P(DegreesOfFreedom, ChiSquaredMonotonicity,
                         ::testing::Values(1.0, 2.0, 5.0, 25.0, 100.0));

TEST(ErrorBoundMonotonicity, SqrtBIncreasesInCategories) {
  double previous = 0.0;
  for (double r : {2.0, 10.0, 100.0, 1e4, 1e6}) {
    double b = stats::SqrtB(0.05, r);
    EXPECT_GT(b, previous);
    previous = b;
  }
}

TEST(ErrorBoundMonotonicity, SqrtBIncreasesAsAlphaShrinks) {
  EXPECT_GT(stats::SqrtB(0.01, 10), stats::SqrtB(0.05, 10));
  EXPECT_GT(stats::SqrtB(0.05, 10), stats::SqrtB(0.2, 10));
}

TEST(ErrorBoundMonotonicity, RelativeErrorShrinksWithSampleSize) {
  double previous = 1e18;
  for (int64_t n : {100, 1000, 10000, 100000}) {
    double e = stats::EvenFrequencyRelativeError(16.0, n, 0.05);
    EXPECT_LT(e, previous) << "n=" << n;
    previous = e;
  }
  // And the sqrt(n) scaling is exact for fixed r and alpha.
  EXPECT_NEAR(stats::EvenFrequencyRelativeError(16.0, 100, 0.05) /
                  stats::EvenFrequencyRelativeError(16.0, 10000, 0.05),
              10.0, 1e-9);
}

TEST(ErrorBoundMonotonicity, JointErrorDominatesIndependent) {
  // For every prefix of any cardinality profile, the joint bound is at
  // least the independent bound (they coincide at m = 1).
  const std::vector<int64_t> cards = {9, 16, 7, 15, 6, 5, 2, 2};
  std::vector<int64_t> prefix;
  for (int64_t c : cards) {
    prefix.push_back(c);
    double independent =
        stats::RrIndependentEvenRelativeError(prefix, 32561, 0.05);
    double joint = stats::RrJointEvenRelativeError(prefix, 32561, 0.05);
    EXPECT_GE(joint, independent - 1e-12) << "m=" << prefix.size();
  }
}

class EpsilonMonotonicity
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(EpsilonMonotonicity, EpsilonOrdersWithKeepProbabilityAndDomain) {
  auto [r_small, r_large] = GetParam();
  // Epsilon increases in p at fixed r.
  double previous = -1.0;
  for (double p : {0.0, 0.2, 0.4, 0.6, 0.8, 0.99}) {
    double eps = KeepUniformEpsilon(r_small, p);
    EXPECT_GT(eps, previous - 1e-15);
    previous = eps;
  }
  // Epsilon increases in r at fixed p.
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_LT(KeepUniformEpsilon(r_small, p),
              KeepUniformEpsilon(r_large, p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainPairs, EpsilonMonotonicity,
    ::testing::Values(std::make_tuple<size_t, size_t>(2, 9),
                      std::make_tuple<size_t, size_t>(9, 16),
                      std::make_tuple<size_t, size_t>(16, 300)));

TEST(ConditionNumberMonotonicity, WorsensAsRandomizationStrengthens) {
  // Section 2.3: more off-diagonal mass -> worse error propagation.
  double previous = 0.0;
  for (double p_complement : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    RrMatrix m = RrMatrix::KeepUniform(8, 1.0 - p_complement);
    double kappa = m.ConditionNumber();
    EXPECT_GT(kappa, previous);
    previous = kappa;
  }
}

TEST(OptimalMatrixMonotonicity, DiagonalGrowsWithEpsilon) {
  double previous = 0.0;
  for (double eps : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    RrMatrix m = RrMatrix::OptimalForEpsilon(10, eps);
    EXPECT_GT(m.Prob(0, 0), previous);
    previous = m.Prob(0, 0);
  }
  // And the diagonal approaches 1 as eps -> inf.
  EXPECT_GT(RrMatrix::OptimalForEpsilon(10, 25.0).Prob(0, 0), 0.999);
}

}  // namespace
}  // namespace mdrr
