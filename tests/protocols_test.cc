#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

Dataset MakeCorrelatedDataset(size_t n, uint64_t seed) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"C", AttributeType::kNominal, {"0", "1"}},
  };
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> cols(3);
  for (size_t i = 0; i < n; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Discrete({0.5, 0.3, 0.2}));
    uint32_t b =
        rng.Bernoulli(0.85) ? a : static_cast<uint32_t>(rng.UniformInt(3));
    uint32_t c = static_cast<uint32_t>(rng.UniformInt(2));
    cols[0].push_back(a);
    cols[1].push_back(b);
    cols[2].push_back(c);
  }
  return Dataset(schema, std::move(cols));
}

// --- RR-Independent ---

TEST(RrIndependentTest, MarginalsRecoverTruth) {
  Dataset ds = MakeCorrelatedDataset(100000, 3);
  Rng rng(5);
  RrIndependentOptions options{0.6};
  auto result = RunRrIndependent(ds, options, rng);
  ASSERT_TRUE(result.ok());

  for (size_t j = 0; j < ds.num_attributes(); ++j) {
    std::vector<double> truth = EmpiricalDistribution(
        ds.column(j), ds.attribute(j).cardinality());
    for (size_t v = 0; v < truth.size(); ++v) {
      EXPECT_NEAR(result.value().estimated[j][v], truth[v], 0.02)
          << "attribute " << j << " category " << v;
    }
  }
}

TEST(RrIndependentTest, EpsilonAccounting) {
  Dataset ds = MakeCorrelatedDataset(100, 7);
  Rng rng(9);
  RrIndependentOptions options{0.5};
  auto result = RunRrIndependent(ds, options, rng);
  ASSERT_TRUE(result.ok());
  double expected = KeepUniformEpsilon(3, 0.5) * 2 + KeepUniformEpsilon(2, 0.5);
  EXPECT_NEAR(result.value().total_epsilon, expected, 1e-9);
}

TEST(RrIndependentTest, RandomizedDataHasSameShape) {
  Dataset ds = MakeCorrelatedDataset(500, 11);
  Rng rng(13);
  auto result = RunRrIndependent(ds, RrIndependentOptions{0.7}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().randomized.num_rows(), ds.num_rows());
  EXPECT_EQ(result.value().randomized.num_attributes(), ds.num_attributes());
}

TEST(RrIndependentTest, EmptyDatasetFails) {
  Dataset empty(std::vector<Attribute>{
      Attribute{"A", AttributeType::kNominal, {"x", "y"}}});
  Rng rng(1);
  EXPECT_FALSE(RunRrIndependent(empty, RrIndependentOptions{}, rng).ok());
}

TEST(RrIndependentTest, EstimateAnswersMarginalQuery) {
  Dataset ds = MakeCorrelatedDataset(50000, 17);
  Rng rng(19);
  auto result = RunRrIndependent(ds, RrIndependentOptions{0.8}, rng);
  ASSERT_TRUE(result.ok());
  IndependentMarginalsEstimate estimate = MakeIndependentEstimate(*result);

  CountQuery query;
  query.attributes = {0};
  query.tuples = {{0}};
  double truth = 0.0;
  for (uint32_t v : ds.column(0)) {
    if (v == 0) truth += 1.0;
  }
  EXPECT_NEAR(estimate.EstimateCount(query), truth, 0.05 * ds.num_rows());
}

// --- RR-Joint ---

TEST(RrJointTest, RecoversJointDistribution) {
  Dataset ds = MakeCorrelatedDataset(150000, 23);
  Rng rng(29);
  std::vector<size_t> attrs = {0, 1};
  double budget = ClusterEpsilonBudget(ds, attrs, 0.8);
  auto result = RunRrJoint(ds, attrs, budget, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().estimated.size(), 9u);

  // True joint.
  std::vector<double> truth(9, 0.0);
  for (size_t i = 0; i < ds.num_rows(); ++i) {
    truth[ds.at(i, 0) * 3 + ds.at(i, 1)] += 1.0 / ds.num_rows();
  }
  for (size_t k = 0; k < 9; ++k) {
    EXPECT_NEAR(result.value().estimated[k], truth[k], 0.02)
        << "cell " << k;
  }
}

TEST(RrJointTest, EpsilonMatchesBudget) {
  Dataset ds = MakeCorrelatedDataset(1000, 31);
  Rng rng(37);
  auto result = RunRrJoint(ds, {0, 2}, 2.0, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().epsilon, 2.0, 1e-9);
}

TEST(RrJointTest, RejectsEmptyAttributeSet) {
  Dataset ds = MakeCorrelatedDataset(10, 41);
  Rng rng(43);
  EXPECT_FALSE(RunRrJoint(ds, {}, 1.0, rng).ok());
}

TEST(RrJointTest, RejectsOversizedDomain) {
  // 40 binary attributes: domain 2^40 > 2^31 must be rejected, echoing
  // the Section 3.2 infeasibility discussion.
  std::vector<Attribute> schema;
  std::vector<std::vector<uint32_t>> cols;
  for (int j = 0; j < 40; ++j) {
    schema.push_back(
        Attribute{"b" + std::to_string(j), AttributeType::kNominal,
                  {"0", "1"}});
    cols.push_back({0, 1});
  }
  Dataset wide(schema, cols);
  std::vector<size_t> all;
  for (size_t j = 0; j < 40; ++j) all.push_back(j);
  Rng rng(47);
  auto result = RunRrJoint(wide, all, 1.0, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(ClusterEpsilonBudgetTest, SumsPerAttributeEpsilons) {
  Dataset ds = MakeCorrelatedDataset(10, 53);
  double expected = KeepUniformEpsilon(3, 0.5) + KeepUniformEpsilon(2, 0.5);
  EXPECT_NEAR(ClusterEpsilonBudget(ds, {0, 2}, 0.5), expected, 1e-12);
  double paper = PaperKeepUniformEpsilon(3, 0.5) +
                 PaperKeepUniformEpsilon(2, 0.5);
  EXPECT_NEAR(ClusterEpsilonBudget(ds, {0, 2}, 0.5, true), paper, 1e-12);
}

// --- RR-Clusters ---

TEST(RrClustersTest, ClustersCorrelatedPairTogether) {
  Dataset ds = MakeCorrelatedDataset(30000, 59);
  Rng rng(61);
  RrClustersOptions options;
  options.keep_probability = 0.7;
  options.clustering = ClusteringOptions{20.0, 0.1};
  options.dependence_source = DependenceSource::kOracle;
  auto result = RunRrClusters(ds, options, rng);
  ASSERT_TRUE(result.ok());

  // A and B (9 combinations <= 20) must share a cluster; C stays alone
  // (its dependence on A/B is ~0 < Td).
  ASSERT_EQ(result.value().clusters.size(), 2u);
  EXPECT_EQ(result.value().clusters[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(result.value().clusters[1], (std::vector<size_t>{2}));
}

TEST(RrClustersTest, JointWithinClusterBeatsIndependenceAssumption) {
  Dataset ds = MakeCorrelatedDataset(100000, 67);
  Rng rng(71);
  RrClustersOptions options;
  options.keep_probability = 0.8;
  options.clustering = ClusteringOptions{20.0, 0.1};
  auto clusters_result = RunRrClusters(ds, options, rng);
  ASSERT_TRUE(clusters_result.ok());

  Rng rng2(73);
  auto independent_result =
      RunRrIndependent(ds, RrIndependentOptions{0.8}, rng2);
  ASSERT_TRUE(independent_result.ok());

  // Query the strongly-correlated diagonal cell (A=0, B=0).
  CountQuery query;
  query.attributes = {0, 1};
  query.tuples = {{0, 0}};
  double truth = 0.0;
  for (size_t i = 0; i < ds.num_rows(); ++i) {
    if (ds.at(i, 0) == 0 && ds.at(i, 1) == 0) truth += 1.0;
  }

  ClusterFactorizationEstimate cluster_estimate =
      MakeClusterEstimate(*clusters_result);
  IndependentMarginalsEstimate independent_estimate =
      MakeIndependentEstimate(*independent_result);

  double cluster_error =
      std::fabs(cluster_estimate.EstimateCount(query) - truth);
  double independent_error =
      std::fabs(independent_estimate.EstimateCount(query) - truth);
  // The diagonal cell is heavily underestimated under independence; the
  // cluster joint captures it.
  EXPECT_LT(cluster_error, independent_error);
}

TEST(RrClustersTest, ReleaseEpsilonIsSumOfClusterBudgets) {
  Dataset ds = MakeCorrelatedDataset(5000, 79);
  Rng rng(83);
  RrClustersOptions options;
  options.keep_probability = 0.5;
  options.clustering = ClusteringOptions{20.0, 0.1};
  auto result = RunRrClusters(ds, options, rng);
  ASSERT_TRUE(result.ok());

  double expected = 0.0;
  for (const auto& cluster : result.value().clusters) {
    expected += ClusterEpsilonBudget(ds, cluster, 0.5);
  }
  EXPECT_NEAR(result.value().release_epsilon, expected, 1e-9);
  // Oracle dependences are free.
  EXPECT_DOUBLE_EQ(result.value().dependence_epsilon, 0.0);
}

TEST(RrClustersTest, ProvidedDependencesAreUsed) {
  Dataset ds = MakeCorrelatedDataset(2000, 89);
  // Claim C is strongly dependent on A (contradicting the data):
  // clustering must follow the provided matrix, not the data.
  linalg::Matrix fake(3, 3, 0.0);
  for (size_t i = 0; i < 3; ++i) fake(i, i) = 1.0;
  fake(0, 2) = fake(2, 0) = 0.9;
  RrClustersOptions options;
  options.clustering = ClusteringOptions{10.0, 0.5};
  options.dependence_source = DependenceSource::kProvided;
  options.provided_dependences = &fake;
  Rng rng(97);
  auto result = RunRrClusters(ds, options, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().clusters.size(), 2u);
  EXPECT_EQ(result.value().clusters[0], (std::vector<size_t>{0, 2}));
}

TEST(RrClustersTest, ProvidedWithoutMatrixFails) {
  Dataset ds = MakeCorrelatedDataset(100, 101);
  RrClustersOptions options;
  options.dependence_source = DependenceSource::kProvided;
  Rng rng(103);
  EXPECT_FALSE(RunRrClusters(ds, options, rng).ok());
}

TEST(RrClustersTest, InProtocolDependenceSourceSpendsEpsilon) {
  Dataset ds = MakeCorrelatedDataset(5000, 107);
  RrClustersOptions options;
  options.dependence_source = DependenceSource::kRandomizedResponse;
  options.dependence_keep_probability = 0.6;
  Rng rng(109);
  auto result = RunRrClusters(ds, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().dependence_epsilon, 0.0);
}

TEST(RrClustersTest, RandomizedDatasetDecodesConsistently) {
  Dataset ds = MakeCorrelatedDataset(1000, 113);
  Rng rng(127);
  RrClustersOptions options;
  options.clustering = ClusteringOptions{20.0, 0.1};
  auto result = RunRrClusters(ds, options, rng);
  ASSERT_TRUE(result.ok());

  // The decoded per-attribute columns must re-encode to the published
  // composite codes.
  for (size_t c = 0; c < result.value().clusters.size(); ++c) {
    const auto& cluster = result.value().clusters[c];
    const RrJointResult& joint = result.value().cluster_results[c];
    std::vector<uint32_t> recomposed = joint.domain.ComposeColumns(
        result.value().randomized, cluster);
    EXPECT_EQ(recomposed, joint.randomized_codes) << "cluster " << c;
  }
}

}  // namespace
}  // namespace mdrr
