#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/clustering.h"
#include "mdrr/core/dependence.h"
#include "mdrr/dataset/adult.h"

namespace mdrr {
namespace {

linalg::Matrix MakeDependences(
    size_t m, const std::vector<std::tuple<size_t, size_t, double>>& entries) {
  linalg::Matrix deps(m, m, 0.0);
  for (size_t i = 0; i < m; ++i) deps(i, i) = 1.0;
  for (const auto& [i, j, d] : entries) {
    deps(i, j) = d;
    deps(j, i) = d;
  }
  return deps;
}

TEST(ClusteringTest, MergesMostDependentPairFirst) {
  // Cards 3,3,3; dep(0,1)=0.9, dep(1,2)=0.5; Tv allows only one merge of
  // two attributes (3*3=9 <= 10 but 3*3*3=27 > 10).
  linalg::Matrix deps = MakeDependences(3, {{0, 1, 0.9}, {1, 2, 0.5}});
  ClusteringOptions options{/*max_combinations=*/10.0,
                            /*min_dependence=*/0.1};
  auto clusters = ClusterAttributes({3, 3, 3}, deps, options);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters.value().size(), 2u);
  EXPECT_EQ(clusters.value()[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(clusters.value()[1], (std::vector<size_t>{2}));
}

TEST(ClusteringTest, TdOneMeansNoClustering) {
  // Td > every dependence: all singletons (the paper: "Td = 1 means
  // attributes are never clustered").
  linalg::Matrix deps = MakeDependences(3, {{0, 1, 0.9}, {1, 2, 0.8}});
  ClusteringOptions options{1000.0, 1.0 + 1e-12};
  auto clusters = ClusterAttributes({3, 3, 3}, deps, options);
  ASSERT_TRUE(clusters.ok());
  EXPECT_EQ(clusters.value().size(), 3u);
}

TEST(ClusteringTest, TdZeroWithBigTvMergesEverything) {
  linalg::Matrix deps = MakeDependences(4, {{0, 1, 0.3}, {2, 3, 0.2}});
  ClusteringOptions options{1e9, 0.0};
  auto clusters = ClusterAttributes({2, 2, 2, 2}, deps, options);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters.value().size(), 1u);
  EXPECT_EQ(clusters.value()[0], (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ClusteringTest, TvBlocksOversizedMerge) {
  // dep(0,1) huge but 16*15=240 > Tv=100: must stay separate; the weaker
  // pair (2,3) with 2*2=4 merges.
  linalg::Matrix deps = MakeDependences(4, {{0, 1, 0.95}, {2, 3, 0.4}});
  ClusteringOptions options{100.0, 0.1};
  auto clusters = ClusterAttributes({16, 15, 2, 2}, deps, options);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters.value().size(), 3u);
  EXPECT_EQ(clusters.value()[0], (std::vector<size_t>{0}));
  EXPECT_EQ(clusters.value()[1], (std::vector<size_t>{1}));
  EXPECT_EQ(clusters.value()[2], (std::vector<size_t>{2, 3}));
}

TEST(ClusteringTest, ChainMergesTransitively) {
  // 0-1 strong, 1-2 strong: all three merge when Tv allows.
  linalg::Matrix deps = MakeDependences(3, {{0, 1, 0.9}, {1, 2, 0.8}});
  ClusteringOptions options{30.0, 0.5};
  auto clusters = ClusterAttributes({3, 3, 3}, deps, options);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters.value().size(), 1u);
  EXPECT_EQ(clusters.value()[0], (std::vector<size_t>{0, 1, 2}));
}

TEST(ClusteringTest, ClusterDependenceIsMaxCrossPair) {
  // After merging {0,1}, dep({0,1},{2}) = max(dep(0,2), dep(1,2)) = 0.6
  // >= Td, so 2 joins even though dep(0,2) is tiny.
  linalg::Matrix deps =
      MakeDependences(3, {{0, 1, 0.9}, {1, 2, 0.6}, {0, 2, 0.05}});
  ClusteringOptions options{27.0, 0.55};
  auto clusters = ClusterAttributes({3, 3, 3}, deps, options);
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters.value().size(), 1u);
}

TEST(ClusteringTest, PartitionInvariant) {
  // Output is always a partition of {0..m-1}.
  linalg::Matrix deps = MakeDependences(
      5, {{0, 1, 0.9}, {1, 2, 0.7}, {3, 4, 0.6}, {0, 4, 0.2}});
  ClusteringOptions options{50.0, 0.3};
  auto clusters = ClusterAttributes({3, 4, 2, 5, 2}, deps, options);
  ASSERT_TRUE(clusters.ok());
  std::vector<int> seen(5, 0);
  for (const auto& cluster : clusters.value()) {
    for (size_t j : cluster) {
      ASSERT_LT(j, 5u);
      ++seen[j];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ClusteringTest, RejectsBadInput) {
  linalg::Matrix deps = MakeDependences(2, {});
  EXPECT_FALSE(ClusterAttributes(std::vector<int64_t>{}, deps,
                                 ClusteringOptions{10, 0.1})
                   .ok());
  EXPECT_FALSE(
      ClusterAttributes({2, 2, 2}, deps, ClusteringOptions{10, 0.1}).ok());
  EXPECT_FALSE(
      ClusterAttributes({2, 2}, deps, ClusteringOptions{0.5, 0.1}).ok());
}

TEST(ClusteringTest, ClusterCombinations) {
  EXPECT_DOUBLE_EQ(ClusterCombinations({3, 4, 5}, {0, 2}), 15.0);
  EXPECT_DOUBLE_EQ(ClusterCombinations({3, 4, 5}, {1}), 4.0);
}

TEST(ClusteringTest, AdultWithPaperThresholds) {
  // Smoke check on the Adult dependence structure: with Tv=50, Td=0.1
  // (a Table 1 cell) the strongly-coupled Marital/Relationship/Sex family
  // clusters while total combinations stay within Tv.
  Dataset ds = SynthesizeAdult(20000, 91);
  linalg::Matrix deps = DependenceMatrix(ds);
  ClusteringOptions options{50.0, 0.1};
  auto clusters = ClusterAttributes(ds, deps, options);
  ASSERT_TRUE(clusters.ok());

  std::vector<int64_t> cards = ds.Cardinalities();
  for (const auto& cluster : clusters.value()) {
    EXPECT_LE(ClusterCombinations(cards, cluster), 50.0);
  }
  // Relationship and Sex form the strongest pair (6 * 2 = 12 <= 50), so
  // they must share a cluster. Marital-status cannot join them
  // (7 * 6 * 2 = 84 > Tv) -- the Tv cap visibly shapes the clustering.
  bool together = false;
  bool marital_with_them = false;
  for (const auto& cluster : clusters.value()) {
    bool has_sex = false;
    bool has_relationship = false;
    bool has_marital = false;
    for (size_t j : cluster) {
      if (j == kAdultSex) has_sex = true;
      if (j == kAdultRelationship) has_relationship = true;
      if (j == kAdultMaritalStatus) has_marital = true;
    }
    if (has_sex && has_relationship) {
      together = true;
      marital_with_them = has_marital;
    }
  }
  EXPECT_TRUE(together);
  EXPECT_FALSE(marital_with_them);

  std::string description = ClusteringToString(ds, clusters.value());
  EXPECT_NE(description.find("Relationship"), std::string::npos);
}

}  // namespace
}  // namespace mdrr
