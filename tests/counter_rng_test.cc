// Pins the counter-based backend: Philox4x32-10 against the Random123
// published test vectors, the O(1) Jump contract, the block-vs-scalar
// identity of BlockRng, and the element-addressed draw plans of
// AliasSampler::SampleBlock and RrMatrix::RandomizeRangeCounterInto.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/rr_matrix.h"
#include "mdrr/rng/alias_sampler.h"
#include "mdrr/rng/block_rng.h"
#include "mdrr/rng/counter_rng.h"

namespace mdrr {
namespace {

// Random123 kat_vectors, philox4x32-10. Counter and key are given in the
// kat file's word order (c0 c1 c2 c3, k0 k1).
TEST(PhiloxTest, KnownAnswerZero) {
  const PhiloxBlock b = Philox4x32(0, 0, 0, 0, 0, 0);
  EXPECT_EQ(b.w[0], 0x6627e8d5u);
  EXPECT_EQ(b.w[1], 0xe169c58du);
  EXPECT_EQ(b.w[2], 0xbc57ac4cu);
  EXPECT_EQ(b.w[3], 0x9b00dbd8u);
}

TEST(PhiloxTest, KnownAnswerAllOnes) {
  const PhiloxBlock b =
      Philox4x32(0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu,
                 0xffffffffu, 0xffffffffu);
  EXPECT_EQ(b.w[0], 0x408f276du);
  EXPECT_EQ(b.w[1], 0x41c83b0eu);
  EXPECT_EQ(b.w[2], 0xa20bc7c6u);
  EXPECT_EQ(b.w[3], 0x6d5451fdu);
}

TEST(PhiloxTest, KnownAnswerPiDigits) {
  const PhiloxBlock b =
      Philox4x32(0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u,
                 0xa4093822u, 0x299f31d0u);
  EXPECT_EQ(b.w[0], 0xd16cfe09u);
  EXPECT_EQ(b.w[1], 0x94fdccebu);
  EXPECT_EQ(b.w[2], 0x5001e420u);
  EXPECT_EQ(b.w[3], 0x24126ea1u);
}

TEST(CounterRngTest, WordsFollowElementBlockLayout) {
  CounterRng rng(/*seed=*/0x0123456789abcdefull, /*stream=*/42);
  for (uint64_t block = 0; block < 8; ++block) {
    const PhiloxBlock expected =
        PhiloxElementBlock(0x0123456789abcdefull, 42, block);
    for (int w = 0; w < 4; ++w) {
      EXPECT_EQ(rng.NextU32(), expected.w[w]);
    }
  }
}

TEST(CounterRngTest, JumpEqualsSequentialDraws) {
  for (uint64_t n : {0ull, 1ull, 3ull, 4ull, 7ull, 1000ull, 123457ull}) {
    CounterRng jumped(5, 9);
    jumped.Jump(n);
    CounterRng walked(5, 9);
    for (uint64_t i = 0; i < n; ++i) walked.NextU32();
    EXPECT_EQ(jumped.position(), walked.position());
    // Same continuation after the skip.
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(jumped.NextU32(), walked.NextU32());
    }
  }
}

TEST(CounterRngTest, JumpIsReachableFromAnywhere) {
  // A jump far beyond anything walkable stays O(1) and lands on the
  // element-block layout.
  CounterRng rng(1, 0);
  rng.Jump((1ull << 40) * 4);
  const PhiloxBlock expected = PhiloxElementBlock(1, 0, 1ull << 40);
  EXPECT_EQ(rng.NextU32(), expected.w[0]);
}

TEST(CounterRngTest, StreamsAndSeedsAreIndependent) {
  CounterRng a(1, 0);
  CounterRng b(1, 1);
  CounterRng c(2, 0);
  int differ_ab = 0;
  int differ_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const uint32_t wa = a.NextU32();
    if (wa != b.NextU32()) ++differ_ab;
    if (wa != c.NextU32()) ++differ_ac;
  }
  EXPECT_GT(differ_ab, 60);
  EXPECT_GT(differ_ac, 60);
}

TEST(CounterRngTest, AlignedScalarPairReplaysElementBlock) {
  // The documented consumption order: NextDouble then NextU64 from an
  // aligned position consumes exactly element block position/4.
  const uint64_t seed = 77;
  const uint64_t stream = 3;
  CounterRng rng(seed, stream);
  for (uint64_t element = 0; element < 16; ++element) {
    const PhiloxBlock block = PhiloxElementBlock(seed, stream, element);
    const uint64_t lo64 =
        (static_cast<uint64_t>(block.w[1]) << 32) | block.w[0];
    const uint64_t hi64 =
        (static_cast<uint64_t>(block.w[3]) << 32) | block.w[2];
    EXPECT_EQ(rng.NextDouble(), PhiloxUnitFromU64(lo64));
    EXPECT_EQ(rng.NextU64(), hi64);
  }
}

TEST(CounterRngTest, BoundedDrawsRespectBound) {
  CounterRng rng(11, 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.BoundedU64(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.BoundedU64(1), 0u);
  }
}

TEST(BlockRngTest, FillU32MatchesScalar) {
  for (size_t head : {size_t{0}, size_t{1}, size_t{2}, size_t{3}}) {
    BlockRng block(9, 4);
    CounterRng scalar(9, 4);
    block.source().Jump(head);
    scalar.Jump(head);
    std::vector<uint32_t> filled(1031);
    block.FillU32(filled.data(), filled.size());
    for (uint32_t w : filled) {
      EXPECT_EQ(w, scalar.NextU32());
    }
    EXPECT_EQ(block.source().position(), scalar.position());
  }
}

TEST(BlockRngTest, FillU64MatchesScalar) {
  BlockRng block(13, 2);
  CounterRng scalar(13, 2);
  std::vector<uint64_t> filled(777);
  block.FillU64(filled.data(), filled.size());
  for (uint64_t w : filled) {
    EXPECT_EQ(w, scalar.NextU64());
  }
}

TEST(BlockRngTest, FillDoubleMatchesScalar) {
  BlockRng block(13, 2);
  CounterRng scalar(13, 2);
  std::vector<double> filled(777);
  block.FillDouble(filled.data(), filled.size());
  for (double u : filled) {
    EXPECT_EQ(u, scalar.NextDouble());
  }
}

TEST(BlockRngTest, FillBoundedU64MatchesScalar) {
  BlockRng block(13, 2);
  CounterRng scalar(13, 2);
  std::vector<uint64_t> filled(777);
  block.FillBoundedU64(101, filled.data(), filled.size());
  for (uint64_t v : filled) {
    EXPECT_LT(v, 101u);
    EXPECT_EQ(v, scalar.BoundedU64(101));
  }
}

TEST(BlockRngTest, SplitFillsEqualOneFill) {
  BlockRng whole(21, 6);
  std::vector<uint32_t> expect(640);
  whole.FillU32(expect.data(), expect.size());

  BlockRng split(21, 6);
  std::vector<uint32_t> got(640);
  size_t at = 0;
  for (size_t piece : {size_t{1}, size_t{6}, size_t{121}, size_t{512}}) {
    split.FillU32(got.data() + at, piece);
    at += piece;
  }
  ASSERT_EQ(at, got.size());
  EXPECT_EQ(got, expect);
}

TEST(PhiloxFillTest, ElementDrawsMatchAlignedScalar) {
  const uint64_t seed = 31;
  const uint64_t stream = 8;
  const uint64_t first = 1000;
  const size_t count = 600;
  std::vector<double> units(count);
  std::vector<uint64_t> raws(count);
  PhiloxFillElementDraws(seed, stream, first, count, units.data(),
                         raws.data());
  CounterRng scalar(seed, stream);
  scalar.Jump(first * 4);
  for (size_t k = 0; k < count; ++k) {
    EXPECT_EQ(units[k], scalar.NextDouble());
    EXPECT_EQ(raws[k], scalar.NextU64());
  }
}

TEST(AliasSamplerTest, SampleBlockMatchesSampleFrom) {
  AliasSampler sampler({0.5, 0.2, 0.1, 0.15, 0.05});
  const size_t count = 4096;
  std::vector<double> units(count);
  std::vector<uint64_t> raws(count);
  PhiloxFillElementDraws(3, 1, 0, count, units.data(), raws.data());
  std::vector<uint32_t> block(count);
  sampler.SampleBlock(units.data(), raws.data(), count, block.data());
  for (size_t k = 0; k < count; ++k) {
    EXPECT_EQ(block[k], sampler.SampleFrom(units[k], raws[k]));
    EXPECT_LT(block[k], sampler.size());
  }
}

TEST(AliasSamplerTest, SampleFromTracksWeights) {
  const std::vector<double> weights = {0.5, 0.2, 0.1, 0.15, 0.05};
  AliasSampler sampler(weights);
  const size_t count = 200000;
  std::vector<double> units(count);
  std::vector<uint64_t> raws(count);
  PhiloxFillElementDraws(99, 0, 0, count, units.data(), raws.data());
  std::vector<uint32_t> draws(count);
  sampler.SampleBlock(units.data(), raws.data(), count, draws.data());
  std::vector<size_t> hist(weights.size(), 0);
  for (uint32_t d : draws) ++hist[d];
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(hist[i]) / count, weights[i], 0.01);
  }
}

// The range kernel's tiling invariance: any [begin, end) decomposition,
// including per-element, yields the same column and counts.
void ExpectTilingInvariant(const RrMatrix& matrix,
                           const std::vector<uint32_t>& codes) {
  const uint64_t seed = 17;
  const uint64_t stream = 5;
  const size_t n = codes.size();

  std::vector<uint32_t> whole(n);
  std::vector<int64_t> whole_counts(matrix.size(), 0);
  matrix.RandomizeRangeCounterInto(codes, 0, n, seed, stream, whole.data(),
                                   whole_counts.data());

  // Per-element scalar draws.
  std::vector<int64_t> histogram(matrix.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(whole[i], matrix.RandomizeCounter(codes[i], seed, stream, i));
    ++histogram[whole[i]];
  }
  EXPECT_EQ(whole_counts, histogram);

  // An uneven tiling.
  std::vector<uint32_t> tiled(n);
  std::vector<int64_t> tiled_counts(matrix.size(), 0);
  size_t begin = 0;
  size_t step = 1;
  while (begin < n) {
    const size_t end = std::min(n, begin + step);
    matrix.RandomizeRangeCounterInto(codes, begin, end, seed, stream,
                                     tiled.data(), tiled_counts.data());
    begin = end;
    step = step * 3 + 1;
  }
  EXPECT_EQ(tiled, whole);
  EXPECT_EQ(tiled_counts, whole_counts);
}

TEST(RrMatrixCounterTest, StructuredMixedTilingInvariant) {
  RrMatrix matrix = RrMatrix::KeepUniform(6, 0.7);
  std::vector<uint32_t> codes(1531);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<uint32_t>(i % 6);
  }
  ExpectTilingInvariant(matrix, codes);
}

TEST(RrMatrixCounterTest, IdentityAndUniformDesigns) {
  std::vector<uint32_t> codes(700);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<uint32_t>(i % 5);
  }
  ExpectTilingInvariant(RrMatrix::Identity(5), codes);
  ExpectTilingInvariant(RrMatrix::UniformReplacement(5), codes);

  // Identity must pass codes through untouched.
  std::vector<uint32_t> out(codes.size());
  RrMatrix::Identity(5).RandomizeRangeCounterInto(codes, 0, codes.size(), 1,
                                                  0, out.data(), nullptr);
  EXPECT_EQ(out, codes);
}

TEST(RrMatrixCounterTest, DenseTilingInvariant) {
  // A dense (non-uniform-mixture) design exercises the alias path.
  linalg::Matrix p(3, 3);
  p(0, 0) = 0.8; p(0, 1) = 0.1; p(0, 2) = 0.1;
  p(1, 0) = 0.2; p(1, 1) = 0.6; p(1, 2) = 0.2;
  p(2, 0) = 0.05; p(2, 1) = 0.15; p(2, 2) = 0.8;
  auto matrix = RrMatrix::FromDense(p);
  ASSERT_TRUE(matrix.ok());
  std::vector<uint32_t> codes(911);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<uint32_t>(i % 3);
  }
  ExpectTilingInvariant(matrix.value(), codes);
}

TEST(RrMatrixCounterTest, KeepProbabilityIsHonored) {
  // unit < alpha replaces, so the keep rate tracks 1 - alpha + alpha/r.
  RrMatrix matrix = RrMatrix::KeepUniform(4, 0.6);
  const size_t n = 200000;
  std::vector<uint32_t> codes(n, 2);
  std::vector<uint32_t> out(n);
  matrix.RandomizeRangeCounterInto(codes, 0, n, 23, 0, out.data(), nullptr);
  size_t kept = 0;
  for (uint32_t y : out) {
    if (y == 2) ++kept;
  }
  const double expected = matrix.Prob(2, 2);
  EXPECT_NEAR(static_cast<double>(kept) / n, expected, 0.01);
}

}  // namespace
}  // namespace mdrr
