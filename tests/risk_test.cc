#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/risk.h"
#include "mdrr/core/rr_matrix.h"

namespace mdrr {
namespace {

TEST(PosteriorMatrixTest, ColumnsAreDistributions) {
  RrMatrix p = RrMatrix::KeepUniform(4, 0.6);
  std::vector<double> prior = {0.4, 0.3, 0.2, 0.1};
  auto posterior = PosteriorMatrix(p, prior);
  ASSERT_TRUE(posterior.ok());
  for (size_t v = 0; v < 4; ++v) {
    double column_sum = 0.0;
    for (size_t u = 0; u < 4; ++u) {
      EXPECT_GE(posterior.value()(u, v), 0.0);
      column_sum += posterior.value()(u, v);
    }
    EXPECT_NEAR(column_sum, 1.0, 1e-12) << "column " << v;
  }
}

TEST(PosteriorMatrixTest, BayesHandComputed) {
  // Binary Warner design, p = 0.75, prior (0.5, 0.5):
  // Pr(X=0 | Y=0) = 0.75*0.5 / (0.75*0.5 + 0.25*0.5) = 0.75.
  RrMatrix p = RrMatrix::FlatOffDiagonal(2, 0.75);
  auto posterior = PosteriorMatrix(p, {0.5, 0.5});
  ASSERT_TRUE(posterior.ok());
  EXPECT_NEAR(posterior.value()(0, 0), 0.75, 1e-12);
  EXPECT_NEAR(posterior.value()(1, 0), 0.25, 1e-12);
}

TEST(PosteriorMatrixTest, SkewedPriorShiftsPosterior) {
  RrMatrix p = RrMatrix::FlatOffDiagonal(2, 0.75);
  // A very rare sensitive value stays unlikely even when reported.
  auto posterior = PosteriorMatrix(p, {0.99, 0.01});
  ASSERT_TRUE(posterior.ok());
  // Pr(X=1 | Y=1) = 0.75*0.01 / (0.75*0.01 + 0.25*0.99) = 0.0294...
  EXPECT_NEAR(posterior.value()(1, 1),
              0.75 * 0.01 / (0.75 * 0.01 + 0.25 * 0.99), 1e-12);
  EXPECT_LT(posterior.value()(1, 1), 0.05);
}

TEST(PosteriorMatrixTest, InputValidation) {
  RrMatrix p = RrMatrix::KeepUniform(3, 0.5);
  EXPECT_FALSE(PosteriorMatrix(p, {0.5, 0.5}).ok());
  EXPECT_FALSE(PosteriorMatrix(p, {0.5, 0.6, 0.2}).ok());
  EXPECT_FALSE(PosteriorMatrix(p, {1.2, -0.1, -0.1}).ok());
}

TEST(BestGuessConfidenceTest, IdentityMatrixGivesCertainty) {
  RrMatrix id = RrMatrix::Identity(3);
  auto risk = BestGuessConfidence(id, {0.5, 0.3, 0.2});
  ASSERT_TRUE(risk.ok());
  for (double r : risk.value()) EXPECT_NEAR(r, 1.0, 1e-12);
}

TEST(BestGuessConfidenceTest, UniformReplacementGivesPriorBaseline) {
  // Output independent of input: the attacker only has the prior.
  RrMatrix uniform = RrMatrix::UniformReplacement(3);
  std::vector<double> prior = {0.5, 0.3, 0.2};
  auto risk = BestGuessConfidence(uniform, prior);
  ASSERT_TRUE(risk.ok());
  for (double r : risk.value()) {
    EXPECT_NEAR(r, PriorBaselineRisk(prior), 1e-12);
  }
}

TEST(ExpectedDisclosureRiskTest, BetweenBaselineAndOne) {
  std::vector<double> prior = {0.6, 0.25, 0.15};
  for (double keep : {0.1, 0.5, 0.9}) {
    RrMatrix p = RrMatrix::KeepUniform(3, keep);
    auto risk = ExpectedDisclosureRisk(p, prior);
    ASSERT_TRUE(risk.ok());
    EXPECT_GE(risk.value(), PriorBaselineRisk(prior) - 1e-12);
    EXPECT_LE(risk.value(), 1.0 + 1e-12);
  }
}

TEST(ExpectedDisclosureRiskTest, MonotoneInKeepProbability) {
  std::vector<double> prior = {0.5, 0.3, 0.2};
  double previous = 0.0;
  for (double keep : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    RrMatrix p = RrMatrix::KeepUniform(3, keep);
    auto risk = ExpectedDisclosureRisk(p, prior);
    ASSERT_TRUE(risk.ok());
    EXPECT_GE(risk.value(), previous - 1e-12) << "keep = " << keep;
    previous = risk.value();
  }
  // Extremes: pure noise -> prior baseline; identity -> certainty.
  auto noise = ExpectedDisclosureRisk(RrMatrix::KeepUniform(3, 0.0), prior);
  EXPECT_NEAR(noise.value(), 0.5, 1e-12);
  auto exact = ExpectedDisclosureRisk(RrMatrix::KeepUniform(3, 1.0), prior);
  EXPECT_NEAR(exact.value(), 1.0, 1e-12);
}

TEST(PriorBaselineRiskTest, MaxOfPrior) {
  EXPECT_DOUBLE_EQ(PriorBaselineRisk({0.2, 0.5, 0.3}), 0.5);
  EXPECT_DOUBLE_EQ(PriorBaselineRisk({1.0}), 1.0);
}

}  // namespace
}  // namespace mdrr
