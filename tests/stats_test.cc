#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/stats/descriptive.h"
#include "mdrr/stats/error_bounds.h"
#include "mdrr/stats/frequency.h"
#include "mdrr/stats/quantiles.h"
#include "mdrr/stats/special_functions.h"

namespace mdrr::stats {
namespace {

// --- Special functions ---

TEST(SpecialFunctionsTest, RegularizedGammaBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(1.0, 0.0), 1.0);
}

TEST(SpecialFunctionsTest, GammaPExponentialSpecialCase) {
  // For a = 1, P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-13);
  }
}

TEST(SpecialFunctionsTest, GammaPPlusQIsOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.2, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-13);
    }
  }
}

TEST(SpecialFunctionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(StandardNormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(-1.959963984540054), 0.025, 1e-12);
}

TEST(SpecialFunctionsTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999, 0.9999999}) {
    double x = StandardNormalQuantile(p);
    EXPECT_NEAR(StandardNormalCdf(x), p, 1e-12) << "p = " << p;
  }
}

TEST(SpecialFunctionsTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(StandardNormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(StandardNormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(StandardNormalQuantile(0.841344746068543), 1.0, 1e-9);
}

// --- Chi-squared ---

TEST(ChiSquaredTest, CdfOneDofClosedForm) {
  // CDF_1(x) = 2 Phi(sqrt(x)) - 1.
  for (double x : {0.1, 1.0, 3.84, 10.0}) {
    double expected = 2.0 * StandardNormalCdf(std::sqrt(x)) - 1.0;
    EXPECT_NEAR(ChiSquaredCdf(1.0, x), expected, 1e-12);
  }
}

TEST(ChiSquaredTest, QuantileKnownValues) {
  // Classic table values.
  EXPECT_NEAR(ChiSquaredQuantile(1.0, 0.95), 3.841458820694124, 1e-8);
  EXPECT_NEAR(ChiSquaredQuantile(2.0, 0.95), 5.991464547107979, 1e-8);
  EXPECT_NEAR(ChiSquaredQuantile(10.0, 0.95), 18.307038053275146, 1e-7);
  EXPECT_NEAR(ChiSquaredQuantile(1.0, 0.99), 6.634896601021213, 1e-8);
}

TEST(ChiSquaredTest, QuantileInvertsCdf) {
  for (double dof : {1.0, 2.0, 5.0, 30.0}) {
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
      double x = ChiSquaredQuantile(dof, p);
      EXPECT_NEAR(ChiSquaredCdf(dof, x), p, 1e-9)
          << "dof = " << dof << " p = " << p;
    }
  }
}

TEST(ChiSquaredTest, UpperPercentile) {
  // Upper 5% point of chi2(1) is the 95% quantile.
  EXPECT_NEAR(ChiSquaredUpperPercentile(1.0, 0.05), 3.841458820694124, 1e-8);
}

// --- Descriptive ---

TEST(DescriptiveTest, MeanVariance) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);  // Population variance.
}

TEST(DescriptiveTest, CovarianceAndPearson) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};  // y = 2x: perfect correlation.
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 1.0);
  std::vector<double> y_neg = {10, 8, 6, 4, 2};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y_neg), -1.0);
  EXPECT_DOUBLE_EQ(Covariance(x, x), Variance(x));
}

TEST(DescriptiveTest, PearsonOfConstantIsZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> constant = {5, 5, 5};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, constant), 0.0);
}

TEST(DescriptiveTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  std::vector<double> v = {0, 10, 20, 30};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 15.0);
}

// --- Error bounds (Section 2.3 / Figure 1) ---

TEST(ErrorBoundsTest, ThompsonBMatchesChiSquared) {
  // B at alpha = 0.05, r = 1 is the 95% point of chi2(1).
  EXPECT_NEAR(ThompsonB(0.05, 1.0), 3.841458820694124, 1e-8);
  // More categories -> smaller tail probability -> larger B.
  EXPECT_GT(ThompsonB(0.05, 10.0), ThompsonB(0.05, 2.0));
}

TEST(ErrorBoundsTest, SqrtBFigureOneShape) {
  // Figure 1: sqrt(B) at alpha=0.05 is ~2.24 for r=2 and below ~5 even at
  // r = 100000, growing monotonically.
  double at_2 = SqrtB(0.05, 2);
  double at_100 = SqrtB(0.05, 100);
  double at_100000 = SqrtB(0.05, 100000);
  EXPECT_NEAR(at_2, 2.24, 0.03);
  EXPECT_GT(at_100, at_2);
  EXPECT_GT(at_100000, at_100);
  EXPECT_LT(at_100000, 5.1);
  EXPECT_GT(at_100000, 4.5);
}

TEST(ErrorBoundsTest, AbsoluteErrorBoundEvenDistribution) {
  // Expression (5) with lambda = (1/2, 1/2):
  // e_abs = sqrt(B * 0.25 / n), B at alpha/2.
  std::vector<double> lambda = {0.5, 0.5};
  double b = ThompsonB(0.05, 2.0);
  EXPECT_NEAR(AbsoluteErrorBound(lambda, 1000, 0.05),
              std::sqrt(b * 0.25 / 1000.0), 1e-12);
}

TEST(ErrorBoundsTest, RelativeErrorBoundWorstCategory) {
  // The rarest category dominates Expression (6).
  std::vector<double> lambda = {0.9, 0.1};
  double b = ThompsonB(0.05, 2.0);
  EXPECT_NEAR(RelativeErrorBound(lambda, 1000, 0.05),
              std::sqrt(b * 0.9 / 0.1 / 1000.0), 1e-12);
}

TEST(ErrorBoundsTest, RelativeErrorSkipsZeroCategories) {
  std::vector<double> lambda = {1.0, 0.0};
  // Only the lambda=1 category participates; its relative error is 0.
  EXPECT_DOUBLE_EQ(RelativeErrorBound(lambda, 100, 0.05), 0.0);
}

TEST(ErrorBoundsTest, Section33JointBlowsUpWithAttributes) {
  // Section 3.3: RR-Joint error grows as sqrt of the product of
  // cardinalities; RR-Independent only sees the worst single attribute.
  std::vector<int64_t> cards = {9, 16, 7, 15, 6, 5, 2, 2};  // Adult.
  int64_t n = 32561;
  double independent = RrIndependentEvenRelativeError(cards, n, 0.05);
  double joint = RrJointEvenRelativeError(cards, n, 0.05);
  EXPECT_LT(independent, 0.2);   // Modest for single attributes.
  EXPECT_GT(joint, 2.0);         // Paper: far above 200%.
  EXPECT_GT(joint, independent * 10);
}

TEST(ErrorBoundsTest, EvenFrequencyMatchesManualFormula) {
  double b = ThompsonB(0.05, 16.0);
  EXPECT_NEAR(EvenFrequencyRelativeError(16.0, 32561, 0.05),
              std::sqrt(b * 15.0 / 32561.0), 1e-12);
}

// --- Frequency tables ---

TEST(FrequencyTableTest, FromCodes) {
  FrequencyTable table({0, 1, 1, 2, 1}, 4);
  EXPECT_EQ(table.total(), 5);
  EXPECT_EQ(table.counts(), (std::vector<int64_t>{1, 3, 1, 0}));
  std::vector<double> p = table.Proportions();
  EXPECT_DOUBLE_EQ(p[1], 0.6);
  EXPECT_DOUBLE_EQ(p[3], 0.0);
}

TEST(FrequencyTableTest, FromCountsAndEmpty) {
  FrequencyTable table(std::vector<int64_t>{2, 2});
  EXPECT_EQ(table.total(), 4);
  FrequencyTable empty(std::vector<int64_t>{0, 0});
  EXPECT_EQ(empty.total(), 0);
  EXPECT_DOUBLE_EQ(empty.Proportions()[0], 0.0);
}

TEST(FrequencyTableTest, AbsorbMergesShardCounts) {
  FrequencyTable total(std::vector<int64_t>{0, 0, 0});
  total.Absorb(FrequencyTable({0, 1, 1}, 3));
  total.Absorb(FrequencyTable({2, 2, 1}, 3));
  total.Absorb(FrequencyTable(std::vector<int64_t>{0, 0, 0}));
  EXPECT_EQ(total.total(), 6);
  EXPECT_EQ(total.counts(), (std::vector<int64_t>{1, 3, 2}));
  // Matches counting the concatenated codes in one pass.
  FrequencyTable whole({0, 1, 1, 2, 2, 1}, 3);
  EXPECT_EQ(total.counts(), whole.counts());
}

TEST(ContingencyTableTest, MarginalsAndCells) {
  // Pairs: (0,0) x2, (0,1) x1, (1,1) x1.
  ContingencyTable table({0, 0, 0, 1}, 2, {0, 0, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(table.Cell(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(table.Cell(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(table.Cell(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(table.RowMarginal(0), 3.0);
  EXPECT_DOUBLE_EQ(table.ColMarginal(1), 2.0);
}

TEST(ContingencyTableTest, IndependenceGivesZeroChiSquared) {
  // Perfectly independent joint: counts = outer product of marginals.
  std::vector<double> joint = {0.06, 0.14, 0.24, 0.56};  // (0.2,0.8)x(0.3,0.7)
  ContingencyTable table(joint, 2, 2, 1000.0);
  EXPECT_NEAR(table.ChiSquaredStatistic(), 0.0, 1e-9);
  EXPECT_NEAR(table.CramersV(), 0.0, 1e-6);
}

TEST(ContingencyTableTest, PerfectDependenceGivesVOne) {
  // Diagonal joint: B fully determined by A.
  std::vector<uint32_t> a = {0, 0, 1, 1, 2, 2};
  ContingencyTable table(a, 3, a, 3);
  EXPECT_NEAR(table.CramersV(), 1.0, 1e-12);
}

TEST(ContingencyTableTest, SingleCategoryHasZeroV) {
  ContingencyTable table({0, 0, 0}, 1, {0, 1, 2}, 3);
  EXPECT_DOUBLE_EQ(table.CramersV(), 0.0);
}

TEST(ContingencyTableTest, ChiSquaredHandComputed) {
  // 2x2 with counts [[10, 20], [20, 10]]: chi2 = 60*(10*10-20*20)^2 /
  // (30*30*30*30) = 6.666...
  std::vector<double> counts = {10, 20, 20, 10};
  ContingencyTable table(counts, 2, 2, 60.0);
  EXPECT_NEAR(table.ChiSquaredStatistic(), 60.0 * 90000.0 / 810000.0, 1e-9);
}

}  // namespace
}  // namespace mdrr::stats
