#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/mpc/secure_sum.h"
#include "mdrr/rng/rng.h"
#include "mdrr/stats/frequency.h"

namespace mdrr::mpc {
namespace {

TEST(SecureSumTest, LiteralProtocolComputesSum) {
  Rng rng(1);
  SecureSumSession session(101, SimulationMode::kLiteralShares);
  auto result = session.Run({3, 7, 11, 20}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 41u);
}

TEST(SecureSumTest, FastModeMatchesLiteral) {
  Rng rng_a(2);
  Rng rng_b(3);
  SecureSumSession literal(1000, SimulationMode::kLiteralShares);
  SecureSumSession fast(1000, SimulationMode::kFastSimulation);
  std::vector<uint64_t> contributions = {0, 1, 0, 1, 1, 1, 0, 999 % 1000};
  auto a = literal.Run(contributions, rng_a);
  auto b = fast.Run(contributions, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(SecureSumTest, ResultIsModular) {
  Rng rng(5);
  SecureSumSession session(10, SimulationMode::kLiteralShares);
  // 7 + 8 = 15 = 5 (mod 10).
  auto result = session.Run({7, 8}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 5u);
}

TEST(SecureSumTest, PaperModulusCountsParties) {
  // The paper's setting: 0/1 contributions, modulus n + 1, so the sum is
  // exact.
  const size_t n = 50;
  Rng rng(7);
  SecureSumSession session(n + 1, SimulationMode::kLiteralShares);
  std::vector<uint64_t> contributions(n, 0);
  for (size_t i = 0; i < n; i += 3) contributions[i] = 1;
  uint64_t expected = 0;
  for (uint64_t c : contributions) expected += c;
  auto result = session.Run(contributions, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), expected);
}

TEST(SecureSumTest, SingleParty) {
  Rng rng(11);
  SecureSumSession session(7, SimulationMode::kLiteralShares);
  auto result = session.Run({4}, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 4u);
}

TEST(SecureSumTest, RejectsBadInput) {
  Rng rng(13);
  SecureSumSession session(10, SimulationMode::kLiteralShares);
  EXPECT_FALSE(session.Run({}, rng).ok());
  EXPECT_FALSE(session.Run({10}, rng).ok());  // Contribution >= modulus.
}

TEST(SecureSumTest, DeterministicForSeedButSumInvariant) {
  // Different share randomness must never change the protocol output.
  SecureSumSession session(1000, SimulationMode::kLiteralShares);
  std::vector<uint64_t> contributions = {5, 6, 7};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto result = session.Run(contributions, rng);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), 18u);
  }
}

TEST(SecureSumTest, MessageCount) {
  EXPECT_EQ(SecureSumSession::MessageCount(10), 110u);  // n^2 + n.
}

TEST(SecureFrequencyOracleTest, BivariateCountsMatchDirectCounts) {
  std::vector<uint32_t> a = {0, 0, 1, 1, 2, 2, 0, 1};
  std::vector<uint32_t> b = {0, 1, 0, 1, 0, 1, 0, 0};
  SecureFrequencyOracle oracle(SimulationMode::kLiteralShares, 17);
  auto counts = oracle.BivariateCounts(a, 3, b, 2);
  ASSERT_TRUE(counts.ok());

  stats::ContingencyTable direct(a, 3, b, 2);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(counts.value()[i * 2 + j],
                static_cast<int64_t>(direct.Cell(i, j)))
          << "cell " << i << "," << j;
    }
  }
}

TEST(SecureFrequencyOracleTest, FastModeIdenticalToLiteral) {
  std::vector<uint32_t> a = {0, 1, 1, 0, 1};
  std::vector<uint32_t> b = {1, 1, 0, 0, 1};
  SecureFrequencyOracle literal(SimulationMode::kLiteralShares, 19);
  SecureFrequencyOracle fast(SimulationMode::kFastSimulation, 23);
  auto c1 = literal.BivariateCounts(a, 2, b, 2);
  auto c2 = fast.BivariateCounts(a, 2, b, 2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1.value(), c2.value());
}

TEST(SecureFrequencyOracleTest, RejectsMismatchedInput) {
  SecureFrequencyOracle oracle(SimulationMode::kFastSimulation, 29);
  EXPECT_FALSE(oracle.BivariateCounts({0, 1}, 2, {0}, 2).ok());
  EXPECT_FALSE(oracle.BivariateCounts({}, 2, {}, 2).ok());
}

TEST(SecureFrequencyOracleTest, CommunicationCostFormula) {
  // O(|A_i| |A_j| n) messages: cells * (n^2 + n).
  EXPECT_EQ(SecureFrequencyOracle::BivariateMessageCount(3, 2, 10),
            6u * 110u);
}

}  // namespace
}  // namespace mdrr::mpc
