// Fuzz suite for the net/ decoders: every parser that can face a peer
// gets truncated prefixes, bit-flipped bytes, and hostile length claims.
// The contract is uniform -- untrusted bytes produce a Status, never a
// crash, CHECK, or unbounded allocation.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/common/parallel.h"
#include "mdrr/net/frame.h"
#include "mdrr/net/protocol.h"
#include "mdrr/net/socket.h"
#include "mdrr/net/wire.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace net {
namespace {

constexpr int kMutationsPerSeed = 200;

// One well-formed exemplar per parser, so truncations and mutations
// start from bytes that exercise the deep decode paths.
std::vector<std::vector<uint8_t>> Exemplars() {
  std::vector<std::vector<uint8_t>> exemplars;

  exemplars.push_back(EncodeHello(HelloMsg{}));

  AssignShardsMsg assign;
  assign.task_id = 3;
  assign.rng_kind = 0;
  assign.seed = 11;
  assign.stream_base = 5;
  assign.counter_stream = 2;
  assign.matrix = RrMatrix::KeepUniform(4, 0.7);
  assign.shards.push_back({0, 0, {0, 1, 2, 3, 0}});
  assign.shards.push_back({1, 5, {3, 3}});
  exemplars.push_back(EncodeAssignShards(assign));

  PartialResultMsg partial;
  partial.task_id = 3;
  partial.shards.push_back({0, {1, 1, 0, 2, 3}});
  partial.counts = {2, 1, 1, 1};
  exemplars.push_back(EncodePartialResult(partial));

  exemplars.push_back(EncodeAbort(AbortMsg{"fuzz"}));

  StreamOpenMsg open;
  open.cardinalities = {3, 2, 4};
  open.total_reports = 64;
  exemplars.push_back(EncodeStreamOpen(open));

  StreamReportMsg report;
  report.first_sequence = 0;
  report.num_reports = 2;
  report.num_attributes = 3;
  report.codes = {0, 1, 3, 2, 0, 0};
  exemplars.push_back(EncodeStreamReport(report));

  exemplars.push_back(EncodeStreamSeal(StreamSealMsg{64}));

  StreamResultMsg result;
  result.reports_ingested = 64;
  result.epsilon_spent = 1.5;
  result.finished = 1;
  exemplars.push_back(EncodeStreamResult(result));

  return exemplars;
}

// Runs every parser over the bytes. Outcomes are unchecked -- the
// assertion is that nothing crashes and error paths stay error paths.
void ParseEverything(const std::vector<uint8_t>& bytes) {
  (void)ParseHello(bytes);
  (void)ParseAssignShards(bytes);
  (void)ParsePartialResult(bytes);
  (void)ParseAbort(bytes);
  (void)ParseStreamOpen(bytes);
  (void)ParseStreamReport(bytes);
  (void)ParseStreamSeal(bytes);
  (void)ParseStreamResult(bytes);
  {
    WireReader reader(bytes);
    (void)DecodeMatrix(reader);
  }
  {
    WireReader reader(bytes);
    (void)DecodeCounts(reader);
  }
  {
    WireReader reader(bytes);
    (void)DecodeCodes(reader);
  }
  {
    WireReader reader(bytes);
    (void)DecodeFrequencyTable(reader);
  }
  {
    WireReader reader(bytes);
    ChunkedDoubleAccumulator acc(4, 3);
    (void)MergeChunkRowsInto(reader, acc);
  }
}

TEST(NetFuzzTest, EveryTruncationOfEveryExemplarIsHandled) {
  for (const std::vector<uint8_t>& exemplar : Exemplars()) {
    for (size_t len = 0; len < exemplar.size(); ++len) {
      std::vector<uint8_t> prefix(exemplar.begin(),
                                  exemplar.begin() + len);
      ParseEverything(prefix);
    }
  }
}

TEST(NetFuzzTest, MutatedExemplarsNeverCrashTheParsers) {
  Rng rng(0xF0221);
  for (const std::vector<uint8_t>& exemplar : Exemplars()) {
    for (int round = 0; round < kMutationsPerSeed; ++round) {
      std::vector<uint8_t> mutated = exemplar;
      const size_t flips = 1 + rng.UniformInt(4);
      for (size_t f = 0; f < flips; ++f) {
        const size_t pos = rng.UniformInt(mutated.size());
        mutated[pos] = static_cast<uint8_t>(rng.UniformInt(256));
      }
      ParseEverything(mutated);
    }
  }
}

TEST(NetFuzzTest, RandomGarbageNeverCrashesTheParsers) {
  Rng rng(0xF0222);
  for (int round = 0; round < kMutationsPerSeed; ++round) {
    std::vector<uint8_t> garbage(rng.UniformInt(256));
    for (uint8_t& byte : garbage) {
      byte = static_cast<uint8_t>(rng.UniformInt(256));
    }
    ParseEverything(garbage);
  }
}

TEST(NetFuzzTest, HostileLengthClaimsFailBeforeAllocating) {
  // A dense matrix claiming 2^60 rows: must error out, not allocate.
  {
    WireWriter writer;
    writer.U8(2);  // dense tag
    writer.U64(1ull << 60);
    std::vector<uint8_t> bytes = writer.Release();
    WireReader reader(bytes);
    EXPECT_FALSE(DecodeMatrix(reader).ok());
  }
  // A count buffer claiming 2^59 entries backed by 8 bytes.
  {
    WireWriter writer;
    writer.U64(1ull << 59);
    writer.I64(7);
    std::vector<uint8_t> bytes = writer.Release();
    WireReader reader(bytes);
    EXPECT_FALSE(DecodeCounts(reader).ok());
  }
  // A report batch whose count * attributes overflows 64 bits.
  {
    StreamReportMsg report;
    report.first_sequence = 0;
    report.num_reports = 2;
    report.num_attributes = 2;
    report.codes = {1, 1, 1, 1};
    std::vector<uint8_t> bytes = EncodeStreamReport(report);
    // Patch num_reports (offset 8) and num_attributes (offset 12) to
    // 0xFFFFFFFF each.
    for (size_t i = 8; i < 16; ++i) bytes[i] = 0xFF;
    EXPECT_FALSE(ParseStreamReport(bytes).ok());
  }
  // Chunk rows targeting indices beyond the local accumulator.
  {
    ChunkedDoubleAccumulator big(8, 2);
    WireWriter writer;
    EncodeChunkRows(big, /*first_chunk=*/6, /*num_chunks=*/2, writer);
    std::vector<uint8_t> bytes = writer.Release();
    ChunkedDoubleAccumulator small(4, 2);
    WireReader reader(bytes);
    EXPECT_FALSE(MergeChunkRowsInto(reader, small).ok());
  }
}

TEST(NetFuzzTest, TrailingBytesAreAProtocolError) {
  std::vector<uint8_t> bytes = EncodeStreamSeal(StreamSealMsg{9});
  bytes.push_back(0x00);
  EXPECT_FALSE(ParseStreamSeal(bytes).ok());
}

// A frame header claiming more than kMaxFramePayload must be rejected
// by the receiver before any allocation happens.
TEST(NetFuzzTest, OversizedFrameHeaderIsRejectedAtTheSocket) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  const uint16_t port = listener.port();

  std::thread client([port] {
    auto conn = TcpConnection::Connect("127.0.0.1", port, 2000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    WireWriter header;
    header.U32(kMaxFramePayload + 1);
    header.U8(static_cast<uint8_t>(FrameType::kHello));
    Status sent = conn.value().SendBytes(header.buffer().data(),
                                         header.buffer().size(), 2000);
    EXPECT_TRUE(sent.ok()) << sent.ToString();
    // Hold the socket open until the server has judged the header.
    (void)conn.value().RecvFrame(500);
  });
  auto accepted = listener.Accept(2000);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  auto frame = accepted.value().RecvFrame(2000);
  EXPECT_FALSE(frame.ok());
  client.join();
}

// Truncated frames (header promises more payload than ever arrives) end
// in a clean error on the receiving side once the peer disconnects.
TEST(NetFuzzTest, TruncatedFrameBodyFailsCleanly) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  const uint16_t port = listener.port();

  std::thread client([port] {
    auto conn = TcpConnection::Connect("127.0.0.1", port, 2000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    WireWriter partial;
    partial.U32(100);  // promises 100 payload bytes
    partial.U8(static_cast<uint8_t>(FrameType::kAbort));
    partial.U8(0xAA);  // delivers one
    Status sent = conn.value().SendBytes(partial.buffer().data(),
                                         partial.buffer().size(), 2000);
    EXPECT_TRUE(sent.ok()) << sent.ToString();
    // Destructor closes: the server sees EOF mid-payload.
  });
  auto accepted = listener.Accept(2000);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  auto frame = accepted.value().RecvFrame(2000);
  EXPECT_FALSE(frame.ok());
  client.join();
}

}  // namespace
}  // namespace net
}  // namespace mdrr
