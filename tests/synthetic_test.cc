#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

TEST(ApportionCountsTest, SumsToN) {
  std::vector<double> dist = {0.301, 0.299, 0.4};
  for (int64_t n : {1, 7, 100, 32561}) {
    std::vector<int64_t> counts = ApportionCounts(dist, n);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}), n);
  }
}

TEST(ApportionCountsTest, ExactQuotasPreserved) {
  std::vector<int64_t> counts = ApportionCounts({0.25, 0.25, 0.5}, 100);
  EXPECT_EQ(counts, (std::vector<int64_t>{25, 25, 50}));
}

TEST(ApportionCountsTest, LargestRemainderWins) {
  // Quotas: 1.4, 1.4, 0.2 over n=3 -> floors 1,1,0; leftover 1 goes to a
  // largest-remainder category (0.4 beats 0.2).
  std::vector<int64_t> counts = ApportionCounts({1.4, 1.4, 0.2}, 3);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}), 3);
  EXPECT_EQ(counts[2], 0);
}

TEST(ApportionCountsTest, NegativeEntriesClamped) {
  std::vector<int64_t> counts = ApportionCounts({0.6, -0.2, 0.6}, 10);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), int64_t{0}), 10);
}

TEST(ApportionCountsTest, DegenerateAllZeroSpreadsEvenly) {
  std::vector<int64_t> counts = ApportionCounts({0.0, 0.0}, 4);
  EXPECT_EQ(counts[0] + counts[1], 4);
}

Dataset MakeDataset(size_t n, uint64_t seed) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1"}},
  };
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> cols(2);
  for (size_t i = 0; i < n; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Discrete({0.6, 0.3, 0.1}));
    uint32_t b = rng.Bernoulli(0.8) ? (a == 0 ? 0u : 1u)
                                    : static_cast<uint32_t>(rng.UniformInt(2));
    cols[0].push_back(a);
    cols[1].push_back(b);
  }
  return Dataset(schema, std::move(cols));
}

TEST(SyntheticTest, FromIndependentMatchesEstimatedMarginals) {
  Dataset ds = MakeDataset(50000, 3);
  Rng rng(5);
  auto rr = RunRrIndependent(ds, RrIndependentOptions{0.7}, rng);
  ASSERT_TRUE(rr.ok());

  Rng synth_rng(7);
  auto synthetic = SynthesizeFromIndependent(*rr, 10000, synth_rng);
  ASSERT_TRUE(synthetic.ok());
  EXPECT_EQ(synthetic.value().num_rows(), 10000u);

  for (size_t j = 0; j < 2; ++j) {
    std::vector<double> synth_marginal = EmpiricalDistribution(
        synthetic.value().column(j), ds.attribute(j).cardinality());
    for (size_t v = 0; v < synth_marginal.size(); ++v) {
      // Deterministic apportionment: within 1/n of the estimate.
      EXPECT_NEAR(synth_marginal[v], rr.value().estimated[j][v], 1e-3);
    }
  }
}

TEST(SyntheticTest, FromClustersPreservesWithinClusterJoint) {
  Dataset ds = MakeDataset(80000, 11);
  Rng rng(13);
  RrClustersOptions options;
  options.keep_probability = 0.8;
  options.clustering = ClusteringOptions{6.0, 0.05};
  auto rr = RunRrClusters(ds, options, rng);
  ASSERT_TRUE(rr.ok());
  ASSERT_EQ(rr.value().clusters.size(), 1u);  // A and B cluster together.

  Rng synth_rng(17);
  const int64_t n = 20000;
  auto synthetic = SynthesizeFromClusters(*rr, n, synth_rng);
  ASSERT_TRUE(synthetic.ok());

  // The synthetic joint must match the estimated cluster joint.
  const RrJointResult& joint = rr.value().cluster_results[0];
  std::vector<double> synth_joint(6, 0.0);
  for (size_t i = 0; i < synthetic.value().num_rows(); ++i) {
    uint32_t code = static_cast<uint32_t>(joint.domain.Encode(
        {synthetic.value().at(i, 0), synthetic.value().at(i, 1)}));
    synth_joint[code] += 1.0 / static_cast<double>(n);
  }
  for (size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(synth_joint[k], joint.estimated[k], 1e-3) << "cell " << k;
  }
}

TEST(SyntheticTest, RejectsNonPositiveN) {
  Dataset ds = MakeDataset(100, 19);
  Rng rng(23);
  auto rr = RunRrIndependent(ds, RrIndependentOptions{0.7}, rng);
  ASSERT_TRUE(rr.ok());
  Rng synth_rng(29);
  EXPECT_FALSE(SynthesizeFromIndependent(*rr, 0, synth_rng).ok());
  EXPECT_FALSE(SynthesizeFromIndependent(*rr, -5, synth_rng).ok());
}

}  // namespace
}  // namespace mdrr
