#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/common/flags.h"
#include "mdrr/common/parallel.h"
#include "mdrr/common/status.h"
#include "mdrr/common/status_or.h"
#include "mdrr/common/string_util.h"

namespace mdrr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

StatusOr<int> ParsePositive(int value) {
  if (value <= 0) return Status::InvalidArgument("not positive");
  return value;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Doubled(int value) {
  MDRR_ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(Doubled(21).ok());
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleField) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ParseInt64) {
  ASSERT_TRUE(ParseInt64("42").ok());
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -17 ").value(), -17);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("3.5").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("1e-3").value(), 0.001);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--runs=100", "--sigma=0.25", "--verbose",
                        "positional", "--name=test"};
  FlagSet flags;
  flags.Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("runs", 1), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("sigma", 0.0), 0.25);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("name", ""), "test");
  EXPECT_FALSE(flags.Has("positional"));
}

TEST(FlagsTest, DefaultsAndMalformedValues) {
  const char* argv[] = {"prog", "--runs=abc"};
  FlagSet flags;
  flags.Parse(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("runs", 7), 7);       // Malformed -> default.
  EXPECT_EQ(flags.GetInt("missing", 9), 9);    // Missing -> default.
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(ParallelChunksTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 1003;
  std::vector<std::atomic<int>> touched(n);
  for (auto& t : touched) t = 0;
  ParallelChunks(n, 64, 4,
                 [&](size_t /*worker*/, size_t /*chunk*/, size_t begin,
                     size_t end) {
                   for (size_t i = begin; i < end; ++i) ++touched[i];
                 });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelChunksTest, ChunkDecompositionIsIndependentOfWorkerCount) {
  const size_t n = 500;
  const size_t chunk_size = 33;
  for (size_t threads : {1u, 2u, 7u, 0u}) {
    std::mutex mu;
    std::set<std::vector<size_t>> chunks;
    ParallelChunks(n, chunk_size, threads,
                   [&](size_t /*worker*/, size_t chunk, size_t begin,
                       size_t end) {
                     std::lock_guard<std::mutex> lock(mu);
                     chunks.insert({chunk, begin, end});
                   });
    EXPECT_EQ(chunks.size(), NumChunks(n, chunk_size));
    for (const auto& c : chunks) {
      EXPECT_EQ(c[1], c[0] * chunk_size);
      EXPECT_EQ(c[2], std::min(n, c[1] + chunk_size));
    }
  }
}

TEST(ParallelChunksTest, EmptyRangeAndWorkerClamping) {
  // n = 0 still makes one (empty) chunk; workers are clamped to chunks.
  EXPECT_EQ(NumChunks(0, 10), 1u);
  EXPECT_EQ(ResolveWorkerCount(16, 5, 10), 1u);
  EXPECT_GE(ResolveWorkerCount(0, 1000, 10), 1u);
  int calls = 0;
  ParallelChunks(0, 10, 8,
                 [&](size_t, size_t, size_t begin, size_t end) {
                   ++calls;
                   EXPECT_EQ(begin, end);
                 });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mdrr
