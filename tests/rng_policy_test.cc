// The RNG-policy contract: philox runs are bit-identical at any thread
// count AND any shard grain (batch engine, distributed session, streaming
// ingest); mt19937 stays the default and its committed transcripts are
// pinned by content hash; the fused perturb+count paths agree with a
// post-hoc histogram; spec validation and serialization round-trip the
// new execution.rng field.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/batch_engine.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/perturber.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/protocol/session.h"
#include "mdrr/protocol/stream_ingest.h"
#include "mdrr/release/serialization.h"
#include "mdrr/release/spec.h"
#include "mdrr/rng/rng.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {
namespace {

namespace release = mdrr::release;
namespace protocol = mdrr::protocol;

// A small four-attribute population, deterministic in `seed`, with enough
// dependence between attributes 0 and 1 that the clusters mechanism has
// something to find.
Dataset MakeSurvey(size_t rows, uint64_t seed) {
  std::vector<Attribute> schema(4);
  schema[0].name = "a";
  schema[0].categories = {"a0", "a1", "a2"};
  schema[1].name = "b";
  schema[1].categories = {"b0", "b1", "b2"};
  schema[2].name = "c";
  schema[2].categories = {"c0", "c1"};
  schema[3].name = "d";
  schema[3].categories = {"d0", "d1", "d2", "d3"};
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> columns(4);
  for (size_t row = 0; row < rows; ++row) {
    const uint32_t a = static_cast<uint32_t>(rng.UniformInt(3));
    columns[0].push_back(a);
    // b copies a most of the time: a strong pairwise dependence.
    columns[1].push_back(rng.Bernoulli(0.8)
                             ? a
                             : static_cast<uint32_t>(rng.UniformInt(3)));
    columns[2].push_back(static_cast<uint32_t>(rng.Bernoulli(0.3) ? 1 : 0));
    columns[3].push_back(static_cast<uint32_t>(rng.UniformInt(4)));
  }
  return Dataset(std::move(schema), std::move(columns));
}

BatchPerturbationEngine MakeEngine(RngKind rng, size_t num_threads,
                                   size_t shard_size, uint64_t seed = 42) {
  BatchPerturbationOptions options;
  options.seed = seed;
  options.num_threads = num_threads;
  options.shard_size = shard_size;
  options.rng = rng;
  return BatchPerturbationEngine(options);
}

void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    EXPECT_EQ(a.column(j), b.column(j)) << "column " << j;
  }
}

// FNV-1a over raw bytes: the pinned-transcript fingerprint.
uint64_t HashBytes(uint64_t h, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t HashU32s(uint64_t h, const std::vector<uint32_t>& values) {
  return HashBytes(h, values.data(), values.size() * sizeof(uint32_t));
}

uint64_t HashDoubles(uint64_t h, const std::vector<double>& values) {
  return HashBytes(h, values.data(), values.size() * sizeof(double));
}

uint64_t HashDataset(uint64_t h, const Dataset& data) {
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    h = HashU32s(h, data.column(j));
  }
  return h;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

// ---------------------------------------------------------------------------
// Philox batch releases: bit-identical across threads AND shard grains.
// ---------------------------------------------------------------------------

TEST(RngPolicyTest, PhiloxIndependentInvariantAcrossThreadsAndShards) {
  Dataset data = MakeSurvey(3000, 7);
  RrIndependentOptions options{0.7};
  auto baseline =
      MakeEngine(RngKind::kPhilox, 1, 64).RunIndependent(data, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    for (size_t shard : {64u, 1024u, 65536u}) {
      auto run = MakeEngine(RngKind::kPhilox, threads, shard)
                     .RunIndependent(data, options);
      ASSERT_TRUE(run.ok()) << "threads=" << threads << " shard=" << shard;
      ExpectSameDataset(baseline.value().randomized, run.value().randomized);
      EXPECT_EQ(baseline.value().lambda, run.value().lambda);
      EXPECT_EQ(baseline.value().estimated, run.value().estimated);
    }
  }
}

TEST(RngPolicyTest, PhiloxJointInvariantAcrossThreadsAndShards) {
  Dataset data = MakeSurvey(2000, 9);
  std::vector<size_t> attributes = {0, 1};
  auto baseline =
      MakeEngine(RngKind::kPhilox, 1, 128).RunJoint(data, attributes, 4.0);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : {2u, 4u, 8u}) {
    for (size_t shard : {64u, 1024u, 65536u}) {
      auto run = MakeEngine(RngKind::kPhilox, threads, shard)
                     .RunJoint(data, attributes, 4.0);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(baseline.value().randomized_codes,
                run.value().randomized_codes);
      EXPECT_EQ(baseline.value().estimated, run.value().estimated);
    }
  }
}

TEST(RngPolicyTest, PhiloxClustersInvariantAcrossThreadsAndShards) {
  Dataset data = MakeSurvey(2500, 11);
  RrClustersOptions options;
  auto baseline =
      MakeEngine(RngKind::kPhilox, 1, 256).RunClusters(data, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : {2u, 4u, 8u}) {
    for (size_t shard : {128u, 1024u, 65536u}) {
      auto run =
          MakeEngine(RngKind::kPhilox, threads, shard).RunClusters(data, options);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(baseline.value().clusters, run.value().clusters);
      ExpectSameDataset(baseline.value().randomized, run.value().randomized);
      EXPECT_EQ(baseline.value().release_epsilon,
                run.value().release_epsilon);
    }
  }
}

TEST(RngPolicyTest, PhiloxDiffersFromMtButAgreesStatistically) {
  Dataset data = MakeSurvey(20000, 13);
  RrIndependentOptions options{0.7};
  auto mt = MakeEngine(RngKind::kMt19937, 2, 1024).RunIndependent(data,
                                                                  options);
  auto philox =
      MakeEngine(RngKind::kPhilox, 2, 1024).RunIndependent(data, options);
  ASSERT_TRUE(mt.ok());
  ASSERT_TRUE(philox.ok());
  // Different transcripts...
  EXPECT_NE(mt.value().randomized.column(0),
            philox.value().randomized.column(0));
  // ...same design, so the estimates agree statistically.
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    ASSERT_EQ(mt.value().estimated[j].size(),
              philox.value().estimated[j].size());
    for (size_t v = 0; v < mt.value().estimated[j].size(); ++v) {
      EXPECT_NEAR(mt.value().estimated[j][v], philox.value().estimated[j][v],
                  0.05);
    }
  }
}

// ---------------------------------------------------------------------------
// mt19937 golden transcripts: the default policy's committed randomness,
// pinned by content hash. These fail if ANY change perturbs the mt19937
// draw sequence -- which is exactly the event that would invalidate every
// transcript committed before the counter backend existed.
// ---------------------------------------------------------------------------

TEST(RngPolicyTest, MtBatchTranscriptIsPinned) {
  Dataset data = MakeSurvey(1000, 3);
  RrIndependentOptions options{0.7};
  auto run =
      MakeEngine(RngKind::kMt19937, 2, 256, 5).RunIndependent(data, options);
  ASSERT_TRUE(run.ok());
  uint64_t h = HashDataset(kFnvOffset, run.value().randomized);
  for (const std::vector<double>& lambda : run.value().lambda) {
    h = HashDoubles(h, lambda);
  }
  EXPECT_EQ(h, 0x2eb7fcd45336a5acull);
}

TEST(RngPolicyTest, MtSequentialTranscriptIsPinned) {
  Dataset data = MakeSurvey(1000, 3);
  Rng rng(5);
  auto run = RunRrIndependent(data, RrIndependentOptions{0.7}, rng);
  ASSERT_TRUE(run.ok());
  uint64_t h = HashDataset(kFnvOffset, run.value().randomized);
  for (const std::vector<double>& lambda : run.value().lambda) {
    h = HashDoubles(h, lambda);
  }
  EXPECT_EQ(h, 0x0e2b5b9803622480ull);
}

TEST(RngPolicyTest, MtSessionTranscriptIsPinned) {
  Dataset data = MakeSurvey(600, 29);
  protocol::SessionOptions options;
  options.seed = 17;
  options.num_threads = 2;
  options.shard_size = 128;
  auto run = protocol::RunDistributedSession(data, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  uint64_t h = HashDataset(kFnvOffset, run.value().randomized);
  for (const std::vector<double>& joint : run.value().cluster_joints) {
    h = HashDoubles(h, joint);
  }
  EXPECT_EQ(h, 0x371472c90e44c1d6ull);
}

TEST(RngPolicyTest, MtStreamingTranscriptIsPinned) {
  Dataset data = MakeSurvey(700, 31);
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kIndependent;
  spec.budget.keep_probability = 0.6;
  spec.streaming.enabled = true;
  spec.streaming.window_size = 500;
  spec.execution.seed = 21;
  protocol::StreamingReplayOptions options;
  options.total_reports = 1500;
  auto run = protocol::RunStreamingReplay(spec, data, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run.value().windows.size(), 3u);
  uint64_t h = kFnvOffset;
  for (const release::StreamWindow& window : run.value().windows) {
    for (const std::vector<double>& estimate :
         window.artifacts.marginal_estimates) {
      h = HashDoubles(h, estimate);
    }
  }
  EXPECT_EQ(h, 0xd8676064d682ab91ull);
}

// ---------------------------------------------------------------------------
// Fused perturb+count: the single-pass counts equal a post-hoc histogram
// of the published column, and the λ̂ arithmetic is unchanged.
// ---------------------------------------------------------------------------

TEST(RngPolicyTest, SequentialFusedLambdaMatchesPosthocHistogram) {
  Dataset data = MakeSurvey(1500, 37);
  Rng rng(11);
  ColumnPerturber perturber = SequentialPerturber(rng);
  RrMatrix matrix = RrMatrix::KeepUniform(3, 0.7);
  PerturbedColumn column = perturber(matrix, data.column(0), 0);
  ASSERT_EQ(column.codes.size(), data.num_rows());

  // Bit-identical to the unfused EmpiricalDistribution arithmetic.
  EXPECT_EQ(column.lambda, EmpiricalDistribution(column.codes, matrix.size()));

  // And the counts it encodes match a post-hoc integer histogram.
  std::vector<int64_t> histogram(matrix.size(), 0);
  for (uint32_t code : column.codes) ++histogram[code];
  const double inv_n = 1.0 / static_cast<double>(column.codes.size());
  for (size_t v = 0; v < histogram.size(); ++v) {
    EXPECT_EQ(column.lambda[v], static_cast<double>(histogram[v]) * inv_n);
  }
}

TEST(RngPolicyTest, ShardedFusedLambdaMatchesPosthocHistogram) {
  Dataset data = MakeSurvey(2000, 41);
  for (RngKind kind : {RngKind::kMt19937, RngKind::kPhilox}) {
    auto run = MakeEngine(kind, 4, 128).RunIndependent(
        data, RrIndependentOptions{0.7});
    ASSERT_TRUE(run.ok());
    for (size_t j = 0; j < data.num_attributes(); ++j) {
      const std::vector<uint32_t>& column = run.value().randomized.column(j);
      std::vector<int64_t> histogram(data.attribute(j).cardinality(), 0);
      for (uint32_t code : column) ++histogram[code];
      EXPECT_EQ(run.value().lambda[j],
                stats::FrequencyTable(std::move(histogram)).Proportions());
    }
  }
}

// ---------------------------------------------------------------------------
// The distributed session under philox.
// ---------------------------------------------------------------------------

void ExpectSameSession(const protocol::SessionResult& a,
                       const protocol::SessionResult& b) {
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.cluster_joints, b.cluster_joints);
  ExpectSameDataset(a.randomized, b.randomized);
  EXPECT_EQ(a.round1_epsilon, b.round1_epsilon);
  EXPECT_EQ(a.round2_epsilon, b.round2_epsilon);
  EXPECT_EQ(a.messages_round1, b.messages_round1);
  EXPECT_EQ(a.messages_round2, b.messages_round2);
}

TEST(RngPolicyTest, PhiloxSessionInvariantAcrossThreadsAndShards) {
  Dataset data = MakeSurvey(800, 43);
  protocol::SessionOptions options;
  options.seed = 23;
  options.rng = RngKind::kPhilox;
  options.num_threads = 1;
  options.shard_size = 64;
  auto baseline = protocol::RunDistributedSession(data, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (size_t threads : {2u, 4u, 8u}) {
    for (size_t shard : {64u, 256u, 65536u}) {
      protocol::SessionOptions swept = options;
      swept.num_threads = threads;
      swept.shard_size = shard;
      auto run = protocol::RunDistributedSession(data, swept);
      ASSERT_TRUE(run.ok()) << "threads=" << threads << " shard=" << shard;
      ExpectSameSession(baseline.value(), run.value());
    }
  }
}

TEST(RngPolicyTest, PhiloxSessionDiffersFromMtSession) {
  Dataset data = MakeSurvey(800, 43);
  protocol::SessionOptions mt_options;
  mt_options.seed = 23;
  auto mt = protocol::RunDistributedSession(data, mt_options);
  protocol::SessionOptions philox_options = mt_options;
  philox_options.rng = RngKind::kPhilox;
  auto philox = protocol::RunDistributedSession(data, philox_options);
  ASSERT_TRUE(mt.ok());
  ASSERT_TRUE(philox.ok());
  // Same designs and accounting; different randomness.
  EXPECT_EQ(mt.value().round1_epsilon, philox.value().round1_epsilon);
  bool any_difference = false;
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    if (mt.value().randomized.column(j) !=
        philox.value().randomized.column(j)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(RngPolicyTest, PartyLoopRejectsPhilox) {
  Dataset data = MakeSurvey(50, 47);
  protocol::SessionOptions options;
  options.rng = RngKind::kPhilox;
  options.execution = protocol::SessionExecution::kPartyLoop;
  auto run = protocol::RunDistributedSession(data, options);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Streaming ingest under philox.
// ---------------------------------------------------------------------------

TEST(RngPolicyTest, PhiloxStreamingInvariantAcrossIngestThreads) {
  Dataset data = MakeSurvey(700, 53);
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kIndependent;
  spec.budget.keep_probability = 0.6;
  spec.streaming.enabled = true;
  spec.streaming.window_size = 400;
  spec.execution.seed = 21;
  spec.execution.rng = RngKind::kPhilox;

  protocol::StreamingReplayOptions base;
  base.total_reports = 1600;
  auto baseline = protocol::RunStreamingReplay(spec, data, base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline.value().windows.size(), 4u);

  for (size_t threads : {2u, 4u, 8u}) {
    protocol::StreamingReplayOptions options;
    options.total_reports = 1600;
    options.num_ingest_threads = threads;
    options.collector.num_shards = threads;
    auto run = protocol::RunStreamingReplay(spec, data, options);
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(run.value().windows.size(), baseline.value().windows.size());
    for (size_t w = 0; w < run.value().windows.size(); ++w) {
      EXPECT_EQ(run.value().windows[w].artifacts.marginal_estimates,
                baseline.value().windows[w].artifacts.marginal_estimates);
    }
  }

  // Per-report regeneration: report s = philox stream s, attribute j =
  // element j, independent of arrival interleaving.
  RrIndependentOptions design;
  design.keep_probability = spec.budget.keep_probability;
  std::vector<RrMatrix> matrices;
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    matrices.push_back(
        MakeIndependentMatrix(data.attribute(j).cardinality(), design));
  }
  const release::StreamWindow& window = baseline.value().windows[0];
  std::vector<std::vector<uint64_t>> tallies;
  for (size_t j = 0; j < matrices.size(); ++j) {
    tallies.emplace_back(data.attribute(j).cardinality(), 0);
  }
  for (uint64_t s = window.begin_sequence; s < window.end_sequence; ++s) {
    const size_t row = static_cast<size_t>(s % data.num_rows());
    for (size_t j = 0; j < matrices.size(); ++j) {
      ++tallies[j][matrices[j].RandomizeCounter(data.at(row, j),
                                                spec.execution.seed, s, j)];
    }
  }
  for (size_t j = 0; j < matrices.size(); ++j) {
    std::vector<double> lambda(tallies[j].size());
    for (size_t v = 0; v < lambda.size(); ++v) {
      lambda[v] = static_cast<double>(tallies[j][v]) /
                  static_cast<double>(window.num_reports);
    }
    auto expected = EstimateProjectedDistribution(matrices[j], lambda);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(window.artifacts.marginal_estimates[j], expected.value());
  }
}

// ---------------------------------------------------------------------------
// Spec surface: validation and serialization.
// ---------------------------------------------------------------------------

TEST(RngPolicyTest, ValidationRejectsPhiloxOnSequentialBatchPlans) {
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kIndependent;
  spec.execution.rng = RngKind::kPhilox;
  // Sequential batch plan: rejected.
  auto status = release::ValidateReleaseSpec(spec, 0);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Sharded: fine.
  spec.execution.kind = release::PolicyKind::kSharded;
  EXPECT_TRUE(release::ValidateReleaseSpec(spec, 0).ok());
  // Sequential + streaming: fine (the collector ignores execution.kind).
  spec.execution.kind = release::PolicyKind::kSequential;
  spec.streaming.enabled = true;
  spec.streaming.window_size = 100;
  EXPECT_TRUE(release::ValidateReleaseSpec(spec, 0).ok());
}

TEST(RngPolicyTest, ExecutionRngRoundTripsThroughText) {
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kIndependent;
  spec.execution.kind = release::PolicyKind::kSharded;
  spec.execution.rng = RngKind::kPhilox;
  const std::string text = release::PrintReleaseSpec(spec);
  EXPECT_NE(text.find("execution.rng philox"), std::string::npos);
  auto parsed = release::ParseReleaseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spec);
  EXPECT_TRUE(parsed.value().execution.rng == RngKind::kPhilox);
}

TEST(RngPolicyTest, SpecsWithoutRngKeyParseAsMt19937) {
  // A pre-philox spec file has no execution.rng line; it must keep
  // parsing, with the mt19937 default.
  release::ReleaseSpec modern;
  std::string text = release::PrintReleaseSpec(modern);
  const size_t at = text.find("execution.rng");
  ASSERT_NE(at, std::string::npos);
  const size_t line_end = text.find('\n', at);
  text.erase(at, line_end - at + 1);
  auto parsed = release::ParseReleaseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().execution.rng == RngKind::kMt19937);
  EXPECT_TRUE(parsed.value() == modern);
}

}  // namespace
}  // namespace mdrr
