#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/pram.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

Dataset MakeDataset(size_t n, uint64_t seed) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1"}},
  };
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> cols(2);
  for (size_t i = 0; i < n; ++i) {
    cols[0].push_back(static_cast<uint32_t>(rng.Discrete({0.5, 0.3, 0.2})));
    cols[1].push_back(static_cast<uint32_t>(rng.Discrete({0.7, 0.3})));
  }
  return Dataset(schema, std::move(cols));
}

TEST(PramTest, EstimatesRecoverCollectedMarginals) {
  Dataset collected = MakeDataset(80000, 3);
  Rng rng(5);
  auto result = ApplyPram(collected, 0.6, rng);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < collected.num_attributes(); ++j) {
    std::vector<double> truth = EmpiricalDistribution(
        collected.column(j), collected.attribute(j).cardinality());
    for (size_t v = 0; v < truth.size(); ++v) {
      EXPECT_NEAR(result.value().estimated[j][v], truth[v], 0.02);
    }
  }
}

TEST(PramTest, PublishedFileDiffersFromCollected) {
  Dataset collected = MakeDataset(5000, 7);
  Rng rng(11);
  auto result = ApplyPram(collected, 0.5, rng);
  ASSERT_TRUE(result.ok());
  size_t changed = 0;
  for (size_t i = 0; i < collected.num_rows(); ++i) {
    if (result.value().randomized.at(i, 0) != collected.at(i, 0)) ++changed;
  }
  // About (1 - p) * (r - 1) / r = 0.5 * 2/3 of first-attribute values flip.
  EXPECT_GT(changed, collected.num_rows() / 4);
  EXPECT_LT(changed, collected.num_rows() / 2);
}

TEST(PramTest, RejectsEmptyData) {
  Dataset empty(std::vector<Attribute>{
      Attribute{"A", AttributeType::kNominal, {"x", "y"}}});
  Rng rng(13);
  EXPECT_FALSE(ApplyPram(empty, 0.5, rng).ok());
}

TEST(InvariantPramTest, MatrixIsRowStochastic) {
  RrMatrix base = RrMatrix::KeepUniform(3, 0.5);
  std::vector<double> observed = {0.5, 0.3, 0.2};
  auto invariant = InvariantPramMatrix(base, observed);
  ASSERT_TRUE(invariant.ok());
  EXPECT_TRUE(invariant.value().ToDense().IsRowStochastic(1e-9));
}

TEST(InvariantPramTest, PreservesMarginalInExpectation) {
  RrMatrix base = RrMatrix::KeepUniform(3, 0.5);
  std::vector<double> observed = {0.5, 0.3, 0.2};
  auto invariant = InvariantPramMatrix(base, observed);
  ASSERT_TRUE(invariant.ok());
  // R^T observed = observed: the published marginal equals the collected
  // one in expectation (the defining invariant-PRAM property).
  std::vector<double> published =
      invariant.value().ToDense().TransposeMatVec(observed);
  for (size_t v = 0; v < observed.size(); ++v) {
    EXPECT_NEAR(published[v], observed[v], 1e-12);
  }
}

TEST(InvariantPramTest, EmpiricalInvariance) {
  Dataset collected = MakeDataset(100000, 17);
  std::vector<double> observed =
      EmpiricalDistribution(collected.column(0), 3);
  RrMatrix base = RrMatrix::KeepUniform(3, 0.5);
  auto invariant = InvariantPramMatrix(base, observed);
  ASSERT_TRUE(invariant.ok());
  Rng rng(19);
  std::vector<uint32_t> published =
      invariant.value().RandomizeColumn(collected.column(0), rng);
  std::vector<double> published_marginal =
      EmpiricalDistribution(published, 3);
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_NEAR(published_marginal[v], observed[v], 0.01);
  }
}

TEST(InvariantPramTest, DegenerateDistributionFallsBackToIdentityRows) {
  RrMatrix base = RrMatrix::KeepUniform(3, 0.5);
  // All mass on category 0: rows for unreachable categories become
  // identity; the matrix must still be row-stochastic.
  std::vector<double> observed = {1.0, 0.0, 0.0};
  auto invariant = InvariantPramMatrix(base, observed);
  ASSERT_TRUE(invariant.ok());
  EXPECT_TRUE(invariant.value().ToDense().IsRowStochastic(1e-9));
  // Category 0 can only map to 0 (others have zero observed mass).
  EXPECT_NEAR(invariant.value().Prob(0, 0), 1.0, 1e-12);
}

TEST(InvariantPramTest, SizeMismatchFails) {
  RrMatrix base = RrMatrix::KeepUniform(3, 0.5);
  EXPECT_FALSE(InvariantPramMatrix(base, {0.5, 0.5}).ok());
}

}  // namespace
}  // namespace mdrr
