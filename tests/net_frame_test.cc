// Unit suite for the net/ wire layer: explicit little-endian framing
// goldens (the format is a cross-host contract, not whatever the
// compiler does), bounds-checked reader behavior, and exact round trips
// for every payload codec and protocol message.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/common/parallel.h"
#include "mdrr/net/frame.h"
#include "mdrr/net/protocol.h"
#include "mdrr/net/wire.h"
#include "mdrr/rng/rng.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {
namespace net {
namespace {

// --- Framing primitives ---

TEST(WireWriterTest, LittleEndianGoldens) {
  WireWriter writer;
  writer.U8(0xAB);
  writer.U32(0x11223344u);
  writer.U64(0x0102030405060708ull);
  const std::vector<uint8_t> expected = {
      0xAB,                                            // u8
      0x44, 0x33, 0x22, 0x11,                          // u32 LE
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // u64 LE
  };
  EXPECT_EQ(writer.buffer(), expected);
}

TEST(WireWriterTest, DoubleTravelsAsIeee754Bits) {
  WireWriter writer;
  writer.F64(1.5);  // 0x3FF8000000000000
  const std::vector<uint8_t> expected = {0x00, 0x00, 0x00, 0x00,
                                         0x00, 0x00, 0xF8, 0x3F};
  EXPECT_EQ(writer.buffer(), expected);
}

TEST(WireReaderTest, RoundTripsEveryPrimitive) {
  WireWriter writer;
  writer.U8(7);
  writer.U32(0xDEADBEEFu);
  writer.U64(1ull << 60);
  writer.I64(-42);
  writer.F64(-0.125);
  writer.String("hello");
  std::vector<uint8_t> bytes = writer.Release();

  WireReader reader(bytes);
  EXPECT_EQ(reader.U8().value(), 7);
  EXPECT_EQ(reader.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64().value(), 1ull << 60);
  EXPECT_EQ(reader.I64().value(), -42);
  EXPECT_EQ(reader.F64().value(), -0.125);
  EXPECT_EQ(reader.String().value(), "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireReaderTest, EveryGetterFailsOnTruncation) {
  std::vector<uint8_t> three = {1, 2, 3};
  EXPECT_FALSE(WireReader(three).U32().ok());
  EXPECT_FALSE(WireReader(three).U64().ok());
  EXPECT_FALSE(WireReader(three).F64().ok());
  EXPECT_FALSE(WireReader(three).String().ok());  // claims from garbage len
  EXPECT_FALSE(WireReader(three).Skip(4).ok());
  WireReader empty(nullptr, 0);
  EXPECT_FALSE(empty.U8().ok());
}

TEST(WireReaderTest, StringRejectsLengthBeyondBuffer) {
  WireWriter writer;
  writer.U32(1000);  // claims 1000 body bytes...
  writer.U8('x');    // ...delivers one
  std::vector<uint8_t> bytes = writer.Release();
  WireReader reader(bytes);
  EXPECT_FALSE(reader.String().ok());
}

// --- Matrix codec ---

TEST(MatrixCodecTest, StructuredMatrixRoundTripsStructured) {
  RrMatrix matrix = RrMatrix::KeepUniform(5, 0.7);
  ASSERT_TRUE(matrix.structured().has_value());
  WireWriter writer;
  EncodeMatrix(matrix, writer);
  std::vector<uint8_t> bytes = writer.Release();
  WireReader reader(bytes);
  auto decoded = DecodeMatrix(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded.value().structured().has_value());
  ASSERT_EQ(decoded.value().size(), matrix.size());
  for (size_t u = 0; u < matrix.size(); ++u) {
    for (size_t v = 0; v < matrix.size(); ++v) {
      EXPECT_EQ(decoded.value().Prob(v, u), matrix.Prob(v, u));
    }
  }
  // The determinism contract is on draws, not just probabilities.
  for (uint64_t element = 0; element < 64; ++element) {
    EXPECT_EQ(decoded.value().RandomizeCounter(element % 5, 99, 3, element),
              matrix.RandomizeCounter(element % 5, 99, 3, element));
  }
}

TEST(MatrixCodecTest, DenseMatrixRoundTripsDense) {
  // Asymmetric rows: uniform-mixture detection must reject this both at
  // the source and after decode.
  const double rows[3][3] = {
      {0.8, 0.1, 0.1}, {0.2, 0.7, 0.1}, {0.3, 0.3, 0.4}};
  linalg::Matrix p(3, 3);
  for (size_t u = 0; u < 3; ++u) {
    for (size_t v = 0; v < 3; ++v) p(u, v) = rows[u][v];
  }
  auto matrix = RrMatrix::FromDense(p);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
  ASSERT_FALSE(matrix.value().structured().has_value());
  WireWriter writer;
  EncodeMatrix(matrix.value(), writer);
  std::vector<uint8_t> bytes = writer.Release();
  WireReader reader(bytes);
  auto decoded = DecodeMatrix(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded.value().structured().has_value());
  for (size_t u = 0; u < 3; ++u) {
    for (size_t v = 0; v < 3; ++v) {
      EXPECT_EQ(decoded.value().Prob(v, u), matrix.value().Prob(v, u));
    }
  }
  for (uint64_t element = 0; element < 64; ++element) {
    EXPECT_EQ(decoded.value().RandomizeCounter(element % 3, 7, 1, element),
              matrix.value().RandomizeCounter(element % 3, 7, 1, element));
  }
}

TEST(MatrixCodecTest, FromStructuredRejectsNonStochasticRows) {
  linalg::UniformMixture bad;
  bad.size = 4;
  bad.diagonal = 0.9;
  bad.off_diagonal = 0.2;  // row sum 1.5
  EXPECT_FALSE(RrMatrix::FromStructured(bad).ok());
}

// --- Count / code / frequency codecs ---

TEST(CountCodecTest, CountsRoundTripIncludingNegatives) {
  std::vector<int64_t> counts = {0, 17, -3, 1ll << 40};
  WireWriter writer;
  EncodeCounts(counts, writer);
  std::vector<uint8_t> bytes = writer.Release();
  WireReader reader(bytes);
  auto decoded = DecodeCounts(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), counts);
}

TEST(CountCodecTest, CodesRoundTrip) {
  std::vector<uint32_t> codes = {5, 0, 4294967295u, 2};
  WireWriter writer;
  EncodeCodes(codes.data(), codes.size(), writer);
  std::vector<uint8_t> bytes = writer.Release();
  WireReader reader(bytes);
  auto decoded = DecodeCodes(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), codes);
}

TEST(CountCodecTest, FrequencyTableRoundTrip) {
  stats::FrequencyTable table(std::vector<int64_t>{4, 0, 9});
  WireWriter writer;
  EncodeFrequencyTable(table, writer);
  std::vector<uint8_t> bytes = writer.Release();
  WireReader reader(bytes);
  auto decoded = DecodeFrequencyTable(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().counts(), table.counts());
}

TEST(ChunkRowCodecTest, PartialRowsMergeAtTheRightChunks) {
  ChunkedDoubleAccumulator source(4, 3);
  for (size_t chunk = 0; chunk < 4; ++chunk) {
    for (size_t i = 0; i < 3; ++i) {
      source.Row(chunk)[i] = static_cast<double>(chunk * 10 + i) + 0.25;
    }
  }
  // Ship chunks [1, 3) only.
  WireWriter writer;
  EncodeChunkRows(source, /*first_chunk=*/1, /*num_chunks=*/2, writer);
  std::vector<uint8_t> bytes = writer.Release();

  ChunkedDoubleAccumulator target(4, 3);
  target.Row(1)[0] = 1.0;  // merge adds, it does not overwrite
  WireReader reader(bytes);
  ASSERT_TRUE(MergeChunkRowsInto(reader, target).ok());
  EXPECT_EQ(target.Row(1)[0], source.Row(1)[0] + 1.0);
  EXPECT_EQ(target.Row(1)[2], source.Row(1)[2]);
  EXPECT_EQ(target.Row(2)[1], source.Row(2)[1]);
  EXPECT_EQ(target.Row(0)[0], 0.0);
  EXPECT_EQ(target.Row(3)[0], 0.0);
}

TEST(ChunkRowCodecTest, MergeRejectsWidthMismatch) {
  ChunkedDoubleAccumulator source(2, 3);
  WireWriter writer;
  EncodeChunkRows(source, 0, 2, writer);
  std::vector<uint8_t> bytes = writer.Release();
  ChunkedDoubleAccumulator narrow(2, 2);
  WireReader reader(bytes);
  EXPECT_FALSE(MergeChunkRowsInto(reader, narrow).ok());
}

// --- Protocol messages ---

TEST(ProtocolCodecTest, AssignShardsRoundTrips) {
  AssignShardsMsg msg;
  msg.task_id = 42;
  msg.rng_kind = 1;
  msg.seed = 1234;
  msg.stream_base = 77;
  msg.counter_stream = 3;
  msg.matrix = RrMatrix::KeepUniform(3, 0.6);
  msg.shards.push_back({0, 0, {0, 1, 2, 1}});
  msg.shards.push_back({2, 8, {2, 2}});
  auto parsed = ParseAssignShards(EncodeAssignShards(msg));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().task_id, 42u);
  EXPECT_EQ(parsed.value().rng_kind, 1);
  EXPECT_EQ(parsed.value().seed, 1234u);
  EXPECT_EQ(parsed.value().stream_base, 77u);
  EXPECT_EQ(parsed.value().counter_stream, 3u);
  ASSERT_TRUE(parsed.value().matrix.has_value());
  EXPECT_EQ(parsed.value().matrix->size(), 3u);
  ASSERT_EQ(parsed.value().shards.size(), 2u);
  EXPECT_EQ(parsed.value().shards[0].shard_index, 0u);
  EXPECT_EQ(parsed.value().shards[0].codes, msg.shards[0].codes);
  EXPECT_EQ(parsed.value().shards[1].global_begin, 8u);
  EXPECT_EQ(parsed.value().shards[1].codes, msg.shards[1].codes);
}

TEST(ProtocolCodecTest, AssignShardsRejectsCodesOutsideTheMatrix) {
  AssignShardsMsg msg;
  msg.matrix = RrMatrix::KeepUniform(3, 0.6);
  msg.shards.push_back({0, 0, {0, 1, 3}});  // 3 >= size 3
  EXPECT_FALSE(ParseAssignShards(EncodeAssignShards(msg)).ok());
}

TEST(ProtocolCodecTest, PartialResultRoundTrips) {
  PartialResultMsg msg;
  msg.task_id = 9;
  msg.shards.push_back({1, {4, 4, 0}});
  msg.counts = {10, 0, 3};
  auto parsed = ParsePartialResult(EncodePartialResult(msg));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().task_id, 9u);
  ASSERT_EQ(parsed.value().shards.size(), 1u);
  EXPECT_EQ(parsed.value().shards[0].shard_index, 1u);
  EXPECT_EQ(parsed.value().shards[0].codes, msg.shards[0].codes);
  EXPECT_EQ(parsed.value().counts, msg.counts);

  // A hostile worker cannot smuggle a negative category count into the
  // coordinator's FrequencyTable merge (which CHECKs non-negativity).
  msg.counts = {10, -1, 3};
  auto hostile = ParsePartialResult(EncodePartialResult(msg));
  EXPECT_FALSE(hostile.ok());
  EXPECT_EQ(hostile.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolCodecTest, StreamMessagesRoundTrip) {
  StreamOpenMsg open;
  open.cardinalities = {3, 2, 4};
  open.total_reports = 1000;
  auto open2 = ParseStreamOpen(EncodeStreamOpen(open));
  ASSERT_TRUE(open2.ok()) << open2.status().ToString();
  EXPECT_EQ(open2.value().cardinalities, open.cardinalities);
  EXPECT_EQ(open2.value().total_reports, 1000u);

  StreamReportMsg report;
  report.first_sequence = 512;
  report.num_reports = 2;
  report.num_attributes = 3;
  report.codes = {0, 1, 3, 2, 0, 1};
  auto report2 = ParseStreamReport(EncodeStreamReport(report));
  ASSERT_TRUE(report2.ok()) << report2.status().ToString();
  EXPECT_EQ(report2.value().first_sequence, 512u);
  EXPECT_EQ(report2.value().codes, report.codes);

  StreamSealMsg seal{1000};
  auto seal2 = ParseStreamSeal(EncodeStreamSeal(seal));
  ASSERT_TRUE(seal2.ok()) << seal2.status().ToString();
  EXPECT_EQ(seal2.value().total_reports, 1000u);

  StreamResultMsg result;
  result.reports_ingested = 1000;
  result.epsilon_spent = 2.5;
  result.finished = 1;
  auto result2 = ParseStreamResult(EncodeStreamResult(result));
  ASSERT_TRUE(result2.ok()) << result2.status().ToString();
  EXPECT_EQ(result2.value().reports_ingested, 1000u);
  EXPECT_EQ(result2.value().epsilon_spent, 2.5);
  EXPECT_EQ(result2.value().finished, 1);
}

TEST(ProtocolCodecTest, HelloRoundTripsAndAbortCarriesReason) {
  HelloMsg hello;
  hello.role = PeerRole::kIngest;
  auto hello2 = ParseHello(EncodeHello(hello));
  ASSERT_TRUE(hello2.ok()) << hello2.status().ToString();
  EXPECT_EQ(hello2.value().magic, kProtocolMagic);
  EXPECT_EQ(hello2.value().version, kProtocolVersion);
  EXPECT_EQ(hello2.value().role, PeerRole::kIngest);

  AbortMsg abort{"worker 3 lost"};
  auto abort2 = ParseAbort(EncodeAbort(abort));
  ASSERT_TRUE(abort2.ok()) << abort2.status().ToString();
  EXPECT_EQ(abort2.value().reason, "worker 3 lost");
}

}  // namespace
}  // namespace net
}  // namespace mdrr
