#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

TEST(EmpiricalDistributionTest, CountsAndNormalizes) {
  std::vector<double> d = EmpiricalDistribution({0, 1, 1, 1}, 3);
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  EXPECT_DOUBLE_EQ(d[1], 0.75);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(EmpiricalDistributionTest, EmptyInputIsAllZero) {
  std::vector<double> d = EmpiricalDistribution({}, 2);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
}

TEST(EstimatorTest, ExactInversionWithoutSamplingNoise) {
  // If lambda is exactly Pᵀ π, Eq. (2) must return π exactly.
  RrMatrix p = RrMatrix::KeepUniform(4, 0.55);
  std::vector<double> pi = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> lambda = p.ToDense().TransposeMatVec(pi);
  auto estimated = EstimateDistribution(p, lambda);
  ASSERT_TRUE(estimated.ok());
  for (size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(estimated.value()[i], pi[i], 1e-12);
  }
}

TEST(EstimatorTest, IdentityMatrixIsPassThrough) {
  RrMatrix id = RrMatrix::Identity(3);
  std::vector<double> lambda = {0.2, 0.5, 0.3};
  auto estimated = EstimateDistribution(id, lambda);
  ASSERT_TRUE(estimated.ok());
  for (size_t i = 0; i < lambda.size(); ++i) {
    EXPECT_NEAR(estimated.value()[i], lambda[i], 1e-12);
  }
}

TEST(EstimatorTest, SizeMismatchFails) {
  RrMatrix p = RrMatrix::KeepUniform(3, 0.5);
  EXPECT_FALSE(EstimateDistribution(p, {0.5, 0.5}).ok());
}

TEST(EstimatorTest, RecoveryFromSampledRandomizedData) {
  // End-to-end: randomize a known distribution, estimate, compare.
  RrMatrix p = RrMatrix::KeepUniform(5, 0.6);
  std::vector<double> pi = {0.5, 0.25, 0.12, 0.08, 0.05};
  Rng rng(11);
  const int n = 200000;
  std::vector<uint32_t> true_codes;
  true_codes.reserve(n);
  for (int i = 0; i < n; ++i) {
    true_codes.push_back(static_cast<uint32_t>(rng.Discrete(pi)));
  }
  std::vector<uint32_t> randomized = p.RandomizeColumn(true_codes, rng);
  std::vector<double> lambda = EmpiricalDistribution(randomized, 5);
  auto estimated = EstimateDistribution(p, lambda);
  ASSERT_TRUE(estimated.ok());
  for (size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(estimated.value()[i], pi[i], 0.01) << "category " << i;
  }
}

TEST(ProjectToSimplexTest, ClampsAndRescales) {
  // Paper Section 6.4: negatives to zero, rescale the rest.
  std::vector<double> projected = ProjectToSimplex({0.5, -0.25, 0.75});
  EXPECT_DOUBLE_EQ(projected[0], 0.4);
  EXPECT_DOUBLE_EQ(projected[1], 0.0);
  EXPECT_DOUBLE_EQ(projected[2], 0.6);
}

TEST(ProjectToSimplexTest, ProperDistributionIsUnchanged) {
  std::vector<double> proper = {0.2, 0.3, 0.5};
  std::vector<double> projected = ProjectToSimplex(proper);
  for (size_t i = 0; i < proper.size(); ++i) {
    EXPECT_DOUBLE_EQ(projected[i], proper[i]);
  }
}

TEST(ProjectToSimplexTest, AllNonPositiveBecomesUniform) {
  std::vector<double> projected = ProjectToSimplex({-1.0, 0.0, -0.5});
  for (double v : projected) EXPECT_DOUBLE_EQ(v, 1.0 / 3.0);
}

TEST(ProjectToSimplexTest, OutputAlwaysOnSimplex) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(6);
    for (double& x : v) x = rng.UniformDouble() * 2.0 - 0.7;
    std::vector<double> projected = ProjectToSimplex(v);
    double total = 0.0;
    for (double x : projected) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(VarianceEstimatorTest, MatchesEmpiricalVarianceOfPiHat) {
  // Property: the dispersion estimator predicts the run-to-run variance
  // of the Eq. (2) estimate.
  RrMatrix p = RrMatrix::KeepUniform(3, 0.5);
  std::vector<double> pi = {0.55, 0.30, 0.15};
  const int n = 4000;
  const int replications = 600;

  Rng rng(101);
  std::vector<std::vector<double>> estimates;
  std::vector<double> lambda_for_prediction;
  for (int rep = 0; rep < replications; ++rep) {
    std::vector<uint32_t> randomized(n);
    for (int i = 0; i < n; ++i) {
      uint32_t truth = static_cast<uint32_t>(rng.Discrete(pi));
      randomized[i] = p.Randomize(truth, rng);
    }
    std::vector<double> lambda = EmpiricalDistribution(randomized, 3);
    if (rep == 0) lambda_for_prediction = lambda;
    auto estimate = EstimateDistribution(p, lambda);
    ASSERT_TRUE(estimate.ok());
    estimates.push_back(estimate.value());
  }

  auto predicted = EstimateVariances(p, lambda_for_prediction, n);
  ASSERT_TRUE(predicted.ok());
  for (size_t u = 0; u < 3; ++u) {
    double mean = 0.0;
    for (const auto& e : estimates) mean += e[u];
    mean /= replications;
    double variance = 0.0;
    for (const auto& e : estimates) variance += (e[u] - mean) * (e[u] - mean);
    variance /= replications;
    // Within 25% relative (600 replications of a variance estimate).
    EXPECT_NEAR(variance, predicted.value()[u], 0.25 * predicted.value()[u])
        << "category " << u;
  }
}

TEST(VarianceEstimatorTest, ShrinksWithSampleSize) {
  RrMatrix p = RrMatrix::KeepUniform(4, 0.6);
  std::vector<double> lambda = {0.4, 0.3, 0.2, 0.1};
  auto small = EstimateVariances(p, lambda, 1000);
  auto large = EstimateVariances(p, lambda, 10000);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  for (size_t u = 0; u < 4; ++u) {
    EXPECT_NEAR(small.value()[u] / large.value()[u], 10.0, 1e-6);
  }
}

TEST(VarianceEstimatorTest, MoreRandomizationMoreVariance) {
  std::vector<double> lambda = {0.4, 0.3, 0.3};
  auto weak = EstimateVariances(RrMatrix::KeepUniform(3, 0.9), lambda, 1000);
  auto strong = EstimateVariances(RrMatrix::KeepUniform(3, 0.2), lambda, 1000);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  for (size_t u = 0; u < 3; ++u) {
    EXPECT_GT(strong.value()[u], weak.value()[u]);
  }
}

TEST(VarianceEstimatorTest, InputValidation) {
  RrMatrix p = RrMatrix::KeepUniform(3, 0.5);
  EXPECT_FALSE(EstimateVariances(p, {0.5, 0.5}, 100).ok());
  EXPECT_FALSE(EstimateVariances(p, {0.4, 0.3, 0.3}, 0).ok());
}

TEST(ConfidenceHalfWidthTest, WidthsBehaveSanely) {
  RrMatrix p = RrMatrix::KeepUniform(3, 0.5);
  std::vector<double> lambda = {0.4, 0.3, 0.3};
  auto narrow = EstimateConfidenceHalfWidths(p, lambda, 10000, 0.05);
  auto wide = EstimateConfidenceHalfWidths(p, lambda, 10000, 0.001);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  for (size_t u = 0; u < 3; ++u) {
    EXPECT_GT(wide.value()[u], narrow.value()[u]);  // Higher confidence.
    EXPECT_GT(narrow.value()[u], 0.0);
    EXPECT_LT(narrow.value()[u], 0.1);  // Sensible scale at n = 10000.
  }
  EXPECT_FALSE(EstimateConfidenceHalfWidths(p, lambda, 100, 0.0).ok());
  EXPECT_FALSE(EstimateConfidenceHalfWidths(p, lambda, 100, 1.0).ok());
}

TEST(IterativeBayesianTest, ConvergesToTruthWithoutNoise) {
  RrMatrix p = RrMatrix::KeepUniform(4, 0.5);
  std::vector<double> pi = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> lambda = p.ToDense().TransposeMatVec(pi);
  IterativeBayesianOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-14;
  auto estimated = IterativeBayesianUpdate(p, lambda, options);
  ASSERT_TRUE(estimated.ok());
  for (size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(estimated.value()[i], pi[i], 1e-5) << "category " << i;
  }
}

TEST(IterativeBayesianTest, AlwaysProperDistribution) {
  // Even with an inconsistent lambda (one Eq. (2) would map outside the
  // simplex), the Bayesian update stays proper.
  RrMatrix p = RrMatrix::KeepUniform(3, 0.8);
  std::vector<double> inconsistent_lambda = {0.95, 0.04, 0.01};
  // Check the raw estimator indeed leaves the simplex here.
  auto raw = EstimateDistribution(p, inconsistent_lambda);
  ASSERT_TRUE(raw.ok());
  bool raw_proper = true;
  for (double v : raw.value()) {
    if (v < 0.0 || v > 1.0) raw_proper = false;
  }
  EXPECT_FALSE(raw_proper);

  auto bayes = IterativeBayesianUpdate(p, inconsistent_lambda);
  ASSERT_TRUE(bayes.ok());
  double total = 0.0;
  for (double v : bayes.value()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(IterativeBayesianTest, SizeMismatchFails) {
  RrMatrix p = RrMatrix::KeepUniform(3, 0.5);
  EXPECT_FALSE(IterativeBayesianUpdate(p, {0.5, 0.5}).ok());
}

TEST(EstimateProjectedDistributionTest, ComposesInversionAndProjection) {
  RrMatrix p = RrMatrix::KeepUniform(3, 0.8);
  std::vector<double> inconsistent_lambda = {0.95, 0.04, 0.01};
  auto projected = EstimateProjectedDistribution(p, inconsistent_lambda);
  ASSERT_TRUE(projected.ok());
  double total = 0.0;
  for (double v : projected.value()) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace mdrr
