#include <gtest/gtest.h>

#include "mdrr/core/clustering.h"
#include "mdrr/core/dependence.h"
#include "mdrr/dataset/mushroom.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {
namespace {

TEST(MushroomSchemaTest, TwentyThreeAttributes) {
  std::vector<Attribute> schema = MushroomSchema();
  ASSERT_EQ(schema.size(), 23u);
  EXPECT_EQ(schema[0].name, "class");
  EXPECT_EQ(schema[0].cardinality(), 2u);
  EXPECT_EQ(schema[5].name, "odor");
  EXPECT_EQ(schema[5].cardinality(), 9u);
  EXPECT_EQ(schema[9].name, "gill-color");
  EXPECT_EQ(schema[9].cardinality(), 12u);
}

TEST(MushroomSynthesizerTest, DeterministicAndSized) {
  Dataset a = SynthesizeMushroom(1000, 7);
  Dataset b = SynthesizeMushroom(1000, 7);
  EXPECT_EQ(a.num_rows(), 1000u);
  EXPECT_EQ(a.num_attributes(), 23u);
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    EXPECT_EQ(a.column(j), b.column(j));
  }
}

class MushroomStructure : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(SynthesizeMushroom(kMushroomNumRecords, 11));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* MushroomStructure::dataset_ = nullptr;

TEST_F(MushroomStructure, ClassBalanceRoughlyEven) {
  stats::FrequencyTable table(dataset_->column(0), 2);
  EXPECT_NEAR(table.Proportions()[1], 0.48, 0.05);
}

TEST_F(MushroomStructure, OdorNearlyDeterminesClass) {
  // The real data's famous property.
  double dep = DependenceBetween(*dataset_, 0, 5);
  EXPECT_GT(dep, 0.7);
}

TEST_F(MushroomStructure, StalkSurfacesStronglyCoupled) {
  // surface-above-ring (12) and surface-below-ring (13) copy each other.
  double dep = DependenceBetween(*dataset_, 12, 13);
  EXPECT_GT(dep, 0.6);
}

TEST_F(MushroomStructure, ClusteringFindsBlocks) {
  linalg::Matrix deps = DependenceMatrix(*dataset_);
  auto clusters =
      ClusterAttributes(*dataset_, deps, ClusteringOptions{60.0, 0.15});
  ASSERT_TRUE(clusters.ok());
  // A partition of all 23 attributes with multiple non-trivial clusters.
  size_t total = 0;
  size_t multi = 0;
  for (const auto& cluster : clusters.value()) {
    total += cluster.size();
    if (cluster.size() > 1) ++multi;
  }
  EXPECT_EQ(total, 23u);
  EXPECT_GE(multi, 3u);

  // The stalk-surface pair must share a cluster (4 * 4 = 16 <= 60 and
  // dependence > Td).
  bool surfaces_together = false;
  for (const auto& cluster : clusters.value()) {
    bool has_above = false;
    bool has_below = false;
    for (size_t j : cluster) {
      if (j == 12) has_above = true;
      if (j == 13) has_below = true;
    }
    if (has_above && has_below) surfaces_together = true;
  }
  EXPECT_TRUE(surfaces_together);
}

}  // namespace
}  // namespace mdrr
